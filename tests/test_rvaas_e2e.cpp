// End-to-end integration tests: the full Fig. 1 / Fig. 2 protocol, attack
// detection through client queries, monitoring disciplines, suppression
// timeout, attestation failure paths, and the link prober.

#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace rvaas::workload {
namespace {

using core::Expectation;
using core::Query;
using core::QueryKind;
using core::Verdict;
using sdn::HostId;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

ScenarioConfig line_config(std::uint32_t n = 3, std::size_t tenants = 1) {
  ScenarioConfig config;
  config.generated = linear(n);
  config.tenant_count = tenants;
  config.seed = 42;
  return config;
}

TEST(E2E, Figure1And2ProtocolRoundTrip) {
  ScenarioRuntime runtime(line_config(3));
  const auto& hosts = runtime.hosts();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);

  ASSERT_FALSE(outcome.timed_out);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_TRUE(outcome.signature_ok);

  // The client's traffic reaches the other two tenant members; both
  // authenticated in-band (Fig. 2).
  const core::QueryReply& reply = *outcome.reply;
  EXPECT_EQ(reply.endpoints.size(), 2u);
  EXPECT_EQ(reply.auth.issued, 2u);
  EXPECT_EQ(reply.auth.responded, 2u);
  for (const auto& e : reply.endpoints) {
    EXPECT_TRUE(e.authenticated);
    ASSERT_TRUE(e.authenticated_as.has_value());
  }

  Expectation expect;
  expect.allowed_endpoints = {hosts[1], hosts[2]};
  const Verdict verdict = core::evaluate_reply(reply, expect);
  EXPECT_TRUE(verdict.ok) << (verdict.violations.empty()
                                  ? ""
                                  : verdict.violations[0]);

  // Paper: endpoint-only answers reveal no paths.
  EXPECT_TRUE(reply.disclosed_paths.empty());

  // Protocol stats: 1 query, 2 auth requests, 2 auth replies, 1 reply.
  const auto& stats = runtime.rvaas().stats();
  EXPECT_EQ(stats.queries_received, 1u);
  EXPECT_EQ(stats.auth_requests_sent, 2u);
  EXPECT_EQ(stats.auth_replies_ok, 2u);
  EXPECT_EQ(stats.replies_sent, 1u);
}

TEST(E2E, ExfiltrationDetectedByReachQuery) {
  ScenarioRuntime runtime(line_config(3));
  const auto& hosts = runtime.hosts();

  attacks::ExfiltrationAttack attack(hosts[0], hosts[2]);
  const auto record = attack.launch(runtime.provider(), runtime.network());
  ASSERT_TRUE(record.has_value());
  runtime.settle();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());

  Expectation expect;
  expect.allowed_endpoints = {hosts[1], hosts[2]};
  const Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
  EXPECT_FALSE(verdict.ok);
  // The cloned copy surfaces as a dark endpoint.
  bool dark_flagged = false;
  for (const auto& v : verdict.violations) {
    dark_flagged |= v.find("dark") != std::string::npos;
  }
  EXPECT_TRUE(dark_flagged);
}

TEST(E2E, JoinAttackDetectedByIsolationQuery) {
  ScenarioRuntime runtime(line_config(4));
  const auto& hosts = runtime.hosts();

  // Attacker plugs into a dark port on switch 4.
  const PortRef attacker_port{SwitchId(4), PortNo(3)};
  attacks::JoinAttack attack(hosts[0], attacker_port);
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  Query query;
  query.kind = QueryKind::Isolation;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());

  Expectation expect;
  expect.allowed_endpoints = {hosts[1], hosts[2], hosts[3]};
  const Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
  EXPECT_FALSE(verdict.ok);

  // The rogue access point appears among the endpoints.
  bool rogue_listed = false;
  for (const auto& e : outcome.reply->endpoints) {
    rogue_listed |= (e.access_point == attacker_port);
  }
  EXPECT_TRUE(rogue_listed);
}

TEST(E2E, IsolationBreachDetectedByVictim) {
  ScenarioRuntime runtime(line_config(4, /*tenants=*/2));
  const auto& hosts = runtime.hosts();
  // hosts[0], hosts[2] in tenant 1; hosts[1], hosts[3] in tenant 2.

  attacks::IsolationBreachAttack attack(hosts[1], hosts[2]);
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  // Victim hosts[2] asks who can reach it.
  Query query;
  query.kind = QueryKind::ReachingSources;
  const auto outcome = runtime.query_and_wait(hosts[2], query);
  ASSERT_TRUE(outcome.reply.has_value());

  Expectation expect;
  expect.allowed_endpoints = {hosts[0]};  // only the tenant peer
  const Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
  EXPECT_FALSE(verdict.ok);
}

TEST(E2E, GeoDiversionDetectedByGeoQuery) {
  // Line of 6: jurisdictions change in thirds (DE DE FR FR US US).
  ScenarioRuntime runtime(line_config(6));
  const auto& hosts = runtime.hosts();

  // Baseline: traffic from host0 to host1 stays within the first third...
  Query query;
  query.kind = QueryKind::Geo;
  query.constraint = sdn::Match().exact(
      sdn::Field::IpDst, runtime.addressing().of(hosts[1]).ip);
  {
    const auto outcome = runtime.query_and_wait(hosts[0], query);
    ASSERT_TRUE(outcome.reply.has_value());
    Expectation expect;
    expect.allowed_jurisdictions = {"DE"};
    EXPECT_TRUE(core::evaluate_reply(*outcome.reply, expect).ok);
  }

  // ...until the compromised controller diverts it through switch 5.
  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());
  Expectation expect;
  expect.allowed_jurisdictions = {"DE"};
  const Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
  EXPECT_FALSE(verdict.ok);
}

TEST(E2E, QuerySuppressionDetectedByTimeout) {
  ScenarioRuntime runtime(line_config(3));
  const auto& hosts = runtime.hosts();

  attacks::QuerySuppressionAttack attack(SwitchId(1));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome =
      runtime.query_and_wait(hosts[0], query, 30 * sim::kMillisecond);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_EQ(runtime.client(hosts[0]).stats().timeouts, 1u);
}

TEST(E2E, FlappingRuleCaughtByPassiveMonitoring) {
  ScenarioConfig config = line_config(3);
  config.rvaas.passive_monitoring = true;
  config.rvaas.polling = core::PollingMode::Disabled;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  attacks::ReconfigFlappingAttack attack(hosts[0], 20 * sim::kMillisecond,
                                         2 * sim::kMillisecond);
  ASSERT_TRUE(attack
                  .launch(runtime.provider(), runtime.network(),
                          runtime.loop().now() + 100 * sim::kMillisecond)
                  .has_value());
  runtime.settle(120 * sim::kMillisecond);
  EXPECT_GE(attack.cycles_run(), 4u);

  // Passive monitoring records every transient rule.
  const auto flapping =
      runtime.rvaas().snapshot().short_lived(5 * sim::kMillisecond);
  EXPECT_GE(flapping.size(), attack.cycles_run());
  EXPECT_TRUE(runtime.rvaas().snapshot().history_contains(
      [](const core::HistoryRecord& r) { return r.entry.cookie == 0xf1a9; }));
}

TEST(E2E, ActiveOnlyPollingMissesShortDwell) {
  // With passive monitoring off and slow fixed polling, a short-dwell
  // flapping rule is likely never observed — the motivation for passive
  // events + randomized polls.
  ScenarioConfig config = line_config(3);
  config.rvaas.passive_monitoring = false;
  config.rvaas.polling = core::PollingMode::Fixed;
  config.rvaas.poll_period = 50 * sim::kMillisecond;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  attacks::ReconfigFlappingAttack attack(hosts[0], 50 * sim::kMillisecond,
                                         1 * sim::kMillisecond);
  ASSERT_TRUE(attack
                  .launch(runtime.provider(), runtime.network(),
                          runtime.loop().now() + 200 * sim::kMillisecond)
                  .has_value());
  runtime.settle(250 * sim::kMillisecond);

  const bool observed = runtime.rvaas().snapshot().history_contains(
      [](const core::HistoryRecord& r) { return r.entry.cookie == 0xf1a9; });
  // Fixed 50ms polls vs 1ms dwell: with this seed the attacker stays
  // invisible (deterministic, so assert the miss).
  EXPECT_FALSE(observed);
}

TEST(E2E, AttestationRejectsTamperedEnclave) {
  ScenarioRuntime runtime(line_config(3));
  const auto& hosts = runtime.hosts();
  util::Rng rng(123);

  // A fake RVaaS with different code identity cannot pass the client check.
  enclave::Enclave fake("evil-rvaas", "1.0", rng);
  const enclave::Quote fake_quote = runtime.ias().quote(
      fake, enclave::bind_keys(fake.verify_key(), fake.box_public()));
  const bool accepted = runtime.client(hosts[0]).verify_attestation(
      fake_quote, runtime.ias().root_key(),
      enclave::measure_code("rvaas", "1.0"), fake.verify_key(),
      fake.box_public());
  EXPECT_FALSE(accepted);

  // Quote for the genuine enclave, but binding different keys: rejected.
  const bool key_swap = runtime.client(hosts[0]).verify_attestation(
      runtime.rvaas().quote(), runtime.ias().root_key(),
      enclave::measure_code("rvaas", "1.0"), fake.verify_key(),
      fake.box_public());
  EXPECT_FALSE(key_swap);
}

TEST(E2E, PathLengthQueryReportsOptimality) {
  ScenarioRuntime runtime(line_config(4));
  const auto& hosts = runtime.hosts();

  Query query;
  query.kind = QueryKind::PathLength;
  query.peer = hosts[3];
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_TRUE(outcome.reply->path_found);
  EXPECT_EQ(outcome.reply->installed_path_length, 4u);
  EXPECT_EQ(outcome.reply->optimal_path_length, 4u);

  Expectation expect;
  expect.require_optimal_path = true;
  EXPECT_TRUE(core::evaluate_reply(*outcome.reply, expect).ok);
}

TEST(E2E, TransferSummaryQueryAnswered) {
  ScenarioRuntime runtime(line_config(3));
  const auto& hosts = runtime.hosts();
  Query query;
  query.kind = QueryKind::TransferSummary;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_EQ(outcome.reply->transfer_summary.size(), 2u);  // two peers
}

TEST(E2E, FairnessQuerySeesTenantMeter) {
  ScenarioConfig config = line_config(4, /*tenants=*/2);
  config.tenant_meters[0] = sdn::MeterConfig{10'000'000, 10'000};
  // Fairness reads meters from polls; poll quickly.
  config.rvaas.poll_period = 5 * sim::kMillisecond;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();
  runtime.settle(20 * sim::kMillisecond);  // let polls collect meters

  Query query;
  query.kind = QueryKind::Fairness;
  // Constrain to untagged traffic (what the client's NIC actually emits);
  // unconstrained queries would also count VLAN-spoofed injections.
  query.constraint = sdn::Match().exact(sdn::Field::Vlan, 0);
  const auto metered = runtime.query_and_wait(hosts[0], query);  // tenant 1
  const auto unmetered = runtime.query_and_wait(hosts[1], query);  // tenant 2
  ASSERT_TRUE(metered.reply.has_value() && unmetered.reply.has_value());
  EXPECT_EQ(metered.reply->fairness[0].value, 10'000'000u);
  EXPECT_EQ(unmetered.reply->fairness[0].value, ~std::uint64_t{0});
}

TEST(E2E, FullPathsPolicyLeaksAndEndpointsOnlyDoesNot) {
  // E5 ablation at test scale.
  ScenarioConfig leaky = line_config(3);
  leaky.rvaas.policy = core::ConfidentialityPolicy::FullPaths;
  ScenarioRuntime runtime(std::move(leaky));
  const auto& hosts = runtime.hosts();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_FALSE(outcome.reply->disclosed_paths.empty());
}

TEST(E2E, LinkProberStaysQuietOnIntactWiring) {
  ScenarioConfig config = line_config(3);
  config.rvaas.enable_link_prober = true;
  config.rvaas.probe_period = 10 * sim::kMillisecond;
  ScenarioRuntime runtime(std::move(config));
  runtime.settle(50 * sim::kMillisecond);
  EXPECT_GT(runtime.rvaas().stats().probes_sent, 0u);
  EXPECT_TRUE(runtime.rvaas().wiring_alarms().empty());
}

TEST(E2E, RandomizedPollingKeepsSnapshotFresh) {
  ScenarioConfig config = line_config(3);
  config.rvaas.passive_monitoring = false;
  config.rvaas.polling = core::PollingMode::Randomized;
  config.rvaas.poll_period = 5 * sim::kMillisecond;
  ScenarioRuntime runtime(std::move(config));
  runtime.settle(40 * sim::kMillisecond);

  // Active-only: the snapshot converges to the provider's installed rules
  // purely via polls (recorded as discrepancies, adopted as truth).
  EXPECT_GT(runtime.rvaas().snapshot().polls_applied(), 0u);
  EXPECT_GT(runtime.rvaas().snapshot().entry_count(), 0u);

  const auto& hosts = runtime.hosts();
  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_EQ(outcome.reply->endpoints.size(), 2u);
}

TEST(E2E, QueriesWorkOnFatTree) {
  ScenarioConfig config;
  config.generated = fat_tree(4);
  config.seed = 9;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome =
      runtime.query_and_wait(hosts[0], query, 100 * sim::kMillisecond);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_EQ(outcome.reply->endpoints.size(), hosts.size() - 1);
  EXPECT_EQ(outcome.reply->auth.responded, outcome.reply->auth.issued);
}

}  // namespace
}  // namespace rvaas::workload
