// SnapshotManager: passive event application, active reconciliation with
// discrepancy detection, flapping-rule history queries.

#include <gtest/gtest.h>

#include "rvaas/snapshot.hpp"

namespace rvaas::core {
namespace {

using sdn::FlowEntry;
using sdn::FlowUpdate;
using sdn::FlowUpdateKind;
using sdn::SwitchId;

FlowEntry entry(std::uint64_t id, std::uint16_t priority = 5) {
  FlowEntry e;
  e.id = sdn::FlowEntryId(id);
  e.priority = priority;
  e.actions = {sdn::output(sdn::PortNo(1))};
  return e;
}

TEST(Snapshot, PassiveAddRemoveModify) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2)}, 20);
  EXPECT_EQ(snap.entry_count(), 2u);

  FlowEntry modified = entry(1);
  modified.actions = {sdn::drop()};
  snap.apply_update({SwitchId(1), FlowUpdateKind::Modified, modified}, 30);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Removed, entry(2)}, 40);

  const auto tables = snap.table_dump();
  ASSERT_EQ(tables.at(SwitchId(1)).size(), 1u);
  EXPECT_EQ(tables.at(SwitchId(1))[0].actions, sdn::ActionList{sdn::drop()});
  EXPECT_EQ(snap.events_applied(), 4u);
  EXPECT_EQ(snap.history().size(), 4u);
}

TEST(Snapshot, TableDumpInMatchOrder) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1, 5)}, 1);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2, 9)}, 2);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(3, 5)}, 3);
  const auto dump = snap.table_dump().at(SwitchId(1));
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0].priority, 9);
  // Equal priority: newer id first (matches FlowTable semantics).
  EXPECT_EQ(dump[1].id, sdn::FlowEntryId(3));
  EXPECT_EQ(dump[2].id, sdn::FlowEntryId(1));
}

TEST(Snapshot, ReconcileAgreesSilently) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);

  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {entry(1)};
  snap.reconcile(reply, 50);
  EXPECT_TRUE(snap.discrepancies().empty());
  EXPECT_EQ(snap.polls_applied(), 1u);
}

TEST(Snapshot, ReconcileFindsUnknownEntry) {
  // Active-only detection: a rule installed while events were not delivered.
  SnapshotManager snap;
  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {entry(7)};
  snap.reconcile(reply, 100);

  ASSERT_EQ(snap.discrepancies().size(), 1u);
  EXPECT_NE(snap.discrepancies()[0].description.find("unknown entry"),
            std::string::npos);
  // The view adopts the switch's truth.
  EXPECT_EQ(snap.entry_count(), 1u);
}

TEST(Snapshot, ReconcileFindsVanishedEntry) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);

  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  snap.reconcile(reply, 100);  // empty dump

  ASSERT_EQ(snap.discrepancies().size(), 1u);
  EXPECT_NE(snap.discrepancies()[0].description.find("vanished"),
            std::string::npos);
  EXPECT_EQ(snap.entry_count(), 0u);
}

TEST(Snapshot, ReconcileFindsModifiedEntry) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  FlowEntry changed = entry(1);
  changed.actions = {sdn::drop()};
  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {changed};
  snap.reconcile(reply, 100);
  ASSERT_EQ(snap.discrepancies().size(), 1u);
  EXPECT_NE(snap.discrepancies()[0].description.find("modified"),
            std::string::npos);
}

TEST(Snapshot, ShortLivedRulesDetected) {
  SnapshotManager snap;
  // Rule 1: lives 5ms (flapping). Rule 2: permanent.
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)},
                    10 * sim::kMillisecond);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2)},
                    11 * sim::kMillisecond);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Removed, entry(1)},
                    15 * sim::kMillisecond);

  const auto flapping = snap.short_lived(20 * sim::kMillisecond);
  ASSERT_EQ(flapping.size(), 1u);
  EXPECT_EQ(flapping[0].entry.id, sdn::FlowEntryId(1));

  // With a tighter dwell bound, nothing qualifies.
  EXPECT_TRUE(snap.short_lived(2 * sim::kMillisecond).empty());
}

TEST(Snapshot, HistoryLimitBounded) {
  SnapshotManager snap(/*history_limit=*/10);
  for (std::uint64_t i = 0; i < 100; ++i) {
    snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(i)}, i);
  }
  EXPECT_EQ(snap.history().size(), 10u);
  EXPECT_EQ(snap.history().front().entry.id, sdn::FlowEntryId(90));
}

TEST(Snapshot, HistoryContainsPredicate) {
  SnapshotManager snap;
  FlowEntry e = entry(1);
  e.cookie = 0xe4f1;
  snap.apply_update({SwitchId(3), FlowUpdateKind::Added, e}, 10);
  EXPECT_TRUE(snap.history_contains(
      [](const HistoryRecord& r) { return r.entry.cookie == 0xe4f1; }));
  EXPECT_FALSE(snap.history_contains(
      [](const HistoryRecord& r) { return r.entry.cookie == 0xdead; }));
}

TEST(Snapshot, MemoryEstimateGrowsWithState) {
  SnapshotManager snap;
  const std::size_t empty = snap.approx_memory_bytes();
  for (std::uint64_t i = 0; i < 50; ++i) {
    snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(i)}, i);
  }
  EXPECT_GT(snap.approx_memory_bytes(), empty);
}

TEST(Snapshot, MetersStoredFromPolls) {
  SnapshotManager snap;
  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.meters = {{sdn::MeterId(1), sdn::MeterConfig{1000, 100}}};
  snap.reconcile(reply, 10);
  ASSERT_EQ(snap.meters().at(SwitchId(1)).size(), 1u);
  EXPECT_EQ(snap.meters().at(SwitchId(1))[0].second.rate_bps, 1000u);
}

}  // namespace
}  // namespace rvaas::core
