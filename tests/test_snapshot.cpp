// SnapshotManager: passive event application, active reconciliation with
// discrepancy detection, flapping-rule history queries.

#include <gtest/gtest.h>

#include "rvaas/snapshot.hpp"

namespace rvaas::core {
namespace {

using sdn::FlowEntry;
using sdn::FlowUpdate;
using sdn::FlowUpdateKind;
using sdn::SwitchId;

FlowEntry entry(std::uint64_t id, std::uint16_t priority = 5) {
  FlowEntry e;
  e.id = sdn::FlowEntryId(id);
  e.priority = priority;
  e.actions = {sdn::output(sdn::PortNo(1))};
  return e;
}

TEST(Snapshot, PassiveAddRemoveModify) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2)}, 20);
  EXPECT_EQ(snap.entry_count(), 2u);

  FlowEntry modified = entry(1);
  modified.actions = {sdn::drop()};
  snap.apply_update({SwitchId(1), FlowUpdateKind::Modified, modified}, 30);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Removed, entry(2)}, 40);

  const auto tables = snap.table_dump();
  ASSERT_EQ(tables.at(SwitchId(1)).size(), 1u);
  EXPECT_EQ(tables.at(SwitchId(1))[0].actions, sdn::ActionList{sdn::drop()});
  EXPECT_EQ(snap.events_applied(), 4u);
  EXPECT_EQ(snap.history().size(), 4u);
}

TEST(Snapshot, TableDumpInMatchOrder) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1, 5)}, 1);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2, 9)}, 2);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(3, 5)}, 3);
  const auto dump = snap.table_dump().at(SwitchId(1));
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0].priority, 9);
  // Equal priority: newer id first (matches FlowTable semantics).
  EXPECT_EQ(dump[1].id, sdn::FlowEntryId(3));
  EXPECT_EQ(dump[2].id, sdn::FlowEntryId(1));
}

TEST(Snapshot, ReconcileAgreesSilently) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);

  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {entry(1)};
  snap.reconcile(reply, 50);
  EXPECT_TRUE(snap.discrepancies().empty());
  EXPECT_EQ(snap.polls_applied(), 1u);
}

TEST(Snapshot, ReconcileFindsUnknownEntry) {
  // Active-only detection: a rule installed while events were not delivered.
  SnapshotManager snap;
  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {entry(7)};
  snap.reconcile(reply, 100);

  ASSERT_EQ(snap.discrepancies().size(), 1u);
  EXPECT_NE(snap.discrepancies()[0].description.find("unknown entry"),
            std::string::npos);
  // The view adopts the switch's truth.
  EXPECT_EQ(snap.entry_count(), 1u);
}

TEST(Snapshot, ReconcileFindsVanishedEntry) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);

  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  snap.reconcile(reply, 100);  // empty dump

  ASSERT_EQ(snap.discrepancies().size(), 1u);
  EXPECT_NE(snap.discrepancies()[0].description.find("vanished"),
            std::string::npos);
  EXPECT_EQ(snap.entry_count(), 0u);
}

TEST(Snapshot, ReconcileFindsModifiedEntry) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  FlowEntry changed = entry(1);
  changed.actions = {sdn::drop()};
  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {changed};
  snap.reconcile(reply, 100);
  ASSERT_EQ(snap.discrepancies().size(), 1u);
  EXPECT_NE(snap.discrepancies()[0].description.find("modified"),
            std::string::npos);
}

TEST(Snapshot, ShortLivedRulesDetected) {
  SnapshotManager snap;
  // Rule 1: lives 5ms (flapping). Rule 2: permanent.
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)},
                    10 * sim::kMillisecond);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2)},
                    11 * sim::kMillisecond);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Removed, entry(1)},
                    15 * sim::kMillisecond);

  const auto flapping = snap.short_lived(20 * sim::kMillisecond);
  ASSERT_EQ(flapping.size(), 1u);
  EXPECT_EQ(flapping[0].entry.id, sdn::FlowEntryId(1));

  // With a tighter dwell bound, nothing qualifies.
  EXPECT_TRUE(snap.short_lived(2 * sim::kMillisecond).empty());
}

TEST(Snapshot, HistoryLimitBounded) {
  SnapshotManager snap(/*history_limit=*/10);
  for (std::uint64_t i = 0; i < 100; ++i) {
    snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(i)}, i);
  }
  EXPECT_EQ(snap.history().size(), 10u);
  EXPECT_EQ(snap.history().front().entry.id, sdn::FlowEntryId(90));
}

TEST(Snapshot, HistoryContainsPredicate) {
  SnapshotManager snap;
  FlowEntry e = entry(1);
  e.cookie = 0xe4f1;
  snap.apply_update({SwitchId(3), FlowUpdateKind::Added, e}, 10);
  EXPECT_TRUE(snap.history_contains(
      [](const HistoryRecord& r) { return r.entry.cookie == 0xe4f1; }));
  EXPECT_FALSE(snap.history_contains(
      [](const HistoryRecord& r) { return r.entry.cookie == 0xdead; }));
}

TEST(Snapshot, MemoryEstimateGrowsWithState) {
  SnapshotManager snap;
  const std::size_t empty = snap.approx_memory_bytes();
  for (std::uint64_t i = 0; i < 50; ++i) {
    snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(i)}, i);
  }
  EXPECT_GT(snap.approx_memory_bytes(), empty);
}

// --- Change clock (epoch / dirty set) bookkeeping --------------------------
// The documented contract (snapshot.hpp): epochs bump once per adopted
// table-content change and only then — identical re-deliveries, agreeing
// polls, meter updates and history eviction are all epoch-neutral.

TEST(SnapshotEpoch, ApplyUpdateBumpsPerContentChange) {
  SnapshotManager snap;
  EXPECT_EQ(snap.epoch(), 0u);
  EXPECT_EQ(snap.table_epoch(SwitchId(1)), 0u);

  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  EXPECT_EQ(snap.epoch(), 1u);
  EXPECT_EQ(snap.table_epoch(SwitchId(1)), 1u);

  snap.apply_update({SwitchId(2), FlowUpdateKind::Added, entry(1)}, 11);
  EXPECT_EQ(snap.epoch(), 2u);
  EXPECT_EQ(snap.table_epoch(SwitchId(1)), 1u);
  EXPECT_EQ(snap.table_epoch(SwitchId(2)), 2u);

  FlowEntry modified = entry(1);
  modified.actions = {sdn::drop()};
  snap.apply_update({SwitchId(1), FlowUpdateKind::Modified, modified}, 12);
  EXPECT_EQ(snap.epoch(), 3u);
  EXPECT_EQ(snap.table_epoch(SwitchId(1)), 3u);

  snap.apply_update({SwitchId(1), FlowUpdateKind::Removed, modified}, 13);
  EXPECT_EQ(snap.epoch(), 4u);
}

TEST(SnapshotEpoch, NoOpUpdatesDoNotBump) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  ASSERT_EQ(snap.epoch(), 1u);

  // Identical re-delivery: content unchanged.
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 11);
  EXPECT_EQ(snap.epoch(), 1u);

  // Removal of an id we never had, on a known switch: content unchanged
  // (but the event still counts and is recorded in history).
  snap.apply_update({SwitchId(1), FlowUpdateKind::Removed, entry(9)}, 12);
  EXPECT_EQ(snap.epoch(), 1u);
  EXPECT_EQ(snap.events_applied(), 3u);
  EXPECT_EQ(snap.history().size(), 3u);
}

TEST(SnapshotEpoch, FirstAppearanceBumpsEvenWithoutContent) {
  SnapshotManager snap;
  // A Removed for an id we never saw, on a switch we never saw: the table
  // stays empty, but the switch's first appearance is itself a view change
  // (every switch in switch_ids() must have a nonzero epoch, so consumers'
  // dirty sets are complete).
  snap.apply_update({SwitchId(5), FlowUpdateKind::Removed, entry(1)}, 1);
  EXPECT_EQ(snap.epoch(), 1u);
  EXPECT_EQ(snap.table_epoch(SwitchId(5)), 1u);
  EXPECT_EQ(snap.switch_ids().size(), 1u);

  // Repeating it on the now-known switch is a plain no-op.
  snap.apply_update({SwitchId(5), FlowUpdateKind::Removed, entry(1)}, 2);
  EXPECT_EQ(snap.epoch(), 1u);

  // Same for reconcile: an empty agreeing dump for an unknown switch bumps
  // once (first appearance), then never again.
  sdn::StatsReply reply;
  reply.sw = SwitchId(6);
  snap.reconcile(reply, 3);
  EXPECT_EQ(snap.epoch(), 2u);
  snap.reconcile(reply, 4);
  EXPECT_EQ(snap.epoch(), 2u);
}

TEST(SnapshotEpoch, AgreeingReconcileDoesNotBump) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  ASSERT_EQ(snap.epoch(), 1u);

  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {entry(1)};
  snap.reconcile(reply, 50);
  EXPECT_EQ(snap.epoch(), 1u);
  EXPECT_EQ(snap.table_epoch(SwitchId(1)), 1u);
}

TEST(SnapshotEpoch, AdoptingReconcileBumpsOnce) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2)}, 11);
  ASSERT_EQ(snap.epoch(), 2u);

  // The poll disagrees three ways at once: entry 1 modified, entry 2
  // vanished, entry 3 unknown — still one adopted-change bump.
  FlowEntry changed = entry(1);
  changed.actions = {sdn::drop()};
  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {changed, entry(3)};
  snap.reconcile(reply, 100);

  EXPECT_EQ(snap.discrepancies().size(), 3u);
  EXPECT_EQ(snap.epoch(), 3u);
  EXPECT_EQ(snap.table_epoch(SwitchId(1)), 3u);
}

TEST(SnapshotEpoch, MeterOnlyReconcileDoesNotBump) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 10);
  ASSERT_EQ(snap.epoch(), 1u);

  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.entries = {entry(1)};
  reply.meters = {{sdn::MeterId(1), sdn::MeterConfig{1000, 100}}};
  snap.reconcile(reply, 50);

  // Meters are outside the compiled model's inputs: stored, but no bump.
  EXPECT_EQ(snap.meters().at(SwitchId(1)).size(), 1u);
  EXPECT_EQ(snap.epoch(), 1u);
}

TEST(SnapshotEpoch, HistoryEvictionDoesNotBump) {
  SnapshotManager snap(/*history_limit=*/5);
  for (std::uint64_t i = 0; i < 20; ++i) {
    snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(i)}, i);
  }
  // Exactly one bump per content change, no extra bumps from the 15
  // evictions the small history limit forced.
  EXPECT_EQ(snap.epoch(), 20u);
  EXPECT_EQ(snap.history().size(), 5u);
}

TEST(SnapshotEpoch, DirtySinceIsTheChangedSwitchSet) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 1);
  snap.apply_update({SwitchId(2), FlowUpdateKind::Added, entry(1)}, 2);
  const std::uint64_t mark = snap.epoch();

  EXPECT_TRUE(snap.dirty_since(mark).empty());
  ASSERT_EQ(snap.dirty_since(0).size(), 2u);

  snap.apply_update({SwitchId(2), FlowUpdateKind::Added, entry(2)}, 3);
  const auto dirty = snap.dirty_since(mark);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], SwitchId(2));
}

TEST(SnapshotEpoch, CopyForksIdentityMoveTransfersIt) {
  SnapshotManager a;
  a.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1)}, 1);
  const std::uint64_t a_id = a.instance_id();

  SnapshotManager b = a;  // copy: same state, new identity
  const std::uint64_t b_id = b.instance_id();
  EXPECT_NE(b_id, a_id);
  EXPECT_EQ(b.epoch(), a.epoch());

  // Move: the identity travels with the content (its cache association
  // stays valid), and the moved-from side is re-identified.
  SnapshotManager c = std::move(b);
  EXPECT_EQ(c.instance_id(), b_id);
  EXPECT_NE(b.instance_id(), b_id);
  EXPECT_NE(b.instance_id(), a_id);
}

// --- Per-switch accessors ---------------------------------------------------

TEST(Snapshot, PerSwitchTableMatchesTableDump) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(1, 5)}, 1);
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(2, 9)}, 2);
  snap.apply_update({SwitchId(3), FlowUpdateKind::Added, entry(7, 1)}, 3);

  const auto dump = snap.table_dump();
  for (const SwitchId sw : snap.switch_ids()) {
    EXPECT_EQ(snap.table(sw), dump.at(sw));
  }
  EXPECT_TRUE(snap.table(SwitchId(99)).empty());
}

TEST(Snapshot, FindEntryPointLookup) {
  SnapshotManager snap;
  snap.apply_update({SwitchId(1), FlowUpdateKind::Added, entry(4)}, 1);

  const sdn::FlowEntry* found = snap.find_entry(SwitchId(1), sdn::FlowEntryId(4));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, sdn::FlowEntryId(4));
  EXPECT_EQ(snap.find_entry(SwitchId(1), sdn::FlowEntryId(5)), nullptr);
  EXPECT_EQ(snap.find_entry(SwitchId(2), sdn::FlowEntryId(4)), nullptr);
}

TEST(Snapshot, MetersStoredFromPolls) {
  SnapshotManager snap;
  sdn::StatsReply reply;
  reply.sw = SwitchId(1);
  reply.meters = {{sdn::MeterId(1), sdn::MeterConfig{1000, 100}}};
  snap.reconcile(reply, 10);
  ASSERT_EQ(snap.meters().at(SwitchId(1)).size(), 1u);
  EXPECT_EQ(snap.meters().at(SwitchId(1))[0].second.rate_bps, 1000u);
}

}  // namespace
}  // namespace rvaas::core
