// Wildcard cube algebra: unit tests plus randomized property sweeps
// (parameterized over seeds) checking the algebraic laws the reachability
// engine depends on.

#include <gtest/gtest.h>

#include "hsa/header_space.hpp"
#include "hsa/wildcard.hpp"

namespace rvaas::hsa {
namespace {

using sdn::Field;
using sdn::HeaderFields;

Wildcard random_cube(util::Rng& rng, double fix_prob = 0.3) {
  Wildcard w;
  for (std::size_t i = 0; i < Wildcard::kBits; ++i) {
    if (rng.bernoulli(fix_prob)) {
      w.set_bit(i, rng.next_bit() ? Trit::One : Trit::Zero);
    }
  }
  return w;
}

HeaderFields random_header(util::Rng& rng) {
  HeaderFields h;
  for (const auto& info : sdn::kFields) {
    h.set(info.field, rng.next_u64() & sdn::field_mask(info.field));
  }
  return h;
}

TEST(Wildcard, DefaultIsFullSpace) {
  const Wildcard w;
  EXPECT_FALSE(w.is_empty());
  EXPECT_EQ(w.free_bits(), Wildcard::kBits);
  EXPECT_EQ(w.to_string(), "*");
}

TEST(Wildcard, SetGetBits) {
  Wildcard w;
  w.set_bit(0, Trit::One);
  w.set_bit(227, Trit::Zero);
  EXPECT_EQ(w.get_bit(0), Trit::One);
  EXPECT_EQ(w.get_bit(227), Trit::Zero);
  EXPECT_EQ(w.get_bit(100), Trit::Any);
  EXPECT_EQ(w.free_bits(), Wildcard::kBits - 2);
  EXPECT_THROW(w.set_bit(228, Trit::Any), util::InvariantViolation);
}

TEST(Wildcard, EncodeContainsItsHeader) {
  util::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const HeaderFields h = random_header(rng);
    const Wildcard w = Wildcard::encode(h);
    EXPECT_TRUE(w.contains(h));
    EXPECT_EQ(w.free_bits(), 0u);
    // A different header is not contained.
    HeaderFields other = h;
    other.set(Field::IpDst, h.get(Field::IpDst) ^ 1);
    EXPECT_FALSE(w.contains(other));
  }
}

TEST(Wildcard, FieldConstraintMatchesSemantics) {
  Wildcard w;
  w.set_field(Field::Vlan, 5);
  HeaderFields h;
  h.vlan = 5;
  EXPECT_TRUE(w.contains(h));
  h.vlan = 4;
  EXPECT_FALSE(w.contains(h));
}

TEST(Wildcard, MaskedFieldPrefix) {
  // 10.0.0.0/8: top 8 bits of ip_dst fixed.
  Wildcard w;
  const std::uint64_t mask = 0xff000000;
  w.set_field_masked(Field::IpDst, 0x0a000000, mask);
  HeaderFields h;
  h.ip_dst = 0x0a1234ff;
  EXPECT_TRUE(w.contains(h));
  h.ip_dst = 0x0b000000;
  EXPECT_FALSE(w.contains(h));
  EXPECT_EQ(w.free_bits(), Wildcard::kBits - 8);
}

TEST(Wildcard, IntersectDisjointIsEmpty) {
  Wildcard a, b;
  a.set_field(Field::Vlan, 1);
  b.set_field(Field::Vlan, 2);
  EXPECT_TRUE(a.intersect(b).is_empty());
  EXPECT_FALSE(a.intersects(b));
}

TEST(Wildcard, IntersectIsMeet) {
  Wildcard a, b;
  a.set_field(Field::Vlan, 1);
  b.set_field(Field::IpProto, 6);
  const Wildcard c = a.intersect(b);
  HeaderFields h;
  h.vlan = 1;
  h.ip_proto = 6;
  EXPECT_TRUE(c.contains(h));
  h.ip_proto = 17;
  EXPECT_FALSE(c.contains(h));
}

TEST(Wildcard, SubsetReflexiveAndAntisymmetric) {
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Wildcard a = random_cube(rng);
    EXPECT_TRUE(a.subset_of(a));
    const Wildcard b = random_cube(rng);
    if (a.subset_of(b) && b.subset_of(a)) EXPECT_EQ(a, b);
  }
}

TEST(Wildcard, IntersectionIsLowerBound) {
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Wildcard a = random_cube(rng, 0.15);
    const Wildcard b = random_cube(rng, 0.15);
    const Wildcard c = a.intersect(b);
    if (c.is_empty()) continue;
    EXPECT_TRUE(c.subset_of(a));
    EXPECT_TRUE(c.subset_of(b));
    EXPECT_EQ(a.intersect(b), b.intersect(a));  // commutative
  }
}

TEST(Wildcard, ContainsAgreesWithIntersectOfEncoded) {
  // x ∈ A  <=>  encode(x) ∩ A ≠ ∅  (since encode(x) is a point).
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Wildcard a = random_cube(rng, 0.1);
    const HeaderFields h = random_header(rng);
    EXPECT_EQ(a.contains(h), a.intersects(Wildcard::encode(h)));
  }
}

TEST(Wildcard, SampleAlwaysInsideCube) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Wildcard a = random_cube(rng);
    const HeaderFields h = a.sample(rng);
    EXPECT_TRUE(a.contains(h));
  }
}

TEST(Wildcard, SampleEmptyThrows) {
  Wildcard a, b;
  a.set_field(Field::Vlan, 1);
  b.set_field(Field::Vlan, 2);
  util::Rng rng(6);
  EXPECT_THROW(a.intersect(b).sample(rng), util::InvariantViolation);
}

TEST(CubeSubtract, DisjointLeavesAUntouched) {
  Wildcard a, b;
  a.set_field(Field::Vlan, 1);
  b.set_field(Field::Vlan, 2);
  const auto pieces = cube_subtract(a, b);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], a);
}

TEST(CubeSubtract, FullCoverLeavesNothing) {
  Wildcard a;
  a.set_field(Field::Vlan, 7);
  EXPECT_TRUE(cube_subtract(a, Wildcard::all()).empty());
  EXPECT_TRUE(cube_subtract(a, a).empty());
}

TEST(CubeSubtract, PieceCountBoundedByConstrainedBits) {
  Wildcard b;
  b.set_field(Field::IpProto, 6);  // 8 constrained bits
  const auto pieces = cube_subtract(Wildcard::all(), b);
  EXPECT_EQ(pieces.size(), 8u);
}

// The defining property: x ∈ (A \ B)  <=>  x ∈ A && x ∉ B.
class CubeSubtractProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CubeSubtractProperty, MembershipSemantics) {
  util::Rng rng(GetParam());
  const Wildcard a = random_cube(rng, 0.08);
  const Wildcard b = random_cube(rng, 0.08);
  const auto pieces = cube_subtract(a, b);

  // No piece may intersect b; every piece must lie inside a.
  for (const Wildcard& p : pieces) {
    EXPECT_FALSE(p.intersects(b));
    EXPECT_TRUE(p.subset_of(a));
  }

  // Sampled points: membership in pieces <=> in a and not in b.
  for (int i = 0; i < 40; ++i) {
    const HeaderFields h =
        (i % 2 == 0) ? a.sample(rng) : random_header(rng);
    bool in_pieces = false;
    for (const Wildcard& p : pieces) in_pieces |= p.contains(h);
    EXPECT_EQ(in_pieces, a.contains(h) && !b.contains(h));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeSubtractProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Rewrite, ApplyToHeaderAndCubeAgree) {
  util::Rng rng(7);
  Rewrite rw;
  rw.set_field(Field::Vlan, 42);
  rw.set_field(Field::IpDst, 0x0a000001);
  for (int i = 0; i < 50; ++i) {
    const Wildcard a = random_cube(rng);
    const Wildcard image = rw.apply(a);
    const HeaderFields h = a.sample(rng);
    EXPECT_TRUE(image.contains(rw.apply(h)));
  }
}

TEST(Rewrite, IdentityLeavesUntouched) {
  const Rewrite rw;
  EXPECT_TRUE(rw.identity());
  const Wildcard a = Wildcard::all();
  EXPECT_EQ(rw.apply(a), a);
}

TEST(Rewrite, TouchesReportsFields) {
  Rewrite rw;
  rw.set_field(Field::Vlan, 1);
  EXPECT_TRUE(rw.touches(Field::Vlan));
  EXPECT_FALSE(rw.touches(Field::IpDst));
  EXPECT_THROW(rw.set_field(Field::Vlan, 0x1000), util::InvariantViolation);
}

TEST(Wildcard, ToStringShowsConstrainedFields) {
  Wildcard w;
  w.set_field(Field::Vlan, 5);
  const std::string s = w.to_string();
  EXPECT_NE(s.find("vlan="), std::string::npos);
  EXPECT_EQ(s.find("ip_dst"), std::string::npos);
  EXPECT_EQ(w.field_to_string(Field::Vlan), "000000000101");
}

// --- Randomized algebra round-trips ---
//
// Complement has no direct primitive; ¬A is expressed as all() \ A on
// HeaderSpace and validated through membership of randomized headers, both
// uniform ones and ones sampled from the cubes under test.

class AlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgebraProperty, ComplementPartitionsEveryHeader) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const Wildcard a = random_cube(rng);
    const HeaderSpace complement = HeaderSpace::all().subtract(a);
    for (int k = 0; k < 20; ++k) {
      const HeaderFields h =
          (k % 2 == 0) ? random_header(rng) : a.sample(rng);
      EXPECT_NE(a.contains(h), complement.contains(h)) << a.to_string();
    }
  }
}

TEST_P(AlgebraProperty, DoubleComplementRoundTripsMembership) {
  util::Rng rng(GetParam() ^ 0x1);
  for (int round = 0; round < 10; ++round) {
    const Wildcard a = random_cube(rng);
    // ¬¬A: resolve ¬A to plain cubes and subtract each from the full space.
    HeaderSpace twice = HeaderSpace::all();
    for (const Wildcard& piece : HeaderSpace::all().subtract(a).resolve()) {
      twice = twice.subtract(piece);
    }
    for (int k = 0; k < 20; ++k) {
      const HeaderFields h =
          (k % 2 == 0) ? random_header(rng) : a.sample(rng);
      EXPECT_EQ(twice.contains(h), a.contains(h));
    }
  }
}

TEST_P(AlgebraProperty, IntersectionMembershipIsConjunction) {
  util::Rng rng(GetParam() ^ 0x2);
  for (int round = 0; round < 20; ++round) {
    const Wildcard a = random_cube(rng, 0.15);
    const Wildcard b = random_cube(rng, 0.15);
    const HeaderSpace meet = HeaderSpace(a).intersect(b);
    for (int k = 0; k < 30; ++k) {
      const HeaderFields h = (k % 3 == 0)   ? random_header(rng)
                             : (k % 3 == 1) ? a.sample(rng)
                                            : b.sample(rng);
      EXPECT_EQ(meet.contains(h), a.contains(h) && b.contains(h));
    }
  }
}

TEST_P(AlgebraProperty, SubsetAgreesWithSampledMembership) {
  util::Rng rng(GetParam() ^ 0x3);
  for (int round = 0; round < 20; ++round) {
    const Wildcard b = random_cube(rng, 0.2);
    // Tighten b into a guaranteed subset by fixing a few more free bits.
    Wildcard a = b;
    for (std::size_t i = 0; i < Wildcard::kBits; ++i) {
      if (a.get_bit(i) == Trit::Any && rng.bernoulli(0.1)) {
        a.set_bit(i, rng.next_bit() ? Trit::One : Trit::Zero);
      }
    }
    ASSERT_TRUE(a.subset_of(b));
    // Subset ⟺ intersection is a no-op on the smaller cube.
    EXPECT_EQ(a.intersect(b), a);
    for (int k = 0; k < 20; ++k) {
      EXPECT_TRUE(b.contains(a.sample(rng)));
    }
    // And an independent random cube that claims subset must agree on
    // sampled members.
    const Wildcard c = random_cube(rng, 0.2);
    if (c.subset_of(b)) {
      for (int k = 0; k < 20; ++k) EXPECT_TRUE(b.contains(c.sample(rng)));
    }
  }
}

TEST_P(AlgebraProperty, SubtractPlusIntersectionRoundTripsToOriginal) {
  util::Rng rng(GetParam() ^ 0x4);
  for (int round = 0; round < 10; ++round) {
    const Wildcard a = random_cube(rng, 0.15);
    const Wildcard b = random_cube(rng, 0.15);
    // (A \ B) ∪ (A ∩ B) must have exactly A's members.
    const HeaderSpace recombined =
        HeaderSpace(a).subtract(b).union_with(HeaderSpace(a).intersect(b));
    for (int k = 0; k < 30; ++k) {
      const HeaderFields h =
          (k % 2 == 0) ? random_header(rng) : a.sample(rng);
      EXPECT_EQ(recombined.contains(h), a.contains(h));
    }
  }
}

TEST_P(AlgebraProperty, DeMorganOnMembership) {
  util::Rng rng(GetParam() ^ 0x5);
  for (int round = 0; round < 10; ++round) {
    const Wildcard a = random_cube(rng, 0.15);
    const Wildcard b = random_cube(rng, 0.15);
    const HeaderSpace not_a = HeaderSpace::all().subtract(a);
    const HeaderSpace not_b = HeaderSpace::all().subtract(b);
    const HeaderSpace meet = HeaderSpace(a).intersect(b);
    for (int k = 0; k < 30; ++k) {
      const HeaderFields h = (k % 3 == 0)   ? random_header(rng)
                             : (k % 3 == 1) ? a.sample(rng)
                                            : b.sample(rng);
      // ¬(A ∩ B) = ¬A ∪ ¬B, checked pointwise.
      EXPECT_EQ(!meet.contains(h), not_a.contains(h) || not_b.contains(h));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace rvaas::hsa
