// Unit tests for the util layer: strong ids, rng, bytes codec, hex, stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "util/bytes.hpp"
#include "util/ensure.hpp"
#include "util/hex.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rvaas::util {
namespace {

using TestId = StrongId<struct TestTag>;

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(TestId(3), TestId(3));
  EXPECT_NE(TestId(3), TestId(4));
  EXPECT_LT(TestId(3), TestId(4));
}

TEST(StrongId, HashableInUnorderedSet) {
  std::unordered_set<TestId> ids{TestId(1), TestId(2), TestId(1)};
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Ensure, ThrowsOnViolation) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  EXPECT_THROW(ensure(false, "boom"), InvariantViolation);
  EXPECT_THROW(unreachable("bad"), InvariantViolation);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
  EXPECT_THROW(rng.below(0), InvariantViolation);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_bool(true);
  w.put_string("hello");
  w.put_bytes(Bytes{1, 2, 3});

  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_THROW(r.get_u32(), DecodeError);
}

TEST(Bytes, TrailingGarbageDetected) {
  ByteWriter w;
  w.put_u32(1);
  ByteReader r(w.data());
  r.get_u16();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Bytes, LengthPrefixBeyondBufferThrows) {
  ByteWriter w;
  w.put_u32(1000);  // claims 1000 bytes follow
  ByteReader r(w.data());
  EXPECT_THROW(r.get_bytes(), DecodeError);
}

TEST(Hex, RoundTrip) {
  const Bytes b{0x00, 0x01, 0xfe, 0xff};
  EXPECT_EQ(to_hex(b), "0001feff");
  EXPECT_EQ(from_hex("0001feff"), b);
  EXPECT_EQ(from_hex("0001FEFF"), b);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), DecodeError);   // odd length
  EXPECT_THROW(from_hex("zz"), DecodeError);    // bad digit
}

TEST(Samples, BasicStatistics) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), InvariantViolation);
  EXPECT_THROW(s.percentile(50), InvariantViolation);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), InvariantViolation);
}

TEST(Table, FmtFormatsPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace rvaas::util
