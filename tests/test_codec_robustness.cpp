// Codec robustness for the in-band wire protocol: the controller and client
// parse attacker-reachable bytes (the provider forwards whatever it wants
// into the magic channel), so every length-prefixed path in query.cpp /
// monitor notification decoding / inband.cpp must reject truncated,
// bit-flipped and oversized messages without crashing — and without
// allocating memory proportional to a *claimed* length that the buffer
// cannot back.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "enclave/enclave.hpp"
#include "hsa/transfer.hpp"
#include "net/client.hpp"
#include "rvaas/multiprovider.hpp"
#include "net/server.hpp"
#include "rvaas/inband.hpp"
#include "util/rng.hpp"
#include "workload/wire_world.hpp"

namespace rvaas::core {
namespace {

using sdn::Field;
using sdn::HostId;
using sdn::Match;
using sdn::Packet;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

struct CodecFixture : ::testing::Test {
  util::Rng rng{0xc0dec};
  enclave::Enclave enclave{"rvaas", "1.0", rng};
  crypto::SigningKey client_key = crypto::SigningKey::generate(rng);
  crypto::BoxOpener client_box = crypto::BoxOpener::generate(rng);
  control::HostAddress addr = control::HostAddressing::derive(HostId(1000));

  QueryRequest sample_request() {
    QueryRequest request;
    request.request_id = 7;
    request.client = HostId(1000);
    request.query.kind = QueryKind::Isolation;
    request.query.constraint = Match().exact(Field::IpProto, 6);
    return request;
  }

  SubscribeRequest sample_subscribe() {
    SubscribeRequest request;
    request.subscription_id = 9;
    request.client = HostId(1000);
    request.policy = NotifyPolicy::EveryChange;
    request.property.kind = QueryKind::Geo;
    request.property.expect.allowed_jurisdictions = {"DE", "FR"};
    request.freshness = 1;
    return request;
  }

  Notification sample_notification() {
    Notification n;
    n.subscription_id = 9;
    n.sequence = 3;
    n.kind = NotificationKind::ViolationAlert;
    n.epoch = 12;
    n.property_fingerprint = 0xabcd;
    n.reply.kind = QueryKind::Geo;
    n.reply.jurisdictions = {"DE", "US"};
    n.reply.endpoints.push_back(
        EndpointInfo{PortRef{SwitchId(2), PortNo(1)}, true, false, {}});
    return n;
  }

  QueryReply sample_reply() {
    QueryReply reply;
    reply.request_id = 7;
    reply.kind = QueryKind::Isolation;
    reply.endpoints.push_back(EndpointInfo{PortRef{SwitchId(1), PortNo(2)},
                                           false, true, HostId(1001)});
    reply.auth = {1, 1};
    reply.fairness.push_back(FairnessMetric{"min-rate-bps", 42});
    // Degraded freshness: the section is attacker-reachable like the rest
    // of the reply, so the assault below also walks its bytes.
    reply.freshness.max_staleness = 123456789;
    reply.freshness.unreachable = {SwitchId(2), SwitchId(5)};
    // A policy crossing, so the assaults walk PolicyReportItem bytes too.
    reply.policy_report.push_back(PolicyReportItem{
        PolicyVerdict::RouteLeak, ProviderId(1), ProviderId(2),
        PortRef{SwitchId(3), PortNo(3)}, PortRef{SwitchId(1), PortNo(3)},
        0x1234567890abcdefu});
    return reply;
  }

  Notification sample_degraded_notification() {
    // The reply shell of a VerificationDegraded push carries no evaluation,
    // only the property kind and a non-zero freshness section.
    Notification n;
    n.subscription_id = 9;
    n.sequence = 4;
    n.kind = NotificationKind::VerificationDegraded;
    n.epoch = 12;
    n.property_fingerprint = 0xabcd;
    n.reply.request_id = 9;
    n.reply.kind = QueryKind::ReachableEndpoints;
    n.reply.freshness.max_staleness = 40 * sim::kMillisecond;
    n.reply.freshness.unreachable = {SwitchId(3)};
    return n;
  }

  /// Runs `open` against every truncation and a bit flip in every byte of
  /// `packet`'s payload; `open` must never throw, and flipped variants may
  /// only succeed with their authenticity bit cleared (`ok_means_authentic`
  /// false allows flips that survive as unauthenticated parses).
  template <class Open>
  void assault(const Packet& packet, Open&& open) {
    // Truncations at every length.
    for (std::size_t len = 0; len < packet.payload.size(); ++len) {
      Packet t = packet;
      t.payload.resize(len);
      EXPECT_NO_THROW(open(t)) << "truncated to " << len;
    }
    // Single bit flip in every byte.
    for (std::size_t i = 0; i < packet.payload.size(); ++i) {
      Packet t = packet;
      t.payload[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
      EXPECT_NO_THROW(open(t)) << "bit flip at byte " << i;
    }
  }

  /// Trailing junk after a well-formed envelope: must not crash (the box /
  /// signature content is still authenticated, so acceptance is harmless
  /// and left unspecified).
  template <class Open>
  void inflate(const Packet& packet, Open&& open) {
    Packet big = packet;
    big.payload.insert(big.payload.end(), 64, 0xee);
    EXPECT_NO_THROW(open(big));
  }
};

TEST_F(CodecFixture, RequestPacketSurvivesTruncationAndBitFlips) {
  const Packet packet = inband::make_request_packet(
      addr, sample_request(), enclave.box_public(), rng);
  ASSERT_TRUE(inband::open_request(packet, enclave).has_value());
  assault(packet, [&](const Packet& p) {
    const auto opened = inband::open_request(p, enclave);
    // A tampered box must never decrypt: sealed boxes are authenticated.
    if (p.payload != packet.payload) EXPECT_FALSE(opened.has_value());
  });
  inflate(packet, [&](const Packet& p) { (void)inband::open_request(p, enclave); });
}

TEST_F(CodecFixture, SubscribePacketSurvivesTruncationAndBitFlips) {
  const Packet packet = inband::make_subscribe_packet(
      addr, sample_subscribe(), client_key, enclave.box_public(), rng);
  ASSERT_TRUE(inband::open_subscribe(packet, enclave).has_value());
  assault(packet, [&](const Packet& p) {
    const auto opened = inband::open_subscribe(p, enclave);
    if (p.payload != packet.payload) EXPECT_FALSE(opened.has_value());
  });
  inflate(packet,
          [&](const Packet& p) { (void)inband::open_subscribe(p, enclave); });
}

TEST_F(CodecFixture, NotifyPacketSurvivesTruncationAndBitFlips) {
  const Packet packet = inband::make_notify_packet(
      sample_notification(), enclave, client_box.public_element(), rng);
  const auto opened =
      inband::open_notify(packet, client_box, enclave.verify_key());
  ASSERT_TRUE(opened.has_value());
  ASSERT_TRUE(opened->signature_ok);
  assault(packet, [&](const Packet& p) {
    const auto o = inband::open_notify(p, client_box, enclave.verify_key());
    if (p.payload != packet.payload) EXPECT_FALSE(o.has_value());
  });
  inflate(packet, [&](const Packet& p) {
    (void)inband::open_notify(p, client_box, enclave.verify_key());
  });
}

TEST_F(CodecFixture, DegradedNotifyPacketSurvivesTruncationAndBitFlips) {
  const Packet packet = inband::make_notify_packet(
      sample_degraded_notification(), enclave, client_box.public_element(),
      rng);
  const auto opened =
      inband::open_notify(packet, client_box, enclave.verify_key());
  ASSERT_TRUE(opened.has_value());
  ASSERT_TRUE(opened->signature_ok);
  EXPECT_EQ(opened->notification.kind, NotificationKind::VerificationDegraded);
  EXPECT_TRUE(opened->notification.reply.freshness.degraded());
  assault(packet, [&](const Packet& p) {
    const auto o = inband::open_notify(p, client_box, enclave.verify_key());
    if (p.payload != packet.payload) EXPECT_FALSE(o.has_value());
  });
  inflate(packet, [&](const Packet& p) {
    (void)inband::open_notify(p, client_box, enclave.verify_key());
  });
}

/// The freshness section must round-trip exactly: a dropped or reordered
/// unreachable list would silently change a fail-stale verdict.
TEST_F(CodecFixture, FreshnessSectionRoundTripsThroughReplyAndNotify) {
  {
    const Packet packet = inband::make_reply_packet(
        sample_reply(), enclave, client_box.public_element(), rng);
    const auto opened =
        inband::open_reply(packet, client_box, enclave.verify_key());
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->reply.freshness, sample_reply().freshness);
  }
  {
    const Packet packet = inband::make_notify_packet(
        sample_degraded_notification(), enclave, client_box.public_element(),
        rng);
    const auto opened =
        inband::open_notify(packet, client_box, enclave.verify_key());
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->notification.reply.freshness,
              sample_degraded_notification().reply.freshness);
  }
}

TEST_F(CodecFixture, ReplyPacketSurvivesTruncationAndBitFlips) {
  const Packet packet = inband::make_reply_packet(
      sample_reply(), enclave, client_box.public_element(), rng);
  const auto opened =
      inband::open_reply(packet, client_box, enclave.verify_key());
  ASSERT_TRUE(opened.has_value());
  ASSERT_TRUE(opened->signature_ok);
  assault(packet, [&](const Packet& p) {
    const auto o = inband::open_reply(p, client_box, enclave.verify_key());
    if (p.payload != packet.payload) EXPECT_FALSE(o.has_value());
  });
  inflate(packet, [&](const Packet& p) {
    (void)inband::open_reply(p, client_box, enclave.verify_key());
  });
}

/// The policy_report section must round-trip exactly: a reordered or
/// reworded crossing would change which violation a client attributes to
/// which domain pair.
TEST_F(CodecFixture, PolicyReportRoundTripsThroughReply) {
  const Packet packet = inband::make_reply_packet(
      sample_reply(), enclave, client_box.public_element(), rng);
  const auto opened =
      inband::open_reply(packet, client_box, enclave.verify_key());
  ASSERT_TRUE(opened.has_value());
  ASSERT_EQ(opened->reply.policy_report.size(), 1u);
  EXPECT_EQ(opened->reply.policy_report, sample_reply().policy_report);
}

/// Federated subquery payloads (v2) bind the crossing point, the crossing
/// header space fingerprint AND the remaining walk depth. A signature
/// recorded for one crossing must not verify for a different space or a
/// different budget — otherwise a compromised domain could replay an old
/// authorization for traffic it was never asked about.
TEST_F(CodecFixture, SubqueryPayloadBindsSpaceAndDepth) {
  const PortRef ingress{SwitchId(4), PortNo(2)};
  const hsa::HeaderSpace tcp(hsa::match_to_cube(
      Match().exact(Field::IpProto, sdn::kIpProtoTcp)));
  const hsa::HeaderSpace udp(hsa::match_to_cube(
      Match().exact(Field::IpProto, sdn::kIpProtoUdp)));

  const util::Bytes payload = Federation::subquery_payload(ingress, tcp, 5);
  const crypto::Signature sig = enclave.sign(payload);
  ASSERT_TRUE(enclave.verify_key().verify(payload, sig));

  // Same crossing, different traffic: rejected.
  EXPECT_FALSE(enclave.verify_key().verify(
      Federation::subquery_payload(ingress, udp, 5), sig));
  // Same traffic, different remaining depth: rejected.
  EXPECT_FALSE(enclave.verify_key().verify(
      Federation::subquery_payload(ingress, tcp, 4), sig));
  // Different crossing point: rejected.
  EXPECT_FALSE(enclave.verify_key().verify(
      Federation::subquery_payload(PortRef{SwitchId(4), PortNo(3)}, tcp, 5),
      sig));
}

TEST_F(CodecFixture, AuthPacketsSurviveTruncationAndBitFlips) {
  inband::AuthRequest req;
  req.request_id = 11;
  req.nonce = 0x1234;
  req.target = PortRef{SwitchId(3), PortNo(1)};
  const Packet request = inband::make_auth_request(req, enclave);
  ASSERT_TRUE(
      inband::verify_auth_request(request, enclave.verify_key()).has_value());
  assault(request, [&](const Packet& p) {
    const auto o = inband::verify_auth_request(p, enclave.verify_key());
    // Auth requests are signed plaintext: any tamper breaks the signature.
    if (p.payload != request.payload) EXPECT_FALSE(o.has_value());
  });

  inband::AuthReply reply;
  reply.request_id = 11;
  reply.nonce = 0x1234;
  reply.client = HostId(1000);
  const Packet reply_packet = inband::make_auth_reply(addr, reply, client_key);
  ASSERT_TRUE(inband::parse_auth_reply(reply_packet).has_value());
  assault(reply_packet, [&](const Packet& p) {
    // parse_auth_reply parses without verifying; it must simply not crash.
    (void)inband::parse_auth_reply(p);
  });
  inflate(request, [&](const Packet& p) {
    (void)inband::verify_auth_request(p, enclave.verify_key());
  });
  inflate(reply_packet,
          [&](const Packet& p) { (void)inband::parse_auth_reply(p); });
}

// --- oversized length prefixes: reject before allocating ---

/// A message claiming a 4 GiB payload over a few real bytes must be
/// rejected by the bounds check, not by an allocation attempt. ByteReader
/// verifies `need(n)` against the remaining buffer before materializing
/// bytes, so the claim is rejected in O(1).
TEST_F(CodecFixture, OversizedLengthPrefixRejectedWithoutAllocation) {
  util::ByteWriter w;
  w.put_u32(0xffffffffu);  // claimed length: 4 GiB - 1
  w.put_u8(0xaa);          // actual content: 1 byte
  util::ByteReader r(w.data());
  EXPECT_THROW((void)r.get_bytes(), util::DecodeError);

  // The same claim inside a packet envelope: open_* reports tamper.
  Packet p;
  p.hdr.eth_type = sdn::kEthTypeIpv4;
  p.hdr.ip_proto = sdn::kIpProtoUdp;
  p.hdr.l4_dst = sdn::kPortRvaasRequest;
  util::ByteWriter pw;
  pw.put_u32(0x52565131u);  // "RVQ1"
  pw.put_u32(0xfffffff0u);  // box length claim far past the buffer
  pw.put_u64(0);
  p.payload = pw.take();
  EXPECT_EQ(inband::open_request(p, enclave), std::nullopt);
}

/// Structure-level decoders loop over u32 element counts; a huge count over
/// a truncated buffer must throw on the first missing element instead of
/// reserving or looping 2^32 times over allocations.
TEST_F(CodecFixture, HugeElementCountsThrowFastOnTruncatedBuffers) {
  {
    util::ByteWriter w;
    w.put_u64(1);           // request_id
    w.put_u8(0);            // kind
    w.put_u32(0xffffffffu); // endpoint count claim
    util::ByteReader r(w.data());
    EXPECT_THROW((void)QueryReply::deserialize(r), util::DecodeError);
  }
  {
    util::ByteWriter w;
    w.put_bool(false);      // no in_port
    w.put_u32(0xffffffffu); // field-match count claim
    util::ByteReader r(w.data());
    EXPECT_THROW((void)Match::deserialize(r), util::DecodeError);
  }
  {
    util::ByteWriter w;
    w.put_u32(0xffffffffu); // allowed-endpoint count claim
    util::ByteReader r(w.data());
    EXPECT_THROW((void)Expectation::deserialize(r), util::DecodeError);
  }
  {
    util::ByteWriter w;
    w.put_u64(1);           // max_staleness
    w.put_u32(0xffffffffu); // unreachable-switch count claim
    util::ByteReader r(w.data());
    EXPECT_THROW((void)FreshnessInfo::deserialize(r), util::DecodeError);
  }
  {
    util::ByteWriter w;
    w.put_u64(9);           // subscription id
    w.put_u64(1);           // sequence
    w.put_u8(0);            // kind
    w.put_u64(0);           // epoch
    w.put_u64(0);           // fingerprint
    w.put_u64(1);           // reply request_id
    w.put_u8(0);            // reply kind
    w.put_u32(0x7fffffffu); // reply endpoint count claim
    util::ByteReader r(w.data());
    EXPECT_THROW((void)Notification::deserialize(r), util::DecodeError);
  }
}

/// Seeded random garbage across all in-band entry points: no crashes, no
/// accidental accepts (the tag/classify gate plus authenticated sealing
/// keeps garbage out).
TEST_F(CodecFixture, RandomGarbageNeverCrashesOrAuthenticates) {
  util::Rng garbage_rng(20260729);
  for (int i = 0; i < 300; ++i) {
    Packet p;
    p.hdr.eth_type = sdn::kEthTypeIpv4;
    p.hdr.ip_proto = sdn::kIpProtoUdp;
    p.hdr.l4_dst = i % 3 == 0   ? sdn::kPortRvaasRequest
                   : i % 3 == 1 ? sdn::kPortRvaasReply
                                : sdn::kPortRvaasAuth;
    const std::size_t len = garbage_rng.below(96);
    p.payload.resize(len);
    for (auto& byte : p.payload) {
      byte = static_cast<std::uint8_t>(garbage_rng.below(256));
    }
    if (i % 5 == 0 && len >= 4) {
      // Give a fifth of the corpus a valid tag so decoding goes deeper,
      // cycling through all six envelopes ('Q' requests, 'A' auth
      // requests, 'R' auth replies, 'P' replies, 'S' subscribes,
      // 'N' notifications).
      static constexpr std::uint8_t kTagBytes[] = {0x51, 0x41, 0x52,
                                                   0x50, 0x53, 0x4e};
      p.payload[0] = 0x31;
      p.payload[1] = kTagBytes[garbage_rng.below(6)];
      p.payload[2] = 0x56;
      p.payload[3] = 0x52;
    }
    EXPECT_NO_THROW({
      (void)inband::open_request(p, enclave);
      (void)inband::open_subscribe(p, enclave);
      (void)inband::parse_auth_reply(p);
      (void)inband::open_reply(p, client_box, enclave.verify_key());
      (void)inband::open_notify(p, client_box, enclave.verify_key());
      (void)inband::verify_auth_request(p, enclave.verify_key());
    });
    EXPECT_FALSE(inband::open_request(p, enclave).has_value());
  }
}

// --- socket-level assault ---
// The same contract one layer down: the TCP front-end (src/net) parses
// attacker-controlled stream bytes before any envelope is opened, so
// truncated frames, bit flips and seeded garbage fired into a live server
// must never crash it and never produce a verified reply — and legitimate
// sessions must keep working throughout.

struct SocketAssault : ::testing::Test {
  void SetUp() override {
    workload::ScenarioConfig config;
    config.generated = workload::linear_fanout(2, 2);
    config.seed = 0xa55a;
    const auto& hosts = config.generated.hosts;
    wire_hosts.assign(hosts.end() - 2, hosts.end());
    config.wire_hosts = wire_hosts;
    runtime = std::make_unique<workload::ScenarioRuntime>(std::move(config));
    runtime->settle(50 * sim::kMillisecond);
    service = std::make_unique<net::WireService>(runtime->loop());
    server = std::make_unique<net::WireServer>(
        net::WireServerConfig{}, runtime->rvaas(), *service,
        runtime->ias().root_key(), workload::wire_slots(*runtime, wire_hosts),
        0xbad);
    service->start();
    server->start();
  }

  void TearDown() override {
    server->stop();
    service->stop();
  }

  /// Raw TCP connection to the server, bypassing WireClient entirely.
  int raw_connect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  }

  void raw_send(int fd, std::span<const std::uint8_t> bytes) {
    (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }

  /// The liveness probe: a fresh legitimate session must still handshake,
  /// attest and get a signed Geo reply.
  void expect_server_alive(std::uint64_t seed) {
    net::WireClientConfig config;
    config.port = server->port();
    config.requested_host = wire_hosts[0].value;
    config.seed = seed;
    net::WireClient client(config);
    ASSERT_EQ(client.connect(), net::WelcomeStatus::Ok);
    Query query;
    query.kind = QueryKind::Geo;
    const auto outcome = client.query(query, 30'000);
    ASSERT_TRUE(outcome.reply.has_value());
    EXPECT_TRUE(outcome.signature_ok);
    client.close();
  }

  std::vector<HostId> wire_hosts;
  std::unique_ptr<workload::ScenarioRuntime> runtime;
  std::unique_ptr<net::WireService> service;
  std::unique_ptr<net::WireServer> server;
};

TEST_F(SocketAssault, TruncatedAndBogusFramesNeverWedgeTheServer) {
  {  // Oversized length claim straight after connect.
    const int fd = raw_connect();
    const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
    raw_send(fd, huge);
    ::close(fd);
  }
  {  // Zero-length claim.
    const int fd = raw_connect();
    const std::uint8_t zero[4] = {0, 0, 0, 0};
    raw_send(fd, zero);
    ::close(fd);
  }
  {  // Truncated frame: claim 64 KiB, deliver 10 bytes, vanish.
    const int fd = raw_connect();
    const std::uint8_t prefix[4] = {0x00, 0x01, 0x00, 0x00};
    raw_send(fd, prefix);
    const std::uint8_t stub[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    raw_send(fd, stub);
    ::close(fd);
  }
  {  // Split length prefix, then abrupt close mid-prefix.
    const int fd = raw_connect();
    const std::uint8_t half[2] = {0x00, 0x00};
    raw_send(fd, half);
    ::close(fd);
  }
  expect_server_alive(0x11fe);
}

TEST_F(SocketAssault, SeededGarbageStreamsNeverCrashOrAuthenticate) {
  util::Rng rng(20260808);
  for (int i = 0; i < 40; ++i) {
    const int fd = raw_connect();
    util::Bytes stream;
    if (i % 2 == 0) {
      // Well-framed garbage: valid length prefixes over random payloads,
      // a quarter of them leading with a real wire tag so the server
      // parses deeper before rejecting.
      util::Bytes payload(1 + rng.below(200));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
      if (i % 4 == 0 && payload.size() >= 4) {
        payload[0] = 0x31;  // "1HVR" little-endian = WireTag::Hello
        payload[1] = 0x48;
        payload[2] = 0x56;
        payload[3] = 0x52;
      }
      stream = net::encode_frame(payload);
    } else {
      // Raw noise, length prefix and all.
      stream.resize(1 + rng.below(64));
      for (auto& b : stream) b = static_cast<std::uint8_t>(rng.below(256));
    }
    // Bit-flip a random position so even "valid" prefixes get corrupted
    // half the time.
    if (!stream.empty() && rng.below(2) == 0) {
      stream[rng.below(stream.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    raw_send(fd, stream);
    ::close(fd);
  }
  expect_server_alive(0x11ff);
  const auto stats = server->stats();
  EXPECT_GT(stats.bad_frames + stats.bad_hellos, 0u);
}

TEST_F(SocketAssault, PostHandshakeGarbageNeverYieldsVerifiedTraffic) {
  net::WireClientConfig config;
  config.port = server->port();
  config.requested_host = wire_hosts[1].value;
  config.seed = 0x5ab07a9e;
  net::WireClient client(config);
  ASSERT_EQ(client.connect(), net::WelcomeStatus::Ok);

  // Fire well-framed garbage down the established session: random payloads,
  // some tagged INBAND so the packet/envelope decoders run. The frames are
  // length-valid, so the stream stays parseable and the session stays up.
  util::Rng rng(0xf1a6);
  for (int i = 0; i < 60; ++i) {
    util::Bytes payload(4 + rng.below(120));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
    if (i % 2 == 0) {
      payload[0] = 0x31;  // WireTag::Inband "RVF1"
      payload[1] = 0x46;
      payload[2] = 0x56;
      payload[3] = 0x52;
    }
    ASSERT_TRUE(client.send_raw(net::encode_frame(payload)));
  }

  // Nothing the garbage provoked passes the client's signature checks.
  EXPECT_FALSE(client.wait_notification(300).has_value());
  EXPECT_EQ(client.stats().notifications_received, 0u);

  // The same connection still serves legitimate queries afterwards.
  Query query;
  query.kind = QueryKind::TransferSummary;
  const auto outcome = client.query(query, 30'000);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_TRUE(outcome.signature_ok);

  const auto stats = server->stats();
  EXPECT_GT(stats.bad_frames + stats.bad_envelopes, 0u);
  client.close();
}

}  // namespace
}  // namespace rvaas::core
