// Push-style continuous verification: subscription notifications must be
// byte-identical to cold one-shot queries for every QueryKind across
// randomized churn, wakeups must be confined by the dependency footprint,
// alerts must carry valid enclave signatures, and the parallel sweep must be
// equivalent across thread counts.

#include <gtest/gtest.h>

#include "rvaas/monitor.hpp"
#include "workload/scenario.hpp"

namespace rvaas::workload {
namespace {

using core::ClientAgent;
using core::NotificationKind;
using core::NotifyPolicy;
using core::Property;
using core::PropertyMonitor;
using core::Query;
using core::QueryKind;
using core::QueryReply;
using sdn::Field;
using sdn::FlowMod;
using sdn::HostId;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

constexpr sdn::ControllerId kProviderId{1};

/// Serialized reply with the request id normalized away (a one-shot reply
/// carries the client's request id, a notification the subscription id; the
/// verdict-relevant content must be byte-identical).
util::Bytes reply_bytes(QueryReply reply) {
  reply.request_id = 0;
  util::ByteWriter w;
  reply.serialize(w);
  return w.take();
}

/// Applies a random (possibly routing-relevant) flow-table change through
/// the provider's authenticated channel, like a reconfiguring provider.
void random_churn(ScenarioRuntime& runtime, util::Rng& rng) {
  const auto switches = runtime.network().topology().switches();
  const SwitchId sw = switches[rng.below(switches.size())];
  FlowMod mod;
  mod.priority = static_cast<std::uint16_t>(1 + rng.below(30));
  mod.cookie = 0xc0ffee00 | rng.below(256);
  mod.match = Match().exact(Field::L4Dst, 7000 + rng.below(8));
  mod.actions = {sdn::output(PortNo(static_cast<std::uint32_t>(
      rng.below(4))))};
  runtime.network().switch_sim(sw).apply_flow_mod(kProviderId, mod);
}

TEST(Monitor, NotificationsByteIdenticalToColdQueriesAllKinds) {
  ScenarioConfig config;
  config.generated = linear(4);
  config.seed = 7;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  // One EveryChange subscription per QueryKind, all from hosts[0].
  struct Tracked {
    Property property;
    std::optional<QueryReply> last_reply;
    std::uint64_t events = 0;
  };
  std::vector<Tracked> tracked;
  for (const QueryKind kind :
       {QueryKind::ReachableEndpoints, QueryKind::ReachingSources,
        QueryKind::Isolation, QueryKind::Geo, QueryKind::PathLength,
        QueryKind::Fairness, QueryKind::TransferSummary}) {
    Property property;
    property.kind = kind;
    if (kind == QueryKind::PathLength) property.peer = hosts[3];
    tracked.push_back(Tracked{property, std::nullopt, 0});
  }
  for (Tracked& t : tracked) {
    runtime.client(hosts[0]).subscribe(
        t.property,
        [&t](const ClientAgent::MonitorEvent& event) {
          EXPECT_TRUE(event.signature_ok);
          t.last_reply = event.reply;
          ++t.events;
        },
        NotifyPolicy::EveryChange);
  }
  runtime.settle(20 * sim::kMillisecond);

  // The baseline push landed for every kind and matches a cold query.
  util::Rng rng(123);
  for (int round = 0; round < 6; ++round) {
    if (round > 0) {
      random_churn(runtime, rng);
      runtime.settle(20 * sim::kMillisecond);
    }
    for (Tracked& t : tracked) {
      ASSERT_TRUE(t.last_reply.has_value())
          << "no notification for " << to_string(t.property.kind);
      const auto cold = runtime.query_and_wait(hosts[0], t.property.query());
      ASSERT_TRUE(cold.reply.has_value());
      EXPECT_EQ(reply_bytes(*t.last_reply), reply_bytes(*cold.reply))
          << "round " << round << ", kind " << to_string(t.property.kind);
    }
  }
}

TEST(Monitor, WakeupsConfinedToFootprint) {
  ScenarioConfig config;
  config.generated = linear(5);
  config.seed = 11;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  // A subscription constrained to the next-door neighbor: its dependency
  // footprint covers the short path only, not the whole line.
  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  property.constraint =
      Match().exact(Field::IpDst, runtime.addressing().of(hosts[1]).ip);
  std::uint64_t events = 0;
  const std::uint64_t sub_id = runtime.client(hosts[0]).subscribe(
      property, [&events](const ClientAgent::MonitorEvent&) { ++events; },
      NotifyPolicy::EveryChange);
  runtime.settle(20 * sim::kMillisecond);
  EXPECT_EQ(events, 1u);  // baseline

  const PropertyMonitor::Subscription* sub =
      runtime.rvaas().monitor().find(hosts[0], sub_id);
  ASSERT_NE(sub, nullptr);
  ASSERT_FALSE(sub->footprint.empty());

  // Pick a switch outside the footprint (the far end of the line).
  std::optional<SwitchId> outside;
  for (const SwitchId sw : runtime.network().topology().switches()) {
    if (std::find(sub->footprint.begin(), sub->footprint.end(), sw) ==
        sub->footprint.end()) {
      outside = sw;
    }
  }
  ASSERT_TRUE(outside.has_value()) << "footprint covers the whole topology";

  // Churn confined outside the footprint: the sweep runs but wakes nothing.
  const auto before = runtime.rvaas().monitor().stats();
  FlowMod mod;
  mod.priority = 3;
  mod.cookie = 0xd15c0;
  mod.match = Match().exact(Field::L4Dst, 9999);
  mod.actions = {sdn::drop()};
  runtime.network().switch_sim(*outside).apply_flow_mod(kProviderId, mod);
  runtime.settle(20 * sim::kMillisecond);

  const auto after = runtime.rvaas().monitor().stats();
  EXPECT_EQ(after.wakeups, before.wakeups);  // zero re-evaluations
  EXPECT_GT(after.sweeps, before.sweeps);    // the churn was considered
  EXPECT_EQ(events, 1u);                     // and nothing was pushed

  // Churn ON the footprint wakes the subscription.
  runtime.network()
      .switch_sim(sub->footprint.front())
      .apply_flow_mod(kProviderId, mod);
  runtime.settle(20 * sim::kMillisecond);
  EXPECT_GT(runtime.rvaas().monitor().stats().wakeups, after.wakeups);
}

TEST(Monitor, AlertOnViolationSignedAndAllClearOnRepair) {
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 42;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  property.expect.allowed_endpoints = {hosts[1], hosts[2]};

  std::vector<ClientAgent::MonitorEvent> events;
  runtime.client(hosts[0]).subscribe(
      property, [&events](const ClientAgent::MonitorEvent& event) {
        events.push_back(event);
      });
  runtime.settle(20 * sim::kMillisecond);

  // Baseline: all endpoints legitimate and authenticated.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].signature_ok);
  EXPECT_EQ(events[0].kind, NotificationKind::AllClear);
  EXPECT_TRUE(events[0].verdict.ok);
  EXPECT_EQ(events[0].sequence, 1u);

  // The compromised provider clones the victim's flow to a dark port:
  // the monitor catches the flow-mod and pushes a signed ViolationAlert.
  attacks::ExfiltrationAttack attack(hosts[0], hosts[2]);
  const auto record = attack.launch(runtime.provider(), runtime.network());
  ASSERT_TRUE(record.has_value());
  runtime.settle(20 * sim::kMillisecond);

  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].signature_ok);  // verified against the enclave key
  EXPECT_EQ(events[1].kind, NotificationKind::ViolationAlert);
  EXPECT_FALSE(events[1].verdict.ok);
  EXPECT_EQ(events[1].sequence, 2u);
  bool dark_flagged = false;
  for (const auto& v : events[1].verdict.violations) {
    dark_flagged |= v.find("dark") != std::string::npos;
  }
  EXPECT_TRUE(dark_flagged);

  // Unrelated-verdict churn is suppressed under VerdictEdges...
  const auto suppressed_before =
      runtime.rvaas().monitor().stats().suppressed;
  FlowMod noise;
  noise.priority = 2;
  noise.cookie = 0xbeef;
  noise.match = Match().exact(Field::L4Dst, 8888);
  noise.actions = {sdn::drop()};
  runtime.network().switch_sim(SwitchId(2)).apply_flow_mod(kProviderId, noise);
  runtime.settle(20 * sim::kMillisecond);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GT(runtime.rvaas().monitor().stats().suppressed, suppressed_before);

  // ...and deleting the injected rule (found by its cookie on the victim's
  // ingress switch) flips the verdict back: AllClear.
  std::size_t removed = 0;
  for (const SwitchId sw : runtime.network().topology().switches()) {
    for (const auto& entry : runtime.rvaas().snapshot().table(sw)) {
      if (entry.cookie != 0xe4f1) continue;
      FlowMod remove;
      remove.command = sdn::FlowModCommand::Delete;
      remove.target = entry.id;
      const auto result =
          runtime.network().switch_sim(sw).apply_flow_mod(kProviderId, remove);
      EXPECT_TRUE(result.ok());
      ++removed;
    }
  }
  ASSERT_EQ(removed, 1u);
  runtime.settle(20 * sim::kMillisecond);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].kind, NotificationKind::AllClear);
  EXPECT_TRUE(events[2].verdict.ok);
  EXPECT_EQ(events[2].sequence, 3u);

  const auto& stats = runtime.rvaas().stats();
  EXPECT_EQ(stats.subscribes_received, 1u);
  EXPECT_EQ(stats.notifications_sent, 3u);
  EXPECT_EQ(runtime.client(hosts[0]).stats().alerts_received, 1u);
  EXPECT_EQ(runtime.client(hosts[0]).stats().all_clears_received, 2u);
}

TEST(Monitor, UnsubscribeStopsNotifications) {
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 5;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  std::uint64_t events = 0;
  Property property;
  property.kind = QueryKind::TransferSummary;
  const std::uint64_t sub_id = runtime.client(hosts[0]).subscribe(
      property, [&events](const ClientAgent::MonitorEvent&) { ++events; },
      NotifyPolicy::EveryChange);
  runtime.settle(20 * sim::kMillisecond);
  EXPECT_EQ(events, 1u);
  EXPECT_EQ(runtime.rvaas().monitor().active(), 1u);

  runtime.client(hosts[0]).unsubscribe(sub_id);
  runtime.settle(20 * sim::kMillisecond);
  EXPECT_EQ(runtime.rvaas().monitor().active(), 0u);
  EXPECT_EQ(runtime.rvaas().stats().unsubscribes_received, 1u);

  util::Rng rng(9);
  random_churn(runtime, rng);
  runtime.settle(20 * sim::kMillisecond);
  EXPECT_EQ(events, 1u);  // nothing new
}

TEST(Monitor, PerClientSubscriptionCapEnforced) {
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 6;
  config.rvaas.max_subscriptions_per_client = 1;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  Property property;
  property.kind = QueryKind::TransferSummary;
  auto noop = [](const ClientAgent::MonitorEvent&) {};
  runtime.client(hosts[0]).subscribe(property, noop);
  runtime.client(hosts[0]).subscribe(property, noop);  // over the cap
  runtime.settle(20 * sim::kMillisecond);

  EXPECT_EQ(runtime.rvaas().monitor().active(), 1u);
  EXPECT_GE(runtime.rvaas().stats().bad_requests, 1u);
  // Another client still has room.
  runtime.client(hosts[1]).subscribe(property, noop);
  runtime.settle(20 * sim::kMillisecond);
  EXPECT_EQ(runtime.rvaas().monitor().active(), 2u);
}

// --- engine-level sweep equivalence across thread counts ---

TEST(Monitor, SweepEquivalentAcrossThreadCounts) {
  // h10 - s1 - s2 - s3 - h11; h12 at s2 (the test_engine fixture shape).
  sdn::Topology topo;
  topo.add_switch(SwitchId(1), 4, {50.0, 8.0, "DE"});
  topo.add_switch(SwitchId(2), 4, {48.8, 2.3, "FR"});
  topo.add_switch(SwitchId(3), 4, {40.7, -74.0, "US"});
  topo.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)});
  topo.add_link({SwitchId(2), PortNo(1)}, {SwitchId(3), PortNo(0)});
  topo.attach_host(HostId(10), {SwitchId(1), PortNo(1)});
  topo.attach_host(HostId(11), {SwitchId(3), PortNo(1)});
  topo.attach_host(HostId(12), {SwitchId(2), PortNo(2)});

  core::SnapshotManager snap;
  std::uint64_t next_id = 1;
  const auto add_rule = [&](SwitchId sw, std::uint16_t priority, Match match,
                            sdn::ActionList actions) {
    sdn::FlowEntry e;
    e.id = sdn::FlowEntryId(next_id++);
    e.priority = priority;
    e.match = std::move(match);
    e.actions = std::move(actions);
    snap.apply_update({sw, sdn::FlowUpdateKind::Added, e}, 0);
  };
  add_rule(SwitchId(1), 5, Match().in_port(PortNo(1)),
           {sdn::output(PortNo(0))});
  add_rule(SwitchId(2), 5, Match().in_port(PortNo(0)),
           {sdn::output(PortNo(1))});
  add_rule(SwitchId(3), 5, Match().in_port(PortNo(0)),
           {sdn::output(PortNo(1))});
  add_rule(SwitchId(3), 5, Match().in_port(PortNo(1)),
           {sdn::output(PortNo(0))});
  add_rule(SwitchId(2), 5, Match().in_port(PortNo(1)),
           {sdn::output(PortNo(0))});
  add_rule(SwitchId(1), 5, Match().in_port(PortNo(0)),
           {sdn::output(PortNo(1))});

  const core::QueryEngine engine(topo, core::EngineConfig{});
  const core::DisclosedGeo geo(topo);
  control::HostAddressing addressing;
  addressing.assign(HostId(10));
  addressing.assign(HostId(11));
  addressing.assign(HostId(12));

  core::QueryEngine::EvalContext ctx;
  ctx.geo = &geo;
  ctx.addressing = &addressing;

  const auto make_subs = [&](PropertyMonitor& monitor) {
    std::uint64_t id = 1;
    for (const PortRef ap : topo.all_access_points()) {
      for (const QueryKind kind :
           {QueryKind::ReachableEndpoints, QueryKind::ReachingSources,
            QueryKind::Isolation, QueryKind::Geo, QueryKind::PathLength,
            QueryKind::Fairness, QueryKind::TransferSummary}) {
        PropertyMonitor::Subscription sub;
        sub.id = id++;
        sub.client = HostId(10);
        sub.request_point = ap;
        sub.property.kind = kind;
        if (kind == QueryKind::PathLength) sub.property.peer = HostId(11);
        monitor.subscribe(std::move(sub));
      }
    }
  };

  // Reference: sequential sweep. Footprints live in the registry after a
  // sweep (the Evaluation's vector is moved out), so read them via find().
  std::vector<util::Bytes> reference;
  std::vector<std::vector<SwitchId>> reference_footprints;
  {
    PropertyMonitor monitor(engine);
    make_subs(monitor);
    util::ThreadPool pool(0);
    const auto wakeups = monitor.sweep(snap, ctx, pool);
    for (const auto& w : wakeups) {
      reference.push_back(reply_bytes(w.evaluation.reply));
      reference_footprints.push_back(
          monitor.find(w.key.first, w.key.second)->footprint);
    }
    ASSERT_EQ(wakeups.size(), 21u);  // 3 access points x 7 kinds
  }

  for (const std::size_t threads : {2u, 4u, 8u}) {
    PropertyMonitor monitor(engine);
    make_subs(monitor);
    util::ThreadPool pool(threads - 1);
    const auto wakeups = monitor.sweep(snap, ctx, pool);
    ASSERT_EQ(wakeups.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < wakeups.size(); ++i) {
      EXPECT_EQ(reply_bytes(wakeups[i].evaluation.reply), reference[i])
          << threads << " threads, wakeup " << i;
      EXPECT_EQ(monitor.find(wakeups[i].key.first, wakeups[i].key.second)
                    ->footprint,
                reference_footprints[i]);
    }
  }
}

// --- protocol round-trips for the new message pair ---

TEST(Monitor, SubscribeAndNotificationSerializationRoundTrip) {
  core::SubscribeRequest request;
  request.subscription_id = 77;
  request.client = HostId(4);
  request.policy = NotifyPolicy::EveryChange;
  request.property.kind = QueryKind::Isolation;
  request.property.constraint = Match().exact(Field::IpProto, 6);
  request.property.expect.allowed_endpoints = {HostId(1), HostId(2)};
  request.property.expect.allowed_jurisdictions = {"DE"};
  request.property.expect.require_optimal_path = true;
  request.freshness = 9001;

  util::ByteWriter w;
  request.serialize(w);
  util::ByteReader r(w.data());
  const auto decoded = core::SubscribeRequest::deserialize(r);
  EXPECT_EQ(decoded.subscription_id, request.subscription_id);
  EXPECT_EQ(decoded.client, request.client);
  EXPECT_EQ(decoded.unsubscribe, request.unsubscribe);
  EXPECT_EQ(decoded.policy, request.policy);
  EXPECT_EQ(decoded.property, request.property);
  EXPECT_EQ(decoded.freshness, request.freshness);
  EXPECT_EQ(decoded.signing_payload(), request.signing_payload());

  core::Notification notification;
  notification.subscription_id = 77;
  notification.sequence = 3;
  notification.kind = NotificationKind::ViolationAlert;
  notification.epoch = 41;
  notification.property_fingerprint = request.property.fingerprint();
  notification.reply.kind = QueryKind::Isolation;
  notification.reply.endpoints.push_back(core::EndpointInfo{
      PortRef{SwitchId(2), PortNo(1)}, true, false, std::nullopt});

  util::ByteWriter nw;
  notification.serialize(nw);
  util::ByteReader nr(nw.data());
  const auto ndecoded = core::Notification::deserialize(nr);
  EXPECT_EQ(ndecoded.subscription_id, notification.subscription_id);
  EXPECT_EQ(ndecoded.sequence, notification.sequence);
  EXPECT_EQ(ndecoded.kind, notification.kind);
  EXPECT_EQ(ndecoded.epoch, notification.epoch);
  EXPECT_EQ(ndecoded.property_fingerprint, notification.property_fingerprint);
  EXPECT_EQ(ndecoded.reply.endpoints, notification.reply.endpoints);
  EXPECT_EQ(ndecoded.signing_payload(), notification.signing_payload());
}

TEST(Monitor, GeoSubscriptionRejectedWithoutGeoProvider) {
  // A stored Geo subscription without a geo provider would throw inside
  // every later sweep — it must be rejected at subscribe time instead.
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 15;
  config.with_geo = false;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  Property property;
  property.kind = QueryKind::Geo;
  const auto bad_before = runtime.rvaas().stats().bad_requests;
  runtime.client(hosts[0]).subscribe(
      property, [](const ClientAgent::MonitorEvent&) {});
  runtime.settle(20 * sim::kMillisecond);
  EXPECT_EQ(runtime.rvaas().monitor().active(), 0u);
  EXPECT_GT(runtime.rvaas().stats().bad_requests, bad_before);

  // Churn afterwards must be harmless (nothing stored, nothing thrown).
  util::Rng rng(3);
  random_churn(runtime, rng);
  runtime.settle(20 * sim::kMillisecond);
}

TEST(Monitor, ForgedSubscribeRejected) {
  // (Un)subscribe mutates controller state, so unlike a query it must be
  // signed by the enrolled client key: the provider (or any tenant) can
  // seal to the public enclave element, but cannot silence someone else's
  // subscription.
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 13;
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  Property property;
  property.kind = QueryKind::TransferSummary;
  const std::uint64_t sub_id = runtime.client(hosts[0]).subscribe(
      property, [](const ClientAgent::MonitorEvent&) {});
  runtime.settle(20 * sim::kMillisecond);
  ASSERT_EQ(runtime.rvaas().monitor().active(), 1u);

  // Attacker forges an unsubscribe for hosts[0] under its own key.
  util::Rng rng(99);
  const crypto::SigningKey attacker_key = crypto::SigningKey::generate(rng);
  core::SubscribeRequest forged;
  forged.subscription_id = sub_id;
  forged.client = hosts[0];
  forged.unsubscribe = true;
  forged.freshness = ~std::uint64_t{0};  // freshness alone must not help
  const auto bad_before = runtime.rvaas().stats().bad_requests;
  runtime.network().host_send(
      hosts[1], runtime.network().topology().host_ports(hosts[1]).front(),
      core::inband::make_subscribe_packet(
          runtime.addressing().of(hosts[1]), forged, attacker_key,
          runtime.rvaas().enclave().box_public(), rng));
  runtime.settle(20 * sim::kMillisecond);

  EXPECT_EQ(runtime.rvaas().monitor().active(), 1u);  // still subscribed
  EXPECT_GT(runtime.rvaas().stats().bad_requests, bad_before);
}

TEST(Monitor, ResubscribeIdempotentAndReplacementKeepsSequence) {
  // Engine-level: identical-fingerprint re-subscribe keeps all state; a
  // genuine replacement resets evaluation state but carries the sequence
  // forward (the client-side replay guard remembers the high-water mark).
  sdn::Topology topo;
  topo.add_switch(SwitchId(1), 4, {0, 0, "DE"});
  topo.attach_host(HostId(10), {SwitchId(1), PortNo(1)});
  core::SnapshotManager snap;
  const core::QueryEngine engine(topo, core::EngineConfig{});
  PropertyMonitor monitor(engine);

  PropertyMonitor::Subscription sub;
  sub.id = 1;
  sub.client = HostId(10);
  sub.request_point = PortRef{SwitchId(1), PortNo(1)};
  sub.property.kind = QueryKind::TransferSummary;
  monitor.subscribe(sub);

  util::ThreadPool pool(0);
  core::QueryEngine::EvalContext ctx;
  ASSERT_EQ(monitor.sweep(snap, ctx, pool).size(), 1u);
  const auto first =
      monitor.commit({HostId(10), 1}, QueryReply{});
  EXPECT_NE(first.push, PropertyMonitor::Push::None);
  EXPECT_EQ(first.sequence, 1u);

  // Identical re-subscribe: nothing to re-evaluate, nothing re-pushed.
  monitor.subscribe(sub);
  EXPECT_TRUE(monitor.sweep(snap, ctx, pool).empty());

  // Replacement (different constraint): re-evaluates, sequence continues.
  PropertyMonitor::Subscription replacement = sub;
  replacement.property.constraint = Match().exact(Field::IpProto, 17);
  monitor.subscribe(replacement);
  ASSERT_EQ(monitor.sweep(snap, ctx, pool).size(), 1u);
  const auto second = monitor.commit({HostId(10), 1}, QueryReply{});
  EXPECT_NE(second.push, PropertyMonitor::Push::None);
  EXPECT_EQ(second.sequence, 2u);
}

TEST(Monitor, PropertyFingerprintIsStableAndDiscriminating) {
  Property a;
  a.kind = QueryKind::Geo;
  a.constraint = Match().exact(Field::IpDst, 42);
  a.expect.allowed_jurisdictions = {"DE", "FR"};
  Property b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.kind = QueryKind::Isolation;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.expect.allowed_jurisdictions = {"DE"};
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace rvaas::workload
