// CompiledModelCache: incremental snapshot→model compilation must be
// indistinguishable from a cold full recompile — structurally (compiled
// transfer functions) and observably (byte-identical query replies) — across
// randomized churn sequences, while recompiling only dirty switches.

#include <gtest/gtest.h>

#include "rvaas/engine.hpp"
#include "workload/scenario.hpp"

namespace rvaas::core {
namespace {

using sdn::Field;
using sdn::FlowEntry;
using sdn::FlowUpdate;
using sdn::FlowUpdateKind;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

FlowEntry make_entry(std::uint64_t id, std::uint16_t priority,
                     std::uint32_t ip_dst, PortNo out_port) {
  FlowEntry e;
  e.id = sdn::FlowEntryId(id);
  e.priority = priority;
  e.match = Match().exact(Field::IpDst, ip_dst);
  e.actions = {sdn::output(out_port)};
  return e;
}

util::Bytes reply_bytes(const QueryReply& reply) {
  util::ByteWriter w;
  reply.serialize(w);
  return w.data();
}

// A provider-routed 24-switch grid, mirrored into a locally owned
// SnapshotManager so tests can churn it directly.
struct ChurnFixture {
  workload::ScenarioRuntime runtime;
  SnapshotManager snap;
  std::uint64_t next_id = 1 << 20;  // ids above anything the provider used

  ChurnFixture()
      : runtime([] {
          workload::ScenarioConfig config;
          config.generated = workload::grid(6, 4);
          config.tenant_count = 2;
          config.seed = 11;
          return config;
        }()) {
    runtime.settle();
    for (const auto& [sw, entries] : runtime.rvaas().snapshot().table_dump()) {
      for (const FlowEntry& e : entries) {
        snap.apply_update({sw, FlowUpdateKind::Added, e}, 0);
      }
    }
  }

  const sdn::Topology& topo() { return runtime.network().topology(); }

  SwitchId random_switch(util::Rng& rng) {
    const auto ids = snap.switch_ids();
    return ids[rng.below(ids.size())];
  }

  /// One random mutation of `sw`'s table through the passive path.
  void churn_switch(SwitchId sw, util::Rng& rng) {
    const auto table = snap.table(sw);
    const std::uint64_t op = rng.below(3);
    if (op == 0 || table.empty()) {  // add
      const PortNo port(static_cast<std::uint32_t>(
          rng.below(topo().num_ports(sw))));
      snap.apply_update(
          {sw, FlowUpdateKind::Added,
           make_entry(next_id++, static_cast<std::uint16_t>(rng.below(100)),
                      static_cast<std::uint32_t>(rng.next_u64()), port)},
          0);
    } else if (op == 1) {  // modify
      FlowEntry e = table[rng.below(table.size())];
      e.cookie = rng.next_u64();
      snap.apply_update({sw, FlowUpdateKind::Modified, e}, 0);
    } else {  // remove
      snap.apply_update(
          {sw, FlowUpdateKind::Removed, table[rng.below(table.size())]}, 0);
    }
  }
};

TEST(CompiledModelCache, CountsRebuildsHitsAndPerSwitchRecompiles) {
  const auto generated = workload::linear(3);
  SnapshotManager snap;
  for (const SwitchId sw : generated.topo.switches()) {
    snap.apply_update({sw, FlowUpdateKind::Added,
                       make_entry(1, 10, 0x0a000001, PortNo(1))},
                      0);
  }

  QueryEngine engine(generated.topo, EngineConfig{});
  ASSERT_EQ(engine.cache_stats().lookups, 0u);

  // First lookup: full rebuild, one compilation per switch.
  (void)engine.model(snap);
  auto s = engine.cache_stats();
  EXPECT_EQ(s.full_rebuilds, 1u);
  EXPECT_EQ(s.switch_recompiles, 3u);

  // Unchanged snapshot: clean hit, nothing recompiled.
  (void)engine.model(snap);
  s = engine.cache_stats();
  EXPECT_EQ(s.clean_hits, 1u);
  EXPECT_EQ(s.switch_recompiles, 3u);
  EXPECT_EQ(s.switch_hits, 3u);

  // One dirty switch: exactly one recompilation, the rest reused.
  const SwitchId dirty = generated.topo.switches()[1];
  snap.apply_update({dirty, FlowUpdateKind::Added,
                     make_entry(2, 20, 0x0a000002, PortNo(0))},
                    1);
  (void)engine.model(snap);
  s = engine.cache_stats();
  EXPECT_EQ(s.full_rebuilds, 1u);
  EXPECT_EQ(s.switch_recompiles, 4u);
  EXPECT_EQ(s.switch_hits, 5u);
  EXPECT_GT(s.switch_hit_rate(), 0.5);
}

TEST(CompiledModelCache, IncrementalIsByteIdenticalToColdAcrossChurn) {
  ChurnFixture f;
  util::Rng rng(42);
  QueryEngine engine(f.topo(), EngineConfig{});
  const auto access_points = f.topo().all_access_points();
  ASSERT_FALSE(access_points.empty());

  for (int round = 0; round < 30; ++round) {
    // Churn 1–3 random switches, occasionally through the active path
    // (a reconcile whose dump diverges from the view).
    const std::uint64_t touches = 1 + rng.below(3);
    for (std::uint64_t t = 0; t < touches; ++t) {
      const SwitchId sw = f.random_switch(rng);
      if (rng.below(4) == 0) {
        sdn::StatsReply reply;
        reply.sw = sw;
        reply.entries = f.snap.table(sw);
        if (!reply.entries.empty()) {
          reply.entries.erase(reply.entries.begin() +
                              static_cast<std::ptrdiff_t>(
                                  rng.below(reply.entries.size())));
        }
        f.snap.reconcile(reply, round);
      } else {
        f.churn_switch(sw, rng);
      }
    }

    const hsa::NetworkModel incremental = engine.model(f.snap);
    const hsa::NetworkModel cold = engine.model_uncached(f.snap);

    // Structural pin: the compiled transfer functions are equal maps.
    ASSERT_EQ(incremental.transfer(), cold.transfer()) << "round " << round;

    // Observable pin: replies computed on both models serialize to the
    // same bytes.
    QueryEngine::BatchContext ctx;
    ctx.from = access_points[rng.below(access_points.size())];
    Query query;
    query.kind = QueryKind::ReachableEndpoints;
    const auto inc_reply = engine.answer(incremental, f.snap, query, ctx);
    const auto cold_reply = engine.answer(cold, f.snap, query, ctx);
    ASSERT_EQ(reply_bytes(inc_reply.reply), reply_bytes(cold_reply.reply))
        << "round " << round;
    ASSERT_EQ(inc_reply.to_authenticate, cold_reply.to_authenticate)
        << "round " << round;
  }

  // The whole sequence must have been served incrementally: exactly the
  // initial full rebuild, and strictly fewer per-switch compilations than
  // rebuilding every switch each round would cost.
  const auto s = engine.cache_stats();
  EXPECT_EQ(s.full_rebuilds, 1u);
  EXPECT_LT(s.switch_recompiles, s.switch_hits);
}

TEST(CompiledModelCache, AgreeingPollsKeepTheCacheHot) {
  ChurnFixture f;
  QueryEngine engine(f.topo(), EngineConfig{});
  (void)engine.model(f.snap);
  const auto warm = engine.cache_stats();

  // A full agreeing poll cycle: every switch dumps exactly the view.
  for (const SwitchId sw : f.snap.switch_ids()) {
    sdn::StatsReply reply;
    reply.sw = sw;
    reply.entries = f.snap.table(sw);
    f.snap.reconcile(reply, 1);
  }

  (void)engine.model(f.snap);
  const auto s = engine.cache_stats();
  EXPECT_EQ(s.switch_recompiles, warm.switch_recompiles);
  EXPECT_EQ(s.clean_hits, warm.clean_hits + 1);
}

TEST(CompiledModelCache, SwitchMaterializedByNoOpUpdateEntersTheModel) {
  const auto generated = workload::linear(3);
  SnapshotManager snap;
  const SwitchId known = generated.topo.switches()[0];
  const SwitchId late = generated.topo.switches()[2];
  snap.apply_update({known, FlowUpdateKind::Added,
                     make_entry(1, 10, 0x0a000001, PortNo(1))},
                    0);

  QueryEngine engine(generated.topo, EngineConfig{});
  (void)engine.model(snap);

  // A Removed for an unknown id materializes `late` with an empty table;
  // the incremental model must pick it up exactly like a cold compile does.
  snap.apply_update({late, FlowUpdateKind::Removed,
                     make_entry(7, 1, 0, PortNo(0))},
                    1);
  EXPECT_EQ(engine.model(snap).transfer(),
            engine.model_uncached(snap).transfer());
  EXPECT_EQ(engine.cache_stats().full_rebuilds, 1u);
}

TEST(CompiledModelCache, DistinctSnapshotsNeverAlias) {
  const auto generated = workload::linear(4);
  QueryEngine engine(generated.topo, EngineConfig{});

  SnapshotManager a;
  SnapshotManager b;
  for (const SwitchId sw : generated.topo.switches()) {
    a.apply_update(
        {sw, FlowUpdateKind::Added, make_entry(1, 10, 0xa, PortNo(1))}, 0);
    b.apply_update(
        {sw, FlowUpdateKind::Added, make_entry(1, 10, 0xb, PortNo(0))}, 0);
  }

  // Alternating lookups on two same-epoch views must each match their own
  // cold compilation — the instance id keeps them apart.
  EXPECT_EQ(engine.model(a).transfer(), engine.model_uncached(a).transfer());
  EXPECT_EQ(engine.model(b).transfer(), engine.model_uncached(b).transfer());
  EXPECT_EQ(engine.model(a).transfer(), engine.model_uncached(a).transfer());
  EXPECT_EQ(engine.cache_stats().full_rebuilds, 3u);
}

TEST(CompiledModelCache, OutstandingModelsAreImmutableUnderChurn) {
  ChurnFixture f;
  util::Rng rng(7);
  QueryEngine engine(f.topo(), EngineConfig{});

  const hsa::NetworkModel before = engine.model(f.snap);
  const hsa::NetworkTransfer before_copy = before.transfer();

  // Churn and recompile while `before` is still alive: copy-on-write must
  // leave the old model untouched.
  f.churn_switch(f.random_switch(rng), rng);
  const hsa::NetworkModel after = engine.model(f.snap);

  EXPECT_EQ(before.transfer(), before_copy);
  EXPECT_NE(after.transfer(), before_copy);
  EXPECT_EQ(after.transfer(), engine.model_uncached(f.snap).transfer());
}

}  // namespace
}  // namespace rvaas::core
