// SHA-256 / HMAC against official vectors; DRBG, Schnorr signatures and
// sealed boxes including tamper cases.

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/group.hpp"
#include "crypto/hmac.hpp"
#include "crypto/seal.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sign.hpp"
#include "util/hex.hpp"

namespace rvaas::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

std::string hex_of(const Digest32& d) { return to_hex(d); }

// --- SHA-256: NIST / FIPS 180-4 vectors ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("ab").update("c");
  EXPECT_EQ(h.finalize(), sha256("abc"));
}

TEST(Sha256, ExactBlockBoundary) {
  const std::string block(64, 'x');
  const std::string two_blocks(128, 'x');
  // Values computed by the same padding rules; check self-consistency between
  // chunked and one-shot hashing at block boundaries.
  Sha256 a;
  a.update(block);
  a.update(block);
  EXPECT_EQ(a.finalize(), sha256(two_blocks));
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  Sha256 h;
  h.finalize();
  EXPECT_THROW(h.update("x"), util::InvariantViolation);
  Sha256 h2;
  h2.finalize();
  EXPECT_THROW(h2.finalize(), util::InvariantViolation);
}

// --- HMAC-SHA-256: RFC 4231 vectors ---

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = util::to_bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Bytes key = util::to_bytes("Jefe");
  const Bytes msg = util::to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes msg = util::to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DigestEqual) {
  const Digest32 a = sha256("x");
  Digest32 b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// --- DRBG / stream ---

TEST(Keystream, DeterministicAndLengthExact) {
  const Bytes key = util::to_bytes("key");
  const Bytes info = util::to_bytes("info");
  const Bytes a = keystream(key, info, 100);
  const Bytes b = keystream(key, info, 100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_NE(keystream(key, util::to_bytes("other"), 100), a);
}

TEST(Keystream, PrefixProperty) {
  const Bytes key = util::to_bytes("key");
  const Bytes info = util::to_bytes("info");
  const Bytes long_ks = keystream(key, info, 96);
  const Bytes short_ks = keystream(key, info, 40);
  EXPECT_TRUE(std::equal(short_ks.begin(), short_ks.end(), long_ks.begin()));
}

TEST(XorStream, Involutive) {
  const Bytes key = util::to_bytes("key");
  const Bytes nonce = util::to_bytes("nonce");
  const Bytes plain = util::to_bytes("attack at dawn");
  const Bytes cipher = xor_stream(key, nonce, plain);
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(xor_stream(key, nonce, cipher), plain);
}

// --- Group ---

TEST(Group, DefaultGroupStructure) {
  const Group& g = default_group();
  EXPECT_EQ(g.q.mul(BigUInt(2)).add(BigUInt(1)), g.p);
  EXPECT_TRUE(g.is_element(g.g));
  EXPECT_TRUE(g.is_element(g.exp(BigUInt(12345))));
  EXPECT_FALSE(g.is_element(BigUInt{}));
  EXPECT_FALSE(g.is_element(g.p));
  EXPECT_EQ(g.element_bytes(), 32u);
}

TEST(Group, NonResidueRejected) {
  // 2 generates the full group of order 2q in a safe-prime group iff it is a
  // non-residue; either way, p-1 ( = -1 ) has order 2 and is not in the
  // order-q subgroup.
  const Group& g = default_group();
  EXPECT_FALSE(g.is_element(g.p.sub(BigUInt(1))));
}

// --- Signatures ---

TEST(Schnorr, SignVerifyRoundTrip) {
  util::Rng rng(100);
  const SigningKey sk = SigningKey::generate(rng);
  const Bytes msg = util::to_bytes("verify my routes");
  const Signature sig = sk.sign(msg);
  EXPECT_TRUE(sk.verify_key().verify(msg, sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  util::Rng rng(101);
  const SigningKey sk = SigningKey::generate(rng);
  const Signature sig = sk.sign(util::to_bytes("msg-a"));
  EXPECT_FALSE(sk.verify_key().verify(util::to_bytes("msg-b"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  util::Rng rng(102);
  const SigningKey a = SigningKey::generate(rng);
  const SigningKey b = SigningKey::generate(rng);
  const Bytes msg = util::to_bytes("msg");
  EXPECT_FALSE(b.verify_key().verify(msg, a.sign(msg)));
}

TEST(Schnorr, RejectsTamperedSignature) {
  util::Rng rng(103);
  const SigningKey sk = SigningKey::generate(rng);
  const Bytes msg = util::to_bytes("msg");
  Signature sig = sk.sign(msg);
  sig.s = sig.s.add(BigUInt(1)).mod(default_group().q);
  EXPECT_FALSE(sk.verify_key().verify(msg, sig));
}

TEST(Schnorr, DeterministicSignatures) {
  util::Rng rng(104);
  const SigningKey sk = SigningKey::generate(rng);
  const Bytes msg = util::to_bytes("msg");
  const Signature s1 = sk.sign(msg);
  const Signature s2 = sk.sign(msg);
  EXPECT_EQ(s1.e, s2.e);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Schnorr, SerializationRoundTrip) {
  util::Rng rng(105);
  const SigningKey sk = SigningKey::generate(rng);
  const Bytes msg = util::to_bytes("msg");
  const Signature sig = sk.sign(msg);

  util::ByteReader sr(sig.serialize());
  const Signature sig2 = Signature::deserialize(sr);
  EXPECT_TRUE(sk.verify_key().verify(msg, sig2));

  util::ByteReader kr(sk.verify_key().serialize());
  const VerifyKey vk2 = VerifyKey::deserialize(kr);
  EXPECT_EQ(vk2.id(), sk.verify_key().id());
  EXPECT_TRUE(vk2.verify(msg, sig));
}

TEST(Schnorr, DistinctKeysGetDistinctIds) {
  util::Rng rng(106);
  const SigningKey a = SigningKey::generate(rng);
  const SigningKey b = SigningKey::generate(rng);
  EXPECT_NE(a.verify_key().id(), b.verify_key().id());
}

// --- Sealed boxes ---

TEST(SealedBox, SealOpenRoundTrip) {
  util::Rng rng(200);
  const BoxOpener opener = BoxOpener::generate(rng);
  const Bytes plain = util::to_bytes("which endpoints can reach me?");
  const SealedBox box = opener.sealer().seal(rng, plain);
  const auto out = opener.open(box);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, plain);
}

TEST(SealedBox, WrongRecipientCannotOpen) {
  util::Rng rng(201);
  const BoxOpener alice = BoxOpener::generate(rng);
  const BoxOpener eve = BoxOpener::generate(rng);
  const SealedBox box = alice.sealer().seal(rng, util::to_bytes("secret"));
  EXPECT_FALSE(eve.open(box).has_value());
}

TEST(SealedBox, TamperedCipherRejected) {
  util::Rng rng(202);
  const BoxOpener opener = BoxOpener::generate(rng);
  SealedBox box = opener.sealer().seal(rng, util::to_bytes("secret"));
  box.cipher[0] ^= 1;
  EXPECT_FALSE(opener.open(box).has_value());
}

TEST(SealedBox, TamperedEphemeralRejected) {
  util::Rng rng(203);
  const BoxOpener opener = BoxOpener::generate(rng);
  SealedBox box = opener.sealer().seal(rng, util::to_bytes("secret"));
  box.ephemeral = box.ephemeral.add(BigUInt(1));
  EXPECT_FALSE(opener.open(box).has_value());
}

TEST(SealedBox, SerializationRoundTrip) {
  util::Rng rng(204);
  const BoxOpener opener = BoxOpener::generate(rng);
  const Bytes plain = util::to_bytes("payload");
  const SealedBox box = opener.sealer().seal(rng, plain);
  util::ByteReader r(box.serialize());
  const SealedBox box2 = SealedBox::deserialize(r);
  const auto out = opener.open(box2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, plain);
}

TEST(SealedBox, EmptyPlaintextSupported) {
  util::Rng rng(205);
  const BoxOpener opener = BoxOpener::generate(rng);
  const SealedBox box = opener.sealer().seal(rng, Bytes{});
  const auto out = opener.open(box);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(SealedBox, FreshEphemeralPerSeal) {
  util::Rng rng(206);
  const BoxOpener opener = BoxOpener::generate(rng);
  const Bytes plain = util::to_bytes("same plaintext");
  const SealedBox a = opener.sealer().seal(rng, plain);
  const SealedBox b = opener.sealer().seal(rng, plain);
  EXPECT_NE(a.ephemeral, b.ephemeral);
  EXPECT_NE(a.cipher, b.cipher);
}

// --- Additional known-answer vectors ---

// NIST CAVP SHA-256 short-message vectors (byte-oriented).
TEST(Sha256, NistOneByte) {
  const Bytes msg = from_hex("bd");
  Sha256 h;
  h.update(msg);
  EXPECT_EQ(hex_of(h.finalize()),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b");
}

TEST(Sha256, NistFourBytes) {
  const Bytes msg = from_hex("c98c8e55");
  Sha256 h;
  h.update(msg);
  EXPECT_EQ(hex_of(h.finalize()),
            "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504");
}

// FIPS 180-4 appendix vector: the 448-bit two-block-boundary message "abc..."
// extended; here the 896-bit variant from SHA-2 test suites.
TEST(Sha256, FourBlockBoundaryMessage) {
  const std::string msg =
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
  EXPECT_EQ(hex_of(sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(HmacSha256, Rfc4231Case4) {
  Bytes key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);  // 0x01..0x19
  }
  const Bytes msg(50, 0xcd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  const Bytes msg = util::to_bytes(
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// --- Randomized round-trips across message shapes ---

TEST(Schnorr, SignVerifyRoundTripsAcrossSizes) {
  util::Rng rng(300);
  const SigningKey sk = SigningKey::generate(rng);
  for (const std::size_t len : {0u, 1u, 31u, 32u, 33u, 64u, 255u, 1024u}) {
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    const Signature sig = sk.sign(msg);
    EXPECT_TRUE(sk.verify_key().verify(msg, sig)) << "len=" << len;
    if (!msg.empty()) {
      msg[len / 2] ^= 0x40;
      EXPECT_FALSE(sk.verify_key().verify(msg, sig)) << "len=" << len;
    }
  }
}

TEST(SealedBox, SealOpenRoundTripsAcrossSizes) {
  util::Rng rng(301);
  const BoxOpener opener = BoxOpener::generate(rng);
  for (const std::size_t len : {1u, 16u, 63u, 64u, 65u, 512u, 4096u}) {
    Bytes plain(len);
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next_u64());
    const SealedBox box = opener.sealer().seal(rng, plain);
    const auto out = opener.open(box);
    ASSERT_TRUE(out.has_value()) << "len=" << len;
    EXPECT_EQ(*out, plain) << "len=" << len;
  }
}

}  // namespace
}  // namespace rvaas::crypto
