// Failure injection: lost auth replies, unregistered clients, wrong client
// keys, garbage on the magic channel, replayed/mis-sourced auth replies,
// stale snapshots. RVaaS must stay available and answers must degrade
// *detectably* (counts, flags), never silently.

#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace rvaas::workload {
namespace {

using core::Query;
using core::QueryKind;
using sdn::Field;
using sdn::HostId;
using sdn::Match;
using sdn::PortNo;
using sdn::SwitchId;

ScenarioConfig line3() {
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 91;
  return config;
}

TEST(FailureInjection, LostAuthReplyShowsUpInCounts) {
  ScenarioRuntime runtime(line3());
  const auto& hosts = runtime.hosts();

  // The provider blackholes host2's upstream traffic (including its auth
  // reply) with a max-priority drop at its access port.
  const auto ap2 = runtime.network().topology().host_ports(hosts[2]).front();
  sdn::FlowMod drop;
  drop.priority = 0xffff;
  drop.match = Match().in_port(ap2.port);
  drop.actions = {sdn::drop()};
  runtime.provider().handle().flow_mod(ap2.sw, drop);
  runtime.settle();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());

  // Two auth requests issued, only one answered; host2's endpoint is
  // unauthenticated — exactly the §IV.B.1 count mechanism.
  EXPECT_EQ(outcome.reply->auth.issued, 2u);
  EXPECT_EQ(outcome.reply->auth.responded, 1u);
  const core::Verdict verdict =
      core::evaluate_reply(*outcome.reply, core::Expectation{});
  EXPECT_FALSE(verdict.ok);
}

TEST(FailureInjection, UnregisteredClientGetsNoReply) {
  ScenarioRuntime runtime(line3());
  const auto& hosts = runtime.hosts();
  const auto ap = runtime.network().topology().host_ports(hosts[0]).front();

  // A well-formed, correctly-sealed request claiming an identity RVaaS
  // never enrolled: discarded, counted as a bad request.
  util::Rng rng(5);
  core::QueryRequest request;
  request.request_id = 0x5117;
  request.client = HostId(777);  // unknown to the service
  request.query.kind = QueryKind::ReachableEndpoints;
  const sdn::Packet packet = core::inband::make_request_packet(
      control::HostAddressing::derive(HostId(777)), request,
      runtime.rvaas().enclave().box_public(), rng);
  runtime.network().host_send(hosts[0], ap, packet);
  runtime.settle(20 * sim::kMillisecond);

  EXPECT_GE(runtime.rvaas().stats().bad_requests, 1u);
  EXPECT_EQ(runtime.rvaas().stats().replies_sent, 0u);
}

TEST(FailureInjection, WrongClientKeyFailsAuthentication) {
  ScenarioRuntime runtime(line3());
  const auto& hosts = runtime.hosts();

  // RVaaS's registry holds a rogue key for host2 (enrollment corruption):
  // host2's genuine auth replies now fail verification.
  util::Rng rng(6);
  const crypto::SigningKey rogue = crypto::SigningKey::generate(rng);
  runtime.rvaas().register_client(hosts[2], rogue.verify_key(),
                                  runtime.client(hosts[2]).box_public());

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());
  EXPECT_EQ(outcome.reply->auth.responded, 1u);
  EXPECT_GE(runtime.rvaas().stats().auth_replies_bad, 1u);
  bool host2_unauthenticated = false;
  for (const auto& e : outcome.reply->endpoints) {
    if (!e.authenticated) host2_unauthenticated = true;
  }
  EXPECT_TRUE(host2_unauthenticated);
}

TEST(FailureInjection, GarbageOnMagicChannelIsIgnored) {
  ScenarioRuntime runtime(line3());
  const auto& hosts = runtime.hosts();
  const auto ap = runtime.network().topology().host_ports(hosts[0]).front();

  // Random bytes to the magic port: classified or rejected, never crashing.
  sdn::Packet garbage;
  garbage.hdr.eth_type = sdn::kEthTypeIpv4;
  garbage.hdr.ip_proto = sdn::kIpProtoUdp;
  garbage.hdr.l4_dst = sdn::kPortRvaasRequest;
  garbage.payload = util::to_bytes("RVQ1 but not really a sealed box");
  runtime.network().host_send(hosts[0], ap, garbage);

  sdn::Packet truncated = garbage;
  truncated.payload = {0x31};  // 1 byte
  runtime.network().host_send(hosts[0], ap, truncated);
  runtime.settle();

  // Service still answers real queries afterwards.
  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  EXPECT_TRUE(outcome.reply.has_value());
}

TEST(FailureInjection, ReplayedAuthReplyWithForeignNonceIgnored) {
  ScenarioRuntime runtime(line3());
  const auto& hosts = runtime.hosts();
  const auto ap = runtime.network().topology().host_ports(hosts[1]).front();

  // host1 preemptively sends an auth reply with a made-up nonce; it must
  // not be credited to any pending query.
  core::inband::AuthReply bogus;
  bogus.request_id = 0xdeadbeef;
  bogus.nonce = 0x12345678;
  bogus.client = hosts[1];
  util::Rng rng(8);
  const crypto::SigningKey key = crypto::SigningKey::generate(rng);
  runtime.network().host_send(
      hosts[1], ap,
      core::inband::make_auth_reply(
          control::HostAddressing::derive(hosts[1]), bogus, key));
  runtime.settle();
  EXPECT_EQ(runtime.rvaas().stats().auth_replies_ok, 0u);
}

TEST(FailureInjection, SnapshotStaleBeforeSettleFreshAfter) {
  // Build a runtime with monitoring, then install a NEW rule and query
  // before/after the flow-monitor event propagates.
  ScenarioRuntime runtime(line3());
  const auto& hosts = runtime.hosts();

  const auto dark = runtime.network().topology().dark_ports(SwitchId(1));
  sdn::FlowMod leak;
  leak.priority = 50;
  leak.match = Match().in_port(
      runtime.network().topology().host_ports(hosts[0]).front().port);
  leak.actions = {sdn::output(dark.front().port)};
  runtime.provider().handle().flow_mod(SwitchId(1), leak);
  // No settle: the event is still in flight. The snapshot may not include
  // the rule yet; after settle it must.
  runtime.settle();
  EXPECT_TRUE(runtime.rvaas().snapshot().history_contains(
      [](const core::HistoryRecord& r) { return r.entry.priority == 50; }));

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(outcome.reply.has_value());
  bool dark_seen = false;
  for (const auto& e : outcome.reply->endpoints) dark_seen |= e.dark;
  EXPECT_TRUE(dark_seen);
}

TEST(FailureInjection, ProviderCannotRemoveInterceptRules) {
  ScenarioRuntime runtime(line3());
  // Find the RVaaS-owned intercept rule on switch 1 and try to delete it
  // through the provider's channel.
  const auto& entries =
      runtime.network().switch_sim(SwitchId(1)).table().entries();
  const sdn::FlowEntry* intercept = nullptr;
  for (const auto& e : entries) {
    if (e.owner == runtime.rvaas().id()) intercept = &e;
  }
  ASSERT_NE(intercept, nullptr);

  std::optional<sdn::FlowModResult> result;
  sdn::FlowMod del;
  del.command = sdn::FlowModCommand::Delete;
  del.target = intercept->id;
  runtime.provider().handle().flow_mod(
      SwitchId(1), del,
      [&](SwitchId, const sdn::FlowModResult& r) { result = r; });
  runtime.settle();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(*result->error, sdn::ErrorCode::NotOwner);
}

TEST(FailureInjection, TimedOutQueryCanBeRetried) {
  ScenarioRuntime runtime(line3());
  const auto& hosts = runtime.hosts();

  // Suppress, observe timeout, then the provider (e.g. after detection
  // pressure) removes the drop rule; retry succeeds.
  attacks::QuerySuppressionAttack attack(SwitchId(1));
  attack.launch(runtime.provider(), runtime.network());
  runtime.settle();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto first =
      runtime.query_and_wait(hosts[0], query, 20 * sim::kMillisecond);
  EXPECT_TRUE(first.timed_out);

  // Remove the suppression rule (provider owns it, so it can).
  const auto& entries =
      runtime.network().switch_sim(SwitchId(1)).table().entries();
  for (const auto& e : entries) {
    if (e.cookie == 0x5bbe) {
      sdn::FlowMod del;
      del.command = sdn::FlowModCommand::Delete;
      del.target = e.id;
      runtime.provider().handle().flow_mod(SwitchId(1), del);
    }
  }
  runtime.settle();

  const auto second = runtime.query_and_wait(hosts[0], query);
  EXPECT_FALSE(second.timed_out);
  EXPECT_TRUE(second.reply.has_value());
}

}  // namespace
}  // namespace rvaas::workload
