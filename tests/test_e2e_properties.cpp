// End-to-end property sweeps (parameterized over seeds):
//  (1) RVaaS reach answers agree with concrete data-plane ground truth on
//      randomized topologies with provider routing;
//  (2) random exfiltration attacks are always detected;
//  (3) the passive snapshot converges to the switches' true tables.

#include <gtest/gtest.h>

#include <set>

#include "workload/scenario.hpp"

namespace rvaas::workload {
namespace {

using core::Query;
using core::QueryKind;
using sdn::HostId;
using sdn::SwitchId;

ScenarioConfig random_config(std::uint64_t seed) {
  util::Rng rng(seed);
  ScenarioConfig config;
  const auto n = static_cast<std::uint32_t>(4 + rng.below(5));
  config.generated = random_isp(n, static_cast<std::uint32_t>(rng.below(4)), rng);
  config.seed = seed;
  return config;
}

class E2EProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(E2EProperty, ReplyMatchesDataPlaneGroundTruth) {
  ScenarioRuntime runtime(random_config(GetParam() + 7000));
  const auto& hosts = runtime.hosts();
  const HostId querier = hosts[GetParam() % hosts.size()];

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome =
      runtime.query_and_wait(querier, query, 200 * sim::kMillisecond);
  ASSERT_TRUE(outcome.reply.has_value());
  ASSERT_TRUE(outcome.signature_ok);

  // Ground truth: trace a concrete packet to every other host.
  std::set<HostId> reached_truth;
  for (const HostId dst : hosts) {
    if (dst == querier) continue;
    sdn::Packet p;
    p.hdr.eth_type = sdn::kEthTypeIpv4;
    p.hdr.ip_proto = sdn::kIpProtoUdp;
    p.hdr.ip_src = runtime.addressing().of(querier).ip;
    p.hdr.ip_dst = runtime.addressing().of(dst).ip;
    const auto t = runtime.network().trace_from_host(querier, p);
    for (const HostId h : t.reached_hosts()) reached_truth.insert(h);
  }

  std::set<HostId> reported;
  for (const auto& e : outcome.reply->endpoints) {
    ASSERT_TRUE(e.authenticated) << "endpoint failed auth in clean network";
    reported.insert(*e.authenticated_as);
  }

  // Every concretely-reachable host must be reported (soundness of the
  // logical step + auth round trip). The report may contain more (header
  // spaces beyond the canonical packets), never fewer.
  for (const HostId h : reached_truth) {
    EXPECT_TRUE(reported.contains(h))
        << "host " << h.value << " reachable but not reported";
  }
}

TEST_P(E2EProperty, RandomExfiltrationAlwaysDetected) {
  ScenarioRuntime runtime(random_config(GetParam() + 8000));
  const auto& hosts = runtime.hosts();
  util::Rng rng(GetParam());

  const HostId victim = hosts[rng.below(hosts.size())];
  HostId peer = hosts[rng.below(hosts.size())];
  if (peer == victim) peer = hosts[(rng.below(hosts.size() - 1) + 1 + victim.value) % hosts.size()];
  if (peer == victim) return;  // degenerate

  attacks::ExfiltrationAttack attack(victim, peer);
  const auto record = attack.launch(runtime.provider(), runtime.network());
  if (!record) return;  // no dark port available on this topology: skip
  runtime.settle();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto outcome =
      runtime.query_and_wait(victim, query, 200 * sim::kMillisecond);
  ASSERT_TRUE(outcome.reply.has_value());

  core::Expectation expect;
  expect.allowed_endpoints = hosts;  // everything legitimate is fine
  const core::Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
  EXPECT_FALSE(verdict.ok) << "exfiltration to dark port went unflagged";
}

TEST_P(E2EProperty, SnapshotConvergesToSwitchTruth) {
  ScenarioRuntime runtime(random_config(GetParam() + 9000));
  runtime.settle(20 * sim::kMillisecond);

  const auto snap_tables = runtime.rvaas().snapshot().table_dump();
  for (const SwitchId sw : runtime.network().topology().switches()) {
    const auto& truth = runtime.network().switch_sim(sw).table().entries();
    const auto it = snap_tables.find(sw);
    ASSERT_TRUE(it != snap_tables.end() || truth.empty());
    if (it == snap_tables.end()) continue;
    ASSERT_EQ(it->second.size(), truth.size()) << "switch " << sw.value;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(it->second[i], truth[i]) << "switch " << sw.value << " entry " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2EProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace rvaas::workload
