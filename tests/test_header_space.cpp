// HeaderSpace (union-of-cubes-with-diffs) algebra, including the lazy
// difference resolution and membership property sweeps.

#include <gtest/gtest.h>

#include "hsa/header_space.hpp"

namespace rvaas::hsa {
namespace {

using sdn::Field;
using sdn::HeaderFields;

Wildcard vlan_cube(std::uint64_t v) {
  Wildcard w;
  w.set_field(Field::Vlan, v);
  return w;
}

Wildcard proto_cube(std::uint64_t p) {
  Wildcard w;
  w.set_field(Field::IpProto, p);
  return w;
}

HeaderFields header(std::uint64_t vlan, std::uint64_t proto) {
  HeaderFields h;
  h.vlan = vlan;
  h.ip_proto = proto;
  return h;
}

TEST(HeaderSpace, DefaultIsEmpty) {
  const HeaderSpace hs;
  EXPECT_TRUE(hs.is_empty());
  EXPECT_EQ(hs.cube_count(), 0u);
  EXPECT_EQ(hs.to_string(), "(empty)");
  util::Rng rng(0);
  EXPECT_FALSE(hs.sample(rng).has_value());
}

TEST(HeaderSpace, AllContainsEverything) {
  const HeaderSpace hs = HeaderSpace::all();
  EXPECT_FALSE(hs.is_empty());
  EXPECT_TRUE(hs.contains(header(5, 6)));
  EXPECT_TRUE(hs.contains(HeaderFields{}));
}

TEST(HeaderSpace, IntersectNarrows) {
  const HeaderSpace hs = HeaderSpace::all().intersect(vlan_cube(5));
  EXPECT_TRUE(hs.contains(header(5, 6)));
  EXPECT_FALSE(hs.contains(header(4, 6)));
}

TEST(HeaderSpace, DisjointIntersectIsEmpty) {
  const HeaderSpace hs =
      HeaderSpace(vlan_cube(1)).intersect(vlan_cube(2));
  EXPECT_TRUE(hs.is_empty());
}

TEST(HeaderSpace, SubtractExcludesCube) {
  const HeaderSpace hs = HeaderSpace::all().subtract(vlan_cube(5));
  EXPECT_FALSE(hs.contains(header(5, 6)));
  EXPECT_TRUE(hs.contains(header(4, 6)));
  EXPECT_FALSE(hs.is_empty());
}

TEST(HeaderSpace, SubtractEverythingIsEmpty) {
  HeaderSpace hs = HeaderSpace(vlan_cube(5));
  hs = hs.subtract(vlan_cube(5));
  EXPECT_TRUE(hs.is_empty());
  // Also when covered by the union of two halves:
  HeaderSpace hs2 = HeaderSpace(vlan_cube(4));  // vlan = 0b...100
  hs2 = hs2.subtract(proto_cube(6));
  hs2 = hs2.subtract(HeaderSpace::all().subtract(proto_cube(6)).cubes()[0].base);
  // Subtracting all() base minus nothing — the second subtract removed the
  // full space, so:
  EXPECT_TRUE(hs2.is_empty());
}

TEST(HeaderSpace, UnionCombines) {
  const HeaderSpace hs =
      HeaderSpace(vlan_cube(1)).union_with(HeaderSpace(vlan_cube(2)));
  EXPECT_TRUE(hs.contains(header(1, 0)));
  EXPECT_TRUE(hs.contains(header(2, 0)));
  EXPECT_FALSE(hs.contains(header(3, 0)));
  EXPECT_EQ(hs.cube_count(), 2u);
}

TEST(HeaderSpace, DiffThenIntersectKeepsExclusion) {
  // (all \ vlan5) ∩ proto6 must exclude (vlan5, proto6).
  const HeaderSpace hs =
      HeaderSpace::all().subtract(vlan_cube(5)).intersect(proto_cube(6));
  EXPECT_FALSE(hs.contains(header(5, 6)));
  EXPECT_TRUE(hs.contains(header(4, 6)));
  EXPECT_FALSE(hs.contains(header(4, 17)));
}

TEST(HeaderSpace, ResolveProducesEquivalentPlainCubes) {
  util::Rng rng(11);
  HeaderSpace hs = HeaderSpace::all()
                       .subtract(vlan_cube(5))
                       .subtract(proto_cube(17));
  const auto plain = hs.resolve();
  ASSERT_FALSE(plain.empty());
  for (int i = 0; i < 100; ++i) {
    HeaderFields h;
    h.vlan = rng.below(16);
    h.ip_proto = rng.below(32);
    bool in_plain = false;
    for (const Wildcard& c : plain) in_plain |= c.contains(h);
    EXPECT_EQ(in_plain, hs.contains(h)) << "vlan=" << h.vlan;
  }
}

TEST(HeaderSpace, SampleRespectsDiffs) {
  util::Rng rng(12);
  HeaderSpace hs = HeaderSpace(proto_cube(6)).subtract(vlan_cube(0));
  for (int i = 0; i < 50; ++i) {
    const auto h = hs.sample(rng);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->ip_proto, 6u);
    EXPECT_NE(h->vlan, 0u);
  }
}

TEST(HeaderSpace, RewriteProjectsSpace) {
  Rewrite rw;
  rw.set_field(Field::Vlan, 9);
  const HeaderSpace hs = HeaderSpace(proto_cube(6)).rewrite(rw);
  EXPECT_TRUE(hs.contains(header(9, 6)));
  EXPECT_FALSE(hs.contains(header(8, 6)));
}

TEST(HeaderSpace, RewriteDropsStaleDiffs) {
  // (all \ vlan5) rewritten to vlan := 5 becomes exactly vlan5 (the diff on
  // the overwritten field must not survive).
  Rewrite rw;
  rw.set_field(Field::Vlan, 5);
  const HeaderSpace hs = HeaderSpace::all().subtract(vlan_cube(5)).rewrite(rw);
  EXPECT_TRUE(hs.contains(header(5, 6)));
  EXPECT_FALSE(hs.is_empty());
}

TEST(HeaderSpace, RewritePreservesUntouchedDiffs) {
  // (all \ proto17) with vlan := 5: proto 17 stays excluded.
  Rewrite rw;
  rw.set_field(Field::Vlan, 5);
  const HeaderSpace hs =
      HeaderSpace::all().subtract(proto_cube(17)).rewrite(rw);
  EXPECT_FALSE(hs.contains(header(5, 17)));
  EXPECT_TRUE(hs.contains(header(5, 6)));
}

TEST(HeaderSpace, CompactDropsEmptyAndSubsumedCubes) {
  HeaderSpace hs = HeaderSpace(vlan_cube(5))
                       .union_with(HeaderSpace::all())
                       .union_with(HeaderSpace(vlan_cube(1)).subtract(vlan_cube(1)));
  EXPECT_EQ(hs.cube_count(), 3u);
  hs.compact();
  // vlan5 ⊆ all and the third cube is empty.
  EXPECT_EQ(hs.cube_count(), 1u);
  EXPECT_TRUE(hs.contains(header(5, 0)));
}

TEST(HeaderSpace, FingerprintAndEqualityFollowStructure) {
  const HeaderSpace a = HeaderSpace::all().subtract(vlan_cube(5));
  const HeaderSpace b = HeaderSpace::all().subtract(vlan_cube(5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Different structure -> different fingerprint (and !=), even when the
  // denoted sets differ only slightly or not at all.
  const HeaderSpace c = HeaderSpace::all().subtract(vlan_cube(4));
  EXPECT_NE(a, c);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_NE(HeaderSpace::all(), HeaderSpace());
  EXPECT_NE(HeaderSpace::all().fingerprint(), HeaderSpace().fingerprint());

  // Cube boundaries matter: {base, diff} as one cube != two plain cubes.
  const HeaderSpace two =
      HeaderSpace(vlan_cube(1)).union_with(HeaderSpace(vlan_cube(2)));
  const HeaderSpace one(vlan_cube(1));
  EXPECT_NE(two.fingerprint(), one.fingerprint());
}

TEST(HeaderSpace, CompactSkipsScanWithoutDiffFreeSubsumers) {
  // Every cube carries diffs: nothing can subsume, everything survives.
  HeaderSpace hs = HeaderSpace(vlan_cube(1)).subtract(proto_cube(1));
  hs = hs.union_with(HeaderSpace(vlan_cube(2)).subtract(proto_cube(2)));
  hs.compact();
  EXPECT_EQ(hs.cube_count(), 2u);

  // A diff-free superset still swallows a diff-carrying subset.
  HeaderSpace mixed = HeaderSpace(vlan_cube(1)).subtract(proto_cube(1));
  mixed = mixed.union_with(HeaderSpace(vlan_cube(1)));
  mixed.compact();
  EXPECT_EQ(mixed.cube_count(), 1u);
  EXPECT_TRUE(mixed.cubes()[0].diffs.empty());
}

TEST(HeaderSpace, DiffCountTracksLaziness) {
  HeaderSpace hs = HeaderSpace::all().subtract(vlan_cube(1)).subtract(vlan_cube(2));
  EXPECT_EQ(hs.diff_count(), 2u);
}

// Property sweep: random sequences of operations preserve membership
// semantics against a brute-force evaluation on sampled headers.
class HeaderSpaceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeaderSpaceProperty, OperationsPreserveMembership) {
  util::Rng rng(GetParam() + 100);

  // Model: predicate closure over headers; implementation: HeaderSpace.
  struct Op {
    enum Kind { Intersect, Subtract, Union } kind;
    Wildcard cube;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 6; ++i) {
    Wildcard c;
    // Constrain 1-2 random small fields to keep spaces non-trivial.
    if (rng.next_bit()) c.set_field(Field::Vlan, rng.below(4));
    if (rng.next_bit()) c.set_field(Field::IpProto, rng.below(4));
    const auto kind = static_cast<Op::Kind>(rng.below(3));
    ops.push_back(Op{kind, c});
  }

  HeaderSpace hs = HeaderSpace::all();
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Intersect:
        hs = hs.intersect(op.cube);
        break;
      case Op::Subtract:
        hs = hs.subtract(op.cube);
        break;
      case Op::Union:
        hs = hs.union_with(HeaderSpace(op.cube));
        break;
    }
  }

  auto model_contains = [&ops](const HeaderFields& h) {
    bool in = true;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Intersect:
          in = in && op.cube.contains(h);
          break;
        case Op::Subtract:
          in = in && !op.cube.contains(h);
          break;
        case Op::Union:
          in = in || op.cube.contains(h);
          break;
      }
    }
    return in;
  };

  for (int i = 0; i < 60; ++i) {
    HeaderFields h;
    h.vlan = rng.below(5);
    h.ip_proto = rng.below(5);
    EXPECT_EQ(hs.contains(h), model_contains(h))
        << "vlan=" << h.vlan << " proto=" << h.ip_proto;
  }

  // is_empty agrees with exhaustive small-domain check.
  bool model_empty = true;
  for (std::uint64_t v = 0; v < 4 && model_empty; ++v) {
    for (std::uint64_t p = 0; p < 4 && model_empty; ++p) {
      if (model_contains(header(v, p))) model_empty = false;
    }
  }
  // The model's domain is restricted; hs may contain headers outside it, so
  // only one implication holds strictly:
  if (hs.is_empty()) EXPECT_TRUE(model_empty);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderSpaceProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rvaas::hsa
