// HeaderSpace (union-of-cubes-with-diffs) algebra, including the lazy
// difference resolution and membership property sweeps.

#include <gtest/gtest.h>

#include "hsa/header_space.hpp"
#include "testing/reference_hsa.hpp"

namespace rvaas::hsa {
namespace {

using sdn::Field;
using sdn::HeaderFields;

Wildcard vlan_cube(std::uint64_t v) {
  Wildcard w;
  w.set_field(Field::Vlan, v);
  return w;
}

Wildcard proto_cube(std::uint64_t p) {
  Wildcard w;
  w.set_field(Field::IpProto, p);
  return w;
}

HeaderFields header(std::uint64_t vlan, std::uint64_t proto) {
  HeaderFields h;
  h.vlan = vlan;
  h.ip_proto = proto;
  return h;
}

TEST(HeaderSpace, DefaultIsEmpty) {
  const HeaderSpace hs;
  EXPECT_TRUE(hs.is_empty());
  EXPECT_EQ(hs.cube_count(), 0u);
  EXPECT_EQ(hs.to_string(), "(empty)");
  util::Rng rng(0);
  EXPECT_FALSE(hs.sample(rng).has_value());
}

TEST(HeaderSpace, AllContainsEverything) {
  const HeaderSpace hs = HeaderSpace::all();
  EXPECT_FALSE(hs.is_empty());
  EXPECT_TRUE(hs.contains(header(5, 6)));
  EXPECT_TRUE(hs.contains(HeaderFields{}));
}

TEST(HeaderSpace, IntersectNarrows) {
  const HeaderSpace hs = HeaderSpace::all().intersect(vlan_cube(5));
  EXPECT_TRUE(hs.contains(header(5, 6)));
  EXPECT_FALSE(hs.contains(header(4, 6)));
}

TEST(HeaderSpace, DisjointIntersectIsEmpty) {
  const HeaderSpace hs =
      HeaderSpace(vlan_cube(1)).intersect(vlan_cube(2));
  EXPECT_TRUE(hs.is_empty());
}

TEST(HeaderSpace, SubtractExcludesCube) {
  const HeaderSpace hs = HeaderSpace::all().subtract(vlan_cube(5));
  EXPECT_FALSE(hs.contains(header(5, 6)));
  EXPECT_TRUE(hs.contains(header(4, 6)));
  EXPECT_FALSE(hs.is_empty());
}

TEST(HeaderSpace, SubtractEverythingIsEmpty) {
  HeaderSpace hs = HeaderSpace(vlan_cube(5));
  hs = hs.subtract(vlan_cube(5));
  EXPECT_TRUE(hs.is_empty());
  // Also when covered by the union of two halves:
  HeaderSpace hs2 = HeaderSpace(vlan_cube(4));  // vlan = 0b...100
  hs2 = hs2.subtract(proto_cube(6));
  hs2 = hs2.subtract(HeaderSpace::all().subtract(proto_cube(6)).cubes()[0].base);
  // Subtracting all() base minus nothing — the second subtract removed the
  // full space, so:
  EXPECT_TRUE(hs2.is_empty());
}

TEST(HeaderSpace, UnionCombines) {
  const HeaderSpace hs =
      HeaderSpace(vlan_cube(1)).union_with(HeaderSpace(vlan_cube(2)));
  EXPECT_TRUE(hs.contains(header(1, 0)));
  EXPECT_TRUE(hs.contains(header(2, 0)));
  EXPECT_FALSE(hs.contains(header(3, 0)));
  EXPECT_EQ(hs.cube_count(), 2u);
}

TEST(HeaderSpace, DiffThenIntersectKeepsExclusion) {
  // (all \ vlan5) ∩ proto6 must exclude (vlan5, proto6).
  const HeaderSpace hs =
      HeaderSpace::all().subtract(vlan_cube(5)).intersect(proto_cube(6));
  EXPECT_FALSE(hs.contains(header(5, 6)));
  EXPECT_TRUE(hs.contains(header(4, 6)));
  EXPECT_FALSE(hs.contains(header(4, 17)));
}

TEST(HeaderSpace, ResolveProducesEquivalentPlainCubes) {
  util::Rng rng(11);
  HeaderSpace hs = HeaderSpace::all()
                       .subtract(vlan_cube(5))
                       .subtract(proto_cube(17));
  const auto plain = hs.resolve();
  ASSERT_FALSE(plain.empty());
  for (int i = 0; i < 100; ++i) {
    HeaderFields h;
    h.vlan = rng.below(16);
    h.ip_proto = rng.below(32);
    bool in_plain = false;
    for (const Wildcard& c : plain) in_plain |= c.contains(h);
    EXPECT_EQ(in_plain, hs.contains(h)) << "vlan=" << h.vlan;
  }
}

TEST(HeaderSpace, SampleRespectsDiffs) {
  util::Rng rng(12);
  HeaderSpace hs = HeaderSpace(proto_cube(6)).subtract(vlan_cube(0));
  for (int i = 0; i < 50; ++i) {
    const auto h = hs.sample(rng);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->ip_proto, 6u);
    EXPECT_NE(h->vlan, 0u);
  }
}

TEST(HeaderSpace, RewriteProjectsSpace) {
  Rewrite rw;
  rw.set_field(Field::Vlan, 9);
  const HeaderSpace hs = HeaderSpace(proto_cube(6)).rewrite(rw);
  EXPECT_TRUE(hs.contains(header(9, 6)));
  EXPECT_FALSE(hs.contains(header(8, 6)));
}

TEST(HeaderSpace, RewriteDropsStaleDiffs) {
  // (all \ vlan5) rewritten to vlan := 5 becomes exactly vlan5 (the diff on
  // the overwritten field must not survive).
  Rewrite rw;
  rw.set_field(Field::Vlan, 5);
  const HeaderSpace hs = HeaderSpace::all().subtract(vlan_cube(5)).rewrite(rw);
  EXPECT_TRUE(hs.contains(header(5, 6)));
  EXPECT_FALSE(hs.is_empty());
}

TEST(HeaderSpace, RewritePreservesUntouchedDiffs) {
  // (all \ proto17) with vlan := 5: proto 17 stays excluded.
  Rewrite rw;
  rw.set_field(Field::Vlan, 5);
  const HeaderSpace hs =
      HeaderSpace::all().subtract(proto_cube(17)).rewrite(rw);
  EXPECT_FALSE(hs.contains(header(5, 17)));
  EXPECT_TRUE(hs.contains(header(5, 6)));
}

TEST(HeaderSpace, CompactDropsEmptyAndSubsumedCubes) {
  // A fully shadowed subtraction drops its cube at subtract() time, so the
  // third union member contributes no cube at all.
  HeaderSpace hs = HeaderSpace(vlan_cube(5))
                       .union_with(HeaderSpace::all())
                       .union_with(HeaderSpace(vlan_cube(1)).subtract(vlan_cube(1)));
  EXPECT_EQ(hs.cube_count(), 2u);
  hs.compact();
  // vlan5 ⊆ all.
  EXPECT_EQ(hs.cube_count(), 1u);
  EXPECT_TRUE(hs.contains(header(5, 0)));
}

TEST(HeaderSpace, SubtractDropsFullyShadowedCube) {
  const HeaderSpace hs = HeaderSpace(vlan_cube(1)).subtract(vlan_cube(1));
  EXPECT_EQ(hs.cube_count(), 0u);
  EXPECT_TRUE(hs.is_empty());
}

TEST(HeaderSpace, SubtractClipsDiffToBase) {
  // Subtracting proto6 from vlan1 must clip the stored diff to vlan1 ∩
  // proto6, not keep the full-width proto6 cube.
  const HeaderSpace hs = HeaderSpace(vlan_cube(1)).subtract(proto_cube(6));
  ASSERT_EQ(hs.cube_count(), 1u);
  ASSERT_EQ(hs.cubes()[0].diffs.size(), 1u);
  EXPECT_TRUE(hs.cubes()[0].diffs[0].subset_of(hs.cubes()[0].base));
}

TEST(HeaderSpace, RewriteCompactsOverlappingImages) {
  // vlan1 and vlan2 map onto the same image under vlan := 9; the rewrite
  // must emit one cube, not overlapping duplicates.
  Rewrite rw;
  rw.set_field(Field::Vlan, 9);
  HeaderSpace hs =
      HeaderSpace(vlan_cube(1)).union_with(HeaderSpace(vlan_cube(2)));
  hs = hs.rewrite(rw);
  EXPECT_EQ(hs.cube_count(), 1u);
  EXPECT_TRUE(hs.contains(header(9, 6)));
}

TEST(HeaderSpace, MaterializationPreservesSemantics) {
  // Drive one cube past kMaxLazyDiffs with narrow-field subtractions so the
  // flattening succeeds, then check membership survived the representation
  // change.
  HeaderSpace hs = HeaderSpace::all();
  for (std::uint64_t v = 0; v <= HeaderSpace::kMaxLazyDiffs + 2; ++v) {
    hs = hs.subtract(vlan_cube(v));
  }
  for (const Cube& c : hs.cubes()) {
    EXPECT_LE(c.diffs.size(), HeaderSpace::kMaxLazyDiffs);
  }
  for (std::uint64_t v = 0; v <= HeaderSpace::kMaxLazyDiffs + 2; ++v) {
    EXPECT_FALSE(hs.contains(header(v, 6)));
  }
  EXPECT_TRUE(hs.contains(header(HeaderSpace::kMaxLazyDiffs + 3, 6)));
}

TEST(HeaderSpace, EmptinessMemoSurvivesCopiesAndAppends) {
  // Two half-space diffs (proto high bit 0 / 1) cover the base between
  // them; neither alone is a full shadow, so both take the append path and
  // the second must invalidate the memoized "non-empty" verdict.
  Wildcard low_half;
  low_half.set_field_masked(Field::IpProto, 0, 0x80);
  Wildcard high_half;
  high_half.set_field_masked(Field::IpProto, 0x80, 0x80);

  HeaderSpace hs = HeaderSpace(vlan_cube(1)).subtract(low_half);
  EXPECT_FALSE(hs.is_empty());  // memoizes non-empty
  hs = hs.subtract(high_half);
  EXPECT_TRUE(hs.is_empty());
}

TEST(HeaderSpace, FingerprintAndEqualityFollowStructure) {
  const HeaderSpace a = HeaderSpace::all().subtract(vlan_cube(5));
  const HeaderSpace b = HeaderSpace::all().subtract(vlan_cube(5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Different structure -> different fingerprint (and !=), even when the
  // denoted sets differ only slightly or not at all.
  const HeaderSpace c = HeaderSpace::all().subtract(vlan_cube(4));
  EXPECT_NE(a, c);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_NE(HeaderSpace::all(), HeaderSpace());
  EXPECT_NE(HeaderSpace::all().fingerprint(), HeaderSpace().fingerprint());

  // Cube boundaries matter: {base, diff} as one cube != two plain cubes.
  const HeaderSpace two =
      HeaderSpace(vlan_cube(1)).union_with(HeaderSpace(vlan_cube(2)));
  const HeaderSpace one(vlan_cube(1));
  EXPECT_NE(two.fingerprint(), one.fingerprint());
}

TEST(HeaderSpace, CompactSkipsScanWithoutDiffFreeSubsumers) {
  // Every cube carries diffs: nothing can subsume, everything survives.
  HeaderSpace hs = HeaderSpace(vlan_cube(1)).subtract(proto_cube(1));
  hs = hs.union_with(HeaderSpace(vlan_cube(2)).subtract(proto_cube(2)));
  hs.compact();
  EXPECT_EQ(hs.cube_count(), 2u);

  // A diff-free superset still swallows a diff-carrying subset.
  HeaderSpace mixed = HeaderSpace(vlan_cube(1)).subtract(proto_cube(1));
  mixed = mixed.union_with(HeaderSpace(vlan_cube(1)));
  mixed.compact();
  EXPECT_EQ(mixed.cube_count(), 1u);
  EXPECT_TRUE(mixed.cubes()[0].diffs.empty());
}

TEST(HeaderSpace, DiffCountTracksLaziness) {
  HeaderSpace hs = HeaderSpace::all().subtract(vlan_cube(1)).subtract(vlan_cube(2));
  EXPECT_EQ(hs.diff_count(), 2u);
}

// Property sweep: random sequences of operations preserve membership
// semantics against a brute-force evaluation on sampled headers.
class HeaderSpaceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeaderSpaceProperty, OperationsPreserveMembership) {
  util::Rng rng(GetParam() + 100);

  // Model: predicate closure over headers; implementation: HeaderSpace.
  struct Op {
    enum Kind { Intersect, Subtract, Union } kind;
    Wildcard cube;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 6; ++i) {
    Wildcard c;
    // Constrain 1-2 random small fields to keep spaces non-trivial.
    if (rng.next_bit()) c.set_field(Field::Vlan, rng.below(4));
    if (rng.next_bit()) c.set_field(Field::IpProto, rng.below(4));
    const auto kind = static_cast<Op::Kind>(rng.below(3));
    ops.push_back(Op{kind, c});
  }

  HeaderSpace hs = HeaderSpace::all();
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Intersect:
        hs = hs.intersect(op.cube);
        break;
      case Op::Subtract:
        hs = hs.subtract(op.cube);
        break;
      case Op::Union:
        hs = hs.union_with(HeaderSpace(op.cube));
        break;
    }
  }

  auto model_contains = [&ops](const HeaderFields& h) {
    bool in = true;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Intersect:
          in = in && op.cube.contains(h);
          break;
        case Op::Subtract:
          in = in && !op.cube.contains(h);
          break;
        case Op::Union:
          in = in || op.cube.contains(h);
          break;
      }
    }
    return in;
  };

  for (int i = 0; i < 60; ++i) {
    HeaderFields h;
    h.vlan = rng.below(5);
    h.ip_proto = rng.below(5);
    EXPECT_EQ(hs.contains(h), model_contains(h))
        << "vlan=" << h.vlan << " proto=" << h.ip_proto;
  }

  // is_empty agrees with exhaustive small-domain check.
  bool model_empty = true;
  for (std::uint64_t v = 0; v < 4 && model_empty; ++v) {
    for (std::uint64_t p = 0; p < 4 && model_empty; ++p) {
      if (model_contains(header(v, p))) model_empty = false;
    }
  }
  // The model's domain is restricted; hs may contain headers outside it, so
  // only one implication holds strictly:
  if (hs.is_empty()) EXPECT_TRUE(model_empty);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderSpaceProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

// Equivalence sweep against the naive reference implementation
// (src/testing/reference_hsa.hpp): random operation sequences applied to
// both sides must denote the same header set — checked by sampled
// membership in both directions plus exact set difference.
class HeaderSpaceEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HeaderSpaceEquivalence, MatchesNaiveReference) {
  util::Rng rng(GetParam() * 977 + 7);

  HeaderSpace opt = HeaderSpace::all();
  fuzz::ReferenceHeaderSpace ref = fuzz::ReferenceHeaderSpace::all();

  const int op_count = 4 + static_cast<int>(rng.below(8));
  for (int i = 0; i < op_count; ++i) {
    Wildcard c;
    if (rng.next_bit()) c.set_field(Field::Vlan, rng.below(8));
    if (rng.next_bit()) c.set_field(Field::IpProto, rng.below(8));
    switch (rng.below(4)) {
      case 0:
        opt = opt.intersect(c);
        ref = ref.intersect(c);
        break;
      case 1:
      case 2:  // subtraction-heavy: it is the diff-list/materialize path
        opt = opt.subtract(c);
        ref = ref.subtract(c);
        break;
      case 3:
        opt = opt.union_with(HeaderSpace(c));
        ref = ref.union_with(fuzz::ReferenceHeaderSpace(c));
        break;
    }
    if (rng.below(4) == 0) opt.compact();  // must never change the set
  }

  const auto divergence =
      fuzz::check_headerspace_vs_reference(opt, ref, rng, 32);
  EXPECT_FALSE(divergence.has_value()) << *divergence;
}

TEST_P(HeaderSpaceEquivalence, RewriteMatchesNaiveReference) {
  util::Rng rng(GetParam() * 1553 + 13);

  HeaderSpace opt = HeaderSpace::all();
  fuzz::ReferenceHeaderSpace ref = fuzz::ReferenceHeaderSpace::all();
  for (int i = 0; i < 5; ++i) {
    Wildcard c;
    c.set_field(Field::Vlan, rng.below(8));
    if (rng.next_bit()) c.set_field(Field::IpProto, rng.below(4));
    opt = opt.subtract(c);
    ref = ref.subtract(c);
  }
  Rewrite rw;
  rw.set_field(Field::Vlan, rng.below(8));
  opt = opt.rewrite(rw);
  ref = ref.rewrite(rw);

  const auto divergence =
      fuzz::check_headerspace_vs_reference(opt, ref, rng, 32);
  EXPECT_FALSE(divergence.has_value()) << *divergence;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderSpaceEquivalence,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(HeaderSpace, CanonicalizationIsDeterministic) {
  // ReachCache / CompiledModelCache key on structural equality: the same
  // operation sequence must always produce the same cube structure, byte
  // for byte, including through the materialization and compact() paths.
  const auto build = [] {
    HeaderSpace hs = HeaderSpace::all();
    for (std::uint64_t v = 0; v < HeaderSpace::kMaxLazyDiffs + 3; ++v) {
      hs = hs.subtract(vlan_cube(v * 37 % 4096));
    }
    Rewrite rw;
    rw.set_field(Field::IpProto, 6);
    hs = hs.rewrite(rw);
    hs.compact();
    return hs;
  };
  const HeaderSpace a = build();
  const HeaderSpace b = build();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace rvaas::hsa
