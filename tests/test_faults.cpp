// Control-channel fault injection and fail-stale degraded verification:
// the FaultPlane must be deterministic (byte-identical traces for identical
// seeds), the controller's retry backoff ladder is pinned, the per-switch
// health machine must walk Healthy -> Degraded -> Unreachable under a
// blackhole and recover after a heal, degraded freshness must be stamped on
// every query kind's reply and flip fail-stale verdicts, subscriptions must
// receive VerificationDegraded pushes, generation guards must discard
// in-flight stats replies after an identity reset, stop() must leave the
// event loop safe, and a deliberately broken (frozen) health machine must be
// caught by the fuzzer's degraded-honesty oracle and shrunk to a small repro.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sdn/fault_plane.hpp"
#include "testing/fuzzer.hpp"
#include "testing/shrink.hpp"
#include "workload/scenario.hpp"

namespace rvaas::workload {
namespace {

using core::ClientAgent;
using core::Expectation;
using core::NotificationKind;
using core::Property;
using core::Query;
using core::QueryKind;
using core::RvaasConfig;
using core::RvaasController;
using core::Verdict;
using sdn::FaultDirection;
using sdn::FaultPlane;
using sdn::FaultSpec;
using sdn::SwitchId;

constexpr sim::Time kMs = sim::kMillisecond;

/// Fixed polling keeps health-machine timing deterministic; 20ms rounds
/// match the fuzzer's fault harness.
ScenarioConfig fault_config(std::uint32_t n = 4) {
  ScenarioConfig config;
  config.generated = linear(n);
  config.seed = 7;
  config.rvaas.polling = core::PollingMode::Fixed;
  config.rvaas.poll_period = 20 * kMs;
  return config;
}

/// Scopes the plane to the RVaaS controller (id 2 in scenarios) and hooks
/// it into the network. The plane must be declared before the runtime so it
/// outlives the Network holding the raw pointer.
void attach(ScenarioRuntime& runtime, FaultPlane& plane) {
  plane.set_scope(sdn::ControllerId(2));
  runtime.network().set_fault_plane(&plane);
}

FaultSpec blackhole() {
  FaultSpec spec;
  spec.drop_probability = 1.0;
  return spec;
}

// --- FaultPlane determinism -------------------------------------------------

TEST(FaultPlane, IdenticalSeedsProduceIdenticalTraces) {
  util::Bytes traces[2];
  for (int run = 0; run < 2; ++run) {
    FaultPlane plane(0xdecaf);
    plane.enable_trace(true);
    ScenarioRuntime runtime(fault_config());
    attach(runtime, plane);
    const auto switches = runtime.network().topology().switches();

    FaultSpec lossy;
    lossy.drop_probability = 0.3;
    lossy.duplicate_probability = 0.2;
    lossy.extra_delay_max = 2 * kMs;
    plane.set_fault(switches[0], FaultDirection::ToSwitch, lossy);
    plane.set_fault(switches[1], FaultDirection::FromSwitch, lossy);

    runtime.settle(120 * kMs);
    EXPECT_GT(plane.stats().decisions, 0u);
    traces[run] = plane.trace_bytes();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

// --- retry backoff ladder ---------------------------------------------------

TEST(FaultPlane, BackoffLadderIsPinned) {
  RvaasConfig config;  // defaults: base 1ms, cap 8ms
  EXPECT_EQ(RvaasController::backoff_base_delay(0, config), 1 * kMs);
  EXPECT_EQ(RvaasController::backoff_base_delay(1, config), 2 * kMs);
  EXPECT_EQ(RvaasController::backoff_base_delay(2, config), 4 * kMs);
  EXPECT_EQ(RvaasController::backoff_base_delay(3, config), 8 * kMs);
  EXPECT_EQ(RvaasController::backoff_base_delay(4, config), 8 * kMs);
  // Far past the cap: stays pinned, no overflow.
  EXPECT_EQ(RvaasController::backoff_base_delay(63, config), 8 * kMs);

  config.retry_backoff_base = 3 * kMs;
  config.retry_backoff_cap = 10 * kMs;
  EXPECT_EQ(RvaasController::backoff_base_delay(0, config), 3 * kMs);
  EXPECT_EQ(RvaasController::backoff_base_delay(1, config), 6 * kMs);
  EXPECT_EQ(RvaasController::backoff_base_delay(2, config), 10 * kMs);
  EXPECT_EQ(RvaasController::backoff_base_delay(3, config), 10 * kMs);
}

// --- health machine ---------------------------------------------------------

TEST(Faults, HealthMachineDegradesAndRecovers) {
  FaultPlane plane(1);
  ScenarioRuntime runtime(fault_config());
  attach(runtime, plane);
  runtime.settle(30 * kMs);

  const auto switches = runtime.network().topology().switches();
  const SwitchId dark = switches[1];
  ASSERT_EQ(runtime.rvaas().switch_health(dark),
            RvaasController::SwitchHealth::Healthy);

  plane.set_fault(dark, FaultDirection::ToSwitch, blackhole());
  plane.set_fault(dark, FaultDirection::FromSwitch, blackhole());
  runtime.settle(60 * kMs);

  EXPECT_EQ(runtime.rvaas().switch_health(dark),
            RvaasController::SwitchHealth::Unreachable);
  const auto& stats = runtime.rvaas().stats();
  EXPECT_GE(stats.poll_deadline_misses, 3u);
  EXPECT_GE(stats.poll_retries, 1u);
  EXPECT_GE(stats.degraded_transitions, 1u);
  EXPECT_GE(stats.unreachable_transitions, 1u);

  const auto unreachable = runtime.rvaas().unreachable_switches();
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0], dark);

  // Circuit breaker: regular poll rounds skip the dark switch while a
  // capped-cadence probe keeps testing it.
  runtime.settle(60 * kMs);
  EXPECT_GE(runtime.rvaas().stats().polls_gated, 1u);

  // Freshness is footprint-scoped: degraded through the dark switch, clean
  // past a healthy one.
  const auto fresh = runtime.rvaas().freshness_for({dark});
  EXPECT_TRUE(fresh.degraded());
  EXPECT_GT(fresh.max_staleness, 0u);
  ASSERT_EQ(fresh.unreachable.size(), 1u);
  EXPECT_EQ(fresh.unreachable[0], dark);
  EXPECT_FALSE(runtime.rvaas().freshness_for({switches[0]}).degraded());

  plane.heal_all();
  runtime.settle(60 * kMs);
  EXPECT_EQ(runtime.rvaas().switch_health(dark),
            RvaasController::SwitchHealth::Healthy);
  EXPECT_GE(runtime.rvaas().stats().health_recoveries, 1u);
  EXPECT_FALSE(runtime.rvaas().freshness_for(switches).degraded());
  EXPECT_TRUE(runtime.rvaas().unreachable_switches().empty());
}

// --- degraded replies across every query kind -------------------------------

TEST(Faults, DegradedRepliesAcrossAllQueryKinds) {
  FaultPlane plane(3);
  ScenarioRuntime runtime(fault_config());
  attach(runtime, plane);
  const auto& hosts = runtime.hosts();
  const auto switches = runtime.network().topology().switches();

  // Blackhole a transit switch that is NOT the client's access switch: the
  // in-band query path stays alive while the verifier's view of part of the
  // footprint goes stale.
  const SwitchId dark = switches[2];
  plane.set_fault(dark, FaultDirection::ToSwitch, blackhole());
  plane.set_fault(dark, FaultDirection::FromSwitch, blackhole());
  runtime.settle(60 * kMs);
  ASSERT_EQ(runtime.rvaas().switch_health(dark),
            RvaasController::SwitchHealth::Unreachable);

  const QueryKind kinds[] = {
      QueryKind::ReachableEndpoints, QueryKind::ReachingSources,
      QueryKind::Isolation,          QueryKind::Geo,
      QueryKind::PathLength,         QueryKind::Fairness,
      QueryKind::TransferSummary,
  };
  for (const QueryKind kind : kinds) {
    Query query;
    query.kind = kind;
    if (kind == QueryKind::PathLength) query.peer = hosts.back();
    const auto outcome = runtime.query_and_wait(hosts[0], query);
    ASSERT_FALSE(outcome.timed_out) << core::to_string(kind);
    ASSERT_TRUE(outcome.reply.has_value()) << core::to_string(kind);
    const core::QueryReply& reply = *outcome.reply;

    // Every kind's wildcard footprint crosses the dark transit switch, and
    // the reply must say so (fail-stale: honest about its basis).
    EXPECT_TRUE(reply.freshness.degraded()) << core::to_string(kind);
    EXPECT_TRUE(std::find(reply.freshness.unreachable.begin(),
                          reply.freshness.unreachable.end(),
                          dark) != reply.freshness.unreachable.end())
        << core::to_string(kind);

    // Staleness alone does not flip a verdict — fail-stale is opt-in.
    EXPECT_TRUE(core::evaluate_reply(reply, Expectation{}).ok)
        << core::to_string(kind);
    Expectation strict;
    strict.max_staleness = 1;  // 1ns: any degradation breaches the bound
    const Verdict verdict = core::evaluate_reply(reply, strict);
    EXPECT_FALSE(verdict.ok) << core::to_string(kind);
    ASSERT_FALSE(verdict.violations.empty()) << core::to_string(kind);
  }

  // Client-side knob: a max-staleness bound marks the outcome stale.
  runtime.client(hosts[0]).set_max_staleness(1);
  Query query;
  const auto stale_outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(stale_outcome.reply.has_value());
  EXPECT_TRUE(stale_outcome.stale);
  runtime.client(hosts[0]).set_max_staleness(0);

  // After the heal the same query is fresh again.
  plane.heal_all();
  runtime.settle(60 * kMs);
  const auto fresh_outcome = runtime.query_and_wait(hosts[0], query);
  ASSERT_TRUE(fresh_outcome.reply.has_value());
  EXPECT_FALSE(fresh_outcome.reply->freshness.degraded());
  EXPECT_FALSE(fresh_outcome.stale);
}

// --- VerificationDegraded pushes --------------------------------------------

TEST(Faults, SubscriptionsGetVerificationDegradedPush) {
  FaultPlane plane(5);
  ScenarioRuntime runtime(fault_config());
  attach(runtime, plane);
  const auto& hosts = runtime.hosts();
  const auto switches = runtime.network().topology().switches();

  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  property.expect.allowed_endpoints = {hosts[1], hosts[2], hosts[3]};

  std::vector<ClientAgent::MonitorEvent> events;
  runtime.client(hosts[0]).subscribe(
      property, [&events](const ClientAgent::MonitorEvent& event) {
        events.push_back(event);
      });
  runtime.settle(20 * kMs);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, NotificationKind::AllClear);

  const SwitchId dark = switches[2];
  plane.set_fault(dark, FaultDirection::ToSwitch, blackhole());
  plane.set_fault(dark, FaultDirection::FromSwitch, blackhole());
  runtime.settle(80 * kMs);

  const auto degraded = std::find_if(
      events.begin(), events.end(), [](const ClientAgent::MonitorEvent& e) {
        return e.kind == NotificationKind::VerificationDegraded;
      });
  ASSERT_NE(degraded, events.end());
  EXPECT_TRUE(degraded->signature_ok);
  EXPECT_TRUE(degraded->reply.freshness.degraded());
  EXPECT_TRUE(std::find(degraded->reply.freshness.unreachable.begin(),
                        degraded->reply.freshness.unreachable.end(),
                        dark) != degraded->reply.freshness.unreachable.end());
  EXPECT_GE(runtime.rvaas().stats().degraded_notifications, 1u);

  // Recovery resumes normal monitoring: the subscriber hears all-clear
  // again after the heal.
  const std::size_t before = events.size();
  plane.heal_all();
  runtime.settle(80 * kMs);
  ASSERT_GT(events.size(), before);
  EXPECT_EQ(events.back().kind, NotificationKind::AllClear);
  EXPECT_TRUE(events.back().verdict.ok);
  EXPECT_FALSE(events.back().reply.freshness.degraded());
}

// --- stale-poll generation guard --------------------------------------------

TEST(Faults, StalePollsDiscardedAfterIdentityReset) {
  FaultPlane plane(9);
  ScenarioRuntime runtime(fault_config());
  attach(runtime, plane);
  const auto switches = runtime.network().topology().switches();

  // Stretch every stats reply's flight time so identity resets land while
  // polls are in the air; the generation tag must void those replies.
  FaultSpec slow;
  slow.extra_delay_max = 6 * kMs;
  for (const SwitchId sw : switches) {
    plane.set_fault(sw, FaultDirection::FromSwitch, slow);
  }
  for (int i = 0; i < 40; ++i) {
    runtime.settle(3 * kMs);
    runtime.reset_rvaas_snapshot_identity();
  }
  EXPECT_GE(runtime.rvaas().stats().stale_polls_discarded, 1u);

  // The discards must not wedge the poller: the view converges after heal.
  plane.heal_all();
  runtime.settle(80 * kMs);
  EXPECT_FALSE(runtime.rvaas().freshness_for(switches).degraded());
}

// --- stop() leaves the loop safe --------------------------------------------

TEST(Faults, ControllerStopCancelsTimersBeforeLoopDrains) {
  sim::EventLoop loop;
  GeneratedTopology generated = linear(3);
  util::Rng rng(99);
  enclave::AttestationService ias(rng);
  sdn::Network net(loop, generated.topo);

  RvaasConfig config;
  config.polling = core::PollingMode::Fixed;
  config.poll_period = 20 * kMs;
  config.enable_link_prober = true;
  config.reverify_period = 30 * kMs;
  auto rvaas = std::make_unique<RvaasController>(sdn::ControllerId(2), net,
                                                 ias, config, rng.fork());
  net.authorize_controller_key(rvaas->channel_key().id());
  rvaas->bootstrap();

  // Run past several poll rounds, stopping at a quiescent instant (between
  // rounds, past the round-trip) so no delivery still references the
  // controller — stop()'s documented contract.
  loop.run_until(loop.now() + 51 * kMs);
  EXPECT_GE(rvaas->stats().polls_sent, 2u);

  rvaas->stop();
  rvaas->stop();  // idempotent
  rvaas.reset();  // destructor also stops — must not double-free timers

  // The loop must hold no callback that touches the dead controller.
  loop.run_until(loop.now() + 200 * kMs);
}

// --- frozen health machine: the honesty oracle catches it -------------------

// Deliberate fault-tolerance bug: freeze the health machine so a blackholed
// switch keeps reading Healthy while its view goes stale (fresh-and-wrong).
// The fuzzer's degraded-honesty clause must catch it within a few schedules
// and shrink the repro to a handful of steps; the same repro must be green
// once the machine thaws.
TEST(Faults, FrozenHealthMachineCaughtAndShrunk) {
  struct Thaw {
    ~Thaw() { RvaasController::test_fault_freeze_health(false); }
  } thaw;
  RvaasController::test_fault_freeze_health(true);

  std::optional<fuzz::Schedule> failing;
  fuzz::FuzzFailure failure;
  for (int i = 0; i < 60 && !failing; ++i) {
    const fuzz::Schedule schedule =
        fuzz::generate_schedule(770000 + static_cast<std::uint64_t>(i),
                                fuzz::kMaxGridSizeCode,
                                /*include_faults=*/true);
    const fuzz::FuzzReport report = fuzz::run_schedule(schedule);
    if (report.failure) {
      failing = schedule;
      failure = *report.failure;
    }
  }
  ASSERT_TRUE(failing.has_value())
      << "no schedule tripped an oracle against the frozen health machine";
  EXPECT_EQ(failure.oracle, "fault-honesty") << failure.detail;

  const auto shrunk = fuzz::shrink(*failing);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_LE(shrunk->schedule.steps.size(), 10u)
      << shrunk->schedule.repro();
  EXPECT_EQ(shrunk->failure.oracle, "fault-honesty") << shrunk->failure.detail;

  // The minimal repro replays to the same failure while frozen...
  const auto parsed = fuzz::parse_repro(shrunk->schedule.repro());
  ASSERT_TRUE(parsed.has_value());
  const fuzz::FuzzReport frozen = fuzz::run_schedule(*parsed);
  ASSERT_TRUE(frozen.failure.has_value());
  EXPECT_EQ(frozen.failure->oracle, "fault-honesty");

  // ...and is green once the real health machine is back.
  RvaasController::test_fault_freeze_health(false);
  const fuzz::FuzzReport healthy = fuzz::run_schedule(*parsed);
  EXPECT_FALSE(healthy.failure.has_value())
      << healthy.failure->oracle << ": " << healthy.failure->detail;
}

}  // namespace
}  // namespace rvaas::workload
