// QueryEngine: reach computations, confidentiality redaction, geo providers,
// path length, fairness metrics, transfer summary.

#include <gtest/gtest.h>

#include "rvaas/engine.hpp"

namespace rvaas::core {
namespace {

using sdn::Field;
using sdn::FlowEntry;
using sdn::FlowUpdate;
using sdn::FlowUpdateKind;
using sdn::HostId;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

// h10 - s1 - s2 - s3 - h11; h12 at s2; dark port s3:p2.
struct EngineFixture {
  sdn::Topology topo;
  SnapshotManager snap;
  std::uint64_t next_id = 1;

  EngineFixture() {
    topo.add_switch(SwitchId(1), 4, {50.0, 8.0, "DE"});
    topo.add_switch(SwitchId(2), 4, {48.8, 2.3, "FR"});
    topo.add_switch(SwitchId(3), 4, {40.7, -74.0, "US"});
    topo.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)});
    topo.add_link({SwitchId(2), PortNo(1)}, {SwitchId(3), PortNo(0)});
    topo.attach_host(HostId(10), {SwitchId(1), PortNo(1)});
    topo.attach_host(HostId(11), {SwitchId(3), PortNo(1)});
    topo.attach_host(HostId(12), {SwitchId(2), PortNo(2)});
  }

  void add_rule(SwitchId sw, std::uint16_t priority, Match match,
                sdn::ActionList actions,
                std::optional<sdn::MeterId> meter = std::nullopt) {
    FlowEntry e;
    e.id = sdn::FlowEntryId(next_id++);
    e.priority = priority;
    e.match = std::move(match);
    e.actions = std::move(actions);
    e.meter = meter;
    snap.apply_update({sw, FlowUpdateKind::Added, e}, 0);
  }

  void install_line_routing() {
    add_rule(SwitchId(1), 5, Match().in_port(PortNo(1)),
             {sdn::output(PortNo(0))});
    add_rule(SwitchId(2), 5, Match().in_port(PortNo(0)),
             {sdn::output(PortNo(1))});
    add_rule(SwitchId(3), 5, Match().in_port(PortNo(0)),
             {sdn::output(PortNo(1))});
    // Reverse path.
    add_rule(SwitchId(3), 5, Match().in_port(PortNo(1)),
             {sdn::output(PortNo(0))});
    add_rule(SwitchId(2), 5, Match().in_port(PortNo(1)),
             {sdn::output(PortNo(0))});
    add_rule(SwitchId(1), 5, Match().in_port(PortNo(0)),
             {sdn::output(PortNo(1))});
  }

  QueryEngine engine(ConfidentialityPolicy policy =
                         ConfidentialityPolicy::EndpointsOnly) {
    return QueryEngine(topo, EngineConfig{policy, 64});
  }
};

TEST(Engine, ReachableEndpointsBasic) {
  EngineFixture f;
  f.install_line_routing();
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto reach = engine.reachable_endpoints(
      model, f.snap, {SwitchId(1), PortNo(1)}, hsa::HeaderSpace::all());

  ASSERT_EQ(reach.endpoints.size(), 1u);
  EXPECT_EQ(reach.endpoints[0].access_point,
            (PortRef{SwitchId(3), PortNo(1)}));
  EXPECT_FALSE(reach.endpoints[0].dark);
  EXPECT_EQ(reach.to_authenticate,
            (std::vector<PortRef>{{SwitchId(3), PortNo(1)}}));
  EXPECT_EQ(reach.loops, 0u);
}

TEST(Engine, DarkEndpointMarked) {
  EngineFixture f;
  f.add_rule(SwitchId(1), 5, Match().in_port(PortNo(1)),
             {sdn::output(PortNo(2))});  // s1:p2 is dark
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto reach = engine.reachable_endpoints(
      model, f.snap, {SwitchId(1), PortNo(1)}, hsa::HeaderSpace::all());
  ASSERT_EQ(reach.endpoints.size(), 1u);
  EXPECT_TRUE(reach.endpoints[0].dark);
  EXPECT_TRUE(reach.to_authenticate.empty());  // nobody to probe
}

TEST(Engine, ReachingSourcesFindsSenders) {
  EngineFixture f;
  f.install_line_routing();
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto sources = engine.reaching_sources(
      model, f.snap, {SwitchId(3), PortNo(1)}, hsa::HeaderSpace::all());
  ASSERT_EQ(sources.endpoints.size(), 1u);
  EXPECT_EQ(sources.endpoints[0].access_point,
            (PortRef{SwitchId(1), PortNo(1)}));
}

TEST(Engine, IsolationUnionsBothDirections) {
  EngineFixture f;
  f.install_line_routing();
  // Extra one-way path h12 -> h10 (h12 can reach h10 but not vice versa).
  f.add_rule(SwitchId(2), 6, Match().in_port(PortNo(2)),
             {sdn::output(PortNo(0))});
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto iso = engine.isolation(model, f.snap, {SwitchId(1), PortNo(1)},
                                    hsa::HeaderSpace::all());
  // Endpoints: h11's AP (forward) + h12's AP (backward source).
  ASSERT_EQ(iso.endpoints.size(), 2u);
  std::set<PortRef> got;
  for (const auto& e : iso.endpoints) got.insert(e.access_point);
  EXPECT_TRUE(got.contains(PortRef{SwitchId(3), PortNo(1)}));
  EXPECT_TRUE(got.contains(PortRef{SwitchId(2), PortNo(2)}));
  // No duplicates in the auth list.
  EXPECT_EQ(iso.to_authenticate.size(), 2u);
}

TEST(Engine, GeoJurisdictionsAlongPath) {
  EngineFixture f;
  f.install_line_routing();
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const DisclosedGeo geo(f.topo);
  const auto jurisdictions = engine.geo_jurisdictions(
      model, f.snap, {SwitchId(1), PortNo(1)}, hsa::HeaderSpace::all(), geo);
  EXPECT_EQ(jurisdictions, (std::vector<std::string>{"DE", "FR", "US"}));
}

TEST(Engine, PathLengthOptimalAndDetour) {
  EngineFixture f;
  f.install_line_routing();
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto report = engine.path_length(model, f.snap,
                                         {SwitchId(1), PortNo(1)},
                                         {SwitchId(3), PortNo(1)},
                                         /*peer_ip=*/0);
  // ip 0 is matched by the wildcard line rules.
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.installed, 3u);
  EXPECT_EQ(report.optimal, 3u);
}

TEST(Engine, FairnessReportsMeters) {
  EngineFixture f;
  f.install_line_routing();
  // Meter on s2's forward rule.
  f.snap.reconcile(
      [] {
        sdn::StatsReply reply;
        reply.sw = SwitchId(2);
        reply.meters = {{sdn::MeterId(7), sdn::MeterConfig{5'000'000, 1000}}};
        return reply;
      }(),
      0);
  // Re-add s2's rule with the meter attached (reconcile wiped entries for
  // s2, since the stats reply carried none).
  f.add_rule(SwitchId(2), 5, Match().in_port(PortNo(0)),
             {sdn::output(PortNo(1))}, sdn::MeterId(7));

  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto metrics = engine.fairness(model, f.snap, {SwitchId(1), PortNo(1)},
                                       hsa::HeaderSpace::all());
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].name, "min-rate-bps");
  EXPECT_EQ(metrics[0].value, 5'000'000u);
  EXPECT_EQ(metrics[1].name, "metered-switches");
  EXPECT_EQ(metrics[1].value, 1u);
}

TEST(Engine, FairnessUnmeteredIsMax) {
  EngineFixture f;
  f.install_line_routing();
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto metrics = engine.fairness(model, f.snap, {SwitchId(1), PortNo(1)},
                                       hsa::HeaderSpace::all());
  EXPECT_EQ(metrics[0].value, ~std::uint64_t{0});
}

TEST(Engine, TransferSummaryCountsCubes) {
  EngineFixture f;
  // TCP one way, everything else another way.
  f.add_rule(SwitchId(1), 9,
             Match().in_port(PortNo(1)).exact(Field::IpProto, sdn::kIpProtoTcp),
             {sdn::output(PortNo(0))});
  f.add_rule(SwitchId(1), 5, Match().in_port(PortNo(1)),
             {sdn::output(PortNo(2))});
  f.add_rule(SwitchId(2), 5, Match().in_port(PortNo(0)),
             {sdn::output(PortNo(2))});

  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);
  const auto summary = engine.transfer_summary(
      model, f.snap, {SwitchId(1), PortNo(1)}, hsa::HeaderSpace::all());
  ASSERT_EQ(summary.size(), 2u);
  for (const auto& entry : summary) EXPECT_GE(entry.cube_count, 1u);
}

TEST(Engine, ConstraintSpaceRestrictsQueries) {
  EngineFixture f;
  f.add_rule(SwitchId(1), 9,
             Match().in_port(PortNo(1)).exact(Field::IpProto, sdn::kIpProtoTcp),
             {sdn::output(PortNo(0))});
  f.add_rule(SwitchId(2), 5, Match(), {sdn::output(PortNo(2))});
  QueryEngine engine = f.engine();
  const auto model = engine.model(f.snap);

  // Constrained to UDP: the TCP-only rule cannot carry it anywhere.
  const auto hs = QueryEngine::constraint_space(
      Match().exact(Field::IpProto, sdn::kIpProtoUdp));
  const auto reach =
      engine.reachable_endpoints(model, f.snap, {SwitchId(1), PortNo(1)}, hs);
  EXPECT_TRUE(reach.endpoints.empty());
}

TEST(Engine, RenderPathsDeduplicates) {
  const auto rendered = QueryEngine::render_paths(
      {{SwitchId(1), SwitchId(2)}, {SwitchId(1), SwitchId(2)}, {SwitchId(3)}});
  EXPECT_EQ(rendered.size(), 2u);
  EXPECT_EQ(rendered[0], "s1->s2");
}

// --- geo providers ---

TEST(GeoProviders, DisclosedReturnsTruth) {
  EngineFixture f;
  const DisclosedGeo geo(f.topo);
  ASSERT_TRUE(geo.locate(SwitchId(1)).has_value());
  EXPECT_EQ(geo.locate(SwitchId(1))->jurisdiction, "DE");
  EXPECT_FALSE(geo.locate(SwitchId(99)).has_value());
}

TEST(GeoProviders, CrowdSourcedAveragesReports) {
  EngineFixture f;
  CrowdSourcedGeo geo(f.topo);
  geo.add_report({SwitchId(1), PortNo(1)}, {50.0, 8.0, "DE"});
  geo.add_report({SwitchId(1), PortNo(1)}, {50.2, 8.2, "DE"});
  geo.add_report({SwitchId(1), PortNo(1)}, {50.1, 8.1, "FR"});

  const auto loc = geo.locate(SwitchId(1));
  ASSERT_TRUE(loc.has_value());
  EXPECT_NEAR(loc->latitude, 50.1, 1e-9);
  EXPECT_EQ(loc->jurisdiction, "DE");  // majority
}

TEST(GeoProviders, CrowdSourcedBorrowsFromNeighbors) {
  EngineFixture f;
  CrowdSourcedGeo geo(f.topo);
  geo.add_report({SwitchId(1), PortNo(1)}, {50.0, 8.0, "DE"});
  // s2 has no reports; nearest reporting neighbor is s1.
  const auto loc = geo.locate(SwitchId(2));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->jurisdiction, "DE");
  // s99 unknown entirely.
  EXPECT_FALSE(geo.locate(SwitchId(99)).has_value());
}

TEST(GeoProviders, GeoIpUsesAttachedHosts) {
  EngineFixture f;
  control::HostAddressing addressing;
  addressing.assign(HostId(10));
  addressing.assign(HostId(11));
  GeoIpDb db;
  db.add(addressing.of(HostId(10)).ip, "DE");
  db.add(addressing.of(HostId(11)).ip, "US");
  const GeoIpGeo geo(f.topo, addressing, std::move(db));

  ASSERT_TRUE(geo.locate(SwitchId(1)).has_value());
  EXPECT_EQ(geo.locate(SwitchId(1))->jurisdiction, "DE");
  EXPECT_EQ(geo.locate(SwitchId(3))->jurisdiction, "US");
  // s2's host (12) has no geo-IP entry: borrow from a neighbor.
  ASSERT_TRUE(geo.locate(SwitchId(2)).has_value());
}

TEST(GeoProviders, JurisdictionsOfMarksUnknown) {
  EngineFixture f;
  CrowdSourcedGeo geo(f.topo);  // no reports at all
  const auto jurisdictions =
      jurisdictions_of({{SwitchId(1), SwitchId(2)}}, geo);
  EXPECT_EQ(jurisdictions, (std::vector<std::string>{"unknown"}));
}

}  // namespace
}  // namespace rvaas::core
