// Seed-driven federated policy fuzzing: randomized schedules of
// route-origin-hijack and route-leak attacks (plus functionally inert
// provider churn and reverts) over generated AS graphs, with an exact
// equivalence oracle between the PolicyCompliance detector and data-plane
// ground truth. Both sides read the same switch tables — HSA walks for the
// detector, packet traces for the truth — so every probe must agree, with
// attacks active, under concurrent churn, and after reverts.

#include <gtest/gtest.h>

#include <algorithm>

#include "attacks/attacks.hpp"
#include "hsa/transfer.hpp"
#include "workload/as_world.hpp"

namespace rvaas::workload {
namespace {

using core::NeighborClass;
using core::PolicyReportItem;
using core::PolicyVerdict;
using core::ProviderId;
using sdn::Field;
using sdn::Match;
using sdn::PortRef;

/// What one PolicyCompliance probe concluded about the probed domain. Items
/// from deeper domains are ignored: the oracle compares each domain's
/// verdicts against that domain's own data plane, so concurrent attacks
/// elsewhere cannot cross-talk.
struct ProbeResult {
  bool hijack = false;
  bool leak = false;
};

/// Walks from `ingress` of domain `d` constrained to (dst, TCP). The TCP
/// constraint keeps the walk space clear of the UDP in-band RVaaS rules;
/// the attacks match on IpDst alone, so detection is unaffected.
ProbeResult probe(AsWorld& world, std::size_t d, PortRef ingress,
                  std::uint32_t dst) {
  const auto v = world.federation().verify_policy(
      AsWorld::provider_of(d), ingress,
      Match()
          .exact(Field::IpDst, dst)
          .exact(Field::IpProto, sdn::kIpProtoTcp));
  ProbeResult out;
  for (const PolicyReportItem& item : v.reply.policy_report) {
    if (item.from != AsWorld::provider_of(d)) continue;
    out.hijack |= item.verdict == PolicyVerdict::UnauthorizedOrigin;
    out.leak |= item.verdict == PolicyVerdict::RouteLeak;
  }
  return out;
}

/// Data-plane truth for the same probe: inject a packet at the ingress and
/// watch where domain `d` puts it.
ProbeResult truth(AsWorld& world, std::size_t d, PortRef ingress,
                  std::uint32_t dst, NeighborClass entered_from) {
  ProbeResult out;
  const auto& cone = world.cone_ips(d);
  const sdn::Trajectory t = world.trace(d, ingress, dst);
  for (const auto& delivery : t.deliveries) {
    if (delivery.host.has_value()) {
      // A local delivery of a prefix outside the domain's own origin space.
      bool own = false;
      for (const auto h : world.domain_hosts(d)) {
        own |= control::HostAddressing::derive(h).ip == dst;
      }
      out.hijack |= !own;
      continue;
    }
    if (entered_from == NeighborClass::Customer) continue;
    // Transit traffic exiting through a non-customer border is a valley.
    for (const auto& in : world.ingresses()) {
      if (in.domain == d && in.port == delivery.egress &&
          in.feeder_class != NeighborClass::Customer) {
        out.leak = true;
      }
    }
  }
  static_cast<void>(cone);
  return out;
}

/// A destination some other domain originates and `d` does not route
/// (outside d's customer cone): the baseline guard drops it, so only an
/// attack can make it go anywhere inside d.
std::optional<std::uint32_t> foreign_ip(AsWorld& world, std::size_t d,
                                        util::Rng& rng) {
  const auto& cone = world.cone_ips(d);
  std::vector<std::uint32_t> candidates;
  for (std::size_t x = 0; x < world.domain_count(); ++x) {
    if (x == d) continue;
    for (const auto h : world.domain_hosts(x)) {
      const std::uint32_t ip = control::HostAddressing::derive(h).ip;
      if (std::find(cone.begin(), cone.end(), ip) == cone.end()) {
        candidates.push_back(ip);
      }
    }
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[rng.below(candidates.size())];
}

struct OracleCounters {
  std::uint32_t schedules = 0;
  std::uint32_t hijacks_detected = 0;
  std::uint32_t leaks_detected = 0;
};

/// One schedule: launch a hijack and a leak, churn inert rules underneath,
/// check detector == truth at every stage, revert, check clean again.
void run_schedule(AsWorld& world, util::Rng& rng, OracleCounters& counters) {
  const auto transit = world.transit_ingresses();
  ASSERT_FALSE(transit.empty());

  // --- route-origin hijack in a random domain ---
  const auto& hijack_in = transit[rng.below(transit.size())];
  const std::size_t hd = hijack_in.domain;
  const auto hijack_dst = foreign_ip(world, hd, rng);
  std::optional<attacks::RouteOriginHijackAttack> hijack;
  if (hijack_dst) {
    const auto& hosts = world.domain_hosts(hd);
    const sdn::HostId sink = hosts[rng.below(hosts.size())];
    hijack.emplace(*hijack_dst, hijack_in.port, sink);
    const auto record = hijack->launch(world.domain(hd).provider(),
                                       world.domain(hd).network());
    ASSERT_TRUE(record.has_value());
    world.domain(hd).settle();
  }

  // --- route leak between two non-customer borders of one domain ---
  std::optional<attacks::RouteLeakAttack> leak;
  std::size_t ld = 0;
  PortRef leak_ingress, leak_border;
  std::optional<std::uint32_t> leak_dst;
  {
    // Pick a domain with at least two transit ingresses.
    std::vector<std::size_t> domains;
    for (const auto& in : transit) domains.push_back(in.domain);
    std::sort(domains.begin(), domains.end());
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i + 1 < domains.size(); ++i) {
      if (domains[i] == domains[i + 1]) eligible.push_back(domains[i]);
    }
    eligible.erase(std::unique(eligible.begin(), eligible.end()),
                   eligible.end());
    if (!eligible.empty()) {
      ld = eligible[rng.below(eligible.size())];
      std::vector<const AsWorld::Ingress*> ins;
      for (const auto& in : transit) {
        if (in.domain == ld) ins.push_back(&in);
      }
      const std::size_t first = rng.below(ins.size());
      std::size_t second = rng.below(ins.size() - 1);
      if (second >= first) ++second;
      leak_ingress = ins[first]->port;
      leak_border = ins[second]->port;
      leak_dst = foreign_ip(world, ld, rng);
      if (leak_dst) {
        leak.emplace(leak_ingress, leak_border, *leak_dst);
        const auto record = leak->launch(world.domain(ld).provider(),
                                         world.domain(ld).network());
        if (record.has_value()) {
          world.domain(ld).settle();
        } else {
          leak.reset();  // no route between the borders in this graph
        }
      }
    }
  }

  auto check_agreement = [&](const char* stage) {
    if (hijack_dst) {
      const ProbeResult d =
          probe(world, hd, hijack_in.port, *hijack_dst);
      const ProbeResult t = truth(world, hd, hijack_in.port, *hijack_dst,
                                  hijack_in.feeder_class);
      EXPECT_EQ(d.hijack, t.hijack) << stage << ": hijack oracle split in "
                                    << "domain " << hd;
      if (hijack) EXPECT_TRUE(d.hijack) << stage;
      counters.hijacks_detected += d.hijack ? 1 : 0;
    }
    if (leak) {
      const ProbeResult d = probe(world, ld, leak_ingress, *leak_dst);
      NeighborClass entered = NeighborClass::Customer;
      for (const auto& in : transit) {
        if (in.domain == ld && in.port == leak_ingress) {
          entered = in.feeder_class;
        }
      }
      const ProbeResult t =
          truth(world, ld, leak_ingress, *leak_dst, entered);
      EXPECT_EQ(d.leak, t.leak)
          << stage << ": leak oracle split in domain " << ld;
      EXPECT_TRUE(d.leak) << stage;
      counters.leaks_detected += d.leak ? 1 : 0;
    }
  };

  check_agreement("attacks active");

  // --- functionally inert churn: priorities 1-29 never outrank the AS
  // baseline (P40+), so the oracle must not move ---
  for (int i = 0; i < 3; ++i) {
    const std::size_t cd = rng.below(world.domain_count());
    const auto& topo = world.domain(cd).network().topology();
    const auto& switches = topo.switches();
    sdn::FlowMod mod;
    mod.priority = static_cast<std::uint16_t>(1 + rng.below(29));
    mod.cookie = 0xc4a7;
    mod.match = Match().exact(Field::IpDst, 0x0b000000u + rng.below(0xffff));
    mod.actions = {sdn::drop()};
    world.domain(cd).provider_flow_mod(switches[rng.below(switches.size())],
                                       mod);
    world.domain(cd).settle();
  }

  check_agreement("under churn");

  // --- revert: the detector must go quiet again ---
  if (hijack) {
    hijack->revert(world.domain(hd).provider(), world.domain(hd).network());
    world.domain(hd).settle();
  }
  if (leak) {
    leak->revert(world.domain(ld).provider(), world.domain(ld).network());
    world.domain(ld).settle();
  }
  if (hijack_dst) {
    const ProbeResult d = probe(world, hd, hijack_in.port, *hijack_dst);
    const ProbeResult t = truth(world, hd, hijack_in.port, *hijack_dst,
                                hijack_in.feeder_class);
    EXPECT_EQ(d.hijack, t.hijack) << "post-revert hijack oracle split";
    EXPECT_FALSE(d.hijack) << "hijack survived revert in domain " << hd;
  }
  if (leak) {
    const ProbeResult d = probe(world, ld, leak_ingress, *leak_dst);
    EXPECT_FALSE(d.leak) << "leak survived revert in domain " << ld;
  }
  ++counters.schedules;
}

TEST(PolicyFuzz, DetectorMatchesGroundTruthOverRandomSchedules) {
  OracleCounters counters;
  util::Rng meta(0x90110c);
  // 12 worlds x 10 schedules = 120 schedules on 4-6 domain AS graphs.
  for (std::uint32_t w = 0; w < 12; ++w) {
    AsWorldConfig config;
    config.n_domains = 4 + w % 3;
    config.seed = 1000 + w;
    config.tier0_fat_tree = false;  // small random_isp cores: cheap worlds
    AsWorld world(config);
    util::Rng rng = meta.fork();
    for (int s = 0; s < 10; ++s) run_schedule(world, rng, counters);
  }
  EXPECT_GE(counters.schedules, 100u);
  // Both attack families must have been exercised and caught many times —
  // a fuzzer that mostly skips its attacks proves nothing.
  EXPECT_GE(counters.hijacks_detected, 100u);
  EXPECT_GE(counters.leaks_detected, 100u);
}

}  // namespace
}  // namespace rvaas::workload
