// Topology generators and scenario runtime wiring.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "workload/geoip.hpp"
#include "workload/scenario.hpp"
#include "workload/topo_gen.hpp"

namespace rvaas::workload {
namespace {

using sdn::SwitchId;

TEST(TopoGen, FatTreeStructure) {
  const GeneratedTopology g = fat_tree(4);
  // k=4: 4 core + 4 pods * (2 agg + 2 edge) = 20 switches, 8 hosts.
  EXPECT_EQ(g.topo.switch_count(), 20u);
  EXPECT_EQ(g.hosts.size(), 8u);
  // Links: core-agg = 4*4 = 16, agg-edge = 4 * 2*2 = 16.
  EXPECT_EQ(g.topo.links().size(), 32u);
  // Every pair of hosts is connected in the switch graph.
  const auto a = g.topo.host_ports(g.hosts.front()).front();
  const auto b = g.topo.host_ports(g.hosts.back()).front();
  const auto path = control::shortest_switch_path(g.topo, a.sw, b.sw);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);  // edge-agg-core-agg-edge across pods
}

TEST(TopoGen, FatTreeHostsPerEdge) {
  const GeneratedTopology g = fat_tree(4, 2);
  EXPECT_EQ(g.hosts.size(), 16u);
  EXPECT_THROW(fat_tree(4, 3), util::InvariantViolation);
  EXPECT_THROW(fat_tree(3), util::InvariantViolation);
}

TEST(TopoGen, LinearChain) {
  const GeneratedTopology g = linear(5);
  EXPECT_EQ(g.topo.switch_count(), 5u);
  EXPECT_EQ(g.topo.links().size(), 4u);
  EXPECT_EQ(g.hosts.size(), 5u);
  // Ends are 5 switches apart.
  const auto path =
      control::shortest_switch_path(g.topo, SwitchId(1), SwitchId(5));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
  // Jurisdiction changes along the line.
  EXPECT_NE(g.topo.geo(SwitchId(1)).jurisdiction,
            g.topo.geo(SwitchId(5)).jurisdiction);
}

TEST(TopoGen, RingWraps) {
  const GeneratedTopology g = ring(6);
  EXPECT_EQ(g.topo.links().size(), 6u);
  const auto path =
      control::shortest_switch_path(g.topo, SwitchId(1), SwitchId(6));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);  // wrap-around link
}

TEST(TopoGen, GridDimensions) {
  const GeneratedTopology g = grid(3, 4);
  EXPECT_EQ(g.topo.switch_count(), 12u);
  EXPECT_EQ(g.topo.links().size(), (2u * 4u) + (3u * 3u));
  EXPECT_EQ(g.hosts.size(), 12u);
}

TEST(TopoGen, RandomIspConnected) {
  util::Rng rng(7);
  const GeneratedTopology g = random_isp(20, 10, rng);
  EXPECT_EQ(g.topo.switch_count(), 20u);
  EXPECT_GE(g.topo.links().size(), 19u);
  for (std::uint32_t i = 2; i <= 20; ++i) {
    EXPECT_TRUE(control::shortest_switch_path(g.topo, SwitchId(1), SwitchId(i))
                    .has_value());
  }
}

// Regression: the spanning-tree wiring drew a parent without checking its
// remaining port budget, so large n (where a random recursive tree's max
// degree exceeds the per-switch budget) crashed with an invalid-port
// violation. The fix probes forward from the draw until a switch with
// capacity is found.
TEST(TopoGen, RandomIspLargeNPortBudgetRegression) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(seed);
    const GeneratedTopology g = random_isp(300, 0, rng);
    EXPECT_EQ(g.topo.switch_count(), 300u);
    EXPECT_EQ(g.hosts.size(), 300u);
    EXPECT_GE(g.topo.links().size(), 299u);  // spanning tree survived
    for (std::uint32_t i = 50; i <= 300; i += 50) {
      EXPECT_TRUE(
          control::shortest_switch_path(g.topo, SwitchId(1), SwitchId(i))
              .has_value());
    }
  }
}

// Every generator must stay within the declared per-switch port budgets:
// counting link endpoints and host attachments per switch never exceeds
// num_ports, and the remainder is exactly the dark-port set.
TEST(TopoGen, FatTreePortBudgetInvariant) {
  const GeneratedTopology g = fat_tree(4, 2);
  std::map<SwitchId, std::uint32_t> used;
  for (const auto& link : g.topo.links()) {
    ++used[link.a.sw];
    ++used[link.b.sw];
  }
  for (const auto h : g.hosts) {
    for (const auto p : g.topo.host_ports(h)) ++used[p.sw];
  }
  for (const SwitchId sw : g.topo.switches()) {
    EXPECT_LE(used[sw], g.topo.num_ports(sw));
    EXPECT_EQ(g.topo.dark_ports(sw).size(), g.topo.num_ports(sw) - used[sw]);
  }
}

TEST(TopoGen, AsGraphStructuralInvariants) {
  for (const std::uint64_t seed : {3u, 17u, 42u}) {
    util::Rng rng(seed);
    const AsGraph g = as_graph(8, rng, /*tier0_fat_tree=*/false);
    ASSERT_EQ(g.domains.size(), 8u);
    ASSERT_EQ(g.tier.size(), 8u);
    EXPECT_EQ(g.tier[0], 0u);
    EXPECT_EQ(g.tier[1], 0u);

    std::vector<bool> has_provider(8, false);
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> borders;
    for (const AsAdjacency& adj : g.adjacencies) {
      ASSERT_LT(adj.up, 8u);
      ASSERT_LT(adj.down, 8u);
      if (adj.peer) {
        // Settlement-free peering only between equals.
        EXPECT_EQ(g.tier[adj.up], g.tier[adj.down]);
      } else {
        // Provider edges point strictly down the hierarchy.
        EXPECT_LT(g.tier[adj.up], g.tier[adj.down]);
        has_provider[adj.down] = true;
      }
      // Border ports are dark inside their own domain (no host, no link)
      // and never shared between adjacencies.
      EXPECT_FALSE(
          g.domains[adj.up].topo.host_at(adj.up_port).has_value());
      EXPECT_FALSE(
          g.domains[adj.down].topo.host_at(adj.down_port).has_value());
      EXPECT_TRUE(borders
                      .emplace(adj.up, adj.up_port.sw.value,
                               adj.up_port.port.value)
                      .second);
      EXPECT_TRUE(borders
                      .emplace(adj.down, adj.down_port.sw.value,
                               adj.down_port.port.value)
                      .second);
    }
    // Everyone below the core bought transit from somewhere.
    for (std::uint32_t d = 2; d < 8; ++d) EXPECT_TRUE(has_provider[d]);
    // Host ids are globally unique across domains (one federation-wide
    // address plan).
    std::set<sdn::HostId> all_hosts;
    for (const auto& dom : g.domains) {
      for (const auto h : dom.hosts) EXPECT_TRUE(all_hosts.insert(h).second);
    }
  }
}

TEST(GeoIpSynthesis, ZeroErrorMatchesTruth) {
  util::Rng rng(5);
  const GeneratedTopology g = linear(4);
  control::HostAddressing addressing;
  for (const auto h : g.hosts) addressing.assign(h);
  const core::GeoIpDb db = synth_geoip_db(g.topo, addressing, 0.0, rng);
  for (const auto h : g.hosts) {
    const auto jur = db.lookup(addressing.of(h).ip);
    ASSERT_TRUE(jur.has_value());
    EXPECT_EQ(*jur, g.topo.geo(g.topo.host_ports(h).front().sw).jurisdiction);
  }
}

TEST(GeoIpSynthesis, FullErrorNeverMatchesTruth) {
  util::Rng rng(6);
  const GeneratedTopology g = linear(4);
  control::HostAddressing addressing;
  for (const auto h : g.hosts) addressing.assign(h);
  const core::GeoIpDb db = synth_geoip_db(g.topo, addressing, 1.0, rng);
  for (const auto h : g.hosts) {
    const auto jur = db.lookup(addressing.of(h).ip);
    ASSERT_TRUE(jur.has_value());
    EXPECT_NE(*jur, g.topo.geo(g.topo.host_ports(h).front().sw).jurisdiction);
  }
}

TEST(Scenario, BootstrapsAndRoutesTraffic) {
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 11;
  ScenarioRuntime runtime(std::move(config));

  // Provider routing is installed: host0 can reach host2 in the data plane.
  const auto& hosts = runtime.hosts();
  sdn::Packet p;
  p.hdr.eth_type = sdn::kEthTypeIpv4;
  p.hdr.ip_proto = sdn::kIpProtoUdp;
  p.hdr.ip_src = runtime.addressing().of(hosts[0]).ip;
  p.hdr.ip_dst = runtime.addressing().of(hosts[2]).ip;
  const sdn::Trajectory t = runtime.network().trace_from_host(hosts[0], p);
  EXPECT_EQ(t.reached_hosts(), std::vector<sdn::HostId>{hosts[2]});
}

TEST(Scenario, TenantsPartitionHosts) {
  ScenarioConfig config;
  config.generated = linear(4);
  config.tenant_count = 2;
  ScenarioRuntime runtime(std::move(config));

  const auto& hosts = runtime.hosts();
  // hosts[0] and hosts[2] share tenant 1; hosts[1], hosts[3] tenant 2.
  const auto t0 = runtime.provider().tenant_of(hosts[0]);
  const auto t1 = runtime.provider().tenant_of(hosts[1]);
  ASSERT_TRUE(t0 && t1);
  EXPECT_NE(t0->id, t1->id);

  // Cross-tenant traffic is not routed.
  sdn::Packet p;
  p.hdr.ip_src = runtime.addressing().of(hosts[0]).ip;
  p.hdr.ip_dst = runtime.addressing().of(hosts[1]).ip;
  const sdn::Trajectory t = runtime.network().trace_from_host(hosts[0], p);
  EXPECT_TRUE(t.reached_hosts().empty());
}

TEST(Scenario, ProviderRoutesFollowShortestPaths) {
  ScenarioConfig config;
  config.generated = fat_tree(4);
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  for (std::size_t i = 1; i < 4; ++i) {
    const auto route =
        runtime.provider().route_switches(hosts[0], hosts[i]);
    ASSERT_TRUE(route.has_value());
    const auto a = runtime.network().topology().host_ports(hosts[0]).front();
    const auto b = runtime.network().topology().host_ports(hosts[i]).front();
    const auto shortest =
        control::shortest_switch_path(runtime.network().topology(), a.sw, b.sw);
    ASSERT_TRUE(shortest.has_value());
    EXPECT_EQ(route->size(), shortest->size());
  }
}

}  // namespace
}  // namespace rvaas::workload
