// Topology generators and scenario runtime wiring.

#include <gtest/gtest.h>

#include "workload/geoip.hpp"
#include "workload/scenario.hpp"
#include "workload/topo_gen.hpp"

namespace rvaas::workload {
namespace {

using sdn::SwitchId;

TEST(TopoGen, FatTreeStructure) {
  const GeneratedTopology g = fat_tree(4);
  // k=4: 4 core + 4 pods * (2 agg + 2 edge) = 20 switches, 8 hosts.
  EXPECT_EQ(g.topo.switch_count(), 20u);
  EXPECT_EQ(g.hosts.size(), 8u);
  // Links: core-agg = 4*4 = 16, agg-edge = 4 * 2*2 = 16.
  EXPECT_EQ(g.topo.links().size(), 32u);
  // Every pair of hosts is connected in the switch graph.
  const auto a = g.topo.host_ports(g.hosts.front()).front();
  const auto b = g.topo.host_ports(g.hosts.back()).front();
  const auto path = control::shortest_switch_path(g.topo, a.sw, b.sw);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);  // edge-agg-core-agg-edge across pods
}

TEST(TopoGen, FatTreeHostsPerEdge) {
  const GeneratedTopology g = fat_tree(4, 2);
  EXPECT_EQ(g.hosts.size(), 16u);
  EXPECT_THROW(fat_tree(4, 3), util::InvariantViolation);
  EXPECT_THROW(fat_tree(3), util::InvariantViolation);
}

TEST(TopoGen, LinearChain) {
  const GeneratedTopology g = linear(5);
  EXPECT_EQ(g.topo.switch_count(), 5u);
  EXPECT_EQ(g.topo.links().size(), 4u);
  EXPECT_EQ(g.hosts.size(), 5u);
  // Ends are 5 switches apart.
  const auto path =
      control::shortest_switch_path(g.topo, SwitchId(1), SwitchId(5));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
  // Jurisdiction changes along the line.
  EXPECT_NE(g.topo.geo(SwitchId(1)).jurisdiction,
            g.topo.geo(SwitchId(5)).jurisdiction);
}

TEST(TopoGen, RingWraps) {
  const GeneratedTopology g = ring(6);
  EXPECT_EQ(g.topo.links().size(), 6u);
  const auto path =
      control::shortest_switch_path(g.topo, SwitchId(1), SwitchId(6));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);  // wrap-around link
}

TEST(TopoGen, GridDimensions) {
  const GeneratedTopology g = grid(3, 4);
  EXPECT_EQ(g.topo.switch_count(), 12u);
  EXPECT_EQ(g.topo.links().size(), (2u * 4u) + (3u * 3u));
  EXPECT_EQ(g.hosts.size(), 12u);
}

TEST(TopoGen, RandomIspConnected) {
  util::Rng rng(7);
  const GeneratedTopology g = random_isp(20, 10, rng);
  EXPECT_EQ(g.topo.switch_count(), 20u);
  EXPECT_GE(g.topo.links().size(), 19u);
  for (std::uint32_t i = 2; i <= 20; ++i) {
    EXPECT_TRUE(control::shortest_switch_path(g.topo, SwitchId(1), SwitchId(i))
                    .has_value());
  }
}

TEST(GeoIpSynthesis, ZeroErrorMatchesTruth) {
  util::Rng rng(5);
  const GeneratedTopology g = linear(4);
  control::HostAddressing addressing;
  for (const auto h : g.hosts) addressing.assign(h);
  const core::GeoIpDb db = synth_geoip_db(g.topo, addressing, 0.0, rng);
  for (const auto h : g.hosts) {
    const auto jur = db.lookup(addressing.of(h).ip);
    ASSERT_TRUE(jur.has_value());
    EXPECT_EQ(*jur, g.topo.geo(g.topo.host_ports(h).front().sw).jurisdiction);
  }
}

TEST(GeoIpSynthesis, FullErrorNeverMatchesTruth) {
  util::Rng rng(6);
  const GeneratedTopology g = linear(4);
  control::HostAddressing addressing;
  for (const auto h : g.hosts) addressing.assign(h);
  const core::GeoIpDb db = synth_geoip_db(g.topo, addressing, 1.0, rng);
  for (const auto h : g.hosts) {
    const auto jur = db.lookup(addressing.of(h).ip);
    ASSERT_TRUE(jur.has_value());
    EXPECT_NE(*jur, g.topo.geo(g.topo.host_ports(h).front().sw).jurisdiction);
  }
}

TEST(Scenario, BootstrapsAndRoutesTraffic) {
  ScenarioConfig config;
  config.generated = linear(3);
  config.seed = 11;
  ScenarioRuntime runtime(std::move(config));

  // Provider routing is installed: host0 can reach host2 in the data plane.
  const auto& hosts = runtime.hosts();
  sdn::Packet p;
  p.hdr.eth_type = sdn::kEthTypeIpv4;
  p.hdr.ip_proto = sdn::kIpProtoUdp;
  p.hdr.ip_src = runtime.addressing().of(hosts[0]).ip;
  p.hdr.ip_dst = runtime.addressing().of(hosts[2]).ip;
  const sdn::Trajectory t = runtime.network().trace_from_host(hosts[0], p);
  EXPECT_EQ(t.reached_hosts(), std::vector<sdn::HostId>{hosts[2]});
}

TEST(Scenario, TenantsPartitionHosts) {
  ScenarioConfig config;
  config.generated = linear(4);
  config.tenant_count = 2;
  ScenarioRuntime runtime(std::move(config));

  const auto& hosts = runtime.hosts();
  // hosts[0] and hosts[2] share tenant 1; hosts[1], hosts[3] tenant 2.
  const auto t0 = runtime.provider().tenant_of(hosts[0]);
  const auto t1 = runtime.provider().tenant_of(hosts[1]);
  ASSERT_TRUE(t0 && t1);
  EXPECT_NE(t0->id, t1->id);

  // Cross-tenant traffic is not routed.
  sdn::Packet p;
  p.hdr.ip_src = runtime.addressing().of(hosts[0]).ip;
  p.hdr.ip_dst = runtime.addressing().of(hosts[1]).ip;
  const sdn::Trajectory t = runtime.network().trace_from_host(hosts[0], p);
  EXPECT_TRUE(t.reached_hosts().empty());
}

TEST(Scenario, ProviderRoutesFollowShortestPaths) {
  ScenarioConfig config;
  config.generated = fat_tree(4);
  ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  for (std::size_t i = 1; i < 4; ++i) {
    const auto route =
        runtime.provider().route_switches(hosts[0], hosts[i]);
    ASSERT_TRUE(route.has_value());
    const auto a = runtime.network().topology().host_ports(hosts[0]).front();
    const auto b = runtime.network().topology().host_ports(hosts[i]).front();
    const auto shortest =
        control::shortest_switch_path(runtime.network().topology(), a.sw, b.sw);
    ASSERT_TRUE(shortest.has_value());
    EXPECT_EQ(route->size(), shortest->size());
  }
}

}  // namespace
}  // namespace rvaas::workload
