// Query/reply types: serialization round trips and client-side verdict
// evaluation against expectation policies.

#include <gtest/gtest.h>

#include "rvaas/query.hpp"

namespace rvaas::core {
namespace {

using sdn::HostId;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

TEST(QueryTypes, QuerySerializationRoundTrip) {
  Query q;
  q.kind = QueryKind::PathLength;
  q.constraint =
      sdn::Match().exact(sdn::Field::IpProto, sdn::kIpProtoTcp);
  q.peer = HostId(42);

  util::ByteWriter w;
  q.serialize(w);
  util::ByteReader r(w.data());
  const Query q2 = Query::deserialize(r);
  EXPECT_EQ(q2.kind, QueryKind::PathLength);
  EXPECT_EQ(q2.constraint, q.constraint);
  EXPECT_EQ(q2.peer, HostId(42));
}

TEST(QueryTypes, RequestSerializationRoundTrip) {
  QueryRequest req;
  req.request_id = 0xdeadbeef12345678ULL;
  req.client = HostId(7);
  req.query.kind = QueryKind::Isolation;
  util::ByteWriter w;
  req.serialize(w);
  util::ByteReader r(w.data());
  const QueryRequest req2 = QueryRequest::deserialize(r);
  EXPECT_EQ(req2.request_id, req.request_id);
  EXPECT_EQ(req2.client, req.client);
  EXPECT_EQ(req2.query.kind, QueryKind::Isolation);
}

TEST(QueryTypes, BadKindRejected) {
  util::ByteWriter w;
  w.put_u8(99);
  util::ByteReader r(w.data());
  EXPECT_THROW(Query::deserialize(r), util::DecodeError);
}

QueryReply full_reply() {
  QueryReply reply;
  reply.request_id = 77;
  reply.kind = QueryKind::Isolation;
  EndpointInfo a;
  a.access_point = {SwitchId(3), PortNo(1)};
  a.authenticated = true;
  a.authenticated_as = HostId(11);
  EndpointInfo b;
  b.access_point = {SwitchId(5), PortNo(2)};
  b.dark = true;
  reply.endpoints = {a, b};
  reply.auth = {2, 1};
  reply.jurisdictions = {"DE", "FR"};
  reply.path_found = true;
  reply.installed_path_length = 4;
  reply.optimal_path_length = 3;
  reply.fairness = {{"min-rate-bps", 1000}};
  reply.transfer_summary = {{{SwitchId(3), PortNo(1)}, 5}};
  reply.disclosed_paths = {"s1->s2"};
  return reply;
}

TEST(QueryTypes, ReplySerializationRoundTrip) {
  const QueryReply reply = full_reply();
  util::ByteWriter w;
  reply.serialize(w);
  util::ByteReader r(w.data());
  const QueryReply reply2 = QueryReply::deserialize(r);

  EXPECT_EQ(reply2.request_id, 77u);
  ASSERT_EQ(reply2.endpoints.size(), 2u);
  EXPECT_EQ(reply2.endpoints[0].authenticated_as, HostId(11));
  EXPECT_TRUE(reply2.endpoints[1].dark);
  EXPECT_EQ(reply2.auth.issued, 2u);
  EXPECT_EQ(reply2.jurisdictions, (std::vector<std::string>{"DE", "FR"}));
  EXPECT_EQ(reply2.installed_path_length, 4u);
  ASSERT_EQ(reply2.fairness.size(), 1u);
  EXPECT_EQ(reply2.fairness[0].value, 1000u);
  ASSERT_EQ(reply2.transfer_summary.size(), 1u);
  EXPECT_EQ(reply2.transfer_summary[0].cube_count, 5u);
  EXPECT_EQ(reply2.disclosed_paths, (std::vector<std::string>{"s1->s2"}));
  // Signing payload is deterministic.
  EXPECT_EQ(reply.signing_payload(), reply2.signing_payload());
}

TEST(Verdict, CleanReplyPasses) {
  QueryReply reply;
  reply.kind = QueryKind::ReachableEndpoints;
  EndpointInfo e;
  e.access_point = {SwitchId(1), PortNo(1)};
  e.authenticated = true;
  e.authenticated_as = HostId(5);
  reply.endpoints = {e};
  reply.auth = {1, 1};

  Expectation expect;
  expect.allowed_endpoints = {HostId(5)};
  const Verdict v = evaluate_reply(reply, expect);
  EXPECT_TRUE(v.ok);
  EXPECT_TRUE(v.violations.empty());
}

TEST(Verdict, DarkEndpointFlagged) {
  QueryReply reply;
  EndpointInfo e;
  e.access_point = {SwitchId(9), PortNo(3)};
  e.dark = true;
  reply.endpoints = {e};
  const Verdict v = evaluate_reply(reply, Expectation{});
  EXPECT_FALSE(v.ok);
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_NE(v.violations[0].find("dark"), std::string::npos);
}

TEST(Verdict, UnauthenticatedEndpointFlagged) {
  QueryReply reply;
  EndpointInfo e;
  e.access_point = {SwitchId(2), PortNo(1)};
  reply.endpoints = {e};
  Expectation expect;
  const Verdict strict = evaluate_reply(reply, expect);
  EXPECT_FALSE(strict.ok);

  expect.require_full_auth = false;
  const Verdict lax = evaluate_reply(reply, expect);
  EXPECT_TRUE(lax.ok);
}

TEST(Verdict, UnexpectedEndpointFlagged) {
  QueryReply reply;
  EndpointInfo e;
  e.access_point = {SwitchId(2), PortNo(1)};
  e.authenticated = true;
  e.authenticated_as = HostId(66);  // not whitelisted
  reply.endpoints = {e};
  reply.auth = {1, 1};
  Expectation expect;
  expect.allowed_endpoints = {HostId(5)};
  const Verdict v = evaluate_reply(reply, expect);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.violations[0].find("unexpected endpoint"), std::string::npos);
}

TEST(Verdict, MissingAuthRepliesFlagged) {
  QueryReply reply;
  reply.auth = {3, 2};
  const Verdict v = evaluate_reply(reply, Expectation{});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.violations[0].find("2 of 3"), std::string::npos);
}

TEST(Verdict, ForbiddenJurisdictionFlagged) {
  QueryReply reply;
  reply.kind = QueryKind::Geo;
  reply.jurisdictions = {"DE", "US"};
  Expectation expect;
  expect.allowed_jurisdictions = {"DE", "FR"};
  const Verdict v = evaluate_reply(reply, expect);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.violations[0].find("US"), std::string::npos);
}

TEST(Verdict, SuboptimalPathFlagged) {
  QueryReply reply;
  reply.kind = QueryKind::PathLength;
  reply.path_found = true;
  reply.installed_path_length = 6;
  reply.optimal_path_length = 3;
  Expectation expect;
  expect.require_optimal_path = true;
  const Verdict v = evaluate_reply(reply, expect);
  EXPECT_FALSE(v.ok);

  reply.installed_path_length = 3;
  EXPECT_TRUE(evaluate_reply(reply, expect).ok);
}

TEST(Verdict, MissingPathFlaggedWhenOptimalRequired) {
  QueryReply reply;
  reply.kind = QueryKind::PathLength;
  reply.path_found = false;
  Expectation expect;
  expect.require_optimal_path = true;
  EXPECT_FALSE(evaluate_reply(reply, expect).ok);
}

}  // namespace
}  // namespace rvaas::core
