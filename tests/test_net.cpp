// Wire front-end integration: the framing layer must survive adversarial
// segmentation and reject bogus length claims before allocating, the session
// table must enforce slot semantics, and a TCP session must be
// indistinguishable from an in-process agent — byte-identical replies for
// every QueryKind, working subscription pushes, and eviction (not a wedged
// sweep) when its socket dies.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"
#include "workload/wire_world.hpp"

namespace rvaas::net {
namespace {

using core::Property;
using core::Query;
using core::QueryKind;
using core::QueryReply;
using sdn::HostId;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

constexpr sdn::ControllerId kProviderId{1};

/// Serialized reply with the request id normalized away (wire and in-process
/// sessions hand out ids from independent counters; everything
/// verdict-relevant must be byte-identical).
util::Bytes reply_bytes(QueryReply reply) {
  reply.request_id = 0;
  util::ByteWriter w;
  reply.serialize(w);
  return w.take();
}

// --- framing ---

TEST(Framing, SurvivesAdversarialSegmentation) {
  util::Rng rng(0x5e9);
  std::vector<util::Bytes> payloads;
  util::Bytes stream;
  for (int i = 0; i < 8; ++i) {
    util::Bytes payload(1 + rng.below(300));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
    const util::Bytes frame = encode_frame(payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
    payloads.push_back(std::move(payload));
  }

  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder decoder;
    std::size_t offset = 0;
    std::vector<util::Bytes> got;
    while (offset < stream.size()) {
      // 1-byte reads on trial 0 (splits every length prefix), random
      // segment sizes after.
      const std::size_t chunk =
          trial == 0 ? 1
                     : std::min<std::size_t>(1 + rng.below(37),
                                             stream.size() - offset);
      ASSERT_TRUE(decoder.feed(
          std::span(stream.data() + offset, chunk)));
      offset += chunk;
      while (auto frame = decoder.take()) got.push_back(std::move(*frame));
    }
    ASSERT_EQ(got.size(), payloads.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], payloads[i]) << "trial " << trial << " frame " << i;
    }
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(Framing, BogusLengthClaimsPoisonBeforeAllocation) {
  {  // Zero-length claim: not a valid frame.
    FrameDecoder decoder;
    const std::uint8_t zero[4] = {0, 0, 0, 0};
    EXPECT_FALSE(decoder.feed(zero));
    EXPECT_TRUE(decoder.poisoned());
  }
  {  // A 4 GiB claim must poison without buffering anything near it, even
    // when the prefix arrives split.
    FrameDecoder decoder;
    const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
    EXPECT_TRUE(decoder.feed(std::span(huge, 2)));
    EXPECT_FALSE(decoder.feed(std::span(huge + 2, 2)));
    EXPECT_TRUE(decoder.poisoned());
    EXPECT_LE(decoder.buffered(), kFrameLengthBytes);
    // Poisoned decoders ignore all further input.
    const std::uint8_t more[8] = {};
    EXPECT_FALSE(decoder.feed(more));
    EXPECT_FALSE(decoder.take().has_value());
    EXPECT_LE(decoder.buffered(), kFrameLengthBytes);
  }
  {  // One past the bound is rejected; the bound itself is accepted.
    FrameDecoder decoder;
    const std::uint32_t claim = kMaxFrameBytes + 1;
    const std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(claim >> 24),
        static_cast<std::uint8_t>(claim >> 16),
        static_cast<std::uint8_t>(claim >> 8),
        static_cast<std::uint8_t>(claim)};
    EXPECT_FALSE(decoder.feed(prefix));
    EXPECT_TRUE(decoder.poisoned());

    FrameDecoder ok;
    const util::Bytes max_payload(kMaxFrameBytes, 0xab);
    EXPECT_TRUE(ok.feed(encode_frame(max_payload)));
    const auto frame = ok.take();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->size(), kMaxFrameBytes);
  }
}

// --- session table ---

TEST(SessionTable, SlotSemantics) {
  std::vector<WireSlot> slots(2);
  slots[0].host = HostId(1001);
  slots[0].access_point = PortRef{SwitchId(1), PortNo(1)};
  slots[1].host = HostId(1002);
  slots[1].access_point = PortRef{SwitchId(1), PortNo(2)};
  SessionTable table(std::move(slots));
  EXPECT_EQ(table.capacity(), 2u);
  EXPECT_EQ(table.active(), 0u);

  WireSlot got;
  EXPECT_EQ(table.claim(1001, /*conn=*/10, &got), WelcomeStatus::Ok);
  EXPECT_EQ(got.host, HostId(1001));
  EXPECT_EQ(table.claim(1001, 11, &got), WelcomeStatus::SlotTaken);
  EXPECT_EQ(table.claim(4242, 11, &got), WelcomeStatus::BadHello);
  EXPECT_EQ(table.claim(0, 11, &got), WelcomeStatus::Ok);  // any free
  EXPECT_EQ(got.host, HostId(1002));
  EXPECT_EQ(table.claim(0, 12, &got), WelcomeStatus::NoFreeSlot);
  EXPECT_EQ(table.active(), 2u);

  EXPECT_EQ(table.owner_of_host(HostId(1001)), std::uint64_t{10});
  EXPECT_EQ(table.owner_of_port(PortRef{SwitchId(1), PortNo(2)}),
            std::uint64_t{11});

  const auto released = table.release(10);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->host, HostId(1001));
  EXPECT_FALSE(table.release(10).has_value());  // idempotent
  EXPECT_FALSE(table.owner_of_host(HostId(1001)).has_value());
  EXPECT_EQ(table.claim(1001, 13, &got), WelcomeStatus::Ok);
}

// --- live server fixtures ---

struct WireWorld {
  std::unique_ptr<workload::ScenarioRuntime> runtime;
  std::unique_ptr<WireService> service;
  std::unique_ptr<WireServer> server;
  std::vector<HostId> wire_hosts;
};

/// A small line fabric with the last `wire_slots` hosts reserved for TCP
/// sessions. A generous auth timeout keeps reach-family replies identical
/// across real-time (wire) and fast-forward (in-process) evaluation.
WireWorld make_wire_world(std::uint64_t seed, std::size_t wire_slots,
                          std::size_t io_threads = 1) {
  workload::ScenarioConfig config;
  config.generated = workload::linear_fanout(3, 2);
  config.seed = seed;
  config.rvaas.auth_timeout = 500 * sim::kMillisecond;
  const auto& hosts = config.generated.hosts;
  WireWorld world;
  world.wire_hosts.assign(hosts.end() - wire_slots, hosts.end());
  config.wire_hosts = world.wire_hosts;
  world.runtime =
      std::make_unique<workload::ScenarioRuntime>(std::move(config));
  world.runtime->settle(50 * sim::kMillisecond);
  world.service = std::make_unique<WireService>(world.runtime->loop());
  WireServerConfig server_config;
  server_config.io_threads = io_threads;
  world.server = std::make_unique<WireServer>(
      server_config, world.runtime->rvaas(), *world.service,
      world.runtime->ias().root_key(),
      workload::wire_slots(*world.runtime, world.wire_hosts), seed ^ 0x3157);
  world.service->start();
  world.server->start();
  return world;
}

std::unique_ptr<WireClient> connect_client(const WireWorld& world,
                                           HostId host,
                                           std::uint64_t seed = 0xc11e) {
  WireClientConfig config;
  config.port = world.server->port();
  config.requested_host = host.value;
  config.seed = seed;
  auto client = std::make_unique<WireClient>(config);
  EXPECT_EQ(client->connect(), WelcomeStatus::Ok);
  return client;
}

TEST(WireServer, RepliesByteIdenticalToInProcessForAllKinds) {
  // Two worlds from the same seed: in world A every host runs an in-process
  // agent; in world B the last host is a wire slot (the config burns its rng
  // fork, so all other identities match). The wire session's replies must be
  // byte-identical to the in-process agent's.
  constexpr std::uint64_t kSeed = 20160628;
  workload::ScenarioConfig config_a;
  config_a.generated = workload::linear_fanout(3, 2);
  config_a.seed = kSeed;
  config_a.rvaas.auth_timeout = 500 * sim::kMillisecond;
  workload::ScenarioRuntime in_process(std::move(config_a));
  in_process.settle(50 * sim::kMillisecond);

  WireWorld wired = make_wire_world(kSeed, /*wire_slots=*/1);
  const HostId host = wired.wire_hosts.front();
  const HostId peer = in_process.hosts().front();
  auto client = connect_client(wired, host);

  for (const QueryKind kind :
       {QueryKind::ReachableEndpoints, QueryKind::ReachingSources,
        QueryKind::Isolation, QueryKind::Geo, QueryKind::PathLength,
        QueryKind::Fairness, QueryKind::TransferSummary}) {
    Property property;
    property.kind = kind;
    if (kind == QueryKind::PathLength) property.peer = peer;

    const auto wire = client->query(property.query(), 30'000);
    ASSERT_FALSE(wire.timed_out) << to_string(kind);
    ASSERT_TRUE(wire.reply.has_value()) << to_string(kind);
    EXPECT_TRUE(wire.signature_ok) << to_string(kind);

    const auto local =
        in_process.query_and_wait(host, property.query(), 2 * sim::kSecond);
    ASSERT_TRUE(local.reply.has_value()) << to_string(kind);
    EXPECT_EQ(reply_bytes(*wire.reply), reply_bytes(*local.reply))
        << to_string(kind);
  }

  client->close();
  wired.server->stop();
  wired.service->stop();
}

TEST(WireServer, SubscriptionPushesAndDeadSocketEvicts) {
  WireWorld world = make_wire_world(/*seed=*/31, /*wire_slots=*/2);
  auto doomed = connect_client(world, world.wire_hosts[0], 0xaa);
  auto survivor = connect_client(world, world.wire_hosts[1], 0xbb);

  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  property.expect.require_full_auth = false;
  for (auto* client : {doomed.get(), survivor.get()}) {
    client->subscribe(property, core::NotifyPolicy::EveryChange);
    const auto baseline = client->wait_notification(30'000);
    ASSERT_TRUE(baseline.has_value());
    EXPECT_EQ(baseline->sequence, 1u);
  }

  // Partition the fabric: both sessions must receive the alert push.
  const SwitchId mid = world.runtime->network().topology().switches()[1];
  world.service->post([&runtime = *world.runtime, mid] {
    sdn::FlowMod mod;
    mod.priority = 1000;  // above routing rules, below the intercept
    mod.cookie = 0x0dd;
    mod.actions = {sdn::drop()};
    runtime.network().switch_sim(mid).apply_flow_mod(kProviderId, mod);
  });
  for (auto* client : {doomed.get(), survivor.get()}) {
    const auto push = client->wait_notification(30'000);
    ASSERT_TRUE(push.has_value());
    EXPECT_GT(push->sequence, 1u);
  }

  // Kill one socket without unsubscribing: the server must release the slot
  // and evict the session (its subscriptions die with it).
  doomed->close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (world.server->sessions().active() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(world.server->sessions().active(), 1u);
  EXPECT_GE(world.server->stats().evictions, 1u);

  // Heal the partition: the surviving session still gets its push — a dead
  // socket never wedges the sweep.
  world.service->post([&runtime = *world.runtime, mid] {
    for (const auto& entry : runtime.rvaas().snapshot().table(mid)) {
      if (entry.cookie != 0x0dd) continue;
      sdn::FlowMod del;
      del.command = sdn::FlowModCommand::Delete;
      del.target = entry.id;
      runtime.network().switch_sim(mid).apply_flow_mod(kProviderId, del);
    }
  });
  const auto recovery = survivor->wait_notification(30'000);
  ASSERT_TRUE(recovery.has_value());

  const WireServer::Stats stats = world.server->stats();
  EXPECT_EQ(stats.bad_frames + stats.bad_hellos + stats.bad_envelopes, 0u);
  survivor->close();
  world.server->stop();
  world.service->stop();
}

TEST(WireServer, StopWithLiveConnectionsIsSafe) {
  WireWorld world = make_wire_world(/*seed=*/47, /*wire_slots=*/2,
                                    /*io_threads=*/2);
  auto a = connect_client(world, world.wire_hosts[0], 0x1);
  auto b = connect_client(world, world.wire_hosts[1], 0x2);

  Query query;
  query.kind = QueryKind::Geo;
  ASSERT_TRUE(a->query(query, 30'000).reply.has_value());

  world.server->stop();  // live connections + a session table to drain
  world.server->stop();  // double-stop is a no-op
  EXPECT_EQ(world.server->sessions().active(), 0u);

  // A query against the stopped server fails cleanly (EOF or timeout),
  // never crashes.
  const auto outcome = b->query(query, 200);
  EXPECT_FALSE(outcome.reply.has_value());

  world.service->stop();
}

}  // namespace
}  // namespace rvaas::net
