// Header fields, match semantics, action serialization, meters.

#include <gtest/gtest.h>

#include "sdn/action.hpp"
#include "sdn/header.hpp"
#include "sdn/match.hpp"
#include "sdn/meter.hpp"

namespace rvaas::sdn {
namespace {

TEST(HeaderLayout, TotalWidthIs228Bits) {
  std::size_t total = 0;
  std::uint16_t expected_offset = 0;
  for (const auto& info : kFields) {
    EXPECT_EQ(info.offset, expected_offset) << info.name;
    expected_offset = static_cast<std::uint16_t>(expected_offset + info.width);
    total += info.width;
  }
  EXPECT_EQ(total, kHeaderBits);
}

TEST(HeaderFields, GetSetRoundTripAllFields) {
  HeaderFields h;
  std::uint64_t v = 1;
  for (const auto& info : kFields) {
    const std::uint64_t value = v++ & field_mask(info.field);
    h.set(info.field, value);
    EXPECT_EQ(h.get(info.field), value) << info.name;
  }
}

TEST(HeaderFields, SetRejectsOverwideValues) {
  HeaderFields h;
  EXPECT_THROW(h.set(Field::Vlan, 0x1000), util::InvariantViolation);
  EXPECT_THROW(h.set(Field::IpProto, 0x100), util::InvariantViolation);
  EXPECT_NO_THROW(h.set(Field::Vlan, 0xfff));
}

TEST(HeaderFields, SerializationRoundTrip) {
  HeaderFields h;
  h.eth_src = 0x0000aabbccddeeULL;
  h.ip_dst = 0x0a000001;
  h.l4_dst = 443;
  util::ByteWriter w;
  h.serialize(w);
  util::ByteReader r(w.data());
  EXPECT_EQ(HeaderFields::deserialize(r), h);
}

TEST(HeaderFields, DeserializeRejectsOutOfRange) {
  HeaderFields h;
  util::ByteWriter w;
  h.serialize(w);
  util::Bytes bytes = w.take();
  // Corrupt the vlan field (4th u64, little-endian) with an over-wide value.
  bytes[3 * 8] = 0xff;
  bytes[3 * 8 + 1] = 0xff;
  util::ByteReader r(bytes);
  EXPECT_THROW(HeaderFields::deserialize(r), util::DecodeError);
}

TEST(Packet, SerializationRoundTrip) {
  Packet p;
  p.hdr.ip_src = 0xc0a80101;
  p.ttl = 7;
  p.payload = util::to_bytes("data");
  util::ByteWriter w;
  p.serialize(w);
  util::ByteReader r(w.data());
  const Packet q = Packet::deserialize(r);
  EXPECT_EQ(q.hdr, p.hdr);
  EXPECT_EQ(q.ttl, p.ttl);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Match, WildcardMatchesEverything) {
  const Match m;
  HeaderFields h;
  h.ip_dst = 0x01020304;
  EXPECT_TRUE(m.matches(h, PortNo(0)));
  EXPECT_TRUE(m.matches(h, PortNo(99)));
}

TEST(Match, ExactFieldMatch) {
  const Match m = Match().exact(Field::IpDst, 0x0a000001);
  HeaderFields h;
  h.ip_dst = 0x0a000001;
  EXPECT_TRUE(m.matches(h, PortNo(0)));
  h.ip_dst = 0x0a000002;
  EXPECT_FALSE(m.matches(h, PortNo(0)));
}

TEST(Match, InPortConstraint) {
  const Match m = Match().in_port(PortNo(3));
  EXPECT_TRUE(m.matches(HeaderFields{}, PortNo(3)));
  EXPECT_FALSE(m.matches(HeaderFields{}, PortNo(4)));
}

TEST(Match, PrefixMatch) {
  // 10.0.0.0/8
  const Match m = Match().prefix(Field::IpDst, 0x0a000000, 8);
  HeaderFields h;
  h.ip_dst = 0x0a123456;
  EXPECT_TRUE(m.matches(h, PortNo(0)));
  h.ip_dst = 0x0b000000;
  EXPECT_FALSE(m.matches(h, PortNo(0)));
}

TEST(Match, ZeroLengthPrefixIsWildcard) {
  const Match m = Match().prefix(Field::IpDst, 0x0a000000, 0);
  HeaderFields h;
  h.ip_dst = 0xffffffff;
  EXPECT_TRUE(m.matches(h, PortNo(0)));
}

TEST(Match, PrefixMasksLowBitsOfValue) {
  // Value with low bits set should be masked, not rejected.
  const Match m = Match().prefix(Field::IpDst, 0x0a0000ff, 8);
  HeaderFields h;
  h.ip_dst = 0x0a000000;
  EXPECT_TRUE(m.matches(h, PortNo(0)));
}

TEST(Match, RepeatedFieldOverwrites) {
  const Match m = Match().exact(Field::Vlan, 5).exact(Field::Vlan, 6);
  EXPECT_EQ(m.field_matches().size(), 1u);
  HeaderFields h;
  h.vlan = 6;
  EXPECT_TRUE(m.matches(h, PortNo(0)));
}

TEST(Match, MaskedValidation) {
  EXPECT_THROW(Match().masked(Field::Vlan, 0, 0xffff), util::InvariantViolation);
  EXPECT_THROW(Match().masked(Field::Vlan, 0xf0f, 0x00f), util::InvariantViolation);
  EXPECT_THROW(Match().prefix(Field::IpDst, 0, 33), util::InvariantViolation);
}

TEST(Match, SerializationRoundTrip) {
  const Match m = Match()
                      .in_port(PortNo(2))
                      .exact(Field::EthType, kEthTypeIpv4)
                      .prefix(Field::IpDst, 0x0a000000, 16);
  util::ByteWriter w;
  m.serialize(w);
  util::ByteReader r(w.data());
  EXPECT_EQ(Match::deserialize(r), m);
}

TEST(Actions, SerializationRoundTrip) {
  const ActionList list{
      output(PortNo(3)),          to_controller(),
      set_field(Field::Vlan, 42), PushVlanAction{7},
      PopVlanAction{},            DecTtlAction{},
      drop(),
  };
  util::ByteWriter w;
  serialize(w, list);
  util::ByteReader r(w.data());
  EXPECT_EQ(deserialize_actions(r), list);
}

TEST(Actions, ToStringReadable) {
  EXPECT_EQ(to_string(Action{output(PortNo(3))}), "output:3");
  EXPECT_EQ(to_string(Action{drop()}), "drop");
  EXPECT_EQ(to_string(ActionList{}), "(none)");
}

TEST(TokenBucket, AllowsBurstThenLimits) {
  // 8 Mbit/s = 1 MB/s, burst 1000 bytes.
  TokenBucket bucket(MeterConfig{8'000'000, 1000});
  EXPECT_TRUE(bucket.consume(0, 600));
  EXPECT_TRUE(bucket.consume(0, 400));
  EXPECT_FALSE(bucket.consume(0, 1));  // bucket empty
  // After 0.5 ms, 500 bytes refilled.
  EXPECT_TRUE(bucket.consume(sim::kMillisecond / 2, 400));
  EXPECT_FALSE(bucket.consume(sim::kMillisecond / 2, 200));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket bucket(MeterConfig{8'000'000, 1000});
  EXPECT_TRUE(bucket.consume(0, 1000));
  // A long idle period must not accumulate more than burst.
  EXPECT_TRUE(bucket.consume(10 * sim::kSecond, 1000));
  EXPECT_FALSE(bucket.consume(10 * sim::kSecond, 1));
}

TEST(MeterTable, SetGetErase) {
  MeterTable table;
  EXPECT_FALSE(table.get(MeterId(1)).has_value());
  table.set(MeterId(1), MeterConfig{1000, 100});
  ASSERT_TRUE(table.get(MeterId(1)).has_value());
  EXPECT_EQ(table.get(MeterId(1))->rate_bps, 1000u);
  EXPECT_TRUE(table.erase(MeterId(1)));
  EXPECT_FALSE(table.erase(MeterId(1)));
}

}  // namespace
}  // namespace rvaas::sdn
