// In-band protocol codecs: classification, sealing/opening, signature
// verification, tamper and confidentiality properties.

#include <gtest/gtest.h>

#include "rvaas/inband.hpp"

namespace rvaas::core::inband {
namespace {

struct Fixture {
  util::Rng rng{77};
  enclave::Enclave enclave{"rvaas", "1.0", rng};
  control::HostAddress client_addr{0x020000000001ULL, 0x0a000001};
  crypto::SigningKey client_key = crypto::SigningKey::generate(rng);
  crypto::BoxOpener client_box = crypto::BoxOpener::generate(rng);

  QueryRequest request() {
    QueryRequest req;
    req.request_id = 42;
    req.client = sdn::HostId(1);
    req.query.kind = QueryKind::ReachableEndpoints;
    return req;
  }
};

TEST(Inband, ClassifyByPortAndTag) {
  Fixture f;
  const sdn::Packet req =
      make_request_packet(f.client_addr, f.request(), f.enclave.box_public(),
                          f.rng);
  EXPECT_EQ(classify(req), Tag::Request);

  sdn::Packet not_udp = req;
  not_udp.hdr.ip_proto = sdn::kIpProtoTcp;
  EXPECT_FALSE(classify(not_udp).has_value());

  sdn::Packet wrong_port = req;
  wrong_port.hdr.l4_dst = 9999;
  EXPECT_FALSE(classify(wrong_port).has_value());

  sdn::Packet empty;
  EXPECT_FALSE(classify(empty).has_value());
}

TEST(Inband, RequestRoundTrip) {
  Fixture f;
  const sdn::Packet packet = make_request_packet(
      f.client_addr, f.request(), f.enclave.box_public(), f.rng);
  const auto opened = open_request(packet, f.enclave);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->request_id, 42u);
  EXPECT_EQ(opened->client, sdn::HostId(1));
}

TEST(Inband, RequestConfidentialFromProvider) {
  // The provider sees the packet but has no enclave key: it cannot read the
  // query. A different enclave cannot open it either.
  Fixture f;
  const sdn::Packet packet = make_request_packet(
      f.client_addr, f.request(), f.enclave.box_public(), f.rng);
  util::Rng rng2(1234);
  enclave::Enclave other("rvaas", "1.0", rng2);  // same code, different keys
  EXPECT_FALSE(open_request(packet, other).has_value());
}

TEST(Inband, TamperedRequestRejected) {
  Fixture f;
  sdn::Packet packet = make_request_packet(f.client_addr, f.request(),
                                           f.enclave.box_public(), f.rng);
  packet.payload[packet.payload.size() / 2] ^= 1;
  EXPECT_FALSE(open_request(packet, f.enclave).has_value());
}

TEST(Inband, AuthRequestRoundTrip) {
  Fixture f;
  AuthRequest req;
  req.request_id = 7;
  req.nonce = 0xabcdef;
  req.target = {sdn::SwitchId(3), sdn::PortNo(2)};
  const sdn::Packet packet = make_auth_request(req, f.enclave);
  EXPECT_EQ(classify(packet), Tag::AuthRequest);

  const auto verified = verify_auth_request(packet, f.enclave.verify_key());
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(verified->nonce, 0xabcdefu);
  EXPECT_EQ(verified->target, (sdn::PortRef{sdn::SwitchId(3), sdn::PortNo(2)}));
}

TEST(Inband, ForgedAuthRequestRejected) {
  // A compromised provider cannot forge auth requests: it lacks the enclave
  // signing key.
  Fixture f;
  util::Rng rng2(99);
  enclave::Enclave fake("rvaas", "1.0", rng2);
  AuthRequest req;
  req.request_id = 7;
  req.nonce = 1;
  const sdn::Packet packet = make_auth_request(req, fake);
  EXPECT_FALSE(verify_auth_request(packet, f.enclave.verify_key()).has_value());
}

TEST(Inband, TamperedAuthRequestRejected) {
  Fixture f;
  AuthRequest req;
  req.request_id = 7;
  req.nonce = 1;
  sdn::Packet packet = make_auth_request(req, f.enclave);
  packet.payload[5] ^= 1;  // flip a bit in request_id
  EXPECT_FALSE(verify_auth_request(packet, f.enclave.verify_key()).has_value());
}

TEST(Inband, AuthReplyRoundTrip) {
  Fixture f;
  AuthReply reply;
  reply.request_id = 7;
  reply.nonce = 0x1234;
  reply.client = sdn::HostId(11);
  const sdn::Packet packet =
      make_auth_reply(f.client_addr, reply, f.client_key);
  EXPECT_EQ(classify(packet), Tag::AuthReply);

  const auto parsed = parse_auth_reply(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.client, sdn::HostId(11));
  EXPECT_TRUE(f.client_key.verify_key().verify(
      parsed->first.signing_payload(), parsed->second));

  // A different client's key must not verify (impersonation).
  util::Rng rng2(5);
  const crypto::SigningKey other = crypto::SigningKey::generate(rng2);
  EXPECT_FALSE(other.verify_key().verify(parsed->first.signing_payload(),
                                         parsed->second));
}

TEST(Inband, ReplyRoundTripSignedAndSealed) {
  Fixture f;
  QueryReply reply;
  reply.request_id = 42;
  reply.kind = QueryKind::Isolation;
  reply.auth = {3, 3};

  const sdn::Packet packet = make_reply_packet(
      reply, f.enclave, f.client_box.public_element(), f.rng);
  EXPECT_EQ(classify(packet), Tag::Reply);

  const auto opened =
      open_reply(packet, f.client_box, f.enclave.verify_key());
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->signature_ok);
  EXPECT_EQ(opened->reply.request_id, 42u);
  EXPECT_EQ(opened->reply.auth.issued, 3u);
}

TEST(Inband, ReplyFromWrongEnclaveFailsSignature) {
  Fixture f;
  util::Rng rng2(55);
  enclave::Enclave impostor("rvaas", "1.0", rng2);
  QueryReply reply;
  reply.request_id = 42;
  const sdn::Packet packet = make_reply_packet(
      reply, impostor, f.client_box.public_element(), f.rng);
  const auto opened =
      open_reply(packet, f.client_box, f.enclave.verify_key());
  ASSERT_TRUE(opened.has_value());   // decrypts fine...
  EXPECT_FALSE(opened->signature_ok);  // ...but the signature check fails
}

TEST(Inband, ReplyForOtherClientUnreadable) {
  Fixture f;
  util::Rng rng2(66);
  const crypto::BoxOpener eve = crypto::BoxOpener::generate(rng2);
  QueryReply reply;
  reply.request_id = 42;
  const sdn::Packet packet = make_reply_packet(
      reply, f.enclave, f.client_box.public_element(), f.rng);
  EXPECT_FALSE(open_reply(packet, eve, f.enclave.verify_key()).has_value());
}

}  // namespace
}  // namespace rvaas::core::inband
