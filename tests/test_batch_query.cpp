// Batch query path (QueryEngine::run_batch): positional identity with the
// sequential per-query logical step across thread counts, on a 50-switch
// generated topology, under both confidentiality policies.

#include <gtest/gtest.h>

#include "rvaas/engine.hpp"
#include "rvaas/geo.hpp"
#include "workload/scenario.hpp"

namespace rvaas::workload {
namespace {

using core::ConfidentialityPolicy;
using core::EngineConfig;
using core::Query;
using core::QueryEngine;
using core::QueryKind;
using core::QueryReply;
using sdn::Field;
using sdn::HostId;
using sdn::Match;
using sdn::PortRef;

// 10x5 grid: 50 switches, one host each, routed by the provider controller
// and snapshotted by the RVaaS controller's passive monitoring.
struct BatchFixture {
  ScenarioRuntime runtime;
  core::DisclosedGeo geo;

  BatchFixture()
      : runtime([] {
          ScenarioConfig config;
          config.generated = grid(10, 5);
          config.tenant_count = 2;
          config.seed = 7;
          return config;
        }()),
        geo(runtime.network().topology()) {
    runtime.settle();  // drain any in-flight monitor events
  }

  QueryEngine engine(ConfidentialityPolicy policy) {
    return QueryEngine(runtime.network().topology(),
                       EngineConfig{policy, 64});
  }

  QueryEngine::BatchContext context(HostId client) {
    QueryEngine::BatchContext ctx;
    ctx.from = runtime.network().topology().host_ports(client).front();
    ctx.geo = &geo;
    ctx.addressing = &runtime.addressing();
    return ctx;
  }

  /// A mixed workload: every query kind, several constraints and peers.
  std::vector<Query> queries() {
    const auto& hosts = runtime.hosts();
    std::vector<Query> qs;
    for (const QueryKind kind :
         {QueryKind::ReachableEndpoints, QueryKind::ReachingSources,
          QueryKind::Isolation, QueryKind::Geo, QueryKind::Fairness,
          QueryKind::TransferSummary}) {
      Query q;
      q.kind = kind;
      qs.push_back(q);

      Query constrained;
      constrained.kind = kind;
      constrained.constraint =
          Match().exact(Field::IpProto, 6).exact(Field::L4Dst, 443);
      qs.push_back(constrained);
    }
    for (std::size_t i = 1; i < hosts.size(); i += 7) {
      Query q;
      q.kind = QueryKind::PathLength;
      q.peer = hosts[i];
      qs.push_back(q);
    }
    return qs;
  }
};

std::vector<util::Bytes> sequential_payloads(
    const QueryEngine& engine, BatchFixture& f,
    const QueryEngine::BatchContext& ctx, const std::vector<Query>& qs) {
  const hsa::NetworkModel model = engine.model(f.runtime.rvaas().snapshot());
  std::vector<util::Bytes> out;
  for (const Query& q : qs) {
    out.push_back(engine
                      .answer(model, f.runtime.rvaas().snapshot(), q, ctx)
                      .reply.signing_payload());
  }
  return out;
}

TEST(BatchQuery, MatchesSequentialAcrossThreadCounts) {
  BatchFixture f;
  const QueryEngine engine = f.engine(ConfidentialityPolicy::EndpointsOnly);
  const auto ctx = f.context(f.runtime.hosts().front());
  const std::vector<Query> qs = f.queries();
  const auto expected = sequential_payloads(engine, f, ctx, qs);

  for (const std::size_t threads : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const std::vector<QueryReply> replies =
        engine.run_batch(f.runtime.rvaas().snapshot(), qs, threads, ctx);
    ASSERT_EQ(replies.size(), qs.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < replies.size(); ++i) {
      EXPECT_EQ(replies[i].kind, qs[i].kind);
      EXPECT_EQ(replies[i].signing_payload(), expected[i])
          << "threads=" << threads << " query=" << i;
    }
  }
}

TEST(BatchQuery, EndpointsOnlyRedactsPathsInBatchReplies) {
  BatchFixture f;
  const QueryEngine engine = f.engine(ConfidentialityPolicy::EndpointsOnly);
  const auto ctx = f.context(f.runtime.hosts().front());
  const std::vector<Query> qs = f.queries();

  const auto replies =
      engine.run_batch(f.runtime.rvaas().snapshot(), qs, 4, ctx);
  for (const QueryReply& reply : replies) {
    EXPECT_TRUE(reply.disclosed_paths.empty());
  }
}

TEST(BatchQuery, FullPathsStrawmanDisclosesIdentically) {
  BatchFixture f;
  const QueryEngine engine = f.engine(ConfidentialityPolicy::FullPaths);
  const auto ctx = f.context(f.runtime.hosts()[3]);
  const std::vector<Query> qs = f.queries();
  const auto expected = sequential_payloads(engine, f, ctx, qs);

  const auto replies =
      engine.run_batch(f.runtime.rvaas().snapshot(), qs, 8, ctx);
  bool any_disclosed = false;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i].signing_payload(), expected[i]) << "query=" << i;
    any_disclosed |= !replies[i].disclosed_paths.empty();
  }
  EXPECT_TRUE(any_disclosed)
      << "FullPaths on a routed 50-switch grid should disclose some path";
}

TEST(BatchQuery, DifferentClientsGetDifferentAnswers) {
  BatchFixture f;
  const QueryEngine engine = f.engine(ConfidentialityPolicy::EndpointsOnly);
  Query q;
  q.kind = QueryKind::ReachableEndpoints;
  const std::vector<Query> qs{q};

  // Tenants are assigned round-robin, so host 0 and host 1 live in different
  // tenants and must see different endpoint sets.
  const auto r0 = engine.run_batch(f.runtime.rvaas().snapshot(), qs, 2,
                                   f.context(f.runtime.hosts()[0]));
  const auto r1 = engine.run_batch(f.runtime.rvaas().snapshot(), qs, 2,
                                   f.context(f.runtime.hosts()[1]));
  ASSERT_EQ(r0.size(), 1u);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_FALSE(r0[0].endpoints.empty());
  EXPECT_NE(r0[0].signing_payload(), r1[0].signing_payload());
}

TEST(BatchQuery, ReusedPoolOverloadMatchesSpawningOverload) {
  BatchFixture f;
  const QueryEngine engine = f.engine(ConfidentialityPolicy::EndpointsOnly);
  const auto ctx = f.context(f.runtime.hosts().front());
  const std::vector<Query> qs = f.queries();
  const auto expected = sequential_payloads(engine, f, ctx, qs);

  util::ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {  // pool survives across batches
    const auto replies =
        engine.run_batch(f.runtime.rvaas().snapshot(), qs, pool, ctx);
    ASSERT_EQ(replies.size(), qs.size());
    for (std::size_t i = 0; i < replies.size(); ++i) {
      EXPECT_EQ(replies[i].signing_payload(), expected[i])
          << "round=" << round << " query=" << i;
    }
  }
}

TEST(BatchQuery, EmptyBatchIsEmpty) {
  BatchFixture f;
  const QueryEngine engine = f.engine(ConfidentialityPolicy::EndpointsOnly);
  const auto replies =
      engine.run_batch(f.runtime.rvaas().snapshot(), {}, 4,
                       f.context(f.runtime.hosts().front()));
  EXPECT_TRUE(replies.empty());
}

}  // namespace
}  // namespace rvaas::workload
