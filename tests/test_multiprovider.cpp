// Multi-provider federation (§IV.C.a): recursive queries across domains.

#include <gtest/gtest.h>

#include "rvaas/multiprovider.hpp"
#include "workload/scenario.hpp"

namespace rvaas::core {
namespace {

using sdn::HostId;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;
using workload::ScenarioConfig;
using workload::ScenarioRuntime;

// Two domains, each a 3-switch line. Domain A's last switch has a border
// port (dark in A's topology) peered with domain B's first switch.
struct FederationFixture {
  std::unique_ptr<ScenarioRuntime> a;
  std::unique_ptr<ScenarioRuntime> b;
  Federation fed;

  static constexpr PortRef kBorderA{SwitchId(3), PortNo(3)};
  static constexpr PortRef kIngressB{SwitchId(1), PortNo(3)};

  FederationFixture() {
    ScenarioConfig ca;
    ca.generated = workload::linear(3);
    ca.seed = 31;
    a = std::make_unique<ScenarioRuntime>(std::move(ca));

    ScenarioConfig cb;
    cb.generated = workload::linear(3);
    cb.seed = 32;
    b = std::make_unique<ScenarioRuntime>(std::move(cb));

    fed.add_domain(ProviderId(1), a->rvaas());
    fed.add_domain(ProviderId(2), b->rvaas());
    fed.add_peering(ProviderId(1), kBorderA, ProviderId(2), kIngressB);
  }

  /// Routes traffic from A's host0 out of the border port (the compromised
  /// or legitimate config routes into the peer domain), and inside B from
  /// the ingress to B's host at switch 3.
  void install_cross_domain_path() {
    const sdn::ControllerId provider_a(1);
    sdn::FlowMod to_border;
    to_border.priority = 40;
    to_border.match = sdn::Match().in_port(PortNo(2));  // host port in linear()
    to_border.actions = {sdn::output(PortNo(1))};
    a->network().switch_sim(SwitchId(1)).apply_flow_mod(provider_a, to_border);
    sdn::FlowMod fwd;
    fwd.priority = 40;
    fwd.match = sdn::Match().in_port(PortNo(0));
    fwd.actions = {sdn::output(PortNo(1))};
    a->network().switch_sim(SwitchId(2)).apply_flow_mod(provider_a, fwd);
    sdn::FlowMod out_border;
    out_border.priority = 40;
    out_border.match = sdn::Match().in_port(PortNo(0));
    out_border.actions = {sdn::output(PortNo(3))};  // dark border port
    a->network().switch_sim(SwitchId(3)).apply_flow_mod(provider_a, out_border);

    // Inside B: ingress port 3 of switch 1 toward the host on switch 3.
    const sdn::ControllerId provider_b(1);
    sdn::FlowMod b1;
    b1.priority = 40;
    b1.match = sdn::Match().in_port(PortNo(3));
    b1.actions = {sdn::output(PortNo(1))};
    b->network().switch_sim(SwitchId(1)).apply_flow_mod(provider_b, b1);
    sdn::FlowMod b2;
    b2.priority = 40;
    b2.match = sdn::Match().in_port(PortNo(0));
    b2.actions = {sdn::output(PortNo(1))};
    b->network().switch_sim(SwitchId(2)).apply_flow_mod(provider_b, b2);
    sdn::FlowMod b3;
    b3.priority = 40;
    b3.match = sdn::Match().in_port(PortNo(0));
    b3.actions = {sdn::output(PortNo(2))};  // host port
    b->network().switch_sim(SwitchId(3)).apply_flow_mod(provider_b, b3);

    // Let the flow-monitor events reach both RVaaS snapshots.
    a->settle();
    b->settle();
  }
};

TEST(Federation, SingleDomainQueryStopsAtBorder) {
  FederationFixture f;
  // Without peering knowledge the border port is just a dark endpoint.
  Federation lonely;
  lonely.add_domain(ProviderId(1), f.a->rvaas());
  f.install_cross_domain_path();

  const auto result = lonely.reachable(
      ProviderId(1), {SwitchId(1), PortNo(2)}, sdn::Match());
  ASSERT_GE(result.endpoints.size(), 1u);
  bool dark_border = false;
  for (const auto& e : result.endpoints) {
    if (e.info.access_point == FederationFixture::kBorderA) {
      dark_border = e.info.dark;
    }
  }
  EXPECT_TRUE(dark_border);
  EXPECT_EQ(result.subqueries, 0u);
}

TEST(Federation, RecursiveQueryCrossesDomains) {
  FederationFixture f;
  f.install_cross_domain_path();

  const auto result = f.fed.reachable(ProviderId(1), {SwitchId(1), PortNo(2)},
                                      sdn::Match());
  EXPECT_EQ(result.subqueries, 1u);
  EXPECT_EQ(result.domains_visited, 2u);

  // The final endpoint is B's host access point, attributed to provider 2.
  bool found_remote = false;
  for (const auto& e : result.endpoints) {
    if (e.provider == ProviderId(2)) {
      found_remote = true;
      EXPECT_EQ(e.info.access_point, (PortRef{SwitchId(3), PortNo(2)}));
      EXPECT_FALSE(e.info.dark);
    }
  }
  EXPECT_TRUE(found_remote);
}

TEST(Federation, EndpointsDeduplicated) {
  FederationFixture f;
  f.install_cross_domain_path();

  const auto result = f.fed.reachable(ProviderId(1), {SwitchId(1), PortNo(2)},
                                      sdn::Match());
  for (std::size_t i = 0; i < result.endpoints.size(); ++i) {
    for (std::size_t j = i + 1; j < result.endpoints.size(); ++j) {
      EXPECT_FALSE(result.endpoints[i] == result.endpoints[j])
          << "duplicate federated endpoint at " << i << "/" << j;
    }
  }
}

TEST(Federation, DepthLimitReported) {
  FederationFixture f;
  f.install_cross_domain_path();
  const auto result = f.fed.reachable(ProviderId(1), {SwitchId(1), PortNo(2)},
                                      sdn::Match(), /*max_domains=*/1);
  EXPECT_TRUE(result.depth_exceeded);
}

TEST(Federation, ConstraintPropagatesAcrossDomains) {
  FederationFixture f;
  f.install_cross_domain_path();
  // Constrain to a vlan that no rule in A matches... A's rules here are
  // wildcard, so constrain on something B's path also carries. Use a TCP
  // constraint: still reachable (rules are wildcard), then check an
  // impossible constraint via a drop rule in B.
  const auto tcp = f.fed.reachable(
      ProviderId(1), {SwitchId(1), PortNo(2)},
      sdn::Match().exact(sdn::Field::IpProto, sdn::kIpProtoTcp));
  bool remote = false;
  for (const auto& e : tcp.endpoints) remote |= (e.provider == ProviderId(2));
  EXPECT_TRUE(remote);

  // B installs a high-priority TCP drop at its ingress: the TCP subspace
  // dies in B, so no remote endpoint for TCP anymore.
  sdn::FlowMod drop_tcp;
  drop_tcp.priority = 60;
  drop_tcp.match = sdn::Match()
                       .in_port(PortNo(3))
                       .exact(sdn::Field::IpProto, sdn::kIpProtoTcp);
  drop_tcp.actions = {sdn::drop()};
  f.b->network().switch_sim(SwitchId(1)).apply_flow_mod(sdn::ControllerId(1),
                                                        drop_tcp);
  f.b->settle();

  const auto tcp2 = f.fed.reachable(
      ProviderId(1), {SwitchId(1), PortNo(2)},
      sdn::Match().exact(sdn::Field::IpProto, sdn::kIpProtoTcp));
  bool remote2 = false;
  for (const auto& e : tcp2.endpoints) remote2 |= (e.provider == ProviderId(2));
  EXPECT_FALSE(remote2);
}

TEST(Federation, DuplicateDomainRejected) {
  FederationFixture f;
  EXPECT_THROW(
      f.fed.add_domain(ProviderId(1), f.a->rvaas()),
      util::InvariantViolation);
  EXPECT_THROW(f.fed.add_peering(ProviderId(1), {SwitchId(1), PortNo(0)},
                                 ProviderId(9), {SwitchId(1), PortNo(0)}),
               util::InvariantViolation);
}

}  // namespace
}  // namespace rvaas::core
