// Multi-provider federation (§IV.C.a): recursive queries across domains.

#include <gtest/gtest.h>

#include <algorithm>

#include "hsa/transfer.hpp"
#include "rvaas/multiprovider.hpp"
#include "workload/as_world.hpp"
#include "workload/scenario.hpp"

namespace rvaas::core {
namespace {

using sdn::HostId;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;
using workload::ScenarioConfig;
using workload::ScenarioRuntime;

// Two domains, each a 3-switch line. Domain A's last switch has a border
// port (dark in A's topology) peered with domain B's first switch.
struct FederationFixture {
  std::unique_ptr<ScenarioRuntime> a;
  std::unique_ptr<ScenarioRuntime> b;
  Federation fed;

  static constexpr PortRef kBorderA{SwitchId(3), PortNo(3)};
  static constexpr PortRef kIngressB{SwitchId(1), PortNo(3)};

  FederationFixture() {
    ScenarioConfig ca;
    ca.generated = workload::linear(3);
    ca.seed = 31;
    a = std::make_unique<ScenarioRuntime>(std::move(ca));

    ScenarioConfig cb;
    cb.generated = workload::linear(3);
    cb.seed = 32;
    b = std::make_unique<ScenarioRuntime>(std::move(cb));

    fed.add_domain(ProviderId(1), a->rvaas());
    fed.add_domain(ProviderId(2), b->rvaas());
    fed.add_peering(ProviderId(1), kBorderA, ProviderId(2), kIngressB);
  }

  /// Routes traffic from A's host0 out of the border port (the compromised
  /// or legitimate config routes into the peer domain), and inside B from
  /// the ingress to B's host at switch 3.
  void install_cross_domain_path() {
    const sdn::ControllerId provider_a(1);
    sdn::FlowMod to_border;
    to_border.priority = 40;
    to_border.match = sdn::Match().in_port(PortNo(2));  // host port in linear()
    to_border.actions = {sdn::output(PortNo(1))};
    a->network().switch_sim(SwitchId(1)).apply_flow_mod(provider_a, to_border);
    sdn::FlowMod fwd;
    fwd.priority = 40;
    fwd.match = sdn::Match().in_port(PortNo(0));
    fwd.actions = {sdn::output(PortNo(1))};
    a->network().switch_sim(SwitchId(2)).apply_flow_mod(provider_a, fwd);
    sdn::FlowMod out_border;
    out_border.priority = 40;
    out_border.match = sdn::Match().in_port(PortNo(0));
    out_border.actions = {sdn::output(PortNo(3))};  // dark border port
    a->network().switch_sim(SwitchId(3)).apply_flow_mod(provider_a, out_border);

    // Inside B: ingress port 3 of switch 1 toward the host on switch 3.
    const sdn::ControllerId provider_b(1);
    sdn::FlowMod b1;
    b1.priority = 40;
    b1.match = sdn::Match().in_port(PortNo(3));
    b1.actions = {sdn::output(PortNo(1))};
    b->network().switch_sim(SwitchId(1)).apply_flow_mod(provider_b, b1);
    sdn::FlowMod b2;
    b2.priority = 40;
    b2.match = sdn::Match().in_port(PortNo(0));
    b2.actions = {sdn::output(PortNo(1))};
    b->network().switch_sim(SwitchId(2)).apply_flow_mod(provider_b, b2);
    sdn::FlowMod b3;
    b3.priority = 40;
    b3.match = sdn::Match().in_port(PortNo(0));
    b3.actions = {sdn::output(PortNo(2))};  // host port
    b->network().switch_sim(SwitchId(3)).apply_flow_mod(provider_b, b3);

    // Let the flow-monitor events reach both RVaaS snapshots.
    a->settle();
    b->settle();
  }
};

TEST(Federation, SingleDomainQueryStopsAtBorder) {
  FederationFixture f;
  // Without peering knowledge the border port is just a dark endpoint.
  Federation lonely;
  lonely.add_domain(ProviderId(1), f.a->rvaas());
  f.install_cross_domain_path();

  const auto result = lonely.reachable(
      ProviderId(1), {SwitchId(1), PortNo(2)}, sdn::Match());
  ASSERT_GE(result.endpoints.size(), 1u);
  bool dark_border = false;
  for (const auto& e : result.endpoints) {
    if (e.info.access_point == FederationFixture::kBorderA) {
      dark_border = e.info.dark;
    }
  }
  EXPECT_TRUE(dark_border);
  EXPECT_EQ(result.subqueries, 0u);
}

TEST(Federation, RecursiveQueryCrossesDomains) {
  FederationFixture f;
  f.install_cross_domain_path();

  const auto result = f.fed.reachable(ProviderId(1), {SwitchId(1), PortNo(2)},
                                      sdn::Match());
  EXPECT_EQ(result.subqueries, 1u);
  EXPECT_EQ(result.domains_visited, 2u);

  // The final endpoint is B's host access point, attributed to provider 2.
  bool found_remote = false;
  for (const auto& e : result.endpoints) {
    if (e.provider == ProviderId(2)) {
      found_remote = true;
      EXPECT_EQ(e.info.access_point, (PortRef{SwitchId(3), PortNo(2)}));
      EXPECT_FALSE(e.info.dark);
    }
  }
  EXPECT_TRUE(found_remote);
}

TEST(Federation, EndpointsDeduplicated) {
  FederationFixture f;
  f.install_cross_domain_path();

  const auto result = f.fed.reachable(ProviderId(1), {SwitchId(1), PortNo(2)},
                                      sdn::Match());
  for (std::size_t i = 0; i < result.endpoints.size(); ++i) {
    for (std::size_t j = i + 1; j < result.endpoints.size(); ++j) {
      EXPECT_FALSE(result.endpoints[i] == result.endpoints[j])
          << "duplicate federated endpoint at " << i << "/" << j;
    }
  }
}

TEST(Federation, DepthLimitReported) {
  FederationFixture f;
  f.install_cross_domain_path();
  const auto result = f.fed.reachable(ProviderId(1), {SwitchId(1), PortNo(2)},
                                      sdn::Match(), /*max_domains=*/1);
  EXPECT_TRUE(result.depth_exceeded);
}

TEST(Federation, ConstraintPropagatesAcrossDomains) {
  FederationFixture f;
  f.install_cross_domain_path();
  // Constrain to a vlan that no rule in A matches... A's rules here are
  // wildcard, so constrain on something B's path also carries. Use a TCP
  // constraint: still reachable (rules are wildcard), then check an
  // impossible constraint via a drop rule in B.
  const auto tcp = f.fed.reachable(
      ProviderId(1), {SwitchId(1), PortNo(2)},
      sdn::Match().exact(sdn::Field::IpProto, sdn::kIpProtoTcp));
  bool remote = false;
  for (const auto& e : tcp.endpoints) remote |= (e.provider == ProviderId(2));
  EXPECT_TRUE(remote);

  // B installs a high-priority TCP drop at its ingress: the TCP subspace
  // dies in B, so no remote endpoint for TCP anymore.
  sdn::FlowMod drop_tcp;
  drop_tcp.priority = 60;
  drop_tcp.match = sdn::Match()
                       .in_port(PortNo(3))
                       .exact(sdn::Field::IpProto, sdn::kIpProtoTcp);
  drop_tcp.actions = {sdn::drop()};
  f.b->network().switch_sim(SwitchId(1)).apply_flow_mod(sdn::ControllerId(1),
                                                        drop_tcp);
  f.b->settle();

  const auto tcp2 = f.fed.reachable(
      ProviderId(1), {SwitchId(1), PortNo(2)},
      sdn::Match().exact(sdn::Field::IpProto, sdn::kIpProtoTcp));
  bool remote2 = false;
  for (const auto& e : tcp2.endpoints) remote2 |= (e.provider == ProviderId(2));
  EXPECT_FALSE(remote2);
}

// Regression: the depth check used to run before the visited-loop guard, so
// a branch that was about to be pruned for re-entering a domain reported
// depth_exceeded when its budget happened to hit zero at the same hop. A
// two-domain cycle at max_domains=2 reproduces exactly that coincidence.
TEST(Federation, DepthNotExceededOnLoopPrune) {
  FederationFixture f;
  f.install_cross_domain_path();

  // Close the cycle: B routes its ingress traffic back out of a second
  // border port (S1,P0), wired to a dark port of A. Priority 41 shadows the
  // fixture's host-delivery route in B.
  f.fed.add_peering(ProviderId(2), {SwitchId(1), PortNo(0)}, ProviderId(1),
                    {SwitchId(1), PortNo(0)});
  sdn::FlowMod back;
  back.priority = 41;
  back.match = sdn::Match().in_port(PortNo(3));
  back.actions = {sdn::output(PortNo(0))};
  f.b->network().switch_sim(SwitchId(1)).apply_flow_mod(sdn::ControllerId(1),
                                                        back);
  f.b->settle();

  const auto result = f.fed.reachable(ProviderId(1), {SwitchId(1), PortNo(2)},
                                      sdn::Match(), /*max_domains=*/2);
  // The walk A -> B -> (A again) ends on the loop guard, not the budget:
  // both domains were visited and nothing was left unexplored.
  EXPECT_FALSE(result.depth_exceeded);
  EXPECT_EQ(result.domains_visited, 2u);
}

// ---------------------------------------------------------------------------
// PolicyCompliance walks (QueryKind::PolicyCompliance through the engine).

namespace policy_fixture {

/// Customer/provider relation for the fixture's single peering, plus B
/// authorized to originate its switch-3 host.
void declare_baseline(FederationFixture& f) {
  f.fed.declare_relation(ProviderId(1), ProviderId(2), NeighborClass::Customer);
  f.fed.declare_relation(ProviderId(2), ProviderId(1), NeighborClass::Provider);
  const std::uint32_t b_host_ip =
      control::HostAddressing::derive(f.b->hosts()[2]).ip;
  f.fed.authorize_origin(
      ProviderId(2), hsa::HeaderSpace(hsa::match_to_cube(sdn::Match().exact(
                         sdn::Field::IpDst, b_host_ip))));
}

}  // namespace policy_fixture

TEST(PolicyCompliance, CleanCrossingReportsOkAndVerifies) {
  FederationFixture f;
  f.install_cross_domain_path();
  policy_fixture::declare_baseline(f);

  const std::uint32_t b_host_ip =
      control::HostAddressing::derive(f.b->hosts()[2]).ip;
  const auto v = f.fed.verify_policy(
      ProviderId(1), {SwitchId(1), PortNo(2)},
      sdn::Match().exact(sdn::Field::IpDst, b_host_ip));

  // One crossing (A -> B), judged Ok; the in-origin terminal delivery in B
  // adds no item.
  ASSERT_EQ(v.reply.policy_report.size(), 1u);
  const PolicyReportItem& item = v.reply.policy_report.front();
  EXPECT_EQ(item.verdict, PolicyVerdict::Ok);
  EXPECT_EQ(item.from, ProviderId(1));
  EXPECT_EQ(item.to, ProviderId(2));
  EXPECT_EQ(item.border, FederationFixture::kBorderA);
  EXPECT_EQ(item.ingress, FederationFixture::kIngressB);
  EXPECT_EQ(v.domains_visited, 2u);
  EXPECT_EQ(v.subqueries, 1u);
  EXPECT_FALSE(v.depth_exceeded);

  // The report is signed by the start domain's enclave like any reply.
  EXPECT_TRUE(f.a->rvaas().enclave().verify_key().verify(
      v.reply.signing_payload(), v.signature));

  // A clean report raises no violations in reply evaluation.
  EXPECT_TRUE(evaluate_reply(v.reply, Expectation{}).ok);
}

TEST(PolicyCompliance, ForeignDeliveryFlagsUnauthorizedOrigin) {
  FederationFixture f;
  f.install_cross_domain_path();
  policy_fixture::declare_baseline(f);

  // The fixture routes by in_port, so ANY destination entering A's host
  // port is handed to B and delivered at B's host — including a prefix B
  // never originated. No attack rule needed: the baseline config itself is
  // the hijack.
  const auto v = f.fed.verify_policy(
      ProviderId(1), {SwitchId(1), PortNo(2)},
      sdn::Match().exact(sdn::Field::IpDst, 0x0a0a0a0au));

  bool hijack = false;
  for (const PolicyReportItem& item : v.reply.policy_report) {
    if (item.verdict != PolicyVerdict::UnauthorizedOrigin) continue;
    hijack = true;
    EXPECT_EQ(item.from, ProviderId(2));
    EXPECT_EQ(item.to, ProviderId(2));
    EXPECT_EQ(item.border, (PortRef{SwitchId(3), PortNo(2)}));
  }
  EXPECT_TRUE(hijack);

  // The violation surfaces through reply evaluation.
  EXPECT_FALSE(evaluate_reply(v.reply, Expectation{}).ok);
}

TEST(PolicyCompliance, ProviderToProviderCrossingFlagsRouteLeak) {
  FederationFixture f;
  f.install_cross_domain_path();
  // B is A's PROVIDER here (the inverse of declare_baseline): traffic that
  // enters A from B and exits A back toward B is a Gao-Rexford valley.
  f.fed.declare_relation(ProviderId(1), ProviderId(2), NeighborClass::Provider);
  f.fed.declare_relation(ProviderId(2), ProviderId(1), NeighborClass::Customer);
  // Wire a provider-fed ingress into A: B's second border (S1,P0) feeds
  // A's dark port (S1,P0)...
  f.fed.add_peering(ProviderId(2), {SwitchId(1), PortNo(0)}, ProviderId(1),
                    {SwitchId(1), PortNo(0)});
  // ...and A forwards that ingress along the line and out of kBorderA.
  sdn::FlowMod leak;
  leak.priority = 41;
  leak.match = sdn::Match().in_port(PortNo(0));
  leak.actions = {sdn::output(PortNo(1))};
  f.a->network().switch_sim(SwitchId(1)).apply_flow_mod(sdn::ControllerId(1),
                                                        leak);
  f.a->settle();

  const auto v = f.fed.verify_policy(ProviderId(1), {SwitchId(1), PortNo(0)},
                                     sdn::Match());
  bool leaked = false;
  for (const PolicyReportItem& item : v.reply.policy_report) {
    if (item.verdict != PolicyVerdict::RouteLeak) continue;
    leaked = true;
    EXPECT_EQ(item.from, ProviderId(1));
    EXPECT_EQ(item.to, ProviderId(2));
    EXPECT_EQ(item.border, FederationFixture::kBorderA);
  }
  EXPECT_TRUE(leaked);
}

TEST(PolicyCompliance, UndeclaredRelationFlagsUnexpectedCrossing) {
  FederationFixture f;
  f.install_cross_domain_path();
  // Peering wired, relations never declared.
  const auto v = f.fed.verify_policy(ProviderId(1), {SwitchId(1), PortNo(2)},
                                     sdn::Match());
  bool unexpected = false;
  for (const PolicyReportItem& item : v.reply.policy_report) {
    unexpected |= item.verdict == PolicyVerdict::UnexpectedCrossing;
  }
  EXPECT_TRUE(unexpected);
}

TEST(PolicyCompliance, ExportDenyRuleFlagsCrossing) {
  FederationFixture f;
  f.install_cross_domain_path();
  policy_fixture::declare_baseline(f);

  const std::uint32_t b_host_ip =
      control::HostAddressing::derive(f.b->hosts()[2]).ip;
  const sdn::Match dst = sdn::Match().exact(sdn::Field::IpDst, b_host_ip);

  // Clean under the structural rules alone...
  const auto before = f.fed.verify_policy(ProviderId(1),
                                          {SwitchId(1), PortNo(2)}, dst);
  ASSERT_EQ(before.reply.policy_report.size(), 1u);
  EXPECT_EQ(before.reply.policy_report.front().verdict, PolicyVerdict::Ok);

  // ...until A's export store denies that prefix toward customers.
  RoutePolicy policy;
  policy.export_rules.push_back(RoutePolicyRule{
      NeighborClass::Customer, hsa::HeaderSpace(hsa::match_to_cube(dst)),
      /*allow=*/false});
  f.fed.set_policy(ProviderId(1), std::move(policy));

  const auto after = f.fed.verify_policy(ProviderId(1),
                                         {SwitchId(1), PortNo(2)}, dst);
  ASSERT_GE(after.reply.policy_report.size(), 1u);
  EXPECT_EQ(after.reply.policy_report.front().verdict,
            PolicyVerdict::UnexpectedCrossing);
}

TEST(PolicyCompliance, AsWorldBaselineIsClean) {
  workload::AsWorldConfig config;
  config.n_domains = 4;
  config.seed = 9;
  config.tier0_fat_tree = false;  // cheap worlds are enough here
  workload::AsWorld world(config);
  ASSERT_GE(world.transit_ingresses().size(), 2u);

  // From every transit ingress, walk toward a same-domain host, a
  // down-cone host, and a foreign host: the valley-free baseline must
  // produce only Ok crossings (foreign destinations die at the ingress
  // guard and report nothing at all).
  for (const auto& in : world.transit_ingresses()) {
    std::vector<std::uint32_t> dsts;
    dsts.push_back(
        control::HostAddressing::derive(world.domain_hosts(in.domain)[0]).ip);
    dsts.push_back(world.cone_ips(in.domain).back());
    for (std::size_t d = 0; d < world.domain_count(); ++d) {
      const auto& cone = world.cone_ips(in.domain);
      const std::uint32_t foreign =
          control::HostAddressing::derive(world.domain_hosts(d)[0]).ip;
      if (std::find(cone.begin(), cone.end(), foreign) == cone.end()) {
        dsts.push_back(foreign);
        break;
      }
    }
    for (const std::uint32_t dst : dsts) {
      const auto v = world.federation().verify_policy(
          workload::AsWorld::provider_of(in.domain), in.port,
          sdn::Match().exact(sdn::Field::IpDst, dst));
      for (const PolicyReportItem& item : v.reply.policy_report) {
        EXPECT_EQ(item.verdict, PolicyVerdict::Ok)
            << to_string(item.verdict) << " from domain " << item.from.value
            << " walking dst " << dst << " at ingress domain " << in.domain;
      }
    }
  }
}

TEST(Federation, DuplicateDomainRejected) {
  FederationFixture f;
  EXPECT_THROW(
      f.fed.add_domain(ProviderId(1), f.a->rvaas()),
      util::InvariantViolation);
  EXPECT_THROW(f.fed.add_peering(ProviderId(1), {SwitchId(1), PortNo(0)},
                                 ProviderId(9), {SwitchId(1), PortNo(0)}),
               util::InvariantViolation);
}

}  // namespace
}  // namespace rvaas::core
