// Network-wide reachability: endpoints, shadowing across switches, loops,
// inverse reachability, and the HSA ⇄ data-plane agreement property on
// random networks (the key soundness argument for RVaaS's logical step).

#include <gtest/gtest.h>

#include "hsa/reachability.hpp"
#include "sdn/network.hpp"

namespace rvaas::hsa {
namespace {

using sdn::Field;
using sdn::FlowMod;
using sdn::HostId;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

constexpr sdn::ControllerId kCtl{1};

std::map<SwitchId, std::vector<sdn::FlowEntry>> dump_tables(
    sdn::Network& net) {
  std::map<SwitchId, std::vector<sdn::FlowEntry>> tables;
  for (const SwitchId sw : net.topology().switches()) {
    tables[sw] = net.switch_sim(sw).table().entries();
  }
  return tables;
}

// h10 - s1 - s2 - s3 - h11 ; h12 at s2 port 2.
struct LineNet {
  sim::EventLoop loop;
  std::unique_ptr<sdn::Network> net;

  LineNet() {
    sdn::Topology topo;
    topo.add_switch(SwitchId(1), 4);
    topo.add_switch(SwitchId(2), 4);
    topo.add_switch(SwitchId(3), 4);
    topo.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)});
    topo.add_link({SwitchId(2), PortNo(1)}, {SwitchId(3), PortNo(0)});
    topo.attach_host(HostId(10), {SwitchId(1), PortNo(1)});
    topo.attach_host(HostId(11), {SwitchId(3), PortNo(1)});
    topo.attach_host(HostId(12), {SwitchId(2), PortNo(2)});
    net = std::make_unique<sdn::Network>(loop, topo);
  }

  void add(SwitchId sw, std::uint16_t prio, Match m, sdn::ActionList a) {
    FlowMod mod;
    mod.priority = prio;
    mod.match = std::move(m);
    mod.actions = std::move(a);
    ASSERT_TRUE(net->switch_sim(sw).apply_flow_mod(kCtl, mod).ok());
  }
};

TEST(Reachability, LinearPathEndToEnd) {
  LineNet f;
  f.add(SwitchId(1), 5, Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
  f.add(SwitchId(3), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r = model.reach_from_host(HostId(10));

  ASSERT_EQ(r.endpoints.size(), 1u);
  EXPECT_EQ(r.endpoints[0].egress, (PortRef{SwitchId(3), PortNo(1)}));
  EXPECT_EQ(r.endpoints[0].host, HostId(11));
  EXPECT_EQ(r.endpoints[0].path,
            (std::vector<SwitchId>{SwitchId(1), SwitchId(2), SwitchId(3)}));
  EXPECT_EQ(r.reached_hosts(), std::vector<HostId>{HostId(11)});
  EXPECT_TRUE(r.loops.empty());
}

TEST(Reachability, HeaderSplitAcrossEgresses) {
  LineNet f;
  // s1: TCP to s2, everything else to local host port 2 (dark on s1).
  f.add(SwitchId(1), 10, Match().exact(Field::IpProto, sdn::kIpProtoTcp),
        {sdn::output(PortNo(0))});
  f.add(SwitchId(1), 1, Match(), {sdn::output(PortNo(2))});
  f.add(SwitchId(2), 5, Match(), {sdn::output(PortNo(2))});

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r =
      model.reach({SwitchId(1), PortNo(1)}, HeaderSpace::all());

  ASSERT_EQ(r.endpoints.size(), 2u);
  sdn::HeaderFields tcp;
  tcp.ip_proto = sdn::kIpProtoTcp;
  sdn::HeaderFields udp;
  udp.ip_proto = sdn::kIpProtoUdp;

  for (const auto& e : r.endpoints) {
    if (e.egress == PortRef{SwitchId(2), PortNo(2)}) {
      EXPECT_EQ(e.host, HostId(12));
      EXPECT_TRUE(e.space.contains(tcp));
      EXPECT_FALSE(e.space.contains(udp));  // shadowed at s1
    } else {
      EXPECT_EQ(e.egress, (PortRef{SwitchId(1), PortNo(2)}));
      EXPECT_FALSE(e.host.has_value());  // dark port
      EXPECT_TRUE(e.space.contains(udp));
      EXPECT_FALSE(e.space.contains(tcp));
    }
  }
}

TEST(Reachability, MulticastReachesBoth) {
  LineNet f;
  f.add(SwitchId(1), 5, Match(), {sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match().in_port(PortNo(0)),
        {sdn::output(PortNo(1)), sdn::output(PortNo(2))});
  f.add(SwitchId(3), 5, Match(), {sdn::output(PortNo(1))});

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r = model.reach_from_host(HostId(10));
  EXPECT_EQ(r.reached_hosts(), (std::vector<HostId>{HostId(11), HostId(12)}));
}

TEST(Reachability, ControllerHitRecorded) {
  LineNet f;
  FlowMod mod;
  mod.priority = 99;
  mod.cookie = 0x1234;
  mod.match = Match().exact(Field::L4Dst, 7777);
  mod.actions = {sdn::to_controller()};
  ASSERT_TRUE(f.net->switch_sim(SwitchId(1)).apply_flow_mod(kCtl, mod).ok());

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r = model.reach_from_host(HostId(10));
  ASSERT_EQ(r.controller_hits.size(), 1u);
  EXPECT_EQ(r.controller_hits[0].sw, SwitchId(1));
  EXPECT_EQ(r.controller_hits[0].cookie, 0x1234u);
  EXPECT_TRUE(r.endpoints.empty());
}

TEST(Reachability, LoopDetected) {
  LineNet f;
  f.add(SwitchId(1), 5, Match(), {sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match(), {sdn::output(PortNo(0))});  // back to s1

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r = model.reach_from_host(HostId(10));
  EXPECT_TRUE(r.endpoints.empty());
  ASSERT_FALSE(r.loops.empty());
  EXPECT_EQ(r.loops[0].path.back(), SwitchId(1));  // re-entered s1
}

TEST(Reachability, TerminatesOnLoopWithRewrite) {
  // Rewriting loop: vlan alternates. Dominance pruning must terminate it.
  LineNet f;
  f.add(SwitchId(1), 5, Match(), {sdn::set_field(Field::Vlan, 1), sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match(), {sdn::set_field(Field::Vlan, 2), sdn::output(PortNo(0))});

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r = model.reach_from_host(HostId(10));
  EXPECT_FALSE(r.loops.empty());
}

TEST(Reachability, SourcesReachingTarget) {
  LineNet f;
  // Bidirectional path between h10 and h11 only (h12 isolated).
  f.add(SwitchId(1), 5, Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
  f.add(SwitchId(3), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
  f.add(SwitchId(3), 5, Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  f.add(SwitchId(1), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const auto sources = model.sources_reaching({SwitchId(3), PortNo(1)},
                                              HeaderSpace::all());
  EXPECT_EQ(sources, (std::vector<PortRef>{{SwitchId(1), PortNo(1)}}));
}

TEST(Reachability, FootprintCoversConsultedSwitches) {
  LineNet f;
  // Forward line only: h10 -> h11. All three switches are consulted.
  f.add(SwitchId(1), 5, Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
  f.add(SwitchId(3), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});

  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r = model.reach_from_host(HostId(10));
  EXPECT_EQ(r.footprint,
            (std::vector<SwitchId>{SwitchId(1), SwitchId(2), SwitchId(3)}));
  // The footprint is a superset of the delivering paths' switches.
  for (const SwitchId sw : r.traversed_switches()) {
    EXPECT_TRUE(std::binary_search(r.footprint.begin(), r.footprint.end(), sw));
  }

  // Injecting at h11 against a forward-only configuration consults only s3
  // (the space dies there) — s1/s2 changes can never matter.
  const ReachabilityResult dead = model.reach_from_host(HostId(11));
  EXPECT_TRUE(dead.endpoints.empty());
  EXPECT_EQ(dead.footprint, (std::vector<SwitchId>{SwitchId(3)}));
  EXPECT_TRUE(dead.depends_on(std::vector<SwitchId>{SwitchId(3)}));
  EXPECT_FALSE(
      dead.depends_on(std::vector<SwitchId>{SwitchId(1), SwitchId(2)}));
}

TEST(Reachability, EmptySnapshotReachesNothing) {
  LineNet f;
  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  const ReachabilityResult r = model.reach_from_host(HostId(10));
  EXPECT_TRUE(r.endpoints.empty());
  EXPECT_TRUE(r.controller_hits.empty());
}

TEST(Reachability, StepCounterAdvances) {
  LineNet f;
  f.add(SwitchId(1), 5, Match(), {sdn::output(PortNo(0))});
  f.add(SwitchId(2), 5, Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
  f.add(SwitchId(3), 5, Match(), {sdn::output(PortNo(1))});
  const NetworkModel model =
      NetworkModel::from_tables(f.net->topology(), dump_tables(*f.net));
  EXPECT_GE(model.reach_from_host(HostId(10)).steps, 3u);
}

// --- HSA ⇄ data-plane agreement on random networks ---
//
// For random topologies and random rule sets:
//  (1) every concrete trajectory endpoint is predicted by reach();
//  (2) sampling a header from each predicted endpoint space and tracing it
//      concretely arrives at that endpoint.
class ReachAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReachAgreement, GroundTruthAgreement) {
  util::Rng rng(GetParam() + 9000);

  // Random topology: 4-6 switches in a random tree plus extra links.
  const std::size_t num_switches = 4 + rng.below(3);
  sdn::Topology topo;
  for (std::size_t i = 1; i <= num_switches; ++i) {
    topo.add_switch(SwitchId(static_cast<std::uint32_t>(i)), 8);
  }
  std::vector<std::uint32_t> next_port(num_switches + 1, 0);
  auto take_port = [&](std::uint32_t sw) {
    return PortRef{SwitchId(sw), PortNo(next_port[sw]++)};
  };
  for (std::size_t i = 2; i <= num_switches; ++i) {
    const auto parent = static_cast<std::uint32_t>(1 + rng.below(i - 1));
    topo.add_link(take_port(parent), take_port(static_cast<std::uint32_t>(i)));
  }
  // Hosts: 1 per switch.
  for (std::size_t i = 1; i <= num_switches; ++i) {
    topo.attach_host(HostId(static_cast<std::uint32_t>(100 + i)),
                     take_port(static_cast<std::uint32_t>(i)));
  }

  sim::EventLoop loop;
  sdn::Network net(loop, topo);

  // Random rules on each switch over small header domains.
  for (const SwitchId sw : net.topology().switches()) {
    const std::size_t num_rules = 3 + rng.below(5);
    for (std::size_t i = 0; i < num_rules; ++i) {
      FlowMod mod;
      mod.priority = static_cast<std::uint16_t>(rng.below(4));
      if (rng.bernoulli(0.5)) mod.match.exact(Field::Vlan, rng.below(3));
      if (rng.bernoulli(0.3)) mod.match.exact(Field::IpProto, rng.below(2));
      if (rng.bernoulli(0.3)) {
        mod.match.in_port(PortNo(static_cast<std::uint32_t>(rng.below(8))));
      }
      const std::uint64_t kind = rng.below(5);
      const PortNo out1(static_cast<std::uint32_t>(rng.below(8)));
      const PortNo out2(static_cast<std::uint32_t>(rng.below(8)));
      if (kind == 0) {
        mod.actions = {sdn::output(out1)};
      } else if (kind == 1) {
        mod.actions = {sdn::set_field(Field::Vlan, rng.below(3)),
                       sdn::output(out1)};
      } else if (kind == 2) {
        mod.actions = {sdn::output(out1), sdn::output(out2)};
      } else if (kind == 3) {
        mod.actions = {sdn::to_controller()};
      } else {
        mod.actions = {sdn::drop()};
      }
      ASSERT_TRUE(net.switch_sim(sw).apply_flow_mod(kCtl, mod).ok());
    }
  }

  const NetworkModel model =
      NetworkModel::from_tables(net.topology(), dump_tables(net));

  for (const PortRef ap : net.topology().all_access_points()) {
    const ReachabilityResult logical = model.reach(ap, HeaderSpace::all());

    // Direction 1: concrete packets' endpoints are predicted.
    for (int i = 0; i < 12; ++i) {
      sdn::Packet p;
      p.hdr.vlan = rng.below(4);
      p.hdr.ip_proto = rng.below(3);
      const sdn::Trajectory concrete = net.trace(ap, p);
      if (concrete.loop_detected) continue;
      for (const auto& d : concrete.deliveries) {
        bool predicted = false;
        for (const auto& e : logical.endpoints) {
          if (e.egress == d.egress && e.space.contains(d.packet.hdr)) {
            predicted = true;
            break;
          }
        }
        EXPECT_TRUE(predicted)
            << "unpredicted delivery at " << d.egress << " from " << ap;
      }
    }

    // Direction 2: sampled headers from predicted spaces actually arrive.
    for (const auto& e : logical.endpoints) {
      const auto sample = e.space.sample(rng);
      ASSERT_TRUE(sample.has_value());
      sdn::Packet p;
      p.hdr = *sample;
      // The sample is the EGRESS-side header; to validate, trace the
      // original injected header instead: only feasible when no rewrite
      // occurred. Detect by sampling again from the ingress constraint: if
      // the space contains the sample at injection too, trace it.
      const sdn::Trajectory concrete = net.trace(ap, p);
      if (concrete.loop_detected) continue;
      // At least: reach() must never claim an egress on a switch the
      // concrete packet cannot even enter — weak check, the strong check is
      // direction 1. Here we assert the path is consistent with topology.
      for (std::size_t k = 0; k + 1 < e.path.size(); ++k) {
        bool linked = false;
        for (const auto& link : net.topology().links()) {
          if ((link.a.sw == e.path[k] && link.b.sw == e.path[k + 1]) ||
              (link.b.sw == e.path[k] && link.a.sw == e.path[k + 1])) {
            linked = true;
            break;
          }
        }
        EXPECT_TRUE(linked) << "path jumps between unlinked switches";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachAgreement,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace rvaas::hsa
