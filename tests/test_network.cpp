// Network integration: functional traces (ground truth), event-driven
// forwarding with latencies, control channels with authentication, counters.

#include <gtest/gtest.h>

#include "sdn/network.hpp"

namespace rvaas::sdn {
namespace {

// Line topology: h10 - s1 - s2 - s3 - h11, one dark port on s2.
struct LineFixture {
  sim::EventLoop loop;
  Topology topo;
  std::unique_ptr<Network> net;
  crypto::SigningKey provider_key;
  crypto::SigningKey rogue_key;

  LineFixture()
      : provider_key(make_key(1)), rogue_key(make_key(2)) {
    topo.add_switch(SwitchId(1), 4);
    topo.add_switch(SwitchId(2), 4);
    topo.add_switch(SwitchId(3), 4);
    topo.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)});
    topo.add_link({SwitchId(2), PortNo(1)}, {SwitchId(3), PortNo(0)});
    topo.attach_host(HostId(10), {SwitchId(1), PortNo(1)});
    topo.attach_host(HostId(11), {SwitchId(3), PortNo(1)});
    net = std::make_unique<Network>(loop, topo);
    net->authorize_controller_key(provider_key.verify_key().id());
  }

  static crypto::SigningKey make_key(std::uint64_t seed) {
    util::Rng rng(seed);
    return crypto::SigningKey::generate(rng);
  }

  // Installs a simple forward path h10 -> h11 for IPv4.
  void install_forward_path(Network::ControllerHandle& ctl) {
    FlowMod s1;
    s1.match = Match().in_port(PortNo(1));
    s1.actions = {output(PortNo(0))};
    ctl.flow_mod(SwitchId(1), s1);

    FlowMod s2;
    s2.match = Match().in_port(PortNo(0));
    s2.actions = {output(PortNo(1))};
    ctl.flow_mod(SwitchId(2), s2);

    FlowMod s3;
    s3.match = Match().in_port(PortNo(0));
    s3.actions = {output(PortNo(1))};
    ctl.flow_mod(SwitchId(3), s3);
    loop.run();
  }
};

class NullController : public Controller {
 public:
  explicit NullController(ControllerId id) : id_(id) {}
  ControllerId id() const override { return id_; }

  std::vector<PacketIn> packet_ins;
  std::vector<FlowUpdate> updates;

  void on_packet_in(const PacketIn& msg) override { packet_ins.push_back(msg); }
  void on_flow_update(const FlowUpdate& msg) override { updates.push_back(msg); }

 private:
  ControllerId id_;
};

TEST(NetworkAuth, AuthorizedControllerConnects) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);
  EXPECT_EQ(handle.switches().size(), 3u);
  EXPECT_TRUE(handle.connected(SwitchId(1)));
}

TEST(NetworkAuth, UnauthorizedKeyRefused) {
  LineFixture f;
  NullController rogue(ControllerId(9));
  auto& handle = f.net->attach_controller(rogue, f.rogue_key);
  EXPECT_TRUE(handle.switches().empty());
  EXPECT_EQ(f.net->counters().rejected_handshakes, 3u);
  EXPECT_THROW(handle.flow_mod(SwitchId(1), FlowMod{}),
               util::InvariantViolation);
}

TEST(NetworkAuth, PerSwitchAuthorization) {
  LineFixture f;
  // Authorize the rogue key on switch 2 only.
  f.net->authorize_controller_key(SwitchId(2), f.rogue_key.verify_key().id());
  NullController rogue(ControllerId(9));
  auto& handle = f.net->attach_controller(rogue, f.rogue_key);
  EXPECT_EQ(handle.switches(), std::vector<SwitchId>{SwitchId(2)});
}

TEST(NetworkTrace, ForwardsAlongInstalledPath) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);
  f.install_forward_path(handle);

  const Trajectory t = f.net->trace_from_host(HostId(10), Packet{});
  ASSERT_EQ(t.deliveries.size(), 1u);
  EXPECT_EQ(t.deliveries[0].host, HostId(11));
  EXPECT_EQ(t.deliveries[0].path.size(), 3u);
  EXPECT_EQ(t.hop_count, 3u);
  EXPECT_FALSE(t.loop_detected);
  EXPECT_EQ(t.reached_hosts(), std::vector<HostId>{HostId(11)});
  EXPECT_EQ(t.traversed_switches().size(), 3u);
}

TEST(NetworkTrace, MulticastProducesMultipleDeliveries) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);
  f.install_forward_path(handle);

  // s2 additionally clones to its dark port 2 (exfiltration pattern).
  FlowMod clone;
  clone.priority = 50;
  clone.match = Match().in_port(PortNo(0));
  clone.actions = {output(PortNo(1)), output(PortNo(2))};
  handle.flow_mod(SwitchId(2), clone);
  f.loop.run();

  const Trajectory t = f.net->trace_from_host(HostId(10), Packet{});
  ASSERT_EQ(t.deliveries.size(), 2u);
  // One legitimate delivery, one dark-port copy.
  int dark = 0, hosted = 0;
  for (const auto& d : t.deliveries) {
    if (d.host) {
      ++hosted;
    } else {
      ++dark;
    }
  }
  EXPECT_EQ(hosted, 1);
  EXPECT_EQ(dark, 1);
}

TEST(NetworkTrace, DetectsForwardingLoop) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);
  // s1 <-> s2 ping-pong.
  FlowMod s1;
  s1.match = Match();
  s1.actions = {output(PortNo(0))};
  handle.flow_mod(SwitchId(1), s1);
  FlowMod s2;
  s2.match = Match();
  s2.actions = {output(PortNo(0))};
  handle.flow_mod(SwitchId(2), s2);
  f.loop.run();

  const Trajectory t = f.net->trace_from_host(HostId(10), Packet{});
  EXPECT_TRUE(t.loop_detected);
  EXPECT_TRUE(t.deliveries.empty());
}

TEST(NetworkTrace, TtlBoundedLoopTerminates) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);
  FlowMod s1;
  s1.match = Match();
  s1.actions = {DecTtlAction{}, output(PortNo(0))};
  handle.flow_mod(SwitchId(1), s1);
  FlowMod s2;
  s2.match = Match();
  s2.actions = {DecTtlAction{}, output(PortNo(0))};
  handle.flow_mod(SwitchId(2), s2);
  f.loop.run();

  Packet p;
  p.ttl = 5;
  const Trajectory t = f.net->trace_from_host(HostId(10), p);
  EXPECT_TRUE(t.ttl_expired);
  EXPECT_FALSE(t.loop_detected);  // TTL kills it before the state repeats
  ASSERT_FALSE(t.punts.empty());
  EXPECT_EQ(t.punts.back().reason, PacketInReason::TtlExpired);
}

TEST(NetworkEventDriven, EndToEndDeliveryWithLatency) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);
  f.install_forward_path(handle);

  std::vector<std::pair<PortRef, Packet>> received;
  sim::Time arrival = 0;
  f.net->register_host_receiver(HostId(11), [&](PortRef at, const Packet& p) {
    received.emplace_back(at, p);
    arrival = f.loop.now();
  });

  const sim::Time start = f.loop.now();
  f.net->host_send(HostId(10), {SwitchId(1), PortNo(1)}, Packet{});
  f.loop.run();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, (PortRef{SwitchId(3), PortNo(1)}));
  // 2 host NIC hops (5us) + 3 switch delays (2us) + 2 links (10us) = 36us.
  EXPECT_EQ(arrival - start, 36 * sim::kMicrosecond);
  EXPECT_EQ(f.net->counters().host_deliveries, 1u);
  EXPECT_EQ(f.net->counters().data_hops, 2u);
}

TEST(NetworkEventDriven, PacketInReachesAuthenticatedControllersOnly) {
  LineFixture f;
  NullController provider(ControllerId(1));
  NullController rogue(ControllerId(9));
  auto& handle = f.net->attach_controller(provider, f.provider_key);
  f.net->attach_controller(rogue, f.rogue_key);  // refused everywhere

  FlowMod punt;
  punt.match = Match();
  punt.actions = {to_controller()};
  handle.flow_mod(SwitchId(1), punt);
  f.loop.run();

  f.net->host_send(HostId(10), {SwitchId(1), PortNo(1)}, Packet{});
  f.loop.run();

  EXPECT_EQ(provider.packet_ins.size(), 1u);
  EXPECT_TRUE(rogue.packet_ins.empty());
  EXPECT_EQ(provider.packet_ins[0].sw, SwitchId(1));
}

TEST(NetworkEventDriven, PacketOutInjectsAtSwitch) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);

  std::vector<Packet> received;
  f.net->register_host_receiver(HostId(11), [&](PortRef, const Packet& p) {
    received.push_back(p);
  });

  PacketOut out;
  out.sw = SwitchId(3);
  out.actions = {output(PortNo(1))};
  out.packet.hdr.ip_dst = 42;
  handle.packet_out(out);
  f.loop.run();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].hdr.ip_dst, 42u);
  EXPECT_EQ(f.net->counters().packet_outs, 1u);
}

TEST(NetworkEventDriven, FlowModResultRoundTrip) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);

  std::optional<FlowModResult> got;
  FlowMod mod;
  mod.actions = {output(PortNo(0))};
  const sim::Time start = f.loop.now();
  sim::Time reply_time = 0;
  handle.flow_mod(SwitchId(1), mod, [&](SwitchId, const FlowModResult& r) {
    got = r;
    reply_time = f.loop.now();
  });
  f.loop.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  // Round trip = 2 * control latency.
  EXPECT_EQ(reply_time - start, 2 * f.net->config().control_latency);
}

TEST(NetworkEventDriven, StatsRequestReturnsDump) {
  LineFixture f;
  NullController ctl(ControllerId(1));
  auto& handle = f.net->attach_controller(ctl, f.provider_key);
  f.install_forward_path(handle);

  std::optional<StatsReply> reply;
  handle.request_stats(SwitchId(2), [&](const StatsReply& r) { reply = r; });
  f.loop.run();

  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->sw, SwitchId(2));
  EXPECT_EQ(reply->entries.size(), 1u);
}

TEST(NetworkEventDriven, FlowMonitorDeliversUpdates) {
  LineFixture f;
  NullController provider(ControllerId(1));
  NullController monitor(ControllerId(2));
  // Both keys authorized; monitor subscribes to flow updates.
  const auto monitor_key = LineFixture::make_key(7);
  f.net->authorize_controller_key(monitor_key.verify_key().id());
  auto& phandle = f.net->attach_controller(provider, f.provider_key);
  auto& mhandle = f.net->attach_controller(monitor, monitor_key);
  for (const SwitchId sw : mhandle.switches()) {
    mhandle.subscribe_flow_monitor(sw);
  }

  FlowMod mod;
  mod.actions = {output(PortNo(0))};
  phandle.flow_mod(SwitchId(2), mod);
  f.loop.run();

  ASSERT_EQ(monitor.updates.size(), 1u);
  EXPECT_EQ(monitor.updates[0].sw, SwitchId(2));
  EXPECT_EQ(monitor.updates[0].kind, FlowUpdateKind::Added);
  EXPECT_EQ(monitor.updates[0].entry.owner, ControllerId(1));
}

TEST(NetworkEventDriven, TableMissCountsDrop) {
  LineFixture f;
  f.net->host_send(HostId(10), {SwitchId(1), PortNo(1)}, Packet{});
  f.loop.run();
  EXPECT_EQ(f.net->counters().table_miss_drops, 1u);
}

TEST(NetworkEventDriven, HostSendValidatesAttachment) {
  LineFixture f;
  EXPECT_THROW(f.net->host_send(HostId(10), {SwitchId(3), PortNo(1)}, Packet{}),
               util::InvariantViolation);
}

}  // namespace
}  // namespace rvaas::sdn
