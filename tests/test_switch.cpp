// Flow table semantics (priority, shadowing, ownership) and the switch
// pipeline (actions, TTL, meters, punts, flow-monitor events).

#include <gtest/gtest.h>

#include "sdn/switch.hpp"

namespace rvaas::sdn {
namespace {

constexpr ControllerId kProvider{1};
constexpr ControllerId kRvaas{2};

FlowMod add_rule(std::uint16_t priority, Match match, ActionList actions) {
  FlowMod mod;
  mod.command = FlowModCommand::Add;
  mod.priority = priority;
  mod.match = std::move(match);
  mod.actions = std::move(actions);
  return mod;
}

TEST(FlowTable, LookupHonorsPriority) {
  FlowTable table;
  FlowEntry low;
  low.priority = 1;
  low.match = Match();
  low.actions = {output(PortNo(1))};
  table.add(low);

  FlowEntry high;
  high.priority = 10;
  high.match = Match().exact(Field::Vlan, 5);
  high.actions = {output(PortNo(2))};
  table.add(high);

  HeaderFields h;
  h.vlan = 5;
  const FlowEntry* hit = table.lookup(h, PortNo(0));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 10);

  h.vlan = 6;
  hit = table.lookup(h, PortNo(0));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 1);
}

TEST(FlowTable, EqualPriorityPrefersNewerInstall) {
  FlowTable table;
  FlowEntry a;
  a.priority = 5;
  a.actions = {output(PortNo(1))};
  table.add(a);

  FlowEntry b;
  b.priority = 5;
  b.actions = {output(PortNo(2))};
  const FlowEntryId second = table.add(b).id;

  const FlowEntry* hit = table.lookup(HeaderFields{}, PortNo(0));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, second);
}

TEST(FlowTable, RemoveAndModify) {
  FlowTable table;
  FlowEntry e;
  e.actions = {output(PortNo(1))};
  const FlowEntryId id = table.add(e).id;

  EXPECT_TRUE(table.modify(id, {output(PortNo(3))}, std::nullopt));
  EXPECT_EQ(table.find(id)->actions, ActionList{output(PortNo(3))});

  const auto removed = table.remove(id);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id, id);
  EXPECT_EQ(table.lookup(HeaderFields{}, PortNo(0)), nullptr);
  EXPECT_FALSE(table.remove(id).has_value());
  EXPECT_FALSE(table.modify(id, {}, std::nullopt));
}

TEST(SwitchPipeline, TableMissDrops) {
  SwitchSim sw(SwitchId(1), 4);
  const PipelineOutput out = sw.process(PortNo(0), Packet{}, 0, true);
  EXPECT_TRUE(out.table_miss);
  EXPECT_TRUE(out.forwards.empty());
  EXPECT_TRUE(out.punts.empty());
}

TEST(SwitchPipeline, ForwardAndRewrite) {
  SwitchSim sw(SwitchId(1), 4);
  // Rewrite vlan then output: the emitted copy carries the new vlan.
  auto mod = add_rule(5, Match(), {set_field(Field::Vlan, 7), output(PortNo(2))});
  ASSERT_TRUE(sw.apply_flow_mod(kProvider, mod).ok());

  const PipelineOutput out = sw.process(PortNo(0), Packet{}, 0, true);
  ASSERT_EQ(out.forwards.size(), 1u);
  EXPECT_EQ(out.forwards[0].first, PortNo(2));
  EXPECT_EQ(out.forwards[0].second.hdr.vlan, 7u);
}

TEST(SwitchPipeline, OutputThenRewriteEmitsOldHeader) {
  SwitchSim sw(SwitchId(1), 4);
  auto mod = add_rule(
      5, Match(),
      {output(PortNo(1)), set_field(Field::Vlan, 7), output(PortNo(2))});
  ASSERT_TRUE(sw.apply_flow_mod(kProvider, mod).ok());

  const PipelineOutput out = sw.process(PortNo(0), Packet{}, 0, true);
  ASSERT_EQ(out.forwards.size(), 2u);
  EXPECT_EQ(out.forwards[0].second.hdr.vlan, 0u);  // before rewrite
  EXPECT_EQ(out.forwards[1].second.hdr.vlan, 7u);  // after rewrite
}

TEST(SwitchPipeline, DropStopsActionList) {
  SwitchSim sw(SwitchId(1), 4);
  auto mod = add_rule(5, Match(), {drop(), output(PortNo(1))});
  ASSERT_TRUE(sw.apply_flow_mod(kProvider, mod).ok());
  const PipelineOutput out = sw.process(PortNo(0), Packet{}, 0, true);
  EXPECT_TRUE(out.forwards.empty());
}

TEST(SwitchPipeline, ControllerPuntCarriesCookie) {
  SwitchSim sw(SwitchId(1), 4);
  auto mod = add_rule(5, Match(), {to_controller()});
  mod.cookie = 0xbeef;
  ASSERT_TRUE(sw.apply_flow_mod(kRvaas, mod).ok());

  const PipelineOutput out = sw.process(PortNo(3), Packet{}, 0, true);
  ASSERT_EQ(out.punts.size(), 1u);
  EXPECT_EQ(out.punts[0].cookie, 0xbeefu);
  EXPECT_EQ(out.punts[0].in_port, PortNo(3));
  EXPECT_EQ(out.punts[0].reason, PacketInReason::ActionToController);
}

TEST(SwitchPipeline, VlanPushPop) {
  SwitchSim sw(SwitchId(1), 4);
  auto mod = add_rule(5, Match().exact(Field::Vlan, 0),
                      {PushVlanAction{100}, output(PortNo(1))});
  ASSERT_TRUE(sw.apply_flow_mod(kProvider, mod).ok());
  auto mod2 = add_rule(5, Match().exact(Field::Vlan, 100),
                       {PopVlanAction{}, output(PortNo(2))});
  ASSERT_TRUE(sw.apply_flow_mod(kProvider, mod2).ok());

  Packet p;
  const PipelineOutput tagged = sw.process(PortNo(0), p, 0, true);
  ASSERT_EQ(tagged.forwards.size(), 1u);
  EXPECT_EQ(tagged.forwards[0].second.hdr.vlan, 100u);

  const PipelineOutput untagged =
      sw.process(PortNo(0), tagged.forwards[0].second, 0, true);
  ASSERT_EQ(untagged.forwards.size(), 1u);
  EXPECT_EQ(untagged.forwards[0].second.hdr.vlan, 0u);
}

TEST(SwitchPipeline, TtlExpiryPunts) {
  SwitchSim sw(SwitchId(1), 4);
  auto mod = add_rule(5, Match(), {DecTtlAction{}, output(PortNo(1))});
  ASSERT_TRUE(sw.apply_flow_mod(kProvider, mod).ok());

  Packet p;
  p.ttl = 1;
  const PipelineOutput out = sw.process(PortNo(0), p, 0, true);
  EXPECT_TRUE(out.ttl_expired);
  EXPECT_TRUE(out.forwards.empty());
  ASSERT_EQ(out.punts.size(), 1u);
  EXPECT_EQ(out.punts[0].reason, PacketInReason::TtlExpired);

  p.ttl = 2;
  const PipelineOutput ok = sw.process(PortNo(0), p, 0, true);
  ASSERT_EQ(ok.forwards.size(), 1u);
  EXPECT_EQ(ok.forwards[0].second.ttl, 1);
}

TEST(SwitchPipeline, MeterDropsExcessTraffic) {
  SwitchSim sw(SwitchId(1), 4);
  MeterMod meter;
  meter.id = MeterId(1);
  meter.config = MeterConfig{8'000, 200};  // 1 KB/s, 200 B burst
  ASSERT_TRUE(sw.apply_meter_mod(kProvider, meter));

  auto mod = add_rule(5, Match(), {output(PortNo(1))});
  mod.meter = MeterId(1);
  ASSERT_TRUE(sw.apply_flow_mod(kProvider, mod).ok());

  Packet p;
  p.payload.resize(64);  // 128 bytes with overhead
  const PipelineOutput first = sw.process(PortNo(0), p, 0, true);
  EXPECT_FALSE(first.metered_drop);
  const PipelineOutput second = sw.process(PortNo(0), p, 0, true);
  EXPECT_TRUE(second.metered_drop);

  // Functional mode ignores meters entirely.
  const PipelineOutput func = sw.process(PortNo(0), p, 0, false);
  EXPECT_FALSE(func.metered_drop);
  EXPECT_EQ(func.forwards.size(), 1u);
}

TEST(SwitchControl, OwnershipProtectsEntries) {
  SwitchSim sw(SwitchId(1), 4);
  auto mod = add_rule(100, Match(), {to_controller()});
  const FlowModResult res = sw.apply_flow_mod(kRvaas, mod);
  ASSERT_TRUE(res.ok());

  // The provider cannot delete or modify the RVaaS-owned intercept rule.
  FlowMod del;
  del.command = FlowModCommand::Delete;
  del.target = *res.id;
  const FlowModResult del_res = sw.apply_flow_mod(kProvider, del);
  EXPECT_FALSE(del_res.ok());
  EXPECT_EQ(*del_res.error, ErrorCode::NotOwner);

  FlowMod modify;
  modify.command = FlowModCommand::Modify;
  modify.target = *res.id;
  modify.actions = {drop()};
  EXPECT_EQ(*sw.apply_flow_mod(kProvider, modify).error, ErrorCode::NotOwner);

  // The owner can.
  EXPECT_TRUE(sw.apply_flow_mod(kRvaas, del).ok());
  EXPECT_EQ(sw.table().size(), 0u);
}

TEST(SwitchControl, UnknownTargetReported) {
  SwitchSim sw(SwitchId(1), 4);
  FlowMod del;
  del.command = FlowModCommand::Delete;
  del.target = FlowEntryId(99);
  EXPECT_EQ(*sw.apply_flow_mod(kProvider, del).error, ErrorCode::UnknownEntry);
}

TEST(SwitchControl, ValidationRejectsBadActions) {
  SwitchSim sw(SwitchId(1), 4);
  // Output port out of range.
  auto bad_port = add_rule(5, Match(), {output(PortNo(17))});
  EXPECT_EQ(*sw.apply_flow_mod(kProvider, bad_port).error, ErrorCode::BadPort);
  // Over-wide set-field.
  auto bad_set = add_rule(5, Match(), {set_field(Field::IpProto, 0x1ff)});
  EXPECT_FALSE(sw.apply_flow_mod(kProvider, bad_set).ok());
  // Reference to a missing meter.
  auto bad_meter = add_rule(5, Match(), {output(PortNo(1))});
  bad_meter.meter = MeterId(9);
  EXPECT_FALSE(sw.apply_flow_mod(kProvider, bad_meter).ok());
}

TEST(SwitchControl, FlowMonitorSeesAllChanges) {
  SwitchSim sw(SwitchId(1), 4);
  std::vector<FlowUpdateKind> kinds;
  sw.subscribe_monitor(kRvaas,
                       [&](const FlowUpdate& u) { kinds.push_back(u.kind); });

  auto mod = add_rule(5, Match(), {output(PortNo(1))});
  const auto res = sw.apply_flow_mod(kProvider, mod);
  FlowMod modify;
  modify.command = FlowModCommand::Modify;
  modify.target = *res.id;
  modify.actions = {output(PortNo(2))};
  sw.apply_flow_mod(kProvider, modify);
  FlowMod del;
  del.command = FlowModCommand::Delete;
  del.target = *res.id;
  sw.apply_flow_mod(kProvider, del);

  EXPECT_EQ(kinds,
            (std::vector<FlowUpdateKind>{FlowUpdateKind::Added,
                                         FlowUpdateKind::Modified,
                                         FlowUpdateKind::Removed}));
}

TEST(SwitchControl, StatsDumpMatchesTable) {
  SwitchSim sw(SwitchId(1), 4);
  sw.apply_meter_mod(kProvider, MeterMod{false, MeterId(1), {1000, 10}});
  sw.apply_flow_mod(kProvider, add_rule(5, Match(), {output(PortNo(1))}));
  sw.apply_flow_mod(kProvider, add_rule(7, Match(), {drop()}));

  const StatsReply reply = sw.stats();
  EXPECT_EQ(reply.sw, SwitchId(1));
  EXPECT_EQ(reply.entries.size(), 2u);
  EXPECT_EQ(reply.entries[0].priority, 7);  // match order
  ASSERT_EQ(reply.meters.size(), 1u);
  EXPECT_EQ(reply.meters[0].first, MeterId(1));
}

TEST(SwitchControl, PacketOutRunsActionList) {
  SwitchSim sw(SwitchId(1), 4);
  Packet p;
  p.hdr.ip_dst = 5;
  const PipelineOutput out =
      sw.run_actions({set_field(Field::Vlan, 3), output(PortNo(2))},
                     PortNo(4), p, 0);
  ASSERT_EQ(out.forwards.size(), 1u);
  EXPECT_EQ(out.forwards[0].first, PortNo(2));
  EXPECT_EQ(out.forwards[0].second.hdr.vlan, 3u);
}

}  // namespace
}  // namespace rvaas::sdn
