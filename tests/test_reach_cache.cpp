// ReachCache (the L2 result tier) and the parallel all-pairs engine: cached
// and fanned-out reachability must be indistinguishable from a cold
// sequential model.reach() — structurally and as serialized query replies
// (including the EndpointsOnly redaction) — across randomized churn, while
// invalidating exactly the entries whose dependency footprint intersects the
// dirty switches.

#include <gtest/gtest.h>

#include "rvaas/engine.hpp"
#include "workload/scenario.hpp"

namespace rvaas::core {
namespace {

using sdn::Field;
using sdn::FlowEntry;
using sdn::FlowUpdate;
using sdn::FlowUpdateKind;
using sdn::HostId;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

FlowEntry make_entry(std::uint64_t id, std::uint16_t priority, Match match,
                     sdn::ActionList actions) {
  FlowEntry e;
  e.id = sdn::FlowEntryId(id);
  e.priority = priority;
  e.match = std::move(match);
  e.actions = std::move(actions);
  return e;
}

util::Bytes reply_bytes(const QueryReply& reply) {
  util::ByteWriter w;
  reply.serialize(w);
  return w.data();
}

// Two disjoint two-switch lines: s1-s2 (h1, h2) and s3-s4 (h3, h4).
// Traffic injected on one island never consults the other island's
// switches, so footprints separate the two cleanly.
struct IslandFixture {
  sdn::Topology topo;
  SnapshotManager snap;
  std::uint64_t next_id = 1;

  IslandFixture() {
    for (std::uint32_t sw = 1; sw <= 4; ++sw) {
      topo.add_switch(SwitchId(sw), 4);
    }
    topo.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)});
    topo.add_link({SwitchId(3), PortNo(0)}, {SwitchId(4), PortNo(0)});
    topo.attach_host(HostId(1), {SwitchId(1), PortNo(1)});
    topo.attach_host(HostId(2), {SwitchId(2), PortNo(1)});
    topo.attach_host(HostId(3), {SwitchId(3), PortNo(1)});
    topo.attach_host(HostId(4), {SwitchId(4), PortNo(1)});
    for (std::uint32_t sw = 1; sw <= 4; ++sw) {
      add_rule(SwitchId(sw), 5, Match().in_port(PortNo(1)),
               {sdn::output(PortNo(0))});
      add_rule(SwitchId(sw), 5, Match().in_port(PortNo(0)),
               {sdn::output(PortNo(1))});
    }
  }

  void add_rule(SwitchId sw, std::uint16_t priority, Match match,
                sdn::ActionList actions) {
    snap.apply_update({sw, FlowUpdateKind::Added,
                       make_entry(next_id++, priority, std::move(match),
                                  std::move(actions))},
                      0);
  }
};

// A provider-routed 24-switch grid mirrored into a locally owned
// SnapshotManager (same shape as the test_incremental fixture).
struct ChurnFixture {
  workload::ScenarioRuntime runtime;
  SnapshotManager snap;
  std::uint64_t next_id = 1 << 20;

  ChurnFixture()
      : runtime([] {
          workload::ScenarioConfig config;
          config.generated = workload::grid(6, 4);
          config.tenant_count = 2;
          config.seed = 17;
          return config;
        }()) {
    runtime.settle();
    for (const auto& [sw, entries] : runtime.rvaas().snapshot().table_dump()) {
      for (const FlowEntry& e : entries) {
        snap.apply_update({sw, FlowUpdateKind::Added, e}, 0);
      }
    }
  }

  const sdn::Topology& topo() { return runtime.network().topology(); }

  SwitchId random_switch(util::Rng& rng) {
    const auto ids = snap.switch_ids();
    return ids[rng.below(ids.size())];
  }

  void churn_switch(SwitchId sw, util::Rng& rng) {
    const auto table = snap.table(sw);
    const std::uint64_t op = rng.below(3);
    if (op == 0 || table.empty()) {  // add
      const PortNo port(
          static_cast<std::uint32_t>(rng.below(topo().num_ports(sw))));
      snap.apply_update(
          {sw, FlowUpdateKind::Added,
           make_entry(next_id++, static_cast<std::uint16_t>(rng.below(100)),
                      Match().exact(Field::IpDst,
                                    static_cast<std::uint32_t>(rng.next_u64())),
                      {sdn::output(port)})},
          0);
    } else if (op == 1) {  // modify
      FlowEntry e = table[rng.below(table.size())];
      e.actions = {sdn::output(PortNo(static_cast<std::uint32_t>(
          rng.below(topo().num_ports(sw)))))};
      snap.apply_update({sw, FlowUpdateKind::Modified, e}, 0);
    } else {  // remove
      snap.apply_update(
          {sw, FlowUpdateKind::Removed, table[rng.below(table.size())]}, 0);
    }
  }
};

TEST(ReachCache, RepeatLookupsHitAndMatchColdResults) {
  IslandFixture f;
  QueryEngine engine(f.topo, EngineConfig{});
  const hsa::NetworkModel model = engine.model(f.snap);
  const PortRef ap{SwitchId(1), PortNo(1)};

  const auto first = engine.reach(model, f.snap, ap, hsa::HeaderSpace::all());
  const auto again = engine.reach(model, f.snap, ap, hsa::HeaderSpace::all());
  EXPECT_EQ(first.get(), again.get());  // the same cached object

  const hsa::ReachabilityResult cold =
      engine.model_uncached(f.snap).reach(ap, hsa::HeaderSpace::all());
  EXPECT_EQ(*first, cold);

  const auto s = engine.reach_stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(ReachCache, FootprintConfinesInvalidationToTouchedSwitches) {
  IslandFixture f;
  QueryEngine engine(f.topo, EngineConfig{});
  const PortRef island1{SwitchId(1), PortNo(1)};

  const auto before = engine.reach(engine.model(f.snap), f.snap, island1,
                                   hsa::HeaderSpace::all());
  // The traversal stayed on its island: s1, s2 only.
  EXPECT_EQ(before->footprint,
            (std::vector<SwitchId>{SwitchId(1), SwitchId(2)}));

  // Churn on the OTHER island: the cached entry survives and is served.
  f.add_rule(SwitchId(3), 9, Match().exact(Field::IpProto, sdn::kIpProtoTcp),
             {sdn::output(PortNo(0))});
  const auto after = engine.reach(engine.model(f.snap), f.snap, island1,
                                  hsa::HeaderSpace::all());
  EXPECT_EQ(before.get(), after.get());
  EXPECT_EQ(engine.reach_stats().entries_invalidated, 0u);

  // Churn on a footprint switch: the entry is dropped, recomputed, and the
  // fresh result reflects the new table.
  f.add_rule(SwitchId(2), 9, Match().in_port(PortNo(0)),
             {sdn::output(PortNo(2))});  // reroute to a dark port
  const auto rerouted = engine.reach(engine.model(f.snap), f.snap, island1,
                                     hsa::HeaderSpace::all());
  EXPECT_NE(rerouted.get(), before.get());
  EXPECT_GE(engine.reach_stats().entries_invalidated, 1u);
  ASSERT_EQ(rerouted->endpoints.size(), 1u);
  EXPECT_EQ(rerouted->endpoints[0].egress, (PortRef{SwitchId(2), PortNo(2)}));
  EXPECT_EQ(*rerouted,
            engine.model_uncached(f.snap).reach(island1,
                                                hsa::HeaderSpace::all()));
}

TEST(ReachCache, DistinctSpacesAndIngressesCacheSeparately) {
  IslandFixture f;
  QueryEngine engine(f.topo, EngineConfig{});
  const hsa::NetworkModel model = engine.model(f.snap);
  const PortRef ap{SwitchId(1), PortNo(1)};

  const auto tcp = QueryEngine::constraint_space(
      Match().exact(Field::IpProto, sdn::kIpProtoTcp));
  const auto udp = QueryEngine::constraint_space(
      Match().exact(Field::IpProto, sdn::kIpProtoUdp));

  (void)engine.reach(model, f.snap, ap, tcp);
  (void)engine.reach(model, f.snap, ap, udp);
  (void)engine.reach(model, f.snap, PortRef{SwitchId(2), PortNo(1)}, tcp);
  EXPECT_EQ(engine.reach_stats().misses, 3u);

  (void)engine.reach(model, f.snap, ap, tcp);
  EXPECT_EQ(engine.reach_stats().hits, 1u);
}

TEST(ReachCache, ReconcileAdoptionInvalidatesAgreeingPollsDoNot) {
  IslandFixture f;
  QueryEngine engine(f.topo, EngineConfig{});
  const PortRef ap{SwitchId(1), PortNo(1)};
  (void)engine.reach(engine.model(f.snap), f.snap, ap,
                     hsa::HeaderSpace::all());

  // Agreeing poll: epoch-neutral, the entry stays hot.
  sdn::StatsReply agree;
  agree.sw = SwitchId(2);
  agree.entries = f.snap.table(SwitchId(2));
  f.snap.reconcile(agree, 1);
  (void)engine.reach(engine.model(f.snap), f.snap, ap,
                     hsa::HeaderSpace::all());
  EXPECT_EQ(engine.reach_stats().hits, 1u);
  EXPECT_EQ(engine.reach_stats().entries_invalidated, 0u);

  // Diverging poll on a footprint switch: adopted -> entry dropped, and the
  // recomputation matches a cold run on the adopted view.
  sdn::StatsReply diverge;
  diverge.sw = SwitchId(2);
  diverge.entries = f.snap.table(SwitchId(2));
  diverge.entries.pop_back();
  f.snap.reconcile(diverge, 2);
  const auto recomputed = engine.reach(engine.model(f.snap), f.snap, ap,
                                       hsa::HeaderSpace::all());
  EXPECT_GE(engine.reach_stats().entries_invalidated, 1u);
  EXPECT_EQ(*recomputed,
            engine.model_uncached(f.snap).reach(ap, hsa::HeaderSpace::all()));
}

TEST(ReachCache, CachedAnswersStayByteIdenticalAcrossChurn) {
  ChurnFixture f;
  util::Rng rng(2024);
  QueryEngine engine(f.topo(), EngineConfig{});  // EndpointsOnly redaction
  const auto access_points = f.topo().all_access_points();
  ASSERT_FALSE(access_points.empty());

  for (int round = 0; round < 25; ++round) {
    const std::uint64_t touches = 1 + rng.below(2);
    for (std::uint64_t t = 0; t < touches; ++t) {
      if (rng.below(4) == 0) {
        const SwitchId sw = f.random_switch(rng);
        sdn::StatsReply reply;
        reply.sw = sw;
        reply.entries = f.snap.table(sw);
        if (!reply.entries.empty()) {
          reply.entries.erase(
              reply.entries.begin() +
              static_cast<std::ptrdiff_t>(rng.below(reply.entries.size())));
        }
        f.snap.reconcile(reply, round);
      } else {
        f.churn_switch(f.random_switch(rng), rng);
      }
    }

    QueryEngine::BatchContext ctx;
    ctx.from = access_points[rng.below(access_points.size())];
    Query query;
    query.kind = rng.below(2) == 0 ? QueryKind::ReachableEndpoints
                                   : QueryKind::Isolation;

    // Warm path: incremental model + reach cache. Cold path: a FRESH engine
    // (empty caches) on a full recompilation — every traversal recomputed.
    const hsa::NetworkModel model = engine.model(f.snap);
    const auto warm = engine.answer(model, f.snap, query, ctx);
    QueryEngine cold_engine(f.topo(), EngineConfig{});
    const hsa::NetworkModel cold_model = cold_engine.model_uncached(f.snap);
    const auto cold = cold_engine.answer(cold_model, f.snap, query, ctx);

    ASSERT_EQ(reply_bytes(warm.reply), reply_bytes(cold.reply))
        << "round " << round;
    ASSERT_EQ(warm.to_authenticate, cold.to_authenticate) << "round " << round;

    // Asking again without churn must serve pure hits and the same bytes.
    const auto misses_before = engine.reach_stats().misses;
    const auto repeat = engine.answer(model, f.snap, query, ctx);
    ASSERT_EQ(reply_bytes(repeat.reply), reply_bytes(warm.reply));
    ASSERT_EQ(engine.reach_stats().misses, misses_before);
  }

  const auto s = engine.reach_stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.full_clears, 0u);
}

TEST(ReachCache, ParallelReachAllIsByteIdenticalToSequentialColdRuns) {
  ChurnFixture f;
  const auto access_points = f.topo().all_access_points();
  const auto hs = QueryEngine::constraint_space(
      Match().exact(Field::IpProto, sdn::kIpProtoTcp).exact(Field::L4Dst, 443));

  // The cold sequential truth, computed once.
  QueryEngine cold_engine(f.topo(), EngineConfig{});
  const hsa::NetworkModel cold_model = cold_engine.model_uncached(f.snap);
  std::vector<hsa::ReachabilityResult> expected;
  for (const PortRef ap : access_points) {
    expected.push_back(cold_model.reach(ap, hs, 64));
  }

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    QueryEngine engine(f.topo(), EngineConfig{});  // fresh, empty caches
    const auto sweep = engine.reach_all(f.snap, hs, threads);
    ASSERT_EQ(sweep.size(), access_points.size()) << threads << " threads";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      ASSERT_EQ(sweep[i].ingress, access_points[i]);
      ASSERT_EQ(*sweep[i].result, expected[i])
          << threads << " threads, ingress " << access_points[i];
    }
    // The sweep populated the cache: re-running is all hits.
    const auto misses_before = engine.reach_stats().misses;
    (void)engine.reach_all(f.snap, hs, threads);
    EXPECT_EQ(engine.reach_stats().misses, misses_before);
  }
}

TEST(ReachCache, ReachAllWarmsTheQueryPaths) {
  ChurnFixture f;
  QueryEngine engine(f.topo(), EngineConfig{});
  const auto access_points = f.topo().all_access_points();
  const auto hs = hsa::HeaderSpace::all();

  (void)engine.reach_all(f.snap, hs, 2);
  const auto misses_after_sweep = engine.reach_stats().misses;

  // A ReachingSources query traverses from EVERY access point — after the
  // sweep, all of them are warm.
  QueryEngine::BatchContext ctx;
  ctx.from = access_points.front();
  Query query;
  query.kind = QueryKind::ReachingSources;
  (void)engine.answer(engine.model(f.snap), f.snap, query, ctx);
  EXPECT_EQ(engine.reach_stats().misses, misses_after_sweep);
}

TEST(ReachCache, ModelReachAllMatchesSequentialReach) {
  IslandFixture f;
  const hsa::NetworkModel model =
      hsa::NetworkModel::from_tables(f.topo, f.snap.table_dump());
  const auto ingresses = f.topo.all_access_points();

  util::ThreadPool pool(3);
  const auto fanned = model.reach_all(ingresses, hsa::HeaderSpace::all(), pool);
  ASSERT_EQ(fanned.size(), ingresses.size());
  for (std::size_t i = 0; i < ingresses.size(); ++i) {
    EXPECT_EQ(fanned[i], model.reach(ingresses[i], hsa::HeaderSpace::all()));
  }

  // The parallel sources_reaching overload agrees with the sequential one.
  const PortRef target{SwitchId(2), PortNo(1)};
  EXPECT_EQ(model.sources_reaching(target, hsa::HeaderSpace::all()),
            model.sources_reaching(target, hsa::HeaderSpace::all(), pool));
}

TEST(ReachCache, SnapshotIdentityChangeClearsEverything) {
  IslandFixture a;
  IslandFixture b;
  QueryEngine engine(a.topo, EngineConfig{});
  const PortRef ap{SwitchId(1), PortNo(1)};

  (void)engine.reach(engine.model(a.snap), a.snap, ap,
                     hsa::HeaderSpace::all());
  // A different snapshot instance (same topology shape) must not be served
  // another view's traversals.
  (void)engine.reach(engine.model(b.snap), b.snap, ap,
                     hsa::HeaderSpace::all());
  const auto s = engine.reach_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.full_clears, 1u);
}

}  // namespace
}  // namespace rvaas::core
