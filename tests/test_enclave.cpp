// Enclave simulation: measurements, attestation quotes (incl. forgery and
// wrong-measurement cases), sealed storage binding.

#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "enclave/attestation.hpp"
#include "enclave/enclave.hpp"

namespace rvaas::enclave {
namespace {

TEST(Measurement, StableAndVersionSensitive) {
  const Measurement a = measure_code("rvaas", "1.0");
  EXPECT_TRUE(crypto::digest_equal(a, measure_code("rvaas", "1.0")));
  EXPECT_FALSE(crypto::digest_equal(a, measure_code("rvaas", "1.1")));
  EXPECT_FALSE(crypto::digest_equal(a, measure_code("evil-rvaas", "1.0")));
}

TEST(Enclave, MeasurementMatchesCodeIdentity) {
  util::Rng rng(1);
  const Enclave e("rvaas", "1.0", rng);
  EXPECT_TRUE(crypto::digest_equal(e.measurement(), measure_code("rvaas", "1.0")));
}

TEST(Enclave, SignAndOpenUseEnclaveKeys) {
  util::Rng rng(2);
  const Enclave e("rvaas", "1.0", rng);
  const util::Bytes msg = util::to_bytes("reply");
  EXPECT_TRUE(e.verify_key().verify(msg, e.sign(msg)));

  crypto::BoxSealer sealer(e.box_public());
  const auto box = sealer.seal(rng, util::to_bytes("query"));
  const auto out = e.open(box);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, util::to_bytes("query"));
}

TEST(Attestation, QuoteVerifies) {
  util::Rng rng(3);
  const AttestationService ias(rng);
  const Enclave e("rvaas", "1.0", rng);
  const Quote q = ias.quote(e, bind_keys(e.verify_key(), e.box_public()));
  EXPECT_TRUE(AttestationService::verify(q, ias.root_key(), e.measurement()));
  EXPECT_TRUE(AttestationService::verify(q, ias.root_key(), std::nullopt));
}

TEST(Attestation, WrongMeasurementRejected) {
  util::Rng rng(4);
  const AttestationService ias(rng);
  // A tampered/fake RVaaS produces a different measurement; a client pinning
  // the genuine measurement must reject its quote.
  const Enclave fake("evil-rvaas", "1.0", rng);
  const Quote q = ias.quote(fake, bind_keys(fake.verify_key(), fake.box_public()));
  EXPECT_TRUE(AttestationService::verify(q, ias.root_key(), std::nullopt));
  EXPECT_FALSE(AttestationService::verify(q, ias.root_key(),
                                          measure_code("rvaas", "1.0")));
}

TEST(Attestation, ForgedQuoteRejected) {
  util::Rng rng(5);
  const AttestationService real_ias(rng);
  const AttestationService fake_ias(rng);
  const Enclave e("rvaas", "1.0", rng);
  const Quote q = fake_ias.quote(e, bind_keys(e.verify_key(), e.box_public()));
  EXPECT_FALSE(AttestationService::verify(q, real_ias.root_key(), e.measurement()));
}

TEST(Attestation, TamperedReportDataRejected) {
  util::Rng rng(6);
  const AttestationService ias(rng);
  const Enclave e("rvaas", "1.0", rng);
  Quote q = ias.quote(e, bind_keys(e.verify_key(), e.box_public()));
  q.report.report_data[0] ^= 1;  // swap in different keys
  EXPECT_FALSE(AttestationService::verify(q, ias.root_key(), e.measurement()));
}

TEST(Attestation, QuoteSerializationRoundTrip) {
  util::Rng rng(7);
  const AttestationService ias(rng);
  const Enclave e("rvaas", "1.0", rng);
  const Quote q = ias.quote(e, bind_keys(e.verify_key(), e.box_public()));
  util::ByteReader r(q.serialize());
  const Quote q2 = Quote::deserialize(r);
  EXPECT_TRUE(AttestationService::verify(q2, ias.root_key(), e.measurement()));
}

TEST(SealedStorage, RoundTripSameMeasurement) {
  SealedStorage storage(util::to_bytes("platform-fuse-key"));
  const Measurement m = measure_code("rvaas", "1.0");
  const util::Bytes data = util::to_bytes("snapshot-history-state");
  const util::Bytes blob = storage.seal(m, data);
  const auto out = storage.unseal(m, blob);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(SealedStorage, DifferentMeasurementCannotUnseal) {
  SealedStorage storage(util::to_bytes("platform-fuse-key"));
  const util::Bytes blob =
      storage.seal(measure_code("rvaas", "1.0"), util::to_bytes("state"));
  EXPECT_FALSE(storage.unseal(measure_code("rvaas", "2.0"), blob).has_value());
  EXPECT_FALSE(storage.unseal(measure_code("evil", "1.0"), blob).has_value());
}

TEST(SealedStorage, DifferentPlatformCannotUnseal) {
  SealedStorage a(util::to_bytes("platform-a"));
  SealedStorage b(util::to_bytes("platform-b"));
  const Measurement m = measure_code("rvaas", "1.0");
  const util::Bytes blob = a.seal(m, util::to_bytes("state"));
  EXPECT_FALSE(b.unseal(m, blob).has_value());
}

TEST(SealedStorage, TamperedBlobRejected) {
  SealedStorage storage(util::to_bytes("platform"));
  const Measurement m = measure_code("rvaas", "1.0");
  util::Bytes blob = storage.seal(m, util::to_bytes("state"));
  blob[blob.size() / 2] ^= 1;
  EXPECT_FALSE(storage.unseal(m, blob).has_value());
  EXPECT_FALSE(storage.unseal(m, util::Bytes{1, 2, 3}).has_value());
}

}  // namespace
}  // namespace rvaas::enclave
