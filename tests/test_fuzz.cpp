// Tier-1 gate for the adversarial scenario fuzzer (src/testing): a fixed-seed
// sweep of >= 200 randomized attack/churn schedules with all five
// differential oracles green (including the monitor's inverted-index-vs-
// linear-scan selection oracle), a pinned repro corpus, determinism/codec
// round-trips, and the fault-injection drills — an intentionally broken
// cache tier or a frozen subscription index must be caught by the oracles
// and shrunk to a tiny replayable repro.

#include <gtest/gtest.h>

#include <chrono>

#include "rvaas/engine.hpp"
#include "rvaas/monitor.hpp"
#include "testing/fuzzer.hpp"
#include "testing/shrink.hpp"

namespace rvaas::fuzz {
namespace {

/// Base seed of the tier-1 sweep. Changing it is safe (the oracles must
/// hold for every seed) but invalidates any triage notes referencing it.
constexpr std::uint64_t kSweepSeed = 20260729;
constexpr int kSweepSchedules = 200;

std::string describe(const Schedule& schedule, const FuzzFailure& failure) {
  return "oracle " + failure.oracle + " at step " +
         std::to_string(failure.step_index) + ": " + failure.detail +
         "\nrepro: " + schedule.repro();
}

TEST(Fuzz, ScheduleGenerationIsDeterministicAndReproRoundTrips) {
  for (const std::uint64_t seed :
       {std::uint64_t{1}, std::uint64_t{42}, kSweepSeed,
        std::uint64_t{0xffffffff}}) {
    const Schedule a = generate_schedule(seed);
    const Schedule b = generate_schedule(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    ASSERT_FALSE(a.steps.empty());

    const auto parsed = parse_repro(a.repro());
    ASSERT_TRUE(parsed.has_value()) << a.repro();
    EXPECT_EQ(*parsed, a) << "repro round-trip for seed " << seed;
  }
  // A repro wrapped across lines (docs, commit messages) must parse whole,
  // not silently truncate at the first whitespace.
  {
    const auto wrapped = parse_repro(
        "rvaas-fuzz-v1 cfg=0,4,1,0,0,1 steps=4:1:2:3;\n  1:4:5:6; 0:7:8:9");
    ASSERT_TRUE(wrapped.has_value());
    EXPECT_EQ(wrapped->steps.size(), 3u);
  }
  // Fault-injection kinds (11..15) are part of the repro surface; the first
  // unassigned kind is rejected.
  {
    const auto faulted = parse_repro(
        "rvaas-fuzz-v1 cfg=0,4,1,0,0,1 steps=11:0:3:0;12:1:2:0;13:0:7:2;"
        "14:2:0:0;15:0:0:0");
    ASSERT_TRUE(faulted.has_value());
    EXPECT_EQ(faulted->steps.size(), 5u);
    EXPECT_EQ(faulted->steps.front().kind, StepKind::InjectDrop);
    EXPECT_EQ(faulted->steps.back().kind, StepKind::HealFaults);
  }
  EXPECT_FALSE(
      parse_repro("rvaas-fuzz-v1 cfg=0,4,1,0,0,1 steps=16:0:0:0").has_value());
  // The fault-free generator table is frozen: asking for faults must change
  // nothing when the flag is off, and a faulted schedule always ends with
  // the forced HealFaults (the convergence clause's guaranteed shot).
  {
    const Schedule plain = generate_schedule(kSweepSeed);
    const Schedule same = generate_schedule(kSweepSeed, kMaxGridSizeCode,
                                            /*include_faults=*/false);
    EXPECT_EQ(plain, same);
    const Schedule faulted = generate_schedule(kSweepSeed, kMaxGridSizeCode,
                                               /*include_faults=*/true);
    ASSERT_FALSE(faulted.steps.empty());
    EXPECT_EQ(faulted.steps.back().kind, StepKind::HealFaults);
    const auto round = parse_repro(faulted.repro());
    ASSERT_TRUE(round.has_value());
    EXPECT_EQ(*round, faulted);
  }
  EXPECT_FALSE(parse_repro("garbage").has_value());
  EXPECT_FALSE(parse_repro("rvaas-fuzz-v1 cfg=9,1,1,9,9,1 steps=").has_value());
  EXPECT_FALSE(
      parse_repro("rvaas-fuzz-v1 cfg=0,4,1,0,0,1 steps=99:1:2:3").has_value());
  // Out-of-range numeric fields must be rejected here, not abort inside
  // topology/scenario construction during replay.
  EXPECT_FALSE(
      parse_repro("rvaas-fuzz-v1 cfg=0,0,1,0,0,1 steps=4:0:0:0").has_value());
  EXPECT_FALSE(
      parse_repro("rvaas-fuzz-v1 cfg=1,99,1,0,0,1 steps=").has_value());
  EXPECT_FALSE(
      parse_repro("rvaas-fuzz-v1 cfg=0,4,0,0,0,1 steps=").has_value());
  EXPECT_FALSE(
      parse_repro("rvaas-fuzz-v1 cfg=2,7,1,0,0,1 steps=").has_value());
}

/// The tier-1 sweep: kSweepSchedules randomized schedules, every oracle
/// green, and the generator demonstrably exercising the adversarial
/// surface (attacks, churn, push verification, federation, cache resets).
TEST(Fuzz, SweepAllOraclesGreen) {
  std::uint64_t attacks = 0, reverted = 0, churn = 0, notifications = 0,
                detections = 0, federation = 0, resets = 0, queries = 0,
                index_checks = 0, mass_subscribed = 0;
  for (int i = 0; i < kSweepSchedules; ++i) {
    const std::uint64_t seed = kSweepSeed + static_cast<std::uint64_t>(i);
    const Schedule schedule = generate_schedule(seed);
    const FuzzReport report = run_schedule(schedule);
    ASSERT_FALSE(report.failure.has_value())
        << "seed " << seed << " failed " << describe(schedule, *report.failure);
    attacks += report.attacks_launched;
    reverted += report.attacks_reverted;
    churn += report.churn_applied;
    notifications += report.notifications_compared;
    detections += report.detection_checks;
    federation += report.federation_checks;
    resets += report.snapshot_resets;
    queries += report.queries_checked;
    index_checks += report.index_checks;
    mass_subscribed += report.mass_subscribed;
  }
  // Coverage floors: a generator regression that stops hitting a surface
  // must fail loudly, not silently shrink the sweep's value.
  EXPECT_GE(attacks, 100u);
  EXPECT_GE(reverted, 20u);
  EXPECT_GE(churn, 250u);
  EXPECT_GE(notifications, 150u);
  EXPECT_GE(detections, 200u);
  EXPECT_GE(federation, 300u);
  EXPECT_GE(resets, 30u);
  EXPECT_GE(queries, 100u);
  // Oracle (e) runs after every step of every schedule, and the
  // mass-subscribe step must actually grow the registries it checks.
  EXPECT_GE(index_checks, 1000u);
  EXPECT_GE(mass_subscribed, 200u);
}

/// The fault sweep: randomized schedules including control-channel fault
/// steps (drop/delay/partition/crash/heal), all oracles green — in
/// particular oracle (f): non-degraded verdicts byte-identical to the
/// fault-free reference, sustained hard faults degraded-marked, and
/// post-heal reconvergence within the bounded settle loop.
TEST(Fuzz, FaultSweepAllOraclesGreen) {
  std::uint64_t injected = 0, heals = 0, checks = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t seed = kSweepSeed + 100000 + static_cast<std::uint64_t>(i);
    const Schedule schedule =
        generate_schedule(seed, kMaxGridSizeCode, /*include_faults=*/true);
    const FuzzReport report = run_schedule(schedule);
    ASSERT_FALSE(report.failure.has_value())
        << "seed " << seed << " failed " << describe(schedule, *report.failure);
    injected += report.faults_injected;
    heals += report.fault_heals;
    checks += report.fault_checks;
  }
  // Coverage floors (measured ~1.8 faults and ~44 checks per schedule; the
  // suite-level acceptance floor for oracle (f) is 500 checks).
  EXPECT_GE(injected, 80u);
  EXPECT_GE(heals, 100u);  // every fault schedule ends with a forced heal
  EXPECT_GE(checks, 500u);
}

/// Pinned schedules that exercise named interleavings; they must stay green
/// and replayable forever (the repro format is a compatibility surface).
TEST(Fuzz, ReproCorpusStaysGreen) {
  const char* corpus[] = {
      // Exfiltration installed, churned around, queried, then reverted.
      "rvaas-fuzz-v1 cfg=0,4,2,0,0,42 "
      "steps=7:0:0:1;1:5:2:7;5:0:0:0;4:1:0:0;8:0:0:0;0:3:0:0",
      // Federation walk with churn on both sides of the border.
      "rvaas-fuzz-v1 cfg=0,4,1,1,1,77 "
      "steps=1:1:3:16;1:4:0:8;5:2:1:0;0:2:0:0;1:0:1:40;9:0:0:0",
      // Suppression over a ring with subscriptions and an unsubscribe.
      "rvaas-fuzz-v1 cfg=1,5,2,2,0,5 "
      "steps=5:0:1:0;7:5:0:0;4:0:2:0;8:0:0:0;4:0:2:0;6:0:0:0",
      // Flapping burst launched, settled, reverted (window + history check).
      "rvaas-fuzz-v1 cfg=0,5,1,0,0,9 steps=7:4:2:1;0:5:0:0;8:0:0:0;4:2:4:0",
      // Grid with meter churn, breach attempt and a snapshot reset.
      "rvaas-fuzz-v1 cfg=2,0,2,1,0,64 "
      "steps=1:2:1:9;3:1:4:2;7:3:1:0;9:0:0:0;5:1:3:0;4:2:0:0",
      // Mass-subscribed registry (two tenants) under churn and an identity
      // reset: multi-entry index shards for the index-vs-linear oracle.
      "rvaas-fuzz-v1 cfg=0,4,2,0,0,20260807 "
      "steps=10:1:6:3;1:2:1:5;0:4:0:0;10:9:2:11;1:3:2:20;9:0:0:0;6:0:0:0",
  };
  for (const char* repro : corpus) {
    const auto parsed = parse_repro(repro);
    ASSERT_TRUE(parsed.has_value()) << repro;
    const FuzzReport report = replay(repro);
    EXPECT_FALSE(report.failure.has_value())
        << repro << "\nfailed " << describe(*parsed, *report.failure);
  }
}

/// The ROADMAP cube-blowup repro: adversarial churn on a 3x2 grid that
/// drove the pre-canonical HSA representation into multi-minute single
/// traversals. With bounded lazy diffs + in-BFS canonical merging it must
/// stay green AND fast. The guard is generous (sanitizer CI) — the release
/// bench (bench_hsa) gates the tighter sub-second budget.
TEST(Fuzz, CubeBlowupReproStaysFastAndGreen) {
  constexpr const char* kRepro =
      "rvaas-fuzz-v1 cfg=2,1,1,2,0,20260850 "
      "steps=9:37447:42126:52008;1:30128:2473:47484;1:23200:20225:30014;"
      "7:7052:2085:59801;4:24507:63379:38529";
  const auto parsed = parse_repro(kRepro);
  ASSERT_TRUE(parsed.has_value());

  const auto start = std::chrono::steady_clock::now();
  const FuzzReport report = replay(kRepro);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_FALSE(report.failure.has_value())
      << describe(*parsed, *report.failure);
  EXPECT_LT(elapsed.count(), 10000)
      << "cube-blowup repro regressed into the representation wall";
}

/// Fault-injection drill: freeze a cache tier's invalidation and the
/// differential oracles must catch it, and the shrinker must reduce the
/// failure to a small self-contained repro that flips with the fault.
class FuzzFaultInjection : public ::testing::Test {
 protected:
  void TearDown() override {
    core::CompiledModelCache::test_fault_freeze_invalidation(false);
    core::ReachCache::test_fault_freeze_invalidation(false);
    core::PropertyMonitor::test_fault_freeze_index(false);
  }

  /// Finds a failing schedule under the active fault, shrinks it, and
  /// checks the repro flips with the fault switch.
  void expect_caught_and_shrunk(void (*set_fault)(bool)) {
    set_fault(true);
    std::optional<Schedule> failing;
    for (std::uint64_t i = 0; i < 25 && !failing; ++i) {
      const Schedule schedule = generate_schedule(kSweepSeed + i);
      if (run_schedule(schedule).failure) failing = schedule;
    }
    ASSERT_TRUE(failing.has_value())
        << "a frozen cache invalidation path never tripped any oracle";

    const auto shrunk = shrink(*failing);
    ASSERT_TRUE(shrunk.has_value());
    EXPECT_LE(shrunk->schedule.steps.size(), 10u)
        << "shrunk repro too large: " << shrunk->schedule.repro();

    // The minimal repro is self-contained: it replays to a failure from its
    // string alone while the fault is active...
    const std::string repro = shrunk->schedule.repro();
    EXPECT_TRUE(replay(repro).failure.has_value()) << repro;
    // ...and is green once the fault is removed (the schedule itself is
    // innocent; the cache was broken).
    set_fault(false);
    EXPECT_FALSE(replay(repro).failure.has_value()) << repro;
  }
};

TEST_F(FuzzFaultInjection, BrokenModelCacheCaughtAndShrunk) {
  expect_caught_and_shrunk(
      &core::CompiledModelCache::test_fault_freeze_invalidation);
}

TEST_F(FuzzFaultInjection, BrokenReachCacheCaughtAndShrunk) {
  expect_caught_and_shrunk(&core::ReachCache::test_fault_freeze_invalidation);
}

TEST_F(FuzzFaultInjection, StaleMonitorIndexCaughtAndShrunk) {
  // Freeze the inverted footprint index's maintenance: subscriptions still
  // get evaluated (unevaluated_ bookkeeping is not frozen), but their
  // footprints never enter the index, so churn on them selects nothing —
  // a stale index that oracle (e) must catch and the shrinker must reduce,
  // mirroring the frozen-cache drills above.
  expect_caught_and_shrunk(&core::PropertyMonitor::test_fault_freeze_index);
}

}  // namespace
}  // namespace rvaas::fuzz
