// Topology: wiring plan, host attachment, port classification, geo data.

#include <gtest/gtest.h>

#include "sdn/topology.hpp"

namespace rvaas::sdn {
namespace {

Topology two_switches() {
  Topology t;
  t.add_switch(SwitchId(1), 4, GeoLocation{52.5, 13.4, "DE"});
  t.add_switch(SwitchId(2), 4, GeoLocation{48.9, 2.4, "FR"});
  t.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)});
  t.attach_host(HostId(10), {SwitchId(1), PortNo(1)});
  t.attach_host(HostId(11), {SwitchId(2), PortNo(1)});
  return t;
}

TEST(Topology, SwitchRegistration) {
  const Topology t = two_switches();
  EXPECT_TRUE(t.has_switch(SwitchId(1)));
  EXPECT_FALSE(t.has_switch(SwitchId(3)));
  EXPECT_EQ(t.num_ports(SwitchId(1)), 4u);
  EXPECT_EQ(t.switch_count(), 2u);
  EXPECT_EQ(t.geo(SwitchId(1)).jurisdiction, "DE");
}

TEST(Topology, DuplicateSwitchRejected) {
  Topology t;
  t.add_switch(SwitchId(1), 4);
  EXPECT_THROW(t.add_switch(SwitchId(1), 4), util::InvariantViolation);
  EXPECT_THROW(t.add_switch(SwitchId(2), 0), util::InvariantViolation);
}

TEST(Topology, LinkPeerSymmetric) {
  const Topology t = two_switches();
  const PortRef a{SwitchId(1), PortNo(0)};
  const PortRef b{SwitchId(2), PortNo(0)};
  EXPECT_EQ(t.link_peer(a), b);
  EXPECT_EQ(t.link_peer(b), a);
  EXPECT_FALSE(t.link_peer({SwitchId(1), PortNo(2)}).has_value());
}

TEST(Topology, LinkValidation) {
  Topology t;
  t.add_switch(SwitchId(1), 2);
  t.add_switch(SwitchId(2), 2);
  const PortRef a{SwitchId(1), PortNo(0)};
  const PortRef b{SwitchId(2), PortNo(0)};
  t.add_link(a, b);
  // Port already wired.
  EXPECT_THROW(t.add_link(a, {SwitchId(2), PortNo(1)}), util::InvariantViolation);
  // Nonexistent port.
  EXPECT_THROW(t.add_link({SwitchId(1), PortNo(5)}, {SwitchId(2), PortNo(1)}),
               util::InvariantViolation);
  // Self-link.
  EXPECT_THROW(t.add_link({SwitchId(1), PortNo(1)}, {SwitchId(1), PortNo(1)}),
               util::InvariantViolation);
}

TEST(Topology, HostAttachment) {
  const Topology t = two_switches();
  EXPECT_EQ(t.host_at({SwitchId(1), PortNo(1)}), HostId(10));
  EXPECT_FALSE(t.host_at({SwitchId(1), PortNo(2)}).has_value());
  EXPECT_EQ(t.host_ports(HostId(10)),
            (std::vector<PortRef>{{SwitchId(1), PortNo(1)}}));
  EXPECT_TRUE(t.host_ports(HostId(99)).empty());
  EXPECT_EQ(t.hosts().size(), 2u);
}

TEST(Topology, MultiHomedHost) {
  Topology t = two_switches();
  t.attach_host(HostId(10), {SwitchId(2), PortNo(2)});
  EXPECT_EQ(t.host_ports(HostId(10)).size(), 2u);
}

TEST(Topology, HostOnWiredPortRejected) {
  Topology t = two_switches();
  EXPECT_THROW(t.attach_host(HostId(12), {SwitchId(1), PortNo(0)}),
               util::InvariantViolation);
  EXPECT_THROW(t.attach_host(HostId(12), {SwitchId(1), PortNo(1)}),
               util::InvariantViolation);
}

TEST(Topology, PortClassification) {
  const Topology t = two_switches();
  EXPECT_EQ(t.internal_ports(SwitchId(1)),
            (std::vector<PortRef>{{SwitchId(1), PortNo(0)}}));
  EXPECT_EQ(t.access_ports(SwitchId(1)),
            (std::vector<PortRef>{{SwitchId(1), PortNo(1)}}));
  EXPECT_EQ(t.dark_ports(SwitchId(1)).size(), 2u);
  EXPECT_EQ(t.all_access_points().size(), 2u);
}

TEST(Topology, GeoUpdate) {
  Topology t = two_switches();
  t.set_geo(SwitchId(1), GeoLocation{0, 0, "US"});
  EXPECT_EQ(t.geo(SwitchId(1)).jurisdiction, "US");
  EXPECT_THROW(t.geo(SwitchId(9)), util::InvariantViolation);
}

TEST(Topology, LinkLatencyStored) {
  Topology t;
  t.add_switch(SwitchId(1), 2);
  t.add_switch(SwitchId(2), 2);
  t.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)},
             7 * sim::kMicrosecond);
  EXPECT_EQ(t.link_latency({SwitchId(1), PortNo(0)}), 7 * sim::kMicrosecond);
  EXPECT_THROW(t.link_latency({SwitchId(1), PortNo(1)}),
               util::InvariantViolation);
}

}  // namespace
}  // namespace rvaas::sdn
