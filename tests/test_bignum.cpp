// BigUInt arithmetic: unit tests plus randomized property sweeps that
// cross-check mul/divmod/modpow against 64-bit native arithmetic and against
// algebraic identities at larger widths.

#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace rvaas::crypto {
namespace {

using util::Rng;

BigUInt random_bits(Rng& rng, std::size_t max_bits) {
  const std::size_t bits = 1 + rng.below(max_bits);
  BigUInt bound = BigUInt(1).shift_left(bits);
  return BigUInt::random_below(rng, bound);
}

TEST(BigUInt, ZeroAndSmallValues) {
  EXPECT_TRUE(BigUInt{}.is_zero());
  EXPECT_TRUE(BigUInt(0).is_zero());
  EXPECT_FALSE(BigUInt(1).is_zero());
  EXPECT_EQ(BigUInt(5).to_u64(), 5u);
  EXPECT_EQ(BigUInt{}.bit_length(), 0u);
  EXPECT_EQ(BigUInt(1).bit_length(), 1u);
  EXPECT_EQ(BigUInt(255).bit_length(), 8u);
  EXPECT_EQ(BigUInt(256).bit_length(), 9u);
}

TEST(BigUInt, U64RoundTrip) {
  const std::uint64_t v = 0xfedcba9876543210ULL;
  EXPECT_EQ(BigUInt(v).to_u64(), v);
}

TEST(BigUInt, HexRoundTrip) {
  const std::string hex = "dfd59ed7c49edcdf77a671bc331bf7855f8d5185343ec3b9";
  EXPECT_EQ(BigUInt::from_hex(hex).to_hex(), hex);
  EXPECT_EQ(BigUInt::from_hex("0").to_hex(), "0");
  EXPECT_EQ(BigUInt::from_hex("00ff").to_hex(), "ff");
}

TEST(BigUInt, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const BigUInt v = random_bits(rng, 300);
    EXPECT_EQ(BigUInt::from_bytes(v.to_bytes()), v);
    EXPECT_EQ(BigUInt::from_bytes(v.to_bytes(64)), v);  // padded
  }
}

TEST(BigUInt, ToBytesFixedLengthThrowsWhenTooSmall) {
  EXPECT_THROW(BigUInt(0x1234).to_bytes(1), util::InvariantViolation);
  EXPECT_EQ(BigUInt(0x1234).to_bytes(2), (util::Bytes{0x12, 0x34}));
}

TEST(BigUInt, CompareOrdering) {
  EXPECT_LT(BigUInt(3), BigUInt(4));
  EXPECT_GT(BigUInt(1).shift_left(100), BigUInt(~std::uint64_t{0}));
  EXPECT_EQ(BigUInt(7).compare(BigUInt(7)), 0);
}

TEST(BigUInt, AddSubInverseProperty) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const BigUInt a = random_bits(rng, 256);
    const BigUInt b = random_bits(rng, 256);
    const BigUInt sum = a.add(b);
    EXPECT_EQ(sum.sub(b), a);
    EXPECT_EQ(sum.sub(a), b);
  }
}

TEST(BigUInt, SubUnderflowThrows) {
  EXPECT_THROW(BigUInt(3).sub(BigUInt(4)), util::InvariantViolation);
}

TEST(BigUInt, MulMatchesNativeU64) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_u64() >> 33;  // 31 bits
    const std::uint64_t b = rng.next_u64() >> 33;
    EXPECT_EQ(BigUInt(a).mul(BigUInt(b)).to_u64(), a * b);
  }
}

TEST(BigUInt, MulCommutativeAndDistributive) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const BigUInt a = random_bits(rng, 200);
    const BigUInt b = random_bits(rng, 200);
    const BigUInt c = random_bits(rng, 200);
    EXPECT_EQ(a.mul(b), b.mul(a));
    EXPECT_EQ(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
  }
}

TEST(BigUInt, ShiftsInverse) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const BigUInt a = random_bits(rng, 300);
    const std::size_t k = rng.below(200);
    EXPECT_EQ(a.shift_left(k).shift_right(k), a);
  }
}

TEST(BigUInt, DivModMatchesNativeU64) {
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = 1 + rng.below(1u << 31);
    const auto [q, r] = BigUInt(a).divmod(BigUInt(b));
    EXPECT_EQ(q.to_u64(), a / b);
    EXPECT_EQ(r.to_u64(), a % b);
  }
}

// The defining property of division: a == q*b + r with 0 <= r < b. This
// sweeps multi-limb divisors, exercising the Knuth D corner cases.
TEST(BigUInt, DivModPropertyLargeOperands) {
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const BigUInt a = random_bits(rng, 512);
    BigUInt b = random_bits(rng, 280);
    if (b.is_zero()) b = BigUInt(1);
    const auto [q, r] = a.divmod(b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q.mul(b).add(r), a);
  }
}

TEST(BigUInt, DivModQhatCorrectionEdge) {
  // Dividend engineered so the top limbs of u and v are equal, which forces
  // the qhat >= base branch in Knuth D.
  const BigUInt v = BigUInt::from_hex("ffffffff00000000ffffffff");
  const BigUInt u = v.shift_left(64).add(v);
  const auto [q, r] = u.divmod(v);
  EXPECT_EQ(q.mul(v).add(r), u);
  EXPECT_LT(r, v);
}

TEST(BigUInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt(5).divmod(BigUInt{}), util::InvariantViolation);
}

TEST(BigUInt, ModPowMatchesNative) {
  Rng rng(8);
  auto native_modpow = [](std::uint64_t b, std::uint64_t e, std::uint64_t m) {
    std::uint64_t result = 1 % m;
    b %= m;
    while (e) {
      if (e & 1) result = (__uint128_t(result) * b) % m;
      b = (__uint128_t(b) * b) % m;
      e >>= 1;
    }
    return result;
  };
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t b = rng.next_u64() >> 16;
    const std::uint64_t e = rng.next_u64() >> 48;
    const std::uint64_t m = 2 + rng.below(1u << 30);
    EXPECT_EQ(BigUInt::modpow(BigUInt(b), BigUInt(e), BigUInt(m)).to_u64(),
              native_modpow(b, e, m));
  }
}

TEST(BigUInt, ModPowFermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p, gcd(a, p) = 1.
  const BigUInt p = BigUInt::from_hex(
      "dfd59ed7c49edcdf77a671bc331bf7855f8d5185343ec3b97bc31878ef175983");
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    const BigUInt a =
        BigUInt::random_below(rng, p.sub(BigUInt(2))).add(BigUInt(1));
    EXPECT_EQ(BigUInt::modpow(a, p.sub(BigUInt(1)), p), BigUInt(1));
  }
}

TEST(BigUInt, ModAddReduces) {
  const BigUInt m(100);
  EXPECT_EQ(BigUInt::modadd(BigUInt(60), BigUInt(70), m), BigUInt(30));
  EXPECT_EQ(BigUInt::modadd(BigUInt(10), BigUInt(20), m), BigUInt(30));
}

TEST(BigUInt, RandomBelowStaysInBounds) {
  Rng rng(10);
  const BigUInt bound = BigUInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigUInt::random_below(rng, bound), bound);
  }
}

TEST(BigUInt, PrimalityKnownPrimesAndComposites) {
  Rng rng(11);
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(2), rng));
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(3), rng));
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(65537), rng));
  EXPECT_TRUE(BigUInt::is_probable_prime(BigUInt(0xffffffffffffffc5ULL), rng));
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(1), rng));
  EXPECT_FALSE(BigUInt::is_probable_prime(BigUInt(65537ULL * 3), rng));
  EXPECT_FALSE(BigUInt::is_probable_prime(
      BigUInt(6700417ULL).mul(BigUInt(6700417ULL)), rng));
}

TEST(BigUInt, DefaultGroupPrimesArePrime) {
  Rng rng(12);
  const BigUInt p = BigUInt::from_hex(
      "dfd59ed7c49edcdf77a671bc331bf7855f8d5185343ec3b97bc31878ef175983");
  const BigUInt q = BigUInt::from_hex(
      "6feacf6be24f6e6fbbd338de198dfbc2afc6a8c29a1f61dcbde18c3c778bacc1");
  EXPECT_TRUE(BigUInt::is_probable_prime(p, rng, 16));
  EXPECT_TRUE(BigUInt::is_probable_prime(q, rng, 16));
  EXPECT_EQ(q.mul(BigUInt(2)).add(BigUInt(1)), p);  // safe prime structure
}

}  // namespace
}  // namespace rvaas::crypto
