// util::ThreadPool / util::parallel_for: full coverage of the index range,
// exactly-once execution, inline fallbacks, reuse, and exception transport.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace rvaas::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::size_t sum = 0;  // no synchronization: must run on this thread
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(257, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 257u * 256u / 2);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed loop.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ConcurrentLoopsOnSharedPoolBothComplete) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> a(2000), b(2000);
  std::thread other([&] {
    pool.parallel_for(a.size(), [&](std::size_t i) {
      a[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  pool.parallel_for(b.size(), [&](std::size_t i) {
    b[i].fetch_add(1, std::memory_order_relaxed);
  });
  other.join();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].load(), 1) << "a[" << i << "]";
    ASSERT_EQ(b[i].load(), 1) << "b[" << i << "]";
  }
}

TEST(ParallelForHelper, SequentialFallbackPreservesOrder) {
  std::vector<std::size_t> order;
  parallel_for(1, 5, [&](std::size_t i) { order.push_back(i); });
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ParallelForHelper, ParallelCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(8, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace rvaas::util
