// Discrete-event simulator: ordering, determinism, cancellation, deadlines.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.hpp"

namespace rvaas::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoop, SimultaneousEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time second_fire = 0;
  loop.schedule_at(50, [&] {
    loop.schedule_after(25, [&] { second_fire = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(second_fire, 75u);
}

TEST(EventLoop, SchedulingInPastThrows) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(50, [] {}), util::InvariantViolation);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 20u);
  loop.run_until(35);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 35u);
}

TEST(EventLoop, RunUntilAdvancesTimeEvenWithoutEvents) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000u);
}

TEST(EventLoop, StopHaltsRun) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(1, [&] {
    ++count;
    loop.stop();
  });
  loop.schedule_at(2, [&] { ++count; });
  loop.run();
  EXPECT_EQ(count, 1);
  loop.run();  // resumes with remaining events
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, EventsCanScheduleChains) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) loop.schedule_after(5, chain);
  };
  loop.schedule_at(0, chain);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), 45u);
}

TEST(EventLoop, PendingCountsUnrunEvents) {
  EventLoop loop;
  EXPECT_EQ(loop.pending(), 0u);
  loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.run_until(15);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, DeterministicAcrossRuns) {
  auto run_once = [] {
    EventLoop loop;
    std::vector<Time> fire_times;
    for (int i = 0; i < 20; ++i) {
      loop.schedule_at(static_cast<Time>((i * 37) % 100),
                       [&fire_times, &loop] { fire_times.push_back(loop.now()); });
    }
    loop.run();
    return fire_times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace rvaas::sim
