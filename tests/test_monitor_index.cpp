// Equivalence oracle for the monitor's inverted footprint index: after
// every randomized subscribe / unsubscribe / churn / sweep / identity step,
// indexed_wakeups() must equal linear_wakeups() byte-for-byte — the index is
// an O(affected) accelerator over the retired O(subs) footprint scan, never
// a different selection (the reference-path pattern of testing/reference_hsa
// applied to the monitor). Also covers the fallback anchors (snapshot copy,
// epoch regression), index-entry bookkeeping across replacement and
// unsubscribe, and the test-only stale-index fault the fuzzer drills.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "controlplane/routing.hpp"
#include "rvaas/geo.hpp"
#include "rvaas/monitor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rvaas::core {
namespace {

using sdn::Field;
using sdn::HostId;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

/// The 3-switch line of test_engine/test_monitor: h10 - s1 - s2 - s3 - h11,
/// h12 at s2. Small enough that evaluations are instant, shaped enough that
/// footprints genuinely differ per access point and constraint.
sdn::Topology make_topo() {
  sdn::Topology topo;
  topo.add_switch(SwitchId(1), 4, {50.0, 8.0, "DE"});
  topo.add_switch(SwitchId(2), 4, {48.8, 2.3, "FR"});
  topo.add_switch(SwitchId(3), 4, {40.7, -74.0, "US"});
  topo.add_link({SwitchId(1), PortNo(0)}, {SwitchId(2), PortNo(0)});
  topo.add_link({SwitchId(2), PortNo(1)}, {SwitchId(3), PortNo(0)});
  topo.attach_host(HostId(10), {SwitchId(1), PortNo(1)});
  topo.attach_host(HostId(11), {SwitchId(3), PortNo(1)});
  topo.attach_host(HostId(12), {SwitchId(2), PortNo(2)});
  return topo;
}

void seed_routing(SnapshotManager& snap, std::uint64_t& next_id) {
  const auto add_rule = [&](SwitchId sw, Match match,
                            sdn::ActionList actions) {
    sdn::FlowEntry e;
    e.id = sdn::FlowEntryId(next_id++);
    e.priority = 5;
    e.match = std::move(match);
    e.actions = std::move(actions);
    snap.apply_update({sw, sdn::FlowUpdateKind::Added, e}, 0);
  };
  add_rule(SwitchId(1), Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  add_rule(SwitchId(2), Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
  add_rule(SwitchId(3), Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
  add_rule(SwitchId(3), Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  add_rule(SwitchId(2), Match().in_port(PortNo(1)), {sdn::output(PortNo(0))});
  add_rule(SwitchId(1), Match().in_port(PortNo(0)), {sdn::output(PortNo(1))});
}

/// Engine-level harness: one monitor over one snapshot, with the linear
/// reference consulted after every mutation.
class IndexOracle : public ::testing::Test {
 protected:
  IndexOracle()
      : topo_(make_topo()),
        engine_(topo_, EngineConfig{}),
        monitor_(engine_),
        pool_(0) {
    seed_routing(snap_, next_entry_id_);
    addressing_.assign(HostId(10));
    addressing_.assign(HostId(11));
    addressing_.assign(HostId(12));
    ctx_.geo = &geo_;
    ctx_.addressing = &addressing_;
  }

  void TearDown() override { PropertyMonitor::test_fault_freeze_index(false); }

  /// The oracle: both selections, in both plain and force_all form, must be
  /// identical Key lists. Returns the selection so steps can assert on it.
  std::vector<PropertyMonitor::Key> expect_equivalent(const char* where) {
    const auto indexed = monitor_.indexed_wakeups(snap_);
    const auto linear = monitor_.linear_wakeups(snap_);
    EXPECT_EQ(indexed, linear) << where;
    EXPECT_EQ(monitor_.indexed_wakeups(snap_, /*force_all=*/true),
              monitor_.linear_wakeups(snap_, /*force_all=*/true))
        << where << " (force_all)";
    return indexed;
  }

  /// Index-entry bookkeeping: the entry count must equal the summed
  /// footprint sizes of evaluated subscriptions (the index invariant's
  /// "entries exist exactly for registry footprints").
  void expect_entry_count(const char* where) {
    std::size_t expected = 0;
    for (const auto& key : all_keys_) {
      const auto* sub = monitor_.find(key.first, key.second);
      if (sub != nullptr && sub->evaluated) expected += sub->footprint.size();
    }
    EXPECT_EQ(monitor_.index_entries(), expected) << where;
  }

  void subscribe(std::uint64_t id, HostId client, std::uint32_t shape) {
    PropertyMonitor::Subscription sub;
    sub.id = id;
    sub.client = client;
    sub.request_point = topo_.host_ports(client).front();
    switch (shape % 4) {
      case 0:
        sub.property.kind = QueryKind::ReachableEndpoints;
        break;
      case 1:
        sub.property.kind = QueryKind::Isolation;
        break;
      case 2:
        sub.property.kind = QueryKind::TransferSummary;
        sub.property.constraint =
            Match().exact(Field::IpProto, sdn::kIpProtoUdp);
        break;
      default:
        sub.property.kind = QueryKind::PathLength;
        sub.property.peer = HostId(11);
        break;
    }
    monitor_.subscribe(std::move(sub));
    all_keys_.insert({client, id});
  }

  void churn(SwitchId sw, std::uint32_t salt) {
    sdn::FlowEntry e;
    e.id = sdn::FlowEntryId(next_entry_id_++);
    e.priority = static_cast<std::uint16_t>(1 + salt % 4);
    e.match = Match().exact(Field::L4Dst, 7000 + salt % 8);
    e.actions = {sdn::drop()};
    snap_.apply_update({sw, sdn::FlowUpdateKind::Added, e}, 0);
  }

  sdn::Topology topo_;
  SnapshotManager snap_;
  QueryEngine engine_;
  PropertyMonitor monitor_;
  util::ThreadPool pool_;
  DisclosedGeo geo_{topo_};
  control::HostAddressing addressing_;
  QueryEngine::EvalContext ctx_;
  std::uint64_t next_entry_id_ = 1;
  std::set<PropertyMonitor::Key> all_keys_;
};

TEST_F(IndexOracle, RandomizedScheduleStaysEquivalent) {
  // 400 random steps across subscribe / unsubscribe / churn / sweep /
  // force_all sweep / identity reset; the oracle and the entry-count
  // invariant are checked after every single one.
  util::Rng rng(20260808);
  std::uint64_t next_sub_id = 1;
  const HostId clients[] = {HostId(10), HostId(11), HostId(12)};
  const SwitchId switches[] = {SwitchId(1), SwitchId(2), SwitchId(3)};

  for (int step = 0; step < 400; ++step) {
    SCOPED_TRACE(step);
    const std::uint64_t w = rng.below(100);
    if (w < 25) {
      subscribe(next_sub_id++, clients[rng.below(3)],
                static_cast<std::uint32_t>(rng.below(16)));
    } else if (w < 35 && !all_keys_.empty()) {
      // Unsubscribe a random known key (may already be gone — that exercises
      // the unknown-key path too).
      auto it = all_keys_.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.below(all_keys_.size())));
      monitor_.unsubscribe(it->first, it->second);
    } else if (w < 45 && !all_keys_.empty()) {
      // Replacement under an existing key: a different property fingerprint
      // must drop the old footprint's index entries and re-enter
      // unevaluated_.
      auto it = all_keys_.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.below(all_keys_.size())));
      subscribe(it->second, it->first,
                static_cast<std::uint32_t>(rng.below(16)));
    } else if (w < 75) {
      churn(switches[rng.below(3)], static_cast<std::uint32_t>(rng.below(64)));
    } else if (w < 90) {
      monitor_.sweep(snap_, ctx_, pool_);
    } else if (w < 96) {
      monitor_.sweep(snap_, ctx_, pool_, /*force_all=*/true);
    } else {
      // Restart semantics: same content, fresh identity — the next selection
      // must take the linear fallback and still agree.
      snap_.reset_identity();
    }
    expect_equivalent("after step");
    expect_entry_count("after step");
  }

  // The schedule must actually have exercised the indexed fast path, not
  // just the fallback.
  EXPECT_GT(monitor_.stats().indexed_sweeps, 0u);
  EXPECT_GT(monitor_.stats().fallback_sweeps, 0u);
}

TEST_F(IndexOracle, SingleSwitchChurnWakesOnlyAffected) {
  // Two subscriptions with disjoint-ish footprints: churn on a switch only
  // one footprint contains must select exactly that one — O(affected), the
  // tentpole property, asserted through the public selection.
  subscribe(1, HostId(10), 0);  // ReachableEndpoints from s1
  subscribe(2, HostId(11), 0);  // ReachableEndpoints from s3
  monitor_.sweep(snap_, ctx_, pool_);
  expect_equivalent("baseline");

  const auto* left = monitor_.find(HostId(10), 1);
  const auto* right = monitor_.find(HostId(11), 2);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  ASSERT_TRUE(left->evaluated);
  ASSERT_TRUE(right->evaluated);

  churn(SwitchId(1), 7);
  const auto selected = expect_equivalent("after churn");
  const bool left_hit =
      std::find(left->footprint.begin(), left->footprint.end(),
                SwitchId(1)) != left->footprint.end();
  const bool right_hit =
      std::find(right->footprint.begin(), right->footprint.end(),
                SwitchId(1)) != right->footprint.end();
  std::vector<PropertyMonitor::Key> expected;
  if (left_hit) expected.push_back({HostId(10), 1});
  if (right_hit) expected.push_back({HostId(11), 2});
  EXPECT_EQ(selected, expected);
}

TEST_F(IndexOracle, SnapshotCopyFallsBackAndAgrees) {
  subscribe(1, HostId(10), 0);
  subscribe(2, HostId(12), 2);
  monitor_.sweep(snap_, ctx_, pool_);
  churn(SwitchId(2), 3);

  // A copied snapshot has a fresh instance id: the index anchors do not
  // apply, the selection must detect that and fall back — and still match
  // the linear scan over the copy.
  const SnapshotManager copy = snap_;
  const auto before = monitor_.stats().fallback_sweeps;
  EXPECT_EQ(monitor_.indexed_wakeups(copy), monitor_.linear_wakeups(copy));
  util::ThreadPool pool(0);
  monitor_.sweep(copy, ctx_, pool);
  EXPECT_GT(monitor_.stats().fallback_sweeps, before);
}

TEST_F(IndexOracle, UnsubscribeAndReplacementDropIndexEntries) {
  subscribe(1, HostId(10), 0);
  subscribe(2, HostId(11), 3);
  monitor_.sweep(snap_, ctx_, pool_);
  expect_entry_count("after baseline sweep");
  ASSERT_GT(monitor_.index_entries(), 0u);

  // Replacement with a different fingerprint drops the old entries until
  // the next sweep re-evaluates.
  const std::size_t with_both = monitor_.index_entries();
  subscribe(1, HostId(10), 2);
  EXPECT_LT(monitor_.index_entries(), with_both);
  expect_equivalent("after replacement");
  monitor_.sweep(snap_, ctx_, pool_);
  expect_entry_count("after re-evaluation");

  EXPECT_TRUE(monitor_.unsubscribe(HostId(11), 2));
  all_keys_.erase({HostId(11), 2});
  expect_entry_count("after unsubscribe");
  EXPECT_TRUE(monitor_.unsubscribe(HostId(10), 1));
  all_keys_.erase({HostId(10), 1});
  EXPECT_EQ(monitor_.index_entries(), 0u);
  expect_equivalent("empty registry");
}

TEST_F(IndexOracle, FrozenIndexDivergesFromLinearReference) {
  // The stale-index fault the fuzzer drills: freeze maintenance, let a
  // subscription get its baseline evaluation (footprint never indexed),
  // churn its footprint — the linear reference selects it, the frozen index
  // cannot. The oracle must see the divergence; unfreezing and sweeping
  // heals nothing by itself (the entries were never written), so the drill
  // also documents that the fault is sticky until the next re-evaluation
  // writes the footprint back.
  subscribe(1, HostId(10), 0);
  PropertyMonitor::test_fault_freeze_index(true);
  monitor_.sweep(snap_, ctx_, pool_);  // baseline evaluated, index frozen
  EXPECT_EQ(monitor_.index_entries(), 0u);

  churn(SwitchId(1), 1);
  churn(SwitchId(2), 2);
  churn(SwitchId(3), 3);  // every footprint is now dirty
  const auto linear = monitor_.linear_wakeups(snap_);
  const auto indexed = monitor_.indexed_wakeups(snap_);
  EXPECT_FALSE(linear.empty());
  EXPECT_NE(indexed, linear);

  // Unfreezing alone does NOT heal: the post-evaluation hook only rewrites
  // entries for footprints that changed, and the frozen-era footprint is
  // already in the registry — exactly why the fuzzer treats this fault as
  // sticky. A replacement (different fingerprint) resets the evaluation
  // state, and the next sweep indexes the fresh footprint.
  PropertyMonitor::test_fault_freeze_index(false);
  subscribe(1, HostId(10), 2);
  monitor_.sweep(snap_, ctx_, pool_);
  expect_equivalent("after replacement heal");
  expect_entry_count("after replacement heal");
}

}  // namespace
}  // namespace rvaas::core
