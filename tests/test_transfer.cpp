// Transfer-function compilation: priority shadowing, rewrites, multi-output,
// and agreement with the concrete switch pipeline.

#include <gtest/gtest.h>

#include "hsa/transfer.hpp"
#include "sdn/switch.hpp"

namespace rvaas::hsa {
namespace {

using sdn::Field;
using sdn::FlowEntry;
using sdn::HeaderFields;
using sdn::Match;
using sdn::PortNo;

FlowEntry entry(std::uint16_t priority, Match m, sdn::ActionList actions,
                std::uint64_t cookie = 0) {
  FlowEntry e;
  e.priority = priority;
  e.match = std::move(m);
  e.actions = std::move(actions);
  e.cookie = cookie;
  return e;
}

TEST(MatchToCube, TranslatesFieldConstraints) {
  const Wildcard w = match_to_cube(
      Match().exact(Field::Vlan, 5).prefix(Field::IpDst, 0x0a000000, 8));
  HeaderFields h;
  h.vlan = 5;
  h.ip_dst = 0x0a112233;
  EXPECT_TRUE(w.contains(h));
  h.ip_dst = 0x0b000000;
  EXPECT_FALSE(w.contains(h));
}

TEST(Transfer, SimpleForwardRule) {
  sdn::FlowTable table;
  table.add(entry(5, Match().exact(Field::Vlan, 1), {sdn::output(PortNo(2))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());

  const auto results = tf.apply(PortNo(0), HeaderSpace::all());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].kind, TfOutput::Kind::Port);
  EXPECT_EQ(results[0].port, PortNo(2));
  HeaderFields h;
  h.vlan = 1;
  EXPECT_TRUE(results[0].space.contains(h));
  h.vlan = 2;
  EXPECT_FALSE(results[0].space.contains(h));
}

TEST(Transfer, PriorityShadowing) {
  // High priority: vlan 1 -> port 1. Low priority: everything -> port 2.
  // The low-priority rule must NOT carry vlan 1 traffic.
  sdn::FlowTable table;
  table.add(entry(10, Match().exact(Field::Vlan, 1), {sdn::output(PortNo(1))}));
  table.add(entry(1, Match(), {sdn::output(PortNo(2))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());

  const auto results = tf.apply(PortNo(0), HeaderSpace::all());
  ASSERT_EQ(results.size(), 2u);
  HeaderFields vlan1;
  vlan1.vlan = 1;
  HeaderFields vlan2;
  vlan2.vlan = 2;

  EXPECT_EQ(results[0].port, PortNo(1));
  EXPECT_TRUE(results[0].space.contains(vlan1));
  EXPECT_FALSE(results[0].space.contains(vlan2));

  EXPECT_EQ(results[1].port, PortNo(2));
  EXPECT_FALSE(results[1].space.contains(vlan1));  // shadowed!
  EXPECT_TRUE(results[1].space.contains(vlan2));
}

TEST(Transfer, InPortScopedRules) {
  sdn::FlowTable table;
  table.add(entry(5, Match().in_port(PortNo(1)), {sdn::output(PortNo(2))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());

  EXPECT_EQ(tf.apply(PortNo(1), HeaderSpace::all()).size(), 1u);
  EXPECT_TRUE(tf.apply(PortNo(0), HeaderSpace::all()).empty());
}

TEST(Transfer, InPortRuleDoesNotShadowOtherPorts) {
  // A high-priority rule on port 1 must not shadow traffic entering port 0.
  sdn::FlowTable table;
  table.add(entry(10, Match().in_port(PortNo(1)), {sdn::drop()}));
  table.add(entry(1, Match(), {sdn::output(PortNo(3))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());

  const auto from0 = tf.apply(PortNo(0), HeaderSpace::all());
  ASSERT_EQ(from0.size(), 1u);
  EXPECT_EQ(from0[0].port, PortNo(3));
  EXPECT_TRUE(from0[0].space.contains(HeaderFields{}));

  const auto from1 = tf.apply(PortNo(1), HeaderSpace::all());
  EXPECT_TRUE(from1.empty());  // dropped
}

TEST(Transfer, RewriteAppliedPerOutput) {
  sdn::FlowTable table;
  table.add(entry(5, Match(),
                  {sdn::output(PortNo(1)), sdn::set_field(Field::Vlan, 7),
                   sdn::output(PortNo(2))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());

  const auto results = tf.apply(PortNo(0), HeaderSpace(match_to_cube(
                                               Match().exact(Field::Vlan, 3))));
  ASSERT_EQ(results.size(), 2u);
  HeaderFields vlan3;
  vlan3.vlan = 3;
  HeaderFields vlan7;
  vlan7.vlan = 7;
  EXPECT_TRUE(results[0].space.contains(vlan3));   // before rewrite
  EXPECT_FALSE(results[0].space.contains(vlan7));
  EXPECT_TRUE(results[1].space.contains(vlan7));   // after rewrite
  EXPECT_FALSE(results[1].space.contains(vlan3));
}

TEST(Transfer, ControllerOutputCarriesCookie) {
  sdn::FlowTable table;
  table.add(entry(5, Match(), {sdn::to_controller()}, 0xabc));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());
  const auto results = tf.apply(PortNo(0), HeaderSpace::all());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].kind, TfOutput::Kind::Controller);
  EXPECT_EQ(results[0].cookie, 0xabcu);
}

TEST(Transfer, DropStopsOutputs) {
  sdn::FlowTable table;
  table.add(entry(5, Match(), {sdn::drop(), sdn::output(PortNo(1))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());
  EXPECT_TRUE(tf.apply(PortNo(0), HeaderSpace::all()).empty());
}

TEST(Transfer, VlanPushPopCompile) {
  sdn::FlowTable table;
  table.add(entry(5, Match().exact(Field::Vlan, 0),
                  {sdn::PushVlanAction{100}, sdn::output(PortNo(1))}));
  table.add(entry(4, Match().exact(Field::Vlan, 100),
                  {sdn::PopVlanAction{}, sdn::output(PortNo(2))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());

  const auto results = tf.apply(PortNo(0), HeaderSpace::all());
  ASSERT_EQ(results.size(), 2u);
  HeaderFields tagged;
  tagged.vlan = 100;
  HeaderFields untagged;
  EXPECT_TRUE(results[0].space.contains(tagged));
  EXPECT_TRUE(results[1].space.contains(untagged));
}

TEST(Transfer, EmptyInputYieldsNothing) {
  sdn::FlowTable table;
  table.add(entry(5, Match(), {sdn::output(PortNo(1))}));
  const SwitchTransfer tf = SwitchTransfer::compile(table.entries());
  EXPECT_TRUE(tf.apply(PortNo(0), HeaderSpace{}).empty());
}

// Agreement property: for random tables and random packets, the transfer
// function predicts exactly the concrete pipeline's outputs.
class TfAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TfAgreement, MatchesConcretePipeline) {
  util::Rng rng(GetParam() + 500);
  sdn::SwitchSim sw(sdn::SwitchId(1), 8);
  const sdn::ControllerId ctl(1);

  // Random table: 12 rules over small vlan/proto/in_port domains.
  for (int i = 0; i < 12; ++i) {
    sdn::FlowMod mod;
    mod.priority = static_cast<std::uint16_t>(rng.below(4));
    if (rng.bernoulli(0.4)) mod.match.in_port(PortNo(static_cast<std::uint32_t>(rng.below(3))));
    if (rng.bernoulli(0.6)) mod.match.exact(Field::Vlan, rng.below(3));
    if (rng.bernoulli(0.4)) mod.match.exact(Field::IpProto, rng.below(2));
    const std::uint64_t kind = rng.below(4);
    if (kind == 0) {
      mod.actions = {sdn::output(PortNo(static_cast<std::uint32_t>(rng.below(8))))};
    } else if (kind == 1) {
      mod.actions = {sdn::set_field(Field::Vlan, rng.below(3)),
                     sdn::output(PortNo(static_cast<std::uint32_t>(rng.below(8))))};
    } else if (kind == 2) {
      mod.actions = {sdn::output(PortNo(static_cast<std::uint32_t>(rng.below(8)))),
                     sdn::output(PortNo(static_cast<std::uint32_t>(rng.below(8))))};
    } else {
      mod.actions = {sdn::to_controller()};
    }
    ASSERT_TRUE(sw.apply_flow_mod(ctl, mod).ok());
  }

  const SwitchTransfer tf = SwitchTransfer::compile(sw.table().entries());

  for (int i = 0; i < 60; ++i) {
    sdn::Packet p;
    p.hdr.vlan = rng.below(4);
    p.hdr.ip_proto = rng.below(3);
    const PortNo in_port(static_cast<std::uint32_t>(rng.below(4)));

    const sdn::PipelineOutput concrete = sw.process(in_port, p, 0, false);
    const auto logical = tf.apply(in_port, HeaderSpace(Wildcard::encode(p.hdr)));

    // Concrete forwards <=> logical port outputs containing the rewritten
    // header; concrete punts <=> logical controller outputs.
    std::size_t logical_ports = 0, logical_punts = 0;
    for (const auto& r : logical) {
      if (r.kind == TfOutput::Kind::Port) {
        ++logical_ports;
      } else {
        ++logical_punts;
      }
    }
    ASSERT_EQ(concrete.forwards.size(), logical_ports) << "packet " << i;
    ASSERT_EQ(concrete.punts.size(), logical_punts);

    for (std::size_t k = 0, lp = 0; k < concrete.forwards.size(); ++k) {
      // Find the k-th logical port output (order matches action order).
      while (logical[lp].kind != TfOutput::Kind::Port) ++lp;
      EXPECT_EQ(concrete.forwards[k].first, logical[lp].port);
      EXPECT_TRUE(logical[lp].space.contains(concrete.forwards[k].second.hdr));
      ++lp;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TfAgreement,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace rvaas::hsa
