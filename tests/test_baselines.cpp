// Baseline verifiers vs attacks: who detects what, honest vs adversarial
// provider — reproducing the paper's core comparative argument (§I).

#include <gtest/gtest.h>

#include "baselines/path_tagging.hpp"
#include "baselines/traceroute.hpp"
#include "baselines/trajectory_sampling.hpp"
#include "workload/scenario.hpp"

namespace rvaas::baselines {
namespace {

using sdn::HostId;
using sdn::SwitchId;
using workload::ScenarioConfig;
using workload::ScenarioRuntime;

ScenarioConfig line6() {
  ScenarioConfig config;
  config.generated = workload::linear(6);
  config.seed = 21;
  return config;
}

std::vector<SwitchId> expected_path(ScenarioRuntime& runtime, HostId src,
                                    HostId dst) {
  const auto a = runtime.network().topology().host_ports(src).front();
  const auto b = runtime.network().topology().host_ports(dst).front();
  return *control::shortest_switch_path(runtime.network().topology(), a.sw,
                                        b.sw);
}

TEST(Traceroute, DiscoversHonestPath) {
  ScenarioRuntime runtime(line6());
  runtime.provider().enable_traceroute_responder(/*spoof=*/false);
  const auto& hosts = runtime.hosts();

  TracerouteVerifier verifier(runtime.network(), runtime.addressing());
  const auto result = verifier.run(hosts[0], hosts[3], 8);

  const auto expected = expected_path(runtime, hosts[0], hosts[3]);
  ASSERT_GE(result.discovered.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.discovered[i], expected[i]) << "hop " << i;
  }
  EXPECT_FALSE(TracerouteVerifier::deviates(result, expected));
}

TEST(Traceroute, DetectsDiversionUnderHonestProvider) {
  ScenarioRuntime runtime(line6());
  runtime.provider().enable_traceroute_responder(/*spoof=*/false);
  const auto& hosts = runtime.hosts();

  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  TracerouteVerifier verifier(runtime.network(), runtime.addressing());
  const auto result = verifier.run(hosts[0], hosts[1], 12);
  EXPECT_TRUE(TracerouteVerifier::deviates(
      result, expected_path(runtime, hosts[0], hosts[1])));
}

TEST(Traceroute, FooledByAdversarialSpoofing) {
  // The paper's point: the compromised control plane answers probes with
  // the path the client expects.
  ScenarioRuntime runtime(line6());
  runtime.provider().enable_traceroute_responder(/*spoof=*/true);
  const auto& hosts = runtime.hosts();

  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  TracerouteVerifier verifier(runtime.network(), runtime.addressing());
  const auto result = verifier.run(hosts[0], hosts[1], 12);
  EXPECT_FALSE(TracerouteVerifier::deviates(
      result, expected_path(runtime, hosts[0], hosts[1])));
}

TEST(Traceroute, BlindToExfiltration) {
  // The probe follows the normal path; the cloned copy is invisible even
  // with an honest responder.
  ScenarioRuntime runtime(line6());
  runtime.provider().enable_traceroute_responder(/*spoof=*/false);
  const auto& hosts = runtime.hosts();

  attacks::ExfiltrationAttack attack(hosts[0], hosts[1]);
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  TracerouteVerifier verifier(runtime.network(), runtime.addressing());
  const auto result = verifier.run(hosts[0], hosts[1], 12);
  EXPECT_FALSE(TracerouteVerifier::deviates(
      result, expected_path(runtime, hosts[0], hosts[1])));
}

TEST(TrajectorySampling, HonestCollectorSeesDiversion) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();
  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  TrajectorySampling sampling(runtime.network(), runtime.addressing());
  const auto expected = expected_path(runtime, hosts[0], hosts[1]);
  const auto honest = sampling.sample_flow(hosts[0], hosts[1], expected,
                                           /*adversarial=*/false);
  EXPECT_TRUE(TrajectorySampling::deviates(honest, expected));
}

TEST(TrajectorySampling, CensoringCollectorHidesDiversion) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();
  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  TrajectorySampling sampling(runtime.network(), runtime.addressing());
  const auto expected = expected_path(runtime, hosts[0], hosts[1]);
  const auto censored = sampling.sample_flow(hosts[0], hosts[1], expected,
                                             /*adversarial=*/true);
  EXPECT_FALSE(TrajectorySampling::deviates(censored, expected));
  // Ground truth still shows the detour — it just never reaches the client.
  EXPECT_NE(censored.actual, censored.reported);
}

TEST(PathTagging, HonestTagRevealsDiversion) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();
  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  PathTagging tagging(runtime.network(), runtime.addressing());
  const auto expected = expected_path(runtime, hosts[0], hosts[1]);
  const auto honest = tagging.send_tagged(hosts[0], hosts[1], expected,
                                          /*adversarial=*/false);
  EXPECT_TRUE(honest.delivered);
  EXPECT_TRUE(PathTagging::deviates(honest, expected));
}

TEST(PathTagging, TagRewriteHidesDiversion) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();
  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  ASSERT_TRUE(attack.launch(runtime.provider(), runtime.network()).has_value());
  runtime.settle();

  PathTagging tagging(runtime.network(), runtime.addressing());
  const auto expected = expected_path(runtime, hosts[0], hosts[1]);
  const auto rewritten = tagging.send_tagged(hosts[0], hosts[1], expected,
                                             /*adversarial=*/true);
  EXPECT_FALSE(PathTagging::deviates(rewritten, expected));
  EXPECT_NE(rewritten.actual_tag, rewritten.observed_tag);
}

TEST(PathTagging, TagOfPathIsOrderSensitive) {
  EXPECT_NE(path_tag({SwitchId(1), SwitchId(2)}),
            path_tag({SwitchId(2), SwitchId(1)}));
  EXPECT_EQ(path_tag({SwitchId(1), SwitchId(2)}),
            path_tag({SwitchId(1), SwitchId(2)}));
}

TEST(Attacks, ExfiltrationClonesTraffic) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();

  attacks::ExfiltrationAttack attack(hosts[0], hosts[1]);
  const auto record = attack.launch(runtime.provider(), runtime.network());
  ASSERT_TRUE(record.has_value());
  runtime.settle();

  sdn::Packet p;
  p.hdr.ip_src = runtime.addressing().of(hosts[0]).ip;
  p.hdr.ip_dst = runtime.addressing().of(hosts[1]).ip;
  const sdn::Trajectory t = runtime.network().trace_from_host(hosts[0], p);
  // Legitimate delivery plus a dark-port copy.
  EXPECT_EQ(t.reached_hosts(), std::vector<HostId>{hosts[1]});
  bool dark_copy = false;
  for (const auto& d : t.deliveries) dark_copy |= !d.host.has_value();
  EXPECT_TRUE(dark_copy);
}

TEST(Attacks, GeoDiversionKeepsEndpointsButChangesPath) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();
  attacks::GeoDiversionAttack attack(hosts[0], hosts[1], SwitchId(5));
  const auto record = attack.launch(runtime.provider(), runtime.network());
  ASSERT_TRUE(record.has_value());
  runtime.settle();

  sdn::Packet p;
  p.hdr.ip_src = runtime.addressing().of(hosts[0]).ip;
  p.hdr.ip_dst = runtime.addressing().of(hosts[1]).ip;
  const sdn::Trajectory t = runtime.network().trace_from_host(hosts[0], p);
  EXPECT_EQ(t.reached_hosts(), std::vector<HostId>{hosts[1]});
  const auto traversed = t.traversed_switches();
  EXPECT_TRUE(std::find(traversed.begin(), traversed.end(), SwitchId(5)) !=
              traversed.end());
}

TEST(Attacks, FlappingWindowsRespectSchedule) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();
  attacks::ReconfigFlappingAttack attack(hosts[0], 10 * sim::kMillisecond,
                                         3 * sim::kMillisecond);
  ASSERT_TRUE(attack
                  .launch(runtime.provider(), runtime.network(),
                          runtime.loop().now() + 50 * sim::kMillisecond)
                  .has_value());
  runtime.settle(60 * sim::kMillisecond);

  ASSERT_GE(attack.windows().size(), 3u);
  for (std::size_t i = 0; i + 1 < attack.windows().size(); ++i) {
    EXPECT_EQ(attack.windows()[i + 1].first - attack.windows()[i].first,
              10 * sim::kMillisecond);
    EXPECT_EQ(attack.windows()[i].second - attack.windows()[i].first,
              3 * sim::kMillisecond);
  }
}

TEST(Attacks, LaunchFailsGracefullyWithoutPreconditions) {
  ScenarioRuntime runtime(line6());
  const auto& hosts = runtime.hosts();
  // Unknown victim host.
  attacks::ExfiltrationAttack bad(sdn::HostId(9999), hosts[1]);
  EXPECT_FALSE(bad.launch(runtime.provider(), runtime.network()).has_value());
  // Same-tenant "breach" is not a breach.
  attacks::IsolationBreachAttack same(hosts[0], hosts[1]);
  EXPECT_FALSE(same.launch(runtime.provider(), runtime.network()).has_value());
}

}  // namespace
}  // namespace rvaas::baselines
