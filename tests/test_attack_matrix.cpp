// Attack-matrix conformance (tier-1 promotion of bench_detection's E2
// matrix): all six attack classes scored against AttackRecord ground truth —
// RVaaS must detect every class through the designated query kind, the
// verdict must be clean before the attack and clean again after revert(),
// and the flapping injector must never leak its transient rule past
// stop_after (the window-closure regression).

#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace rvaas::attacks {
namespace {

using core::Expectation;
using core::Query;
using core::QueryKind;
using sdn::HostId;
using sdn::SwitchId;

struct Matrix {
  std::unique_ptr<workload::ScenarioRuntime> runtime;
  HostId victim{};
  HostId peer{};
  std::vector<HostId> tenant_members;
};

Matrix make_matrix(std::size_t tenants = 1) {
  Matrix m;
  workload::ScenarioConfig config;
  config.generated = workload::linear(6);
  config.tenant_count = tenants;
  config.seed = 5;
  m.runtime = std::make_unique<workload::ScenarioRuntime>(std::move(config));
  const auto& hosts = m.runtime->hosts();
  m.victim = hosts[0];
  m.peer = hosts[2];  // same tenant under round-robin for 1 or 2 tenants
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i % tenants == 0) m.tenant_members.push_back(hosts[i]);
  }
  return m;
}

/// The client-side verdict for the strongest applicable query, exactly as a
/// tenant would compute it. Timeout counts as detection iff `expect_reply`
/// is cleared (the query-suppression case).
core::Verdict query_verdict(Matrix& m, QueryKind kind,
                            const Expectation& expect,
                            const sdn::Match& constraint = {}) {
  Query query;
  query.kind = kind;
  query.constraint = constraint;
  const auto outcome =
      m.runtime->query_and_wait(m.victim, query, 100 * sim::kMillisecond);
  EXPECT_FALSE(outcome.timed_out);
  EXPECT_TRUE(outcome.reply.has_value());
  EXPECT_TRUE(outcome.signature_ok);
  if (!outcome.reply) return core::Verdict{false, {"no reply"}};
  return core::evaluate_reply(*outcome.reply, expect);
}

TEST(AttackMatrix, ExfiltrationDetectedByReachableEndpointsAndRevertClears) {
  Matrix m = make_matrix();
  Expectation expect;
  expect.allowed_endpoints = m.tenant_members;
  EXPECT_TRUE(
      query_verdict(m, QueryKind::ReachableEndpoints, expect).ok);

  ExfiltrationAttack attack(m.victim, m.peer);
  const auto record = attack.launch(m.runtime->provider(), m.runtime->network());
  ASSERT_TRUE(record.has_value());
  m.runtime->settle();
  ASSERT_FALSE(attack.installed().empty());

  const auto verdict = query_verdict(m, QueryKind::ReachableEndpoints, expect);
  EXPECT_FALSE(verdict.ok);
  bool dark_flagged = false;
  for (const auto& v : verdict.violations) {
    dark_flagged |= v.find("dark") != std::string::npos;
  }
  EXPECT_TRUE(dark_flagged) << "the rogue dark port was not flagged";

  attack.revert(m.runtime->provider(), m.runtime->network());
  m.runtime->settle();
  EXPECT_TRUE(query_verdict(m, QueryKind::ReachableEndpoints, expect).ok);
}

TEST(AttackMatrix, JoinAttackDetectedByIsolationAndRevertClears) {
  Matrix m = make_matrix();
  Expectation expect;
  expect.allowed_endpoints = m.tenant_members;
  EXPECT_TRUE(query_verdict(m, QueryKind::Isolation, expect).ok);

  const auto dark = m.runtime->network().topology().dark_ports(SwitchId(6));
  ASSERT_FALSE(dark.empty());
  JoinAttack attack(m.victim, dark.front());
  const auto record = attack.launch(m.runtime->provider(), m.runtime->network());
  ASSERT_TRUE(record.has_value());
  m.runtime->settle();

  EXPECT_FALSE(query_verdict(m, QueryKind::Isolation, expect).ok);

  attack.revert(m.runtime->provider(), m.runtime->network());
  m.runtime->settle();
  EXPECT_TRUE(query_verdict(m, QueryKind::Isolation, expect).ok);
}

TEST(AttackMatrix, GeoDiversionDetectedByGeoQueryAndRevertClears) {
  Matrix m = make_matrix();
  // linear(6): switches 1-2 in DE, 3-4 in FR, 5-6 in US. The legitimate
  // h0->h2 route crosses DE/FR only; the waypoint (switch 5) adds US.
  Expectation expect;
  expect.allowed_jurisdictions = {"DE", "FR"};
  const sdn::Match constraint = sdn::Match().exact(
      sdn::Field::IpDst, m.runtime->addressing().of(m.peer).ip);
  EXPECT_TRUE(query_verdict(m, QueryKind::Geo, expect, constraint).ok);

  GeoDiversionAttack attack(m.victim, m.peer, SwitchId(5));
  const auto record = attack.launch(m.runtime->provider(), m.runtime->network());
  ASSERT_TRUE(record.has_value());
  EXPECT_FALSE(record->detour.empty());
  m.runtime->settle();

  const auto verdict = query_verdict(m, QueryKind::Geo, expect, constraint);
  EXPECT_FALSE(verdict.ok);

  attack.revert(m.runtime->provider(), m.runtime->network());
  m.runtime->settle();
  EXPECT_TRUE(query_verdict(m, QueryKind::Geo, expect, constraint).ok);
}

TEST(AttackMatrix, IsolationBreachDetectedByReachingSourcesAndRevertClears) {
  Matrix m = make_matrix(2);
  const auto& hosts = m.runtime->hosts();
  // Victim is hosts[2] (tenant 1); the attacker joins from hosts[1]
  // (tenant 2). The victim audits who can reach it.
  m.victim = hosts[2];
  m.tenant_members = {hosts[0], hosts[2], hosts[4]};
  Expectation expect;
  expect.allowed_endpoints = m.tenant_members;
  EXPECT_TRUE(query_verdict(m, QueryKind::ReachingSources, expect).ok);

  IsolationBreachAttack attack(hosts[1], hosts[2]);
  const auto record = attack.launch(m.runtime->provider(), m.runtime->network());
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->victim, hosts[2]);
  m.runtime->settle();

  EXPECT_FALSE(query_verdict(m, QueryKind::ReachingSources, expect).ok);

  attack.revert(m.runtime->provider(), m.runtime->network());
  m.runtime->settle();
  EXPECT_TRUE(query_verdict(m, QueryKind::ReachingSources, expect).ok);
}

TEST(AttackMatrix, FlappingDetectedBySnapshotHistory) {
  Matrix m = make_matrix();
  ReconfigFlappingAttack attack(m.victim, 20 * sim::kMillisecond,
                                2 * sim::kMillisecond);
  const auto record =
      attack.launch(m.runtime->provider(), m.runtime->network(),
                    m.runtime->loop().now() + 100 * sim::kMillisecond);
  ASSERT_TRUE(record.has_value());
  m.runtime->settle(120 * sim::kMillisecond);

  EXPECT_GE(attack.cycles_run(), 4u);
  EXPECT_EQ(attack.cycles_run(), attack.windows().size());
  // The snapshot's short-lived-rule detector has the transient on record;
  // the steady-state view does not (baselines sampling between dwells see
  // nothing — the monitoring history is the detection).
  const auto short_lived =
      m.runtime->rvaas().snapshot().short_lived(5 * sim::kMillisecond);
  const bool seen = std::any_of(
      short_lived.begin(), short_lived.end(),
      [](const core::HistoryRecord& rec) { return rec.entry.cookie == 0xf1a9; });
  EXPECT_TRUE(seen);
}

/// Regression (window-closure fix): a dwell straddling stop_after must not
/// leave the transient rule installed past the deadline, and every recorded
/// window must close at or before it. Before the fix, the removal was only
/// scheduled a full dwell after the (asynchronous) install confirmation, so
/// a run bounded just past stop_after still had the rule in the table.
TEST(AttackMatrix, FlappingClosesTheLastWindowAtStopAfter) {
  Matrix m = make_matrix();
  // period 10 ms, dwell 8 ms, stop 8.2 ms after launch: the first dwell
  // straddles the deadline.
  ReconfigFlappingAttack attack(m.victim, 10 * sim::kMillisecond,
                                8 * sim::kMillisecond);
  const sim::Time stop_after =
      m.runtime->loop().now() + 8 * sim::kMillisecond + 200 * sim::kMicrosecond;
  const auto record =
      attack.launch(m.runtime->provider(), m.runtime->network(), stop_after);
  ASSERT_TRUE(record.has_value());

  // Run just past the deadline (one control-channel latency of slack for
  // the force-issued delete to land) — NOT a generous settle.
  m.runtime->loop().run_until(stop_after + 300 * sim::kMicrosecond);

  EXPECT_GE(attack.cycles_run(), 1u);
  EXPECT_FALSE(attack.cycling());
  for (const auto& [start, end] : attack.windows()) {
    EXPECT_LE(end, stop_after) << "window left open past stop_after";
    EXPECT_GT(end, start);
  }
  for (const SwitchId sw : m.runtime->network().topology().switches()) {
    for (const auto& entry :
         m.runtime->network().switch_sim(sw).table().entries()) {
      EXPECT_NE(entry.cookie, 0xf1a9u)
          << "transient flapping rule still installed after stop_after";
    }
  }
}

/// revert() mid-dwell: the rule disappears and the open window closes now.
TEST(AttackMatrix, FlappingRevertMidDwellRemovesRuleAndClosesWindow) {
  Matrix m = make_matrix();
  ReconfigFlappingAttack attack(m.victim, 20 * sim::kMillisecond,
                                10 * sim::kMillisecond);
  ASSERT_TRUE(static_cast<Attack&>(attack)
                  .launch(m.runtime->provider(), m.runtime->network())
                  .has_value());
  m.runtime->settle(3 * sim::kMillisecond);  // mid-dwell
  ASSERT_TRUE(attack.cycling());
  ASSERT_EQ(attack.cycles_run(), 1u);

  const sim::Time revert_at = m.runtime->loop().now();
  attack.revert(m.runtime->provider(), m.runtime->network());
  EXPECT_FALSE(attack.cycling());
  ASSERT_EQ(attack.windows().size(), 1u);
  EXPECT_LE(attack.windows().front().second, revert_at);

  m.runtime->settle(1 * sim::kMillisecond);
  for (const SwitchId sw : m.runtime->network().topology().switches()) {
    for (const auto& entry :
         m.runtime->network().switch_sim(sw).table().entries()) {
      EXPECT_NE(entry.cookie, 0xf1a9u);
    }
  }
}

TEST(AttackMatrix, QuerySuppressionDetectedByTimeoutAndRevertRestores) {
  Matrix m = make_matrix();
  QuerySuppressionAttack attack(SwitchId(1));
  ASSERT_TRUE(
      attack.launch(m.runtime->provider(), m.runtime->network()).has_value());
  m.runtime->settle();

  Query query;
  query.kind = QueryKind::ReachableEndpoints;
  const auto suppressed =
      m.runtime->query_and_wait(m.victim, query, 50 * sim::kMillisecond);
  EXPECT_TRUE(suppressed.timed_out) << "suppression not detected via timeout";

  attack.revert(m.runtime->provider(), m.runtime->network());
  m.runtime->settle();
  const auto restored =
      m.runtime->query_and_wait(m.victim, query, 50 * sim::kMillisecond);
  EXPECT_FALSE(restored.timed_out);
  EXPECT_TRUE(restored.signature_ok);
}

/// Ground-truth record bookkeeping: launch() through the common Attack
/// interface records the confirmed (switch, entry) pairs, and revert()
/// removes exactly those entries from the tables.
TEST(AttackMatrix, InstalledEntriesTrackedAndRevertedExactly) {
  Matrix m = make_matrix();
  JoinAttack attack(m.victim,
                    m.runtime->network().topology().dark_ports(SwitchId(6)).front());
  ASSERT_TRUE(
      attack.launch(m.runtime->provider(), m.runtime->network()).has_value());
  m.runtime->settle();

  const auto installed = attack.installed();
  ASSERT_GE(installed.size(), 2u);  // ingress + route + reverse rules
  for (const auto& [sw, id] : installed) {
    EXPECT_NE(m.runtime->network().switch_sim(sw).table().find(id), nullptr);
  }

  attack.revert(m.runtime->provider(), m.runtime->network());
  m.runtime->settle();
  EXPECT_TRUE(attack.installed().empty());
  for (const auto& [sw, id] : installed) {
    EXPECT_EQ(m.runtime->network().switch_sim(sw).table().find(id), nullptr);
  }
}

}  // namespace
}  // namespace rvaas::attacks
