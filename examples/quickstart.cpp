// Quickstart: build a small provider network, start RVaaS, and verify which
// endpoints your traffic can reach — the paper's core workflow (Figs. 1-2).
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "workload/scenario.hpp"

using namespace rvaas;

int main() {
  std::puts("== RVaaS quickstart ==");
  std::puts("Building a 4-switch line with one tenant of 4 clients...");

  workload::ScenarioConfig config;
  config.generated = workload::linear(4);
  config.seed = 2016;
  workload::ScenarioRuntime runtime(std::move(config));

  const auto& hosts = runtime.hosts();
  std::printf("Hosts: %zu, switches: %zu\n", hosts.size(),
              runtime.network().topology().switch_count());
  std::puts(
      "Client 0 attested the RVaaS enclave (measurement + key binding) "
      "during bootstrap.");

  // Ask: which endpoints can traffic leaving my NIC reach?
  core::Query query;
  query.kind = core::QueryKind::ReachableEndpoints;
  std::puts("\nClient 0 sends a sealed ReachableEndpoints query in-band...");
  const auto outcome = runtime.query_and_wait(hosts[0], query);

  if (outcome.timed_out) {
    std::puts("query timed out (suppressed?)");
    return 1;
  }
  std::printf("Reply received, signature %s\n",
              outcome.signature_ok ? "VALID" : "INVALID");
  const core::QueryReply& reply = *outcome.reply;
  std::printf("Auth summary: %u issued, %u responded\n", reply.auth.issued,
              reply.auth.responded);
  for (const auto& e : reply.endpoints) {
    std::printf("  endpoint at s%u:p%u  dark=%d authenticated=%d",
                e.access_point.sw.value, e.access_point.port.value,
                e.dark ? 1 : 0, e.authenticated ? 1 : 0);
    if (e.authenticated_as) {
      std::printf("  identity=host-%u", e.authenticated_as->value);
    }
    std::puts("");
  }

  // Check against the client's whitelist.
  core::Expectation expect;
  expect.allowed_endpoints = {hosts[1], hosts[2], hosts[3]};
  const core::Verdict verdict = core::evaluate_reply(reply, expect);
  std::printf("\nVerdict: %s\n", verdict.ok ? "OK — routing as agreed"
                                            : "VIOLATIONS DETECTED");
  for (const auto& v : verdict.violations) std::printf("  - %s\n", v.c_str());
  return verdict.ok ? 0 : 1;
}
