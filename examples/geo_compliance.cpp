// Geo-location checks (paper §IV.B.2): a client whose compliance policy
// forbids routing through certain jurisdictions discovers that the
// compromised control plane diverted its traffic abroad.
//
// Run:  ./build/examples/geo_compliance

#include <cstdio>

#include "workload/scenario.hpp"

using namespace rvaas;

int main() {
  std::puts("== Geo-compliance check (route diversion detection) ==");
  // 9 switches in a line: jurisdictions DE (1-3), FR (4-6), US (7-9).
  workload::ScenarioConfig config;
  config.generated = workload::linear(9);
  config.seed = 3;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  // Client 0 talks to client 2 (both in the DE third).
  core::Query query;
  query.kind = core::QueryKind::Geo;
  query.constraint = sdn::Match().exact(
      sdn::Field::IpDst, runtime.addressing().of(hosts[2]).ip);
  core::Expectation expect;
  expect.allowed_jurisdictions = {"DE"};

  auto check = [&](const char* label) {
    const auto outcome =
        runtime.query_and_wait(hosts[0], query, 100 * sim::kMillisecond);
    if (!outcome.reply) {
      std::printf("[%s] no reply!\n", label);
      return false;
    }
    std::printf("[%s] jurisdictions crossed:", label);
    for (const auto& j : outcome.reply->jurisdictions) {
      std::printf(" %s", j.c_str());
    }
    const core::Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
    std::printf("  -> %s\n", verdict.ok ? "compliant" : "VIOLATION");
    for (const auto& v : verdict.violations) {
      std::printf("         - %s\n", v.c_str());
    }
    return verdict.ok;
  };

  std::puts("\n-- Before the attack (traffic stays in DE) --");
  const bool ok_before = check("pre-attack ");

  std::puts("\n-- Compromised controller diverts the flow through s8 (US) --");
  attacks::GeoDiversionAttack attack(hosts[0], hosts[2], sdn::SwitchId(8));
  attack.launch(runtime.provider(), runtime.network());
  runtime.settle();

  std::puts("\n-- After the attack --");
  const bool ok_after = check("post-attack");

  std::printf("\nResult: diversion %s\n",
              (ok_before && !ok_after) ? "DETECTED" : "missed");
  return (ok_before && !ok_after) ? 0 : 1;
}
