// Continuous audit (push verification): instead of re-sending one-shot
// queries, a client registers a standing Property subscription. RVaaS
// re-verifies the property on every configuration change it observes
// (passive flow monitors + randomized polls, paper §IV.A) and pushes a
// signed ViolationAlert the moment the verdict flips — here, when a
// compromised provider clones the client's flow to a hidden port, and an
// AllClear once the rogue rule is gone again.
//
// Run:  ./build/continuous_audit

#include <cstdio>

#include "workload/scenario.hpp"

using namespace rvaas;

int main() {
  std::puts("== Continuous audit (churn-triggered push verification) ==");
  workload::ScenarioConfig config;
  config.generated = workload::linear(4);
  config.seed = 7;
  // Low-frequency full re-verification on top of churn-triggered sweeps
  // (catches drift outside the change clock, e.g. dead auth responders).
  config.rvaas.reverify_period = 200 * sim::kMillisecond;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  // The client subscribes once: "my traffic must only reach my peers, all
  // of them authenticated". No further queries are ever sent.
  core::Property property;
  property.kind = core::QueryKind::ReachableEndpoints;
  property.expect.allowed_endpoints = {hosts[1], hosts[2], hosts[3]};

  std::uint64_t alerts = 0;
  runtime.client(hosts[0]).subscribe(
      property, [&](const core::ClientAgent::MonitorEvent& event) {
        std::printf("[t=%6.2f ms] %s #%llu (signature %s, epoch %llu): "
                    "endpoints=%zu auth=%u/%u\n",
                    sim::to_ms(runtime.loop().now()),
                    core::to_string(event.kind),
                    static_cast<unsigned long long>(event.sequence),
                    event.signature_ok ? "ok" : "BAD",
                    static_cast<unsigned long long>(event.epoch),
                    event.reply.endpoints.size(), event.reply.auth.responded,
                    event.reply.auth.issued);
        for (const auto& v : event.verdict.violations) {
          std::printf("             - %s\n", v.c_str());
        }
        alerts += event.kind == core::NotificationKind::ViolationAlert;
      });
  runtime.settle(30 * sim::kMillisecond);
  std::puts("(baseline AllClear doubles as the subscribe acknowledgement)");

  std::puts("\n-- Compromised provider clones the flow to a dark port --");
  attacks::ExfiltrationAttack attack(hosts[0], hosts[2]);
  if (!attack.launch(runtime.provider(), runtime.network())) {
    std::puts("attack failed to launch");
    return 1;
  }
  runtime.settle(30 * sim::kMillisecond);

  std::puts("\n-- Provider removes the rogue rule (cover-up) --");
  for (const sdn::SwitchId sw : runtime.network().topology().switches()) {
    for (const auto& entry : runtime.rvaas().snapshot().table(sw)) {
      if (entry.cookie != 0xe4f1) continue;
      sdn::FlowMod mod;
      mod.command = sdn::FlowModCommand::Delete;
      mod.target = entry.id;
      runtime.network().switch_sim(sw).apply_flow_mod(sdn::ControllerId(1),
                                                      mod);
    }
  }
  runtime.settle(30 * sim::kMillisecond);

  const auto& stats = runtime.rvaas().stats();
  const auto& mstats = runtime.rvaas().monitor().stats();
  std::printf("\nmonitor: %llu sweeps, %llu wakeups, %llu suppressed; "
              "%llu notifications pushed, 0 client queries sent\n",
              static_cast<unsigned long long>(stats.monitor_sweeps),
              static_cast<unsigned long long>(mstats.wakeups),
              static_cast<unsigned long long>(mstats.suppressed),
              static_cast<unsigned long long>(stats.notifications_sent));
  std::printf("The flap was caught by %llu signed alert(s) without the "
              "client ever polling.\n",
              static_cast<unsigned long long>(alerts));
  return alerts >= 1 ? 0 : 1;
}
