// Exfiltration hunt: a compromised control plane clones a client's traffic
// to a hidden port. Traceroute (even with honest replies) cannot see the
// copy; RVaaS's reachability query exposes the dark endpoint immediately.
//
// Run:  ./build/examples/exfiltration_hunt

#include <cstdio>

#include "baselines/traceroute.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

int main() {
  std::puts("== Exfiltration hunt: RVaaS vs traceroute ==");
  workload::ScenarioConfig config;
  config.generated = workload::linear(5);
  config.seed = 13;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();
  runtime.provider().enable_traceroute_responder(/*spoof=*/false);

  std::puts("Attacker clones host-0 -> host-2 traffic to a hidden port...");
  attacks::ExfiltrationAttack attack(hosts[0], hosts[2]);
  const auto record = attack.launch(runtime.provider(), runtime.network());
  runtime.settle();
  std::printf("(ground truth: copy leaves at s%u:p%u)\n",
              record->rogue_ports[0].sw.value,
              record->rogue_ports[0].port.value);

  // --- Baseline: traceroute with an HONEST responder ---
  std::puts("\n-- Baseline: traceroute (honest replies!) --");
  baselines::TracerouteVerifier traceroute(runtime.network(),
                                           runtime.addressing());
  const auto tr = traceroute.run(hosts[0], hosts[2], 10);
  const auto src_ap = runtime.network().topology().host_ports(hosts[0]).front();
  const auto dst_ap = runtime.network().topology().host_ports(hosts[2]).front();
  const auto expected = *control::shortest_switch_path(
      runtime.network().topology(), src_ap.sw, dst_ap.sw);
  std::printf("discovered %zu hops:", tr.discovered.size());
  for (const auto sw : tr.discovered) std::printf(" s%u", sw.value);
  const bool tr_detected = baselines::TracerouteVerifier::deviates(tr, expected);
  std::printf("\ntraceroute verdict: %s (the probe follows the normal path; "
              "the clone is invisible)\n",
              tr_detected ? "deviation" : "no deviation");

  // --- RVaaS reachability query ---
  std::puts("\n-- RVaaS: ReachableEndpoints query --");
  core::Query query;
  query.kind = core::QueryKind::ReachableEndpoints;
  const auto outcome = runtime.query_and_wait(hosts[0], query);
  core::Expectation expect;
  expect.allowed_endpoints = {hosts[1], hosts[2], hosts[3], hosts[4]};
  const core::Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
  std::printf("RVaaS verdict: %s\n", verdict.ok ? "clean" : "VIOLATION");
  for (const auto& v : verdict.violations) std::printf("  - %s\n", v.c_str());

  const bool success = !tr_detected && !verdict.ok;
  std::printf("\nResult: %s\n",
              success ? "RVaaS detected what traceroute missed"
                      : "unexpected outcome");
  return success ? 0 : 1;
}
