// Isolation audit (paper §IV.B.1): two tenants share a provider; a cyber
// attacker who compromised the provider's control plane mounts a join
// attack, secretly adding an access point to tenant 1's isolation domain.
// The tenant detects it with an Isolation query.
//
// Run:  ./build/examples/isolation_audit

#include <cstdio>

#include "workload/scenario.hpp"

using namespace rvaas;

int main() {
  std::puts("== Isolation audit (join-attack detection) ==");
  workload::ScenarioConfig config;
  config.generated = workload::grid(3, 3);
  config.tenant_count = 2;
  config.seed = 7;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  // Tenant 1 members (round-robin assignment: even indices).
  std::vector<sdn::HostId> tenant1;
  for (std::size_t i = 0; i < hosts.size(); i += 2) tenant1.push_back(hosts[i]);
  std::printf("Tenant 1 has %zu members; auditing from host-%u\n",
              tenant1.size(), tenant1[0].value);

  core::Query query;
  query.kind = core::QueryKind::Isolation;
  core::Expectation expect;
  expect.allowed_endpoints = tenant1;

  auto audit = [&](const char* label) {
    const auto outcome =
        runtime.query_and_wait(tenant1[0], query, 100 * sim::kMillisecond);
    if (!outcome.reply) {
      std::printf("[%s] no reply!\n", label);
      return false;
    }
    const core::Verdict verdict = core::evaluate_reply(*outcome.reply, expect);
    std::printf("[%s] endpoints=%zu auth=%u/%u verdict=%s\n", label,
                outcome.reply->endpoints.size(), outcome.reply->auth.responded,
                outcome.reply->auth.issued, verdict.ok ? "OK" : "VIOLATION");
    for (const auto& v : verdict.violations) {
      std::printf("         - %s\n", v.c_str());
    }
    return verdict.ok;
  };

  std::puts("\n-- Before the attack --");
  const bool clean_before = audit("pre-attack ");

  std::puts("\n-- Attacker compromises the control plane: join attack --");
  const auto dark =
      runtime.network().topology().dark_ports(sdn::SwitchId(9));
  attacks::JoinAttack attack(tenant1[0], dark.front());
  const auto record = attack.launch(runtime.provider(), runtime.network());
  runtime.settle();
  std::printf("Injected rogue access point at s%u:p%u\n",
              record->rogue_ports[0].sw.value,
              record->rogue_ports[0].port.value);

  std::puts("\n-- After the attack --");
  const bool clean_after = audit("post-attack");

  std::printf("\nResult: attack %s\n",
              (clean_before && !clean_after) ? "DETECTED" : "missed");
  return (clean_before && !clean_after) ? 0 : 1;
}
