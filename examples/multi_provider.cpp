// Multi-provider extension (paper §IV.C.a): a query recursively spans two
// providers' RVaaS servers across a peering link; each domain keeps its
// topology confidential and contributes only endpoint answers.
//
// Run:  ./build/examples/multi_provider

#include <cstdio>

#include "rvaas/multiprovider.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

int main() {
  std::puts("== Multi-provider recursive verification ==");

  workload::ScenarioConfig ca;
  ca.generated = workload::linear(3);
  ca.seed = 101;
  workload::ScenarioRuntime domain_a(std::move(ca));

  workload::ScenarioConfig cb;
  cb.generated = workload::linear(3);
  cb.seed = 102;
  workload::ScenarioRuntime domain_b(std::move(cb));

  std::puts("Two provider domains, each a 3-switch line with its own RVaaS.");

  core::Federation fed;
  fed.add_domain(core::ProviderId(1), domain_a.rvaas());
  fed.add_domain(core::ProviderId(2), domain_b.rvaas());
  // Domain A's s3:p3 is wired to domain B's s1:p3.
  const sdn::PortRef border_a{sdn::SwitchId(3), sdn::PortNo(3)};
  const sdn::PortRef ingress_b{sdn::SwitchId(1), sdn::PortNo(3)};
  fed.add_peering(core::ProviderId(1), border_a, core::ProviderId(2),
                  ingress_b);
  std::puts("Peering: A/s3:p3 <-> B/s1:p3 registered with the federation.");

  // Provider A routes host-0's traffic out of the border; provider B routes
  // it to its host on switch 3 (installed directly for the demo).
  auto mod = [](std::uint16_t prio, sdn::PortNo in, sdn::PortNo out) {
    sdn::FlowMod m;
    m.priority = prio;
    m.match = sdn::Match().in_port(in);
    m.actions = {sdn::output(out)};
    return m;
  };
  const sdn::ControllerId prov(1);
  auto& na = domain_a.network();
  na.switch_sim(sdn::SwitchId(1)).apply_flow_mod(prov, mod(40, sdn::PortNo(2), sdn::PortNo(1)));
  na.switch_sim(sdn::SwitchId(2)).apply_flow_mod(prov, mod(40, sdn::PortNo(0), sdn::PortNo(1)));
  na.switch_sim(sdn::SwitchId(3)).apply_flow_mod(prov, mod(40, sdn::PortNo(0), sdn::PortNo(3)));
  auto& nb = domain_b.network();
  nb.switch_sim(sdn::SwitchId(1)).apply_flow_mod(prov, mod(40, sdn::PortNo(3), sdn::PortNo(1)));
  nb.switch_sim(sdn::SwitchId(2)).apply_flow_mod(prov, mod(40, sdn::PortNo(0), sdn::PortNo(1)));
  nb.switch_sim(sdn::SwitchId(3)).apply_flow_mod(prov, mod(40, sdn::PortNo(0), sdn::PortNo(2)));
  domain_a.settle();
  domain_b.settle();

  std::puts("\nFederated query: where can traffic from A's host-0 go?");
  const auto result = fed.reachable(core::ProviderId(1),
                                    {sdn::SwitchId(1), sdn::PortNo(2)},
                                    sdn::Match());

  std::printf("domains visited: %u, signed subqueries: %u\n",
              result.domains_visited, result.subqueries);
  for (const auto& e : result.endpoints) {
    std::printf("  provider %u: endpoint s%u:p%u%s\n", e.provider.value,
                e.info.access_point.sw.value, e.info.access_point.port.value,
                e.info.dark ? " (dark)" : "");
  }

  bool cross_domain = false;
  for (const auto& e : result.endpoints) {
    cross_domain |= (e.provider == core::ProviderId(2) && !e.info.dark);
  }
  std::printf("\nResult: %s\n",
              cross_domain
                  ? "query crossed the peering and located the remote endpoint"
                  : "no cross-domain endpoint found");
  return cross_domain ? 0 : 1;
}
