// E4: cost of the logical-verification substrate — wildcard algebra
// micro-operations, the adversarial cube-blowup workload (deep exact-match
// shadowing chains, the pattern that used to wall the fuzzer on >2x2
// grids), and a replay of the ROADMAP blowup repro with a hard sub-second
// regression gate.
//
// Flags: --smoke (tiny sizes, 1 iteration)   --json FILE (machine output)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "hsa/transfer.hpp"
#include "testing/fuzzer.hpp"
#include "util/stats.hpp"

using namespace rvaas;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return 1e3 * std::chrono::duration<double>(Clock::now() - t0).count();
}

hsa::Wildcard random_cube(util::Rng& rng, double fix_prob) {
  hsa::Wildcard w;
  for (std::size_t i = 0; i < hsa::Wildcard::kBits; ++i) {
    if (rng.bernoulli(fix_prob)) {
      w.set_bit(i, rng.next_bit() ? hsa::Trit::One : hsa::Trit::Zero);
    }
  }
  return w;
}

/// An exact-match rule cube the way provider routing produces them:
/// destination address plus VLAN pinned, everything else free.
hsa::Wildcard exact_match_cube(util::Rng& rng) {
  hsa::Wildcard w;
  w.set_field(sdn::Field::IpDst, rng.below(std::uint64_t{1} << 32));
  w.set_field(sdn::Field::Vlan, rng.below(4096));
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);

  // --- micro-operations ----------------------------------------------------
  const int micro_iters = args.smoke ? 1000 : 200000;
  util::Table micro({"operation", "ns/op"});
  {
    util::Rng rng(1);
    const hsa::Wildcard a = random_cube(rng, 0.3);
    const hsa::Wildcard b = random_cube(rng, 0.1);
    volatile bool sink = false;

    auto t0 = Clock::now();
    for (int i = 0; i < micro_iters; ++i) sink = a.intersect(b).is_empty();
    micro.add_row({"intersect+empty",
                   util::Table::fmt(1e6 * ms_since(t0) / micro_iters, 1)});

    t0 = Clock::now();
    for (int i = 0; i < micro_iters; ++i) sink = a.subset_of(b);
    micro.add_row({"subset_of",
                   util::Table::fmt(1e6 * ms_since(t0) / micro_iters, 1)});

    t0 = Clock::now();
    for (int i = 0; i < micro_iters; ++i) {
      sink = hsa::cube_subtract(a, b).empty();
    }
    micro.add_row({"cube_subtract",
                   util::Table::fmt(1e6 * ms_since(t0) / micro_iters, 1)});
    (void)sink;
  }
  std::puts("wildcard micro-operations:");
  micro.print();

  // --- adversarial cube blowup ---------------------------------------------
  // Deep exact-match shadowing: subtract K wide exact-match cubes from the
  // full space (what SwitchTransfer::apply's `remaining` chain does while
  // walking a long table) with an emptiness proof after every step. The
  // pre-canonical representation exploded combinatorially at the
  // materialization points; the bounded-lazy form must stay flat-ish in K.
  std::puts("\nadversarial shadowing chain (all() minus K exact matches):");
  util::Table blowup({"K", "chain-ms", "cubes", "diffs", "probe-ms"});
  const std::vector<int> depths = args.smoke
                                      ? std::vector<int>{8, 16}
                                      : std::vector<int>{8, 16, 32, 64, 128};
  double chain_total_ms = 0.0;
  for (const int k : depths) {
    util::Rng rng(42);
    auto t0 = Clock::now();
    hsa::HeaderSpace hs = hsa::HeaderSpace::all();
    for (int i = 0; i < k; ++i) {
      hs = hs.subtract(exact_match_cube(rng));
      (void)hs.is_empty();
    }
    const double chain_ms = ms_since(t0);
    chain_total_ms += chain_ms;

    // Probe the way the query layer does: intersect with an exact-match
    // constraint first, never resolve the broad space wholesale.
    t0 = Clock::now();
    hsa::Wildcard probe;
    probe.set_field(sdn::Field::Vlan, 7);
    probe.set_field(sdn::Field::IpProto, 6);
    const auto narrowed = hs.intersect(probe);
    (void)narrowed.is_empty();
    const double probe_ms = ms_since(t0);

    blowup.add_row({std::to_string(k), util::Table::fmt(chain_ms, 3),
                    std::to_string(hs.cube_count()),
                    std::to_string(hs.diff_count()),
                    util::Table::fmt(probe_ms, 3)});
  }
  blowup.print();

  // --- transfer-function shadowing -----------------------------------------
  // The same pattern end-to-end: a one-switch table of K exact-match rules
  // plus a broad low-priority fallback, applied to the full header space.
  std::puts("\ntransfer apply over K-rule exact-match table (wildcard in):");
  util::Table transfer({"rules", "apply-ms", "results"});
  for (const int k : depths) {
    util::Rng rng(7);
    std::vector<sdn::FlowEntry> entries;
    for (int i = 0; i < k; ++i) {
      sdn::FlowEntry e;
      e.id = sdn::FlowEntryId(static_cast<std::uint64_t>(i) + 1);
      e.priority = 100;
      e.match.exact(sdn::Field::IpDst, rng.below(std::uint64_t{1} << 32));
      e.match.exact(sdn::Field::Vlan, rng.below(4096));
      e.actions = {sdn::output(sdn::PortNo(1))};
      entries.push_back(std::move(e));
    }
    sdn::FlowEntry fallback;
    fallback.id = sdn::FlowEntryId(1u << 20);
    fallback.priority = 1;
    fallback.actions = {sdn::output(sdn::PortNo(2))};
    entries.push_back(std::move(fallback));

    const hsa::SwitchTransfer tf = hsa::SwitchTransfer::compile(entries);
    const auto t0 = Clock::now();
    const auto results = tf.apply(sdn::PortNo(0), hsa::HeaderSpace::all());
    transfer.add_row({std::to_string(k), util::Table::fmt(ms_since(t0), 3),
                      std::to_string(results.size())});
  }
  transfer.print();

  // --- ROADMAP blowup repro ------------------------------------------------
  // The fuzzer schedule that used to take minutes per traversal on the
  // pre-canonical representation. Hard gate in full mode: < 1 s.
  constexpr const char* kRepro =
      "rvaas-fuzz-v1 cfg=2,1,1,2,0,20260850 "
      "steps=9:37447:42126:52008;1:30128:2473:47484;1:23200:20225:30014;"
      "7:7052:2085:59801;4:24507:63379:38529";
  const auto repro_t0 = Clock::now();
  const fuzz::FuzzReport report = fuzz::replay(kRepro);
  const double repro_ms = ms_since(repro_t0);
  util::Table repro({"repro", "ms", "oracles"});
  repro.add_row({"roadmap-cube-blowup", util::Table::fmt(repro_ms, 1),
                 report.failure ? "FAIL" : "green"});
  std::puts("\nfuzzer blowup repro replay:");
  repro.print();
  if (report.failure) {
    std::fprintf(stderr, "FATAL: blowup repro tripped oracle %s: %s\n",
                 report.failure->oracle.c_str(),
                 report.failure->detail.c_str());
    return 1;
  }

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json, {{"micro", &micro},
                                             {"blowup", &blowup},
                                             {"transfer", &transfer},
                                             {"repro", &repro}})) {
      return 1;
    }
    std::printf("JSON written to %s\n", args.json.c_str());
  }

  // Regression gates (full mode only; smoke boxes are noisy and tiny).
  bool ok = true;
  if (!args.smoke) {
    if (repro_ms >= 1000.0) {
      std::printf("FAIL: blowup repro took %.0f ms (budget 1000 ms)\n",
                  repro_ms);
      ok = false;
    }
    if (chain_total_ms >= 2000.0) {
      std::printf(
          "FAIL: shadowing chains took %.0f ms total (budget 2000 ms)\n",
          chain_total_ms);
      ok = false;
    }
  }
  if (ok) {
    std::printf("\nblowup repro: %.0f ms (budget 1000 ms in full mode)\n",
                repro_ms);
  }
  return ok ? 0 : 1;
}
