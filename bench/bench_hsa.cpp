// E4: cost of the logical-verification substrate — wildcard algebra
// micro-benchmarks and network reachability vs rule count / topology size
// (google-benchmark).

#include <benchmark/benchmark.h>

#include "hsa/reachability.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

hsa::Wildcard random_cube(util::Rng& rng, double fix_prob) {
  hsa::Wildcard w;
  for (std::size_t i = 0; i < hsa::Wildcard::kBits; ++i) {
    if (rng.bernoulli(fix_prob)) {
      w.set_bit(i, rng.next_bit() ? hsa::Trit::One : hsa::Trit::Zero);
    }
  }
  return w;
}

void BM_WildcardIntersect(benchmark::State& state) {
  util::Rng rng(1);
  const hsa::Wildcard a = random_cube(rng, 0.3);
  const hsa::Wildcard b = random_cube(rng, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_WildcardIntersect);

void BM_WildcardSubset(benchmark::State& state) {
  util::Rng rng(2);
  const hsa::Wildcard a = random_cube(rng, 0.3);
  const hsa::Wildcard b = random_cube(rng, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subset_of(b));
  }
}
BENCHMARK(BM_WildcardSubset);

void BM_CubeSubtract(benchmark::State& state) {
  util::Rng rng(3);
  const hsa::Wildcard a = random_cube(rng, 0.05);
  const hsa::Wildcard b = random_cube(rng, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsa::cube_subtract(a, b));
  }
}
BENCHMARK(BM_CubeSubtract);

void BM_HeaderSpaceEmptiness(benchmark::State& state) {
  // Cube with a diff list of the given length.
  util::Rng rng(4);
  hsa::HeaderSpace hs = hsa::HeaderSpace::all();
  for (long i = 0; i < state.range(0); ++i) {
    hsa::Wildcard d;
    d.set_field(sdn::Field::Vlan, static_cast<std::uint64_t>(i) & 0xfff);
    hs = hs.subtract(d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hs.is_empty());
  }
}
BENCHMARK(BM_HeaderSpaceEmptiness)->Arg(2)->Arg(8)->Arg(32);

/// Reachability over a provider-routed fat-tree: cost vs k (rule count grows
/// as tenants x hosts x switches).
void BM_FatTreeReach(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  workload::ScenarioConfig config;
  config.generated = workload::fat_tree(k);
  config.seed = 5;
  workload::ScenarioRuntime runtime(std::move(config));

  const auto tables = runtime.rvaas().snapshot().table_dump();
  std::size_t total_rules = 0;
  for (const auto& [_, entries] : tables) total_rules += entries.size();

  const hsa::NetworkModel model =
      hsa::NetworkModel::from_tables(runtime.network().topology(), tables);
  const auto ap = runtime.network()
                      .topology()
                      .host_ports(runtime.hosts().front())
                      .front();
  std::size_t steps = 0;
  for (auto _ : state) {
    const auto result = model.reach(ap, hsa::HeaderSpace::all());
    steps = result.steps;
    benchmark::DoNotOptimize(result.endpoints.size());
  }
  state.counters["switches"] =
      static_cast<double>(runtime.network().topology().switch_count());
  state.counters["rules"] = static_cast<double>(total_rules);
  state.counters["tf-steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_FatTreeReach)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

/// Inverse reachability (sources_reaching) — the expensive direction.
void BM_SourcesReaching(benchmark::State& state) {
  workload::ScenarioConfig config;
  config.generated = workload::fat_tree(4);
  config.seed = 6;
  workload::ScenarioRuntime runtime(std::move(config));
  const hsa::NetworkModel model = hsa::NetworkModel::from_tables(
      runtime.network().topology(), runtime.rvaas().snapshot().table_dump());
  const auto target = runtime.network()
                          .topology()
                          .host_ports(runtime.hosts().front())
                          .front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.sources_reaching(target, hsa::HeaderSpace::all()));
  }
}
BENCHMARK(BM_SourcesReaching)->Unit(benchmark::kMillisecond);

/// Transfer-function compilation cost vs table size.
void BM_CompileTables(benchmark::State& state) {
  workload::ScenarioConfig config;
  config.generated = workload::fat_tree(4);
  config.seed = 7;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto tables = runtime.rvaas().snapshot().table_dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsa::compile_network(tables));
  }
}
BENCHMARK(BM_CompileTables)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
