// E2: detection matrix — six attack classes vs four verification methods
// (RVaaS queries, traceroute, trajectory sampling, path tagging), under the
// adversarial provider of the paper's threat model (§III). Baselines face
// the counter-strategies §I describes (spoofed replies, censored reports,
// rewritten tags). Reproduces the paper's core comparative claim.

#include <cstdio>
#include <functional>

#include "baselines/path_tagging.hpp"
#include "baselines/traceroute.hpp"
#include "baselines/trajectory_sampling.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

struct Scenario {
  std::unique_ptr<workload::ScenarioRuntime> runtime;
  sdn::HostId victim{};
  sdn::HostId peer{};
  std::vector<sdn::HostId> tenant_members;

  std::vector<sdn::SwitchId> expected_path() const {
    const auto a = runtime->network().topology().host_ports(victim).front();
    const auto b = runtime->network().topology().host_ports(peer).front();
    return *control::shortest_switch_path(runtime->network().topology(), a.sw,
                                          b.sw);
  }
};

Scenario make_scenario(std::size_t tenants = 1) {
  Scenario s;
  workload::ScenarioConfig config;
  config.generated = workload::linear(6);
  config.tenant_count = tenants;
  config.seed = 5;
  s.runtime = std::make_unique<workload::ScenarioRuntime>(std::move(config));
  const auto& hosts = s.runtime->hosts();
  s.victim = hosts[0];
  s.peer = tenants == 1 ? hosts[2] : hosts[2];  // same tenant under round-robin
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i % tenants == 0) s.tenant_members.push_back(hosts[i]);
  }
  s.runtime->provider().enable_traceroute_responder(/*spoof=*/true);
  return s;
}

/// RVaaS verdict: run the strongest applicable query and evaluate.
bool rvaas_detects(Scenario& s, core::QueryKind kind,
                   const std::vector<std::string>& allowed_jurisdictions = {}) {
  core::Query query;
  query.kind = kind;
  core::Expectation expect;
  if (kind == core::QueryKind::Geo) {
    expect.allowed_jurisdictions = allowed_jurisdictions;
    query.constraint = sdn::Match().exact(
        sdn::Field::IpDst, s.runtime->addressing().of(s.peer).ip);
  } else {
    expect.allowed_endpoints = s.tenant_members;
  }
  const auto outcome = s.runtime->query_and_wait(s.victim, query,
                                                 100 * sim::kMillisecond);
  if (outcome.timed_out) return true;  // suppression detected via timeout
  if (!outcome.reply || !outcome.signature_ok) return true;
  return !core::evaluate_reply(*outcome.reply, expect).ok;
}

bool traceroute_detects(Scenario& s) {
  baselines::TracerouteVerifier verifier(s.runtime->network(),
                                         s.runtime->addressing());
  const auto result = verifier.run(s.victim, s.peer, 14);
  return baselines::TracerouteVerifier::deviates(result, s.expected_path());
}

bool sampling_detects(Scenario& s) {
  baselines::TrajectorySampling sampling(s.runtime->network(),
                                         s.runtime->addressing());
  const auto result = sampling.sample_flow(s.victim, s.peer, s.expected_path(),
                                           /*adversarial=*/true);
  return baselines::TrajectorySampling::deviates(result, s.expected_path());
}

bool tagging_detects(Scenario& s) {
  baselines::PathTagging tagging(s.runtime->network(),
                                 s.runtime->addressing());
  const auto result = tagging.send_tagged(s.victim, s.peer, s.expected_path(),
                                          /*adversarial=*/true);
  return baselines::PathTagging::deviates(result, s.expected_path());
}

const char* mark(bool detected) { return detected ? "DETECTED" : "missed"; }

}  // namespace

int main() {
  std::puts("E2: detection matrix under an adversarial provider.");
  std::puts("Baselines face the paper's counter-strategies: spoofed");
  std::puts("traceroute replies, censored sampling reports, rewritten tags.\n");

  util::Table table(
      {"attack", "rvaas", "traceroute", "traj-sampling", "path-tagging"});

  // --- exfiltration ---
  {
    Scenario s = make_scenario();
    attacks::ExfiltrationAttack attack(s.victim, s.peer);
    attack.launch(s.runtime->provider(), s.runtime->network());
    s.runtime->settle();
    table.add_row({"exfiltration",
                   mark(rvaas_detects(s, core::QueryKind::ReachableEndpoints)),
                   mark(traceroute_detects(s)), mark(sampling_detects(s)),
                   mark(tagging_detects(s))});
  }
  // --- join attack ---
  {
    Scenario s = make_scenario();
    const auto dark =
        s.runtime->network().topology().dark_ports(sdn::SwitchId(6));
    attacks::JoinAttack attack(s.victim, dark.front());
    attack.launch(s.runtime->provider(), s.runtime->network());
    s.runtime->settle();
    table.add_row({"join-attack",
                   mark(rvaas_detects(s, core::QueryKind::Isolation)),
                   mark(traceroute_detects(s)), mark(sampling_detects(s)),
                   mark(tagging_detects(s))});
  }
  // --- geo diversion ---
  {
    Scenario s = make_scenario();
    attacks::GeoDiversionAttack attack(s.victim, s.peer, sdn::SwitchId(5));
    attack.launch(s.runtime->provider(), s.runtime->network());
    s.runtime->settle();
    table.add_row({"geo-diversion",
                   mark(rvaas_detects(s, core::QueryKind::Geo, {"DE", "FR"})),
                   mark(traceroute_detects(s)), mark(sampling_detects(s)),
                   mark(tagging_detects(s))});
  }
  // --- isolation breach (two tenants) ---
  {
    Scenario s = make_scenario(2);
    const auto& hosts = s.runtime->hosts();
    attacks::IsolationBreachAttack attack(hosts[1], hosts[2]);
    attack.launch(s.runtime->provider(), s.runtime->network());
    s.runtime->settle();
    // Victim is hosts[2]; it audits who can reach it.
    s.victim = hosts[2];
    s.peer = hosts[0];
    s.tenant_members = {hosts[0], hosts[2], hosts[4]};
    table.add_row({"isolation-breach",
                   mark(rvaas_detects(s, core::QueryKind::ReachingSources)),
                   mark(traceroute_detects(s)), mark(sampling_detects(s)),
                   mark(tagging_detects(s))});
  }
  // --- reconfiguration flapping (monitoring-level detection) ---
  {
    Scenario s = make_scenario();
    attacks::ReconfigFlappingAttack attack(s.victim, 20 * sim::kMillisecond,
                                           2 * sim::kMillisecond);
    attack.launch(s.runtime->provider(), s.runtime->network(),
                  s.runtime->loop().now() + 100 * sim::kMillisecond);
    s.runtime->settle(120 * sim::kMillisecond);
    const bool rvaas_sees =
        !s.runtime->rvaas().snapshot().short_lived(5 * sim::kMillisecond).empty();
    // Baselines sample between dwells: the transient rule is gone.
    table.add_row({"reconfig-flapping", mark(rvaas_sees),
                   mark(traceroute_detects(s)), mark(sampling_detects(s)),
                   mark(tagging_detects(s))});
  }
  // --- query suppression ---
  {
    Scenario s = make_scenario();
    attacks::QuerySuppressionAttack attack(sdn::SwitchId(1));
    attack.launch(s.runtime->provider(), s.runtime->network());
    s.runtime->settle();
    // Baselines do not interact with the RVaaS channel at all: n/a -> missed.
    table.add_row({"query-suppression",
                   mark(rvaas_detects(s, core::QueryKind::ReachableEndpoints)),
                   "n/a", "n/a", "n/a"});
  }

  table.print();
  std::puts("\nShape check (paper §I): RVaaS detects every attack; the");
  std::puts("baselines are defeated by the adversarial control plane.");
  return 0;
}
