// E8 (§IV.C.a): recursive queries across a chain of providers — endpoint
// discovery, signed subquery count, and logical-step cost vs chain length.

#include <chrono>
#include <cstdio>

#include "rvaas/multiprovider.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

/// Builds a chain of N single-line domains, peered tail-to-head, with a
/// through-route installed in each.
struct Chain {
  std::vector<std::unique_ptr<workload::ScenarioRuntime>> domains;
  core::Federation fed;

  explicit Chain(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      workload::ScenarioConfig config;
      config.generated = workload::linear(3);
      config.seed = 200 + i;
      domains.push_back(
          std::make_unique<workload::ScenarioRuntime>(std::move(config)));
      fed.add_domain(core::ProviderId(static_cast<std::uint32_t>(i + 1)),
                     domains.back()->rvaas());
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      fed.add_peering(core::ProviderId(static_cast<std::uint32_t>(i + 1)),
                      {sdn::SwitchId(3), sdn::PortNo(3)},
                      core::ProviderId(static_cast<std::uint32_t>(i + 2)),
                      {sdn::SwitchId(1), sdn::PortNo(3)});
    }
    // Through-routing inside every domain.
    const sdn::ControllerId prov(1);
    auto fwd = [](std::uint16_t prio, sdn::PortNo in, sdn::PortNo out) {
      sdn::FlowMod m;
      m.priority = prio;
      m.match = sdn::Match().in_port(in);
      m.actions = {sdn::output(out)};
      return m;
    };
    for (std::size_t i = 0; i < n; ++i) {
      auto& net = domains[i]->network();
      const sdn::PortNo entry = i == 0 ? sdn::PortNo(2) : sdn::PortNo(3);
      net.switch_sim(sdn::SwitchId(1)).apply_flow_mod(prov, fwd(40, entry, sdn::PortNo(1)));
      net.switch_sim(sdn::SwitchId(2)).apply_flow_mod(prov, fwd(40, sdn::PortNo(0), sdn::PortNo(1)));
      const sdn::PortNo exit =
          i + 1 < n ? sdn::PortNo(3) : sdn::PortNo(2);  // last: to its host
      net.switch_sim(sdn::SwitchId(3)).apply_flow_mod(prov, fwd(40, sdn::PortNo(0), exit));
      domains[i]->settle();
    }
  }
};

}  // namespace

int main() {
  std::puts("E8: federated (multi-provider) recursive queries over a chain");
  std::puts("of domains; each hop is a signed RVaaS-to-RVaaS subquery.\n");

  util::Table table({"providers", "domains-visited", "subqueries",
                     "endpoints", "remote-endpoint", "cpu-ms"});
  for (const std::size_t n : {1u, 2u, 4u, 6u, 8u}) {
    Chain chain(n);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result =
        chain.fed.reachable(core::ProviderId(1),
                            {sdn::SwitchId(1), sdn::PortNo(2)}, sdn::Match(),
                            /*max_domains=*/16);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    bool remote = false;
    for (const auto& e : result.endpoints) {
      remote |= (e.provider == core::ProviderId(static_cast<std::uint32_t>(n)) &&
                 !e.info.dark);
    }
    table.add_row({std::to_string(n), std::to_string(result.domains_visited),
                   std::to_string(result.subqueries),
                   std::to_string(result.endpoints.size()),
                   remote ? "found" : "MISSING", util::Table::fmt(ms, 2)});
  }
  table.print();

  std::puts("\nShape check: one signed subquery per domain crossed; the");
  std::puts("endpoint in the last domain is found regardless of chain");
  std::puts("length; cost grows linearly with the number of providers.");
  return 0;
}
