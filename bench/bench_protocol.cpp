// E1 (Figures 1+2): end-to-end integrity-query protocol — simulated latency
// and message counts vs topology size and shape.
//
// Series: topology | switches | hosts | endpoints | auth issued | latency
// (simulated ms) | packet-ins | packet-outs | host CPU ms (controller-side
// compute, wall clock).

#include <chrono>
#include <cstdio>

#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

struct Row {
  std::string name;
  workload::GeneratedTopology topo;
};

void run_case(util::Table& table, Row row) {
  workload::ScenarioConfig config;
  config.generated = std::move(row.topo);
  config.seed = 1;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  runtime.network().reset_counters();
  util::Samples latency_ms;
  util::Samples wall_ms;
  std::size_t endpoints = 0;
  std::uint32_t issued = 0;

  const int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    const sdn::HostId client = hosts[static_cast<std::size_t>(i) % hosts.size()];
    core::Query query;
    query.kind = core::QueryKind::ReachableEndpoints;

    const auto wall_start = std::chrono::steady_clock::now();
    const auto timed =
        runtime.query_timed(client, query, 200 * sim::kMillisecond);
    const auto wall_end = std::chrono::steady_clock::now();
    if (!timed.outcome.reply) continue;
    latency_ms.add(sim::to_ms(timed.latency));
    wall_ms.add(std::chrono::duration<double, std::milli>(wall_end - wall_start)
                    .count());
    endpoints = timed.outcome.reply->endpoints.size();
    issued = timed.outcome.reply->auth.issued;
  }

  const auto& counters = runtime.network().counters();
  table.add_row({row.name, std::to_string(runtime.network().topology().switch_count()),
                 std::to_string(hosts.size()), std::to_string(endpoints),
                 std::to_string(issued), util::Table::fmt(latency_ms.mean(), 2),
                 std::to_string(counters.packet_ins / kQueries),
                 std::to_string(counters.packet_outs / kQueries),
                 util::Table::fmt(wall_ms.mean(), 1)});
}

}  // namespace

int main() {
  std::puts("E1: integrity-query protocol (Fig. 1 + Fig. 2), latency and");
  std::puts("message cost vs topology. Latency includes the auth round-trip");
  std::puts("and the controller's auth-timeout finalization.\n");

  util::Table table({"topology", "switches", "hosts", "endpoints",
                     "auth-issued", "sim-latency-ms", "pkt-ins/query",
                     "pkt-outs/query", "cpu-ms/query"});
  run_case(table, {"linear-3", workload::linear(3)});
  run_case(table, {"linear-6", workload::linear(6)});
  run_case(table, {"linear-9", workload::linear(9)});
  run_case(table, {"grid-3x3", workload::grid(3, 3)});
  run_case(table, {"fat-tree-4", workload::fat_tree(4)});
  run_case(table, {"fat-tree-4x2", workload::fat_tree(4, 2)});
  table.print();

  std::puts("\nShape check: simulated latency is a few control-plane RTTs");
  std::puts("(replies finalize early once every endpoint authenticates) and");
  std::puts("is independent of network size; message counts grow linearly");
  std::puts("in the number of reachable endpoints, not in network size.");
  return 0;
}
