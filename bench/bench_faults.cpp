// Fault-tolerance characterization of the verification pipeline: how fast
// does a subscribed client learn about an attack when the control channel
// between RVaaS and the switches is lossy, and how fast does the verifier's
// view reconverge after a partition heals?
//
//   loss ladder      0 / 1 / 5 / 20 % message loss on every switch's control
//                    channel (both directions); per trial, an exfiltration
//                    rule is injected through the (unfaulted) provider
//                    channel and we record the simulated time until the
//                    subscriber holds a signed ViolationAlert. Loss delays
//                    the passive flow-monitor push, so detection degrades
//                    toward the poll/retry cadence instead of failing.
//   partition        10 of a 12-switch grid's switches are hard-partitioned
//                    while the provider churns rules behind the window;
//                    after it expires we record the simulated time until
//                    every partitioned switch is Healthy again with zero
//                    staleness (probe -> forced reconcile).
//
// Acceptance targets (ROADMAP / ISSUE 8): median time-to-alert at 5 % loss
// within 3x the lossless median; post-partition reconvergence within one
// reverify period. Both are computed and printed as yes/no verdict rows.
//
// Flags: --smoke (3 trials per rung, CI mode)   --json FILE (machine output)

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "sdn/fault_plane.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

constexpr sim::Time kMs = sim::kMillisecond;
constexpr sim::Time kPollPeriod = 20 * kMs;
constexpr sim::Time kReverifyPeriod = 60 * kMs;

double to_ms(sim::Time t) { return static_cast<double>(t) / 1e6; }

workload::ScenarioConfig bench_config(std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.generated = workload::linear(4);
  config.seed = seed;
  config.rvaas.polling = core::PollingMode::Fixed;
  config.rvaas.poll_period = kPollPeriod;
  config.rvaas.reverify_period = kReverifyPeriod;
  return config;
}

// --- loss ladder ------------------------------------------------------------

struct LossRung {
  double loss_pct = 0;
  int trials = 0;
  int detected = 0;
  util::Samples alert_ms;
};

/// One trial: subscribe (clean channel), enable loss, inject the attack via
/// the provider, run until the client holds the alert or the budget ends.
std::optional<double> loss_trial(double loss_pct, std::uint64_t seed) {
  sdn::FaultPlane plane(seed ^ 0xbe7cf417);
  workload::ScenarioRuntime runtime(bench_config(seed));
  plane.set_scope(sdn::ControllerId(2));
  runtime.network().set_fault_plane(&plane);
  const auto& hosts = runtime.hosts();

  bool alerted = false;
  sim::Time alert_at = 0;
  core::Property property;
  property.kind = core::QueryKind::ReachableEndpoints;
  property.expect.allowed_endpoints = {hosts[1], hosts[2], hosts[3]};
  runtime.client(hosts[0]).subscribe(
      property, [&](const core::ClientAgent::MonitorEvent& event) {
        if (event.kind == core::NotificationKind::ViolationAlert &&
            !alerted) {
          alerted = true;
          alert_at = runtime.loop().now();
        }
      });
  runtime.settle(30 * kMs);  // baseline AllClear lands on a clean channel

  if (loss_pct > 0) {
    sdn::FaultSpec lossy;
    lossy.drop_probability = loss_pct / 100.0;
    for (const sdn::SwitchId sw : runtime.network().topology().switches()) {
      plane.set_fault(sw, sdn::FaultDirection::ToSwitch, lossy);
      plane.set_fault(sw, sdn::FaultDirection::FromSwitch, lossy);
    }
    runtime.settle(10 * kMs);
  }

  attacks::ExfiltrationAttack attack(hosts[0], hosts[2]);
  const sim::Time t0 = runtime.loop().now();
  if (!attack.launch(runtime.provider(), runtime.network())) return std::nullopt;

  const sim::Time budget = t0 + 600 * kMs;
  while (!alerted && runtime.loop().now() < budget) runtime.settle(1 * kMs);
  if (!alerted) return std::nullopt;
  return to_ms(alert_at - t0);
}

LossRung run_loss_rung(double loss_pct, int trials) {
  LossRung rung;
  rung.loss_pct = loss_pct;
  rung.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed =
        3000 + static_cast<std::uint64_t>(loss_pct * 100) * 131 +
        static_cast<std::uint64_t>(t);
    if (const auto ms = loss_trial(loss_pct, seed)) {
      ++rung.detected;
      rung.alert_ms.add(*ms);
    }
  }
  return rung;
}

// --- partition reconvergence ------------------------------------------------

struct PartitionResult {
  int trials = 0;
  int reconverged = 0;
  util::Samples reconverge_ms;
};

/// One trial: hard-partition 10 of a 12-switch grid's switches for 50 ms
/// while the provider churns rules behind the partition (so the view
/// genuinely goes stale), then record the simulated time from window
/// expiry until every partitioned switch is Healthy with zero staleness.
std::optional<double> partition_trial(std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.generated = workload::grid(4, 3);  // 12 switches
  config.seed = seed;
  config.rvaas.polling = core::PollingMode::Fixed;
  config.rvaas.poll_period = kPollPeriod;
  config.rvaas.reverify_period = kReverifyPeriod;

  sdn::FaultPlane plane(seed ^ 0x9a57f00d);
  workload::ScenarioRuntime runtime(std::move(config));
  plane.set_scope(sdn::ControllerId(2));
  runtime.network().set_fault_plane(&plane);
  runtime.settle(30 * kMs);

  const auto switches = runtime.network().topology().switches();
  const std::vector<sdn::SwitchId> dark(switches.begin(),
                                        switches.begin() + 10);
  const sim::Time until = runtime.loop().now() + 50 * kMs;
  for (const sdn::SwitchId sw : dark) plane.partition(sw, until);

  // Churn behind the partition: install shadow rules the verifier cannot
  // observe until the window closes, so the healed view has real catching
  // up to do.
  for (std::size_t i = 0; i < dark.size(); i += 3) {
    sdn::FlowMod add;
    add.command = sdn::FlowModCommand::Add;
    add.priority = 3;
    add.match = sdn::Match().exact(sdn::Field::L4Dst, 9955);
    add.actions = {sdn::drop()};
    runtime.provider_flow_mod(dark[i], add);
  }

  while (runtime.loop().now() < until) runtime.settle(1 * kMs);
  const sim::Time healed = runtime.loop().now();
  const sim::Time budget = healed + 300 * kMs;
  while (runtime.loop().now() < budget) {
    const auto converged = [&] {
      for (const sdn::SwitchId sw : dark) {
        if (runtime.rvaas().switch_health(sw) !=
            core::RvaasController::SwitchHealth::Healthy) {
          return false;
        }
      }
      return runtime.rvaas().freshness_for(switches).max_staleness == 0;
    };
    if (converged()) return to_ms(runtime.loop().now() - healed);
    runtime.settle(1 * kMs);
  }
  return std::nullopt;
}

PartitionResult run_partition(int trials) {
  PartitionResult result;
  result.trials = trials;
  for (int t = 0; t < trials; ++t) {
    if (const auto ms = partition_trial(4000 + static_cast<std::uint64_t>(t))) {
      ++result.reconverged;
      result.reconverge_ms.add(*ms);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);
  const int trials = args.smoke ? 3 : 15;

  std::puts("control-channel fault tolerance: time-to-alert under message");
  std::puts("loss, and view reconvergence after a partition heals. All");
  std::puts("times are simulated (fixed 20 ms polls, 60 ms reverify).\n");

  const double rates[] = {0.0, 1.0, 5.0, 20.0};
  std::vector<LossRung> rungs;
  for (const double rate : rates) rungs.push_back(run_loss_rung(rate, trials));

  const double lossless_median =
      rungs[0].alert_ms.empty() ? 0.0 : rungs[0].alert_ms.median();
  util::Table loss_table({"loss-pct", "trials", "detected", "median-ms",
                          "p90-ms", "x-vs-lossless"});
  for (const LossRung& rung : rungs) {
    const bool has = !rung.alert_ms.empty();
    const double median = has ? rung.alert_ms.median() : 0.0;
    loss_table.add_row(
        {util::Table::fmt(rung.loss_pct, 0), std::to_string(rung.trials),
         std::to_string(rung.detected),
         has ? util::Table::fmt(median, 3) : "-",
         has ? util::Table::fmt(rung.alert_ms.percentile(90), 3) : "-",
         has && lossless_median > 0
             ? util::Table::fmt(median / lossless_median, 2)
             : "-"});
  }
  loss_table.print();

  const PartitionResult part = run_partition(trials);
  util::Table part_table({"trials", "reconverged", "partition-ms",
                          "reverify-ms", "median-ms", "p90-ms"});
  part_table.add_row(
      {std::to_string(part.trials), std::to_string(part.reconverged), "50",
       util::Table::fmt(to_ms(kReverifyPeriod), 0),
       part.reconverge_ms.empty() ? "-"
                                  : util::Table::fmt(part.reconverge_ms.median(), 3),
       part.reconverge_ms.empty()
           ? "-"
           : util::Table::fmt(part.reconverge_ms.percentile(90), 3)});
  std::puts("");
  part_table.print();

  // Acceptance verdicts.
  const bool five_ok =
      !rungs[2].alert_ms.empty() && lossless_median > 0 &&
      rungs[2].alert_ms.median() <= 3.0 * lossless_median;
  const bool part_ok = !part.reconverge_ms.empty() &&
                       part.reconverged == part.trials &&
                       part.reconverge_ms.median() <= to_ms(kReverifyPeriod);
  util::Table verdicts({"criterion", "target", "measured", "ok"});
  verdicts.add_row(
      {"5%-loss median alert", "<= 3x lossless",
       rungs[2].alert_ms.empty() || lossless_median <= 0
           ? "-"
           : util::Table::fmt(rungs[2].alert_ms.median() / lossless_median, 2) +
                 "x",
       five_ok ? "yes" : "NO"});
  verdicts.add_row(
      {"partition reconvergence", "<= 1 reverify period",
       part.reconverge_ms.empty()
           ? "-"
           : util::Table::fmt(part.reconverge_ms.median(), 1) + " ms",
       part_ok ? "yes" : "NO"});
  std::puts("");
  verdicts.print();

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json, {{"loss-ladder", &loss_table},
                                             {"partition", &part_table},
                                             {"verdicts", &verdicts}})) {
      return 1;
    }
  }
  return five_ok && part_ok ? 0 : 1;
}
