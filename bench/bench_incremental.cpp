// Incremental snapshot→model compilation under churn: on an N-switch
// provider-routed grid, mutate a varying fraction of switch tables per
// iteration and compare verify latency (model compilation + one reachability
// query) between
//   full — cold QueryEngine::model_uncached(), recompiling every switch,
//   incr — the engine's CompiledModelCache, recompiling only dirty switches.
//
// The paper's control loop re-verifies after every monitored change
// (§IV.A); single-switch churn is the common case there, and the
// incremental path must win big on it (target: >=5x model speedup on the
// 50-switch topology).
//
// Flags: --smoke (tiny topology, 1 iteration)   --json FILE (machine output)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "rvaas/engine.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return 1e3 * std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Mutates one switch's table content through the passive monitor path:
/// modifies a random existing entry's cookie (table size stays constant, so
/// iterations stay comparable), or adds an entry to an empty table.
void churn_one(core::SnapshotManager& snap, sdn::SwitchId sw, util::Rng& rng,
               std::uint64_t& next_id) {
  const auto table = snap.table(sw);
  if (table.empty()) {
    sdn::FlowEntry e;
    e.id = sdn::FlowEntryId(next_id++);
    e.priority = 1;
    e.actions = {sdn::output(sdn::PortNo(0))};
    snap.apply_update({sw, sdn::FlowUpdateKind::Added, e}, 0);
    return;
  }
  sdn::FlowEntry e = table[rng.below(table.size())];
  e.cookie = rng.next_u64();
  snap.apply_update({sw, sdn::FlowUpdateKind::Modified, e}, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);

  workload::ScenarioConfig config;
  config.generated = args.smoke ? workload::grid(2, 2)   // 4 switches
                                : workload::grid(10, 5); // 50 switches
  config.tenant_count = 2;
  config.seed = 23;
  workload::ScenarioRuntime runtime(std::move(config));
  runtime.settle();

  const sdn::Topology& topo = runtime.network().topology();
  const std::size_t n_switches = topo.switch_count();
  const int iters = args.smoke ? 1 : 15;

  // Mirror the provider-routed configuration into a locally owned snapshot
  // we can churn directly.
  core::SnapshotManager snap;
  for (const auto& [sw, entries] : runtime.rvaas().snapshot().table_dump()) {
    for (const sdn::FlowEntry& e : entries) {
      snap.apply_update({sw, sdn::FlowUpdateKind::Added, e}, 0);
    }
  }

  core::QueryEngine engine(topo, core::EngineConfig{});
  core::QueryEngine::BatchContext ctx;
  ctx.from = topo.host_ports(runtime.hosts().front()).front();
  core::Query query;
  query.kind = core::QueryKind::ReachableEndpoints;
  query.constraint =
      sdn::Match().exact(sdn::Field::IpProto, 6).exact(sdn::Field::L4Dst, 443);

  // Warm the cache (and both query paths) before measuring, and pin
  // incremental == full once up front.
  (void)engine.model_uncached(snap);
  if (!(engine.model(snap).transfer() ==
        engine.model_uncached(snap).transfer())) {
    std::fprintf(stderr, "FATAL: incremental model differs from cold model\n");
    return 1;
  }

  std::printf("incremental vs full model compilation under churn — "
              "%zu-switch grid, %zu snapshot entries, %d iterations/row\n\n",
              n_switches, snap.entry_count(), iters);

  // Churn levels: 1 switch (the paper's steady-state case), then growing
  // fractions up to a full-network reconfiguration.
  std::vector<std::size_t> levels{1};
  for (const double frac : {0.1, 0.5, 1.0}) {
    const auto k = static_cast<std::size_t>(
        static_cast<double>(n_switches) * frac + 0.5);
    if (k > 1 && k <= n_switches) levels.push_back(k);
  }

  util::Table table({"churn-switches", "churn-pct", "full-model-ms",
                     "incr-model-ms", "model-speedup", "full-verify-ms",
                     "incr-verify-ms", "verify-speedup"});

  util::Rng rng(2016);
  const auto switches = topo.switches();
  std::uint64_t next_id = 1 << 20;
  double single_switch_model_speedup = 0.0;

  for (const std::size_t k : levels) {
    util::Samples full_model, incr_model, full_total, incr_total;
    for (int it = 0; it < iters; ++it) {
      // Dirty k distinct switches.
      auto picks = switches;
      rng.shuffle(picks);
      for (std::size_t i = 0; i < k; ++i) {
        churn_one(snap, picks[i], rng, next_id);
      }

      {  // Full recompilation baseline.
        const auto t0 = Clock::now();
        const hsa::NetworkModel model = engine.model_uncached(snap);
        const double model_ms = ms_since(t0);
        (void)engine.answer(model, snap, query, ctx);
        full_model.add(model_ms);
        full_total.add(ms_since(t0));
      }
      {  // Incremental path (cache was warmed before the loop).
        const auto t0 = Clock::now();
        const hsa::NetworkModel model = engine.model(snap);
        const double model_ms = ms_since(t0);
        (void)engine.answer(model, snap, query, ctx);
        incr_model.add(model_ms);
        incr_total.add(ms_since(t0));
      }
    }

    const double model_speedup = full_model.mean() / incr_model.mean();
    const double verify_speedup = full_total.mean() / incr_total.mean();
    if (k == 1) single_switch_model_speedup = model_speedup;
    table.add_row({std::to_string(k),
                   util::Table::fmt(100.0 * static_cast<double>(k) /
                                        static_cast<double>(n_switches), 0),
                   util::Table::fmt(full_model.mean(), 3),
                   util::Table::fmt(incr_model.mean(), 3),
                   util::Table::fmt(model_speedup, 1) + "x",
                   util::Table::fmt(full_total.mean(), 3),
                   util::Table::fmt(incr_total.mean(), 3),
                   util::Table::fmt(verify_speedup, 1) + "x"});
  }
  table.print();

  const auto stats = engine.cache_stats();
  util::Table cache({"lookups", "full-rebuilds", "clean-hits",
                     "switch-recompiles", "switch-hits", "switch-hit-rate"});
  cache.add_row({std::to_string(stats.lookups),
                 std::to_string(stats.full_rebuilds),
                 std::to_string(stats.clean_hits),
                 std::to_string(stats.switch_recompiles),
                 std::to_string(stats.switch_hits),
                 util::Table::fmt(100.0 * stats.switch_hit_rate(), 1) + "%"});
  std::puts("\ncache counters over the whole run:");
  cache.print();

  std::printf("\nsingle-switch churn: incremental model compilation is "
              "%.1fx faster than full recompilation (target >= 5x).\n",
              single_switch_model_speedup);

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json,
                                 {{"incremental", &table}, {"cache", &cache}})) {
      return 1;
    }
    std::printf("JSON written to %s\n", args.json.c_str());
  }

  const bool ok = args.smoke || single_switch_model_speedup >= 5.0;
  if (!ok) std::puts("FAIL: single-switch speedup below 5x");
  return ok ? 0 : 1;
}
