// E5 (§III/§IV.A claims): provider autonomy — query answers should reveal
// endpoints only, never internal topology; and query contents must be
// hidden from the provider.
//
// Quantifies leakage: how many internal switches/links a curious client can
// enumerate from query answers, under the EndpointsOnly policy vs the
// FullPaths strawman; plus the sealed-request property.

#include <cstdio>
#include <set>

#include "rvaas/inband.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

/// Internal switch names a client can extract from one reply.
std::set<std::string> leaked_switches(const core::QueryReply& reply,
                                      const sdn::Topology& topo) {
  std::set<std::string> leaked;
  for (const auto& path : reply.disclosed_paths) {
    // Parse "s1->s2->s3" fragments.
    std::size_t pos = 0;
    while ((pos = path.find('s', pos)) != std::string::npos) {
      std::size_t end = pos + 1;
      while (end < path.size() && isdigit(path[end])) ++end;
      leaked.insert(path.substr(pos, end - pos));
      pos = end;
    }
  }
  // Endpoint access points reveal their switch too — but those are edge
  // switches the client already interfaces with; count internal ones only.
  std::set<std::string> internal;
  for (const auto& name : leaked) {
    const sdn::SwitchId sw(
        static_cast<std::uint32_t>(std::stoul(name.substr(1))));
    if (topo.access_ports(sw).empty()) internal.insert(name);
  }
  return internal;
}

std::size_t run_policy(core::ConfidentialityPolicy policy,
                       std::size_t* total_internal) {
  workload::ScenarioConfig config;
  config.generated = workload::fat_tree(4);
  config.seed = 17;
  config.rvaas.policy = policy;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& topo = runtime.network().topology();

  std::size_t internal = 0;
  for (const auto sw : topo.switches()) {
    if (topo.access_ports(sw).empty()) ++internal;
  }
  *total_internal = internal;

  std::set<std::string> leaked;
  for (const auto host : runtime.hosts()) {
    core::Query query;
    query.kind = core::QueryKind::ReachableEndpoints;
    const auto outcome =
        runtime.query_and_wait(host, query, 100 * sim::kMillisecond);
    if (!outcome.reply) continue;
    for (const auto& name : leaked_switches(*outcome.reply, topo)) {
      leaked.insert(name);
    }
  }
  return leaked.size();
}

}  // namespace

int main() {
  std::puts("E5: topology confidentiality — internal switches a curious");
  std::puts("client coalition (all 8 clients) can enumerate from reach-query");
  std::puts("answers on a fat-tree(4) with 12 internal switches.\n");

  std::size_t internal = 0;
  const std::size_t endpoints_only =
      run_policy(core::ConfidentialityPolicy::EndpointsOnly, &internal);
  const std::size_t full_paths =
      run_policy(core::ConfidentialityPolicy::FullPaths, &internal);

  util::Table table({"policy", "internal-switches", "leaked", "leak-rate"});
  table.add_row({"endpoints-only (RVaaS)", std::to_string(internal),
                 std::to_string(endpoints_only),
                 util::Table::fmt(100.0 * endpoints_only / internal, 0) + "%"});
  table.add_row({"full-paths (strawman)", std::to_string(internal),
                 std::to_string(full_paths),
                 util::Table::fmt(100.0 * full_paths / internal, 0) + "%"});
  table.print();

  // Query-content confidentiality: the provider observes the request packet
  // but cannot decrypt it.
  std::puts("\nQuery-content confidentiality (sealed requests):");
  util::Rng rng(3);
  enclave::Enclave rvaas_enclave("rvaas", "1.0", rng);
  enclave::Enclave provider_spy("provider-spy", "1.0", rng);
  core::QueryRequest request;
  request.request_id = 1;
  request.client = sdn::HostId(1);
  const auto packet = core::inband::make_request_packet(
      {0, 0x0a000001}, request, rvaas_enclave.box_public(), rng);
  const bool provider_reads =
      core::inband::open_request(packet, provider_spy).has_value();
  const bool rvaas_reads =
      core::inband::open_request(packet, rvaas_enclave).has_value();
  std::printf("  provider can read query: %s\n", provider_reads ? "YES" : "no");
  std::printf("  RVaaS enclave can read query: %s\n", rvaas_reads ? "yes" : "NO");

  std::puts("\nShape check: the default policy leaks 0 internal switches;");
  std::puts("the strawman leaks the full core. Queries are opaque to the");
  std::puts("provider.");
  return 0;
}
