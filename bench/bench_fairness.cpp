// E10 (§IV.C.b): fairness / network-neutrality checking via meter tables.
// Clients in differently-metered tenants query their minimum configured
// rate; the verdict comparison exposes discriminatory shaping.

#include <cstdio>

#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

struct CaseResult {
  std::uint64_t tenant1_rate;
  std::uint64_t tenant2_rate;
  bool discrimination_visible;
  double query_latency_ms;
};

CaseResult run_case(std::uint64_t rate1_bps, std::uint64_t rate2_bps) {
  workload::ScenarioConfig config;
  config.generated = workload::linear(4);
  config.tenant_count = 2;
  config.seed = 41;
  if (rate1_bps) config.tenant_meters[0] = sdn::MeterConfig{rate1_bps, 10000};
  if (rate2_bps) config.tenant_meters[1] = sdn::MeterConfig{rate2_bps, 10000};
  config.rvaas.poll_period = 5 * sim::kMillisecond;  // meters come from polls
  workload::ScenarioRuntime runtime(std::move(config));
  runtime.settle(25 * sim::kMillisecond);
  const auto& hosts = runtime.hosts();

  core::Query query;
  query.kind = core::QueryKind::Fairness;
  query.constraint = sdn::Match().exact(sdn::Field::Vlan, 0);

  const auto timed1 =
      runtime.query_timed(hosts[0], query, 100 * sim::kMillisecond);
  const auto outcome1 = timed1.outcome;
  const auto outcome2 =
      runtime.query_and_wait(hosts[1], query, 100 * sim::kMillisecond);

  CaseResult result{};
  result.query_latency_ms = sim::to_ms(timed1.latency);
  if (outcome1.reply) result.tenant1_rate = outcome1.reply->fairness[0].value;
  if (outcome2.reply) result.tenant2_rate = outcome2.reply->fairness[0].value;
  result.discrimination_visible = result.tenant1_rate != result.tenant2_rate;
  return result;
}

std::string rate_str(std::uint64_t bps) {
  if (bps == ~std::uint64_t{0}) return "unmetered";
  return util::Table::fmt(static_cast<double>(bps) / 1e6, 0) + "Mbps";
}

}  // namespace

int main() {
  std::puts("E10: fairness / network-neutrality verification via meter");
  std::puts("tables (§IV.C.b). Two tenants, differing meter configurations;");
  std::puts("each client queries the tightest rate applied to its traffic.\n");

  util::Table table({"tenant1-meter", "tenant2-meter", "t1-reported",
                     "t2-reported", "discrimination", "latency-ms"});
  const struct {
    std::uint64_t r1, r2;
  } cases[] = {
      {0, 0},                      // neutral: nobody metered
      {100'000'000, 100'000'000},  // neutral: equal meters
      {10'000'000, 100'000'000},   // tenant 1 throttled
      {10'000'000, 0},             // tenant 1 metered, tenant 2 free
  };
  for (const auto& c : cases) {
    const CaseResult r = run_case(c.r1, c.r2);
    table.add_row({c.r1 ? rate_str(c.r1) : "none",
                   c.r2 ? rate_str(c.r2) : "none", rate_str(r.tenant1_rate),
                   rate_str(r.tenant2_rate),
                   r.discrimination_visible ? "VISIBLE" : "none",
                   util::Table::fmt(r.query_latency_ms, 2)});
  }
  table.print();

  std::puts("\nShape check: equal treatment yields equal answers; any");
  std::puts("differential shaping surfaces as a reported rate difference a");
  std::puts("client coalition can compare out of band.");
  return 0;
}
