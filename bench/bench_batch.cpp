// Batch query throughput: QueryEngine::run_batch on a generated 50-switch
// topology, reporting queries/sec at 1/2/4/8 threads plus the speedup over
// the single-threaded run. The batch amortizes one NetworkModel compilation
// over the whole span; per-query fan-out uses the util::ThreadPool. Speedup
// requires actual cores — on a single-CPU host all rows converge.

#include <chrono>
#include <cstdio>
#include <vector>

#include "rvaas/engine.hpp"
#include "rvaas/geo.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<core::Query> make_batch(const std::vector<sdn::HostId>& hosts,
                                    std::size_t n, util::Rng& rng) {
  // A mixed, shuffled workload so per-thread costs balance statistically.
  const core::QueryKind kinds[] = {
      core::QueryKind::ReachableEndpoints, core::QueryKind::Isolation,
      core::QueryKind::Geo,                core::QueryKind::Fairness,
      core::QueryKind::TransferSummary,    core::QueryKind::PathLength,
  };
  std::vector<core::Query> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::Query q;
    q.kind = kinds[i % std::size(kinds)];
    if (q.kind == core::QueryKind::PathLength) {
      q.peer = hosts[rng.below(hosts.size())];
    }
    if (rng.next_bit()) {
      q.constraint =
          sdn::Match().exact(sdn::Field::IpProto, 6).exact(sdn::Field::L4Dst,
                                                           443);
    }
    batch.push_back(q);
  }
  rng.shuffle(batch);
  return batch;
}

}  // namespace

int main() {
  workload::ScenarioConfig config;
  config.generated = workload::grid(10, 5);  // 50 switches, 50 hosts
  config.tenant_count = 2;
  config.seed = 11;
  workload::ScenarioRuntime runtime(std::move(config));
  runtime.settle();

  const sdn::Topology& topo = runtime.network().topology();
  const core::QueryEngine engine(topo, core::EngineConfig{});
  const core::DisclosedGeo geo(topo);

  core::QueryEngine::BatchContext ctx;
  ctx.from = topo.host_ports(runtime.hosts().front()).front();
  ctx.geo = &geo;
  ctx.addressing = &runtime.addressing();

  util::Rng rng(17);
  constexpr std::size_t kBatchSize = 96;
  const std::vector<core::Query> batch =
      make_batch(runtime.hosts(), kBatchSize, rng);

  // Warm-up: fault in the snapshot tables and touch every query path once.
  engine.run_batch(runtime.rvaas().snapshot(), batch, 1, ctx);

  std::printf("batch query throughput — 50-switch grid, %zu queries/batch\n",
              kBatchSize);
  std::printf("%-8s %12s %12s %10s\n", "threads", "batch-ms", "queries/s",
              "speedup");

  double base_qps = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    // One pool per row, reused across batches (spawn cost amortized).
    util::ThreadPool pool(threads <= 1 ? 0 : threads - 1);
    // Repeat until >= 1s of work for a stable estimate.
    std::size_t batches = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    do {
      engine.run_batch(runtime.rvaas().snapshot(), batch, pool, ctx);
      ++batches;
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < 1.0);
    const double batch_ms = 1e3 * elapsed / static_cast<double>(batches);
    const double qps =
        static_cast<double>(batches * kBatchSize) / elapsed;
    if (threads == 1) base_qps = qps;
    std::printf("%-8zu %12.1f %12.0f %9.2fx\n", threads, batch_ms, qps,
                qps / base_qps);
  }
  return 0;
}
