// Reachability-result caching (the L2 ReachCache tier) under churn: on an
// N-switch provider-routed grid, re-verify a per-client flow working set
// (every access point paired with sampled destination hosts, each constrained
// to the destination's address — the paper's per-client query model) after
// mutating a varying fraction of switch tables, and compare
//   cold — full model recompilation + one uncached reach per flow,
//   warm — CompiledModelCache (L1) + ReachCache (L2): only flows whose
//          dependency footprint intersects the dirty switches recompute.
//
// The paper's polling loop re-verifies after every monitored change (§IV.A);
// single-switch churn is the steady state there, and the cached path must
// win big on it (target: >=5x end-to-end on the 50-switch topology). Also
// reports the parallel all-pairs sweep (QueryEngine::reach_all) cold/warm.
//
// Flags: --smoke (tiny topology, 1 iteration)   --json FILE (machine output)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "rvaas/engine.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return 1e3 * std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Mutates one switch's table content through the passive monitor path
/// (cookie modify keeps table sizes — and iteration cost — constant).
void churn_one(core::SnapshotManager& snap, sdn::SwitchId sw, util::Rng& rng,
               std::uint64_t& next_id) {
  const auto table = snap.table(sw);
  if (table.empty()) {
    sdn::FlowEntry e;
    e.id = sdn::FlowEntryId(next_id++);
    e.priority = 1;
    e.actions = {sdn::output(sdn::PortNo(0))};
    snap.apply_update({sw, sdn::FlowUpdateKind::Added, e}, 0);
    return;
  }
  sdn::FlowEntry e = table[rng.below(table.size())];
  e.cookie = rng.next_u64();
  snap.apply_update({sw, sdn::FlowUpdateKind::Modified, e}, 0);
}

/// One client flow to re-verify: traffic from `ingress` constrained to a
/// destination address.
struct Flow {
  sdn::PortRef ingress;
  hsa::HeaderSpace space;
};

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);

  workload::ScenarioConfig config;
  config.generated = args.smoke ? workload::grid(2, 2)   // 4 switches
                                : workload::grid(10, 5); // 50 switches
  config.tenant_count = 2;
  config.seed = 29;
  workload::ScenarioRuntime runtime(std::move(config));
  runtime.settle();

  const sdn::Topology& topo = runtime.network().topology();
  const std::size_t n_switches = topo.switch_count();
  const int iters = args.smoke ? 1 : 10;

  // Mirror the provider-routed configuration into a locally owned snapshot.
  core::SnapshotManager snap;
  for (const auto& [sw, entries] : runtime.rvaas().snapshot().table_dump()) {
    for (const sdn::FlowEntry& e : entries) {
      snap.apply_update({sw, sdn::FlowUpdateKind::Added, e}, 0);
    }
  }

  core::QueryEngine engine(topo, core::EngineConfig{});

  // Per-client flow working set: every access point, sampled destinations.
  util::Rng rng(2016);
  std::vector<Flow> flows;
  const auto& hosts = runtime.hosts();
  const std::size_t dests_per_ap = args.smoke ? 2 : 3;
  for (const sdn::PortRef ap : topo.all_access_points()) {
    const auto local = topo.host_at(ap);
    for (std::size_t d = 0; d < dests_per_ap; ++d) {
      const sdn::HostId dst = hosts[rng.below(hosts.size())];
      if (local && dst == *local) continue;
      hsa::Wildcard cube;
      cube.set_field(sdn::Field::IpDst, runtime.addressing().of(dst).ip);
      flows.push_back(Flow{ap, hsa::HeaderSpace(cube)});
    }
  }

  // Pin warm == cold once up front on the whole working set.
  {
    const hsa::NetworkModel warm_model = engine.model(snap);
    const hsa::NetworkModel cold_model = engine.model_uncached(snap);
    for (const Flow& f : flows) {
      if (!(*engine.reach(warm_model, snap, f.ingress, f.space) ==
            cold_model.reach(f.ingress, f.space, 64))) {
        std::fprintf(stderr, "FATAL: cached reach differs from cold reach\n");
        return 1;
      }
    }
  }

  std::printf("cached vs cold flow reverification under churn — %zu-switch "
              "grid, %zu flows, %d iterations/row\n\n",
              n_switches, flows.size(), iters);

  std::vector<std::size_t> levels{1};
  for (const double frac : {0.1, 0.5, 1.0}) {
    const auto k = static_cast<std::size_t>(
        static_cast<double>(n_switches) * frac + 0.5);
    if (k > 1 && k <= n_switches) levels.push_back(k);
  }

  util::Table table({"churn-switches", "churn-pct", "cold-ms", "warm-ms",
                     "speedup", "hit-rate"});

  const auto switches = topo.switches();
  std::uint64_t next_id = 1 << 20;
  double single_switch_speedup = 0.0;

  for (const std::size_t k : levels) {
    util::Samples cold_total, warm_total;
    core::ReachCache::Stats level_start = engine.reach_stats();
    for (int it = 0; it < iters; ++it) {
      auto picks = switches;
      rng.shuffle(picks);
      for (std::size_t i = 0; i < k; ++i) {
        churn_one(snap, picks[i], rng, next_id);
      }

      {  // Cold baseline: full recompilation + uncached traversals.
        const auto t0 = Clock::now();
        const hsa::NetworkModel model = engine.model_uncached(snap);
        for (const Flow& f : flows) {
          (void)model.reach(f.ingress, f.space, 64);
        }
        cold_total.add(ms_since(t0));
      }
      {  // Warm path: L1 incremental model + L2 reach cache.
        const auto t0 = Clock::now();
        const hsa::NetworkModel model = engine.model(snap);
        for (const Flow& f : flows) {
          (void)engine.reach(model, snap, f.ingress, f.space);
        }
        warm_total.add(ms_since(t0));
      }
    }

    const double speedup = cold_total.mean() / warm_total.mean();
    if (k == 1) single_switch_speedup = speedup;
    const auto level_end = engine.reach_stats();
    const std::uint64_t lookups = level_end.lookups - level_start.lookups;
    const std::uint64_t hits = level_end.hits - level_start.hits;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(lookups);
    table.add_row({std::to_string(k),
                   util::Table::fmt(100.0 * static_cast<double>(k) /
                                        static_cast<double>(n_switches), 0),
                   util::Table::fmt(cold_total.mean(), 3),
                   util::Table::fmt(warm_total.mean(), 3),
                   util::Table::fmt(speedup, 1) + "x",
                   util::Table::fmt(100.0 * hit_rate, 1) + "%"});
  }
  table.print();

  const auto stats = engine.reach_stats();
  util::Table cache({"lookups", "hits", "misses", "entries-invalidated",
                     "full-clears", "hit-rate"});
  cache.add_row({std::to_string(stats.lookups), std::to_string(stats.hits),
                 std::to_string(stats.misses),
                 std::to_string(stats.entries_invalidated),
                 std::to_string(stats.full_clears),
                 util::Table::fmt(100.0 * stats.hit_rate(), 1) + "%"});
  std::puts("\nreach-cache counters over the whole run:");
  cache.print();

  // Parallel all-pairs sweep (full header space from every access point),
  // on a fresh engine per thread count so each cold sweep really is cold.
  std::puts("\nall-pairs sweep (reach_all, full space from every access "
            "point): cold = empty cache, warm = repeat;");
  std::puts("speedup over threads needs real cores — flat on a 1-CPU host.");
  util::Table sweep({"threads", "cold-sweep-ms", "warm-sweep-ms"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    core::QueryEngine fresh(topo, core::EngineConfig{});
    const auto t0 = Clock::now();
    (void)fresh.reach_all(snap, hsa::HeaderSpace::all(), threads);
    const double cold_ms = ms_since(t0);
    const auto t1 = Clock::now();
    (void)fresh.reach_all(snap, hsa::HeaderSpace::all(), threads);
    const double warm_ms = ms_since(t1);
    sweep.add_row({std::to_string(threads), util::Table::fmt(cold_ms, 3),
                   util::Table::fmt(warm_ms, 3)});
  }
  sweep.print();

  std::printf("\nsingle-switch churn: cached reverification of the flow set "
              "is %.1fx faster end-to-end than the uncached path "
              "(target >= 5x).\n",
              single_switch_speedup);

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json, {{"reach_cache", &table},
                                             {"cache", &cache},
                                             {"reach_all", &sweep}})) {
      return 1;
    }
    std::printf("JSON written to %s\n", args.json.c_str());
  }

  const bool ok = args.smoke || single_switch_speedup >= 5.0;
  if (!ok) std::puts("FAIL: single-switch reverification speedup below 5x");
  return ok ? 0 : 1;
}
