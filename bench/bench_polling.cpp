// E3 (§IV.A claim): "it is also possible for RVaaS to proactively query the
// switches ... at random times, which are hard to guess for the adversary.
// This is important as otherwise, the adversary may simply set the correct
// rules for the short time periods in which the box checks."
//
// Measures the probability that a flapping attack (install rule for `dwell`,
// remove, repeat) is observed, as a function of monitoring discipline:
//   passive        — flow-monitor events (catches everything),
//   fixed-poll     — periodic stats polls, phase known to the attacker
//                    (attacker flaps in anti-phase),
//   random-poll    — exponential inter-poll times (memoryless).

#include <cstdio>

#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

struct Config {
  bool passive;
  core::PollingMode polling;
  const char* label;
};

/// Runs one trial; returns true if the malicious rule was ever observed.
bool run_trial(const Config& mode, sim::Time dwell, std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.generated = workload::linear(3);
  config.seed = seed;
  config.rvaas.passive_monitoring = mode.passive;
  config.rvaas.polling = mode.polling;
  config.rvaas.poll_period = 50 * sim::kMillisecond;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  // Anti-phase flapping: the attacker knows fixed polls land every 50 ms
  // (phase 0) and flaps right after each poll would have happened.
  attacks::ReconfigFlappingAttack attack(hosts[0], 50 * sim::kMillisecond,
                                         dwell);
  attack.launch(runtime.provider(), runtime.network(),
                runtime.loop().now() + 500 * sim::kMillisecond);
  runtime.settle(550 * sim::kMillisecond);

  return runtime.rvaas().snapshot().history_contains(
      [](const core::HistoryRecord& r) { return r.entry.cookie == 0xf1a9; });
}

}  // namespace

int main() {
  std::puts("E3: flapping-attack observation probability vs monitoring");
  std::puts("discipline and rule dwell time (10 trials each, 10 flaps per");
  std::puts("trial, poll period = flap period = 50 ms).\n");

  const Config modes[] = {
      {true, core::PollingMode::Disabled, "passive-events"},
      {false, core::PollingMode::Fixed, "fixed-poll"},
      {false, core::PollingMode::Randomized, "random-poll"},
  };
  const sim::Time dwells[] = {1 * sim::kMillisecond, 5 * sim::kMillisecond,
                              20 * sim::kMillisecond, 40 * sim::kMillisecond};

  util::Table table({"discipline", "dwell-ms", "observed-trials",
                     "detection-rate"});
  for (const Config& mode : modes) {
    for (const sim::Time dwell : dwells) {
      int observed = 0;
      const int kTrials = 10;
      for (int t = 0; t < kTrials; ++t) {
        if (run_trial(mode, dwell, 1000 + static_cast<std::uint64_t>(t))) {
          ++observed;
        }
      }
      table.add_row({mode.label, util::Table::fmt(sim::to_ms(dwell), 0),
                     std::to_string(observed) + "/" + std::to_string(kTrials),
                     util::Table::fmt(100.0 * observed / kTrials, 0) + "%"});
    }
  }
  table.print();

  std::puts("\nShape check: passive events catch every flap; fixed polling");
  std::puts("in anti-phase misses short dwells entirely; randomized polling");
  std::puts("detects with probability ~ 1-(1-dwell/period)^flaps, rising");
  std::puts("with dwell — matching the paper's randomization argument.");
  return 0;
}
