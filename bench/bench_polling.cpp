// E3 (§IV.A claim): "it is also possible for RVaaS to proactively query the
// switches ... at random times, which are hard to guess for the adversary.
// This is important as otherwise, the adversary may simply set the correct
// rules for the short time periods in which the box checks."
//
// Measures the probability that a flapping attack (install rule for `dwell`,
// remove, repeat) is observed, as a function of monitoring discipline:
//   passive        — flow-monitor events (catches everything),
//   fixed-poll     — periodic stats polls, phase known to the attacker
//                    (attacker flaps in anti-phase),
//   random-poll    — exponential inter-poll times (memoryless).
//
// Also reports the CompiledModelCache hit rate per discipline: polls that
// agree with the passive view never bump table epochs, so a client querying
// under steady polling should almost never trigger recompilation.
//
// Flags: --smoke (tiny run, 1 trial)   --json FILE (machine output)

#include <cstdio>

#include "rvaas/monitor.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

struct Config {
  bool passive;
  core::PollingMode polling;
  const char* label;
};

constexpr Config kModes[] = {
    {true, core::PollingMode::Disabled, "passive-events"},
    {false, core::PollingMode::Fixed, "fixed-poll"},
    {false, core::PollingMode::Randomized, "random-poll"},
};

/// Runs one trial; returns true if the malicious rule was ever observed.
bool run_trial(const Config& mode, sim::Time dwell, std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.generated = workload::linear(3);
  config.seed = seed;
  config.rvaas.passive_monitoring = mode.passive;
  config.rvaas.polling = mode.polling;
  config.rvaas.poll_period = 50 * sim::kMillisecond;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  // Anti-phase flapping: the attacker knows fixed polls land every 50 ms
  // (phase 0) and flaps right after each poll would have happened.
  attacks::ReconfigFlappingAttack attack(hosts[0], 50 * sim::kMillisecond,
                                         dwell);
  attack.launch(runtime.provider(), runtime.network(),
                runtime.loop().now() + 500 * sim::kMillisecond);
  runtime.settle(550 * sim::kMillisecond);

  return runtime.rvaas().snapshot().history_contains(
      [](const core::HistoryRecord& r) { return r.entry.cookie == 0xf1a9; });
}

/// Both cache tiers' counters from one monitored trial.
struct CacheTrialStats {
  core::CompiledModelCache::Stats model;  ///< L1: compiled switch transfers
  core::ReachCache::Stats reach;          ///< L2: reachability results
};

/// One monitored scenario with a client re-verifying every 2 ms while the
/// attacker flaps; returns the controller engine's cache counters. The query
/// rate models the paper's polling-driven reverification loop: most cycles
/// see no adopted change, so both tiers should serve nearly every cycle
/// (reach hit rate target: >= 90% per discipline).
CacheTrialStats run_cache_trial(const Config& mode, bool smoke) {
  workload::ScenarioConfig config;
  config.generated = smoke ? workload::linear(3) : workload::linear(10);
  config.seed = 99;
  config.rvaas.passive_monitoring = mode.passive;
  config.rvaas.polling = mode.polling;
  config.rvaas.poll_period = 50 * sim::kMillisecond;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  attacks::ReconfigFlappingAttack attack(hosts[0], 50 * sim::kMillisecond,
                                         20 * sim::kMillisecond);
  // stop_after must outlast the query loop, or the attacker never flaps.
  attack.launch(runtime.provider(), runtime.network(),
                runtime.loop().now() + 400 * sim::kMillisecond);

  core::Query query;
  query.kind = core::QueryKind::ReachableEndpoints;
  const int queries = smoke ? 3 : 100;
  for (int i = 0; i < queries; ++i) {
    (void)runtime.query_and_wait(hosts[1], query);
    runtime.settle(1 * sim::kMillisecond);
  }
  return CacheTrialStats{runtime.rvaas().engine().cache_stats(),
                         runtime.rvaas().engine().reach_stats()};
}

/// One monitored scenario per discipline with a standing-subscription
/// population while the attacker flaps: how many push wakeups does each
/// monitoring discipline generate? Passive events see every flap (wakeups
/// track the attack), fixed anti-phase polling sees none, randomized
/// polling lands in between — the push path inherits the paper's
/// randomization argument directly.
struct WakeupTrialStats {
  std::size_t subs = 0;
  core::PropertyMonitor::Stats monitor;
  std::uint64_t notifications = 0;
};

WakeupTrialStats run_wakeup_trial(const Config& mode, bool smoke) {
  workload::ScenarioConfig config;
  config.generated = smoke ? workload::linear(3) : workload::linear(10);
  config.seed = 7;
  config.rvaas.passive_monitoring = mode.passive;
  config.rvaas.polling = mode.polling;
  config.rvaas.poll_period = 50 * sim::kMillisecond;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  WakeupTrialStats out;
  for (const sdn::HostId client : hosts) {
    core::Property property;
    property.kind = core::QueryKind::ReachableEndpoints;
    runtime.client(client).subscribe(
        property, [](const core::ClientAgent::MonitorEvent&) {},
        core::NotifyPolicy::EveryChange);
    ++out.subs;
  }
  runtime.settle(30 * sim::kMillisecond);  // baseline notifications

  attacks::ReconfigFlappingAttack attack(hosts[0], 50 * sim::kMillisecond,
                                         20 * sim::kMillisecond);
  attack.launch(runtime.provider(), runtime.network(),
                runtime.loop().now() + 400 * sim::kMillisecond);
  runtime.settle(450 * sim::kMillisecond);

  out.monitor = runtime.rvaas().monitor().stats();
  out.notifications = runtime.rvaas().stats().notifications_sent;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);

  std::puts("E3: flapping-attack observation probability vs monitoring");
  std::printf("discipline and rule dwell time (%d trials each, 10 flaps per\n",
              args.smoke ? 1 : 10);
  std::puts("trial, poll period = flap period = 50 ms).\n");

  std::vector<sim::Time> dwells{1 * sim::kMillisecond};
  if (!args.smoke) {
    dwells = {1 * sim::kMillisecond, 5 * sim::kMillisecond,
              20 * sim::kMillisecond, 40 * sim::kMillisecond};
  }

  util::Table table({"discipline", "dwell-ms", "observed-trials",
                     "detection-rate"});
  for (const Config& mode : kModes) {
    for (const sim::Time dwell : dwells) {
      int observed = 0;
      const int kTrials = args.smoke ? 1 : 10;
      for (int t = 0; t < kTrials; ++t) {
        if (run_trial(mode, dwell, 1000 + static_cast<std::uint64_t>(t))) {
          ++observed;
        }
      }
      table.add_row({mode.label, util::Table::fmt(sim::to_ms(dwell), 0),
                     std::to_string(observed) + "/" + std::to_string(kTrials),
                     util::Table::fmt(100.0 * observed / kTrials, 0) + "%"});
    }
  }
  table.print();

  std::puts("\nShape check: passive events catch every flap; fixed polling");
  std::puts("in anti-phase misses short dwells entirely; randomized polling");
  std::puts("detects with probability ~ 1-(1-dwell/period)^flaps, rising");
  std::puts("with dwell — matching the paper's randomization argument.");

  std::puts("\nCache hit rates while a client re-verifies under monitoring");
  std::puts("(flapping attacker active; agreeing polls are epoch-neutral, so");
  std::puts("only adopted configuration changes force recompilation — L1 —");
  std::puts("or footprint-hit reach recomputation — L2):");
  util::Table cache({"discipline", "lookups", "full-rebuilds", "clean-hits",
                     "switch-recompiles", "switch-hits", "switch-hit-rate",
                     "reach-lookups", "reach-hits", "reach-hit-rate"});
  for (const Config& mode : kModes) {
    const auto s = run_cache_trial(mode, args.smoke);
    cache.add_row({mode.label, std::to_string(s.model.lookups),
                   std::to_string(s.model.full_rebuilds),
                   std::to_string(s.model.clean_hits),
                   std::to_string(s.model.switch_recompiles),
                   std::to_string(s.model.switch_hits),
                   util::Table::fmt(100.0 * s.model.switch_hit_rate(), 1) + "%",
                   std::to_string(s.reach.lookups),
                   std::to_string(s.reach.hits),
                   util::Table::fmt(100.0 * s.reach.hit_rate(), 1) + "%"});
  }
  cache.print();

  std::puts("\nSubscription wakeups per monitoring discipline (one standing");
  std::puts("subscription per host while the attacker flaps): the push");
  std::puts("monitor re-evaluates only on observed epoch advances, so its");
  std::puts("wakeup count follows the discipline's observation power.");
  util::Table wakeups({"discipline", "subs", "sweeps", "wakeups",
                       "wakeups-per-sweep", "skipped", "notifications"});
  for (const Config& mode : kModes) {
    const auto s = run_wakeup_trial(mode, args.smoke);
    const double per_sweep =
        s.monitor.sweeps == 0
            ? 0.0
            : static_cast<double>(s.monitor.wakeups) /
                  static_cast<double>(s.monitor.sweeps);
    wakeups.add_row({mode.label, std::to_string(s.subs),
                     std::to_string(s.monitor.sweeps),
                     std::to_string(s.monitor.wakeups),
                     util::Table::fmt(per_sweep, 2),
                     std::to_string(s.monitor.skipped),
                     std::to_string(s.notifications)});
  }
  wakeups.print();

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json, {{"detection", &table},
                                             {"cache", &cache},
                                             {"wakeups", &wakeups}})) {
      return 1;
    }
    std::printf("\nJSON written to %s\n", args.json.c_str());
  }
  return 0;
}
