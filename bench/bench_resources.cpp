// E7 (§I.A claim): RVaaS servers "do not have to inspect live traffic, and
// have low resource requirements; they also do not come with strict latency
// requirements."
//
// Measures the controller's snapshot + history memory, flow-event ingest
// rate, and per-query CPU time as the network scales.

#include <chrono>
#include <cstdio>

#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

void run_case(util::Table& table, const std::string& name,
              workload::GeneratedTopology topo) {
  workload::ScenarioConfig config;
  config.generated = std::move(topo);
  config.seed = 31;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& snap = runtime.rvaas().snapshot();

  // Event ingest rate: feed a burst of synthetic flow updates through the
  // snapshot manager and time it.
  core::SnapshotManager ingest_probe;
  sdn::FlowEntry entry;
  entry.match = sdn::Match().exact(sdn::Field::IpDst, 0x0a000001);
  entry.actions = {sdn::output(sdn::PortNo(1))};
  const int kEvents = 20000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    entry.id = sdn::FlowEntryId(static_cast<std::uint64_t>(i));
    ingest_probe.apply_update(
        {sdn::SwitchId(1), sdn::FlowUpdateKind::Added, entry},
        static_cast<sim::Time>(i));
  }
  const double ingest_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Per-query CPU: wall time of the full logical step.
  const hsa::NetworkModel model = hsa::NetworkModel::from_tables(
      runtime.network().topology(), snap.table_dump());
  const auto ap = runtime.network()
                      .topology()
                      .host_ports(runtime.hosts().front())
                      .front();
  util::Samples query_ms;
  for (int i = 0; i < 5; ++i) {
    const auto q0 = std::chrono::steady_clock::now();
    const auto result = model.reach(ap, hsa::HeaderSpace::all());
    query_ms.add(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - q0)
                     .count());
    (void)result;
  }

  table.add_row(
      {name, std::to_string(runtime.network().topology().switch_count()),
       std::to_string(snap.entry_count()),
       util::Table::fmt(static_cast<double>(snap.approx_memory_bytes()) / 1024.0, 1),
       util::Table::fmt(kEvents / ingest_s / 1000.0, 0) + "k/s",
       util::Table::fmt(query_ms.mean(), 2)});
}

}  // namespace

int main() {
  std::puts("E7: RVaaS controller resource footprint vs network size.");
  std::puts("No live traffic is inspected: state = configuration snapshot +");
  std::puts("bounded history; CPU = logical verification per query.\n");

  util::Table table({"topology", "switches", "snapshot-entries", "memory-KiB",
                     "event-ingest", "reach-cpu-ms"});
  run_case(table, "linear-4", workload::linear(4));
  run_case(table, "grid-3x3", workload::grid(3, 3));
  run_case(table, "fat-tree-4", workload::fat_tree(4));
  run_case(table, "fat-tree-4x2", workload::fat_tree(4, 2));
  run_case(table, "fat-tree-6", workload::fat_tree(6));
  table.print();

  std::puts("\nShape check: memory scales with installed rules (KiB-MiB,");
  std::puts("not traffic volume); event ingest is far above realistic");
  std::puts("control-plane change rates; queries take milliseconds - no");
  std::puts("strict latency requirement, as the paper claims.");
  return 0;
}
