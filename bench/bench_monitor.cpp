// Push vs pull continuous verification on the 50-switch provider-routed
// grid: a population of clients each holds one standing Property
// subscription (traffic to a fixed peer, the paper's per-client flow model),
// and a compromised provider repeatedly injects / removes an exfiltration
// rule at one switch (single-switch churn, the steady state of the paper's
// monitoring loop).
//
//   push  — churn-triggered monitor: a flow-update wakes only subscriptions
//           whose dependency footprint covers the churned switch; the
//           affected client receives a signed ViolationAlert.
//   pull  — re-query-all baseline: no subscriptions; every client re-sends
//           its sealed one-shot query each poll interval (50 ms) and
//           discovers the violation on its next poll.
//
// Reported: median/mean time-to-alert (simulated time from rule injection
// to the victim holding a verified violation verdict) and wakeups-per-churn
// (re-evaluations the monitor ran vs the subscription population). Full
// mode enforces the >= 5x median time-to-alert gate.
//
// Flags: --smoke (tiny topology, 2 cycles)   --json FILE (machine output)

#include <cstdio>
#include <optional>

#include "rvaas/monitor.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

constexpr sdn::ControllerId kProviderId{1};
constexpr sim::Time kPollInterval = 50 * sim::kMillisecond;

struct Setup {
  std::unique_ptr<workload::ScenarioRuntime> runtime;
  std::vector<sdn::HostId> clients;          ///< subscribing / polling hosts
  std::vector<core::Property> properties;    ///< one per client
  sdn::HostId victim{};
  sdn::HostId victim_peer{};
};

Setup make_setup(bool smoke) {
  workload::ScenarioConfig config;
  config.generated = smoke ? workload::grid(2, 2)    // 4 switches
                           : workload::grid(10, 5);  // 50 switches
  config.seed = 77;
  Setup setup;
  setup.runtime =
      std::make_unique<workload::ScenarioRuntime>(std::move(config));
  setup.runtime->settle();

  // Client population: every host (smoke) / a 16-host sample (full), each
  // verifying its flow to a fixed peer — small per-subscription footprints,
  // so single-switch churn touches few of them.
  const auto& hosts = setup.runtime->hosts();
  const std::size_t population = smoke ? hosts.size() : 16;
  for (std::size_t i = 0; i < population; ++i) {
    const sdn::HostId client = hosts[i];
    const sdn::HostId peer = hosts[(i + 7) % hosts.size()];
    core::Property property;
    property.kind = core::QueryKind::ReachableEndpoints;
    property.constraint = sdn::Match().exact(
        sdn::Field::IpDst, setup.runtime->addressing().of(peer).ip);
    setup.clients.push_back(client);
    setup.properties.push_back(std::move(property));
    if (i == 0) {
      setup.victim = client;
      setup.victim_peer = peer;
    }
  }
  return setup;
}

/// Runs the loop until `cond` holds (checked every 0.2 ms of simulated
/// time); false if `deadline` passes first.
template <class Cond>
bool run_until(workload::ScenarioRuntime& runtime, sim::Time deadline,
               Cond&& cond) {
  while (!cond()) {
    if (runtime.loop().now() >= deadline) return false;
    runtime.loop().run_until(runtime.loop().now() + 200 * sim::kMicrosecond);
  }
  return true;
}

/// Removes the exfiltration rule (cookie 0xe4f1) wherever it landed.
std::size_t remove_attack_rules(workload::ScenarioRuntime& runtime) {
  std::size_t removed = 0;
  for (const sdn::SwitchId sw : runtime.network().topology().switches()) {
    for (const auto& entry : runtime.rvaas().snapshot().table(sw)) {
      if (entry.cookie != 0xe4f1) continue;
      sdn::FlowMod mod;
      mod.command = sdn::FlowModCommand::Delete;
      mod.target = entry.id;
      if (runtime.network().switch_sim(sw).apply_flow_mod(kProviderId, mod)
              .ok()) {
        ++removed;
      }
    }
  }
  return removed;
}

struct TrialResult {
  util::Samples alert_ms;  ///< per-cycle time-to-alert, simulated ms
  std::uint64_t cycles_detected = 0;
};

/// Push trial: subscriptions registered once; each cycle injects the attack
/// at a randomized phase and waits for the victim's ViolationAlert.
TrialResult run_push_trial(Setup& setup, int cycles, util::Rng& rng) {
  workload::ScenarioRuntime& runtime = *setup.runtime;
  std::optional<bool> victim_ok;  // latest pushed verdict at the victim
  sim::Time alert_at = 0;

  for (std::size_t i = 0; i < setup.clients.size(); ++i) {
    const bool is_victim = setup.clients[i] == setup.victim;
    runtime.client(setup.clients[i])
        .subscribe(setup.properties[i],
                   [&victim_ok, &alert_at, is_victim,
                    &runtime](const core::ClientAgent::MonitorEvent& event) {
                     if (!is_victim) return;
                     victim_ok = event.verdict.ok;
                     if (!event.verdict.ok) alert_at = runtime.loop().now();
                   });
  }
  // Baseline notifications for the whole population.
  runtime.settle(30 * sim::kMillisecond);

  TrialResult result;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Random phase within a poll period, so push and pull face the same
    // attack schedule distribution.
    runtime.settle(rng.below(kPollInterval));

    attacks::ExfiltrationAttack attack(setup.victim, setup.victim_peer);
    const auto record = attack.launch(runtime.provider(), runtime.network());
    if (!record) {
      std::fprintf(stderr, "FATAL: exfiltration attack failed to launch\n");
      std::exit(1);
    }
    const sim::Time injected_at = runtime.loop().now();
    const bool detected =
        run_until(runtime, injected_at + 2000 * sim::kMillisecond,
                  [&] { return victim_ok.has_value() && !*victim_ok; });
    if (detected) {
      ++result.cycles_detected;
      result.alert_ms.add(sim::to_ms(alert_at - injected_at));
    }

    remove_attack_rules(runtime);
    run_until(runtime, runtime.loop().now() + 2000 * sim::kMillisecond,
              [&] { return victim_ok.has_value() && *victim_ok; });
  }
  return result;
}

/// Pull baseline: every client re-sends its sealed query each poll
/// interval; detection is the victim's first violating verdict.
TrialResult run_pull_trial(Setup& setup, int cycles, util::Rng& rng) {
  workload::ScenarioRuntime& runtime = *setup.runtime;
  bool victim_violated = false;
  sim::Time detected_at = 0;

  // Self-rescheduling pollers, one per client (the re-query-all model).
  // The function object owns itself via shared_ptr so a reschedule firing
  // after this frame unwinds never touches a dead local.
  auto active = std::make_shared<bool>(true);
  auto poll = std::make_shared<std::function<void(std::size_t)>>();
  *poll = [&, active, poll](std::size_t i) {
    if (!*active) return;
    const bool is_victim = setup.clients[i] == setup.victim;
    runtime.client(setup.clients[i])
        .send_query(setup.properties[i].query(),
                    [&, is_victim](const core::ClientAgent::Outcome& outcome) {
                      if (!is_victim || !outcome.reply) return;
                      const core::Verdict verdict = core::evaluate_reply(
                          *outcome.reply, setup.properties[0].expect);
                      victim_violated = !verdict.ok;
                      if (!verdict.ok) detected_at = runtime.loop().now();
                    });
    runtime.loop().schedule_after(kPollInterval, [poll, i, active] {
      if (*active) (*poll)(i);
    });
  };
  for (std::size_t i = 0; i < setup.clients.size(); ++i) (*poll)(i);

  TrialResult result;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    runtime.settle(rng.below(kPollInterval));

    attacks::ExfiltrationAttack attack(setup.victim, setup.victim_peer);
    if (!attack.launch(runtime.provider(), runtime.network())) {
      std::fprintf(stderr, "FATAL: exfiltration attack failed to launch\n");
      std::exit(1);
    }
    const sim::Time injected_at = runtime.loop().now();
    victim_violated = false;
    const bool detected =
        run_until(runtime, injected_at + 2000 * sim::kMillisecond,
                  [&] { return victim_violated; });
    if (detected) {
      ++result.cycles_detected;
      result.alert_ms.add(sim::to_ms(detected_at - injected_at));
    }

    remove_attack_rules(runtime);
    // Let the next clean poll land before the next cycle.
    runtime.settle(kPollInterval + 10 * sim::kMillisecond);
  }
  *active = false;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);
  const int cycles = args.smoke ? 2 : 10;

  std::puts("push (churn-triggered monitor) vs pull (re-query-all each 50 ms)");
  std::puts("time-to-alert for an exfiltration rule injected at one switch,");
  std::puts("randomized phase, provider-routed grid.\n");

  // Separate runtimes so the pull baseline carries no monitor state.
  util::Rng rng(2016);
  Setup push_setup = make_setup(args.smoke);
  const TrialResult push = run_push_trial(push_setup, cycles, rng);
  const auto monitor_stats = push_setup.runtime->rvaas().monitor().stats();
  const auto rvaas_stats = push_setup.runtime->rvaas().stats();

  util::Rng pull_rng(2016);
  Setup pull_setup = make_setup(args.smoke);
  const TrialResult pull = run_pull_trial(pull_setup, cycles, pull_rng);

  util::Table latency({"mode", "cycles-detected", "median-ms", "mean-ms",
                       "p90-ms"});
  const auto add_latency = [&latency, cycles](const char* mode,
                                              const TrialResult& r) {
    latency.add_row({mode,
                     std::to_string(r.cycles_detected) + "/" +
                         std::to_string(cycles),
                     util::Table::fmt(r.alert_ms.median(), 3),
                     util::Table::fmt(r.alert_ms.mean(), 3),
                     util::Table::fmt(r.alert_ms.percentile(90.0), 3)});
  };
  add_latency("push-monitor", push);
  add_latency("pull-requery-all", pull);
  latency.print();

  // Wakeup economics: re-evaluations actually run vs what re-query-all
  // would have evaluated (population x churn events).
  const std::uint64_t subs = push_setup.clients.size();
  const std::uint64_t churn_sweeps = rvaas_stats.monitor_sweeps;
  const double wakeups_per_sweep =
      churn_sweeps == 0
          ? 0.0
          : static_cast<double>(monitor_stats.wakeups) /
                static_cast<double>(churn_sweeps);
  util::Table wakeups({"subscriptions", "sweeps", "wakeups",
                       "wakeups-per-sweep", "skipped", "alerts",
                       "all-clears"});
  wakeups.add_row({std::to_string(subs), std::to_string(churn_sweeps),
                   std::to_string(monitor_stats.wakeups),
                   util::Table::fmt(wakeups_per_sweep, 2),
                   std::to_string(monitor_stats.skipped),
                   std::to_string(monitor_stats.alerts),
                   std::to_string(monitor_stats.all_clears)});
  std::puts("\nmonitor wakeup economics over the push trial (a sweep is one");
  std::puts("coalesced churn event; re-query-all would evaluate every");
  std::puts("subscription every poll interval regardless):");
  wakeups.print();

  const double speedup = push.alert_ms.median() > 0
                             ? pull.alert_ms.median() / push.alert_ms.median()
                             : 0.0;
  std::printf("\nmedian time-to-alert: push %.3f ms vs pull %.3f ms -> %.1fx "
              "(target >= 5x)\n",
              push.alert_ms.median(), pull.alert_ms.median(), speedup);

  bool ok = push.cycles_detected == static_cast<std::uint64_t>(cycles) &&
            pull.cycles_detected == static_cast<std::uint64_t>(cycles);
  if (!ok) std::puts("FAIL: some attack cycles went undetected");

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json, {{"latency", &latency},
                                             {"wakeups", &wakeups}})) {
      return 1;
    }
    std::printf("JSON written to %s\n", args.json.c_str());
  }

  if (!args.smoke && speedup < 5.0) {
    std::puts("FAIL: push median time-to-alert advantage below 5x");
    ok = false;
  }
  // Wakeup proportionality: churn touches one switch, so the monitor must
  // wake far fewer subscriptions than the population per sweep.
  if (!args.smoke && wakeups_per_sweep > static_cast<double>(subs) / 2.0) {
    std::puts("FAIL: wakeups not confined (per-sweep average > half the "
              "population)");
    ok = false;
  }
  return ok ? 0 : 1;
}
