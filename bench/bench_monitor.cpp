// Push vs pull continuous verification on the 50-switch provider-routed
// grid: a population of clients each holds one standing Property
// subscription (traffic to a fixed peer, the paper's per-client flow model),
// and a compromised provider repeatedly injects / removes an exfiltration
// rule at one switch (single-switch churn, the steady state of the paper's
// monitoring loop).
//
//   push  — churn-triggered monitor: a flow-update wakes only subscriptions
//           whose dependency footprint covers the churned switch; the
//           affected client receives a signed ViolationAlert.
//   pull  — re-query-all baseline: no subscriptions; every client re-sends
//           its sealed one-shot query each poll interval (50 ms) and
//           discovers the violation on its next poll.
//
// Reported: median/mean time-to-alert (simulated time from rule injection
// to the victim holding a verified violation verdict) and wakeups-per-churn
// (re-evaluations the monitor ran vs the subscription population). Full
// mode enforces the >= 5x median time-to-alert gate.
//
// A second, engine-level scaling mode grows a synthetic registry to --subs
// subscriptions (default ladder 100k/300k/1M; small in smoke) around a
// fixed set of 64 churn-affected sentinels and measures wall-clock
// time-to-alert for single-switch churn: with the inverted footprint index
// the monitor wakes O(affected) regardless of registry size, so the gate is
// median(1M) <= 2x median(100k). The retired linear scan is timed alongside
// as the O(subs) contrast.
//
// Flags: --smoke (tiny topology, 2 cycles)   --json FILE (machine output)
//        --subs N,M,...|N..M (scaling-mode subscription ladder)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <set>

#include "rvaas/monitor.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

constexpr sdn::ControllerId kProviderId{1};
constexpr sim::Time kPollInterval = 50 * sim::kMillisecond;

struct Setup {
  std::unique_ptr<workload::ScenarioRuntime> runtime;
  std::vector<sdn::HostId> clients;          ///< subscribing / polling hosts
  std::vector<core::Property> properties;    ///< one per client
  sdn::HostId victim{};
  sdn::HostId victim_peer{};
};

Setup make_setup(bool smoke) {
  workload::ScenarioConfig config;
  config.generated = smoke ? workload::grid(2, 2)    // 4 switches
                           : workload::grid(10, 5);  // 50 switches
  config.seed = 77;
  Setup setup;
  setup.runtime =
      std::make_unique<workload::ScenarioRuntime>(std::move(config));
  setup.runtime->settle();

  // Client population: every host (smoke) / a 16-host sample (full), each
  // verifying its flow to a fixed peer — small per-subscription footprints,
  // so single-switch churn touches few of them.
  const auto& hosts = setup.runtime->hosts();
  const std::size_t population = smoke ? hosts.size() : 16;
  for (std::size_t i = 0; i < population; ++i) {
    const sdn::HostId client = hosts[i];
    const sdn::HostId peer = hosts[(i + 7) % hosts.size()];
    core::Property property;
    property.kind = core::QueryKind::ReachableEndpoints;
    property.constraint = sdn::Match().exact(
        sdn::Field::IpDst, setup.runtime->addressing().of(peer).ip);
    setup.clients.push_back(client);
    setup.properties.push_back(std::move(property));
    if (i == 0) {
      setup.victim = client;
      setup.victim_peer = peer;
    }
  }
  return setup;
}

/// Runs the loop until `cond` holds (checked every 0.2 ms of simulated
/// time); false if `deadline` passes first.
template <class Cond>
bool run_until(workload::ScenarioRuntime& runtime, sim::Time deadline,
               Cond&& cond) {
  while (!cond()) {
    if (runtime.loop().now() >= deadline) return false;
    runtime.loop().run_until(runtime.loop().now() + 200 * sim::kMicrosecond);
  }
  return true;
}

/// Removes the exfiltration rule (cookie 0xe4f1) wherever it landed.
std::size_t remove_attack_rules(workload::ScenarioRuntime& runtime) {
  std::size_t removed = 0;
  for (const sdn::SwitchId sw : runtime.network().topology().switches()) {
    for (const auto& entry : runtime.rvaas().snapshot().table(sw)) {
      if (entry.cookie != 0xe4f1) continue;
      sdn::FlowMod mod;
      mod.command = sdn::FlowModCommand::Delete;
      mod.target = entry.id;
      if (runtime.network().switch_sim(sw).apply_flow_mod(kProviderId, mod)
              .ok()) {
        ++removed;
      }
    }
  }
  return removed;
}

struct TrialResult {
  util::Samples alert_ms;  ///< per-cycle time-to-alert, simulated ms
  std::uint64_t cycles_detected = 0;
};

/// Push trial: subscriptions registered once; each cycle injects the attack
/// at a randomized phase and waits for the victim's ViolationAlert.
TrialResult run_push_trial(Setup& setup, int cycles, util::Rng& rng) {
  workload::ScenarioRuntime& runtime = *setup.runtime;
  std::optional<bool> victim_ok;  // latest pushed verdict at the victim
  sim::Time alert_at = 0;

  for (std::size_t i = 0; i < setup.clients.size(); ++i) {
    const bool is_victim = setup.clients[i] == setup.victim;
    runtime.client(setup.clients[i])
        .subscribe(setup.properties[i],
                   [&victim_ok, &alert_at, is_victim,
                    &runtime](const core::ClientAgent::MonitorEvent& event) {
                     if (!is_victim) return;
                     victim_ok = event.verdict.ok;
                     if (!event.verdict.ok) alert_at = runtime.loop().now();
                   });
  }
  // Baseline notifications for the whole population.
  runtime.settle(30 * sim::kMillisecond);

  TrialResult result;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Random phase within a poll period, so push and pull face the same
    // attack schedule distribution.
    runtime.settle(rng.below(kPollInterval));

    attacks::ExfiltrationAttack attack(setup.victim, setup.victim_peer);
    const auto record = attack.launch(runtime.provider(), runtime.network());
    if (!record) {
      std::fprintf(stderr, "FATAL: exfiltration attack failed to launch\n");
      std::exit(1);
    }
    const sim::Time injected_at = runtime.loop().now();
    const bool detected =
        run_until(runtime, injected_at + 2000 * sim::kMillisecond,
                  [&] { return victim_ok.has_value() && !*victim_ok; });
    if (detected) {
      ++result.cycles_detected;
      result.alert_ms.add(sim::to_ms(alert_at - injected_at));
    }

    remove_attack_rules(runtime);
    run_until(runtime, runtime.loop().now() + 2000 * sim::kMillisecond,
              [&] { return victim_ok.has_value() && *victim_ok; });
  }
  return result;
}

/// Pull baseline: every client re-sends its sealed query each poll
/// interval; detection is the victim's first violating verdict.
TrialResult run_pull_trial(Setup& setup, int cycles, util::Rng& rng) {
  workload::ScenarioRuntime& runtime = *setup.runtime;
  bool victim_violated = false;
  sim::Time detected_at = 0;

  // Self-rescheduling pollers, one per client (the re-query-all model).
  // The function object owns itself via shared_ptr so a reschedule firing
  // after this frame unwinds never touches a dead local.
  auto active = std::make_shared<bool>(true);
  auto poll = std::make_shared<std::function<void(std::size_t)>>();
  *poll = [&, active, poll](std::size_t i) {
    if (!*active) return;
    const bool is_victim = setup.clients[i] == setup.victim;
    runtime.client(setup.clients[i])
        .send_query(setup.properties[i].query(),
                    [&, is_victim](const core::ClientAgent::Outcome& outcome) {
                      if (!is_victim || !outcome.reply) return;
                      const core::Verdict verdict = core::evaluate_reply(
                          *outcome.reply, setup.properties[0].expect);
                      victim_violated = !verdict.ok;
                      if (!verdict.ok) detected_at = runtime.loop().now();
                    });
    runtime.loop().schedule_after(kPollInterval, [poll, i, active] {
      if (*active) (*poll)(i);
    });
  };
  for (std::size_t i = 0; i < setup.clients.size(); ++i) (*poll)(i);

  TrialResult result;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    runtime.settle(rng.below(kPollInterval));

    attacks::ExfiltrationAttack attack(setup.victim, setup.victim_peer);
    if (!attack.launch(runtime.provider(), runtime.network())) {
      std::fprintf(stderr, "FATAL: exfiltration attack failed to launch\n");
      std::exit(1);
    }
    const sim::Time injected_at = runtime.loop().now();
    victim_violated = false;
    const bool detected =
        run_until(runtime, injected_at + 2000 * sim::kMillisecond,
                  [&] { return victim_violated; });
    if (detected) {
      ++result.cycles_detected;
      result.alert_ms.add(sim::to_ms(detected_at - injected_at));
    }

    remove_attack_rules(runtime);
    // Let the next clean poll land before the next cycle.
    runtime.settle(kPollInterval + 10 * sim::kMillisecond);
  }
  *active = false;
  return result;
}

// --- engine-level scaling mode -------------------------------------------

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// One ladder rung: a fresh monitor over a copied snapshot, `total`
/// subscriptions of which exactly `sentinels` have the churn switch in
/// their footprint. Background subscriptions enter pre-evaluated with
/// synthetic footprints that avoid the churn switch — their content never
/// matters, they exist to give the index (and the linear reference) a
/// registry worth scanning.
struct ScalingRung {
  double warmup_linear_ms = 0;  ///< first sweep = the O(subs) fallback scan
  util::Samples alert_ms;       ///< apply churn + sweep, wall clock
  util::Samples index_select_us;
  util::Samples linear_select_us;
  bool wakeups_exact = true;  ///< every cycle woke exactly the sentinels
};

ScalingRung run_scaling_rung(Setup& setup, core::QueryEngine& engine,
                             std::size_t total, std::size_t sentinels,
                             int cycles, std::uint64_t seed) {
  workload::ScenarioRuntime& runtime = *setup.runtime;
  const sdn::Topology& topo = runtime.network().topology();
  core::SnapshotManager snap = runtime.rvaas().snapshot();  // fresh identity
  core::PropertyMonitor monitor(engine);
  core::DisclosedGeo geo(topo);
  core::QueryEngine::EvalContext ctx;
  ctx.geo = &geo;
  ctx.addressing = &runtime.addressing();
  util::ThreadPool pool(0);

  const auto& hosts = runtime.hosts();
  const sdn::HostId sentinel_client = hosts.back();
  const sdn::PortRef sentinel_ap = topo.host_ports(sentinel_client).front();
  const sdn::SwitchId churn_sw = sentinel_ap.sw;
  std::vector<sdn::SwitchId> others;
  for (const sdn::SwitchId sw : topo.switches()) {
    if (sw != churn_sw) others.push_back(sw);
  }

  // Background registry: pre-evaluated at the current epoch, synthetic
  // footprints off the churn switch, so single-switch churn never selects
  // them — by either selection path.
  util::Rng rng(seed);
  const std::uint64_t epoch0 = snap.epoch();
  for (std::size_t i = 0; i < total - sentinels; ++i) {
    core::PropertyMonitor::Subscription sub;
    sub.id = 1 + i;
    sub.client = hosts[i % hosts.size()];
    sub.request_point = topo.host_ports(sub.client).front();
    sub.property.kind = core::QueryKind::ReachableEndpoints;
    sub.evaluated = true;
    sub.evaluated_epoch = epoch0;
    std::set<sdn::SwitchId> fp;
    const std::size_t len = std::min<std::size_t>(
        others.size(), 3 + static_cast<std::size_t>(rng.below(4)));
    while (fp.size() < len) fp.insert(others[rng.below(others.size())]);
    sub.footprint.assign(fp.begin(), fp.end());
    monitor.subscribe(std::move(sub));
  }
  // Sentinels: real properties anchored at the churn switch (their ingress),
  // so every re-evaluation keeps the churn switch in their footprint.
  for (std::size_t j = 0; j < sentinels; ++j) {
    core::PropertyMonitor::Subscription sub;
    sub.id = 10'000'000 + j;
    sub.client = sentinel_client;
    sub.request_point = sentinel_ap;
    sub.property.kind = core::QueryKind::ReachableEndpoints;
    sub.property.constraint = sdn::Match().exact(
        sdn::Field::IpDst,
        runtime.addressing().of(hosts[(1 + 7 * j) % hosts.size()]).ip);
    monitor.subscribe(std::move(sub));
  }

  ScalingRung rung;

  // Warmup sweep: no index anchors yet, so this is the retired O(subs)
  // linear scan over the full registry — kept as the baseline contrast —
  // and it runs the sentinels' baseline evaluations.
  const auto w0 = std::chrono::steady_clock::now();
  const auto baseline = monitor.sweep(snap, ctx, pool);
  rung.warmup_linear_ms = elapsed_ms(w0, std::chrono::steady_clock::now());
  if (baseline.size() != sentinels) rung.wakeups_exact = false;

  // Steady state: alternately add / remove one rule at the churn switch;
  // each cycle's time-to-alert is the wall clock from applying the update
  // to holding the re-evaluated wakeups.
  std::optional<sdn::FlowEntry> installed;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    sdn::FlowUpdate update;
    update.sw = churn_sw;
    if (installed) {
      update.kind = sdn::FlowUpdateKind::Removed;
      update.entry = *installed;
      installed.reset();
    } else {
      sdn::FlowEntry e;
      e.id = sdn::FlowEntryId(9'000'000 + static_cast<std::uint64_t>(cycle));
      e.priority = 2;
      e.match = sdn::Match().exact(sdn::Field::L4Dst, 9900);
      e.actions = {sdn::drop()};
      update.kind = sdn::FlowUpdateKind::Added;
      update.entry = e;
      installed = e;
    }

    const auto t0 = std::chrono::steady_clock::now();
    snap.apply_update(update, 0);
    const auto t1 = std::chrono::steady_clock::now();

    // Selection contrast, outside the alert window (both are pure).
    const auto i0 = std::chrono::steady_clock::now();
    const auto indexed = monitor.indexed_wakeups(snap);
    const auto i1 = std::chrono::steady_clock::now();
    const auto linear = monitor.linear_wakeups(snap);
    const auto i2 = std::chrono::steady_clock::now();
    rung.index_select_us.add(elapsed_ms(i0, i1) * 1000.0);
    rung.linear_select_us.add(elapsed_ms(i1, i2) * 1000.0);
    if (indexed != linear) rung.wakeups_exact = false;

    const auto s0 = std::chrono::steady_clock::now();
    const auto wakeups = monitor.sweep(snap, ctx, pool);
    const auto s1 = std::chrono::steady_clock::now();
    rung.alert_ms.add(elapsed_ms(t0, t1) + elapsed_ms(s0, s1));
    if (wakeups.size() != sentinels) rung.wakeups_exact = false;
  }
  return rung;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);
  const int cycles = args.smoke ? 2 : 10;

  std::puts("push (churn-triggered monitor) vs pull (re-query-all each 50 ms)");
  std::puts("time-to-alert for an exfiltration rule injected at one switch,");
  std::puts("randomized phase, provider-routed grid.\n");

  // Separate runtimes so the pull baseline carries no monitor state.
  util::Rng rng(2016);
  Setup push_setup = make_setup(args.smoke);
  const TrialResult push = run_push_trial(push_setup, cycles, rng);
  const auto monitor_stats = push_setup.runtime->rvaas().monitor().stats();
  const auto rvaas_stats = push_setup.runtime->rvaas().stats();

  util::Rng pull_rng(2016);
  Setup pull_setup = make_setup(args.smoke);
  const TrialResult pull = run_pull_trial(pull_setup, cycles, pull_rng);

  util::Table latency({"mode", "cycles-detected", "median-ms", "mean-ms",
                       "p90-ms"});
  const auto add_latency = [&latency, cycles](const char* mode,
                                              const TrialResult& r) {
    latency.add_row({mode,
                     std::to_string(r.cycles_detected) + "/" +
                         std::to_string(cycles),
                     util::Table::fmt(r.alert_ms.median(), 3),
                     util::Table::fmt(r.alert_ms.mean(), 3),
                     util::Table::fmt(r.alert_ms.percentile(90.0), 3)});
  };
  add_latency("push-monitor", push);
  add_latency("pull-requery-all", pull);
  latency.print();

  // Wakeup economics: re-evaluations actually run vs what re-query-all
  // would have evaluated (population x churn events).
  const std::uint64_t subs = push_setup.clients.size();
  const std::uint64_t churn_sweeps = rvaas_stats.monitor_sweeps;
  const double wakeups_per_sweep =
      churn_sweeps == 0
          ? 0.0
          : static_cast<double>(monitor_stats.wakeups) /
                static_cast<double>(churn_sweeps);
  util::Table wakeups({"subscriptions", "sweeps", "wakeups",
                       "wakeups-per-sweep", "skipped", "alerts",
                       "all-clears"});
  wakeups.add_row({std::to_string(subs), std::to_string(churn_sweeps),
                   std::to_string(monitor_stats.wakeups),
                   util::Table::fmt(wakeups_per_sweep, 2),
                   std::to_string(monitor_stats.skipped),
                   std::to_string(monitor_stats.alerts),
                   std::to_string(monitor_stats.all_clears)});
  std::puts("\nmonitor wakeup economics over the push trial (a sweep is one");
  std::puts("coalesced churn event; re-query-all would evaluate every");
  std::puts("subscription every poll interval regardless):");
  wakeups.print();

  const double speedup = push.alert_ms.median() > 0
                             ? pull.alert_ms.median() / push.alert_ms.median()
                             : 0.0;
  std::printf("\nmedian time-to-alert: push %.3f ms vs pull %.3f ms -> %.1fx "
              "(target >= 5x)\n",
              push.alert_ms.median(), pull.alert_ms.median(), speedup);

  bool ok = push.cycles_detected == static_cast<std::uint64_t>(cycles) &&
            pull.cycles_detected == static_cast<std::uint64_t>(cycles);
  if (!ok) std::puts("FAIL: some attack cycles went undetected");

  // --- registry scaling: O(affected) wakeups under single-switch churn ---
  const std::vector<std::size_t> ladder =
      !args.subs.empty() ? args.subs
      : args.smoke       ? std::vector<std::size_t>{2000, 5000, 10000}
                         : std::vector<std::size_t>{100000, 300000, 1000000};
  const int scaling_cycles = args.smoke ? 3 : 9;
  const std::size_t sentinels = 64;

  std::puts("\nregistry scaling: synthetic subscriptions around 64 sentinels");
  std::puts("whose footprint covers the churned switch; time-to-alert is");
  std::puts("apply-update + sweep, wall clock; warmup-linear-ms is the");
  std::puts("retired O(subs) scan the index replaces:");
  core::QueryEngine scaling_engine(
      push_setup.runtime->network().topology(), core::EngineConfig{});
  util::Table scaling({"subscriptions", "affected", "warmup-linear-ms",
                       "median-alert-ms", "p90-alert-ms", "index-select-us",
                       "linear-select-us"});
  double first_median = 0.0, last_median = 0.0;
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const std::size_t total = ladder[r];
    if (total <= sentinels) {
      std::printf("FAIL: --subs rung %zu not above the %zu sentinels\n",
                  total, sentinels);
      ok = false;
      continue;
    }
    const ScalingRung rung = run_scaling_rung(
        push_setup, scaling_engine, total, sentinels, scaling_cycles,
        2016 + r);
    scaling.add_row({std::to_string(total), std::to_string(sentinels),
                     util::Table::fmt(rung.warmup_linear_ms, 3),
                     util::Table::fmt(rung.alert_ms.median(), 3),
                     util::Table::fmt(rung.alert_ms.percentile(90.0), 3),
                     util::Table::fmt(rung.index_select_us.median(), 1),
                     util::Table::fmt(rung.linear_select_us.median(), 1)});
    if (!rung.wakeups_exact) {
      std::printf("FAIL: rung %zu woke a wrong subscription set (expected "
                  "exactly the %zu sentinels, index == linear)\n",
                  total, sentinels);
      ok = false;
    }
    if (r == 0) first_median = rung.alert_ms.median();
    last_median = rung.alert_ms.median();
  }
  scaling.print();

  // The tentpole gate: single-switch churn wakes O(affected), so
  // time-to-alert must stay flat as the registry grows 10x.
  if (!args.smoke && first_median > 0.0 && last_median > 2.0 * first_median) {
    std::printf("FAIL: time-to-alert not flat across the ladder (%.3f ms at "
                "%zu subs vs %.3f ms at %zu; gate is 2x)\n",
                last_median, ladder.back(), first_median, ladder.front());
    ok = false;
  }

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json, {{"latency", &latency},
                                             {"wakeups", &wakeups},
                                             {"scaling", &scaling}})) {
      return 1;
    }
    std::printf("JSON written to %s\n", args.json.c_str());
  }

  if (!args.smoke && speedup < 5.0) {
    std::puts("FAIL: push median time-to-alert advantage below 5x");
    ok = false;
  }
  // Wakeup proportionality: churn touches one switch, so the monitor must
  // wake far fewer subscriptions than the population per sweep.
  if (!args.smoke && wakeups_per_sweep > static_cast<double>(subs) / 2.0) {
    std::puts("FAIL: wakeups not confined (per-sweep average > half the "
              "population)");
    ok = false;
  }
  return ok ? 0 : 1;
}
