// E6 (§IV.B.2): geo-location checks with the paper's three location
// sources — provider-disclosed, crowd-sourced, geo-IP-inferred — at varying
// report error rates. Measures jurisdiction-set accuracy (Jaccard index
// against ground truth) and diversion-detection rate.

#include <cstdio>
#include <set>

#include "util/stats.hpp"
#include "workload/geoip.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

std::set<std::string> truth_jurisdictions(workload::ScenarioRuntime& runtime,
                                          sdn::HostId src, sdn::HostId dst) {
  sdn::Packet p;
  p.hdr.ip_src = runtime.addressing().of(src).ip;
  p.hdr.ip_dst = runtime.addressing().of(dst).ip;
  const auto t = runtime.network().trace_from_host(src, p);
  std::set<std::string> out;
  for (const auto sw : t.traversed_switches()) {
    out.insert(runtime.network().topology().geo(sw).jurisdiction);
  }
  return out;
}

double jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t inter = 0;
  for (const auto& x : a) inter += b.contains(x);
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

struct CaseResult {
  double accuracy;
  bool detects_diversion;
};

CaseResult run_case(const std::string& source, double error_rate,
                    std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.generated = workload::linear(9);
  config.seed = seed;
  config.with_geo = false;  // we install the provider below
  workload::ScenarioRuntime runtime(std::move(config));
  util::Rng rng(seed * 131);

  if (source == "disclosed") {
    runtime.rvaas().set_geo_provider(
        std::make_unique<core::DisclosedGeo>(runtime.network().topology()));
  } else if (source == "crowd") {
    runtime.rvaas().set_geo_provider(workload::synth_crowd_geo(
        runtime.network().topology(), error_rate, rng));
  } else {
    runtime.rvaas().set_geo_provider(std::make_unique<core::GeoIpGeo>(
        runtime.network().topology(), runtime.addressing(),
        workload::synth_geoip_db(runtime.network().topology(),
                                 runtime.addressing(), error_rate, rng)));
  }

  const auto& hosts = runtime.hosts();
  // Accuracy over several (src, dst) pairs.
  util::Samples accuracy;
  const std::pair<int, int> pairs[] = {{0, 2}, {0, 8}, {3, 5}, {2, 6}};
  for (const auto& [a, b] : pairs) {
    core::Query query;
    query.kind = core::QueryKind::Geo;
    query.constraint = sdn::Match().exact(
        sdn::Field::IpDst, runtime.addressing().of(hosts[b]).ip);
    const auto outcome =
        runtime.query_and_wait(hosts[a], query, 100 * sim::kMillisecond);
    if (!outcome.reply) continue;
    const std::set<std::string> reported(outcome.reply->jurisdictions.begin(),
                                         outcome.reply->jurisdictions.end());
    accuracy.add(jaccard(reported, truth_jurisdictions(runtime, hosts[a], hosts[b])));
  }

  // Diversion detection: divert host0->host2 through switch 8 (US third).
  attacks::GeoDiversionAttack attack(hosts[0], hosts[2], sdn::SwitchId(8));
  attack.launch(runtime.provider(), runtime.network());
  runtime.settle();
  core::Query query;
  query.kind = core::QueryKind::Geo;
  query.constraint = sdn::Match().exact(
      sdn::Field::IpDst, runtime.addressing().of(hosts[2]).ip);
  const auto outcome =
      runtime.query_and_wait(hosts[0], query, 100 * sim::kMillisecond);
  core::Expectation expect;
  expect.allowed_jurisdictions = {"DE"};
  const bool detected =
      outcome.reply && !core::evaluate_reply(*outcome.reply, expect).ok;

  return CaseResult{accuracy.mean(), detected};
}

}  // namespace

int main() {
  std::puts("E6: geo-query accuracy (Jaccard vs ground truth) and diversion");
  std::puts("detection for the three location sources of §IV.B.2.\n");

  util::Table table({"source", "report-error", "accuracy", "diversion-detected"});
  const struct {
    const char* source;
    double err;
  } cases[] = {
      {"disclosed", 0.0}, {"crowd", 0.0},  {"crowd", 0.2},
      {"crowd", 0.5},     {"geo-ip", 0.0}, {"geo-ip", 0.2},
      {"geo-ip", 0.5},
  };
  for (const auto& c : cases) {
    const CaseResult r = run_case(c.source, c.err, 23);
    table.add_row({c.source, util::Table::fmt(c.err * 100, 0) + "%",
                   util::Table::fmt(r.accuracy * 100, 1) + "%",
                   r.detects_diversion ? "yes" : "NO"});
  }
  table.print();

  std::puts("\nShape check: disclosed locations are exact; crowd-sourced");
  std::puts("and geo-IP sources degrade gracefully with report error, and");
  std::puts("coarse sources still catch a cross-jurisdiction diversion.");
  return 0;
}
