// Wire front-end load generator: hundreds of concurrent loopback TCP
// sessions against the epoll server (src/net), mixing one-shot queries,
// standing subscriptions and churn-triggered push fan-out.
//
// Per (connections, io-threads) rung:
//   connect  — C sessions (HELLO/WELCOME + attestation verification) from a
//              pool of worker threads,
//   query    — each session loops mixed one-shot queries (geo / transfer /
//              reachable-endpoints every 8th, the latter paying the in-band
//              auth round); reported as q/s with p50/p99 latency,
//   push     — every session holds an EveryChange subscription; a single
//              full-drop rule at the middle switch partitions the fabric, so
//              one coalesced sweep re-evaluates every subscription and pushes
//              a signed alert down every socket (fan-out throughput),
//   teardown — orderly disconnect; the bench fails on any server-side bad
//              frame/envelope or missed push.
//
// The io-thread scaling rungs (full mode, >= 4 hardware threads only: the
// envelope crypto is what parallelizes, which a 1-core host cannot show)
// re-run the query phase at the same C with more I/O threads and require
// throughput to improve.
//
// Flags: --smoke (8 connections, 1 rung, CI gate)   --json FILE
//        --connections N,M,...|N..M   --io-threads N,M,...|N..M

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "net/server.hpp"
#include "net/client.hpp"
#include "util/stats.hpp"
#include "workload/wire_world.hpp"

using namespace rvaas;

namespace {

constexpr sdn::ControllerId kProviderId{1};

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point from) {
  return std::chrono::duration<double>(Clock::now() - from).count();
}

struct World {
  std::unique_ptr<workload::ScenarioRuntime> runtime;
  std::unique_ptr<net::WireService> service;
  std::unique_ptr<net::WireServer> server;
  std::vector<sdn::HostId> wire_hosts;
};

World make_world(std::size_t connections, std::size_t io_threads) {
  workload::ScenarioConfig config;
  // Host-dense line: enough hosts for C wire sessions plus as many
  // in-process agents; 4-host tenants bound the per-query auth fan-out, so
  // per-query cost stays flat as C grows.
  const std::uint32_t per_switch =
      static_cast<std::uint32_t>((2 * connections + 3) / 4);
  config.generated = workload::linear_fanout(4, std::max(2u, per_switch));
  config.tenant_count = std::max<std::size_t>(1, connections / 2);
  config.seed = 2016;
  config.rvaas.auth_timeout = 2 * sim::kMillisecond;
  const auto& hosts = config.generated.hosts;
  World world;
  world.wire_hosts.assign(hosts.end() - connections, hosts.end());
  config.wire_hosts = world.wire_hosts;
  world.runtime =
      std::make_unique<workload::ScenarioRuntime>(std::move(config));
  world.runtime->settle(50 * sim::kMillisecond);

  world.service = std::make_unique<net::WireService>(world.runtime->loop());
  net::WireServerConfig server_config;
  server_config.io_threads = io_threads;
  world.server = std::make_unique<net::WireServer>(
      server_config, world.runtime->rvaas(), *world.service,
      world.runtime->ias().root_key(),
      workload::wire_slots(*world.runtime, world.wire_hosts), 0x3157);
  world.service->start();
  world.server->start();
  return world;
}

/// Runs `fn(client_index)` for every client, sharded over min(C, 16) worker
/// threads (blocking clients: concurrency comes from the pool, not from one
/// thread per socket).
void for_each_client(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = std::min<std::size_t>(count, 16);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < count; i += workers) fn(i);
    });
  }
  for (auto& t : pool) t.join();
}

struct Rung {
  std::size_t connections = 0;
  std::size_t io_threads = 0;
  double connect_s = 0;   ///< wall time to establish all sessions
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double push_per_s = 0;  ///< churn-alert fan-out throughput
  std::uint64_t queries = 0;
  std::uint64_t pushes = 0;
  std::uint64_t failures = 0;  ///< timeouts, bad signatures, missed pushes
};

Rung run_rung(std::size_t connections, std::size_t io_threads, bool smoke) {
  World world = make_world(connections, io_threads);
  Rung rung;
  rung.connections = connections;
  rung.io_threads = io_threads;

  // --- connect ---
  std::vector<std::unique_ptr<net::WireClient>> clients(connections);
  std::atomic<std::uint64_t> failures{0};
  const auto c0 = Clock::now();
  for_each_client(connections, [&](std::size_t i) {
    net::WireClientConfig config;
    config.port = world.server->port();
    config.requested_host = world.wire_hosts[i].value;
    config.seed = 0xc11e + i;
    clients[i] = std::make_unique<net::WireClient>(config);
    if (clients[i]->connect() != net::WelcomeStatus::Ok) ++failures;
  });
  rung.connect_s = elapsed_s(c0);
  if (failures != 0) {
    rung.failures = failures;
    return rung;  // nothing else is meaningful
  }

  // --- one-shot queries ---
  const std::size_t per_conn = smoke ? 4 : 24;
  std::mutex samples_mu;
  util::Samples latency_us;
  const auto q0 = Clock::now();
  for_each_client(connections, [&](std::size_t i) {
    util::Samples local;
    for (std::size_t q = 0; q < per_conn; ++q) {
      core::Query query;
      query.kind = q % 8 == 7   ? core::QueryKind::ReachableEndpoints
                   : q % 2 == 0 ? core::QueryKind::Geo
                                : core::QueryKind::TransferSummary;
      const auto t0 = Clock::now();
      const auto outcome = clients[i]->query(query, 30'000);
      if (outcome.timed_out || !outcome.reply || !outcome.signature_ok) {
        ++failures;
        continue;
      }
      local.add(elapsed_s(t0) * 1e6);
    }
    std::lock_guard<std::mutex> lock(samples_mu);
    for (const double v : local.values()) latency_us.add(v);
  });
  const double query_wall = elapsed_s(q0);
  rung.queries = latency_us.count();
  rung.qps = query_wall > 0 ? static_cast<double>(rung.queries) / query_wall
                            : 0;
  rung.p50_us = latency_us.median();
  rung.p99_us = latency_us.percentile(99.0);

  // --- subscriptions + baseline pushes ---
  std::vector<std::uint64_t> sub_ids(connections);
  for_each_client(connections, [&](std::size_t i) {
    core::Property property;
    property.kind = core::QueryKind::ReachableEndpoints;
    property.expect.require_full_auth = false;  // wire peers may be idle
    sub_ids[i] = clients[i]->subscribe(property,
                                       core::NotifyPolicy::EveryChange);
    if (!clients[i]->wait_notification(30'000)) ++failures;  // baseline
  });

  // --- churn-triggered fan-out ---
  // A full-drop rule at the middle switch cuts the line in half: every
  // subscription's endpoint set changes, one sweep pushes to every session.
  const sdn::SwitchId mid =
      world.runtime->network().topology().switches()[1];
  const int rounds = smoke ? 1 : 3;
  std::atomic<std::uint64_t> pushes{0};
  const auto p0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    world.service->post([&runtime = *world.runtime, mid] {
      sdn::FlowMod mod;
      // Must out-rank the provider's routing rules (priorities <= 10) while
      // staying below the 0xffff control-intercept rule.
      mod.priority = 1000;
      mod.cookie = 0x817e;
      mod.actions = {sdn::drop()};
      runtime.network().switch_sim(mid).apply_flow_mod(kProviderId, mod);
    });
    for_each_client(connections, [&](std::size_t i) {
      if (clients[i]->wait_notification(30'000)) {
        ++pushes;
      } else {
        ++failures;
      }
    });
    // Heal: delete the drop rule (by cookie scan, on the service thread)
    // and drain the recovery push so the next round starts from baseline.
    world.service->post([&runtime = *world.runtime, mid] {
      for (const auto& entry :
           runtime.rvaas().snapshot().table(mid)) {
        if (entry.cookie != 0x817e) continue;
        sdn::FlowMod del;
        del.command = sdn::FlowModCommand::Delete;
        del.target = entry.id;
        runtime.network().switch_sim(mid).apply_flow_mod(kProviderId, del);
      }
    });
    for_each_client(connections, [&](std::size_t i) {
      if (clients[i]->wait_notification(30'000)) {
        ++pushes;
      } else {
        ++failures;
      }
    });
  }
  const double push_wall = elapsed_s(p0);
  rung.pushes = pushes;
  rung.push_per_s =
      push_wall > 0 ? static_cast<double>(pushes) / push_wall : 0;

  // --- teardown ---
  for_each_client(connections, [&](std::size_t i) {
    clients[i]->unsubscribe(sub_ids[i]);
    clients[i]->close();
  });
  const net::WireServer::Stats stats = world.server->stats();
  if (stats.bad_frames + stats.bad_hellos + stats.bad_envelopes != 0) {
    std::printf("FAIL: server flagged %llu bad frames/hellos/envelopes\n",
                static_cast<unsigned long long>(
                    stats.bad_frames + stats.bad_hellos + stats.bad_envelopes));
    ++failures;
  }
  world.server->stop();
  world.service->stop();
  rung.failures = failures;
  return rung;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();

  const std::vector<std::size_t> conn_ladder =
      !args.connections.empty() ? args.connections
      : args.smoke              ? std::vector<std::size_t>{8}
                                : std::vector<std::size_t>{64, 256};
  // The crypto offload only shows with real cores; keep 1-core CI honest.
  const std::vector<std::size_t> io_ladder =
      !args.io_threads.empty() ? args.io_threads
      : (args.smoke || hw < 4) ? std::vector<std::size_t>{1}
                               : std::vector<std::size_t>{1, 4};

  std::puts("wire front-end load: loopback TCP sessions, mixed one-shot");
  std::puts("queries (sealed envelopes, signed replies) + EveryChange");
  std::puts("subscriptions with partition-churn push fan-out.\n");

  util::Table table({"connections", "io-threads", "connect-s", "q/s",
                     "p50-us", "p99-us", "push/s", "queries", "pushes",
                     "failures"});
  bool ok = true;
  std::vector<Rung> rungs;
  for (const std::size_t connections : conn_ladder) {
    for (const std::size_t io_threads : io_ladder) {
      const Rung rung = run_rung(connections, io_threads, args.smoke);
      rungs.push_back(rung);
      table.add_row({std::to_string(rung.connections),
                     std::to_string(rung.io_threads),
                     util::Table::fmt(rung.connect_s, 2),
                     util::Table::fmt(rung.qps, 1),
                     util::Table::fmt(rung.p50_us, 0),
                     util::Table::fmt(rung.p99_us, 0),
                     util::Table::fmt(rung.push_per_s, 1),
                     std::to_string(rung.queries),
                     std::to_string(rung.pushes),
                     std::to_string(rung.failures)});
      if (rung.failures != 0) {
        std::printf("FAIL: rung C=%zu T=%zu had %llu failures\n",
                    rung.connections, rung.io_threads,
                    static_cast<unsigned long long>(rung.failures));
        ok = false;
      }
    }
  }
  table.print();

  // Scaling gate: more I/O threads must not make throughput worse (the
  // envelope crypto parallelizes); only meaningful with real cores.
  if (io_ladder.size() > 1 && hw >= 4) {
    for (const std::size_t connections : conn_ladder) {
      double base = 0, best = 0;
      for (const Rung& r : rungs) {
        if (r.connections != connections) continue;
        if (r.io_threads == io_ladder.front()) base = r.qps;
        best = std::max(best, r.qps);
      }
      if (base > 0 && best < base) {
        std::printf("FAIL: io-thread scaling regressed at C=%zu "
                    "(best %.1f q/s < 1 thread's %.1f)\n",
                    connections, best, base);
        ok = false;
      }
    }
  }

  if (!args.json.empty()) {
    if (!util::write_json_tables(args.json, {{"wire", &table}})) return 1;
    std::printf("JSON written to %s\n", args.json.c_str());
  }
  return ok ? 0 : 1;
}
