// Federated policy-verification scoreboard: how fast are PolicyCompliance
// walks over growing AS graphs, and does the detector still catch the two
// inter-domain attack families at every scale?
//
//   domains ladder   4 / 8 / 16 domains (smoke: 4 only). Each domain is a
//                    full ScenarioRuntime; tier-0 cores are fat-tree(4)
//                    fabrics, everyone else a small random ISP mesh. The
//                    valley-free AS baseline (P50/P45/P44/P40) is installed
//                    by AsWorld.
//   walk sweep       from every provider/peer-fed (transit) ingress, one
//                    PolicyCompliance walk toward an in-cone destination
//                    and one toward a foreign destination; reports/s is
//                    walks over wall-clock time.
//   detection sanity per rung, one route-origin-hijack and one route-leak
//                    are injected and must be flagged (UnauthorizedOrigin /
//                    RouteLeak) by a walk at the attacked ingress, then
//                    reverted.
//
// Acceptance: both attack families detected on every rung (verdict rows,
// non-zero exit otherwise).
//
// Flags: --smoke (4 domains only, CI mode)   --json FILE (machine output)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "hsa/transfer.hpp"
#include "util/stats.hpp"
#include "workload/as_world.hpp"

using namespace rvaas;
using Clock = std::chrono::steady_clock;

namespace {

using core::NeighborClass;
using core::PolicyReportItem;
using core::PolicyVerdict;
using sdn::Field;
using sdn::Match;

Match dst_tcp(std::uint32_t dst) {
  // TCP keeps the walk space clear of the UDP in-band RVaaS rules.
  return Match().exact(Field::IpDst, dst).exact(Field::IpProto,
                                                sdn::kIpProtoTcp);
}

std::optional<std::uint32_t> foreign_ip(workload::AsWorld& world,
                                        std::size_t d) {
  const auto& cone = world.cone_ips(d);
  for (std::size_t x = 0; x < world.domain_count(); ++x) {
    if (x == d) continue;
    for (const auto h : world.domain_hosts(x)) {
      const std::uint32_t ip = control::HostAddressing::derive(h).ip;
      if (std::find(cone.begin(), cone.end(), ip) == cone.end()) return ip;
    }
  }
  return std::nullopt;
}

struct Rung {
  std::uint32_t domains = 0;
  std::size_t ingresses = 0;
  std::size_t walks = 0;
  double walks_per_s = 0;
  std::size_t report_items = 0;
  std::uint32_t max_depth = 0;
  std::size_t subqueries = 0;
  bool hijack_detected = false;
  bool leak_detected = false;
};

bool verdict_present(const core::PolicyVerification& v, PolicyVerdict kind) {
  for (const PolicyReportItem& item : v.reply.policy_report) {
    if (item.verdict == kind) return true;
  }
  return false;
}

Rung run_rung(std::uint32_t n_domains) {
  Rung rung;
  rung.domains = n_domains;

  workload::AsWorldConfig config;
  config.n_domains = n_domains;
  config.seed = 7;
  workload::AsWorld world(config);
  core::Federation& fed = world.federation();

  const auto transit = world.transit_ingresses();
  rung.ingresses = transit.size();

  // --- walk sweep -----------------------------------------------------------
  const auto t0 = Clock::now();
  for (const auto& in : transit) {
    // Highest cone IP = a deepest-customer host: walks that actually cross
    // borders down the provider hierarchy rather than delivering next door.
    std::vector<std::uint32_t> dsts{world.cone_ips(in.domain).back()};
    if (const auto foreign = foreign_ip(world, in.domain)) {
      dsts.push_back(*foreign);
    }
    for (const std::uint32_t dst : dsts) {
      const auto v =
          fed.verify_policy(workload::AsWorld::provider_of(in.domain),
                            in.port, dst_tcp(dst));
      ++rung.walks;
      rung.report_items += v.reply.policy_report.size();
      rung.max_depth = std::max(rung.max_depth, v.max_walk_depth);
      rung.subqueries += v.subqueries;
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  rung.walks_per_s = elapsed > 0 ? static_cast<double>(rung.walks) / elapsed
                                 : 0.0;

  // --- detection sanity -----------------------------------------------------
  if (!transit.empty()) {
    const auto& in = transit.front();
    if (const auto foreign = foreign_ip(world, in.domain)) {
      attacks::RouteOriginHijackAttack hijack(
          *foreign, in.port, world.domain_hosts(in.domain).front());
      if (hijack.launch(world.domain(in.domain).provider(),
                        world.domain(in.domain).network())) {
        world.domain(in.domain).settle();
        const auto v =
            fed.verify_policy(workload::AsWorld::provider_of(in.domain),
                              in.port, dst_tcp(*foreign));
        rung.hijack_detected =
            verdict_present(v, PolicyVerdict::UnauthorizedOrigin);
        hijack.revert(world.domain(in.domain).provider(),
                      world.domain(in.domain).network());
        world.domain(in.domain).settle();
      }
    }
  }
  for (std::size_t i = 0; i < transit.size() && !rung.leak_detected; ++i) {
    for (std::size_t j = 0; j < transit.size(); ++j) {
      if (i == j || transit[i].domain != transit[j].domain) continue;
      const std::size_t d = transit[i].domain;
      const auto foreign = foreign_ip(world, d);
      if (!foreign) continue;
      attacks::RouteLeakAttack leak(transit[i].port, transit[j].port,
                                    *foreign);
      if (!leak.launch(world.domain(d).provider(),
                       world.domain(d).network())) {
        continue;
      }
      world.domain(d).settle();
      const auto v = fed.verify_policy(workload::AsWorld::provider_of(d),
                                       transit[i].port, dst_tcp(*foreign));
      rung.leak_detected = verdict_present(v, PolicyVerdict::RouteLeak);
      leak.revert(world.domain(d).provider(), world.domain(d).network());
      world.domain(d).settle();
      break;
    }
  }
  return rung;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::BenchArgs::parse(argc, argv);

  std::puts("federated policy verification: PolicyCompliance walk sweeps");
  std::puts("over generated AS graphs, plus per-rung detection sanity for");
  std::puts("route-origin-hijack and route-leak.\n");

  std::vector<std::uint32_t> ladder{4, 8, 16};
  if (args.smoke) ladder = {4};

  std::vector<Rung> rungs;
  for (const std::uint32_t n : ladder) rungs.push_back(run_rung(n));

  util::Table table({"domains", "transit-ingresses", "walks", "walks-per-s",
                     "report-items", "max-walk-depth", "subqueries", "hijack",
                     "leak"});
  for (const Rung& rung : rungs) {
    table.add_row({std::to_string(rung.domains),
                   std::to_string(rung.ingresses), std::to_string(rung.walks),
                   util::Table::fmt(rung.walks_per_s, 1),
                   std::to_string(rung.report_items),
                   std::to_string(rung.max_depth),
                   std::to_string(rung.subqueries),
                   rung.hijack_detected ? "detected" : "MISSED",
                   rung.leak_detected ? "detected" : "MISSED"});
  }
  table.print();

  bool all_detected = true;
  util::Table verdicts({"criterion", "target", "measured", "ok"});
  for (const Rung& rung : rungs) {
    const bool ok = rung.hijack_detected && rung.leak_detected;
    all_detected &= ok;
    verdicts.add_row(
        {"attack detection @" + std::to_string(rung.domains) + " domains",
         "hijack+leak flagged",
         std::string(rung.hijack_detected ? "hijack" : "-") + "/" +
             (rung.leak_detected ? "leak" : "-"),
         ok ? "yes" : "NO"});
  }
  std::puts("");
  verdicts.print();

  if (!args.json.empty()) {
    if (!util::write_json_tables(
            args.json, {{"ladder", &table}, {"verdicts", &verdicts}})) {
      return 1;
    }
  }
  return all_detected ? 0 : 1;
}
