// E9 (§I/§III claim): "in the context of high-performance networks ...
// cryptographic per-packet operations (like encryption, signatures, etc.)
// are out of question. Concretely, we rule out signed logs in every packet
// ... and ideally not even per-flow public key operations."
//
// Micro-benchmarks the asymmetric primitives, then contrasts the total
// crypto budget of a per-packet-signing strawman against RVaaS's per-QUERY
// crypto for a realistic traffic mix.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/seal.hpp"
#include "crypto/sign.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace rvaas;

namespace {

void BM_SchnorrSign(benchmark::State& state) {
  util::Rng rng(1);
  const crypto::SigningKey key = crypto::SigningKey::generate(rng);
  const util::Bytes msg = util::to_bytes("a 1500-byte packet digest stand-in");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_SchnorrSign)->Unit(benchmark::kMicrosecond);

void BM_SchnorrVerify(benchmark::State& state) {
  util::Rng rng(2);
  const crypto::SigningKey key = crypto::SigningKey::generate(rng);
  const util::Bytes msg = util::to_bytes("message");
  const crypto::Signature sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.verify_key().verify(msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify)->Unit(benchmark::kMicrosecond);

void BM_SealToEnclave(benchmark::State& state) {
  util::Rng rng(3);
  const crypto::BoxOpener opener = crypto::BoxOpener::generate(rng);
  const util::Bytes msg = util::to_bytes("sealed query payload, ~100 bytes of serialized request data...");
  for (auto _ : state) {
    benchmark::DoNotOptimize(opener.sealer().seal(rng, msg));
  }
}
BENCHMARK(BM_SealToEnclave)->Unit(benchmark::kMicrosecond);

void BM_OpenBox(benchmark::State& state) {
  util::Rng rng(4);
  const crypto::BoxOpener opener = crypto::BoxOpener::generate(rng);
  const crypto::SealedBox box =
      opener.sealer().seal(rng, util::to_bytes("payload"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opener.open(box));
  }
}
BENCHMARK(BM_OpenBox)->Unit(benchmark::kMicrosecond);

void BM_Sha256PerPacket(benchmark::State& state) {
  util::Bytes packet(1500, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(packet));
  }
}
BENCHMARK(BM_Sha256PerPacket);

/// The comparison table the experiment records.
void print_budget_comparison() {
  std::puts("\nCrypto budget: per-packet signing strawman vs RVaaS per-query");
  std::puts("(counts of asymmetric operations; simulated protocol run on a");
  std::puts("linear-6 network, 1 query, vs a flow of N packets).\n");

  workload::ScenarioConfig config;
  config.generated = workload::linear(6);
  config.seed = 71;
  workload::ScenarioRuntime runtime(std::move(config));
  const auto& hosts = runtime.hosts();

  core::Query query;
  query.kind = core::QueryKind::ReachableEndpoints;
  (void)runtime.query_and_wait(hosts[0], query, 100 * sim::kMillisecond);

  const std::uint64_t rvaas_ops = runtime.rvaas().stats().crypto_ops +
                                  runtime.client(hosts[0]).stats().crypto_ops;

  util::Table table({"scheme", "packets", "asym-ops", "ops/packet"});
  for (const std::uint64_t packets : {1000ull, 100000ull, 10000000ull}) {
    // Strawman: every packet signed at source and verified at destination.
    const std::uint64_t strawman = 2 * packets;
    table.add_row({"per-packet signatures", std::to_string(packets),
                   std::to_string(strawman), "2.00"});
    table.add_row({"RVaaS (one query)", std::to_string(packets),
                   std::to_string(rvaas_ops),
                   util::Table::fmt(static_cast<double>(rvaas_ops) /
                                        static_cast<double>(packets),
                                    6)});
  }
  table.print();
  std::printf("\nRVaaS asymmetric ops per verification query: %llu\n",
              static_cast<unsigned long long>(rvaas_ops));
  std::puts("(seal + unseal + N auth signatures/verifications + reply");
  std::puts("sign/seal + client-side open/verify — independent of traffic");
  std::puts("volume, as the paper requires.)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_budget_comparison();
  return 0;
}
