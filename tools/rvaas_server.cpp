// Stand-alone RVaaS wire server: stands up a simulated provider network with
// an RVaaS controller, reserves host slots for TCP sessions, and serves the
// in-band protocol over the epoll front-end (src/net). Pair with
// rvaas_client.
//
//   rvaas_server                          serve on an ephemeral port
//   rvaas_server --port P                 fixed port
//   rvaas_server --io-threads N           front-end I/O threads (default 1)
//   rvaas_server --switches N             fabric size (default 4)
//   rvaas_server --hosts-per-switch H     hosts per switch (default 4)
//   rvaas_server --wire-slots W           TCP-attachable hosts (default half)
//   rvaas_server --seed S                 world seed
//
// Prints "listening on 127.0.0.1:<port>" once ready; stats every 10s and on
// SIGINT/SIGTERM shutdown.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "net/server.hpp"
#include "workload/wire_world.hpp"

using namespace rvaas;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void print_stats(const net::WireServer& server) {
  const net::WireServer::Stats s = server.stats();
  std::printf(
      "sessions=%zu/%zu conns=%llu/%llu frames=%llu/%llu "
      "q=%llu sub=%llu auth=%llu bad=%llu evict=%llu\n",
      server.sessions().active(), server.sessions().capacity(),
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.connections_closed),
      static_cast<unsigned long long>(s.frames_in),
      static_cast<unsigned long long>(s.frames_out),
      static_cast<unsigned long long>(s.requests_in),
      static_cast<unsigned long long>(s.subscribes_in),
      static_cast<unsigned long long>(s.auth_replies_in),
      static_cast<unsigned long long>(s.bad_frames + s.bad_hellos +
                                      s.bad_envelopes),
      static_cast<unsigned long long>(s.evictions));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::size_t io_threads = 1;
  std::uint32_t switches = 4;
  std::uint32_t hosts_per_switch = 4;
  std::size_t wire_slots_count = 0;  // 0 = half the hosts
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (arg == "--io-threads" && i + 1 < argc) {
      io_threads = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--switches" && i + 1 < argc) {
      switches = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (arg == "--hosts-per-switch" && i + 1 < argc) {
      hosts_per_switch =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (arg == "--wire-slots" && i + 1 < argc) {
      wire_slots_count = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  workload::ScenarioConfig config;
  config.generated = workload::linear_fanout(switches, hosts_per_switch);
  config.tenant_count = 2;
  config.seed = seed;
  const std::vector<sdn::HostId>& hosts = config.generated.hosts;
  if (wire_slots_count == 0) wire_slots_count = hosts.size() / 2;
  if (wire_slots_count > hosts.size()) wire_slots_count = hosts.size();
  const std::vector<sdn::HostId> wire_hosts(hosts.end() - wire_slots_count,
                                            hosts.end());
  config.wire_hosts = wire_hosts;

  workload::ScenarioRuntime runtime(std::move(config));
  runtime.settle(50 * sim::kMillisecond);  // routes + monitors in place

  net::WireService service(runtime.loop());
  net::WireServerConfig server_config;
  server_config.port = port;
  server_config.io_threads = io_threads;
  net::WireServer server(server_config, runtime.rvaas(), service,
                         runtime.ias().root_key(),
                         workload::wire_slots(runtime, wire_hosts),
                         seed ^ 0x3157);
  service.start();
  server.start();

  std::printf("listening on 127.0.0.1:%u (%zu slots, %zu io threads)\n",
              server.port(), server.sessions().capacity(), io_threads);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  int ticks = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (++ticks % 100 == 0) print_stats(server);
  }

  print_stats(server);
  server.stop();
  service.stop();
  return 0;
}
