// Unbounded adversarial soak: generates and executes randomized attack/churn
// schedules (src/testing) until an oracle trips or the requested count is
// reached. On failure the schedule is shrunk to a minimal repro, printed,
// and written to a file for CI artifact upload.
//
//   fuzz_soak                 soak forever from the default base seed
//   fuzz_soak --smoke         25 schedules (CI gate)
//   fuzz_soak --count N       stop after N green schedules
//   fuzz_soak --seed S        base seed (schedule i uses S + i)
//   fuzz_soak --out FILE      repro file on failure (default fuzz_repro.txt)
//   fuzz_soak --max-grid N    cap grid schedules at NxN-ish (side 2..4;
//                             default 4 = full 4x4 range)
//   fuzz_soak --faults        include control-channel fault-injection steps
//                             (drop/delay/partition/crash/heal) and run the
//                             fault-equivalence + convergence oracle

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "testing/fuzzer.hpp"
#include "testing/shrink.hpp"

using namespace rvaas;

int main(int argc, char** argv) {
  std::uint64_t base_seed = 0xf055;
  std::uint64_t count = 0;  // 0 = unbounded
  std::string out_path = "fuzz_repro.txt";
  std::uint64_t max_grid_side = 4;
  bool faults = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      count = 25;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--count" && i + 1 < argc) {
      count = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--seed" && i + 1 < argc) {
      base_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--max-grid" && i + 1 < argc) {
      max_grid_side = std::strtoull(argv[++i], nullptr, 0);
      if (max_grid_side < 2 || max_grid_side > 4) {
        std::fprintf(stderr, "--max-grid wants a side in 2..4\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  // Side 2/3/4 → largest size code 0/2/4 (codes interleave non-square
  // shapes: 0=2x2, 1=3x2, 2=3x3, 3=4x3, 4=4x4).
  const auto max_grid_code = static_cast<std::uint32_t>((max_grid_side - 2) * 2);

  std::uint64_t attacks = 0, churn = 0, notifications = 0, detections = 0,
                federation = 0, faults_injected = 0, fault_checks = 0;
  for (std::uint64_t i = 0; count == 0 || i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    const fuzz::Schedule schedule =
        fuzz::generate_schedule(seed, max_grid_code, faults);
    const fuzz::FuzzReport report = fuzz::run_schedule(schedule);
    attacks += report.attacks_launched;
    churn += report.churn_applied;
    notifications += report.notifications_compared;
    detections += report.detection_checks;
    federation += report.federation_checks;
    faults_injected += report.faults_injected;
    fault_checks += report.fault_checks;

    if (report.failure) {
      std::printf("FAILURE at seed %llu, step %zu, oracle %s:\n  %s\n",
                  static_cast<unsigned long long>(seed),
                  report.failure->step_index, report.failure->oracle.c_str(),
                  report.failure->detail.c_str());
      std::printf("shrinking...\n");
      const auto shrunk = fuzz::shrink(schedule);
      const fuzz::Schedule& minimal = shrunk ? shrunk->schedule : schedule;
      if (shrunk) {
        std::printf("shrunk to %zu step(s) in %zu runs (oracle %s: %s)\n",
                    minimal.steps.size(), shrunk->runs,
                    shrunk->failure.oracle.c_str(),
                    shrunk->failure.detail.c_str());
      }
      std::printf("repro (replay with fuzz::replay or tests/test_fuzz.cpp):\n"
                  "  %s\n",
                  minimal.repro().c_str());
      std::ofstream out(out_path);
      out << minimal.repro() << "\n";
      std::printf("repro written to %s\n", out_path.c_str());
      return 1;
    }

    if ((i + 1) % 10 == 0 || (count != 0 && i + 1 == count)) {
      std::string fault_cols;
      if (faults) {
        fault_cols = " | faults " + std::to_string(faults_injected) +
                     " | fault checks " + std::to_string(fault_checks);
      }
      std::printf("%llu schedules green | attacks %llu | churn %llu | "
                  "notifications %llu | detections %llu | federation %llu"
                  "%s\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(attacks),
                  static_cast<unsigned long long>(churn),
                  static_cast<unsigned long long>(notifications),
                  static_cast<unsigned long long>(detections),
                  static_cast<unsigned long long>(federation),
                  fault_cols.c_str());
      std::fflush(stdout);
    }
  }
  std::puts("soak complete: every oracle green.");
  return 0;
}
