// Stand-alone RVaaS wire client: connects to an rvaas_server, verifies the
// enclave attestation from the WELCOME, then runs one-shot queries or holds
// a standing subscription and prints verified pushes.
//
//   rvaas_client --port P                       query ReachableEndpoints
//   rvaas_client --port P --kind geo            other kinds: reach, sources,
//                                               isolation, geo, pathlen,
//                                               fairness, transfer
//   rvaas_client --port P --watch               subscribe + print pushes
//   rvaas_client --server A --host H --seed S   explicit identity/slot
//   rvaas_client --no-attest                    skip quote verification

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.hpp"

using namespace rvaas;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

std::optional<core::QueryKind> parse_kind(const std::string& name) {
  if (name == "reach") return core::QueryKind::ReachableEndpoints;
  if (name == "sources") return core::QueryKind::ReachingSources;
  if (name == "isolation") return core::QueryKind::Isolation;
  if (name == "geo") return core::QueryKind::Geo;
  if (name == "pathlen") return core::QueryKind::PathLength;
  if (name == "fairness") return core::QueryKind::Fairness;
  if (name == "transfer") return core::QueryKind::TransferSummary;
  return std::nullopt;
}

void print_reply(const core::QueryReply& reply, bool signature_ok) {
  std::printf("reply id=%llu kind=%s signature=%s\n",
              static_cast<unsigned long long>(reply.request_id),
              core::to_string(reply.kind), signature_ok ? "ok" : "BAD");
  for (const auto& ep : reply.endpoints) {
    std::printf("  endpoint sw=%u port=%u %s%s", ep.access_point.sw.value,
                ep.access_point.port.value, ep.dark ? "dark " : "",
                ep.authenticated ? "authenticated" : "unauthenticated");
    if (ep.authenticated_as) {
      std::printf(" as host %u", ep.authenticated_as->value);
    }
    std::printf("\n");
  }
  if (!reply.endpoints.empty()) {
    std::printf("  auth %u/%u answered\n", reply.auth.responded,
                reply.auth.issued);
  }
  for (const auto& j : reply.jurisdictions) {
    std::printf("  jurisdiction %s\n", j.c_str());
  }
  for (const auto& m : reply.fairness) {
    std::printf("  fairness %s=%llu\n", m.name.c_str(),
                static_cast<unsigned long long>(m.value));
  }
  for (const auto& e : reply.transfer_summary) {
    std::printf("  egress sw=%u port=%u cubes=%u\n", e.egress.sw.value,
                e.egress.port.value, e.cube_count);
  }
  if (reply.kind == core::QueryKind::PathLength) {
    std::printf("  path found=%d installed=%u optimal=%u\n", reply.path_found,
                reply.installed_path_length, reply.optimal_path_length);
  }
  if (reply.freshness.degraded()) {
    std::printf("  DEGRADED staleness=%lluns unreachable_switches=%zu\n",
                static_cast<unsigned long long>(reply.freshness.max_staleness),
                reply.freshness.unreachable.size());
  } else {
    std::printf("  freshness: footprint fully healthy\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  net::WireClientConfig config;
  core::QueryKind kind = core::QueryKind::ReachableEndpoints;
  bool watch = false;
  int timeout_ms = 5000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--server" && i + 1 < argc) {
      config.server = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      config.port =
          static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (arg == "--host" && i + 1 < argc) {
      config.requested_host =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--kind" && i + 1 < argc) {
      const auto parsed = parse_kind(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "unknown query kind: %s\n", argv[i]);
        return 2;
      }
      kind = *parsed;
    } else if (arg == "--watch") {
      watch = true;
    } else if (arg == "--timeout" && i + 1 < argc) {
      timeout_ms = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
    } else if (arg == "--no-attest") {
      config.verify_attestation = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (config.port == 0) {
    std::fprintf(stderr, "--port is required (see rvaas_server output)\n");
    return 2;
  }

  net::WireClient client(config);
  const net::WelcomeStatus status = client.connect();
  if (status != net::WelcomeStatus::Ok) {
    std::fprintf(stderr, "connect failed (welcome status %d)\n",
                 static_cast<int>(status));
    return 1;
  }
  std::printf("session established: host=%u access_point=sw%u:%u%s\n",
              client.host().value, client.access_point().sw.value,
              client.access_point().port.value,
              config.verify_attestation ? " (attestation verified)" : "");

  if (!watch) {
    core::Query query;
    query.kind = kind;
    const net::WireClient::Outcome outcome = client.query(query, timeout_ms);
    if (outcome.timed_out || !outcome.reply) {
      std::fprintf(stderr, "query timed out\n");
      return 1;
    }
    print_reply(*outcome.reply, outcome.signature_ok);
    return outcome.signature_ok ? 0 : 1;
  }

  core::Property property;
  property.kind = kind;
  const std::uint64_t sub_id =
      client.subscribe(property, core::NotifyPolicy::EveryChange);
  std::printf("subscribed id=%llu; waiting for pushes (^C to stop)\n",
              static_cast<unsigned long long>(sub_id));
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop) {
    const auto event = client.wait_notification(500);
    if (!event) continue;
    std::printf("push sub=%llu seq=%llu epoch=%llu %s verdict=%s\n",
                static_cast<unsigned long long>(event->subscription_id),
                static_cast<unsigned long long>(event->sequence),
                static_cast<unsigned long long>(event->epoch),
                core::to_string(event->kind),
                event->verdict.ok ? "ok" : "VIOLATED");
    print_reply(event->reply, true);
    std::fflush(stdout);
  }
  client.unsubscribe(sub_id);
  return 0;
}
