#pragma once
// Schnorr signatures over the default group. Deterministic nonces (RFC
// 6979-style derivation via HMAC) so signing needs no RNG plumbing.
//
// Used for: RVaaS-signed query replies, client authentication replies,
// attestation quotes, and switch/controller channel authentication.

#include <optional>

#include "crypto/group.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace rvaas::crypto {

/// Stable identifier for a public key (SHA-256 of its serialization).
using KeyId = util::StrongId<struct KeyIdTag, std::uint64_t>;

struct Signature {
  BigUInt e;  ///< challenge = H(r || msg) mod q
  BigUInt s;  ///< response = k + e*x mod q

  util::Bytes serialize() const;
  static Signature deserialize(util::ByteReader& r);
};

class VerifyKey {
 public:
  VerifyKey() = default;
  explicit VerifyKey(BigUInt y);

  const BigUInt& element() const { return y_; }
  KeyId id() const { return id_; }

  bool verify(std::span<const std::uint8_t> message, const Signature& sig) const;

  util::Bytes serialize() const;
  static VerifyKey deserialize(util::ByteReader& r);

  bool operator==(const VerifyKey& other) const { return id_ == other.id_; }

 private:
  BigUInt y_;
  KeyId id_{};
};

class SigningKey {
 public:
  /// Generates a fresh key pair from the given RNG.
  static SigningKey generate(util::Rng& rng);

  const VerifyKey& verify_key() const { return vk_; }
  Signature sign(std::span<const std::uint8_t> message) const;

 private:
  SigningKey(BigUInt x, VerifyKey vk) : x_(std::move(x)), vk_(std::move(vk)) {}

  BigUInt x_;
  VerifyKey vk_;
};

}  // namespace rvaas::crypto
