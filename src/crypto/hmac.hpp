#pragma once
// HMAC-SHA-256 (RFC 2104), verified against RFC 4231 vectors.

#include <span>

#include "crypto/sha256.hpp"

namespace rvaas::crypto {

Digest32 hmac_sha256(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> message);

/// Constant-shape comparison (the simulation does not model timing channels,
/// but we keep the discipline).
bool digest_equal(const Digest32& a, const Digest32& b);

}  // namespace rvaas::crypto
