#pragma once
// Minimal arbitrary-precision unsigned integer arithmetic, sufficient for
// Schnorr signatures and Diffie-Hellman key encapsulation over a 256-bit
// safe-prime group. Little-endian 32-bit limbs; schoolbook multiplication;
// Knuth Algorithm D division. Not constant-time (simulation-grade crypto;
// see DESIGN.md §2).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace rvaas::crypto {

class BigUInt;

/// Result of BigUInt::divmod.
struct BigUIntDivMod;

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(std::uint64_t v);

  static BigUInt from_hex(std::string_view hex);
  /// Big-endian byte import (leading zeros allowed).
  static BigUInt from_bytes(std::span<const std::uint8_t> be);
  /// Uniform value in [0, bound) via rejection sampling. bound must be > 0.
  static BigUInt random_below(util::Rng& rng, const BigUInt& bound);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  /// Three-way compare: -1, 0, +1.
  int compare(const BigUInt& other) const;
  bool operator==(const BigUInt& other) const { return compare(other) == 0; }
  bool operator!=(const BigUInt& other) const { return compare(other) != 0; }
  bool operator<(const BigUInt& other) const { return compare(other) < 0; }
  bool operator<=(const BigUInt& other) const { return compare(other) <= 0; }
  bool operator>(const BigUInt& other) const { return compare(other) > 0; }
  bool operator>=(const BigUInt& other) const { return compare(other) >= 0; }

  BigUInt add(const BigUInt& other) const;
  /// Requires *this >= other.
  BigUInt sub(const BigUInt& other) const;
  BigUInt mul(const BigUInt& other) const;
  /// Returns {quotient, remainder}; divisor must be non-zero.
  BigUIntDivMod divmod(const BigUInt& divisor) const;
  BigUInt mod(const BigUInt& m) const;

  BigUInt shift_left(std::size_t bits) const;
  BigUInt shift_right(std::size_t bits) const;

  /// (a * b) mod m
  static BigUInt modmul(const BigUInt& a, const BigUInt& b, const BigUInt& m);
  /// (a + b) mod m, assuming a, b < m.
  static BigUInt modadd(const BigUInt& a, const BigUInt& b, const BigUInt& m);
  /// (base ^ exp) mod m; m must be > 1.
  static BigUInt modpow(const BigUInt& base, const BigUInt& exp,
                        const BigUInt& m);

  /// Miller-Rabin with `rounds` random bases (deterministic given rng seed).
  static bool is_probable_prime(const BigUInt& n, util::Rng& rng,
                                int rounds = 32);

  std::string to_hex() const;
  /// Big-endian export, left-padded with zeros to `len` bytes (throws if the
  /// value does not fit).
  util::Bytes to_bytes(std::size_t len) const;
  util::Bytes to_bytes() const;  // minimal length (1 byte for zero)
  std::uint64_t to_u64() const;  // throws if it does not fit

 private:
  void normalize();

  // Little-endian limbs, most significant limb non-zero (empty == 0).
  std::vector<std::uint32_t> limbs_;
};

struct BigUIntDivMod {
  BigUInt quotient;
  BigUInt remainder;
};

inline BigUInt BigUInt::mod(const BigUInt& m) const {
  return divmod(m).remainder;
}

}  // namespace rvaas::crypto
