#include "crypto/bignum.hpp"

#include <algorithm>

#include "util/ensure.hpp"
#include "util/hex.hpp"

namespace rvaas::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigUInt::BigUInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes(util::from_hex(padded));
}

BigUInt BigUInt::from_bytes(std::span<const std::uint8_t> be) {
  BigUInt out;
  out.limbs_.assign((be.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // Byte i (big-endian) contributes to bit offset 8*(size-1-i).
    const std::size_t byte_from_low = be.size() - 1 - i;
    out.limbs_[byte_from_low / 4] |= static_cast<std::uint32_t>(be[i])
                                     << (8 * (byte_from_low % 4));
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::random_below(util::Rng& rng, const BigUInt& bound) {
  util::ensure(!bound.is_zero(), "random_below requires bound > 0");
  const std::size_t bits = bound.bit_length();
  const std::size_t nlimbs = (bits + 31) / 32;
  while (true) {
    BigUInt candidate;
    candidate.limbs_.resize(nlimbs);
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<std::uint32_t>(rng.next_u64());
    }
    // Mask the top limb down to the bound's bit length.
    const std::size_t top_bits = bits - 32 * (nlimbs - 1);
    if (top_bits < 32) {
      candidate.limbs_.back() &= (1u << top_bits) - 1;
    }
    candidate.normalize();
    if (candidate < bound) return candidate;
  }
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = 32 * (limbs_.size() - 1);
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigUInt::compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt BigUInt::add(const BigUInt& other) const {
  BigUInt out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.normalize();
  return out;
}

BigUInt BigUInt::sub(const BigUInt& other) const {
  util::ensure(*this >= other, "BigUInt::sub would underflow");
  BigUInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::mul(const BigUInt& other) const {
  if (is_zero() || other.is_zero()) return BigUInt{};
  BigUInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) +
          static_cast<std::uint64_t>(limbs_[i]) * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::shift_left(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigUInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.normalize();
  return out;
}

BigUInt BigUInt::shift_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUInt{};
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift > 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.normalize();
  return out;
}

BigUIntDivMod BigUInt::divmod(const BigUInt& divisor) const {
  util::ensure(!divisor.is_zero(), "BigUInt division by zero");
  if (*this < divisor) return {BigUInt{}, *this};

  // Single-limb divisor: simple short division.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigUInt q;
    q.limbs_.resize(limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, BigUInt(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, which keeps the quotient-digit estimate within 2 of the true value.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while (!(top & 0x80000000u)) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUInt u_norm = shift_left(static_cast<std::size_t>(shift));
  const BigUInt v_norm = divisor.shift_left(static_cast<std::size_t>(shift));
  const std::size_t n = v_norm.limbs_.size();
  std::vector<std::uint32_t> u = u_norm.limbs_;
  u.resize(std::max(u.size(), limbs_.size() + 1), 0);
  if (u.size() < n + 1) u.resize(n + 1, 0);
  const std::size_t m = u.size() - n;
  const std::vector<std::uint32_t>& v = v_norm.limbs_;

  BigUInt q;
  q.limbs_.assign(m, 0);

  for (std::size_t j = m; j-- > 0;) {
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v[n - 1];
    std::uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-and-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffULL) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    if (diff < 0) {
      // qhat was one too large: add divisor back.
      diff += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      diff += static_cast<std::int64_t>(carry2);
    }
    u[j + n] = static_cast<std::uint32_t>(diff);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.normalize();
  BigUInt r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<long>(n));
  r.normalize();
  return {q, r.shift_right(static_cast<std::size_t>(shift))};
}

BigUInt BigUInt::modmul(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  return a.mul(b).mod(m);
}

BigUInt BigUInt::modadd(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  BigUInt sum = a.add(b);
  if (sum >= m) sum = sum.sub(m);
  return sum;
}

BigUInt BigUInt::modpow(const BigUInt& base, const BigUInt& exp,
                        const BigUInt& m) {
  util::ensure(m > BigUInt(1), "modpow modulus must be > 1");
  BigUInt result(1);
  BigUInt acc = base.mod(m);
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = modmul(result, acc, m);
    if (i + 1 < bits) acc = modmul(acc, acc, m);
  }
  return result;
}

bool BigUInt::is_probable_prime(const BigUInt& n, util::Rng& rng, int rounds) {
  static const std::uint32_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                               23, 29, 31, 37, 41, 43, 47};
  if (n < BigUInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigUInt bp(p);
    if (n == bp) return true;
    if (n.mod(bp).is_zero()) return false;
  }

  // n - 1 = d * 2^r with d odd.
  const BigUInt n_minus_1 = n.sub(BigUInt(1));
  BigUInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d.shift_right(1);
    ++r;
  }

  const BigUInt two(2);
  const BigUInt n_minus_3 = n.sub(BigUInt(3));
  for (int round = 0; round < rounds; ++round) {
    const BigUInt a = random_below(rng, n_minus_3).add(two);  // [2, n-2]
    BigUInt x = modpow(a, d, n);
    if (x == BigUInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = modmul(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  std::string hex = util::to_hex(to_bytes());
  // Strip leading zero nibbles.
  std::size_t first = hex.find_first_not_of('0');
  return hex.substr(first);
}

util::Bytes BigUInt::to_bytes(std::size_t len) const {
  util::Bytes minimal = to_bytes();
  util::ensure(minimal.size() <= len, "BigUInt does not fit requested length");
  util::Bytes out(len - minimal.size(), 0);
  out.insert(out.end(), minimal.begin(), minimal.end());
  return out;
}

util::Bytes BigUInt::to_bytes() const {
  if (is_zero()) return util::Bytes{0};
  util::Bytes out;
  const std::size_t nbytes = (bit_length() + 7) / 8;
  out.resize(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const std::size_t byte_from_low = nbytes - 1 - i;
    out[i] = static_cast<std::uint8_t>(
        limbs_[byte_from_low / 4] >> (8 * (byte_from_low % 4)));
  }
  return out;
}

std::uint64_t BigUInt::to_u64() const {
  util::ensure(bit_length() <= 64, "BigUInt does not fit in u64");
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

}  // namespace rvaas::crypto
