#include "crypto/seal.hpp"

#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "util/ensure.hpp"

namespace rvaas::crypto {

namespace {

struct DerivedKeys {
  util::Bytes stream_key;
  util::Bytes mac_key;
};

DerivedKeys derive_keys(const BigUInt& shared) {
  const Group& grp = default_group();
  const util::Bytes sb = shared.to_bytes(grp.element_bytes());
  DerivedKeys keys;
  keys.stream_key = digest_bytes(Sha256().update("rvaas-seal-stream").update(sb).finalize());
  keys.mac_key = digest_bytes(Sha256().update("rvaas-seal-mac").update(sb).finalize());
  return keys;
}

Digest32 compute_tag(const DerivedKeys& keys, const SealedBox& box) {
  util::ByteWriter w;
  w.put_bytes(box.ephemeral.to_bytes());
  w.put_bytes(box.nonce);
  w.put_bytes(box.cipher);
  return hmac_sha256(keys.mac_key, w.data());
}

}  // namespace

util::Bytes SealedBox::serialize() const {
  util::ByteWriter w;
  w.put_bytes(ephemeral.to_bytes());
  w.put_bytes(nonce);
  w.put_bytes(cipher);
  w.put_raw(tag);
  return w.take();
}

SealedBox SealedBox::deserialize(util::ByteReader& r) {
  SealedBox box;
  box.ephemeral = BigUInt::from_bytes(r.get_bytes());
  box.nonce = r.get_bytes();
  box.cipher = r.get_bytes();
  const util::Bytes tag = r.get_raw(box.tag.size());
  std::copy(tag.begin(), tag.end(), box.tag.begin());
  return box;
}

SealedBox BoxSealer::seal(util::Rng& rng,
                          std::span<const std::uint8_t> plaintext) const {
  const Group& grp = default_group();
  const BigUInt y =
      BigUInt::random_below(rng, grp.q.sub(BigUInt(1))).add(BigUInt(1));
  const BigUInt shared = BigUInt::modpow(recipient_, y, grp.p);
  const DerivedKeys keys = derive_keys(shared);

  SealedBox box;
  box.ephemeral = grp.exp(y);
  box.nonce.resize(16);
  for (auto& b : box.nonce) b = static_cast<std::uint8_t>(rng.next_u64());
  box.cipher = xor_stream(keys.stream_key, box.nonce, plaintext);
  box.tag = compute_tag(keys, box);
  return box;
}

BoxOpener BoxOpener::generate(util::Rng& rng) {
  const Group& grp = default_group();
  BigUInt x = BigUInt::random_below(rng, grp.q.sub(BigUInt(1))).add(BigUInt(1));
  BigUInt pub = grp.exp(x);
  return BoxOpener(std::move(x), std::move(pub));
}

std::optional<util::Bytes> BoxOpener::open(const SealedBox& box) const {
  const Group& grp = default_group();
  if (!grp.is_element(box.ephemeral)) return std::nullopt;
  const BigUInt shared = BigUInt::modpow(box.ephemeral, x_, grp.p);
  const DerivedKeys keys = derive_keys(shared);
  if (!digest_equal(compute_tag(keys, box), box.tag)) return std::nullopt;
  return xor_stream(keys.stream_key, box.nonce, box.cipher);
}

}  // namespace rvaas::crypto
