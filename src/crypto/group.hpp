#pragma once
// Schnorr group: prime-order subgroup of Z_p^* for a safe prime p = 2q + 1.
// The default group uses a fixed 256-bit safe prime (generated offline from a
// fixed seed). Simulation-grade parameters: a production deployment would use
// Ed25519 or a 2048-bit MODP group; the protocol code is parameter-agnostic.

#include "crypto/bignum.hpp"

namespace rvaas::crypto {

struct Group {
  BigUInt p;  ///< safe prime modulus
  BigUInt q;  ///< subgroup order, q = (p - 1) / 2
  BigUInt g;  ///< generator of the order-q subgroup

  /// Number of bytes needed to serialize a group element.
  std::size_t element_bytes() const { return (p.bit_length() + 7) / 8; }

  /// g^x mod p
  BigUInt exp(const BigUInt& x) const { return BigUInt::modpow(g, x, p); }

  /// true iff e is a valid element of the order-q subgroup (e^q == 1, e != 0).
  bool is_element(const BigUInt& e) const;
};

/// The library-wide default group (cached; thread-safe initialization).
const Group& default_group();

}  // namespace rvaas::crypto
