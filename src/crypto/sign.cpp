#include "crypto/sign.hpp"

#include "crypto/hmac.hpp"
#include "util/ensure.hpp"

namespace rvaas::crypto {

namespace {

/// Hash-to-scalar: H(tag || data) reduced mod q.
BigUInt hash_to_scalar(std::string_view tag, std::span<const std::uint8_t> a,
                       std::span<const std::uint8_t> b) {
  Sha256 h;
  h.update(tag);
  h.update(a);
  h.update(b);
  const Digest32 d = h.finalize();
  return BigUInt::from_bytes(d).mod(default_group().q);
}

KeyId key_id_of(const BigUInt& y) {
  const Digest32 d = sha256(y.to_bytes());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return KeyId(v);
}

}  // namespace

util::Bytes Signature::serialize() const {
  util::ByteWriter w;
  w.put_bytes(e.to_bytes());
  w.put_bytes(s.to_bytes());
  return w.take();
}

Signature Signature::deserialize(util::ByteReader& r) {
  Signature sig;
  sig.e = BigUInt::from_bytes(r.get_bytes());
  sig.s = BigUInt::from_bytes(r.get_bytes());
  return sig;
}

VerifyKey::VerifyKey(BigUInt y) : y_(std::move(y)), id_(key_id_of(y_)) {}

bool VerifyKey::verify(std::span<const std::uint8_t> message,
                       const Signature& sig) const {
  const Group& grp = default_group();
  if (y_.is_zero() || sig.e >= grp.q || sig.s >= grp.q) return false;
  // r' = g^s * y^(-e) = g^s * y^(q - e)   (y has order q)
  const BigUInt gs = BigUInt::modpow(grp.g, sig.s, grp.p);
  const BigUInt ye = BigUInt::modpow(y_, grp.q.sub(sig.e), grp.p);
  const BigUInt r = BigUInt::modmul(gs, ye, grp.p);
  const BigUInt e2 =
      hash_to_scalar("rvaas-schnorr-v1", r.to_bytes(grp.element_bytes()),
                     message);
  return e2 == sig.e;
}

util::Bytes VerifyKey::serialize() const {
  util::ByteWriter w;
  w.put_bytes(y_.to_bytes());
  return w.take();
}

VerifyKey VerifyKey::deserialize(util::ByteReader& r) {
  return VerifyKey(BigUInt::from_bytes(r.get_bytes()));
}

SigningKey SigningKey::generate(util::Rng& rng) {
  const Group& grp = default_group();
  // x in [1, q); y = g^x.
  BigUInt x = BigUInt::random_below(rng, grp.q.sub(BigUInt(1))).add(BigUInt(1));
  VerifyKey vk(grp.exp(x));
  return SigningKey(std::move(x), std::move(vk));
}

Signature SigningKey::sign(std::span<const std::uint8_t> message) const {
  const Group& grp = default_group();
  // Deterministic nonce: k = H(HMAC(x, msg || ctr)) mod q, retried until
  // non-zero (RFC 6979 in spirit).
  const util::Bytes xb = x_.to_bytes(grp.element_bytes());
  BigUInt k;
  std::uint32_t ctr = 0;
  do {
    util::ByteWriter w;
    w.put_raw(message);
    w.put_u32(ctr++);
    k = BigUInt::from_bytes(hmac_sha256(xb, w.data())).mod(grp.q);
  } while (k.is_zero());

  const BigUInt r = grp.exp(k);
  Signature sig;
  sig.e = hash_to_scalar("rvaas-schnorr-v1", r.to_bytes(grp.element_bytes()),
                         message);
  sig.s = BigUInt::modadd(k, BigUInt::modmul(sig.e, x_, grp.q), grp.q);
  return sig;
}

}  // namespace rvaas::crypto
