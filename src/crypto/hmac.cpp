#include "crypto/hmac.hpp"

#include <array>

namespace rvaas::crypto {

Digest32 hmac_sha256(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Digest32 kh = sha256(key);
    std::copy(kh.begin(), kh.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  const Digest32 inner = Sha256().update(ipad).update(message).finalize();
  return Sha256().update(opad).update(inner).finalize();
}

bool digest_equal(const Digest32& a, const Digest32& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace rvaas::crypto
