#include "crypto/group.hpp"

namespace rvaas::crypto {

bool Group::is_element(const BigUInt& e) const {
  if (e.is_zero() || e >= p) return false;
  return BigUInt::modpow(e, q, p) == BigUInt(1);
}

const Group& default_group() {
  // 256-bit safe prime p = 2q + 1, generated offline with seed 20160609
  // (the paper's submission year/venue) and verified with 40 Miller-Rabin
  // rounds on both p and q. g = 4 = 2^2 is a quadratic residue, hence a
  // generator of the order-q subgroup.
  static const Group group = [] {
    Group g;
    g.p = BigUInt::from_hex(
        "dfd59ed7c49edcdf77a671bc331bf7855f8d5185343ec3b97bc31878ef175983");
    g.q = BigUInt::from_hex(
        "6feacf6be24f6e6fbbd338de198dfbc2afc6a8c29a1f61dcbde18c3c778bacc1");
    g.g = BigUInt(4);
    return g;
  }();
  return group;
}

}  // namespace rvaas::crypto
