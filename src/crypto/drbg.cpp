#include "crypto/drbg.hpp"

#include "util/bytes.hpp"

namespace rvaas::crypto {

util::Bytes keystream(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> info, std::size_t len) {
  util::Bytes out;
  out.reserve(len);
  std::uint32_t counter = 0;
  while (out.size() < len) {
    util::ByteWriter w;
    w.put_raw(info);
    w.put_u32(counter++);
    const Digest32 block = hmac_sha256(key, w.data());
    const std::size_t take = std::min<std::size_t>(block.size(), len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<long>(take));
  }
  return out;
}

util::Bytes xor_stream(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> info,
                       std::span<const std::uint8_t> data) {
  util::Bytes ks = keystream(key, info, data.size());
  for (std::size_t i = 0; i < data.size(); ++i) ks[i] ^= data[i];
  return ks;
}

}  // namespace rvaas::crypto
