#pragma once
// Public-key authenticated encryption ("sealed box") via DH key encapsulation
// over the default group + HMAC-keyed stream cipher + HMAC tag.
//
// This is how clients hide query contents from the (possibly compromised)
// provider: the paper requires "the provider should not learn about their
// queries". Only the holder of the recipient secret can open a box.

#include "crypto/group.hpp"
#include "crypto/sign.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace rvaas::crypto {

struct SealedBox {
  BigUInt ephemeral;   ///< g^y, the DH encapsulation
  util::Bytes nonce;   ///< 16-byte stream nonce
  util::Bytes cipher;  ///< plaintext XOR keystream
  Digest32 tag;        ///< HMAC over (ephemeral || nonce || cipher)

  util::Bytes serialize() const;
  static SealedBox deserialize(util::ByteReader& r);
};

class BoxOpener;  // forward

/// Recipient handle: just the public element (g^x).
class BoxSealer {
 public:
  explicit BoxSealer(BigUInt recipient_public)
      : recipient_(std::move(recipient_public)) {}

  /// Encrypt-and-authenticate `plaintext` to the recipient.
  SealedBox seal(util::Rng& rng, std::span<const std::uint8_t> plaintext) const;

  const BigUInt& recipient_public() const { return recipient_; }

 private:
  BigUInt recipient_;
};

/// Recipient-side key pair.
class BoxOpener {
 public:
  static BoxOpener generate(util::Rng& rng);

  const BigUInt& public_element() const { return pub_; }
  BoxSealer sealer() const { return BoxSealer(pub_); }

  /// Returns the plaintext, or nullopt if the tag check fails.
  std::optional<util::Bytes> open(const SealedBox& box) const;

 private:
  BoxOpener(BigUInt x, BigUInt pub) : x_(std::move(x)), pub_(std::move(pub)) {}

  BigUInt x_;
  BigUInt pub_;
};

}  // namespace rvaas::crypto
