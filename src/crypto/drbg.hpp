#pragma once
// Deterministic byte-stream generator built on HMAC-SHA-256 (an HKDF-expand
// style counter construction). Used as the stream cipher inside SealedBox and
// for deterministic nonce derivation.

#include "crypto/hmac.hpp"
#include "util/bytes.hpp"

namespace rvaas::crypto {

/// Expands (key, info) into `len` pseudo-random bytes:
///   block_i = HMAC(key, info || u32(i)),  output = block_0 || block_1 || ...
util::Bytes keystream(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> info, std::size_t len);

/// XORs `data` with keystream(key, info, data.size()). Involutive.
util::Bytes xor_stream(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> info,
                       std::span<const std::uint8_t> data);

}  // namespace rvaas::crypto
