#pragma once
// From-scratch SHA-256 (FIPS 180-4). Used for key derivation, measurements,
// signatures and sealing throughout the simulation. Verified against NIST
// test vectors in tests/test_crypto.cpp.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"

namespace rvaas::crypto {

using Digest32 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view s);

  /// Finalizes and returns the digest. The object must not be reused after.
  Digest32 finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finalized_ = false;
};

Digest32 sha256(std::span<const std::uint8_t> data);
Digest32 sha256(std::string_view s);

util::Bytes digest_bytes(const Digest32& d);

}  // namespace rvaas::crypto
