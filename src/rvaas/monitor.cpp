#include "rvaas/monitor.hpp"

#include <algorithm>

namespace rvaas::core {

using sdn::SwitchId;

namespace {

/// Two-pointer intersection test over sorted switch-id vectors.
bool intersects(const std::vector<SwitchId>& a, const std::vector<SwitchId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

void PropertyMonitor::subscribe(Subscription sub) {
  ++stats_.subscribes;
  const Key key{sub.client, sub.id};
  const auto it = subs_.find(key);
  if (it != subs_.end()) {
    // A retransmitted subscribe for the identical property is idempotent:
    // keep the evaluation and push state so the client neither gets a
    // duplicate baseline nor loses footprint confinement. Exact equality,
    // not fingerprints — a hash collision must not leave a new property
    // silently unmonitored.
    if (it->second.property == sub.property &&
        it->second.policy == sub.policy) {
      it->second.request_point = sub.request_point;
      return;
    }
    // A genuine replacement re-evaluates from scratch, but the notification
    // sequence must keep increasing — the client's replay guard remembers
    // the old high-water mark.
    sub.sequence = it->second.sequence;
  }
  subs_[key] = std::move(sub);
}

bool PropertyMonitor::unsubscribe(sdn::HostId client, std::uint64_t id) {
  if (subs_.erase(Key{client, id}) == 0) return false;
  ++stats_.unsubscribes;
  return true;
}

const PropertyMonitor::Subscription* PropertyMonitor::find(
    sdn::HostId client, std::uint64_t id) const {
  const auto it = subs_.find(Key{client, id});
  return it == subs_.end() ? nullptr : &it->second;
}

bool PropertyMonitor::has_unevaluated() const {
  for (const auto& [key, sub] : subs_) {
    if (!sub.evaluated) return true;
  }
  return false;
}

std::size_t PropertyMonitor::active_for(sdn::HostId client) const {
  std::size_t n = 0;
  for (const auto& [key, sub] : subs_) n += (key.first == client) ? 1 : 0;
  return n;
}

std::vector<PropertyMonitor::Wakeup> PropertyMonitor::sweep(
    const SnapshotManager& snap, const QueryEngine::EvalContext& base_ctx,
    util::ThreadPool& pool, bool force_all) {
  ++stats_.sweeps;
  const std::uint64_t epoch = snap.epoch();

  // Select: never-evaluated subscriptions always wake; the rest wake iff a
  // switch dirtied since their own evaluation intersects their footprint.
  // dirty_since() is an O(#switches) scan, so its results are memoized per
  // distinct evaluated_epoch — subscriptions interleave epochs in Key
  // order, and a burst registered together must cost one scan, not one
  // each.
  std::vector<Subscription*> affected;
  std::map<std::uint64_t, std::vector<SwitchId>> dirty_by_epoch;
  for (auto& [key, sub] : subs_) {
    if (force_all || !sub.evaluated) {
      affected.push_back(&sub);
      continue;
    }
    if (sub.evaluated_epoch >= epoch) {
      ++stats_.skipped;
      continue;
    }
    auto dirty_it = dirty_by_epoch.find(sub.evaluated_epoch);
    if (dirty_it == dirty_by_epoch.end()) {
      dirty_it = dirty_by_epoch
                     .emplace(sub.evaluated_epoch,
                              snap.dirty_since(sub.evaluated_epoch))
                     .first;
    }
    if (intersects(sub.footprint, dirty_it->second)) {
      affected.push_back(&sub);
    } else {
      ++stats_.skipped;
    }
  }
  if (affected.empty()) return {};

  // One L1 compilation serves the whole sweep; per-subscription evaluations
  // are pure and fan out over the pool (the engine caches lock internally).
  const hsa::NetworkModel model = engine_->model(snap);
  std::vector<Wakeup> out(affected.size());
  pool.parallel_for(affected.size(), [&](std::size_t i) {
    Subscription& sub = *affected[i];
    QueryEngine::EvalContext ctx = base_ctx;
    ctx.from = sub.request_point;
    Wakeup w;
    w.key = Key{sub.client, sub.id};
    w.request_point = sub.request_point;
    w.evaluation = engine_->evaluate(model, snap, sub.property, ctx);
    w.evaluation.reply.request_id = sub.id;
    w.epoch = epoch;
    w.property_fingerprint = sub.property.fingerprint();
    out[i] = std::move(w);
  });

  for (std::size_t i = 0; i < affected.size(); ++i) {
    Subscription& sub = *affected[i];
    // Moved, not copied: the registry is the footprint's home from here on
    // (wakeup consumers read it through find(), not the Evaluation).
    sub.footprint = std::move(out[i].evaluation.footprint);
    sub.evaluated_epoch = epoch;
    sub.evaluated = true;
  }
  stats_.wakeups += affected.size();
  return out;
}

PropertyMonitor::Decision PropertyMonitor::commit(
    const Key& key, const QueryReply& final_reply) {
  const auto it = subs_.find(key);
  if (it == subs_.end()) return {};  // unsubscribed while in flight
  Subscription& sub = it->second;

  const Verdict verdict = evaluate_reply(final_reply, sub.property.expect);

  // The first committed outcome is always news (the baseline push doubles
  // as the subscribe acknowledgement); afterwards the policy decides.
  bool push = !sub.last_ok.has_value();
  util::Bytes payload;
  if (sub.policy == NotifyPolicy::EveryChange) {
    util::ByteWriter w;
    final_reply.serialize(w);
    payload = w.take();
    push = push || payload != sub.last_payload;
  } else if (!push) {
    push = *sub.last_ok != verdict.ok;
  }
  if (!push) {
    ++stats_.suppressed;
    return {};
  }

  if (sub.policy == NotifyPolicy::EveryChange) {
    sub.last_payload = std::move(payload);
  }
  sub.last_ok = verdict.ok;
  ++sub.sequence;
  Decision decision;
  decision.push = verdict.ok ? Push::AllClear : Push::ViolationAlert;
  decision.sequence = sub.sequence;
  if (verdict.ok) {
    ++stats_.all_clears;
  } else {
    ++stats_.alerts;
  }
  return decision;
}

}  // namespace rvaas::core
