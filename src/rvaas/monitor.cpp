#include "rvaas/monitor.hpp"

#include <algorithm>
#include <atomic>

#include "util/fnv.hpp"

namespace rvaas::core {

using sdn::SwitchId;

namespace {

// TEST-ONLY fault switch (see test_fault_freeze_index).
std::atomic<bool> g_index_frozen{false};

/// Two-pointer intersection test over sorted switch-id vectors.
bool intersects(const std::vector<SwitchId>& a, const std::vector<SwitchId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

bool index_frozen() {
  return g_index_frozen.load(std::memory_order_relaxed);
}

}  // namespace

void PropertyMonitor::test_fault_freeze_index(bool on) {
  g_index_frozen.store(on, std::memory_order_relaxed);
}

std::size_t PropertyMonitor::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(
      util::fnv1a_mix(static_cast<std::uint64_t>(k.first.value), k.second));
}

void PropertyMonitor::index_insert(const std::vector<SwitchId>& footprint,
                                   const Key& key) {
  if (index_frozen()) return;
  for (const SwitchId sw : footprint) {
    index_[switch_shard(sw)].by_switch[sw.value].insert(key);
  }
}

void PropertyMonitor::index_erase(const std::vector<SwitchId>& footprint,
                                  const Key& key) {
  if (index_frozen()) return;
  for (const SwitchId sw : footprint) {
    IndexShard& shard = index_[switch_shard(sw)];
    const auto it = shard.by_switch.find(sw.value);
    if (it == shard.by_switch.end()) continue;
    it->second.erase(key);
    if (it->second.empty()) shard.by_switch.erase(it);
  }
}

std::size_t PropertyMonitor::index_entries() const {
  std::size_t n = 0;
  for (const IndexShard& shard : index_) {
    for (const auto& [sw, keys] : shard.by_switch) n += keys.size();
  }
  return n;
}

void PropertyMonitor::subscribe(Subscription sub) {
  ++stats_.subscribes;
  const Key key{sub.client, sub.id};
  const auto it = subs_.find(key);
  if (it != subs_.end()) {
    // A retransmitted subscribe for the identical property is idempotent:
    // keep the evaluation and push state so the client neither gets a
    // duplicate baseline nor loses footprint confinement. Exact equality,
    // not fingerprints — a hash collision must not leave a new property
    // silently unmonitored.
    if (it->second.property == sub.property &&
        it->second.policy == sub.policy) {
      it->second.request_point = sub.request_point;
      return;
    }
    // A genuine replacement re-evaluates from scratch, but the notification
    // sequence must keep increasing — the client's replay guard remembers
    // the old high-water mark. The old registry footprint leaves the index
    // with the subscription it belonged to.
    sub.sequence = it->second.sequence;
    if (it->second.evaluated) index_erase(it->second.footprint, key);
    unevaluated_.erase(key);
  } else {
    ++per_client_[sub.client];
  }
  // Index invariant: entries mirror the registry footprints of evaluated
  // subscriptions exactly. The controller path always arrives unevaluated
  // (baseline pending); the bench registers pre-evaluated synthetic
  // subscriptions whose footprints must be indexed immediately.
  if (sub.evaluated) {
    index_insert(sub.footprint, key);
  } else {
    unevaluated_.insert(key);
  }
  subs_[key] = std::move(sub);
}

bool PropertyMonitor::unsubscribe(sdn::HostId client, std::uint64_t id) {
  const Key key{client, id};
  const auto it = subs_.find(key);
  if (it == subs_.end()) return false;
  if (it->second.evaluated) index_erase(it->second.footprint, key);
  unevaluated_.erase(key);
  if (const auto pc = per_client_.find(client); pc != per_client_.end()) {
    if (--pc->second == 0) per_client_.erase(pc);
  }
  subs_.erase(it);
  ++stats_.unsubscribes;
  return true;
}

const PropertyMonitor::Subscription* PropertyMonitor::find(
    sdn::HostId client, std::uint64_t id) const {
  const auto it = subs_.find(Key{client, id});
  return it == subs_.end() ? nullptr : &it->second;
}

std::vector<std::uint64_t> PropertyMonitor::ids_of(sdn::HostId client) const {
  std::vector<std::uint64_t> out;
  // subs_ is ordered by (client, id): one lower_bound, then a contiguous run.
  for (auto it = subs_.lower_bound(Key{client, 0});
       it != subs_.end() && it->first.first == client; ++it) {
    out.push_back(it->first.second);
  }
  return out;
}

std::size_t PropertyMonitor::active_for(sdn::HostId client) const {
  const auto it = per_client_.find(client);
  return it == per_client_.end() ? 0 : it->second;
}

std::vector<PropertyMonitor::Key> PropertyMonitor::linear_wakeups(
    const SnapshotManager& snap, bool force_all) const {
  const std::uint64_t epoch = snap.epoch();
  std::vector<Key> out;
  // dirty_since() is an O(#switches) scan whose result arrives sorted and
  // duplicate-free (the change clock is an ordered map), so the per-epoch
  // vectors need no per-subscription dedup — memoize one scan per distinct
  // evaluated_epoch. Epoch keys are small uniform integers; a reserved
  // unordered map beats the ordered tree this memo used to be.
  std::unordered_map<std::uint64_t, std::vector<SwitchId>> dirty_by_epoch;
  dirty_by_epoch.reserve(16);
  for (const auto& [key, sub] : subs_) {
    if (force_all || !sub.evaluated) {
      out.push_back(key);
      continue;
    }
    if (sub.evaluated_epoch >= epoch) continue;
    auto dirty_it = dirty_by_epoch.find(sub.evaluated_epoch);
    if (dirty_it == dirty_by_epoch.end()) {
      dirty_it = dirty_by_epoch
                     .emplace(sub.evaluated_epoch,
                              snap.dirty_since(sub.evaluated_epoch))
                     .first;
    }
    if (intersects(sub.footprint, dirty_it->second)) out.push_back(key);
  }
  return out;  // subs_ is ordered, so this is ascending Key order
}

std::vector<PropertyMonitor::Key> PropertyMonitor::select_wakeups(
    const SnapshotManager& snap, bool force_all, bool& used_fallback) const {
  used_fallback = false;
  if (force_all) {
    std::vector<Key> out;
    out.reserve(subs_.size());
    for (const auto& [key, sub] : subs_) out.push_back(key);
    return out;
  }
  // The index answers "dirty since the last sweep"; against a snapshot the
  // anchors were not established on (first sweep, a different snapshot
  // instance, an epoch that moved backwards) that window is meaningless —
  // run the exact linear selection instead and re-anchor from its result.
  if (swept_instance_ == 0 || snap.instance_id() != swept_instance_ ||
      snap.epoch() < swept_epoch_) {
    used_fallback = true;
    return linear_wakeups(snap, false);
  }
  std::vector<Key> out(unevaluated_.begin(), unevaluated_.end());
  for (const SwitchId sw : snap.dirty_since(swept_epoch_)) {
    const IndexShard& shard = index_[switch_shard(sw)];
    const auto it = shard.by_switch.find(sw.value);
    if (it == shard.by_switch.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<PropertyMonitor::Key> PropertyMonitor::indexed_wakeups(
    const SnapshotManager& snap, bool force_all) const {
  bool used_fallback = false;
  return select_wakeups(snap, force_all, used_fallback);
}

std::vector<PropertyMonitor::Wakeup> PropertyMonitor::sweep(
    const SnapshotManager& snap, const QueryEngine::EvalContext& base_ctx,
    util::ThreadPool& pool, bool force_all) {
  ++stats_.sweeps;
  const std::uint64_t epoch = snap.epoch();

  // Select through the inverted footprint index: O(affected) against the
  // switches dirtied since the last sweep, instead of the retired O(subs)
  // per-subscription scan (linear_wakeups, kept as fallback and oracle).
  bool used_fallback = false;
  const std::vector<Key> selected =
      select_wakeups(snap, force_all, used_fallback);
  ++(used_fallback ? stats_.fallback_sweeps : stats_.indexed_sweeps);
  stats_.skipped += subs_.size() - selected.size();
  // The anchors advance even on an empty selection: an empty wakeup set
  // proves every evaluated subscription is clean through `epoch`, which is
  // exactly what makes dirty_since(swept_epoch_) a complete filter for the
  // next sweep.
  swept_epoch_ = epoch;
  swept_instance_ = snap.instance_id();
  if (selected.empty()) return {};

  std::vector<Subscription*> affected;
  affected.reserve(selected.size());
  for (const Key& key : selected) affected.push_back(&subs_.at(key));

  // One L1 compilation serves the whole sweep (its dirty-switch recompiles
  // shard over the pool too); per-subscription evaluations are pure and fan
  // out over the pool (the engine caches lock internally).
  const hsa::NetworkModel model = engine_->model(snap, &pool);
  std::vector<Wakeup> out(affected.size());
  pool.parallel_for(affected.size(), [&](std::size_t i) {
    Subscription& sub = *affected[i];
    QueryEngine::EvalContext ctx = base_ctx;
    ctx.from = sub.request_point;
    Wakeup w;
    w.key = Key{sub.client, sub.id};
    w.request_point = sub.request_point;
    w.evaluation = engine_->evaluate(model, snap, sub.property, ctx);
    w.evaluation.reply.request_id = sub.id;
    w.epoch = epoch;
    w.property_fingerprint = sub.property.fingerprint();
    out[i] = std::move(w);
  });

  // The footprint move below is the index-update hook: entries must change
  // in the same step the registry footprint does, or the next selection
  // consults a stale index. Shards partition switches disjointly, so the
  // per-shard maintenance fans out over the pool without a lock; unchanged
  // footprints (the steady state under confined churn) skip entirely.
  std::vector<std::uint8_t> changed(affected.size());
  for (std::size_t i = 0; i < affected.size(); ++i) {
    changed[i] = !affected[i]->evaluated ||
                 affected[i]->footprint != out[i].evaluation.footprint;
  }
  if (!index_frozen()) {
    pool.parallel_for(kSwitchShards, [&](std::size_t s) {
      IndexShard& shard = index_[s];
      for (std::size_t i = 0; i < affected.size(); ++i) {
        if (!changed[i]) continue;
        const Subscription& sub = *affected[i];
        const Key key{sub.client, sub.id};
        if (sub.evaluated) {
          for (const SwitchId sw : sub.footprint) {
            if (switch_shard(sw) != s) continue;
            const auto it = shard.by_switch.find(sw.value);
            if (it == shard.by_switch.end()) continue;
            it->second.erase(key);
            if (it->second.empty()) shard.by_switch.erase(it);
          }
        }
        for (const SwitchId sw : out[i].evaluation.footprint) {
          if (switch_shard(sw) != s) continue;
          shard.by_switch[sw.value].insert(key);
        }
      }
    });
  }
  for (std::size_t i = 0; i < affected.size(); ++i) {
    Subscription& sub = *affected[i];
    if (!sub.evaluated) unevaluated_.erase(Key{sub.client, sub.id});
    // Moved, not copied: the registry is the footprint's home from here on
    // (wakeup consumers read it through find(), not the Evaluation).
    sub.footprint = std::move(out[i].evaluation.footprint);
    sub.evaluated_epoch = epoch;
    sub.evaluated = true;
  }
  stats_.wakeups += affected.size();
  return out;
}

std::vector<PropertyMonitor::DegradedPush> PropertyMonitor::mark_degraded(
    const std::vector<SwitchId>& unreachable) {
  std::vector<DegradedPush> out;
  if (unreachable.empty()) return out;
  for (auto& [key, sub] : subs_) {
    if (sub.degraded_notified) continue;  // debt already outstanding
    if (!sub.evaluated) continue;  // no footprint yet; baseline will tell
    if (!intersects(sub.footprint, unreachable)) continue;
    sub.degraded_notified = true;
    ++sub.sequence;
    ++stats_.degraded;
    out.push_back(DegradedPush{key, sub.request_point, sub.sequence,
                               sub.property.fingerprint(),
                               sub.evaluated_epoch, sub.property.kind});
  }
  return out;  // subs_ is ordered, so pushes go out in ascending Key order
}

PropertyMonitor::Decision PropertyMonitor::commit(
    const Key& key, const QueryReply& final_reply) {
  const auto it = subs_.find(key);
  if (it == subs_.end()) return {};  // unsubscribed while in flight
  Subscription& sub = it->second;

  const Verdict verdict = evaluate_reply(final_reply, sub.property.expect);

  // The first committed outcome is always news (the baseline push doubles
  // as the subscribe acknowledgement); afterwards the policy decides. A
  // degraded_notified debt forces the push regardless — the client heard
  // "verification degraded" and is owed a signed resume even if the
  // verdict never moved.
  bool push = !sub.last_ok.has_value() || sub.degraded_notified;
  util::Bytes payload;
  if (sub.policy == NotifyPolicy::EveryChange) {
    util::ByteWriter w;
    final_reply.serialize(w);
    payload = w.take();
    push = push || payload != sub.last_payload;
  } else if (!push) {
    push = *sub.last_ok != verdict.ok;
  }
  if (!push) {
    ++stats_.suppressed;
    return {};
  }
  if (sub.degraded_notified) {
    sub.degraded_notified = false;
    ++stats_.degraded_resumes;
  }

  if (sub.policy == NotifyPolicy::EveryChange) {
    sub.last_payload = std::move(payload);
  }
  sub.last_ok = verdict.ok;
  ++sub.sequence;
  Decision decision;
  decision.push = verdict.ok ? Push::AllClear : Push::ViolationAlert;
  decision.sequence = sub.sequence;
  if (verdict.ok) {
    ++stats_.all_clears;
  } else {
    ++stats_.alerts;
  }
  return decision;
}

}  // namespace rvaas::core
