#pragma once
// Switch-partition sharding, shared by the monitor's inverted footprint
// index and the L1/L2 cache eviction walks: every switch hashes to one of
// kSwitchShards partitions, and per-shard state never aliases across
// partitions, so sharded walks can fan out over a thread pool without a
// global lock and eviction/selection cost tracks the dirty partition
// rather than the total population.

#include <cstdint>
#include <span>

#include "sdn/types.hpp"

namespace rvaas::core {

/// Number of switch partitions. A power of two so the modulo compiles to a
/// mask; 16 keeps per-shard fan-out useful on small pools without slicing
/// the fuzzer's 3-switch topologies into mostly-empty work items.
inline constexpr std::size_t kSwitchShards = 16;

/// The partitioning rule: dense generator-assigned switch ids round-robin
/// across shards, so grid/linear neighborhoods spread instead of clumping.
constexpr std::size_t switch_shard(sdn::SwitchId sw) noexcept {
  return static_cast<std::size_t>(sw.value) % kSwitchShards;
}

/// One bit per shard (kSwitchShards <= 32).
constexpr std::uint32_t switch_shard_bit(sdn::SwitchId sw) noexcept {
  return std::uint32_t{1} << switch_shard(sw);
}

/// OR of shard bits over a dependency footprint: a cheap conservative
/// summary — if footprint_mask & dirty_mask == 0, no footprint switch is
/// dirty (the converse needs the exact intersect).
inline std::uint32_t footprint_shard_mask(
    std::span<const sdn::SwitchId> footprint) noexcept {
  std::uint32_t mask = 0;
  for (const sdn::SwitchId sw : footprint) mask |= switch_shard_bit(sw);
  return mask;
}

}  // namespace rvaas::core
