#include "rvaas/client.hpp"

#include "crypto/hmac.hpp"
#include "util/ensure.hpp"

namespace rvaas::core {

ClientAgent::ClientAgent(sdn::HostId host, sdn::Network& net,
                         const control::HostAddress& address, util::Rng rng)
    : host_(host),
      net_(&net),
      address_(address),
      rng_(std::move(rng)),
      key_(crypto::SigningKey::generate(rng_)),
      box_(crypto::BoxOpener::generate(rng_)),
      next_request_id_((static_cast<std::uint64_t>(host.value) << 32) | 1) {
  const auto ports = net.topology().host_ports(host);
  util::ensure(!ports.empty(), "client host has no access point");
  access_point_ = ports.front();
  net.register_host_receiver(host, [this](sdn::PortRef at,
                                          const sdn::Packet& packet) {
    on_packet(at, packet);
  });
}

void ClientAgent::trust_rvaas(crypto::VerifyKey rvaas_key,
                              crypto::BigUInt rvaas_box_pub) {
  rvaas_key_ = std::move(rvaas_key);
  rvaas_box_pub_ = std::move(rvaas_box_pub);
}

bool ClientAgent::verify_attestation(const enclave::Quote& quote,
                                     const crypto::VerifyKey& ias_root,
                                     const enclave::Measurement& expected,
                                     const crypto::VerifyKey& rvaas_key,
                                     const crypto::BigUInt& rvaas_box_pub) {
  ++stats_.crypto_ops;
  if (!enclave::AttestationService::verify(quote, ias_root, expected)) {
    return false;
  }
  // The quote's report data must bind exactly the keys we are about to pin.
  const crypto::Digest32 binding =
      enclave::bind_keys(rvaas_key, rvaas_box_pub);
  if (!crypto::digest_equal(binding, quote.report.report_data)) return false;
  trust_rvaas(rvaas_key, rvaas_box_pub);
  return true;
}

std::uint64_t ClientAgent::send_query(const Query& query, Callback callback,
                                      sim::Time timeout) {
  util::ensure(rvaas_box_pub_.has_value(),
               "client has not established trust in RVaaS");
  QueryRequest request;
  request.request_id = next_request_id_++;
  request.client = host_;
  request.query = query;

  ++stats_.queries_sent;
  ++stats_.crypto_ops;  // seal
  const sdn::Packet packet =
      inband::make_request_packet(address_, request, *rvaas_box_pub_, rng_);
  net_->host_send(host_, access_point_, packet);

  PendingQuery pending;
  pending.callback = std::move(callback);
  const std::uint64_t id = request.request_id;
  pending.timeout = net_->loop().schedule_after(timeout, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    ++stats_.timeouts;
    Outcome outcome;
    outcome.timed_out = true;  // suppression / loss indicator
    auto callback = std::move(it->second.callback);
    pending_.erase(it);
    callback(outcome);
  });
  pending_.emplace(id, std::move(pending));
  return id;
}

std::uint64_t ClientAgent::subscribe(const Property& property,
                                     MonitorCallback callback,
                                     NotifyPolicy policy) {
  util::ensure(rvaas_box_pub_.has_value(),
               "client has not established trust in RVaaS");
  SubscribeRequest request;
  request.subscription_id = next_request_id_++;
  request.client = host_;
  request.policy = policy;
  request.property = property;
  // The request-id counter doubles as the per-client freshness clock (it
  // only ever advances).
  request.freshness = next_request_id_++;

  ++stats_.subscribes_sent;
  stats_.crypto_ops += 2;  // sign + seal
  net_->host_send(host_, access_point_,
                  inband::make_subscribe_packet(address_, request, key_,
                                                *rvaas_box_pub_, rng_));
  subscriptions_[request.subscription_id] =
      Subscription{property, std::move(callback), 0};
  return request.subscription_id;
}

void ClientAgent::unsubscribe(std::uint64_t subscription_id) {
  if (subscriptions_.erase(subscription_id) == 0) return;
  util::ensure(rvaas_box_pub_.has_value(),
               "client has not established trust in RVaaS");
  SubscribeRequest request;
  request.subscription_id = subscription_id;
  request.client = host_;
  request.unsubscribe = true;
  request.freshness = next_request_id_++;

  ++stats_.unsubscribes_sent;
  stats_.crypto_ops += 2;  // sign + seal
  net_->host_send(host_, access_point_,
                  inband::make_subscribe_packet(address_, request, key_,
                                                *rvaas_box_pub_, rng_));
}

void ClientAgent::on_packet(sdn::PortRef at, const sdn::Packet& packet) {
  const auto tag = inband::classify(packet);
  if (!tag) return;

  if (*tag == inband::Tag::AuthRequest) {
    if (!rvaas_key_) return;
    ++stats_.crypto_ops;  // verify
    const auto req = inband::verify_auth_request(packet, *rvaas_key_);
    if (!req) return;
    // Answer with a signed publication of our identity.
    inband::AuthReply reply;
    reply.request_id = req->request_id;
    reply.nonce = req->nonce;
    reply.client = host_;
    ++stats_.auth_requests_answered;
    ++stats_.crypto_ops;  // sign
    net_->host_send(host_, at, inband::make_auth_reply(address_, reply, key_));
    return;
  }

  if (*tag == inband::Tag::Notify) {
    if (!rvaas_key_) return;
    ++stats_.crypto_ops;  // open + verify
    const auto opened = inband::open_notify(packet, box_, *rvaas_key_);
    if (!opened) {
      ++stats_.bad_notifications;
      return;
    }
    const Notification& n = opened->notification;
    const auto it = subscriptions_.find(n.subscription_id);
    if (it == subscriptions_.end()) return;  // unsubscribed / never ours
    Subscription& sub = it->second;
    if (!opened->signature_ok || n.sequence <= sub.last_sequence ||
        n.property_fingerprint != sub.property.fingerprint()) {
      // Forged, tampered, replayed/reordered, or answering a different
      // property than the one subscribed: never surface it.
      ++stats_.bad_notifications;
      return;
    }
    sub.last_sequence = n.sequence;
    ++stats_.notifications_received;
    switch (n.kind) {
      case NotificationKind::ViolationAlert:
        ++stats_.alerts_received;
        break;
      case NotificationKind::AllClear:
        ++stats_.all_clears_received;
        break;
      case NotificationKind::VerificationDegraded:
        // Not a verdict: the footprint lost a switch and RVaaS is telling
        // us it cannot verify freshly right now. A normal push resumes on
        // heal (commit() owes it).
        ++stats_.degraded_received;
        break;
    }

    MonitorEvent event;
    event.subscription_id = n.subscription_id;
    event.signature_ok = opened->signature_ok;
    event.kind = n.kind;
    event.sequence = n.sequence;
    event.epoch = n.epoch;
    event.reply = n.reply;
    event.verdict = evaluate_reply(n.reply, sub.property.expect);
    // Copy out: the callback may unsubscribe (destroying `sub`) from inside.
    const MonitorCallback callback = sub.callback;
    callback(event);
    return;
  }

  if (*tag == inband::Tag::Reply) {
    if (!rvaas_key_) return;
    ++stats_.crypto_ops;  // open + verify
    const auto opened = inband::open_reply(packet, box_, *rvaas_key_);
    if (!opened) {
      ++stats_.bad_replies;
      return;
    }
    const auto it = pending_.find(opened->reply.request_id);
    if (it == pending_.end()) return;
    net_->loop().cancel(it->second.timeout);
    ++stats_.replies_received;
    if (!opened->signature_ok) ++stats_.bad_replies;

    Outcome outcome;
    outcome.signature_ok = opened->signature_ok;
    // Fail-stale: surface a freshness breach, never absorb it silently.
    outcome.stale = max_staleness_ > 0 &&
                    (!opened->reply.freshness.unreachable.empty() ||
                     opened->reply.freshness.max_staleness > max_staleness_);
    outcome.reply = opened->reply;
    auto callback = std::move(it->second.callback);
    pending_.erase(it);
    callback(outcome);
  }
}

}  // namespace rvaas::core
