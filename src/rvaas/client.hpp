#pragma once
// The client-side agent: a user-space process behind an access point that
// (a) sends sealed queries to RVaaS through the in-band magic channel,
// (b) automatically answers RVaaS authentication requests with signed
//     replies ("clients run a software which responds to our authentication
//     requests, in user space", §IV.A.3),
// (c) verifies reply signatures and attestation quotes, and
// (d) detects query suppression by timeout.

#include <functional>

#include "enclave/attestation.hpp"
#include "rvaas/inband.hpp"
#include "sdn/network.hpp"

namespace rvaas::core {

class ClientAgent {
 public:
  ClientAgent(sdn::HostId host, sdn::Network& net,
              const control::HostAddress& address, util::Rng rng);

  // The network holds a callback into this object; pin it in place.
  ClientAgent(const ClientAgent&) = delete;
  ClientAgent& operator=(const ClientAgent&) = delete;

  sdn::HostId host() const { return host_; }
  const crypto::VerifyKey& verify_key() const { return key_.verify_key(); }
  const crypto::BigUInt& box_public() const { return box_.public_element(); }

  /// Pin the RVaaS service keys (normally after a verified attestation).
  void trust_rvaas(crypto::VerifyKey rvaas_key, crypto::BigUInt rvaas_box_pub);

  /// Verifies an attestation quote: authentic (signed by `ias_root`), the
  /// expected measurement, and report data binding the given keys. On
  /// success the keys are pinned (trust_rvaas).
  bool verify_attestation(const enclave::Quote& quote,
                          const crypto::VerifyKey& ias_root,
                          const enclave::Measurement& expected,
                          const crypto::VerifyKey& rvaas_key,
                          const crypto::BigUInt& rvaas_box_pub);

  struct Outcome {
    bool timed_out = false;
    bool signature_ok = false;
    /// The reply's freshness section breaches the client's max-staleness
    /// bound (set_max_staleness): the verdict is fail-stale, not fresh.
    bool stale = false;
    std::optional<QueryReply> reply;
  };
  using Callback = std::function<void(const Outcome&)>;

  /// Sends a query in-band; the callback fires on reply or timeout.
  /// Returns the request id.
  std::uint64_t send_query(const Query& query, Callback callback,
                           sim::Time timeout = 50 * sim::kMillisecond);

  /// Client-side fail-stale knob for one-shot queries: with a bound set
  /// (ns; 0 = off), Outcome.stale flags any reply whose freshness section
  /// reports an unreachable footprint switch or staleness above the bound.
  /// (Subscriptions carry the bound in Expectation::max_staleness instead,
  /// so it is part of the verified property.)
  void set_max_staleness(std::uint64_t bound) { max_staleness_ = bound; }

  /// One verified push from the RVaaS monitor.
  struct MonitorEvent {
    std::uint64_t subscription_id = 0;
    bool signature_ok = false;
    NotificationKind kind = NotificationKind::AllClear;
    std::uint64_t sequence = 0;
    std::uint64_t epoch = 0;
    QueryReply reply;
    /// Client-side re-check of the pushed reply against the subscribed
    /// expectation (trust, but verify the verdict locally).
    Verdict verdict;
  };
  using MonitorCallback = std::function<void(const MonitorEvent&)>;

  /// Registers a standing subscription: RVaaS re-verifies the property on
  /// every configuration change it observes and pushes signed
  /// ViolationAlert/AllClear notifications; the first push is the baseline
  /// state (the subscribe acknowledgement). Returns the subscription id.
  std::uint64_t subscribe(const Property& property, MonitorCallback callback,
                          NotifyPolicy policy = NotifyPolicy::VerdictEdges);

  /// Stops a subscription (fire-and-forget; the local callback is dropped
  /// immediately, so a notification already in flight is ignored).
  void unsubscribe(std::uint64_t subscription_id);

  struct Stats {
    std::uint64_t queries_sent = 0;
    std::uint64_t replies_received = 0;
    std::uint64_t bad_replies = 0;  ///< undecryptable / bad signature
    std::uint64_t timeouts = 0;
    std::uint64_t auth_requests_answered = 0;
    std::uint64_t crypto_ops = 0;  ///< asymmetric operations (E9)

    // Push verification:
    std::uint64_t subscribes_sent = 0;
    std::uint64_t unsubscribes_sent = 0;
    std::uint64_t notifications_received = 0;
    std::uint64_t bad_notifications = 0;  ///< bad box/signature or replayed
    std::uint64_t alerts_received = 0;
    std::uint64_t all_clears_received = 0;
    std::uint64_t degraded_received = 0;  ///< VerificationDegraded pushes
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_packet(sdn::PortRef at, const sdn::Packet& packet);

  sdn::HostId host_;
  sdn::Network* net_;
  control::HostAddress address_;
  sdn::PortRef access_point_;
  util::Rng rng_;
  crypto::SigningKey key_;
  crypto::BoxOpener box_;

  std::optional<crypto::VerifyKey> rvaas_key_;
  std::optional<crypto::BigUInt> rvaas_box_pub_;

  struct PendingQuery {
    Callback callback;
    sim::EventId timeout{};
  };
  struct Subscription {
    Property property;
    MonitorCallback callback;
    std::uint64_t last_sequence = 0;  ///< replay guard
  };
  std::map<std::uint64_t, PendingQuery> pending_;
  std::map<std::uint64_t, Subscription> subscriptions_;
  std::uint64_t next_request_id_;
  std::uint64_t max_staleness_ = 0;  ///< 0 = no fail-stale bound
  Stats stats_;
};

}  // namespace rvaas::core
