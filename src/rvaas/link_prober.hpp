#pragma once
// LLDP-style active wiring verification (§IV.A.1: "issue and later intercept
// LLDP like packets through all internal ports"). The RVaaS controller emits
// signed probes out of every internal port; each probe is intercepted at the
// neighbor switch and checked against the trusted wiring plan.

#include "enclave/enclave.hpp"
#include "sdn/header.hpp"
#include "sdn/topology.hpp"

namespace rvaas::core {

struct ProbeInfo {
  sdn::PortRef origin;  ///< the port the probe was emitted from
  std::uint64_t nonce = 0;

  util::Bytes signing_payload() const;
};

/// A wiring-plan violation observed by the prober.
struct WiringAlarm {
  sim::Time t = 0;
  sdn::PortRef expected_at;  ///< where the plan says the probe should arrive
  sdn::PortRef observed_at;  ///< where it actually arrived
};

/// Builds a signed LLDP probe to be packet-out through `origin`.
sdn::Packet make_probe(const ProbeInfo& info, const enclave::Enclave& enclave);

/// true iff the packet is an LLDP probe (by ethertype).
bool is_probe(const sdn::Packet& packet);

/// Verifies signature and decodes; nullopt on forgery/garbage.
std::optional<ProbeInfo> verify_probe(const sdn::Packet& packet,
                                      const crypto::VerifyKey& rvaas_key);

/// Checks an intercepted probe against the wiring plan.
std::optional<WiringAlarm> check_probe(const sdn::Topology& topo,
                                       const ProbeInfo& info,
                                       sdn::PortRef arrived_at, sim::Time now);

}  // namespace rvaas::core
