#pragma once
// The RVaaS controller (the paper's primary contribution, §IV): a stand-alone
// trusted OpenFlow controller running inside a (simulated) enclave that
// combines
//   (1) passive + actively-randomized configuration monitoring,
//   (2) logical data-plane verification (HSA reachability), and
//   (3) in-band testing with client interaction (auth round-trips)
// to answer client routing-verification queries.

#include <memory>
#include <unordered_map>

#include "enclave/attestation.hpp"
#include "rvaas/engine.hpp"
#include "rvaas/inband.hpp"
#include "rvaas/link_prober.hpp"
#include "rvaas/monitor.hpp"
#include "sdn/network.hpp"

namespace rvaas::core {

enum class PollingMode { Randomized, Fixed, Disabled };

struct RvaasConfig {
  /// Subscribe to flow monitors on all switches (passive monitoring).
  bool passive_monitoring = true;
  PollingMode polling = PollingMode::Randomized;
  sim::Time poll_period = 50 * sim::kMillisecond;  ///< mean (randomized) / exact (fixed)
  /// How long to wait for authentication replies before answering.
  sim::Time auth_timeout = 5 * sim::kMillisecond;
  ConfidentialityPolicy policy = ConfidentialityPolicy::EndpointsOnly;
  std::size_t history_limit = 1 << 16;
  std::size_t max_reach_depth = 64;
  bool enable_link_prober = false;
  sim::Time probe_period = 100 * sim::kMillisecond;
  std::string enclave_name = "rvaas";
  std::string enclave_version = "1.0";

  /// Extra worker threads for the monitor's re-evaluation sweeps (0 = the
  /// sweep runs inline on the event-loop thread).
  std::size_t monitor_threads = 0;
  /// Timer-driven full re-verification of every subscription, catching
  /// drift outside the snapshot's change clock (meter updates, auth
  /// responders dying). 0 = disabled; churn-triggered sweeps always run.
  sim::Time reverify_period = 0;
  /// Resource bound: Subscribe beyond this per client is a bad request.
  std::size_t max_subscriptions_per_client = 64;

  // --- control-channel resilience (fault tolerance, fail-stale) ---
  /// How long a stats poll may stay unanswered before it counts as a miss.
  /// The fault-free round-trip is 2 control latencies (~400us default), so
  /// the default leaves ample margin without slowing fault detection.
  sim::Time poll_deadline = 2 * sim::kMillisecond;
  /// Consecutive missed poll deadlines before Healthy -> Degraded.
  std::uint32_t degraded_after = 1;
  /// Consecutive missed poll deadlines before -> Unreachable. The circuit
  /// opens: regular polls skip the switch, a capped-cadence probe keeps
  /// testing for recovery.
  std::uint32_t unreachable_after = 3;
  /// Retry backoff after a miss: base * 2^attempt, capped. The cap doubles
  /// as the circuit-breaker probe cadence while a switch is Unreachable.
  sim::Time retry_backoff_base = 1 * sim::kMillisecond;
  sim::Time retry_backoff_cap = 8 * sim::kMillisecond;
  /// Additive jitter on retry delays, up to this percentage of the delay
  /// (drawn from the controller's seeded rng: deterministic, but
  /// decorrelates retry bursts across switches).
  std::uint32_t retry_jitter_pct = 25;
};

class RvaasController : public sdn::Controller {
 public:
  RvaasController(sdn::ControllerId id, sdn::Network& net,
                  const enclave::AttestationService& ias, RvaasConfig config,
                  util::Rng rng);
  /// Calls stop(): a controller destroyed before its EventLoop must not
  /// leave self-rescheduling timers holding a dangling `this`.
  ~RvaasController();

  sdn::ControllerId id() const override { return id_; }

  /// Key the trusted party authorizes on switches before bootstrap.
  const crypto::VerifyKey& channel_key() const {
    return channel_key_.verify_key();
  }

  /// Attaches to all switches, subscribes flow monitors, installs the
  /// magic-header intercept rules, starts pollers/probers.
  void bootstrap();

  /// Client enrollment: RVaaS learns the client's public keys.
  void register_client(sdn::HostId client, crypto::VerifyKey key,
                       crypto::BigUInt box_public);

  /// Optional inputs for geo / path-length / fairness queries.
  void set_geo_provider(std::unique_ptr<GeoProvider> geo);
  void set_addressing(const control::HostAddressing* addressing);

  const enclave::Enclave& enclave() const { return enclave_; }
  /// Attestation quote binding the enclave's keys to its measurement.
  enclave::Quote quote() const;

  const SnapshotManager& snapshot() const { return snapshot_; }
  /// Restart/recovery simulation hook: the snapshot keeps its content but
  /// takes a fresh identity, so every cache keyed on it (L1 compiled model,
  /// L2 reachability) must detect the change and fully rebuild. Used by the
  /// scenario fuzzer (src/testing) to stress cache identity handling.
  /// Advancing the poll generation voids every stats reply still in flight:
  /// it was requested against the previous identity and must not leak into
  /// the new one.
  void reset_snapshot_identity() {
    snapshot_.reset_identity();
    ++poll_generation_;
  }
  /// The query engine answering this controller's logical steps; exposes the
  /// incremental model cache's counters (cache_stats) to benches/monitoring.
  const QueryEngine& engine() const { return engine_; }
  /// The push-verification registry (subscription + wakeup counters).
  const PropertyMonitor& monitor() const { return monitor_; }
  const std::vector<WiringAlarm>& wiring_alarms() const {
    return wiring_alarms_;
  }

  // --- control-channel health (fail-stale degraded operation) ---

  /// Per-switch control-channel health as the poll deadline machine sees
  /// it. Healthy until a deadline miss; Degraded after `degraded_after`
  /// consecutive misses; Unreachable after `unreachable_after` (circuit
  /// open: regular polls skip the switch, a capped-cadence probe keeps
  /// testing). Any successful reply snaps straight back to Healthy.
  enum class SwitchHealth : std::uint8_t { Healthy, Degraded, Unreachable };
  SwitchHealth switch_health(sdn::SwitchId sw) const;
  /// Switches currently Unreachable, sorted ascending.
  std::vector<sdn::SwitchId> unreachable_switches() const;
  /// Freshness of the view restricted to `footprint` (sorted): all-zero
  /// when every footprint switch is Healthy; otherwise the max ns since a
  /// non-Healthy footprint switch was last confirmed, plus the unreachable
  /// subset. This is what finalize() stamps on every outgoing reply.
  FreshnessInfo freshness_for(
      const std::vector<sdn::SwitchId>& footprint) const;

  // --- wire front-end integration (src/net) ---
  //
  // The TCP front-end runs this controller behind real sockets. Inbound
  // envelopes are opened/verified on the front-end's I/O threads (the
  // enclave's open/verify/sign are const, pure bignum math — thread-safe)
  // and enter here through the wire_* entry points on the controller's own
  // (event-loop) thread; outbound replies/notifications/auth-requests are
  // offered to the WireTransport as plain structs so the transport can
  // sign/seal them off-thread with the same enclave key — byte-identical
  // semantic content, with the per-query asymmetric crypto moved off the
  // single event-loop thread. A declined delivery (false) falls back to the
  // normal in-band packet path, so simulated clients are unaffected.

  /// Transport seam the TCP front-end implements. All calls arrive on the
  /// controller's event-loop thread; implementations must not call back
  /// into the controller synchronously.
  class WireTransport {
   public:
    virtual ~WireTransport() = default;
    /// True if `client` is wire-attached and the reply was taken.
    virtual bool deliver_reply(sdn::HostId client, const QueryReply& reply) = 0;
    /// True if `client` is wire-attached and the notification was taken.
    virtual bool deliver_notification(sdn::HostId client,
                                      const Notification& notification) = 0;
    /// True if the access point `target` belongs to a wire session and the
    /// (unsigned) auth request was taken — the transport signs it with the
    /// enclave key off-thread and ships it down that session's socket.
    virtual bool deliver_auth_request(sdn::PortRef target,
                                      const inband::AuthRequest& req) = 0;
  };
  /// Attaches/detaches the wire transport (nullptr = in-band only). The
  /// transport must outlive the controller or be detached first.
  void set_wire_transport(WireTransport* transport) { wire_ = transport; }

  /// Wire-path entry points: the envelope was already opened (and, for
  /// subscribe/auth, signature-verified against the enrolled key) on an
  /// I/O thread. Semantics are identical to the in-band packet path from
  /// this point on — pinned by tests/test_net.cpp byte-identity.
  void wire_request(const QueryRequest& request, sdn::PortRef request_point);
  void wire_subscribe(const SubscribeRequest& request,
                      sdn::PortRef request_point);
  void wire_auth_reply(const inband::AuthReply& reply, sdn::PortRef from);

  /// Wire session death: drops every subscription of `client` (cancelling
  /// in-flight evaluations) so a dead socket never wedges a sweep, and
  /// resets its subscribe replay clock so a reconnecting session with a
  /// fresh counter is not locked out. Returns subscriptions dropped.
  std::size_t evict_client(sdn::HostId client);

  /// Cancels every timer this controller owns (poll/probe/reverify
  /// re-arms, per-switch deadline and retry timers, auth timeouts, the
  /// coalesced sweep event) and drops pending state. After stop() the
  /// event loop holds no callback that re-arms or touches this object —
  /// required before destroying a controller whose loop outlives it.
  /// In-flight control-channel deliveries (a stats reply already queued by
  /// the network) still reference the controller: drain the loop first or
  /// destroy network and controller together.
  void stop();

  /// The exponential backoff ladder (pure, no jitter): base * 2^attempt
  /// capped at retry_backoff_cap. Exposed so tests can pin the schedule.
  static sim::Time backoff_base_delay(std::uint32_t attempt,
                                      const RvaasConfig& config);

  /// TEST-ONLY fault injection: while enabled, deadline misses and
  /// successful replies stop transitioning per-switch health — the machine
  /// is frozen blind at its current state while retries keep running. A
  /// hard-faulted switch then stays nominally Healthy with a stale view,
  /// which the fault-equivalence oracle (degraded-honesty clause) must
  /// catch. Never enable outside tests; affects all instances process-wide.
  static void test_fault_freeze_health(bool on);

  // sdn::Controller interface.
  void on_packet_in(const sdn::PacketIn& msg) override;
  void on_flow_update(const sdn::FlowUpdate& msg) override;

  struct Stats {
    std::uint64_t queries_received = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t auth_requests_sent = 0;
    std::uint64_t auth_replies_ok = 0;
    std::uint64_t auth_replies_bad = 0;
    std::uint64_t replies_sent = 0;
    std::uint64_t polls_sent = 0;
    std::uint64_t probes_sent = 0;
    std::uint64_t crypto_ops = 0;  ///< asymmetric operations (E9)
    std::uint64_t reach_steps = 0; ///< HSA rule applications (E4/E7)

    // Push verification:
    std::uint64_t subscribes_received = 0;
    std::uint64_t unsubscribes_received = 0;
    std::uint64_t monitor_sweeps = 0;       ///< churn/timer sweep runs
    std::uint64_t notifications_sent = 0;   ///< alerts + all-clears pushed

    // Control-channel resilience:
    std::uint64_t poll_deadline_misses = 0;
    std::uint64_t poll_retries = 0;          ///< backoff/probe re-polls sent
    std::uint64_t polls_gated = 0;           ///< circuit breaker skipped a poll
    std::uint64_t stale_polls_discarded = 0; ///< generation/ordering guards
    std::uint64_t degraded_transitions = 0;
    std::uint64_t unreachable_transitions = 0;
    std::uint64_t health_recoveries = 0;     ///< non-Healthy -> Healthy
    std::uint64_t degraded_notifications = 0;///< VerificationDegraded pushes
  };
  const Stats& stats() const { return stats_; }

 private:
  /// An evaluation awaiting its in-band authentication round-trip — a
  /// one-shot query (subscription == nullopt) or a subscription wakeup.
  struct PendingQuery {
    QueryRequest request;
    sdn::PortRef request_point{};
    QueryReply reply;
    /// access point -> responded-with-valid-signature host
    std::unordered_map<sdn::PortRef, std::optional<sdn::HostId>> expected;
    std::unordered_map<std::uint64_t, sdn::PortRef> nonces;  ///< nonce -> target
    sim::EventId timeout{};
    /// Set for subscription wakeups: finalize pushes through the monitor
    /// instead of answering a request.
    std::optional<PropertyMonitor::Key> subscription;
    std::uint64_t evaluated_epoch = 0;  ///< snapshot epoch of the evaluation
    std::uint64_t property_fingerprint = 0;  ///< pinned in the notification
    /// Dependency footprint of the evaluation (sorted): what finalize()
    /// computes the reply's freshness section over.
    std::vector<sdn::SwitchId> footprint;
  };

  /// Per-switch control-channel state: deadline-tracked polls plus the
  /// health machine. Default-constructed == a Healthy switch never polled.
  struct SwitchChannel {
    SwitchHealth health = SwitchHealth::Healthy;
    std::uint32_t consecutive_misses = 0;
    std::uint32_t attempt = 0;   ///< backoff exponent for the next retry
    bool in_flight = false;      ///< a deadline-tracked poll is outstanding
    bool retry_pending = false;  ///< a backoff retry timer is armed
    sim::EventId deadline{};
    sim::EventId retry{};
    std::uint64_t poll_seq_sent = 0;     ///< per-switch poll sequence
    std::uint64_t poll_seq_applied = 0;  ///< highest reply adopted
  };

  void schedule_poll();
  void schedule_probe();
  void schedule_reverify();
  void poll_all_switches();
  /// One deadline-tracked poll. Regular polls (`is_retry == false`) are
  /// gated while the switch's circuit is open; retries/probes pass.
  void poll_switch(sdn::SwitchId sw, bool is_retry);
  void on_stats_reply(sdn::SwitchId sw, std::uint64_t seq, std::uint64_t gen,
                      sim::Time sent, const sdn::StatsReply& reply);
  void on_poll_deadline(sdn::SwitchId sw, std::uint64_t seq);
  /// Arms the capped-exponential-backoff retry (or, while Unreachable, the
  /// fixed-cadence circuit probe) for `sw` if none is pending.
  void schedule_retry(sdn::SwitchId sw);
  /// A poll round-trip completed: resets miss/backoff state; a non-Healthy
  /// switch recovers (forced full sweep re-verifies everything evaluated
  /// against the degraded view and resumes degraded subscriptions).
  void on_switch_alive(sdn::SwitchId sw);
  /// Healthy/Degraded -> Unreachable edge: pushes VerificationDegraded to
  /// every subscription whose footprint touches an unreachable switch.
  void on_unreachable();
  void probe_all_links();
  void handle_request(const sdn::PacketIn& msg);
  void handle_subscribe(const sdn::PacketIn& msg);
  void handle_auth_reply(const sdn::PacketIn& msg);
  /// Shared cores of the in-band and wire request paths (post-open /
  /// post-verify): exactly one implementation of admission, evaluation and
  /// auth bookkeeping, so the socket layer cannot drift semantically.
  void admit_request(const QueryRequest& request, sdn::PortRef request_point);
  void admit_subscribe(const SubscribeRequest& request,
                       sdn::PortRef request_point);
  void admit_auth_reply(const inband::AuthReply& reply,
                        const crypto::Signature* signature,
                        sdn::PortRef from);
  /// Begins the auth round-trip for an evaluation already inserted into
  /// pending_ under `request_id`; `targets` fixes the (deterministic)
  /// dispatch order.
  void dispatch_auth_requests(PendingQuery& pending, std::uint64_t request_id,
                              std::span<const sdn::PortRef> targets);
  /// Registers the evaluation under a fresh internal id and runs the auth
  /// round-trip (or finalizes immediately when nothing needs probing).
  void track_pending(PendingQuery pending,
                     std::span<const sdn::PortRef> targets);
  void finalize(std::uint64_t request_id);
  void send_reply(const PendingQuery& pending);
  void send_notification(const PendingQuery& pending,
                         const PropertyMonitor::Decision& decision);
  /// Signed, sealed VerificationDegraded push for a subscription whose
  /// footprint lost a switch (no evaluation attached: the point is that a
  /// fresh evaluation is impossible right now).
  void send_degraded_notification(const PropertyMonitor::DegradedPush& push);

  /// Churn hook: coalesces same-instant epoch advances into one sweep event.
  void schedule_monitor_sweep();
  void run_monitor_sweep(bool force_all);

  sdn::ControllerId id_;
  sdn::Network* net_;
  const enclave::AttestationService* ias_;
  RvaasConfig config_;
  util::Rng rng_;
  enclave::Enclave enclave_;
  crypto::SigningKey channel_key_;
  sdn::Network::ControllerHandle* handle_ = nullptr;
  QueryEngine engine_;
  SnapshotManager snapshot_;
  std::unique_ptr<GeoProvider> geo_;
  const control::HostAddressing* addressing_ = nullptr;

  struct ClientRecord {
    crypto::VerifyKey key;
    crypto::BigUInt box_public;
  };
  std::map<sdn::HostId, ClientRecord> clients_;
  WireTransport* wire_ = nullptr;
  std::map<std::uint64_t, PendingQuery> pending_;
  std::vector<WiringAlarm> wiring_alarms_;
  Stats stats_;

  // Control-channel resilience.
  std::map<sdn::SwitchId, SwitchChannel> channels_;
  /// Bumped by reset_snapshot_identity(); stats replies from an older
  /// generation are liveness signals but never touch the view.
  std::uint64_t poll_generation_ = 0;
  bool stopped_ = false;
  /// Self-rescheduling timers, stored so stop() can cancel them.
  sim::EventId poll_timer_{};
  sim::EventId probe_timer_{};
  sim::EventId reverify_timer_{};
  sim::EventId sweep_event_{};

  // Push verification. The monitor holds the subscription registry; the
  // pool fans its re-evaluation sweeps out (0 extra threads by default).
  PropertyMonitor monitor_;
  util::ThreadPool monitor_pool_;
  bool sweep_scheduled_ = false;
  std::uint64_t last_swept_epoch_ = 0;
  /// Internal request-id space for subscription evaluations; disjoint from
  /// client request ids (those carry the client host in the high word).
  std::uint64_t next_eval_id_ = 0xe4a1'0000'0000'0000ull;
  /// Subscription -> in-flight pending id, so a newer wakeup supersedes an
  /// evaluation still waiting on authentication.
  std::map<PropertyMonitor::Key, std::uint64_t> inflight_;
  /// Highest SubscribeRequest::freshness accepted per client (replay guard
  /// for the state-mutating subscription channel).
  std::map<sdn::HostId, std::uint64_t> subscribe_freshness_;
};

}  // namespace rvaas::core
