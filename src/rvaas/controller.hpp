#pragma once
// The RVaaS controller (the paper's primary contribution, §IV): a stand-alone
// trusted OpenFlow controller running inside a (simulated) enclave that
// combines
//   (1) passive + actively-randomized configuration monitoring,
//   (2) logical data-plane verification (HSA reachability), and
//   (3) in-band testing with client interaction (auth round-trips)
// to answer client routing-verification queries.

#include <memory>

#include "enclave/attestation.hpp"
#include "rvaas/engine.hpp"
#include "rvaas/inband.hpp"
#include "rvaas/link_prober.hpp"
#include "sdn/network.hpp"

namespace rvaas::core {

enum class PollingMode { Randomized, Fixed, Disabled };

struct RvaasConfig {
  /// Subscribe to flow monitors on all switches (passive monitoring).
  bool passive_monitoring = true;
  PollingMode polling = PollingMode::Randomized;
  sim::Time poll_period = 50 * sim::kMillisecond;  ///< mean (randomized) / exact (fixed)
  /// How long to wait for authentication replies before answering.
  sim::Time auth_timeout = 5 * sim::kMillisecond;
  ConfidentialityPolicy policy = ConfidentialityPolicy::EndpointsOnly;
  std::size_t history_limit = 1 << 16;
  std::size_t max_reach_depth = 64;
  bool enable_link_prober = false;
  sim::Time probe_period = 100 * sim::kMillisecond;
  std::string enclave_name = "rvaas";
  std::string enclave_version = "1.0";
};

class RvaasController : public sdn::Controller {
 public:
  RvaasController(sdn::ControllerId id, sdn::Network& net,
                  const enclave::AttestationService& ias, RvaasConfig config,
                  util::Rng rng);

  sdn::ControllerId id() const override { return id_; }

  /// Key the trusted party authorizes on switches before bootstrap.
  const crypto::VerifyKey& channel_key() const {
    return channel_key_.verify_key();
  }

  /// Attaches to all switches, subscribes flow monitors, installs the
  /// magic-header intercept rules, starts pollers/probers.
  void bootstrap();

  /// Client enrollment: RVaaS learns the client's public keys.
  void register_client(sdn::HostId client, crypto::VerifyKey key,
                       crypto::BigUInt box_public);

  /// Optional inputs for geo / path-length / fairness queries.
  void set_geo_provider(std::unique_ptr<GeoProvider> geo);
  void set_addressing(const control::HostAddressing* addressing);

  const enclave::Enclave& enclave() const { return enclave_; }
  /// Attestation quote binding the enclave's keys to its measurement.
  enclave::Quote quote() const;

  const SnapshotManager& snapshot() const { return snapshot_; }
  /// The query engine answering this controller's logical steps; exposes the
  /// incremental model cache's counters (cache_stats) to benches/monitoring.
  const QueryEngine& engine() const { return engine_; }
  const std::vector<WiringAlarm>& wiring_alarms() const {
    return wiring_alarms_;
  }

  // sdn::Controller interface.
  void on_packet_in(const sdn::PacketIn& msg) override;
  void on_flow_update(const sdn::FlowUpdate& msg) override;

  struct Stats {
    std::uint64_t queries_received = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t auth_requests_sent = 0;
    std::uint64_t auth_replies_ok = 0;
    std::uint64_t auth_replies_bad = 0;
    std::uint64_t replies_sent = 0;
    std::uint64_t polls_sent = 0;
    std::uint64_t probes_sent = 0;
    std::uint64_t crypto_ops = 0;  ///< asymmetric operations (E9)
    std::uint64_t reach_steps = 0; ///< HSA rule applications (E4/E7)
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PendingQuery {
    QueryRequest request;
    sdn::PortRef request_point{};
    QueryReply reply;
    /// access point -> responded-with-valid-signature host
    std::map<sdn::PortRef, std::optional<sdn::HostId>> expected;
    std::map<std::uint64_t, sdn::PortRef> nonces;  ///< nonce -> target
    sim::EventId timeout{};
  };

  void schedule_poll();
  void schedule_probe();
  void poll_all_switches();
  void probe_all_links();
  void handle_request(const sdn::PacketIn& msg);
  void handle_auth_reply(const sdn::PacketIn& msg);
  void dispatch_auth_requests(PendingQuery& pending);
  void finalize(std::uint64_t request_id);
  void send_reply(const PendingQuery& pending);

  sdn::ControllerId id_;
  sdn::Network* net_;
  const enclave::AttestationService* ias_;
  RvaasConfig config_;
  util::Rng rng_;
  enclave::Enclave enclave_;
  crypto::SigningKey channel_key_;
  sdn::Network::ControllerHandle* handle_ = nullptr;
  QueryEngine engine_;
  SnapshotManager snapshot_;
  std::unique_ptr<GeoProvider> geo_;
  const control::HostAddressing* addressing_ = nullptr;

  struct ClientRecord {
    crypto::VerifyKey key;
    crypto::BigUInt box_public;
  };
  std::map<sdn::HostId, ClientRecord> clients_;
  std::map<std::uint64_t, PendingQuery> pending_;
  std::vector<WiringAlarm> wiring_alarms_;
  Stats stats_;
};

}  // namespace rvaas::core
