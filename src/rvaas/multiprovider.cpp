#include "rvaas/multiprovider.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace rvaas::core {

void Federation::add_domain(ProviderId id, RvaasController& rvaas) {
  util::ensure(!domains_.contains(id), "duplicate provider id");
  domains_[id] = Domain{&rvaas, &rvaas.engine().topology()};
}

void Federation::add_peering(ProviderId a, sdn::PortRef border, ProviderId b,
                             sdn::PortRef ingress) {
  util::ensure(domains_.contains(a) && domains_.contains(b),
               "peering references unknown domain");
  peerings_[{a, border}] = Peering{b, ingress};
}

bool Federation::verify_subquery(ProviderId from, const util::Bytes& payload,
                                 const crypto::Signature& sig) const {
  const auto it = domains_.find(from);
  if (it == domains_.end()) return false;
  return it->second.rvaas->enclave().verify_key().verify(payload, sig);
}

FederatedResult Federation::reachable(ProviderId start, sdn::PortRef ingress,
                                      const sdn::Match& constraint,
                                      std::uint32_t max_domains) const {
  FederatedResult out;
  const hsa::HeaderSpace hs(hsa::match_to_cube(constraint));
  reach_in_domain(start, ingress, hs, max_domains, {}, out);
  return out;
}

void Federation::reach_in_domain(ProviderId domain, sdn::PortRef ingress,
                                 const hsa::HeaderSpace& hs,
                                 std::uint32_t depth_left,
                                 std::vector<ProviderId> visited,
                                 FederatedResult& out) const {
  if (depth_left == 0) {
    out.depth_exceeded = true;
    return;
  }
  if (std::find(visited.begin(), visited.end(), domain) != visited.end()) {
    return;  // provider-level loop guard
  }
  visited.push_back(domain);
  ++out.domains_visited;

  const auto it = domains_.find(domain);
  util::ensure(it != domains_.end(), "unknown domain in federation walk");
  const Domain& dom = it->second;

  // Each domain's RVaaS answers from its own snapshot — domains never see
  // each other's configuration, only endpoint answers (confidentiality).
  // Compiled through the domain engine's incremental model cache (L1) and
  // traversed through its reach cache (L2), both shared with the domain's
  // own query paths — a federated walk re-entering an unchanged domain at
  // the same ingress is a cache hit.
  const QueryEngine& engine = dom.rvaas->engine();
  const hsa::NetworkModel model = engine.model(dom.rvaas->snapshot());
  const auto reach = engine.reach(model, dom.rvaas->snapshot(), ingress, hs);

  for (const auto& endpoint : reach->endpoints) {
    const auto peering_it = peerings_.find({domain, endpoint.egress});
    if (peering_it == peerings_.end()) {
      FederatedEndpoint fe;
      fe.provider = domain;
      fe.info.access_point = endpoint.egress;
      fe.info.dark = !endpoint.host.has_value();
      out.endpoints.push_back(fe);
      continue;
    }

    // Cross into the peer domain with the egress header space, as a signed
    // server-to-server subquery.
    const Peering& peering = peering_it->second;
    util::ByteWriter w;
    w.put_string("rvaas-federated-subquery-v1");
    w.put_u32(peering.ingress.sw.value);
    w.put_u32(peering.ingress.port.value);
    const crypto::Signature sig = dom.rvaas->enclave().sign(w.data());
    const bool accepted = verify_subquery(domain, w.data(), sig);
    util::ensure(accepted, "federated subquery signature rejected");
    ++out.subqueries;

    reach_in_domain(peering.to, peering.ingress, endpoint.space,
                    depth_left - 1, visited, out);
  }
}

}  // namespace rvaas::core
