#include "rvaas/multiprovider.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/ensure.hpp"
#include "util/fnv.hpp"

namespace rvaas::core {

const char* to_string(NeighborClass cls) {
  switch (cls) {
    case NeighborClass::Customer:
      return "customer";
    case NeighborClass::Peer:
      return "peer";
    case NeighborClass::Provider:
      return "provider";
  }
  return "unknown";
}

void Federation::add_domain(ProviderId id, RvaasController& rvaas) {
  util::ensure(!domains_.contains(id), "duplicate provider id");
  domains_[id] = Domain{&rvaas, &rvaas.engine().topology()};
}

void Federation::add_peering(ProviderId a, sdn::PortRef border, ProviderId b,
                             sdn::PortRef ingress) {
  util::ensure(domains_.contains(a) && domains_.contains(b),
               "peering references unknown domain");
  peerings_[{a, border}] = Peering{b, ingress};
}

void Federation::declare_relation(ProviderId domain, ProviderId neighbor,
                                  NeighborClass cls) {
  util::ensure(domains_.contains(domain) && domains_.contains(neighbor),
               "relation references unknown domain");
  relations_[{domain, neighbor}] = cls;
}

void Federation::set_policy(ProviderId domain, RoutePolicy policy) {
  util::ensure(domains_.contains(domain), "policy for unknown domain");
  policies_[domain] = std::move(policy);
}

void Federation::authorize_origin(ProviderId domain,
                                  const hsa::HeaderSpace& prefixes) {
  util::ensure(domains_.contains(domain), "origin for unknown domain");
  const auto [it, inserted] = origins_.try_emplace(domain, prefixes);
  if (!inserted) it->second = it->second.union_with(prefixes);
}

std::optional<NeighborClass> Federation::relation(ProviderId domain,
                                                  ProviderId neighbor) const {
  const auto it = relations_.find({domain, neighbor});
  if (it == relations_.end()) return std::nullopt;
  return it->second;
}

bool Federation::policy_allows(const std::vector<RoutePolicyRule>& rules,
                               NeighborClass cls,
                               const hsa::HeaderSpace& space) {
  for (const RoutePolicyRule& rule : rules) {
    if (rule.neighbor != cls) continue;
    if (space.intersect(rule.space).is_empty()) continue;
    return rule.allow;
  }
  return true;
}

NeighborClass Federation::entry_class(ProviderId domain,
                                      sdn::PortRef ingress) const {
  for (const auto& [key, peering] : peerings_) {
    if (peering.to == domain && peering.ingress == ingress) {
      if (const auto rel = relation(domain, key.first)) return *rel;
      return NeighborClass::Provider;  // undeclared feeder: worst case
    }
  }
  return NeighborClass::Customer;  // domain-originated traffic
}

bool Federation::verify_subquery(ProviderId from, const util::Bytes& payload,
                                 const crypto::Signature& sig) const {
  const auto it = domains_.find(from);
  if (it == domains_.end()) return false;
  return it->second.rvaas->enclave().verify_key().verify(payload, sig);
}

util::Bytes Federation::subquery_payload(sdn::PortRef ingress,
                                         const hsa::HeaderSpace& hs,
                                         std::uint32_t depth_left) {
  util::ByteWriter w;
  w.put_string("rvaas-federated-subquery-v2");
  w.put_u32(ingress.sw.value);
  w.put_u32(ingress.port.value);
  // Binding the crossing space (structural fingerprint) and the remaining
  // budget keeps a recorded subquery from verifying for different traffic
  // or at a different walk depth.
  w.put_u64(hs.fingerprint());
  w.put_u32(depth_left);
  return w.take();
}

namespace {

struct FederatedEndpointHash {
  std::size_t operator()(const FederatedEndpoint& e) const {
    std::uint64_t h = util::kFnvOffsetBasis;
    const std::uint32_t words[] = {
        e.provider.value,
        e.info.access_point.sw.value,
        e.info.access_point.port.value,
        static_cast<std::uint32_t>(e.info.dark) |
            (static_cast<std::uint32_t>(e.info.authenticated) << 1) |
            (static_cast<std::uint32_t>(e.info.authenticated_as.has_value())
             << 2),
        e.info.authenticated_as ? e.info.authenticated_as->value : 0};
    for (const std::uint32_t word : words) {
      for (int shift = 0; shift < 32; shift += 8) {
        h = util::fnv1a_mix(h, static_cast<std::uint8_t>(word >> shift));
      }
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

FederatedResult Federation::reachable(ProviderId start, sdn::PortRef ingress,
                                      const sdn::Match& constraint,
                                      std::uint32_t max_domains) const {
  FederatedResult out;
  const hsa::HeaderSpace hs(hsa::match_to_cube(constraint));
  std::vector<ProviderId> visited;
  reach_in_domain(start, ingress, hs, max_domains, visited, out);

  // Dedupe: branches of the walk that re-enter a domain (or several raw
  // subspaces exiting at one access point) would otherwise repeat the same
  // (provider, access point) answer. Hashed first-seen keeps first
  // occurrence order in O(n), instead of the old O(n^2) linear rescans.
  std::vector<FederatedEndpoint> unique;
  unique.reserve(out.endpoints.size());
  std::unordered_set<FederatedEndpoint, FederatedEndpointHash> seen;
  for (FederatedEndpoint& e : out.endpoints) {
    if (seen.insert(e).second) unique.push_back(std::move(e));
  }
  out.endpoints = std::move(unique);
  return out;
}

void Federation::reach_in_domain(ProviderId domain, sdn::PortRef ingress,
                                 const hsa::HeaderSpace& hs,
                                 std::uint32_t depth_left,
                                 std::vector<ProviderId>& visited,
                                 FederatedResult& out) const {
  // The loop guard runs BEFORE the depth check: a branch pruned for
  // re-entering a domain terminates regardless of budget, so it must not
  // report depth_exceeded (a loop is not a depth problem).
  if (std::find(visited.begin(), visited.end(), domain) != visited.end()) {
    return;  // provider-level loop guard
  }
  if (depth_left == 0) {
    out.depth_exceeded = true;
    return;
  }
  visited.push_back(domain);
  ++out.domains_visited;

  const auto it = domains_.find(domain);
  util::ensure(it != domains_.end(), "unknown domain in federation walk");
  const Domain& dom = it->second;

  // Each domain's RVaaS answers from its own snapshot — domains never see
  // each other's configuration, only endpoint answers (confidentiality).
  // The subquery runs through the domain engine's single per-kind dispatch
  // (QueryEngine::evaluate), so it shares the incremental model cache (L1)
  // and reach cache (L2) with the domain's own query paths — a federated
  // walk re-entering an unchanged domain at the same ingress is a cache
  // hit. The crossing space is multi-cube, hence space_override; a border
  // ingress is not a requester, hence no hairpin exclusion.
  const QueryEngine& engine = dom.rvaas->engine();
  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  QueryEngine::EvalContext ctx;
  ctx.from = ingress;
  ctx.space_override = &hs;
  ctx.exclude_requester = false;
  const QueryEngine::Evaluation eval =
      engine.evaluate(dom.rvaas->snapshot(), property, ctx);

  // Terminal endpoints of this domain, from the evaluated reply.
  for (const EndpointInfo& info : eval.reply.endpoints) {
    if (peerings_.contains({domain, info.access_point})) continue;
    FederatedEndpoint fe;
    fe.provider = domain;
    fe.info.access_point = info.access_point;
    fe.info.dark = info.dark;
    out.endpoints.push_back(fe);
  }

  // Border crossings continue with each raw egress subspace, as signed
  // server-to-server subqueries.
  for (const auto& endpoint : eval.primary_reach->endpoints) {
    const auto peering_it = peerings_.find({domain, endpoint.egress});
    if (peering_it == peerings_.end()) continue;

    const Peering& peering = peering_it->second;
    const util::Bytes payload =
        subquery_payload(peering.ingress, endpoint.space, depth_left - 1);
    const crypto::Signature sig = dom.rvaas->enclave().sign(payload);
    const bool accepted = verify_subquery(domain, payload, sig);
    util::ensure(accepted, "federated subquery signature rejected");
    ++out.subqueries;

    reach_in_domain(peering.to, peering.ingress, endpoint.space,
                    depth_left - 1, visited, out);
  }
  visited.pop_back();
}

void Federation::policy_in_domain(ProviderId domain, sdn::PortRef ingress,
                                  NeighborClass entered_from,
                                  const hsa::HeaderSpace& hs,
                                  std::uint32_t depth_left,
                                  std::vector<ProviderId>& visited,
                                  std::vector<PolicyReportItem>& report,
                                  WalkStats& stats) const {
  // Same guard order as reach_in_domain (see the comment there).
  if (std::find(visited.begin(), visited.end(), domain) != visited.end()) {
    return;
  }
  if (depth_left == 0) {
    stats.depth_exceeded = true;
    return;
  }
  visited.push_back(domain);
  ++stats.domains_visited;
  stats.max_depth =
      std::max(stats.max_depth, static_cast<std::uint32_t>(visited.size()));

  const auto it = domains_.find(domain);
  util::ensure(it != domains_.end(), "unknown domain in federation walk");
  const Domain& dom = it->second;

  const QueryEngine& engine = dom.rvaas->engine();
  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  QueryEngine::EvalContext ctx;
  ctx.from = ingress;
  ctx.space_override = &hs;
  ctx.exclude_requester = false;
  const QueryEngine::Evaluation eval =
      engine.evaluate(dom.rvaas->snapshot(), property, ctx);

  const auto origin = origins_.find(domain);
  for (const auto& endpoint : eval.primary_reach->endpoints) {
    const auto peering_it = peerings_.find({domain, endpoint.egress});
    if (peering_it == peerings_.end()) {
      // Terminal delivery. Dark-port egress is the exfiltration story of
      // the endpoint query kinds; the origin question applies to actual
      // host deliveries: traffic delivered locally outside the domain's
      // authorized origin space is a hijack indicator.
      if (origin == origins_.end()) continue;
      if (!dom.topo->host_at(endpoint.egress).has_value()) continue;
      hsa::HeaderSpace residual = endpoint.space;
      for (const hsa::Wildcard& w : origin->second.resolve()) {
        residual = residual.subtract(w);
      }
      if (!residual.is_empty()) {
        report.push_back(PolicyReportItem{
            PolicyVerdict::UnauthorizedOrigin, domain, domain,
            endpoint.egress, endpoint.egress, endpoint.space.fingerprint()});
      }
      continue;
    }

    const Peering& peering = peering_it->second;
    // Judge the crossing: declared relations both ways, then each side's
    // rule store, then the valley-free condition (traffic learned from a
    // non-customer may only be exported to a customer).
    const auto rel_out = relation(domain, peering.to);
    const auto rel_in = relation(peering.to, domain);
    PolicyVerdict verdict = PolicyVerdict::Ok;
    if (!rel_out || !rel_in) {
      verdict = PolicyVerdict::UnexpectedCrossing;
    } else {
      const auto exp = policies_.find(domain);
      const auto imp = policies_.find(peering.to);
      const bool exported =
          exp == policies_.end() ||
          policy_allows(exp->second.export_rules, *rel_out, endpoint.space);
      const bool imported =
          imp == policies_.end() ||
          policy_allows(imp->second.import_rules, *rel_in, endpoint.space);
      if (!exported || !imported) {
        verdict = PolicyVerdict::UnexpectedCrossing;
      } else if (entered_from != NeighborClass::Customer &&
                 *rel_out != NeighborClass::Customer) {
        verdict = PolicyVerdict::RouteLeak;
      }
    }
    report.push_back(PolicyReportItem{verdict, domain, peering.to,
                                      endpoint.egress, peering.ingress,
                                      endpoint.space.fingerprint()});

    const util::Bytes payload =
        subquery_payload(peering.ingress, endpoint.space, depth_left - 1);
    const crypto::Signature sig = dom.rvaas->enclave().sign(payload);
    util::ensure(verify_subquery(domain, payload, sig),
                 "federated subquery signature rejected");
    ++stats.subqueries;

    // Continue past violations: downstream of a leak there may be more to
    // surface. An undeclared inverse relation worst-cases to Provider so a
    // later export can still be recognized as a leak.
    policy_in_domain(peering.to, peering.ingress,
                     rel_in.value_or(NeighborClass::Provider), endpoint.space,
                     depth_left - 1, visited, report, stats);
  }
  visited.pop_back();
}

/// Adapter handed to QueryEngine::evaluate: the engine's PolicyCompliance
/// dispatch calls back into the federation walk with the evaluated
/// constraint space. Stats are mutable because walk() is const for the
/// engine but is the one place the walk's cost is observable.
class Federation::BoundWalker final : public QueryEngine::PolicyWalker {
 public:
  BoundWalker(const Federation& fed, ProviderId start,
              std::uint32_t max_domains)
      : fed_(fed), start_(start), max_domains_(max_domains) {}

  std::vector<PolicyReportItem> walk(
      sdn::PortRef from, const hsa::HeaderSpace& hs) const override {
    std::vector<PolicyReportItem> report;
    std::vector<ProviderId> visited;
    fed_.policy_in_domain(start_, from, fed_.entry_class(start_, from), hs,
                          max_domains_, visited, report, stats);
    return report;
  }

  mutable WalkStats stats;

 private:
  const Federation& fed_;
  ProviderId start_;
  std::uint32_t max_domains_;
};

PolicyVerification Federation::verify_policy(ProviderId start,
                                             sdn::PortRef ingress,
                                             const sdn::Match& constraint,
                                             std::uint32_t max_domains) const {
  const auto it = domains_.find(start);
  util::ensure(it != domains_.end(), "unknown start domain");
  const Domain& dom = it->second;

  const BoundWalker walker(*this, start, max_domains);
  Property property;
  property.kind = QueryKind::PolicyCompliance;
  property.constraint = constraint;
  QueryEngine::EvalContext ctx;
  ctx.from = ingress;
  ctx.policy = &walker;
  ctx.exclude_requester = false;
  QueryEngine::Evaluation eval =
      dom.rvaas->engine().evaluate(dom.rvaas->snapshot(), property, ctx);

  PolicyVerification out;
  out.reply = std::move(eval.reply);
  out.signature = dom.rvaas->enclave().sign(out.reply.signing_payload());
  out.domains_visited = walker.stats.domains_visited;
  out.subqueries = walker.stats.subqueries;
  out.max_walk_depth = walker.stats.max_depth;
  out.depth_exceeded = walker.stats.depth_exceeded;
  return out;
}

}  // namespace rvaas::core
