#include "rvaas/multiprovider.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace rvaas::core {

void Federation::add_domain(ProviderId id, RvaasController& rvaas) {
  util::ensure(!domains_.contains(id), "duplicate provider id");
  domains_[id] = Domain{&rvaas, &rvaas.engine().topology()};
}

void Federation::add_peering(ProviderId a, sdn::PortRef border, ProviderId b,
                             sdn::PortRef ingress) {
  util::ensure(domains_.contains(a) && domains_.contains(b),
               "peering references unknown domain");
  peerings_[{a, border}] = Peering{b, ingress};
}

bool Federation::verify_subquery(ProviderId from, const util::Bytes& payload,
                                 const crypto::Signature& sig) const {
  const auto it = domains_.find(from);
  if (it == domains_.end()) return false;
  return it->second.rvaas->enclave().verify_key().verify(payload, sig);
}

FederatedResult Federation::reachable(ProviderId start, sdn::PortRef ingress,
                                      const sdn::Match& constraint,
                                      std::uint32_t max_domains) const {
  FederatedResult out;
  const hsa::HeaderSpace hs(hsa::match_to_cube(constraint));
  std::vector<ProviderId> visited;
  reach_in_domain(start, ingress, hs, max_domains, visited, out);

  // Dedupe: branches of the walk that re-enter a domain (or several raw
  // subspaces exiting at one access point) would otherwise repeat the same
  // (provider, access point) answer. First occurrence order is kept.
  std::vector<FederatedEndpoint> unique;
  unique.reserve(out.endpoints.size());
  for (FederatedEndpoint& e : out.endpoints) {
    if (std::find(unique.begin(), unique.end(), e) == unique.end()) {
      unique.push_back(std::move(e));
    }
  }
  out.endpoints = std::move(unique);
  return out;
}

void Federation::reach_in_domain(ProviderId domain, sdn::PortRef ingress,
                                 const hsa::HeaderSpace& hs,
                                 std::uint32_t depth_left,
                                 std::vector<ProviderId>& visited,
                                 FederatedResult& out) const {
  if (depth_left == 0) {
    out.depth_exceeded = true;
    return;
  }
  if (std::find(visited.begin(), visited.end(), domain) != visited.end()) {
    return;  // provider-level loop guard
  }
  visited.push_back(domain);
  ++out.domains_visited;

  const auto it = domains_.find(domain);
  util::ensure(it != domains_.end(), "unknown domain in federation walk");
  const Domain& dom = it->second;

  // Each domain's RVaaS answers from its own snapshot — domains never see
  // each other's configuration, only endpoint answers (confidentiality).
  // The subquery runs through the domain engine's single per-kind dispatch
  // (QueryEngine::evaluate), so it shares the incremental model cache (L1)
  // and reach cache (L2) with the domain's own query paths — a federated
  // walk re-entering an unchanged domain at the same ingress is a cache
  // hit. The crossing space is multi-cube, hence space_override; a border
  // ingress is not a requester, hence no hairpin exclusion.
  const QueryEngine& engine = dom.rvaas->engine();
  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  QueryEngine::EvalContext ctx;
  ctx.from = ingress;
  ctx.space_override = &hs;
  ctx.exclude_requester = false;
  const QueryEngine::Evaluation eval =
      engine.evaluate(dom.rvaas->snapshot(), property, ctx);

  // Terminal endpoints of this domain, from the evaluated reply.
  for (const EndpointInfo& info : eval.reply.endpoints) {
    if (peerings_.contains({domain, info.access_point})) continue;
    FederatedEndpoint fe;
    fe.provider = domain;
    fe.info.access_point = info.access_point;
    fe.info.dark = info.dark;
    out.endpoints.push_back(fe);
  }

  // Border crossings continue with each raw egress subspace, as signed
  // server-to-server subqueries.
  for (const auto& endpoint : eval.primary_reach->endpoints) {
    const auto peering_it = peerings_.find({domain, endpoint.egress});
    if (peering_it == peerings_.end()) continue;

    const Peering& peering = peering_it->second;
    util::ByteWriter w;
    w.put_string("rvaas-federated-subquery-v1");
    w.put_u32(peering.ingress.sw.value);
    w.put_u32(peering.ingress.port.value);
    const crypto::Signature sig = dom.rvaas->enclave().sign(w.data());
    const bool accepted = verify_subquery(domain, w.data(), sig);
    util::ensure(accepted, "federated subquery signature rejected");
    ++out.subqueries;

    reach_in_domain(peering.to, peering.ingress, endpoint.space,
                    depth_left - 1, visited, out);
  }
  visited.pop_back();
}

}  // namespace rvaas::core
