#pragma once
// The RVaaS controller's view of the network configuration (§IV.A.1):
// maintained passively from flow-monitor events, reconciled actively from
// randomized stats polls, with a change history that defends against
// short-term reconfiguration attacks.

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sdn/openflow.hpp"
#include "sim/event_loop.hpp"

namespace rvaas::core {

struct HistoryRecord {
  sim::Time t = 0;
  sdn::SwitchId sw{};
  sdn::FlowUpdateKind kind = sdn::FlowUpdateKind::Added;
  sdn::FlowEntry entry;
};

/// A disagreement between the passive view and an active poll — with trusted
/// switches this indicates lost events or an active attack on monitoring.
struct Discrepancy {
  sim::Time t = 0;
  sdn::SwitchId sw{};
  std::string description;
};

class SnapshotManager {
 public:
  explicit SnapshotManager(std::size_t history_limit = 1 << 16)
      : history_limit_(history_limit) {}

  /// Passive path: a flow-monitor event.
  void apply_update(const sdn::FlowUpdate& update, sim::Time now);

  /// Active path: reconciles a full stats dump against the current view.
  /// Differences are recorded as discrepancies AND adopted (the switch is
  /// the authority).
  void reconcile(const sdn::StatsReply& reply, sim::Time now);

  /// Entries per switch in match order (priority desc, id desc), the input
  /// to transfer-function compilation.
  std::map<sdn::SwitchId, std::vector<sdn::FlowEntry>> table_dump() const;

  /// Latest meter configuration seen per switch (from stats polls).
  const std::map<sdn::SwitchId,
                 std::vector<std::pair<sdn::MeterId, sdn::MeterConfig>>>&
  meters() const {
    return meters_;
  }

  const std::deque<HistoryRecord>& history() const { return history_; }
  const std::vector<Discrepancy>& discrepancies() const {
    return discrepancies_;
  }

  /// Rules that were added and removed again within `max_dwell` — the
  /// signature of a reconfiguration (flapping) attack.
  std::vector<HistoryRecord> short_lived(sim::Time max_dwell) const;

  /// true iff some history record matches the predicate.
  template <class Pred>
  bool history_contains(Pred&& pred) const {
    for (const HistoryRecord& rec : history_) {
      if (pred(rec)) return true;
    }
    return false;
  }

  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t polls_applied() const { return polls_applied_; }
  std::size_t entry_count() const;
  /// Rough memory footprint of the view + history (experiment E7).
  std::size_t approx_memory_bytes() const;

 private:
  void record(sim::Time t, sdn::SwitchId sw, sdn::FlowUpdateKind kind,
              const sdn::FlowEntry& entry);

  std::map<sdn::SwitchId, std::map<sdn::FlowEntryId, sdn::FlowEntry>> tables_;
  std::map<sdn::SwitchId,
           std::vector<std::pair<sdn::MeterId, sdn::MeterConfig>>>
      meters_;
  std::deque<HistoryRecord> history_;
  std::vector<Discrepancy> discrepancies_;
  std::size_t history_limit_;
  std::uint64_t events_applied_ = 0;
  std::uint64_t polls_applied_ = 0;
};

}  // namespace rvaas::core
