#pragma once
// The RVaaS controller's view of the network configuration (§IV.A.1):
// maintained passively from flow-monitor events, reconciled actively from
// randomized stats polls, with a change history that defends against
// short-term reconfiguration attacks.
//
// Change clock: the view carries a monotonically increasing epoch plus a
// per-switch table epoch so that consumers (CompiledModelCache in
// rvaas/engine.hpp) can recompile only the switches that actually changed.
// The clock is content-sensitive by design:
//   - a switch's FIRST appearance in the view bumps its epoch, even with an
//     empty table ("switch now known" is itself a view change, so every
//     switch in switch_ids() has a nonzero epoch),
//   - after that, apply_update() bumps iff the switch's table content
//     changes (a re-delivered identical entry or a Removed for an unknown
//     id is a no-op),
//   - reconcile() bumps once iff it adopts at least one difference (a poll
//     that agrees with the view is free),
//   - meter updates and history-limit eviction never touch table epochs
//     (meters and history are outside the compiled model's inputs).

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sdn/openflow.hpp"
#include "sim/event_loop.hpp"

namespace rvaas::core {

struct HistoryRecord {
  sim::Time t = 0;
  sdn::SwitchId sw{};
  sdn::FlowUpdateKind kind = sdn::FlowUpdateKind::Added;
  sdn::FlowEntry entry;
};

/// A disagreement between the passive view and an active poll — with trusted
/// switches this indicates lost events or an active attack on monitoring.
struct Discrepancy {
  sim::Time t = 0;
  sdn::SwitchId sw{};
  std::string description;
};

class SnapshotManager {
 public:
  explicit SnapshotManager(std::size_t history_limit = 1 << 16)
      : history_limit_(history_limit) {}

  /// Passive path: a flow-monitor event.
  void apply_update(const sdn::FlowUpdate& update, sim::Time now);

  /// Active path: reconciles a full stats dump against the current view.
  /// Differences are recorded as discrepancies AND adopted (the switch is
  /// the authority).
  void reconcile(const sdn::StatsReply& reply, sim::Time now);

  /// Entries per switch in match order (priority desc, id desc), the input
  /// to transfer-function compilation. Prefer table() per dirty switch on
  /// hot paths — this copies every table.
  std::map<sdn::SwitchId, std::vector<sdn::FlowEntry>> table_dump() const;

  /// Entries of one switch in match order — the per-switch input to
  /// incremental transfer-function compilation. Empty if the switch is
  /// unknown or its table is empty.
  std::vector<sdn::FlowEntry> table(sdn::SwitchId sw) const;

  /// Switches present in the view, sorted ascending.
  std::vector<sdn::SwitchId> switch_ids() const;

  /// Entry lookup without dumping the whole table (nullptr if absent).
  const sdn::FlowEntry* find_entry(sdn::SwitchId sw,
                                   sdn::FlowEntryId id) const;

  /// Monotonic change clock: bumped once per adopted table-content change
  /// (see the header comment for exactly when that is).
  std::uint64_t epoch() const { return epoch_; }

  /// Epoch at which `sw`'s table content last changed (0 = never changed).
  std::uint64_t table_epoch(sdn::SwitchId sw) const;

  /// The per-switch change clocks backing the dirty set.
  const std::map<sdn::SwitchId, std::uint64_t>& table_epochs() const {
    return table_epochs_;
  }

  /// The dirty set relative to `since`: switches whose table content changed
  /// after epoch `since` — exactly what a consumer that compiled at epoch
  /// `since` must recompile. Sorted ascending.
  std::vector<sdn::SwitchId> dirty_since(std::uint64_t since) const;

  /// Identity of this view instance: a copy takes a fresh id (diverging
  /// twins must never share an identity, or a cache keyed on (instance,
  /// epoch) could serve one twin's compilation for the other at equal
  /// epoch numbers); a move transfers the id with the content and
  /// re-identifies the moved-from side. Caches key on (instance_id, epoch).
  std::uint64_t instance_id() const { return instance_id_.value; }

  /// Re-identifies the view in place (content and epochs kept): what a
  /// controller restart/recovery adopting a persisted view looks like to
  /// the caches — everything keyed on the old identity must fully rebuild.
  void reset_identity() { instance_id_ = InstanceId(); }

  /// Latest meter configuration seen per switch (from stats polls).
  const std::map<sdn::SwitchId,
                 std::vector<std::pair<sdn::MeterId, sdn::MeterConfig>>>&
  meters() const {
    return meters_;
  }

  const std::deque<HistoryRecord>& history() const { return history_; }
  const std::vector<Discrepancy>& discrepancies() const {
    return discrepancies_;
  }

  /// Rules that were added and removed again within `max_dwell` — the
  /// signature of a reconfiguration (flapping) attack.
  std::vector<HistoryRecord> short_lived(sim::Time max_dwell) const;

  /// true iff some history record matches the predicate.
  template <class Pred>
  bool history_contains(Pred&& pred) const {
    for (const HistoryRecord& rec : history_) {
      if (pred(rec)) return true;
    }
    return false;
  }

  /// When the switch's state was last confirmed by the channel: a passive
  /// flow-monitor event or an adopted/agreeing stats poll both count (either
  /// proves the channel delivered fresh information about the switch).
  /// 0 = never confirmed. Survives reset_identity() with the content.
  sim::Time last_confirmed(sdn::SwitchId sw) const {
    const auto it = last_confirmed_.find(sw);
    return it == last_confirmed_.end() ? 0 : it->second;
  }
  const std::map<sdn::SwitchId, sim::Time>& last_confirmed_times() const {
    return last_confirmed_;
  }

  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t polls_applied() const { return polls_applied_; }
  std::size_t entry_count() const;
  /// Rough memory footprint of the view + history (experiment E7).
  std::size_t approx_memory_bytes() const;

 private:
  static std::uint64_t next_instance_id();

  /// Identity token implementing the instance_id() semantics above, so the
  /// manager itself keeps all-defaulted special members (a future data
  /// member cannot be forgotten in a hand-written copy).
  struct InstanceId {
    std::uint64_t value = next_instance_id();

    InstanceId() = default;
    InstanceId(const InstanceId&) {}  // fresh value via the default init
    InstanceId& operator=(const InstanceId& other) {
      if (this != &other) value = next_instance_id();
      return *this;
    }
    InstanceId(InstanceId&& other) noexcept : value(other.value) {
      other.value = next_instance_id();
    }
    InstanceId& operator=(InstanceId&& other) noexcept {
      if (this != &other) {
        value = other.value;
        other.value = next_instance_id();
      }
      return *this;
    }
  };

  void record(sim::Time t, sdn::SwitchId sw, sdn::FlowUpdateKind kind,
              const sdn::FlowEntry& entry);
  /// Marks `sw`'s table content as changed now.
  void bump(sdn::SwitchId sw) { table_epochs_[sw] = ++epoch_; }

  std::map<sdn::SwitchId, std::map<sdn::FlowEntryId, sdn::FlowEntry>> tables_;
  std::map<sdn::SwitchId,
           std::vector<std::pair<sdn::MeterId, sdn::MeterConfig>>>
      meters_;
  std::deque<HistoryRecord> history_;
  std::vector<Discrepancy> discrepancies_;
  std::size_t history_limit_;
  std::uint64_t events_applied_ = 0;
  std::uint64_t polls_applied_ = 0;
  std::uint64_t epoch_ = 0;
  std::map<sdn::SwitchId, std::uint64_t> table_epochs_;
  std::map<sdn::SwitchId, sim::Time> last_confirmed_;
  InstanceId instance_id_;
};

}  // namespace rvaas::core
