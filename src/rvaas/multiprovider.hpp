#pragma once
// Multi-provider extension (§IV.C.a): queries propagate between the RVaaS
// servers of consecutive providers. Border ports of one domain map to
// ingress ports of the next; when a reach computation exits at a border
// port, a signed subquery continues in the peer domain. Trust extends to
// all traversed RVaaS servers (exactly as the paper states).
//
// On top of the reachability walk, the federation keeps a per-domain policy
// store — business relations (customer/peer/provider), import/export rules
// over prefix spaces, and authorized origin prefixes — and verifies observed
// crossings against it (QueryKind::PolicyCompliance): the route-origin /
// route-leak validation problem of the RPKI literature, answered from the
// data plane instead of from BGP announcements.

#include "rvaas/controller.hpp"

namespace rvaas::core {

// ProviderId lives in rvaas/query.hpp (the PolicyReportItem wire vocabulary
// needs it).

struct FederatedEndpoint {
  ProviderId provider{};
  EndpointInfo info;

  bool operator==(const FederatedEndpoint&) const = default;
};

struct FederatedResult {
  /// Deduplicated: a domain reached through several branches of the walk
  /// reports each (provider, access point) once.
  std::vector<FederatedEndpoint> endpoints;
  std::uint32_t subqueries = 0;  ///< server-to-server calls made
  std::uint32_t domains_visited = 0;
  bool depth_exceeded = false;
};

/// Gao-Rexford neighbor classes, as seen from one domain: my Customer pays
/// me, my Provider is paid by me, my Peer exchanges traffic settlement-free.
enum class NeighborClass : std::uint8_t { Customer = 0, Peer, Provider };

const char* to_string(NeighborClass cls);

/// One prefix-space x neighbor-class allow/deny rule. The first rule whose
/// neighbor class matches and whose space intersects the crossing traffic
/// decides; no matching rule means allow (rule lists are deny-listing
/// refinements on top of the structural valley-free check, which always
/// applies).
struct RoutePolicyRule {
  NeighborClass neighbor = NeighborClass::Customer;
  hsa::HeaderSpace space;
  bool allow = true;
};

/// A domain's import/export policy store: export rules judge traffic this
/// domain hands to a neighbor (classed by what the neighbor is to this
/// domain), import rules judge traffic a domain accepts (classed by what the
/// sender is to the accepting domain).
struct RoutePolicy {
  std::vector<RoutePolicyRule> import_rules;
  std::vector<RoutePolicyRule> export_rules;
};

/// Outcome of a PolicyCompliance walk: the reply (one PolicyReportItem per
/// observed crossing plus one per flagged terminal delivery) signed by the
/// start domain's enclave, and the walk's cost counters for scoreboards.
struct PolicyVerification {
  QueryReply reply;
  crypto::Signature signature;
  std::uint32_t domains_visited = 0;
  std::uint32_t subqueries = 0;
  std::uint32_t max_walk_depth = 0;  ///< deepest provider chain observed
  bool depth_exceeded = false;
};

class Federation {
 public:
  /// Registers a domain; its wiring plan is the controller's own topology
  /// (subqueries answer through the domain engine's cached model). The
  /// controller must already be bootstrapped.
  void add_domain(ProviderId id, RvaasController& rvaas);

  /// Declares that `border` (a dark port in domain `a`) is physically wired
  /// to `ingress` (a port in domain `b`). One direction; add both if needed.
  void add_peering(ProviderId a, sdn::PortRef border, ProviderId b,
                   sdn::PortRef ingress);

  /// Declares the business relation of `neighbor` as seen from `domain`.
  /// Declare both directions (A sees B as Customer <=> B sees A as
  /// Provider); crossings over undeclared relations are flagged
  /// UnexpectedCrossing.
  void declare_relation(ProviderId domain, ProviderId neighbor,
                        NeighborClass cls);

  /// Replaces `domain`'s import/export policy store.
  void set_policy(ProviderId domain, RoutePolicy policy);

  /// Adds `prefixes` (typically exact-IpDst cubes of the domain's own
  /// hosts) to the origin space `domain` is authorized to deliver locally.
  /// Once any origin space is declared, terminal deliveries outside it are
  /// flagged UnauthorizedOrigin — the data-plane analogue of announcing a
  /// foreign prefix.
  void authorize_origin(ProviderId domain, const hsa::HeaderSpace& prefixes);

  /// Recursive reachability across domains, starting at `ingress` in
  /// `start`. Server-to-server subqueries are signed by the requesting
  /// enclave and verified against the federation's key registry.
  FederatedResult reachable(ProviderId start, sdn::PortRef ingress,
                            const sdn::Match& constraint,
                            std::uint32_t max_domains = 8) const;

  /// Policy-compliance walk over the observed crossings of traffic entering
  /// at `ingress` of `start`: evaluated through the start domain's
  /// QueryEngine (the PolicyCompliance dispatch hands the walk back to this
  /// federation) and signed by its enclave, like any other reply.
  PolicyVerification verify_policy(ProviderId start, sdn::PortRef ingress,
                                   const sdn::Match& constraint,
                                   std::uint32_t max_domains = 8) const;

  /// Canonical signed payload of a server-to-server subquery: binds the
  /// crossing point, the crossing header space and the remaining walk
  /// depth, so a recorded subquery never verifies for different traffic or
  /// a different budget (tamper coverage in test_codec_robustness).
  static util::Bytes subquery_payload(sdn::PortRef ingress,
                                      const hsa::HeaderSpace& hs,
                                      std::uint32_t depth_left);

 private:
  struct Domain {
    RvaasController* rvaas = nullptr;
    const sdn::Topology* topo = nullptr;
  };
  struct Peering {
    ProviderId to{};
    sdn::PortRef ingress;
  };
  struct WalkStats {
    std::uint32_t subqueries = 0;
    std::uint32_t domains_visited = 0;
    std::uint32_t max_depth = 0;
    bool depth_exceeded = false;
  };

  /// `visited` is the provider chain of the current walk branch, maintained
  /// by reference with push/pop backtracking (no per-recursion copies).
  void reach_in_domain(ProviderId domain, sdn::PortRef ingress,
                       const hsa::HeaderSpace& hs, std::uint32_t depth_left,
                       std::vector<ProviderId>& visited,
                       FederatedResult& out) const;

  /// The PolicyCompliance twin of reach_in_domain: same traversal, but each
  /// crossing is judged against relations + import/export rules and each
  /// terminal delivery against the authorized origin space. `entered_from`
  /// is the class of the neighbor the traffic entered this domain from
  /// (Customer for domain-originated walks) — the valley-free state.
  void policy_in_domain(ProviderId domain, sdn::PortRef ingress,
                        NeighborClass entered_from,
                        const hsa::HeaderSpace& hs, std::uint32_t depth_left,
                        std::vector<ProviderId>& visited,
                        std::vector<PolicyReportItem>& report,
                        WalkStats& stats) const;

  std::optional<NeighborClass> relation(ProviderId domain,
                                        ProviderId neighbor) const;

  /// First-match rule scan; no matching rule = allow.
  static bool policy_allows(const std::vector<RoutePolicyRule>& rules,
                            NeighborClass cls, const hsa::HeaderSpace& space);

  /// The class of whoever feeds (domain, ingress): reverse peering lookup,
  /// worst-cased to Provider for an undeclared feeder; Customer when
  /// nothing feeds the port (the walk starts on domain-originated traffic).
  NeighborClass entry_class(ProviderId domain, sdn::PortRef ingress) const;

  /// Simulated secure server-to-server call: the caller signs the subquery,
  /// the callee verifies against the registry before answering.
  bool verify_subquery(ProviderId from, const util::Bytes& payload,
                       const crypto::Signature& sig) const;

  class BoundWalker;  ///< QueryEngine::PolicyWalker bound to one walk

  std::map<ProviderId, Domain> domains_;
  std::map<std::pair<ProviderId, sdn::PortRef>, Peering> peerings_;
  std::map<std::pair<ProviderId, ProviderId>, NeighborClass> relations_;
  std::map<ProviderId, RoutePolicy> policies_;
  std::map<ProviderId, hsa::HeaderSpace> origins_;
};

}  // namespace rvaas::core
