#pragma once
// Multi-provider extension (§IV.C.a): queries propagate between the RVaaS
// servers of consecutive providers. Border ports of one domain map to
// ingress ports of the next; when a reach computation exits at a border
// port, a signed subquery continues in the peer domain. Trust extends to
// all traversed RVaaS servers (exactly as the paper states).

#include "rvaas/controller.hpp"

namespace rvaas::core {

using ProviderId = util::StrongId<struct ProviderIdTag>;

struct FederatedEndpoint {
  ProviderId provider{};
  EndpointInfo info;

  bool operator==(const FederatedEndpoint&) const = default;
};

struct FederatedResult {
  /// Deduplicated: a domain reached through several branches of the walk
  /// reports each (provider, access point) once.
  std::vector<FederatedEndpoint> endpoints;
  std::uint32_t subqueries = 0;  ///< server-to-server calls made
  std::uint32_t domains_visited = 0;
  bool depth_exceeded = false;
};

class Federation {
 public:
  /// Registers a domain; its wiring plan is the controller's own topology
  /// (subqueries answer through the domain engine's cached model). The
  /// controller must already be bootstrapped.
  void add_domain(ProviderId id, RvaasController& rvaas);

  /// Declares that `border` (a dark port in domain `a`) is physically wired
  /// to `ingress` (a port in domain `b`). One direction; add both if needed.
  void add_peering(ProviderId a, sdn::PortRef border, ProviderId b,
                   sdn::PortRef ingress);

  /// Recursive reachability across domains, starting at `ingress` in
  /// `start`. Server-to-server subqueries are signed by the requesting
  /// enclave and verified against the federation's key registry.
  FederatedResult reachable(ProviderId start, sdn::PortRef ingress,
                            const sdn::Match& constraint,
                            std::uint32_t max_domains = 8) const;

 private:
  struct Domain {
    RvaasController* rvaas = nullptr;
    const sdn::Topology* topo = nullptr;
  };
  struct Peering {
    ProviderId to{};
    sdn::PortRef ingress;
  };

  /// `visited` is the provider chain of the current walk branch, maintained
  /// by reference with push/pop backtracking (no per-recursion copies).
  void reach_in_domain(ProviderId domain, sdn::PortRef ingress,
                       const hsa::HeaderSpace& hs, std::uint32_t depth_left,
                       std::vector<ProviderId>& visited,
                       FederatedResult& out) const;

  /// Simulated secure server-to-server call: the caller signs the subquery,
  /// the callee verifies against the registry before answering.
  bool verify_subquery(ProviderId from, const util::Bytes& payload,
                       const crypto::Signature& sig) const;

  std::map<ProviderId, Domain> domains_;
  std::map<std::pair<ProviderId, sdn::PortRef>, Peering> peerings_;
};

}  // namespace rvaas::core
