#pragma once
// In-band protocol codecs (Figures 1 and 2 of the paper):
//
//   client --(magic UDP, sealed QueryRequest)--> ingress switch --packet-in-->
//   RVaaS --packet-out--> (signed AuthRequest at each candidate endpoint)
//   endpoint --(magic UDP, signed AuthReply)--> packet-in --> RVaaS
//   RVaaS --packet-out--> (signed+sealed QueryReply at the requester)
//
// Requests are sealed to the enclave (the provider cannot read queries);
// replies are signed by it (the provider cannot forge answers).

#include "controlplane/routing.hpp"
#include "enclave/enclave.hpp"
#include "rvaas/query.hpp"
#include "sdn/header.hpp"

namespace rvaas::core::inband {

enum class Tag : std::uint32_t {
  Request = 0x52565131,    // "RVQ1"
  AuthRequest = 0x52564131,  // "RVA1"
  AuthReply = 0x52565231,    // "RVR1"
  Reply = 0x52565031,        // "RVP1"
};

/// Classifies an in-band packet by UDP port + payload tag.
std::optional<Tag> classify(const sdn::Packet& packet);

// --- client query request (sealed to the enclave) ---

sdn::Packet make_request_packet(const control::HostAddress& src,
                                const QueryRequest& request,
                                const crypto::BigUInt& rvaas_box_pub,
                                util::Rng& rng);

/// Opens a request inside the enclave; nullopt on tamper/garbage.
std::optional<QueryRequest> open_request(const sdn::Packet& packet,
                                         const enclave::Enclave& enclave);

// --- authentication request (RVaaS -> candidate endpoint, signed) ---

struct AuthRequest {
  std::uint64_t request_id = 0;
  std::uint64_t nonce = 0;
  sdn::PortRef target{};  ///< the access point being probed

  util::Bytes signing_payload() const;
};

sdn::Packet make_auth_request(const AuthRequest& req,
                              const enclave::Enclave& enclave);

/// Client-side verification against the trusted RVaaS key.
std::optional<AuthRequest> verify_auth_request(
    const sdn::Packet& packet, const crypto::VerifyKey& rvaas_key);

// --- authentication reply (endpoint -> RVaaS, signed by the client) ---

struct AuthReply {
  std::uint64_t request_id = 0;
  std::uint64_t nonce = 0;
  sdn::HostId client{};

  util::Bytes signing_payload() const;
};

sdn::Packet make_auth_reply(const control::HostAddress& src,
                            const AuthReply& reply,
                            const crypto::SigningKey& client_key);

/// Parses without verifying; the controller checks the signature against its
/// client registry (it must first learn the claimed identity).
std::optional<std::pair<AuthReply, crypto::Signature>> parse_auth_reply(
    const sdn::Packet& packet);

// --- final query reply (RVaaS -> client, signed then sealed) ---

sdn::Packet make_reply_packet(const QueryReply& reply,
                              const enclave::Enclave& enclave,
                              const crypto::BigUInt& client_box_pub,
                              util::Rng& rng);

struct OpenedReply {
  QueryReply reply;
  bool signature_ok = false;
};

std::optional<OpenedReply> open_reply(const sdn::Packet& packet,
                                      const crypto::BoxOpener& client_box,
                                      const crypto::VerifyKey& rvaas_key);

}  // namespace rvaas::core::inband
