#pragma once
// In-band protocol codecs (Figures 1 and 2 of the paper):
//
//   client --(magic UDP, sealed QueryRequest)--> ingress switch --packet-in-->
//   RVaaS --packet-out--> (signed AuthRequest at each candidate endpoint)
//   endpoint --(magic UDP, signed AuthReply)--> packet-in --> RVaaS
//   RVaaS --packet-out--> (signed+sealed QueryReply at the requester)
//
// Requests are sealed to the enclave (the provider cannot read queries);
// replies are signed by it (the provider cannot forge answers).

#include "controlplane/routing.hpp"
#include "enclave/enclave.hpp"
#include "rvaas/query.hpp"
#include "sdn/header.hpp"

namespace rvaas::core::inband {

enum class Tag : std::uint32_t {
  Request = 0x52565131,      // "RVQ1"
  AuthRequest = 0x52564131,  // "RVA1"
  AuthReply = 0x52565231,    // "RVR1"
  Reply = 0x52565031,        // "RVP1"
  Subscribe = 0x52565331,    // "RVS1" — standing subscription (un)register
  Notify = 0x52564e31,       // "RVN1" — pushed ViolationAlert / AllClear
};

/// Classifies an in-band packet by UDP port + payload tag.
std::optional<Tag> classify(const sdn::Packet& packet);

// --- client query request (sealed to the enclave) ---

sdn::Packet make_request_packet(const control::HostAddress& src,
                                const QueryRequest& request,
                                const crypto::BigUInt& rvaas_box_pub,
                                util::Rng& rng);

/// Opens a request inside the enclave; nullopt on tamper/garbage.
std::optional<QueryRequest> open_request(const sdn::Packet& packet,
                                         const enclave::Enclave& enclave);

// --- authentication request (RVaaS -> candidate endpoint, signed) ---

struct AuthRequest {
  std::uint64_t request_id = 0;
  std::uint64_t nonce = 0;
  sdn::PortRef target{};  ///< the access point being probed

  util::Bytes signing_payload() const;
};

sdn::Packet make_auth_request(const AuthRequest& req,
                              const enclave::Enclave& enclave);

/// Client-side verification against the trusted RVaaS key.
std::optional<AuthRequest> verify_auth_request(
    const sdn::Packet& packet, const crypto::VerifyKey& rvaas_key);

// --- authentication reply (endpoint -> RVaaS, signed by the client) ---

struct AuthReply {
  std::uint64_t request_id = 0;
  std::uint64_t nonce = 0;
  sdn::HostId client{};

  util::Bytes signing_payload() const;
};

sdn::Packet make_auth_reply(const control::HostAddress& src,
                            const AuthReply& reply,
                            const crypto::SigningKey& client_key);

/// Parses without verifying; the controller checks the signature against its
/// client registry (it must first learn the claimed identity).
std::optional<std::pair<AuthReply, crypto::Signature>> parse_auth_reply(
    const sdn::Packet& packet);

// --- final query reply (RVaaS -> client, signed then sealed) ---

sdn::Packet make_reply_packet(const QueryReply& reply,
                              const enclave::Enclave& enclave,
                              const crypto::BigUInt& client_box_pub,
                              util::Rng& rng);

struct OpenedReply {
  QueryReply reply;
  bool signature_ok = false;
};

std::optional<OpenedReply> open_reply(const sdn::Packet& packet,
                                      const crypto::BoxOpener& client_box,
                                      const crypto::VerifyKey& rvaas_key);

// --- subscription management (client -> RVaaS, signed then sealed) ---
// Rides the request port (the magic-header intercept already punts it to
// the controller); the provider cannot tell a subscription from a query.
// The client signature travels inside the box: (un)subscribing mutates
// controller state, so the enclave verifies it against the enrollment
// registry before acting (see SubscribeRequest in rvaas/query.hpp).

sdn::Packet make_subscribe_packet(const control::HostAddress& src,
                                  const SubscribeRequest& request,
                                  const crypto::SigningKey& client_key,
                                  const crypto::BigUInt& rvaas_box_pub,
                                  util::Rng& rng);

/// Opens a subscribe/unsubscribe inside the enclave; nullopt on
/// tamper/garbage. The signature is returned for the controller to check
/// against the claimed client's enrolled key (like parse_auth_reply, the
/// identity must be read before the right key is known).
std::optional<std::pair<SubscribeRequest, crypto::Signature>> open_subscribe(
    const sdn::Packet& packet, const enclave::Enclave& enclave);

// --- push notification (RVaaS -> client, signed then sealed) ---

sdn::Packet make_notify_packet(const Notification& notification,
                               const enclave::Enclave& enclave,
                               const crypto::BigUInt& client_box_pub,
                               util::Rng& rng);

struct OpenedNotification {
  Notification notification;
  bool signature_ok = false;
};

std::optional<OpenedNotification> open_notify(
    const sdn::Packet& packet, const crypto::BoxOpener& client_box,
    const crypto::VerifyKey& rvaas_key);

}  // namespace rvaas::core::inband
