#pragma once
// The RVaaS query interface (§IV.A of the paper): what clients can ask and
// what they get back. Queries go over the in-band channel sealed to the
// RVaaS enclave; replies come back signed by it.

#include <optional>
#include <string>
#include <vector>

#include "sdn/match.hpp"
#include "sdn/types.hpp"
#include "util/ids.hpp"

namespace rvaas::core {

/// Identity of one administrative domain (provider) in a federation.
using ProviderId = util::StrongId<struct ProviderIdTag>;

enum class QueryKind : std::uint8_t {
  ReachableEndpoints = 0,  ///< which endpoints can my traffic reach?
  ReachingSources,         ///< which sources have routes reaching me?
  Isolation,               ///< both directions: my communication closure
  Geo,                     ///< which jurisdictions can my traffic cross?
  PathLength,              ///< is my route to a peer length-optimal?
  Fairness,                ///< are my flows shaped worse than others'?
  TransferSummary,         ///< compact transfer function of my service
  PolicyCompliance,        ///< do observed inter-domain routes obey the
                           ///< declared import/export policies?
};

const char* to_string(QueryKind kind);

/// Verdict of one observed inter-domain crossing (or terminal delivery)
/// against the declared policies (multiprovider.hpp holds the policy store
/// and the walk; this is just the wire-level report vocabulary).
enum class PolicyVerdict : std::uint8_t {
  Ok = 0,              ///< crossing allowed by both sides, valley-free
  UnauthorizedOrigin,  ///< delivered traffic outside the domain's
                       ///< authorized origin prefixes (hijack indicator)
  RouteLeak,           ///< provider/peer-learned traffic exported to a
                       ///< non-customer (Gao-Rexford violation)
  UnexpectedCrossing,  ///< crossing with no declared relation, or one an
                       ///< import/export rule explicitly denies
};

const char* to_string(PolicyVerdict verdict);

/// One typed entry of a PolicyCompliance report: either an observed border
/// crossing `from -> to` (border = egress in `from`, ingress = entry port in
/// `to`) or a terminal delivery (`from == to`, border == ingress == the
/// delivering access point). `space_fingerprint` identifies the header space
/// observed at that point, so two reports over different traffic never
/// compare equal.
struct PolicyReportItem {
  PolicyVerdict verdict = PolicyVerdict::Ok;
  ProviderId from{};
  ProviderId to{};
  sdn::PortRef border;
  sdn::PortRef ingress;
  std::uint64_t space_fingerprint = 0;

  bool operator==(const PolicyReportItem&) const = default;

  void serialize(util::ByteWriter& w) const;
  static PolicyReportItem deserialize(util::ByteReader& r);
};

struct Query {
  QueryKind kind = QueryKind::ReachableEndpoints;
  /// Field-level constraint on the traffic the question is about
  /// (e.g. "only TCP to port 443"); empty = all of the client's traffic.
  sdn::Match constraint;
  /// Target peer for PathLength.
  std::optional<sdn::HostId> peer;

  void serialize(util::ByteWriter& w) const;
  static Query deserialize(util::ByteReader& r);
};

/// What a client sends (inside a sealed box).
struct QueryRequest {
  std::uint64_t request_id = 0;
  sdn::HostId client{};
  Query query;

  void serialize(util::ByteWriter& w) const;
  static QueryRequest deserialize(util::ByteReader& r);
};

/// One endpoint in a reply, with its authentication outcome.
struct EndpointInfo {
  sdn::PortRef access_point;
  /// No host is attached at this port per the wiring plan (an unsupervised
  /// egress: exfiltration indicator).
  bool dark = false;
  /// An authentication round-trip completed with a valid signature.
  bool authenticated = false;
  /// The verified identity (only when authenticated).
  std::optional<sdn::HostId> authenticated_as;

  bool operator==(const EndpointInfo&) const = default;

  void serialize(util::ByteWriter& w) const;
  static EndpointInfo deserialize(util::ByteReader& r);
};

/// "The server also forwards to the client the total number of
/// authentication requests that were made, such that it can detect cases
/// where some access points did not respond." (§IV.B.1)
struct AuthSummary {
  std::uint32_t issued = 0;
  std::uint32_t responded = 0;
};

struct FairnessMetric {
  std::string name;
  std::uint64_t value = 0;
};

struct TransferSummaryEntry {
  sdn::PortRef egress;
  std::uint32_t cube_count = 0;
};

/// How fresh the verifier's view of the evaluation's dependency footprint
/// was (the fail-stale contract): a reply over a fully healthy footprint is
/// all-zero here; any degradation is surfaced, never silently absorbed.
/// Staleness accrues only for switches the controller's health machine
/// holds in a non-Healthy state, so fault-free runs serialize identically
/// to the pre-freshness wire format modulo the appended zeros.
struct FreshnessInfo {
  /// Max ns since the controller last confirmed the state of any
  /// non-Healthy footprint switch (0 = every footprint switch Healthy).
  std::uint64_t max_staleness = 0;
  /// Footprint switches currently Unreachable (sorted ascending).
  std::vector<sdn::SwitchId> unreachable;

  /// True when this verdict rests on a view the verifier knows may be
  /// stale. Degraded verdicts are fail-stale: honest about their basis,
  /// never claimed as fresh.
  bool degraded() const { return max_staleness > 0 || !unreachable.empty(); }

  bool operator==(const FreshnessInfo&) const = default;

  void serialize(util::ByteWriter& w) const;
  static FreshnessInfo deserialize(util::ByteReader& r);
};

struct QueryReply {
  std::uint64_t request_id = 0;
  QueryKind kind = QueryKind::ReachableEndpoints;

  // Reach / sources / isolation:
  std::vector<EndpointInfo> endpoints;
  AuthSummary auth;

  // Geo:
  std::vector<std::string> jurisdictions;

  // PathLength:
  bool path_found = false;
  std::uint32_t installed_path_length = 0;
  std::uint32_t optimal_path_length = 0;

  // Fairness:
  std::vector<FairnessMetric> fairness;

  // TransferSummary:
  std::vector<TransferSummaryEntry> transfer_summary;

  /// Extra disclosures (only under the FullPaths confidentiality strawman;
  /// used by experiment E5 to quantify leakage).
  std::vector<std::string> disclosed_paths;

  // PolicyCompliance: one item per observed crossing / flagged delivery.
  std::vector<PolicyReportItem> policy_report;

  /// Freshness of the view this reply was computed from (fail-stale
  /// metadata; all-zero when the footprint was fully healthy).
  FreshnessInfo freshness;

  void serialize(util::ByteWriter& w) const;
  static QueryReply deserialize(util::ByteReader& r);
  /// Canonical byte string covered by the RVaaS signature.
  util::Bytes signing_payload() const;
};

/// Client-side policy: what the client expects of its routing service.
struct Expectation {
  /// Endpoint whitelist; empty = any authenticated endpoint is acceptable.
  std::vector<sdn::HostId> allowed_endpoints;
  /// Jurisdiction whitelist for Geo replies; empty = no geo policy.
  std::vector<std::string> allowed_jurisdictions;
  /// Require every reported endpoint to have authenticated.
  bool require_full_auth = true;
  /// Require the installed path to be length-optimal (PathLength).
  bool require_optimal_path = false;
  /// Maximum tolerated view staleness in ns for the evaluation's footprint;
  /// 0 = no bound. With a bound set, any unreachable footprint switch or a
  /// max_staleness above it flips the verdict (the client's fail-stale
  /// policy knob).
  std::uint64_t max_staleness = 0;

  bool operator==(const Expectation&) const = default;

  void serialize(util::ByteWriter& w) const;
  static Expectation deserialize(util::ByteReader& r);
};

struct Verdict {
  bool ok = true;
  std::vector<std::string> violations;
};

/// Client-side check of a (signature-verified) reply against expectations.
Verdict evaluate_reply(const QueryReply& reply, const Expectation& expect);

// --- properties and continuous verification (push model) ---

/// The normalized unit of verification: what a client wants checked (a query
/// shape) together with what it expects the answer to look like. One-shot
/// queries verify a Property once; subscriptions (rvaas/monitor.hpp) keep
/// verifying it on every configuration change. The per-kind evaluation
/// dispatch lives in exactly one place — QueryEngine::evaluate — for both.
struct Property {
  QueryKind kind = QueryKind::ReachableEndpoints;
  /// Field-level constraint on the traffic the property is about.
  sdn::Match constraint;
  /// Target peer for PathLength.
  std::optional<sdn::HostId> peer;
  /// What the client expects; violations flip the verdict.
  Expectation expect;

  bool operator==(const Property&) const = default;

  /// The query shape of this property (what the engine evaluates).
  Query query() const { return Query{kind, constraint, peer}; }
  static Property from_query(const Query& q, Expectation expect = {}) {
    return Property{q.kind, q.constraint, q.peer, std::move(expect)};
  }

  void serialize(util::ByteWriter& w) const;
  static Property deserialize(util::ByteReader& r);

  /// Stable 64-bit identity of the property (FNV-1a over the serialized
  /// form): equal properties always fingerprint equally, across processes.
  std::uint64_t fingerprint() const;
};

/// When the monitor pushes a notification for a subscribed property.
enum class NotifyPolicy : std::uint8_t {
  /// Push only when the verdict against the expectation flips (plus one
  /// baseline notification right after subscribing).
  VerdictEdges = 0,
  /// Push whenever the re-evaluated reply content changes at all (a
  /// continuous audit log; the byte-identity tests run under this policy).
  EveryChange,
};

/// What a client sends (inside a sealed box) to start or stop a standing
/// subscription. `subscription_id` is chosen by the client and scopes all
/// notifications for this property; re-subscribing under the same id
/// replaces the previous property.
///
/// Unlike a one-shot query (an idempotent read), (un)subscribing mutates
/// server-side state, so the request is SIGNED by the client's enrolled key
/// and carries a per-client monotonic `freshness` counter: the provider can
/// neither forge a subscription change (sealing uses the public enclave
/// element — anyone can seal) nor replay a recorded one to reset it.
struct SubscribeRequest {
  std::uint64_t subscription_id = 0;
  sdn::HostId client{};
  bool unsubscribe = false;
  NotifyPolicy policy = NotifyPolicy::VerdictEdges;
  Property property;  ///< ignored for unsubscribe
  /// Strictly increasing per client; the controller rejects non-advancing
  /// values (replay guard for the state-mutating channel).
  std::uint64_t freshness = 0;

  void serialize(util::ByteWriter& w) const;
  static SubscribeRequest deserialize(util::ByteReader& r);
  /// Canonical byte string covered by the client signature.
  util::Bytes signing_payload() const;
};

enum class NotificationKind : std::uint8_t {
  ViolationAlert = 0,    ///< the property's verdict is (now) violated
  AllClear,              ///< the property's verdict is (again) satisfied
  VerificationDegraded,  ///< the property's footprint touches an
                         ///< unreachable switch: verification is stale, not
                         ///< wrong — a normal push resumes on heal
};

const char* to_string(NotificationKind kind);

/// A push from RVaaS to a subscribed client: the full re-evaluated reply
/// (byte-identical to what a cold one-shot query at the same snapshot would
/// return, with request_id = subscription_id), signed by the enclave and
/// sealed to the client like any reply.
struct Notification {
  std::uint64_t subscription_id = 0;
  /// Per-subscription push counter, strictly increasing (replay guard).
  std::uint64_t sequence = 0;
  NotificationKind kind = NotificationKind::AllClear;
  /// Snapshot epoch the evaluation saw (the client can order notifications
  /// against other observations of the same provider).
  std::uint64_t epoch = 0;
  /// Property::fingerprint() of what was verified: the client pins it
  /// against its own subscription record, so a signed notification can
  /// never be mistaken for an answer to a different property.
  std::uint64_t property_fingerprint = 0;
  QueryReply reply;

  void serialize(util::ByteWriter& w) const;
  static Notification deserialize(util::ByteReader& r);
  /// Canonical byte string covered by the RVaaS signature.
  util::Bytes signing_payload() const;
};

}  // namespace rvaas::core
