#pragma once
// The RVaaS query interface (§IV.A of the paper): what clients can ask and
// what they get back. Queries go over the in-band channel sealed to the
// RVaaS enclave; replies come back signed by it.

#include <optional>
#include <string>
#include <vector>

#include "sdn/match.hpp"
#include "sdn/types.hpp"

namespace rvaas::core {

enum class QueryKind : std::uint8_t {
  ReachableEndpoints = 0,  ///< which endpoints can my traffic reach?
  ReachingSources,         ///< which sources have routes reaching me?
  Isolation,               ///< both directions: my communication closure
  Geo,                     ///< which jurisdictions can my traffic cross?
  PathLength,              ///< is my route to a peer length-optimal?
  Fairness,                ///< are my flows shaped worse than others'?
  TransferSummary,         ///< compact transfer function of my service
};

const char* to_string(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::ReachableEndpoints;
  /// Field-level constraint on the traffic the question is about
  /// (e.g. "only TCP to port 443"); empty = all of the client's traffic.
  sdn::Match constraint;
  /// Target peer for PathLength.
  std::optional<sdn::HostId> peer;

  void serialize(util::ByteWriter& w) const;
  static Query deserialize(util::ByteReader& r);
};

/// What a client sends (inside a sealed box).
struct QueryRequest {
  std::uint64_t request_id = 0;
  sdn::HostId client{};
  Query query;

  void serialize(util::ByteWriter& w) const;
  static QueryRequest deserialize(util::ByteReader& r);
};

/// One endpoint in a reply, with its authentication outcome.
struct EndpointInfo {
  sdn::PortRef access_point;
  /// No host is attached at this port per the wiring plan (an unsupervised
  /// egress: exfiltration indicator).
  bool dark = false;
  /// An authentication round-trip completed with a valid signature.
  bool authenticated = false;
  /// The verified identity (only when authenticated).
  std::optional<sdn::HostId> authenticated_as;

  void serialize(util::ByteWriter& w) const;
  static EndpointInfo deserialize(util::ByteReader& r);
};

/// "The server also forwards to the client the total number of
/// authentication requests that were made, such that it can detect cases
/// where some access points did not respond." (§IV.B.1)
struct AuthSummary {
  std::uint32_t issued = 0;
  std::uint32_t responded = 0;
};

struct FairnessMetric {
  std::string name;
  std::uint64_t value = 0;
};

struct TransferSummaryEntry {
  sdn::PortRef egress;
  std::uint32_t cube_count = 0;
};

struct QueryReply {
  std::uint64_t request_id = 0;
  QueryKind kind = QueryKind::ReachableEndpoints;

  // Reach / sources / isolation:
  std::vector<EndpointInfo> endpoints;
  AuthSummary auth;

  // Geo:
  std::vector<std::string> jurisdictions;

  // PathLength:
  bool path_found = false;
  std::uint32_t installed_path_length = 0;
  std::uint32_t optimal_path_length = 0;

  // Fairness:
  std::vector<FairnessMetric> fairness;

  // TransferSummary:
  std::vector<TransferSummaryEntry> transfer_summary;

  /// Extra disclosures (only under the FullPaths confidentiality strawman;
  /// used by experiment E5 to quantify leakage).
  std::vector<std::string> disclosed_paths;

  void serialize(util::ByteWriter& w) const;
  static QueryReply deserialize(util::ByteReader& r);
  /// Canonical byte string covered by the RVaaS signature.
  util::Bytes signing_payload() const;
};

/// Client-side policy: what the client expects of its routing service.
struct Expectation {
  /// Endpoint whitelist; empty = any authenticated endpoint is acceptable.
  std::vector<sdn::HostId> allowed_endpoints;
  /// Jurisdiction whitelist for Geo replies; empty = no geo policy.
  std::vector<std::string> allowed_jurisdictions;
  /// Require every reported endpoint to have authenticated.
  bool require_full_auth = true;
  /// Require the installed path to be length-optimal (PathLength).
  bool require_optimal_path = false;
};

struct Verdict {
  bool ok = true;
  std::vector<std::string> violations;
};

/// Client-side check of a (signature-verified) reply against expectations.
Verdict evaluate_reply(const QueryReply& reply, const Expectation& expect);

}  // namespace rvaas::core
