#include "rvaas/controller.hpp"

#include <algorithm>
#include <atomic>

#include "util/ensure.hpp"

namespace rvaas::core {

using sdn::Field;
using sdn::FlowMod;
using sdn::Match;
using sdn::PortRef;
using sdn::SwitchId;

namespace {
constexpr std::uint64_t kInterceptCookie = 0x52566161;  // "RVaa"

// TEST-ONLY fault switch (see test_fault_freeze_health).
std::atomic<bool> g_health_frozen{false};

bool health_frozen() {
  return g_health_frozen.load(std::memory_order_relaxed);
}
}  // namespace

void RvaasController::test_fault_freeze_health(bool on) {
  g_health_frozen.store(on, std::memory_order_relaxed);
}

sim::Time RvaasController::backoff_base_delay(std::uint32_t attempt,
                                              const RvaasConfig& config) {
  sim::Time delay = config.retry_backoff_base;
  for (std::uint32_t i = 0; i < attempt && delay < config.retry_backoff_cap;
       ++i) {
    delay *= 2;
  }
  return std::min(delay, config.retry_backoff_cap);
}

RvaasController::RvaasController(sdn::ControllerId id, sdn::Network& net,
                                 const enclave::AttestationService& ias,
                                 RvaasConfig config, util::Rng rng)
    : id_(id),
      net_(&net),
      ias_(&ias),
      config_(std::move(config)),
      rng_(std::move(rng)),
      enclave_(config_.enclave_name, config_.enclave_version, rng_),
      channel_key_(crypto::SigningKey::generate(rng_)),
      engine_(net.topology(),
              EngineConfig{config_.policy, config_.max_reach_depth}),
      snapshot_(config_.history_limit),
      monitor_(engine_),
      monitor_pool_(config_.monitor_threads) {}

RvaasController::~RvaasController() { stop(); }

void RvaasController::stop() {
  if (stopped_) return;
  stopped_ = true;
  sim::EventLoop& loop = net_->loop();
  loop.cancel(poll_timer_);
  loop.cancel(probe_timer_);
  loop.cancel(reverify_timer_);
  loop.cancel(sweep_event_);
  sweep_scheduled_ = false;
  for (auto& [sw, channel] : channels_) {
    if (channel.in_flight) loop.cancel(channel.deadline);
    if (channel.retry_pending) loop.cancel(channel.retry);
    channel.in_flight = false;
    channel.retry_pending = false;
  }
  for (auto& [request_id, pending] : pending_) loop.cancel(pending.timeout);
  pending_.clear();
  inflight_.clear();
}

enclave::Quote RvaasController::quote() const {
  return ias_->quote(enclave_,
                     enclave::bind_keys(enclave_.verify_key(),
                                        enclave_.box_public()));
}

void RvaasController::register_client(sdn::HostId client,
                                      crypto::VerifyKey key,
                                      crypto::BigUInt box_public) {
  clients_[client] = ClientRecord{std::move(key), std::move(box_public)};
}

void RvaasController::set_geo_provider(std::unique_ptr<GeoProvider> geo) {
  geo_ = std::move(geo);
}

void RvaasController::set_addressing(
    const control::HostAddressing* addressing) {
  addressing_ = addressing;
}

void RvaasController::bootstrap() {
  handle_ = &net_->attach_controller(*this, channel_key_);

  for (const SwitchId sw : handle_->switches()) {
    if (config_.passive_monitoring) handle_->subscribe_flow_monitor(sw);

    // Magic-header intercept: client requests and auth replies.
    FlowMod magic;
    magic.priority = 0xffff;
    magic.cookie = kInterceptCookie;
    magic.match = Match()
                      .exact(Field::EthType, sdn::kEthTypeIpv4)
                      .exact(Field::IpProto, sdn::kIpProtoUdp)
                      .exact(Field::L4Dst, sdn::kPortRvaasRequest);
    magic.actions = {sdn::to_controller()};
    handle_->flow_mod(sw, magic);

    if (config_.enable_link_prober) {
      FlowMod lldp;
      lldp.priority = 0xffff;
      lldp.cookie = kInterceptCookie;
      lldp.match = Match().exact(Field::EthType, sdn::kEthTypeLldp);
      lldp.actions = {sdn::to_controller()};
      handle_->flow_mod(sw, lldp);
    }
  }

  if (config_.polling != PollingMode::Disabled) schedule_poll();
  if (config_.enable_link_prober) schedule_probe();
  if (config_.reverify_period > 0) schedule_reverify();
}

void RvaasController::schedule_poll() {
  const sim::Time delay =
      config_.polling == PollingMode::Randomized
          ? static_cast<sim::Time>(
                rng_.exponential(static_cast<double>(config_.poll_period)))
          : config_.poll_period;
  poll_timer_ =
      net_->loop().schedule_after(std::max<sim::Time>(delay, 1), [this] {
        poll_all_switches();
        schedule_poll();
      });
}

void RvaasController::poll_all_switches() {
  for (const SwitchId sw : handle_->switches()) {
    poll_switch(sw, /*is_retry=*/false);
  }
}

void RvaasController::poll_switch(SwitchId sw, bool is_retry) {
  SwitchChannel& channel = channels_[sw];
  // One deadline-tracked poll per switch: a second request while the first
  // is outstanding would make a miss ambiguous.
  if (channel.in_flight) return;
  if (!is_retry && channel.health == SwitchHealth::Unreachable) {
    // Circuit open: regular polls skip the switch (no point queueing work
    // into a dead channel); only the capped-cadence probe retry goes out.
    ++stats_.polls_gated;
    return;
  }
  channel.in_flight = true;
  const std::uint64_t seq = ++channel.poll_seq_sent;
  const std::uint64_t gen = poll_generation_;
  const sim::Time sent = net_->loop().now();
  ++stats_.polls_sent;
  handle_->request_stats(
      sw, [this, sw, seq, gen, sent](const sdn::StatsReply& reply) {
        on_stats_reply(sw, seq, gen, sent, reply);
      });
  channel.deadline = net_->loop().schedule_after(
      config_.poll_deadline, [this, sw, seq] { on_poll_deadline(sw, seq); });
}

void RvaasController::on_stats_reply(SwitchId sw, std::uint64_t seq,
                                     std::uint64_t gen, sim::Time sent,
                                     const sdn::StatsReply& reply) {
  if (stopped_) return;
  SwitchChannel& channel = channels_[sw];
  // Liveness first: the awaited reply closes the deadline even when its
  // content must be discarded — either way the channel round-tripped.
  const bool awaited = channel.in_flight && seq == channel.poll_seq_sent;
  if (awaited) {
    net_->loop().cancel(channel.deadline);
    channel.in_flight = false;
  }

  bool adopt = true;
  if (gen != poll_generation_) {
    // Requested against a previous snapshot identity: the identity reset
    // voided every in-flight reply.
    adopt = false;
    ++stats_.stale_polls_discarded;
  } else if (seq <= channel.poll_seq_applied) {
    // Duplicate or out-of-order straggler (delay/duplication faults).
    adopt = false;
    ++stats_.stale_polls_discarded;
  } else if (snapshot_.last_confirmed(sw) > sent) {
    // The passive channel confirmed this switch after the request left: the
    // dump was captured without that event and adopting it could roll the
    // view backwards. Real under delay faults; content-neutral without.
    adopt = false;
    ++stats_.stale_polls_discarded;
  }
  if (adopt) {
    channel.poll_seq_applied = seq;
    snapshot_.reconcile(reply, net_->loop().now());
    // A poll that diverged from the passive view bumped the epoch; wake
    // the subscriptions whose footprint the adopted change touches.
    schedule_monitor_sweep();
  }
  if (awaited) on_switch_alive(sw);
}

void RvaasController::on_poll_deadline(SwitchId sw, std::uint64_t seq) {
  if (stopped_) return;
  SwitchChannel& channel = channels_[sw];
  if (!channel.in_flight || seq != channel.poll_seq_sent) return;
  channel.in_flight = false;
  ++stats_.poll_deadline_misses;
  if (!health_frozen()) {
    ++channel.consecutive_misses;
    if (channel.consecutive_misses >= config_.unreachable_after) {
      if (channel.health != SwitchHealth::Unreachable) {
        channel.health = SwitchHealth::Unreachable;
        ++stats_.unreachable_transitions;
        on_unreachable();
      }
    } else if (channel.consecutive_misses >= config_.degraded_after &&
               channel.health == SwitchHealth::Healthy) {
      channel.health = SwitchHealth::Degraded;
      ++stats_.degraded_transitions;
    }
  }
  schedule_retry(sw);
}

void RvaasController::schedule_retry(SwitchId sw) {
  SwitchChannel& channel = channels_[sw];
  if (channel.retry_pending) return;
  sim::Time delay;
  if (channel.health == SwitchHealth::Unreachable) {
    // Circuit open: probe at the fixed cap cadence, no further growth.
    delay = config_.retry_backoff_cap;
  } else {
    delay = backoff_base_delay(channel.attempt, config_);
    ++channel.attempt;
  }
  if (config_.retry_jitter_pct > 0) {
    // Additive jitter decorrelates retry bursts across switches after a
    // shared partition; drawn from the seeded rng, so still deterministic.
    const sim::Time span = delay * config_.retry_jitter_pct / 100;
    if (span > 0) delay += rng_.below(span + 1);
  }
  channel.retry_pending = true;
  channel.retry =
      net_->loop().schedule_after(std::max<sim::Time>(delay, 1), [this, sw] {
        if (stopped_) return;
        channels_[sw].retry_pending = false;
        ++stats_.poll_retries;
        poll_switch(sw, /*is_retry=*/true);
      });
}

void RvaasController::on_switch_alive(SwitchId sw) {
  SwitchChannel& channel = channels_[sw];
  channel.consecutive_misses = 0;
  channel.attempt = 0;
  if (channel.retry_pending) {
    net_->loop().cancel(channel.retry);
    channel.retry_pending = false;
  }
  if (health_frozen()) return;
  if (channel.health == SwitchHealth::Healthy) return;
  channel.health = SwitchHealth::Healthy;
  ++stats_.health_recoveries;
  // Recovery reconcile-and-reverify: the reply that brought the switch back
  // was reconciled just above; everything evaluated against the degraded
  // view is re-verified here, and subscriptions owing a degraded resume are
  // forced through commit() by their degraded_notified debt.
  run_monitor_sweep(/*force_all=*/true);
}

void RvaasController::on_unreachable() {
  for (const PropertyMonitor::DegradedPush& push :
       monitor_.mark_degraded(unreachable_switches())) {
    send_degraded_notification(push);
  }
}

RvaasController::SwitchHealth RvaasController::switch_health(
    SwitchId sw) const {
  const auto it = channels_.find(sw);
  return it == channels_.end() ? SwitchHealth::Healthy : it->second.health;
}

std::vector<SwitchId> RvaasController::unreachable_switches() const {
  std::vector<SwitchId> out;
  for (const auto& [sw, channel] : channels_) {
    if (channel.health == SwitchHealth::Unreachable) out.push_back(sw);
  }
  return out;  // channels_ is ordered: ascending
}

FreshnessInfo RvaasController::freshness_for(
    const std::vector<SwitchId>& footprint) const {
  FreshnessInfo freshness;
  const sim::Time now = net_->loop().now();
  for (const SwitchId sw : footprint) {
    const auto it = channels_.find(sw);
    if (it == channels_.end() || it->second.health == SwitchHealth::Healthy) {
      continue;  // staleness accrues only for non-Healthy switches
    }
    if (it->second.health == SwitchHealth::Unreachable) {
      freshness.unreachable.push_back(sw);  // footprint sorted -> sorted
    }
    const sim::Time confirmed = snapshot_.last_confirmed(sw);
    // Never confirmed and already non-Healthy: stale since time zero.
    const std::uint64_t staleness = confirmed == 0 ? now : now - confirmed;
    freshness.max_staleness = std::max(freshness.max_staleness, staleness);
  }
  return freshness;
}

void RvaasController::schedule_reverify() {
  reverify_timer_ = net_->loop().schedule_after(config_.reverify_period, [this] {
    // Full sweep: catches drift the change clock cannot see (meter
    // updates, endpoints that stopped answering authentication).
    run_monitor_sweep(/*force_all=*/true);
    schedule_reverify();
  });
}

void RvaasController::schedule_probe() {
  probe_timer_ = net_->loop().schedule_after(config_.probe_period, [this] {
    probe_all_links();
    schedule_probe();
  });
}

void RvaasController::probe_all_links() {
  for (const SwitchId sw : handle_->switches()) {
    for (const PortRef port : net_->topology().internal_ports(sw)) {
      ++stats_.probes_sent;
      ++stats_.crypto_ops;  // probe signature
      ProbeInfo info{port, rng_.next_u64()};
      sdn::PacketOut out;
      out.sw = sw;
      out.actions = {sdn::output(port.port)};
      out.packet = make_probe(info, enclave_);
      handle_->packet_out(out);
    }
  }
}

void RvaasController::on_flow_update(const sdn::FlowUpdate& msg) {
  snapshot_.apply_update(msg, net_->loop().now());
  schedule_monitor_sweep();
}

void RvaasController::on_packet_in(const sdn::PacketIn& msg) {
  if (config_.enable_link_prober && is_probe(msg.packet)) {
    ++stats_.crypto_ops;  // probe verification
    if (const auto info = verify_probe(msg.packet, enclave_.verify_key())) {
      if (const auto alarm =
              check_probe(net_->topology(), *info,
                          PortRef{msg.sw, msg.in_port}, net_->loop().now())) {
        wiring_alarms_.push_back(*alarm);
      }
    }
    return;
  }

  const auto tag = inband::classify(msg.packet);
  if (!tag) return;
  switch (*tag) {
    case inband::Tag::Request:
      handle_request(msg);
      return;
    case inband::Tag::Subscribe:
      handle_subscribe(msg);
      return;
    case inband::Tag::AuthReply:
      handle_auth_reply(msg);
      return;
    default:
      return;  // auth requests / replies to clients are not ours to consume
  }
}

void RvaasController::handle_request(const sdn::PacketIn& msg) {
  ++stats_.queries_received;
  ++stats_.crypto_ops;  // unseal
  const auto request = inband::open_request(msg.packet, enclave_);
  if (!request) {
    ++stats_.bad_requests;
    return;
  }
  admit_request(*request, PortRef{msg.sw, msg.in_port});
}

void RvaasController::wire_request(const QueryRequest& request,
                                   sdn::PortRef request_point) {
  // The sealed envelope was already opened on a front-end I/O thread; from
  // here the path is byte-for-byte the in-band one.
  ++stats_.queries_received;
  ++stats_.crypto_ops;  // unseal, done on the I/O thread
  admit_request(request, request_point);
}

void RvaasController::admit_request(const QueryRequest& request,
                                    sdn::PortRef request_point) {
  if (pending_.contains(request.request_id)) {
    ++stats_.bad_requests;
    return;
  }
  const auto client_it = clients_.find(request.client);
  if (client_it == clients_.end()) {
    ++stats_.bad_requests;
    return;
  }

  PendingQuery pending;
  pending.request = request;
  pending.request_point = request_point;

  // Logical verification on the current snapshot, through the single
  // per-kind dispatch (QueryEngine::evaluate) shared with the batch,
  // federation and monitor paths. The footprint is kept: finalize() stamps
  // the reply's freshness section over exactly those switches.
  const hsa::NetworkModel model = engine_.model(snapshot_);
  QueryEngine::EvalContext ctx;
  ctx.from = pending.request_point;
  ctx.geo = geo_.get();
  ctx.addressing = addressing_;
  QueryEngine::Evaluation evaluation = engine_.evaluate(
      model, snapshot_, Property::from_query(request.query), ctx);
  pending.reply = std::move(evaluation.reply);
  pending.reply.request_id = request.request_id;
  pending.footprint = std::move(evaluation.footprint);

  track_pending(std::move(pending), evaluation.to_authenticate);
}

void RvaasController::handle_subscribe(const sdn::PacketIn& msg) {
  ++stats_.crypto_ops;  // unseal
  const auto opened = inband::open_subscribe(msg.packet, enclave_);
  if (!opened) {
    ++stats_.bad_requests;
    return;
  }
  const auto& [request, signature] = *opened;
  const auto client_it = clients_.find(request.client);
  if (client_it == clients_.end()) {
    ++stats_.bad_requests;
    return;
  }
  // (Un)subscribing mutates controller state, so unlike a query it must be
  // authentic AND fresh: anyone can seal to the public enclave element, and
  // a replayed Subscribe would reset the notification sequence, silencing
  // the client's replay guard against future alerts.
  ++stats_.crypto_ops;  // signature verification
  if (!client_it->second.key.verify(request.signing_payload(), signature)) {
    ++stats_.bad_requests;
    return;
  }
  admit_subscribe(request, PortRef{msg.sw, msg.in_port});
}

void RvaasController::wire_subscribe(const SubscribeRequest& request,
                                     sdn::PortRef request_point) {
  // Opened and signature-verified on a front-end I/O thread against the
  // enrolled key; the freshness replay guard still runs here, serialized on
  // the controller thread, where the clock it mutates lives.
  stats_.crypto_ops += 2;  // unseal + verify, done on the I/O thread
  admit_subscribe(request, request_point);
}

void RvaasController::admit_subscribe(const SubscribeRequest& request,
                                      sdn::PortRef request_point) {
  if (!clients_.contains(request.client)) {
    ++stats_.bad_requests;
    return;
  }
  auto& last_freshness = subscribe_freshness_[request.client];
  if (request.freshness <= last_freshness) {
    ++stats_.bad_requests;  // replayed or reordered
    return;
  }
  last_freshness = request.freshness;

  if (request.unsubscribe) {
    ++stats_.unsubscribes_received;
    const PropertyMonitor::Key key{request.client, request.subscription_id};
    if (!monitor_.unsubscribe(key.first, key.second)) {
      ++stats_.bad_requests;
      return;
    }
    // Drop an evaluation still waiting on authentication, if any.
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      if (const auto pit = pending_.find(it->second); pit != pending_.end()) {
        net_->loop().cancel(pit->second.timeout);
        pending_.erase(pit);
      }
      inflight_.erase(it);
    }
    return;
  }

  // A subscription the engine cannot evaluate must be rejected up front: a
  // stored Geo property without a geo provider would throw inside every
  // subsequent sweep (a persistent crash, not a one-shot bad request).
  if (request.property.kind == QueryKind::Geo && geo_ == nullptr) {
    ++stats_.bad_requests;
    return;
  }
  // Per-client cap: active_for() is an O(1) count lookup, so the subscribe
  // path stays flat as the registry grows toward millions of entries.
  const bool replacing =
      monitor_.find(request.client, request.subscription_id) != nullptr;
  if (!replacing && monitor_.active_for(request.client) >=
                        config_.max_subscriptions_per_client) {
    ++stats_.bad_requests;
    return;
  }
  ++stats_.subscribes_received;

  PropertyMonitor::Subscription sub;
  sub.id = request.subscription_id;
  sub.client = request.client;
  sub.request_point = request_point;
  sub.property = request.property;
  sub.policy = request.policy;
  monitor_.subscribe(std::move(sub));

  // The next sweep evaluates the newcomer and pushes its baseline
  // notification (the subscribe acknowledgement).
  schedule_monitor_sweep();
}

void RvaasController::track_pending(PendingQuery pending,
                                    std::span<const PortRef> targets) {
  pending.expected.reserve(targets.size());
  pending.nonces.reserve(targets.size());
  for (const PortRef ap : targets) {
    pending.expected[ap] = std::nullopt;
  }

  const std::uint64_t request_id =
      pending.subscription ? next_eval_id_++ : pending.request.request_id;
  if (pending.subscription) {
    inflight_[*pending.subscription] = request_id;
  }
  auto [it, inserted] = pending_.emplace(request_id, std::move(pending));
  util::ensure(inserted, "duplicate pending query");

  if (it->second.expected.empty()) {
    finalize(request_id);
    return;
  }
  dispatch_auth_requests(it->second, request_id, targets);
  it->second.timeout = net_->loop().schedule_after(
      config_.auth_timeout, [this, request_id] { finalize(request_id); });
}

void RvaasController::dispatch_auth_requests(
    PendingQuery& pending, std::uint64_t request_id,
    std::span<const PortRef> targets) {
  // Driven off the ordered target list, not the (unordered) expected map,
  // so the probe order — and with it the simulation schedule — stays
  // deterministic. `request_id` is the pending_ key (an internal id for
  // subscription wakeups), which auth replies echo back.
  for (const PortRef ap : targets) {
    inband::AuthRequest req;
    req.request_id = request_id;
    req.nonce = rng_.next_u64();
    req.target = ap;
    pending.nonces[req.nonce] = ap;

    ++stats_.auth_requests_sent;
    ++stats_.crypto_ops;  // signature
    // A wire session owning this access point answers over its socket; the
    // transport signs the request with the enclave key on an I/O thread.
    if (wire_ && wire_->deliver_auth_request(ap, req)) continue;
    sdn::PacketOut out;
    out.sw = ap.sw;
    out.actions = {sdn::output(ap.port)};
    out.packet = make_auth_request(req, enclave_);
    handle_->packet_out(out);
  }
  pending.reply.auth.issued =
      static_cast<std::uint32_t>(pending.expected.size());
}

void RvaasController::handle_auth_reply(const sdn::PacketIn& msg) {
  const auto parsed = inband::parse_auth_reply(msg.packet);
  if (!parsed) return;
  const auto& [reply, signature] = *parsed;
  admit_auth_reply(reply, &signature, PortRef{msg.sw, msg.in_port});
}

void RvaasController::wire_auth_reply(const inband::AuthReply& reply,
                                      sdn::PortRef from) {
  // Signature already verified on an I/O thread against reply.client's
  // enrolled key; `from` is the session's pinned access point, so the
  // location check below still binds the reply to the probed port.
  ++stats_.crypto_ops;  // signature verification, done on the I/O thread
  admit_auth_reply(reply, nullptr, from);
}

void RvaasController::admit_auth_reply(const inband::AuthReply& reply,
                                       const crypto::Signature* signature,
                                       PortRef from) {
  const auto pending_it = pending_.find(reply.request_id);
  if (pending_it == pending_.end()) return;
  PendingQuery& pending = pending_it->second;

  // The nonce must match one we issued, and the reply must arrive from the
  // probed access point (the packet-in tells us where it entered).
  const auto nonce_it = pending.nonces.find(reply.nonce);
  if (nonce_it == pending.nonces.end()) return;
  const PortRef expected_ap = nonce_it->second;
  if (from != expected_ap) return;

  const auto client_it = clients_.find(reply.client);
  if (signature != nullptr) {
    ++stats_.crypto_ops;  // signature verification
    if (client_it == clients_.end() ||
        !client_it->second.key.verify(reply.signing_payload(), *signature)) {
      ++stats_.auth_replies_bad;
      return;
    }
  } else if (client_it == clients_.end()) {
    ++stats_.auth_replies_bad;
    return;
  }
  ++stats_.auth_replies_ok;

  auto expected_it = pending.expected.find(expected_ap);
  if (expected_it != pending.expected.end() && !expected_it->second) {
    expected_it->second = reply.client;
    // All answered? Finalize early.
    bool all = true;
    for (const auto& [_, who] : pending.expected) all = all && who.has_value();
    if (all) {
      net_->loop().cancel(pending.timeout);
      finalize(reply.request_id);
    }
  }
}

void RvaasController::finalize(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingQuery& pending = it->second;

  std::uint32_t responded = 0;
  for (EndpointInfo& endpoint : pending.reply.endpoints) {
    const auto expected_it = pending.expected.find(endpoint.access_point);
    if (expected_it == pending.expected.end()) continue;
    if (expected_it->second) {
      endpoint.authenticated = true;
      endpoint.authenticated_as = expected_it->second;
      ++responded;
    }
  }
  pending.reply.auth.responded = responded;
  // Fail-stale: every outgoing verdict carries the freshness of the view it
  // was computed from, restricted to its own dependency footprint. All-zero
  // over a healthy footprint — fault-free replies are byte-identical to the
  // pre-freshness format modulo the appended zeros.
  pending.reply.freshness = freshness_for(pending.footprint);

  if (pending.subscription) {
    inflight_.erase(*pending.subscription);
    const PropertyMonitor::Decision decision =
        monitor_.commit(*pending.subscription, pending.reply);
    if (decision.push != PropertyMonitor::Push::None) {
      send_notification(pending, decision);
    }
    pending_.erase(it);
    return;
  }

  send_reply(pending);
  pending_.erase(it);
}

void RvaasController::send_notification(
    const PendingQuery& pending, const PropertyMonitor::Decision& decision) {
  const auto client_it = clients_.find(pending.request.client);
  if (client_it == clients_.end()) return;

  Notification notification;
  notification.subscription_id = pending.subscription->second;
  notification.sequence = decision.sequence;
  notification.kind = decision.push == PropertyMonitor::Push::ViolationAlert
                          ? NotificationKind::ViolationAlert
                          : NotificationKind::AllClear;
  notification.epoch = pending.evaluated_epoch;
  notification.property_fingerprint = pending.property_fingerprint;
  notification.reply = pending.reply;

  stats_.crypto_ops += 2;  // sign + seal (by the transport if wire-attached)
  ++stats_.notifications_sent;
  if (wire_ &&
      wire_->deliver_notification(pending.request.client, notification)) {
    return;
  }
  sdn::PacketOut out;
  out.sw = pending.request_point.sw;
  out.actions = {sdn::output(pending.request_point.port)};
  out.packet = inband::make_notify_packet(
      notification, enclave_, client_it->second.box_public, rng_);
  handle_->packet_out(out);
}

void RvaasController::send_degraded_notification(
    const PropertyMonitor::DegradedPush& push) {
  const auto client_it = clients_.find(push.key.first);
  if (client_it == clients_.end()) return;

  // No evaluation attached — the point of this push is that a fresh one is
  // impossible right now. The reply shell carries only the property kind
  // and the (decidedly non-zero) freshness of the stored footprint.
  Notification notification;
  notification.subscription_id = push.key.second;
  notification.sequence = push.sequence;
  notification.kind = NotificationKind::VerificationDegraded;
  notification.epoch = push.evaluated_epoch;
  notification.property_fingerprint = push.property_fingerprint;
  notification.reply.request_id = push.key.second;
  notification.reply.kind = push.kind;
  if (const PropertyMonitor::Subscription* sub =
          monitor_.find(push.key.first, push.key.second)) {
    notification.reply.freshness = freshness_for(sub->footprint);
  }

  stats_.crypto_ops += 2;  // sign + seal (by the transport if wire-attached)
  ++stats_.degraded_notifications;
  ++stats_.notifications_sent;
  if (wire_ && wire_->deliver_notification(push.key.first, notification)) {
    return;
  }
  sdn::PacketOut out;
  out.sw = push.request_point.sw;
  out.actions = {sdn::output(push.request_point.port)};
  out.packet = inband::make_notify_packet(
      notification, enclave_, client_it->second.box_public, rng_);
  handle_->packet_out(out);
}

void RvaasController::schedule_monitor_sweep() {
  // Runs on every flow update and adopted poll diff, so both checks must be
  // O(1): has_unevaluated() is a set-emptiness test, never a registry scan.
  if (monitor_.active() == 0 || sweep_scheduled_) return;
  if (snapshot_.epoch() == last_swept_epoch_ && !monitor_.has_unevaluated()) {
    return;
  }
  sweep_scheduled_ = true;
  // Deferred to the next event at the same instant: a burst of flow
  // updates (or a poll adopting many diffs) coalesces into one sweep.
  sweep_event_ = net_->loop().schedule_after(0, [this] {
    sweep_scheduled_ = false;
    run_monitor_sweep(/*force_all=*/false);
  });
}

void RvaasController::run_monitor_sweep(bool force_all) {
  if (monitor_.active() == 0) return;
  ++stats_.monitor_sweeps;
  last_swept_epoch_ = snapshot_.epoch();

  QueryEngine::EvalContext ctx;
  ctx.geo = geo_.get();
  ctx.addressing = addressing_;
  std::vector<PropertyMonitor::Wakeup> wakeups =
      monitor_.sweep(snapshot_, ctx, monitor_pool_, force_all);

  for (PropertyMonitor::Wakeup& w : wakeups) {
    // A newer evaluation supersedes one still waiting on authentication.
    if (const auto it = inflight_.find(w.key); it != inflight_.end()) {
      if (const auto pit = pending_.find(it->second); pit != pending_.end()) {
        net_->loop().cancel(pit->second.timeout);
        pending_.erase(pit);
      }
      inflight_.erase(it);
    }

    PendingQuery pending;
    pending.request.client = w.key.first;
    pending.request_point = w.request_point;
    pending.reply = std::move(w.evaluation.reply);
    pending.subscription = w.key;
    pending.evaluated_epoch = w.epoch;
    pending.property_fingerprint = w.property_fingerprint;
    // The evaluation's footprint was moved into the registry by sweep();
    // read it back for the freshness stamp in finalize().
    if (const PropertyMonitor::Subscription* sub =
            monitor_.find(w.key.first, w.key.second)) {
      pending.footprint = sub->footprint;
    }
    track_pending(std::move(pending), w.evaluation.to_authenticate);
  }
}

std::size_t RvaasController::evict_client(sdn::HostId client) {
  std::size_t dropped = 0;
  for (const std::uint64_t sub_id : monitor_.ids_of(client)) {
    if (!monitor_.unsubscribe(client, sub_id)) continue;
    ++dropped;
    const PropertyMonitor::Key key{client, sub_id};
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      if (const auto pit = pending_.find(it->second); pit != pending_.end()) {
        net_->loop().cancel(pit->second.timeout);
        pending_.erase(pit);
      }
      inflight_.erase(it);
    }
  }
  // One-shot queries still waiting on authentication: the reply would go to
  // a socket that no longer exists, so drop them rather than finalize into
  // the fallback packet path.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!it->second.subscription && it->second.request.client == client) {
      net_->loop().cancel(it->second.timeout);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // Reset the replay clock: a reconnecting session restarts its freshness
  // counter, and holding the old high-water mark would lock it out. The
  // tradeoff (a captured Subscribe from the previous session becomes
  // replayable) is void because eviction also dropped every subscription
  // that replay could affect.
  subscribe_freshness_.erase(client);
  return dropped;
}

void RvaasController::send_reply(const PendingQuery& pending) {
  const auto client_it = clients_.find(pending.request.client);
  if (client_it == clients_.end()) return;

  stats_.crypto_ops += 2;  // sign + seal (by the transport if wire-attached)
  ++stats_.replies_sent;
  if (wire_ && wire_->deliver_reply(pending.request.client, pending.reply)) {
    return;
  }
  sdn::PacketOut out;
  out.sw = pending.request_point.sw;
  out.actions = {sdn::output(pending.request_point.port)};
  out.packet = inband::make_reply_packet(
      pending.reply, enclave_, client_it->second.box_public, rng_);
  handle_->packet_out(out);
}

}  // namespace rvaas::core
