#include "rvaas/controller.hpp"

#include "util/ensure.hpp"

namespace rvaas::core {

using sdn::Field;
using sdn::FlowMod;
using sdn::Match;
using sdn::PortRef;
using sdn::SwitchId;

namespace {
constexpr std::uint64_t kInterceptCookie = 0x52566161;  // "RVaa"
}

RvaasController::RvaasController(sdn::ControllerId id, sdn::Network& net,
                                 const enclave::AttestationService& ias,
                                 RvaasConfig config, util::Rng rng)
    : id_(id),
      net_(&net),
      ias_(&ias),
      config_(std::move(config)),
      rng_(std::move(rng)),
      enclave_(config_.enclave_name, config_.enclave_version, rng_),
      channel_key_(crypto::SigningKey::generate(rng_)),
      engine_(net.topology(),
              EngineConfig{config_.policy, config_.max_reach_depth}),
      snapshot_(config_.history_limit) {}

enclave::Quote RvaasController::quote() const {
  return ias_->quote(enclave_,
                     enclave::bind_keys(enclave_.verify_key(),
                                        enclave_.box_public()));
}

void RvaasController::register_client(sdn::HostId client,
                                      crypto::VerifyKey key,
                                      crypto::BigUInt box_public) {
  clients_[client] = ClientRecord{std::move(key), std::move(box_public)};
}

void RvaasController::set_geo_provider(std::unique_ptr<GeoProvider> geo) {
  geo_ = std::move(geo);
}

void RvaasController::set_addressing(
    const control::HostAddressing* addressing) {
  addressing_ = addressing;
}

void RvaasController::bootstrap() {
  handle_ = &net_->attach_controller(*this, channel_key_);

  for (const SwitchId sw : handle_->switches()) {
    if (config_.passive_monitoring) handle_->subscribe_flow_monitor(sw);

    // Magic-header intercept: client requests and auth replies.
    FlowMod magic;
    magic.priority = 0xffff;
    magic.cookie = kInterceptCookie;
    magic.match = Match()
                      .exact(Field::EthType, sdn::kEthTypeIpv4)
                      .exact(Field::IpProto, sdn::kIpProtoUdp)
                      .exact(Field::L4Dst, sdn::kPortRvaasRequest);
    magic.actions = {sdn::to_controller()};
    handle_->flow_mod(sw, magic);

    if (config_.enable_link_prober) {
      FlowMod lldp;
      lldp.priority = 0xffff;
      lldp.cookie = kInterceptCookie;
      lldp.match = Match().exact(Field::EthType, sdn::kEthTypeLldp);
      lldp.actions = {sdn::to_controller()};
      handle_->flow_mod(sw, lldp);
    }
  }

  if (config_.polling != PollingMode::Disabled) schedule_poll();
  if (config_.enable_link_prober) schedule_probe();
}

void RvaasController::schedule_poll() {
  const sim::Time delay =
      config_.polling == PollingMode::Randomized
          ? static_cast<sim::Time>(
                rng_.exponential(static_cast<double>(config_.poll_period)))
          : config_.poll_period;
  net_->loop().schedule_after(std::max<sim::Time>(delay, 1), [this] {
    poll_all_switches();
    schedule_poll();
  });
}

void RvaasController::poll_all_switches() {
  for (const SwitchId sw : handle_->switches()) {
    ++stats_.polls_sent;
    handle_->request_stats(sw, [this](const sdn::StatsReply& reply) {
      snapshot_.reconcile(reply, net_->loop().now());
    });
  }
}

void RvaasController::schedule_probe() {
  net_->loop().schedule_after(config_.probe_period, [this] {
    probe_all_links();
    schedule_probe();
  });
}

void RvaasController::probe_all_links() {
  for (const SwitchId sw : handle_->switches()) {
    for (const PortRef port : net_->topology().internal_ports(sw)) {
      ++stats_.probes_sent;
      ++stats_.crypto_ops;  // probe signature
      ProbeInfo info{port, rng_.next_u64()};
      sdn::PacketOut out;
      out.sw = sw;
      out.actions = {sdn::output(port.port)};
      out.packet = make_probe(info, enclave_);
      handle_->packet_out(out);
    }
  }
}

void RvaasController::on_flow_update(const sdn::FlowUpdate& msg) {
  snapshot_.apply_update(msg, net_->loop().now());
}

void RvaasController::on_packet_in(const sdn::PacketIn& msg) {
  if (config_.enable_link_prober && is_probe(msg.packet)) {
    ++stats_.crypto_ops;  // probe verification
    if (const auto info = verify_probe(msg.packet, enclave_.verify_key())) {
      if (const auto alarm =
              check_probe(net_->topology(), *info,
                          PortRef{msg.sw, msg.in_port}, net_->loop().now())) {
        wiring_alarms_.push_back(*alarm);
      }
    }
    return;
  }

  const auto tag = inband::classify(msg.packet);
  if (!tag) return;
  switch (*tag) {
    case inband::Tag::Request:
      handle_request(msg);
      return;
    case inband::Tag::AuthReply:
      handle_auth_reply(msg);
      return;
    default:
      return;  // auth requests / replies to clients are not ours to consume
  }
}

void RvaasController::handle_request(const sdn::PacketIn& msg) {
  ++stats_.queries_received;
  ++stats_.crypto_ops;  // unseal
  const auto request = inband::open_request(msg.packet, enclave_);
  if (!request || pending_.contains(request->request_id)) {
    ++stats_.bad_requests;
    return;
  }
  const auto client_it = clients_.find(request->client);
  if (client_it == clients_.end()) {
    ++stats_.bad_requests;
    return;
  }

  PendingQuery pending;
  pending.request = *request;
  pending.request_point = PortRef{msg.sw, msg.in_port};

  // Logical verification on the current snapshot. QueryEngine::answer is the
  // single dispatch for the logical step, shared with the batch path.
  const hsa::NetworkModel model = engine_.model(snapshot_);
  QueryEngine::BatchContext ctx;
  ctx.from = pending.request_point;
  ctx.geo = geo_.get();
  ctx.addressing = addressing_;
  QueryEngine::Answer answer =
      engine_.answer(model, snapshot_, request->query, ctx);
  pending.reply = std::move(answer.reply);
  pending.reply.request_id = request->request_id;
  for (const PortRef ap : answer.to_authenticate) {
    pending.expected[ap] = std::nullopt;
  }

  const std::uint64_t request_id = request->request_id;
  auto [it, inserted] = pending_.emplace(request_id, std::move(pending));
  util::ensure(inserted, "duplicate pending query");

  if (it->second.expected.empty()) {
    finalize(request_id);
    return;
  }
  dispatch_auth_requests(it->second);
  it->second.timeout = net_->loop().schedule_after(
      config_.auth_timeout, [this, request_id] { finalize(request_id); });
}

void RvaasController::dispatch_auth_requests(PendingQuery& pending) {
  for (const auto& [ap, _] : pending.expected) {
    inband::AuthRequest req;
    req.request_id = pending.request.request_id;
    req.nonce = rng_.next_u64();
    req.target = ap;
    pending.nonces[req.nonce] = ap;

    ++stats_.auth_requests_sent;
    ++stats_.crypto_ops;  // signature
    sdn::PacketOut out;
    out.sw = ap.sw;
    out.actions = {sdn::output(ap.port)};
    out.packet = make_auth_request(req, enclave_);
    handle_->packet_out(out);
  }
  pending.reply.auth.issued =
      static_cast<std::uint32_t>(pending.expected.size());
}

void RvaasController::handle_auth_reply(const sdn::PacketIn& msg) {
  const auto parsed = inband::parse_auth_reply(msg.packet);
  if (!parsed) return;
  const auto& [reply, signature] = *parsed;

  const auto pending_it = pending_.find(reply.request_id);
  if (pending_it == pending_.end()) return;
  PendingQuery& pending = pending_it->second;

  // The nonce must match one we issued, and the reply must arrive from the
  // probed access point (the packet-in tells us where it entered).
  const auto nonce_it = pending.nonces.find(reply.nonce);
  if (nonce_it == pending.nonces.end()) return;
  const PortRef expected_ap = nonce_it->second;
  if (PortRef{msg.sw, msg.in_port} != expected_ap) return;

  const auto client_it = clients_.find(reply.client);
  ++stats_.crypto_ops;  // signature verification
  if (client_it == clients_.end() ||
      !client_it->second.key.verify(reply.signing_payload(), signature)) {
    ++stats_.auth_replies_bad;
    return;
  }
  ++stats_.auth_replies_ok;

  auto expected_it = pending.expected.find(expected_ap);
  if (expected_it != pending.expected.end() && !expected_it->second) {
    expected_it->second = reply.client;
    // All answered? Finalize early.
    bool all = true;
    for (const auto& [_, who] : pending.expected) all = all && who.has_value();
    if (all) {
      net_->loop().cancel(pending.timeout);
      finalize(reply.request_id);
    }
  }
}

void RvaasController::finalize(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingQuery& pending = it->second;

  std::uint32_t responded = 0;
  for (EndpointInfo& endpoint : pending.reply.endpoints) {
    const auto expected_it = pending.expected.find(endpoint.access_point);
    if (expected_it == pending.expected.end()) continue;
    if (expected_it->second) {
      endpoint.authenticated = true;
      endpoint.authenticated_as = expected_it->second;
      ++responded;
    }
  }
  pending.reply.auth.responded = responded;

  send_reply(pending);
  pending_.erase(it);
}

void RvaasController::send_reply(const PendingQuery& pending) {
  const auto client_it = clients_.find(pending.request.client);
  if (client_it == clients_.end()) return;

  stats_.crypto_ops += 2;  // sign + seal
  ++stats_.replies_sent;
  sdn::PacketOut out;
  out.sw = pending.request_point.sw;
  out.actions = {sdn::output(pending.request_point.port)};
  out.packet = inband::make_reply_packet(
      pending.reply, enclave_, client_it->second.box_public, rng_);
  handle_->packet_out(out);
}

}  // namespace rvaas::core
