#include "rvaas/controller.hpp"

#include "util/ensure.hpp"

namespace rvaas::core {

using sdn::Field;
using sdn::FlowMod;
using sdn::Match;
using sdn::PortRef;
using sdn::SwitchId;

namespace {
constexpr std::uint64_t kInterceptCookie = 0x52566161;  // "RVaa"
}

RvaasController::RvaasController(sdn::ControllerId id, sdn::Network& net,
                                 const enclave::AttestationService& ias,
                                 RvaasConfig config, util::Rng rng)
    : id_(id),
      net_(&net),
      ias_(&ias),
      config_(std::move(config)),
      rng_(std::move(rng)),
      enclave_(config_.enclave_name, config_.enclave_version, rng_),
      channel_key_(crypto::SigningKey::generate(rng_)),
      engine_(net.topology(),
              EngineConfig{config_.policy, config_.max_reach_depth}),
      snapshot_(config_.history_limit),
      monitor_(engine_),
      monitor_pool_(config_.monitor_threads) {}

enclave::Quote RvaasController::quote() const {
  return ias_->quote(enclave_,
                     enclave::bind_keys(enclave_.verify_key(),
                                        enclave_.box_public()));
}

void RvaasController::register_client(sdn::HostId client,
                                      crypto::VerifyKey key,
                                      crypto::BigUInt box_public) {
  clients_[client] = ClientRecord{std::move(key), std::move(box_public)};
}

void RvaasController::set_geo_provider(std::unique_ptr<GeoProvider> geo) {
  geo_ = std::move(geo);
}

void RvaasController::set_addressing(
    const control::HostAddressing* addressing) {
  addressing_ = addressing;
}

void RvaasController::bootstrap() {
  handle_ = &net_->attach_controller(*this, channel_key_);

  for (const SwitchId sw : handle_->switches()) {
    if (config_.passive_monitoring) handle_->subscribe_flow_monitor(sw);

    // Magic-header intercept: client requests and auth replies.
    FlowMod magic;
    magic.priority = 0xffff;
    magic.cookie = kInterceptCookie;
    magic.match = Match()
                      .exact(Field::EthType, sdn::kEthTypeIpv4)
                      .exact(Field::IpProto, sdn::kIpProtoUdp)
                      .exact(Field::L4Dst, sdn::kPortRvaasRequest);
    magic.actions = {sdn::to_controller()};
    handle_->flow_mod(sw, magic);

    if (config_.enable_link_prober) {
      FlowMod lldp;
      lldp.priority = 0xffff;
      lldp.cookie = kInterceptCookie;
      lldp.match = Match().exact(Field::EthType, sdn::kEthTypeLldp);
      lldp.actions = {sdn::to_controller()};
      handle_->flow_mod(sw, lldp);
    }
  }

  if (config_.polling != PollingMode::Disabled) schedule_poll();
  if (config_.enable_link_prober) schedule_probe();
  if (config_.reverify_period > 0) schedule_reverify();
}

void RvaasController::schedule_poll() {
  const sim::Time delay =
      config_.polling == PollingMode::Randomized
          ? static_cast<sim::Time>(
                rng_.exponential(static_cast<double>(config_.poll_period)))
          : config_.poll_period;
  net_->loop().schedule_after(std::max<sim::Time>(delay, 1), [this] {
    poll_all_switches();
    schedule_poll();
  });
}

void RvaasController::poll_all_switches() {
  for (const SwitchId sw : handle_->switches()) {
    ++stats_.polls_sent;
    handle_->request_stats(sw, [this](const sdn::StatsReply& reply) {
      snapshot_.reconcile(reply, net_->loop().now());
      // A poll that diverged from the passive view bumped the epoch; wake
      // the subscriptions whose footprint the adopted change touches.
      schedule_monitor_sweep();
    });
  }
}

void RvaasController::schedule_reverify() {
  net_->loop().schedule_after(config_.reverify_period, [this] {
    // Full sweep: catches drift the change clock cannot see (meter
    // updates, endpoints that stopped answering authentication).
    run_monitor_sweep(/*force_all=*/true);
    schedule_reverify();
  });
}

void RvaasController::schedule_probe() {
  net_->loop().schedule_after(config_.probe_period, [this] {
    probe_all_links();
    schedule_probe();
  });
}

void RvaasController::probe_all_links() {
  for (const SwitchId sw : handle_->switches()) {
    for (const PortRef port : net_->topology().internal_ports(sw)) {
      ++stats_.probes_sent;
      ++stats_.crypto_ops;  // probe signature
      ProbeInfo info{port, rng_.next_u64()};
      sdn::PacketOut out;
      out.sw = sw;
      out.actions = {sdn::output(port.port)};
      out.packet = make_probe(info, enclave_);
      handle_->packet_out(out);
    }
  }
}

void RvaasController::on_flow_update(const sdn::FlowUpdate& msg) {
  snapshot_.apply_update(msg, net_->loop().now());
  schedule_monitor_sweep();
}

void RvaasController::on_packet_in(const sdn::PacketIn& msg) {
  if (config_.enable_link_prober && is_probe(msg.packet)) {
    ++stats_.crypto_ops;  // probe verification
    if (const auto info = verify_probe(msg.packet, enclave_.verify_key())) {
      if (const auto alarm =
              check_probe(net_->topology(), *info,
                          PortRef{msg.sw, msg.in_port}, net_->loop().now())) {
        wiring_alarms_.push_back(*alarm);
      }
    }
    return;
  }

  const auto tag = inband::classify(msg.packet);
  if (!tag) return;
  switch (*tag) {
    case inband::Tag::Request:
      handle_request(msg);
      return;
    case inband::Tag::Subscribe:
      handle_subscribe(msg);
      return;
    case inband::Tag::AuthReply:
      handle_auth_reply(msg);
      return;
    default:
      return;  // auth requests / replies to clients are not ours to consume
  }
}

void RvaasController::handle_request(const sdn::PacketIn& msg) {
  ++stats_.queries_received;
  ++stats_.crypto_ops;  // unseal
  const auto request = inband::open_request(msg.packet, enclave_);
  if (!request || pending_.contains(request->request_id)) {
    ++stats_.bad_requests;
    return;
  }
  const auto client_it = clients_.find(request->client);
  if (client_it == clients_.end()) {
    ++stats_.bad_requests;
    return;
  }

  PendingQuery pending;
  pending.request = *request;
  pending.request_point = PortRef{msg.sw, msg.in_port};

  // Logical verification on the current snapshot, through the single
  // per-kind dispatch (QueryEngine::evaluate) shared with the batch,
  // federation and monitor paths.
  const hsa::NetworkModel model = engine_.model(snapshot_);
  QueryEngine::EvalContext ctx;
  ctx.from = pending.request_point;
  ctx.geo = geo_.get();
  ctx.addressing = addressing_;
  QueryEngine::Answer answer =
      engine_.answer(model, snapshot_, request->query, ctx);
  pending.reply = std::move(answer.reply);
  pending.reply.request_id = request->request_id;

  track_pending(std::move(pending), answer.to_authenticate);
}

void RvaasController::handle_subscribe(const sdn::PacketIn& msg) {
  ++stats_.crypto_ops;  // unseal
  const auto opened = inband::open_subscribe(msg.packet, enclave_);
  if (!opened) {
    ++stats_.bad_requests;
    return;
  }
  const auto& [request_value, signature] = *opened;
  const SubscribeRequest* request = &request_value;
  const auto client_it = clients_.find(request->client);
  if (client_it == clients_.end()) {
    ++stats_.bad_requests;
    return;
  }
  // (Un)subscribing mutates controller state, so unlike a query it must be
  // authentic AND fresh: anyone can seal to the public enclave element, and
  // a replayed Subscribe would reset the notification sequence, silencing
  // the client's replay guard against future alerts.
  ++stats_.crypto_ops;  // signature verification
  if (!client_it->second.key.verify(request->signing_payload(), signature)) {
    ++stats_.bad_requests;
    return;
  }
  auto& last_freshness = subscribe_freshness_[request->client];
  if (request->freshness <= last_freshness) {
    ++stats_.bad_requests;  // replayed or reordered
    return;
  }
  last_freshness = request->freshness;

  if (request->unsubscribe) {
    ++stats_.unsubscribes_received;
    const PropertyMonitor::Key key{request->client, request->subscription_id};
    if (!monitor_.unsubscribe(key.first, key.second)) {
      ++stats_.bad_requests;
      return;
    }
    // Drop an evaluation still waiting on authentication, if any.
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      if (const auto pit = pending_.find(it->second); pit != pending_.end()) {
        net_->loop().cancel(pit->second.timeout);
        pending_.erase(pit);
      }
      inflight_.erase(it);
    }
    return;
  }

  // A subscription the engine cannot evaluate must be rejected up front: a
  // stored Geo property without a geo provider would throw inside every
  // subsequent sweep (a persistent crash, not a one-shot bad request).
  if (request->property.kind == QueryKind::Geo && geo_ == nullptr) {
    ++stats_.bad_requests;
    return;
  }
  // Per-client cap: active_for() is an O(1) count lookup, so the subscribe
  // path stays flat as the registry grows toward millions of entries.
  const bool replacing =
      monitor_.find(request->client, request->subscription_id) != nullptr;
  if (!replacing && monitor_.active_for(request->client) >=
                        config_.max_subscriptions_per_client) {
    ++stats_.bad_requests;
    return;
  }
  ++stats_.subscribes_received;

  PropertyMonitor::Subscription sub;
  sub.id = request->subscription_id;
  sub.client = request->client;
  sub.request_point = PortRef{msg.sw, msg.in_port};
  sub.property = request->property;
  sub.policy = request->policy;
  monitor_.subscribe(std::move(sub));

  // The next sweep evaluates the newcomer and pushes its baseline
  // notification (the subscribe acknowledgement).
  schedule_monitor_sweep();
}

void RvaasController::track_pending(PendingQuery pending,
                                    std::span<const PortRef> targets) {
  pending.expected.reserve(targets.size());
  pending.nonces.reserve(targets.size());
  for (const PortRef ap : targets) {
    pending.expected[ap] = std::nullopt;
  }

  const std::uint64_t request_id =
      pending.subscription ? next_eval_id_++ : pending.request.request_id;
  if (pending.subscription) {
    inflight_[*pending.subscription] = request_id;
  }
  auto [it, inserted] = pending_.emplace(request_id, std::move(pending));
  util::ensure(inserted, "duplicate pending query");

  if (it->second.expected.empty()) {
    finalize(request_id);
    return;
  }
  dispatch_auth_requests(it->second, request_id, targets);
  it->second.timeout = net_->loop().schedule_after(
      config_.auth_timeout, [this, request_id] { finalize(request_id); });
}

void RvaasController::dispatch_auth_requests(
    PendingQuery& pending, std::uint64_t request_id,
    std::span<const PortRef> targets) {
  // Driven off the ordered target list, not the (unordered) expected map,
  // so the probe order — and with it the simulation schedule — stays
  // deterministic. `request_id` is the pending_ key (an internal id for
  // subscription wakeups), which auth replies echo back.
  for (const PortRef ap : targets) {
    inband::AuthRequest req;
    req.request_id = request_id;
    req.nonce = rng_.next_u64();
    req.target = ap;
    pending.nonces[req.nonce] = ap;

    ++stats_.auth_requests_sent;
    ++stats_.crypto_ops;  // signature
    sdn::PacketOut out;
    out.sw = ap.sw;
    out.actions = {sdn::output(ap.port)};
    out.packet = make_auth_request(req, enclave_);
    handle_->packet_out(out);
  }
  pending.reply.auth.issued =
      static_cast<std::uint32_t>(pending.expected.size());
}

void RvaasController::handle_auth_reply(const sdn::PacketIn& msg) {
  const auto parsed = inband::parse_auth_reply(msg.packet);
  if (!parsed) return;
  const auto& [reply, signature] = *parsed;

  const auto pending_it = pending_.find(reply.request_id);
  if (pending_it == pending_.end()) return;
  PendingQuery& pending = pending_it->second;

  // The nonce must match one we issued, and the reply must arrive from the
  // probed access point (the packet-in tells us where it entered).
  const auto nonce_it = pending.nonces.find(reply.nonce);
  if (nonce_it == pending.nonces.end()) return;
  const PortRef expected_ap = nonce_it->second;
  if (PortRef{msg.sw, msg.in_port} != expected_ap) return;

  const auto client_it = clients_.find(reply.client);
  ++stats_.crypto_ops;  // signature verification
  if (client_it == clients_.end() ||
      !client_it->second.key.verify(reply.signing_payload(), signature)) {
    ++stats_.auth_replies_bad;
    return;
  }
  ++stats_.auth_replies_ok;

  auto expected_it = pending.expected.find(expected_ap);
  if (expected_it != pending.expected.end() && !expected_it->second) {
    expected_it->second = reply.client;
    // All answered? Finalize early.
    bool all = true;
    for (const auto& [_, who] : pending.expected) all = all && who.has_value();
    if (all) {
      net_->loop().cancel(pending.timeout);
      finalize(reply.request_id);
    }
  }
}

void RvaasController::finalize(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingQuery& pending = it->second;

  std::uint32_t responded = 0;
  for (EndpointInfo& endpoint : pending.reply.endpoints) {
    const auto expected_it = pending.expected.find(endpoint.access_point);
    if (expected_it == pending.expected.end()) continue;
    if (expected_it->second) {
      endpoint.authenticated = true;
      endpoint.authenticated_as = expected_it->second;
      ++responded;
    }
  }
  pending.reply.auth.responded = responded;

  if (pending.subscription) {
    inflight_.erase(*pending.subscription);
    const PropertyMonitor::Decision decision =
        monitor_.commit(*pending.subscription, pending.reply);
    if (decision.push != PropertyMonitor::Push::None) {
      send_notification(pending, decision);
    }
    pending_.erase(it);
    return;
  }

  send_reply(pending);
  pending_.erase(it);
}

void RvaasController::send_notification(
    const PendingQuery& pending, const PropertyMonitor::Decision& decision) {
  const auto client_it = clients_.find(pending.request.client);
  if (client_it == clients_.end()) return;

  Notification notification;
  notification.subscription_id = pending.subscription->second;
  notification.sequence = decision.sequence;
  notification.kind = decision.push == PropertyMonitor::Push::ViolationAlert
                          ? NotificationKind::ViolationAlert
                          : NotificationKind::AllClear;
  notification.epoch = pending.evaluated_epoch;
  notification.property_fingerprint = pending.property_fingerprint;
  notification.reply = pending.reply;

  stats_.crypto_ops += 2;  // sign + seal
  ++stats_.notifications_sent;
  sdn::PacketOut out;
  out.sw = pending.request_point.sw;
  out.actions = {sdn::output(pending.request_point.port)};
  out.packet = inband::make_notify_packet(
      notification, enclave_, client_it->second.box_public, rng_);
  handle_->packet_out(out);
}

void RvaasController::schedule_monitor_sweep() {
  // Runs on every flow update and adopted poll diff, so both checks must be
  // O(1): has_unevaluated() is a set-emptiness test, never a registry scan.
  if (monitor_.active() == 0 || sweep_scheduled_) return;
  if (snapshot_.epoch() == last_swept_epoch_ && !monitor_.has_unevaluated()) {
    return;
  }
  sweep_scheduled_ = true;
  // Deferred to the next event at the same instant: a burst of flow
  // updates (or a poll adopting many diffs) coalesces into one sweep.
  net_->loop().schedule_after(0, [this] {
    sweep_scheduled_ = false;
    run_monitor_sweep(/*force_all=*/false);
  });
}

void RvaasController::run_monitor_sweep(bool force_all) {
  if (monitor_.active() == 0) return;
  ++stats_.monitor_sweeps;
  last_swept_epoch_ = snapshot_.epoch();

  QueryEngine::EvalContext ctx;
  ctx.geo = geo_.get();
  ctx.addressing = addressing_;
  std::vector<PropertyMonitor::Wakeup> wakeups =
      monitor_.sweep(snapshot_, ctx, monitor_pool_, force_all);

  for (PropertyMonitor::Wakeup& w : wakeups) {
    // A newer evaluation supersedes one still waiting on authentication.
    if (const auto it = inflight_.find(w.key); it != inflight_.end()) {
      if (const auto pit = pending_.find(it->second); pit != pending_.end()) {
        net_->loop().cancel(pit->second.timeout);
        pending_.erase(pit);
      }
      inflight_.erase(it);
    }

    PendingQuery pending;
    pending.request.client = w.key.first;
    pending.request_point = w.request_point;
    pending.reply = std::move(w.evaluation.reply);
    pending.subscription = w.key;
    pending.evaluated_epoch = w.epoch;
    pending.property_fingerprint = w.property_fingerprint;
    track_pending(std::move(pending), w.evaluation.to_authenticate);
  }
}

void RvaasController::send_reply(const PendingQuery& pending) {
  const auto client_it = clients_.find(pending.request.client);
  if (client_it == clients_.end()) return;

  stats_.crypto_ops += 2;  // sign + seal
  ++stats_.replies_sent;
  sdn::PacketOut out;
  out.sw = pending.request_point.sw;
  out.actions = {sdn::output(pending.request_point.port)};
  out.packet = inband::make_reply_packet(
      pending.reply, enclave_, client_it->second.box_public, rng_);
  handle_->packet_out(out);
}

}  // namespace rvaas::core
