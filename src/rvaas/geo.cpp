#include "rvaas/geo.hpp"

#include <deque>

namespace rvaas::core {

using sdn::GeoLocation;
using sdn::SwitchId;

std::optional<GeoLocation> DisclosedGeo::locate(SwitchId sw) const {
  if (!topo_->has_switch(sw)) return std::nullopt;
  return topo_->geo(sw);
}

void CrowdSourcedGeo::add_report(sdn::PortRef access_point,
                                 GeoLocation reported) {
  reports_[access_point.sw].push_back(std::move(reported));
}

std::optional<GeoLocation> CrowdSourcedGeo::direct(SwitchId sw) const {
  const auto it = reports_.find(sw);
  if (it == reports_.end() || it->second.empty()) return std::nullopt;

  GeoLocation out;
  std::map<std::string, int> jurisdiction_votes;
  for (const GeoLocation& rep : it->second) {
    out.latitude += rep.latitude;
    out.longitude += rep.longitude;
    ++jurisdiction_votes[rep.jurisdiction];
  }
  const auto n = static_cast<double>(it->second.size());
  out.latitude /= n;
  out.longitude /= n;
  int best = 0;
  for (const auto& [jur, votes] : jurisdiction_votes) {
    if (votes > best) {
      best = votes;
      out.jurisdiction = jur;
    }
  }
  return out;
}

std::optional<GeoLocation> CrowdSourcedGeo::locate(SwitchId sw) const {
  if (!topo_->has_switch(sw)) return std::nullopt;
  if (const auto loc = direct(sw)) return loc;
  // Borrow from the nearest switch (BFS over the wiring plan) that has
  // reports — a coarse but honest estimate.
  std::deque<SwitchId> queue{sw};
  std::set<SwitchId> seen{sw};
  while (!queue.empty()) {
    const SwitchId cur = queue.front();
    queue.pop_front();
    for (const sdn::PortRef port : topo_->internal_ports(cur)) {
      const auto peer = topo_->link_peer(port);
      if (!peer || seen.contains(peer->sw)) continue;
      seen.insert(peer->sw);
      if (const auto loc = direct(peer->sw)) return loc;
      queue.push_back(peer->sw);
    }
  }
  return std::nullopt;
}

std::optional<std::string> GeoIpGeo::direct(SwitchId sw) const {
  std::map<std::string, int> votes;
  for (const sdn::PortRef port : topo_->access_ports(sw)) {
    const auto host = topo_->host_at(port);
    if (!host) continue;
    const auto& table = addressing_->all();
    const auto it = table.find(*host);
    if (it == table.end()) continue;
    if (const auto jur = db_.lookup(it->second.ip)) ++votes[*jur];
  }
  std::optional<std::string> best;
  int best_votes = 0;
  for (const auto& [jur, v] : votes) {
    if (v > best_votes) {
      best_votes = v;
      best = jur;
    }
  }
  return best;
}

std::optional<GeoLocation> GeoIpGeo::locate(SwitchId sw) const {
  if (!topo_->has_switch(sw)) return std::nullopt;
  if (const auto jur = direct(sw)) {
    return GeoLocation{0, 0, *jur};
  }
  std::deque<SwitchId> queue{sw};
  std::set<SwitchId> seen{sw};
  while (!queue.empty()) {
    const SwitchId cur = queue.front();
    queue.pop_front();
    for (const sdn::PortRef port : topo_->internal_ports(cur)) {
      const auto peer = topo_->link_peer(port);
      if (!peer || seen.contains(peer->sw)) continue;
      seen.insert(peer->sw);
      if (const auto jur = direct(peer->sw)) return GeoLocation{0, 0, *jur};
      queue.push_back(peer->sw);
    }
  }
  return std::nullopt;
}

std::vector<std::string> jurisdictions_of(
    const std::vector<std::vector<SwitchId>>& paths, const GeoProvider& geo) {
  std::set<std::string> out;
  for (const auto& path : paths) {
    for (const SwitchId sw : path) {
      const auto loc = geo.locate(sw);
      out.insert(loc ? loc->jurisdiction : std::string("unknown"));
    }
  }
  return {out.begin(), out.end()};
}

}  // namespace rvaas::core
