#include "rvaas/engine.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>

#include "hsa/transfer.hpp"
#include "util/ensure.hpp"
#include "util/fnv.hpp"
#include "util/thread_pool.hpp"

namespace rvaas::core {

using sdn::PortRef;
using sdn::SwitchId;

namespace {
// TEST-ONLY fault switches (see test_fault_freeze_invalidation).
std::atomic<bool> g_l1_invalidation_frozen{false};
std::atomic<bool> g_l2_invalidation_frozen{false};

/// Compiles `work` switches into `into`. With a pool, compilations group by
/// switch partition (shard.hpp) and fan out — pure per-switch work, results
/// merged serially afterwards so the map mutation stays single-threaded.
void compile_switches(const SnapshotManager& snap,
                      const std::vector<SwitchId>& work,
                      hsa::NetworkTransfer& into, util::ThreadPool* pool) {
  if (pool == nullptr || work.size() < 2) {
    for (const SwitchId sw : work) {
      into[sw] = hsa::SwitchTransfer::compile(snap.table(sw));
    }
    return;
  }
  std::array<std::vector<SwitchId>, kSwitchShards> by_shard;
  for (const SwitchId sw : work) by_shard[switch_shard(sw)].push_back(sw);
  std::array<std::vector<std::pair<SwitchId, hsa::SwitchTransfer>>,
             kSwitchShards>
      compiled;
  pool->parallel_for(kSwitchShards, [&](std::size_t s) {
    compiled[s].reserve(by_shard[s].size());
    for (const SwitchId sw : by_shard[s]) {
      compiled[s].emplace_back(sw, hsa::SwitchTransfer::compile(snap.table(sw)));
    }
  });
  for (auto& group : compiled) {
    for (auto& [sw, transfer] : group) into[sw] = std::move(transfer);
  }
}
}  // namespace

void CompiledModelCache::test_fault_freeze_invalidation(bool on) {
  g_l1_invalidation_frozen.store(on, std::memory_order_relaxed);
}

void ReachCache::test_fault_freeze_invalidation(bool on) {
  g_l2_invalidation_frozen.store(on, std::memory_order_relaxed);
}

hsa::NetworkModel CompiledModelCache::model(const sdn::Topology& topo,
                                            const SnapshotManager& snap,
                                            util::ThreadPool* pool) {
  std::lock_guard lock(mu_);
  ++stats_.lookups;

  // TEST-ONLY fault: serve the last compiled model without refreshing.
  if (g_l1_invalidation_frozen.load(std::memory_order_relaxed) && transfer_ &&
      snap.instance_id() == snapshot_id_) {
    ++stats_.clean_hits;
    return hsa::NetworkModel(topo, transfer_);
  }

  // Identity check: a different view instance — or an epoch that moved
  // backwards, which only a moved-from view being reused can produce —
  // cannot be patched incrementally.
  if (!transfer_ || snap.instance_id() != snapshot_id_ ||
      snap.epoch() < snapshot_epoch_) {
    transfer_ = std::make_shared<hsa::NetworkTransfer>();
    const std::vector<SwitchId> all = snap.switch_ids();
    compile_switches(snap, all, *transfer_, pool);
    stats_.switch_recompiles += all.size();
    ++stats_.full_rebuilds;
    snapshot_id_ = snap.instance_id();
    snapshot_epoch_ = snap.epoch();
    return hsa::NetworkModel(topo, transfer_);
  }

  // Incremental path. The dirty set is complete: a switch's first
  // appearance bumps its epoch (see snapshot.hpp), so a switch we have not
  // compiled yet is necessarily in it.
  const std::vector<SwitchId> dirty = snap.dirty_since(snapshot_epoch_);

  if (dirty.empty()) {
    ++stats_.clean_hits;
  } else {
    // Copy-on-write: previously returned models may still reference the
    // compiled map; never mutate it under them.
    if (transfer_.use_count() > 1) {
      transfer_ = std::make_shared<hsa::NetworkTransfer>(*transfer_);
    }
    compile_switches(snap, dirty, *transfer_, pool);
    stats_.switch_recompiles += dirty.size();
  }
  stats_.switch_hits += transfer_->size() - dirty.size();
  snapshot_epoch_ = snap.epoch();
  return hsa::NetworkModel(topo, transfer_);
}

void CompiledModelCache::invalidate() {
  std::lock_guard lock(mu_);
  transfer_.reset();
  snapshot_id_ = 0;
  snapshot_epoch_ = 0;
}

CompiledModelCache::Stats CompiledModelCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t ReachCache::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = k.space_fingerprint;
  h = util::fnv1a_mix(h, std::hash<sdn::PortRef>{}(k.ingress));
  h = util::fnv1a_mix(h, k.max_depth);
  return static_cast<std::size_t>(h);
}

void ReachCache::clear_entries() {
  for (Shard& shard : shards_) {
    shard.buckets.clear();
    shard.coverage = 0;
    shard.entries = 0;
  }
  entry_count_ = 0;
}

void ReachCache::validate(const SnapshotManager& snap) {
  // Identity check: a different view instance — or an epoch that moved
  // backwards, which only a moved-from view being reused can produce —
  // cannot be patched by a dirty set.
  if (snap.instance_id() != snapshot_id_ || snap.epoch() < validated_epoch_) {
    if (snapshot_id_ != 0) ++stats_.full_clears;
    clear_entries();
    snapshot_id_ = snap.instance_id();
    validated_epoch_ = snap.epoch();
    return;
  }
  if (snap.epoch() == validated_epoch_) return;

  // TEST-ONLY fault: pretend the epoch never advanced — stale entries
  // survive the churn they should have been evicted by.
  if (g_l2_invalidation_frozen.load(std::memory_order_relaxed)) {
    validated_epoch_ = snap.epoch();
    return;
  }

  // Epoch advanced: drop exactly the entries whose traversal consulted a
  // switch that changed since they were computed. Everything else is still
  // byte-identical to a recomputation and stays. The walk is sharded: a
  // shard whose coverage mask is disjoint from the dirty partitions cannot
  // hold a stale entry and is skipped whole; within a walked shard the
  // per-entry mask skips the exact intersect for most survivors.
  const std::vector<SwitchId> dirty = snap.dirty_since(validated_epoch_);
  const std::uint32_t dirty_mask = footprint_shard_mask(dirty);
  for (Shard& shard : shards_) {
    if (shard.entries == 0) continue;
    if ((shard.coverage & dirty_mask) == 0) {
      ++stats_.shards_skipped;
      continue;
    }
    ++stats_.shards_walked;
    std::uint32_t coverage = 0;
    for (auto it = shard.buckets.begin(); it != shard.buckets.end();) {
      auto& bucket = it->second;
      std::erase_if(bucket, [&](const Entry& e) {
        const bool stale = (e.footprint_mask & dirty_mask) != 0 &&
                           e.result->depends_on(dirty);
        if (stale) {
          ++stats_.entries_invalidated;
          --shard.entries;
          --entry_count_;
        } else {
          coverage |= e.footprint_mask;
        }
        return stale;
      });
      it = bucket.empty() ? shard.buckets.erase(it) : std::next(it);
    }
    shard.coverage = coverage;
  }
  validated_epoch_ = snap.epoch();
}

ReachCache::ResultPtr ReachCache::reach(const hsa::NetworkModel& model,
                                        const SnapshotManager& snap,
                                        sdn::PortRef ingress,
                                        const hsa::HeaderSpace& hs,
                                        std::size_t max_depth) {
  std::unique_lock lock(mu_);
  ++stats_.lookups;
  validate(snap);
  const std::uint64_t id_token = snapshot_id_;
  const std::uint64_t epoch_token = validated_epoch_;

  const Key key{ingress, hs.fingerprint(), max_depth};
  Shard& shard = shards_[switch_shard(ingress.sw)];
  if (const auto it = shard.buckets.find(key); it != shard.buckets.end()) {
    for (const Entry& e : it->second) {
      if (e.hs == hs) {
        ++stats_.hits;
        return e.result;
      }
    }
  }
  ++stats_.misses;

  // Compute outside the lock so concurrent misses (run_batch, reach_all)
  // traverse in parallel; the model is immutable.
  lock.unlock();
  auto result =
      std::make_shared<const hsa::ReachabilityResult>(
          model.reach(ingress, hs, max_depth));
  lock.lock();

  // Only store a result that is still current: the snapshot may have churned
  // (or been swapped) while we computed, and another thread may have raced
  // us to the same key (first insert wins; the results are identical).
  if (snapshot_id_ != id_token || validated_epoch_ != epoch_token) {
    return result;
  }
  // Capacity bound: clients choose the constraint spaces, so without a cap
  // distinct entries would accumulate forever on a stable snapshot. A flush
  // only costs future misses.
  if (entry_count_ >= kMaxEntries) {
    clear_entries();
    ++stats_.capacity_flushes;
  }
  Shard& home = shards_[switch_shard(ingress.sw)];
  auto& bucket = home.buckets[key];
  for (const Entry& e : bucket) {
    if (e.hs == hs) return e.result;
  }
  const std::uint32_t mask = footprint_shard_mask(result->footprint);
  bucket.push_back(Entry{hs, result, mask});
  home.coverage |= mask;
  ++home.entries;
  ++entry_count_;
  return result;
}

void ReachCache::invalidate() {
  std::lock_guard lock(mu_);
  clear_entries();
  snapshot_id_ = 0;
  validated_epoch_ = 0;
}

std::size_t ReachCache::size() const {
  std::lock_guard lock(mu_);
  return entry_count_;
}

ReachCache::Stats ReachCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

hsa::NetworkModel QueryEngine::model(const SnapshotManager& snap,
                                     util::ThreadPool* pool) const {
  return cache_->model(*topo_, snap, pool);
}

hsa::NetworkModel QueryEngine::model_uncached(
    const SnapshotManager& snap) const {
  return hsa::NetworkModel::from_tables(*topo_, snap.table_dump());
}

ReachCache::ResultPtr QueryEngine::reach(const hsa::NetworkModel& model,
                                         const SnapshotManager& snap,
                                         sdn::PortRef ingress,
                                         const hsa::HeaderSpace& hs) const {
  return reach_cache_->reach(model, snap, ingress, hs, config_.max_depth);
}

ReachCache::ResultPtr QueryEngine::reach_tracked(
    const hsa::NetworkModel& model, const SnapshotManager& snap,
    PortRef ingress, const hsa::HeaderSpace& hs,
    std::vector<SwitchId>* fp) const {
  ReachCache::ResultPtr r = reach(model, snap, ingress, hs);
  if (fp != nullptr) {
    fp->insert(fp->end(), r->footprint.begin(), r->footprint.end());
  }
  return r;
}

std::vector<QueryEngine::IngressReach> QueryEngine::reach_all(
    const SnapshotManager& snap, const hsa::HeaderSpace& hs,
    util::ThreadPool& pool) const {
  // One L1 compilation serves the whole sweep; per-ingress traversals then
  // fan out, each landing in (or served from) the L2 cache.
  const hsa::NetworkModel compiled = model(snap);
  const std::vector<PortRef> ingresses = topo_->all_access_points();
  std::vector<IngressReach> out(ingresses.size());
  pool.parallel_for(ingresses.size(), [&](std::size_t i) {
    out[i] = IngressReach{ingresses[i],
                          reach(compiled, snap, ingresses[i], hs)};
  });
  return out;
}

std::vector<QueryEngine::IngressReach> QueryEngine::reach_all(
    const SnapshotManager& snap, const hsa::HeaderSpace& hs,
    std::size_t threads) const {
  util::ThreadPool pool(threads <= 1 ? 0 : threads - 1);
  return reach_all(snap, hs, pool);
}

hsa::HeaderSpace QueryEngine::constraint_space(const sdn::Match& constraint) {
  return hsa::HeaderSpace(hsa::match_to_cube(constraint));
}

ReachComputation QueryEngine::from_reach_result(
    const hsa::ReachabilityResult& r, std::optional<PortRef> exclude) const {
  ReachComputation out;
  out.loops = r.loops.size();

  std::set<PortRef> seen;
  for (const auto& e : r.endpoints) {
    if (exclude && e.egress == *exclude) continue;
    out.paths.push_back(e.path);
    if (!seen.insert(e.egress).second) continue;
    EndpointInfo info;
    info.access_point = e.egress;
    info.dark = !e.host.has_value();
    out.endpoints.push_back(info);
    if (e.host) out.to_authenticate.push_back(e.egress);
  }
  return out;
}

ReachComputation QueryEngine::reachable_endpoints(
    const hsa::NetworkModel& model, const SnapshotManager& snap, PortRef from,
    const hsa::HeaderSpace& hs, std::vector<SwitchId>* footprint) const {
  const ReachCache::ResultPtr r =
      reach_tracked(model, snap, from, hs, footprint);
  return from_reach_result(*r, from);
}

ReachComputation QueryEngine::reaching_sources(
    const hsa::NetworkModel& model, const SnapshotManager& snap,
    PortRef target, const hsa::HeaderSpace& hs,
    std::vector<SwitchId>* footprint) const {
  ReachComputation out;
  for (const PortRef ap : topo_->all_access_points()) {
    if (ap == target) continue;
    // Hold the ResultPtr: the cache may not retain a result computed during
    // concurrent churn, and a reference into the temporary would dangle.
    const ReachCache::ResultPtr rp =
        reach_tracked(model, snap, ap, hs, footprint);
    const hsa::ReachabilityResult& r = *rp;
    out.loops += r.loops.size();
    for (const auto& e : r.endpoints) {
      if (e.egress != target) continue;
      EndpointInfo info;
      info.access_point = ap;
      info.dark = !topo_->host_at(ap).has_value();
      out.endpoints.push_back(info);
      if (!info.dark) out.to_authenticate.push_back(ap);
      out.paths.push_back(e.path);
      break;  // one entry per source access point
    }
  }
  return out;
}

ReachComputation QueryEngine::isolation(const hsa::NetworkModel& model,
                                        const SnapshotManager& snap,
                                        PortRef request_point,
                                        const hsa::HeaderSpace& hs,
                                        std::vector<SwitchId>* footprint) const {
  ReachComputation forward =
      reachable_endpoints(model, snap, request_point, hs, footprint);
  const ReachComputation backward =
      reaching_sources(model, snap, request_point, hs, footprint);

  std::set<PortRef> seen;
  for (const EndpointInfo& e : forward.endpoints) seen.insert(e.access_point);
  for (const EndpointInfo& e : backward.endpoints) {
    if (!seen.insert(e.access_point).second) continue;
    forward.endpoints.push_back(e);
    if (!e.dark) forward.to_authenticate.push_back(e.access_point);
  }
  forward.paths.insert(forward.paths.end(), backward.paths.begin(),
                       backward.paths.end());
  forward.loops += backward.loops;

  // Deduplicate the auth list (an endpoint may appear in both directions).
  std::sort(forward.to_authenticate.begin(), forward.to_authenticate.end());
  forward.to_authenticate.erase(
      std::unique(forward.to_authenticate.begin(),
                  forward.to_authenticate.end()),
      forward.to_authenticate.end());
  return forward;
}

std::vector<std::string> QueryEngine::geo_jurisdictions(
    const hsa::NetworkModel& model, const SnapshotManager& snap, PortRef from,
    const hsa::HeaderSpace& hs, const GeoProvider& geo,
    std::vector<SwitchId>* footprint) const {
  const ReachCache::ResultPtr rp =
      reach_tracked(model, snap, from, hs, footprint);
  const hsa::ReachabilityResult& r = *rp;
  std::vector<std::vector<SwitchId>> paths;
  for (const auto& e : r.endpoints) paths.push_back(e.path);
  for (const auto& c : r.controller_hits) paths.push_back(c.path);
  for (const auto& l : r.loops) paths.push_back(l.path);
  return jurisdictions_of(paths, geo);
}

QueryEngine::PathLengthReport QueryEngine::path_length(
    const hsa::NetworkModel& model, const SnapshotManager& snap, PortRef from,
    PortRef peer_ap, std::uint32_t peer_ip,
    std::vector<SwitchId>* footprint) const {
  PathLengthReport report;

  hsa::Wildcard cube;
  cube.set_field(sdn::Field::IpDst, peer_ip);
  const ReachCache::ResultPtr rp =
      reach_tracked(model, snap, from, hsa::HeaderSpace(cube), footprint);
  const hsa::ReachabilityResult& r = *rp;

  std::uint32_t best = ~std::uint32_t{0};
  for (const auto& e : r.endpoints) {
    if (e.egress != peer_ap) continue;
    report.found = true;
    best = std::min(best, static_cast<std::uint32_t>(e.path.size()));
  }
  if (report.found) report.installed = best;

  const auto optimal =
      control::shortest_switch_path(*topo_, from.sw, peer_ap.sw);
  if (optimal) report.optimal = static_cast<std::uint32_t>(optimal->size());
  return report;
}

std::vector<FairnessMetric> QueryEngine::fairness(
    const hsa::NetworkModel& model, const SnapshotManager& snap, PortRef from,
    const hsa::HeaderSpace& hs, std::vector<SwitchId>* footprint) const {
  const ReachCache::ResultPtr rp =
      reach_tracked(model, snap, from, hs, footprint);
  const hsa::ReachabilityResult& r = *rp;

  // Exact attribution: the reach result records which flow entries carried
  // each delivered subspace; collect the meters of exactly those rules
  // (point lookups — no full table_dump copy on the query path).
  std::uint64_t min_rate = ~std::uint64_t{0};
  std::set<SwitchId> metered_switches;
  for (const auto& endpoint : r.endpoints) {
    for (const auto& [sw, entry_id] : endpoint.rules) {
      const sdn::FlowEntry* entry = snap.find_entry(sw, entry_id);
      const auto meters_it = snap.meters().find(sw);
      if (entry == nullptr || !entry->meter ||
          meters_it == snap.meters().end()) {
        continue;
      }
      for (const auto& [meter_id, config] : meters_it->second) {
        if (meter_id == *entry->meter) {
          min_rate = std::min(min_rate, config.rate_bps);
          metered_switches.insert(sw);
        }
      }
    }
  }

  return {
      FairnessMetric{"min-rate-bps", min_rate},
      FairnessMetric{"metered-switches", metered_switches.size()},
      FairnessMetric{"paths", static_cast<std::uint64_t>(r.endpoints.size())},
  };
}

std::vector<TransferSummaryEntry> QueryEngine::transfer_summary(
    const hsa::NetworkModel& model, const SnapshotManager& snap, PortRef from,
    const hsa::HeaderSpace& hs, std::vector<SwitchId>* footprint) const {
  const ReachCache::ResultPtr rp =
      reach_tracked(model, snap, from, hs, footprint);
  const hsa::ReachabilityResult& r = *rp;
  std::map<PortRef, std::uint32_t> cubes;
  for (const auto& e : r.endpoints) {
    if (e.egress == from) continue;  // hairpin back to the requester
    cubes[e.egress] += static_cast<std::uint32_t>(e.space.cube_count());
  }
  std::vector<TransferSummaryEntry> out;
  for (const auto& [egress, count] : cubes) {
    out.push_back(TransferSummaryEntry{egress, count});
  }
  return out;
}

QueryEngine::Evaluation QueryEngine::evaluate(const hsa::NetworkModel& model,
                                              const SnapshotManager& snap,
                                              const Property& property,
                                              const EvalContext& ctx) const {
  Evaluation out;
  out.reply.kind = property.kind;
  const hsa::HeaderSpace hs = ctx.space_override != nullptr
                                  ? *ctx.space_override
                                  : constraint_space(property.constraint);
  std::vector<SwitchId>* const fp = &out.footprint;

  ReachComputation reach_comp;
  bool has_endpoints = false;
  switch (property.kind) {
    case QueryKind::ReachableEndpoints:
      // The primary traversal is kept on the Evaluation: the federation
      // path needs its per-endpoint egress subspaces to cross peerings.
      out.primary_reach = reach_tracked(model, snap, ctx.from, hs, fp);
      reach_comp = from_reach_result(
          *out.primary_reach, ctx.exclude_requester
                                  ? std::optional<PortRef>(ctx.from)
                                  : std::nullopt);
      has_endpoints = true;
      break;
    case QueryKind::ReachingSources:
      reach_comp = reaching_sources(model, snap, ctx.from, hs, fp);
      has_endpoints = true;
      break;
    case QueryKind::Isolation:
      reach_comp = isolation(model, snap, ctx.from, hs, fp);
      has_endpoints = true;
      break;
    case QueryKind::Geo:
      util::ensure(ctx.geo != nullptr, "geo query without a geo provider");
      out.reply.jurisdictions =
          geo_jurisdictions(model, snap, ctx.from, hs, *ctx.geo, fp);
      break;
    case QueryKind::PathLength: {
      if (property.peer && ctx.addressing != nullptr) {
        const auto peer_ports = topo_->host_ports(*property.peer);
        if (!peer_ports.empty()) {
          const PathLengthReport report =
              path_length(model, snap, ctx.from, peer_ports.front(),
                          ctx.addressing->of(*property.peer).ip, fp);
          out.reply.path_found = report.found;
          out.reply.installed_path_length = report.installed;
          out.reply.optimal_path_length = report.optimal;
        }
      }
      break;
    }
    case QueryKind::Fairness:
      out.reply.fairness = fairness(model, snap, ctx.from, hs, fp);
      break;
    case QueryKind::TransferSummary:
      out.reply.transfer_summary =
          transfer_summary(model, snap, ctx.from, hs, fp);
      break;
    case QueryKind::PolicyCompliance:
      // The cross-domain walk lives in the federation layer; the dependency
      // footprint is left empty because the crossings depend on OTHER
      // domains' snapshots, which this engine's change clock cannot see.
      if (ctx.policy != nullptr) {
        out.reply.policy_report = ctx.policy->walk(ctx.from, hs);
      }
      break;
  }

  if (has_endpoints) {
    out.reply.endpoints = std::move(reach_comp.endpoints);
    if (config_.policy == ConfidentialityPolicy::FullPaths) {
      out.reply.disclosed_paths = render_paths(reach_comp.paths);
    }
    for (const PortRef ap : reach_comp.to_authenticate) {
      // Never probe the requester's own access point.
      if (ctx.exclude_requester && ap == ctx.from) continue;
      out.to_authenticate.push_back(ap);
    }
  }

  // Canonicalize the union footprint (helpers append per-traversal sets).
  std::sort(out.footprint.begin(), out.footprint.end());
  out.footprint.erase(std::unique(out.footprint.begin(), out.footprint.end()),
                      out.footprint.end());
  return out;
}

QueryEngine::Evaluation QueryEngine::evaluate(const SnapshotManager& snap,
                                              const Property& property,
                                              const EvalContext& ctx) const {
  return evaluate(model(snap), snap, property, ctx);
}

QueryEngine::Answer QueryEngine::answer(const hsa::NetworkModel& model,
                                        const SnapshotManager& snap,
                                        const Query& query,
                                        const EvalContext& ctx) const {
  Evaluation eval = evaluate(model, snap, Property::from_query(query), ctx);
  return Answer{std::move(eval.reply), std::move(eval.to_authenticate)};
}

std::vector<QueryReply> QueryEngine::run_batch(const SnapshotManager& snap,
                                               std::span<const Query> queries,
                                               std::size_t threads,
                                               const BatchContext& ctx) const {
  util::ThreadPool pool(threads <= 1 ? 0 : threads - 1);
  return run_batch(snap, queries, pool, ctx);
}

std::vector<QueryReply> QueryEngine::run_batch(const SnapshotManager& snap,
                                               std::span<const Query> queries,
                                               util::ThreadPool& pool,
                                               const BatchContext& ctx) const {
  // One compilation of the snapshot amortizes over the whole batch; the
  // resulting model is immutable, so queries read it concurrently.
  const hsa::NetworkModel compiled = model(snap);
  std::vector<QueryReply> replies(queries.size());
  pool.parallel_for(queries.size(), [&](std::size_t i) {
    replies[i] = answer(compiled, snap, queries[i], ctx).reply;
  });
  return replies;
}

std::vector<std::string> QueryEngine::render_paths(
    const std::vector<std::vector<SwitchId>>& paths) {
  std::set<std::string> unique;
  for (const auto& path : paths) {
    std::ostringstream os;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i > 0) os << "->";
      os << "s" << path[i].value;
    }
    unique.insert(os.str());
  }
  return {unique.begin(), unique.end()};
}

}  // namespace rvaas::core
