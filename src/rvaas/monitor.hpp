#pragma once
// Push-style continuous verification (the paper's §IV monitoring loop turned
// client-facing): clients register standing Property subscriptions; on every
// snapshot epoch advance the monitor intersects the dirty switches with each
// subscription's dependency footprint and re-evaluates only the affected
// ones, fanned out over a thread pool. The controller completes each wakeup
// with the usual in-band authentication round-trip and pushes a signed
// ViolationAlert/AllClear notification when commit() says the outcome is
// news to the client.
//
// The monitor is pure logic over the QueryEngine (no I/O, no event loop):
// the controller (rvaas/controller.hpp) owns packet dispatch and drives
// sweep()/commit() from its churn hooks and re-verification timer.

#include <map>
#include <optional>

#include "rvaas/engine.hpp"
#include "util/thread_pool.hpp"

namespace rvaas::core {

class PropertyMonitor {
 public:
  /// Subscription identity: (client, client-chosen id). Ids from different
  /// clients never collide with each other.
  using Key = std::pair<sdn::HostId, std::uint64_t>;

  struct Subscription {
    std::uint64_t id = 0;          ///< client-chosen, scopes notifications
    sdn::HostId client{};
    sdn::PortRef request_point{};  ///< where Subscribe entered; alerts return there
    Property property;
    NotifyPolicy policy = NotifyPolicy::VerdictEdges;

    /// Union dependency footprint of the last evaluation (sorted). Churn
    /// confined to switches outside it cannot change the reply.
    std::vector<sdn::SwitchId> footprint;
    /// Snapshot epoch of the last evaluation; meaningless until `evaluated`.
    std::uint64_t evaluated_epoch = 0;
    bool evaluated = false;

    /// Verdict of the last pushed notification; nullopt = nothing pushed
    /// yet (the first commit always pushes the baseline).
    std::optional<bool> last_ok;
    /// Serialized reply of the last push (EveryChange comparison only).
    util::Bytes last_payload;
    /// Pushes so far; the next notification carries sequence + 1.
    std::uint64_t sequence = 0;
  };

  struct Stats {
    std::uint64_t subscribes = 0;
    std::uint64_t unsubscribes = 0;
    std::uint64_t sweeps = 0;        ///< sweep() calls
    std::uint64_t wakeups = 0;       ///< subscription re-evaluations run
    std::uint64_t skipped = 0;       ///< footprint-disjoint (no re-evaluation)
    std::uint64_t alerts = 0;        ///< ViolationAlert pushes decided
    std::uint64_t all_clears = 0;    ///< AllClear pushes decided
    std::uint64_t suppressed = 0;    ///< commits with nothing new to push
  };

  explicit PropertyMonitor(const QueryEngine& engine) : engine_(&engine) {}

  /// Registers (or, under an existing (client, id), replaces) a standing
  /// subscription. A retransmission with an identical property fingerprint
  /// and policy is idempotent (state kept); a genuine replacement resets
  /// the evaluation/push state but carries the notification sequence
  /// forward, so the client's replay guard keeps working.
  void subscribe(Subscription sub);

  /// Removes a subscription; false if unknown.
  bool unsubscribe(sdn::HostId client, std::uint64_t id);

  const Subscription* find(sdn::HostId client, std::uint64_t id) const;
  std::size_t active() const { return subs_.size(); }
  std::size_t active_for(sdn::HostId client) const;
  /// true while some subscription has never been evaluated — a sweep is due
  /// even without an epoch advance (the baseline notification).
  bool has_unevaluated() const;

  /// One re-evaluated subscription, ready for the controller to authenticate
  /// and (maybe) push. `evaluation.footprint` is moved into the registry
  /// (read it back through find()); the property fingerprint travels in the
  /// Notification so the client can pin what was verified.
  struct Wakeup {
    Key key;
    sdn::PortRef request_point{};
    QueryEngine::Evaluation evaluation;
    std::uint64_t epoch = 0;  ///< snapshot epoch the evaluation saw
    std::uint64_t property_fingerprint = 0;
  };

  /// The churn hook: re-evaluates every subscription whose footprint
  /// intersects the switches dirtied since its own last evaluation (plus any
  /// never evaluated; `force_all` re-evaluates everything — the timer-driven
  /// sweep that catches drift outside the change clock, e.g. meters and dead
  /// auth responders). Evaluations fan out over `pool` and are pure; wakeups
  /// come back in ascending Key order, so downstream auth dispatch is
  /// deterministic. `base_ctx` supplies geo/addressing; `from` is set per
  /// subscription. Reply request_ids are set to the subscription id.
  std::vector<Wakeup> sweep(const SnapshotManager& snap,
                            const QueryEngine::EvalContext& base_ctx,
                            util::ThreadPool& pool, bool force_all = false);

  enum class Push : std::uint8_t { None, ViolationAlert, AllClear };
  struct Decision {
    Push push = Push::None;
    std::uint64_t sequence = 0;  ///< valid when push != None
  };

  /// Final step of a wakeup, after authentication filled in the reply:
  /// verdict against the stored Expectation, compared with the last pushed
  /// state under the subscription's NotifyPolicy. Updates push bookkeeping
  /// when a notification is due. No-op Decision for unknown subscriptions
  /// (unsubscribed while the evaluation was in flight).
  Decision commit(const Key& key, const QueryReply& final_reply);

  const Stats& stats() const { return stats_; }

 private:
  const QueryEngine* engine_;
  /// Ordered registry: sweep order (and with it notification order under
  /// simultaneous churn) is deterministic.
  std::map<Key, Subscription> subs_;
  Stats stats_;
};

}  // namespace rvaas::core
