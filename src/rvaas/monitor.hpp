#pragma once
// Push-style continuous verification (the paper's §IV monitoring loop turned
// client-facing): clients register standing Property subscriptions; on every
// snapshot epoch advance the monitor intersects the dirty switches with each
// subscription's dependency footprint and re-evaluates only the affected
// ones, fanned out over a thread pool. The controller completes each wakeup
// with the usual in-band authentication round-trip and pushes a signed
// ViolationAlert/AllClear notification when commit() says the outcome is
// news to the client.
//
// The monitor is pure logic over the QueryEngine (no I/O, no event loop):
// the controller (rvaas/controller.hpp) owns packet dispatch and drives
// sweep()/commit() from its churn hooks and re-verification timer.

#include <array>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "rvaas/engine.hpp"
#include "rvaas/shard.hpp"
#include "util/thread_pool.hpp"

namespace rvaas::core {

class PropertyMonitor {
 public:
  /// Subscription identity: (client, client-chosen id). Ids from different
  /// clients never collide with each other.
  using Key = std::pair<sdn::HostId, std::uint64_t>;

  struct Subscription {
    std::uint64_t id = 0;          ///< client-chosen, scopes notifications
    sdn::HostId client{};
    sdn::PortRef request_point{};  ///< where Subscribe entered; alerts return there
    Property property;
    NotifyPolicy policy = NotifyPolicy::VerdictEdges;

    /// Union dependency footprint of the last evaluation (sorted). Churn
    /// confined to switches outside it cannot change the reply.
    std::vector<sdn::SwitchId> footprint;
    /// Snapshot epoch of the last evaluation; meaningless until `evaluated`.
    std::uint64_t evaluated_epoch = 0;
    bool evaluated = false;

    /// Verdict of the last pushed notification; nullopt = nothing pushed
    /// yet (the first commit always pushes the baseline).
    std::optional<bool> last_ok;
    /// Serialized reply of the last push (EveryChange comparison only).
    util::Bytes last_payload;
    /// Pushes so far; the next notification carries sequence + 1.
    std::uint64_t sequence = 0;
    /// A VerificationDegraded push went out (the footprint touched an
    /// unreachable switch) and no normal push has resumed since. While
    /// set, the next commit always pushes — the client is owed a signed
    /// resume even if the verdict never moved.
    bool degraded_notified = false;
  };

  struct Stats {
    std::uint64_t subscribes = 0;
    std::uint64_t unsubscribes = 0;
    std::uint64_t sweeps = 0;        ///< sweep() calls
    std::uint64_t wakeups = 0;       ///< subscription re-evaluations run
    std::uint64_t skipped = 0;       ///< footprint-disjoint (no re-evaluation)
    std::uint64_t alerts = 0;        ///< ViolationAlert pushes decided
    std::uint64_t all_clears = 0;    ///< AllClear pushes decided
    std::uint64_t suppressed = 0;    ///< commits with nothing new to push
    std::uint64_t indexed_sweeps = 0;   ///< selections served by the index
    std::uint64_t fallback_sweeps = 0;  ///< linear selections (new snapshot
                                        ///< identity / first sweep)
    std::uint64_t degraded = 0;         ///< VerificationDegraded pushes decided
    std::uint64_t degraded_resumes = 0; ///< forced pushes clearing the flag
  };

  explicit PropertyMonitor(const QueryEngine& engine) : engine_(&engine) {}

  /// Registers (or, under an existing (client, id), replaces) a standing
  /// subscription. A retransmission with an identical property fingerprint
  /// and policy is idempotent (state kept); a genuine replacement resets
  /// the evaluation/push state but carries the notification sequence
  /// forward, so the client's replay guard keeps working.
  void subscribe(Subscription sub);

  /// Removes a subscription; false if unknown.
  bool unsubscribe(sdn::HostId client, std::uint64_t id);

  const Subscription* find(sdn::HostId client, std::uint64_t id) const;
  /// All subscription ids held by `client`, ascending. O(log subs + k);
  /// the wire front-end uses it to tear down a disconnected session.
  std::vector<std::uint64_t> ids_of(sdn::HostId client) const;
  std::size_t active() const { return subs_.size(); }
  /// O(1): served from a per-client count maintained on (un)subscribe (the
  /// controller consults it on every subscribe, so it must not scan).
  std::size_t active_for(sdn::HostId client) const;
  /// true while some subscription has never been evaluated — a sweep is due
  /// even without an epoch advance (the baseline notification). O(1): the
  /// controller calls this on every coalesced churn event.
  bool has_unevaluated() const { return !unevaluated_.empty(); }

  /// One re-evaluated subscription, ready for the controller to authenticate
  /// and (maybe) push. `evaluation.footprint` is moved into the registry
  /// (read it back through find()); the property fingerprint travels in the
  /// Notification so the client can pin what was verified.
  struct Wakeup {
    Key key;
    sdn::PortRef request_point{};
    QueryEngine::Evaluation evaluation;
    std::uint64_t epoch = 0;  ///< snapshot epoch the evaluation saw
    std::uint64_t property_fingerprint = 0;
  };

  /// The churn hook: re-evaluates every subscription whose footprint
  /// intersects the switches dirtied since its own last evaluation (plus any
  /// never evaluated; `force_all` re-evaluates everything — the timer-driven
  /// sweep that catches drift outside the change clock, e.g. meters and dead
  /// auth responders). Selection is served by the inverted footprint index
  /// (O(affected), see indexed_wakeups below); evaluations fan out over
  /// `pool` and are pure; wakeups come back in ascending Key order, so
  /// downstream auth dispatch is deterministic. `base_ctx` supplies
  /// geo/addressing; `from` is set per subscription. Reply request_ids are
  /// set to the subscription id.
  std::vector<Wakeup> sweep(const SnapshotManager& snap,
                            const QueryEngine::EvalContext& base_ctx,
                            util::ThreadPool& pool, bool force_all = false);

  /// The wakeup set the inverted footprint index would select right now
  /// (ascending Key order): never-evaluated subscriptions plus every entry
  /// under a switch dirtied since the last sweep. Falls back to the linear
  /// scan when the index anchors do not apply to `snap` (first sweep, new
  /// snapshot identity, epoch regression). Pure; sweep() uses this exact
  /// selection. Index invariant: after every sweep, a subscription is
  /// indexed under switch S iff its registry footprint contains S, and a
  /// non-selected subscription's footprint is disjoint from all churn since
  /// its own evaluation — which makes dirty_since(last sweep) a complete
  /// wakeup filter.
  std::vector<Key> indexed_wakeups(const SnapshotManager& snap,
                                   bool force_all = false) const;

  /// The retired O(subs) reference selection: intersects every
  /// subscription's footprint against the switches dirtied since its own
  /// evaluation. Kept as the equivalence oracle for the index (like
  /// testing/reference_hsa for the HSA representation) and as the fallback
  /// path above. Must always equal indexed_wakeups() byte-for-byte.
  std::vector<Key> linear_wakeups(const SnapshotManager& snap,
                                  bool force_all = false) const;

  /// Total (switch, subscription) entries across index shards (tests).
  std::size_t index_entries() const;

  /// TEST-ONLY fault injection: while enabled, subscribe/unsubscribe and
  /// the post-evaluation footprint move stop maintaining the inverted
  /// index — a deliberately stale index that the index-vs-linear oracle
  /// must catch. Never enable outside tests; affects all instances
  /// process-wide.
  static void test_fault_freeze_index(bool on);

  enum class Push : std::uint8_t { None, ViolationAlert, AllClear };
  struct Decision {
    Push push = Push::None;
    std::uint64_t sequence = 0;  ///< valid when push != None
  };

  /// Final step of a wakeup, after authentication filled in the reply:
  /// verdict against the stored Expectation, compared with the last pushed
  /// state under the subscription's NotifyPolicy. Updates push bookkeeping
  /// when a notification is due. No-op Decision for unknown subscriptions
  /// (unsubscribed while the evaluation was in flight). A subscription
  /// holding a VerificationDegraded debt (see mark_degraded) always pushes
  /// here — the signed resume — and the debt is cleared.
  Decision commit(const Key& key, const QueryReply& final_reply);

  /// Everything the controller needs to push one VerificationDegraded
  /// notification (no evaluation attached: the point is that the registry
  /// footprint just lost a switch and a fresh evaluation is impossible).
  struct DegradedPush {
    Key key;
    sdn::PortRef request_point{};
    std::uint64_t sequence = 0;  ///< already bumped; carried verbatim
    std::uint64_t property_fingerprint = 0;
    std::uint64_t evaluated_epoch = 0;
    QueryKind kind = QueryKind::ReachableEndpoints;
  };

  /// Fail-stale hook, called by the controller on a Healthy/Degraded ->
  /// Unreachable edge with the full current unreachable set (sorted):
  /// every evaluated subscription whose footprint intersects it — and that
  /// is not already flagged — takes the degraded_notified debt, advances
  /// its sequence, and yields one DegradedPush. O(subs) linear scan:
  /// unreachable transitions are rare by construction (they need
  /// `unreachable_after` consecutive missed deadlines).
  std::vector<DegradedPush> mark_degraded(
      const std::vector<sdn::SwitchId>& unreachable);

  const Stats& stats() const { return stats_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  /// One partition of the inverted footprint index: switch → subscriptions
  /// whose registry footprint contains it. Shards are disjoint by
  /// construction (a switch lives in exactly one), so per-shard maintenance
  /// fans out over the sweep pool without any lock.
  struct IndexShard {
    std::unordered_map<std::uint32_t, std::unordered_set<Key, KeyHash>>
        by_switch;
  };

  /// Selection behind indexed_wakeups(); reports whether the linear
  /// fallback ran (stats + tests).
  std::vector<Key> select_wakeups(const SnapshotManager& snap, bool force_all,
                                  bool& used_fallback) const;
  /// Adds/removes `key` under every switch of `footprint` (no-ops while the
  /// test fault freezes index maintenance).
  void index_insert(const std::vector<sdn::SwitchId>& footprint,
                    const Key& key);
  void index_erase(const std::vector<sdn::SwitchId>& footprint,
                   const Key& key);

  const QueryEngine* engine_;
  /// Ordered registry: sweep order (and with it notification order under
  /// simultaneous churn) is deterministic.
  std::map<Key, Subscription> subs_;
  /// Inverted footprint index over the registry, sharded by switch
  /// partition (shard.hpp). Entries exist exactly for evaluated
  /// subscriptions' footprints; updated in the same step as the
  /// post-evaluation footprint move.
  std::array<IndexShard, kSwitchShards> index_;
  /// Subscriptions awaiting their baseline evaluation (no footprint, no
  /// index entries yet). Ordered so selection output stays in Key order.
  std::set<Key> unevaluated_;
  /// Per-client subscription counts (the controller's cap check).
  std::unordered_map<sdn::HostId, std::size_t> per_client_;
  /// Index anchors: the snapshot identity/epoch of the last completed
  /// sweep. dirty_since(swept_epoch_) is a complete wakeup filter only
  /// relative to these (see indexed_wakeups); a mismatch falls back to the
  /// linear scan for that sweep. 0 = no sweep yet.
  std::uint64_t swept_epoch_ = 0;
  std::uint64_t swept_instance_ = 0;
  Stats stats_;
};

}  // namespace rvaas::core
