#include "rvaas/snapshot.hpp"

#include <algorithm>
#include <atomic>

namespace rvaas::core {

using sdn::FlowEntry;
using sdn::FlowUpdateKind;

namespace {

std::vector<FlowEntry> sorted_entries(
    const std::map<sdn::FlowEntryId, FlowEntry>& table) {
  std::vector<FlowEntry> entries;
  entries.reserve(table.size());
  for (const auto& [_, e] : table) entries.push_back(e);
  std::sort(entries.begin(), entries.end(),
            [](const FlowEntry& a, const FlowEntry& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.id > b.id;
            });
  return entries;
}

}  // namespace

std::uint64_t SnapshotManager::next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

void SnapshotManager::record(sim::Time t, sdn::SwitchId sw,
                             FlowUpdateKind kind, const FlowEntry& entry) {
  history_.push_back(HistoryRecord{t, sw, kind, entry});
  while (history_.size() > history_limit_) history_.pop_front();
}

void SnapshotManager::apply_update(const sdn::FlowUpdate& update,
                                   sim::Time now) {
  ++events_applied_;
  bool changed = !tables_.contains(update.sw);  // first appearance
  auto& table = tables_[update.sw];
  switch (update.kind) {
    case FlowUpdateKind::Added:
    case FlowUpdateKind::Modified: {
      const auto it = table.find(update.entry.id);
      changed = changed || it == table.end() || !(it->second == update.entry);
      table[update.entry.id] = update.entry;
      break;
    }
    case FlowUpdateKind::Removed:
      changed = (table.erase(update.entry.id) > 0) || changed;
      break;
  }
  if (changed) bump(update.sw);
  last_confirmed_[update.sw] = now;
  record(now, update.sw, update.kind, update.entry);
}

void SnapshotManager::reconcile(const sdn::StatsReply& reply, sim::Time now) {
  ++polls_applied_;
  bool changed = !tables_.contains(reply.sw);  // first appearance
  auto& table = tables_[reply.sw];

  std::map<sdn::FlowEntryId, const FlowEntry*> actual;
  for (const FlowEntry& e : reply.entries) actual[e.id] = &e;

  // Entries the switch has that we did not know about.
  for (const auto& [id, entry] : actual) {
    const auto it = table.find(id);
    if (it == table.end()) {
      discrepancies_.push_back(Discrepancy{
          now, reply.sw,
          "poll found unknown entry id " + std::to_string(id.value) +
              " (match " + entry->match.to_string() + ")"});
      record(now, reply.sw, FlowUpdateKind::Added, *entry);
      table[id] = *entry;
      changed = true;
    } else if (!(it->second == *entry)) {
      discrepancies_.push_back(Discrepancy{
          now, reply.sw,
          "poll found modified entry id " + std::to_string(id.value)});
      record(now, reply.sw, FlowUpdateKind::Modified, *entry);
      it->second = *entry;
      changed = true;
    }
  }

  // Entries we believed in that the switch no longer has.
  for (auto it = table.begin(); it != table.end();) {
    if (!actual.contains(it->first)) {
      discrepancies_.push_back(Discrepancy{
          now, reply.sw,
          "poll shows entry id " + std::to_string(it->first.value) +
              " vanished"});
      record(now, reply.sw, FlowUpdateKind::Removed, it->second);
      it = table.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }

  if (changed) bump(reply.sw);
  last_confirmed_[reply.sw] = now;
  meters_[reply.sw] = reply.meters;
}

std::map<sdn::SwitchId, std::vector<FlowEntry>> SnapshotManager::table_dump()
    const {
  std::map<sdn::SwitchId, std::vector<FlowEntry>> out;
  for (const auto& [sw, table] : tables_) out[sw] = sorted_entries(table);
  return out;
}

std::vector<FlowEntry> SnapshotManager::table(sdn::SwitchId sw) const {
  const auto it = tables_.find(sw);
  if (it == tables_.end()) return {};
  return sorted_entries(it->second);
}

std::vector<sdn::SwitchId> SnapshotManager::switch_ids() const {
  std::vector<sdn::SwitchId> out;
  out.reserve(tables_.size());
  for (const auto& [sw, _] : tables_) out.push_back(sw);
  return out;
}

const FlowEntry* SnapshotManager::find_entry(sdn::SwitchId sw,
                                             sdn::FlowEntryId id) const {
  const auto table_it = tables_.find(sw);
  if (table_it == tables_.end()) return nullptr;
  const auto it = table_it->second.find(id);
  return it == table_it->second.end() ? nullptr : &it->second;
}

std::uint64_t SnapshotManager::table_epoch(sdn::SwitchId sw) const {
  const auto it = table_epochs_.find(sw);
  return it == table_epochs_.end() ? 0 : it->second;
}

std::vector<sdn::SwitchId> SnapshotManager::dirty_since(
    std::uint64_t since) const {
  std::vector<sdn::SwitchId> out;
  for (const auto& [sw, e] : table_epochs_) {
    if (e > since) out.push_back(sw);
  }
  return out;
}

std::vector<HistoryRecord> SnapshotManager::short_lived(
    sim::Time max_dwell) const {
  std::vector<HistoryRecord> out;
  // For each Added record, look for a matching Removed within max_dwell.
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const HistoryRecord& add = history_[i];
    if (add.kind != FlowUpdateKind::Added) continue;
    for (std::size_t j = i + 1; j < history_.size(); ++j) {
      const HistoryRecord& rem = history_[j];
      if (rem.t - add.t > max_dwell) break;
      if (rem.kind == FlowUpdateKind::Removed && rem.sw == add.sw &&
          rem.entry.id == add.entry.id) {
        out.push_back(add);
        break;
      }
    }
  }
  return out;
}

std::size_t SnapshotManager::entry_count() const {
  std::size_t n = 0;
  for (const auto& [_, table] : tables_) n += table.size();
  return n;
}

std::size_t SnapshotManager::approx_memory_bytes() const {
  // Rough model: a flow entry costs ~sizeof(FlowEntry) plus its match
  // vector; history records add the same per record.
  constexpr std::size_t kPerEntry = sizeof(sdn::FlowEntry) + 64;
  return entry_count() * kPerEntry + history_.size() * (kPerEntry + 24) +
         discrepancies_.size() * 96;
}

}  // namespace rvaas::core
