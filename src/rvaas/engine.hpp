#pragma once
// The RVaaS query engine: pure computation from a configuration snapshot to
// query results, built on the HSA reachability engine. No I/O — the
// controller (rvaas/controller.hpp) feeds it snapshots and dispatches the
// in-band authentication round-trips it prescribes.

#include <array>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "controlplane/routing.hpp"
#include "hsa/reachability.hpp"
#include "rvaas/geo.hpp"
#include "rvaas/query.hpp"
#include "rvaas/shard.hpp"
#include "rvaas/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace rvaas::core {

/// What query answers may reveal about the provider's network (§III:
/// "clients should not be able to infer the topology"). Semantics and
/// rationale are documented in docs/CONFIDENTIALITY.md.
enum class ConfidentialityPolicy {
  EndpointsOnly,  ///< answers name access points only (default)
  FullPaths,      ///< strawman that discloses internal paths (experiment E5)
};

/// Incrementally maintained snapshot→model compiler — the §IV.A.2 hot path.
/// Keyed on (SnapshotManager::instance_id, table epochs): a model() call
/// recompiles only switches whose table content changed since the previous
/// call and reuses every other compiled transfer function. Returned models
/// share the compiled map by shared_ptr; if a previously returned model is
/// still alive when the cache must mutate, it copies-on-write, so models
/// stay immutable. Thread-safe (internal mutex).
class CompiledModelCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;           ///< model() calls
    std::uint64_t full_rebuilds = 0;     ///< first use / snapshot identity change
    std::uint64_t clean_hits = 0;        ///< lookups with zero dirty switches
    std::uint64_t switch_recompiles = 0; ///< per-switch compilations performed
    std::uint64_t switch_hits = 0;       ///< per-switch compilations reused

    /// Fraction of per-switch compilations avoided across all lookups.
    double switch_hit_rate() const {
      const std::uint64_t total = switch_recompiles + switch_hits;
      return total == 0 ? 0.0 : static_cast<double>(switch_hits) / total;
    }
  };

  /// A model of the snapshot's current state, recompiling only dirty
  /// switches. Results are always identical to a cold full compilation.
  /// With a pool, recompilations group by switch partition (shard.hpp) and
  /// fan out — refresh cost tracks the dirty partition, in parallel.
  hsa::NetworkModel model(const sdn::Topology& topo,
                          const SnapshotManager& snap,
                          util::ThreadPool* pool = nullptr);

  /// Drops all compiled state (the next lookup is a full rebuild).
  void invalidate();

  /// TEST-ONLY fault injection: while enabled, every instance stops
  /// refreshing dirty switches and serves its last compiled model unchanged
  /// — a deliberately broken invalidation path that the differential
  /// oracles (src/testing/oracles.hpp) must catch. Never enable outside
  /// tests; affects all instances process-wide.
  static void test_fault_freeze_invalidation(bool on);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<hsa::NetworkTransfer> transfer_;
  std::uint64_t snapshot_id_ = 0;     ///< 0 = nothing cached
  std::uint64_t snapshot_epoch_ = 0;  ///< snapshot epoch at last refresh
  Stats stats_;
};

/// The second cache tier of the verification pipeline (L2; the
/// CompiledModelCache above is L1): memoizes ReachabilityResults keyed by
/// (ingress port, header-space structure, traversal depth) together with the
/// dependency footprint the traversal recorded. On snapshot churn, only
/// entries whose footprint intersects the dirty switches are dropped — a
/// change confined to switches a traversal never consulted cannot alter its
/// result — so steady-state reverification costs O(affected ingresses)
/// instead of O(network). Entries are sharded by ingress switch partition
/// (shard.hpp) with per-shard coverage masks, so the eviction walk visits
/// only shards the churn can touch — eviction cost tracks the dirty
/// partition, not total cache size. Thread-safe; misses compute outside the
/// lock, so concurrent lookups (run_batch, reach_all) parallelize.
class ReachCache {
 public:
  using ResultPtr = std::shared_ptr<const hsa::ReachabilityResult>;

  /// Capacity bound: clients control the query constraint, so distinct
  /// header spaces would otherwise accumulate without limit on a stable
  /// snapshot. Overflow flushes the tier (entries are pure recomputations —
  /// a flush costs misses, never correctness).
  static constexpr std::size_t kMaxEntries = 1 << 14;

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;    ///< served from cache
    std::uint64_t misses = 0;  ///< computed (and, when still current, stored)
    std::uint64_t entries_invalidated = 0;  ///< evicted by footprint overlap
    std::uint64_t full_clears = 0;  ///< snapshot identity changes
    std::uint64_t capacity_flushes = 0;  ///< kMaxEntries overflows
    std::uint64_t shards_walked = 0;   ///< eviction walks into a shard
    std::uint64_t shards_skipped = 0;  ///< shards whose coverage mask proved
                                       ///< them disjoint from the churn

    double hit_rate() const {
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  /// The cached result for (ingress, hs, max_depth) under `snap`'s current
  /// state, computing it on `model` first if absent. `model` must be the
  /// compilation of `snap`'s current state (what QueryEngine::model returns);
  /// results are always identical to a direct model.reach() call.
  ResultPtr reach(const hsa::NetworkModel& model, const SnapshotManager& snap,
                  sdn::PortRef ingress, const hsa::HeaderSpace& hs,
                  std::size_t max_depth);

  /// Drops every entry.
  void invalidate();

  /// TEST-ONLY fault injection: while enabled, snapshot churn no longer
  /// evicts footprint-dirty entries — stale reachability results survive
  /// and the differential oracles must catch them. Never enable outside
  /// tests; affects all instances process-wide.
  static void test_fault_freeze_invalidation(bool on);

  std::size_t size() const;
  Stats stats() const;

 private:
  struct Key {
    sdn::PortRef ingress;
    std::uint64_t space_fingerprint = 0;
    std::size_t max_depth = 0;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    hsa::HeaderSpace hs;  ///< exact key half (fingerprints may collide)
    ResultPtr result;
    /// Shard-partition summary of result->footprint: disjoint from the
    /// dirty mask ⇒ no footprint switch churned (skips the exact
    /// intersect); overlap still confirms via depends_on().
    std::uint32_t footprint_mask = 0;
  };
  /// One switch-partition of the cache (entries home by ingress switch).
  /// Footprints are locality-bound paths near the ingress, so a shard's
  /// coverage mask stays narrow and churn confined to another partition
  /// skips the shard's eviction walk entirely.
  struct Shard {
    /// Fingerprint-keyed buckets; entries within a bucket disambiguate by
    /// structural HeaderSpace equality.
    std::unordered_map<Key, std::vector<Entry>, KeyHash> buckets;
    std::uint32_t coverage = 0;  ///< OR of member entries' footprint masks
    std::size_t entries = 0;
  };

  /// Syncs the cache to `snap`'s change clock: clears on identity change,
  /// evicts footprint-dirty entries on epoch advance — walking only shards
  /// whose coverage mask intersects the churn. Caller holds mu_.
  void validate(const SnapshotManager& snap);
  void clear_entries();

  mutable std::mutex mu_;
  std::array<Shard, kSwitchShards> shards_;
  std::size_t entry_count_ = 0;       ///< total entries across shards
  std::uint64_t snapshot_id_ = 0;     ///< 0 = nothing cached yet
  std::uint64_t validated_epoch_ = 0; ///< snapshot epoch entries are valid at
  Stats stats_;
};

struct EngineConfig {
  ConfidentialityPolicy policy = ConfidentialityPolicy::EndpointsOnly;
  std::size_t max_depth = 64;
};

/// Result of the logical step for endpoint-style queries: the endpoint
/// skeleton plus which access points need in-band authentication.
struct ReachComputation {
  std::vector<EndpointInfo> endpoints;
  /// Access points with hosts behind them, to be probed via auth requests.
  std::vector<sdn::PortRef> to_authenticate;
  /// Switch paths (internal; disclosed only under FullPaths).
  std::vector<std::vector<sdn::SwitchId>> paths;
  /// Loops found along the way (reported as anomalies).
  std::size_t loops = 0;
};

class QueryEngine {
 public:
  QueryEngine(const sdn::Topology& topo, EngineConfig config)
      : topo_(&topo), config_(config) {}

  /// Compiles the snapshot into a logical network model through the
  /// engine's CompiledModelCache: only switches whose table epoch advanced
  /// since the last call are recompiled. Single-query, batch and polling
  /// paths all funnel through here, so they share one cache. Results are
  /// identical to model_uncached(). With a pool (the monitor sweep passes
  /// its own), recompiles fan out grouped by switch partition; never pass a
  /// pool from inside one of its own workers.
  hsa::NetworkModel model(const SnapshotManager& snap,
                          util::ThreadPool* pool = nullptr) const;

  /// Cold path: full recompilation of every switch, bypassing the cache
  /// (the baseline for bench_incremental and the equivalence tests).
  hsa::NetworkModel model_uncached(const SnapshotManager& snap) const;

  /// Counters of the engine's model cache (L1).
  CompiledModelCache::Stats cache_stats() const { return cache_->stats(); }

  /// Counters of the engine's reachability result cache (L2).
  ReachCache::Stats reach_stats() const { return reach_cache_->stats(); }

  /// Cached reachability (the L2 tier): serves (ingress, hs) from the
  /// ReachCache when no dirty switch intersects the stored footprint,
  /// computing on `model` otherwise. Every query path below funnels its
  /// traversals through here.
  ReachCache::ResultPtr reach(const hsa::NetworkModel& model,
                              const SnapshotManager& snap,
                              sdn::PortRef ingress,
                              const hsa::HeaderSpace& hs) const;

  /// One ingress of an all-pairs sweep.
  struct IngressReach {
    sdn::PortRef ingress;
    ReachCache::ResultPtr result;
  };

  /// All-pairs reachability: one reach per access point within `hs`, fanned
  /// out over `pool` and served through / stored into the ReachCache, so a
  /// sweep leaves every per-ingress result warm for the single-query, batch
  /// and federation paths. Results are positionally identical to sequential
  /// engine.reach() calls per access point.
  std::vector<IngressReach> reach_all(const SnapshotManager& snap,
                                      const hsa::HeaderSpace& hs,
                                      util::ThreadPool& pool) const;

  /// As above with a per-call pool (<= 1 runs sequentially inline).
  std::vector<IngressReach> reach_all(const SnapshotManager& snap,
                                      const hsa::HeaderSpace& hs,
                                      std::size_t threads) const;

  /// Converts a client constraint into a header space.
  static hsa::HeaderSpace constraint_space(const sdn::Match& constraint);

  /// Which endpoints can traffic in `hs` injected at `from` reach? The
  /// requester's own access point is excluded (hairpin routes back to the
  /// client are not a disclosure). When `footprint` is non-null, the
  /// dependency footprints of every traversal consulted are appended to it
  /// (unsorted; evaluate() canonicalizes).
  ReachComputation reachable_endpoints(
      const hsa::NetworkModel& model, const SnapshotManager& snap,
      sdn::PortRef from, const hsa::HeaderSpace& hs,
      std::vector<sdn::SwitchId>* footprint = nullptr) const;

  /// Which access points have installed routes reaching `target`?
  ReachComputation reaching_sources(
      const hsa::NetworkModel& model, const SnapshotManager& snap,
      sdn::PortRef target, const hsa::HeaderSpace& hs,
      std::vector<sdn::SwitchId>* footprint = nullptr) const;

  /// Union of both directions (the §IV.B.1 isolation check).
  ReachComputation isolation(
      const hsa::NetworkModel& model, const SnapshotManager& snap,
      sdn::PortRef request_point, const hsa::HeaderSpace& hs,
      std::vector<sdn::SwitchId>* footprint = nullptr) const;

  /// Jurisdictions any traffic in `hs` from `from` may cross.
  std::vector<std::string> geo_jurisdictions(
      const hsa::NetworkModel& model, const SnapshotManager& snap,
      sdn::PortRef from, const hsa::HeaderSpace& hs, const GeoProvider& geo,
      std::vector<sdn::SwitchId>* footprint = nullptr) const;

  struct PathLengthReport {
    bool found = false;
    std::uint32_t installed = 0;  ///< switches on the installed route
    std::uint32_t optimal = 0;    ///< switches on the shortest possible route
  };
  /// Length of the installed route from `from` to the host at `peer_ap`,
  /// against the topology optimum.
  PathLengthReport path_length(const hsa::NetworkModel& model,
                               const SnapshotManager& snap, sdn::PortRef from,
                               sdn::PortRef peer_ap, std::uint32_t peer_ip,
                               std::vector<sdn::SwitchId>* footprint =
                                   nullptr) const;

  /// Meter-based fairness metrics for traffic in `hs` from `from`:
  ///   min-rate-bps       — tightest meter on any of the client's paths
  ///                        (uint64 max if unmetered),
  ///   metered-switches   — how many traversed switches meter this traffic,
  ///   paths              — number of distinct egress spaces considered.
  std::vector<FairnessMetric> fairness(
      const hsa::NetworkModel& model, const SnapshotManager& snap,
      sdn::PortRef from, const hsa::HeaderSpace& hs,
      std::vector<sdn::SwitchId>* footprint = nullptr) const;

  /// Compact representation of the client's transfer function: egress ports
  /// with the cube count of the traffic subspace reaching them.
  std::vector<TransferSummaryEntry> transfer_summary(
      const hsa::NetworkModel& model, const SnapshotManager& snap,
      sdn::PortRef from, const hsa::HeaderSpace& hs,
      std::vector<sdn::SwitchId>* footprint = nullptr) const;

  /// Renders paths for FullPaths mode (E5 leakage strawman).
  static std::vector<std::string> render_paths(
      const std::vector<std::vector<sdn::SwitchId>>& paths);

  /// Hook for PolicyCompliance evaluations, implemented by the federation
  /// layer (rvaas/multiprovider.hpp): walks observed inter-domain crossings
  /// for traffic entering at `from` and reports each against the declared
  /// policies. The engine itself knows nothing about domains — a
  /// PolicyCompliance evaluation without a walker yields an empty report (a
  /// lone domain has no crossings to verify).
  class PolicyWalker {
   public:
    virtual ~PolicyWalker() = default;
    virtual std::vector<PolicyReportItem> walk(
        sdn::PortRef from, const hsa::HeaderSpace& hs) const = 0;
  };

  /// Per-evaluation context: where the request entered the network, the
  /// optional providers some query kinds need, and internal knobs used by
  /// the federation path.
  struct EvalContext {
    sdn::PortRef from{};
    const GeoProvider* geo = nullptr;                     ///< Geo queries
    const control::HostAddressing* addressing = nullptr;  ///< PathLength
    const PolicyWalker* policy = nullptr;  ///< PolicyCompliance queries
    /// Pre-built constraint space overriding the property's Match (federated
    /// crossing spaces are multi-cube and have no Match representation).
    const hsa::HeaderSpace* space_override = nullptr;
    /// Exclude `from` from endpoint answers (hairpins back to the requester
    /// are not a disclosure). Federation keeps hairpins: a border ingress is
    /// not the requester.
    bool exclude_requester = true;
  };
  /// Historical name from the batch-only days; same structure.
  using BatchContext = EvalContext;

  /// The logical step of verifying one Property: everything the engine can
  /// compute from the snapshot alone — THE single per-QueryKind dispatch.
  /// One-shot queries, batches, federated subqueries and the push monitor
  /// all funnel through here. `to_authenticate` lists the access points the
  /// caller (the controller) still has to probe in-band; it never includes
  /// `ctx.from` (unless ctx.exclude_requester is off) and is empty for query
  /// kinds without endpoint answers.
  struct Evaluation {
    QueryReply reply;
    std::vector<sdn::PortRef> to_authenticate;
    /// Union dependency footprint of every reach the evaluation consulted
    /// (sorted ascending): a configuration change confined to switches
    /// outside this set cannot alter the reply. The monitor's wakeup filter.
    /// Note meters are outside the change clock, so a Fairness evaluation
    /// can change without its footprint going dirty — the timer-driven
    /// re-verification sweep covers that.
    std::vector<sdn::SwitchId> footprint;
    /// The primary traversal for endpoint-style kinds (null otherwise);
    /// carries the per-endpoint egress subspaces the federation path needs
    /// to continue a walk across a peering.
    ReachCache::ResultPtr primary_reach;
  };
  Evaluation evaluate(const hsa::NetworkModel& model,
                      const SnapshotManager& snap, const Property& property,
                      const EvalContext& ctx) const;
  /// As above, compiling the snapshot through the L1 cache first.
  Evaluation evaluate(const SnapshotManager& snap, const Property& property,
                      const EvalContext& ctx) const;

  /// The logical step of one query, without expectation/footprint baggage —
  /// a thin adapter over evaluate() kept for the one-shot and batch paths.
  struct Answer {
    QueryReply reply;
    std::vector<sdn::PortRef> to_authenticate;
  };
  Answer answer(const hsa::NetworkModel& model, const SnapshotManager& snap,
                const Query& query, const EvalContext& ctx) const;

  /// Batch path: compiles the snapshot's network model ONCE and answers all
  /// queries against that immutable model, fanned out over `threads` threads
  /// (<= 1 runs sequentially inline). Results are positionally identical to
  /// calling answer() per query, including the confidentiality redaction.
  /// Spawns a pool per call; callers issuing many batches should hold a
  /// util::ThreadPool and use the overload below to amortize thread spawn.
  std::vector<QueryReply> run_batch(const SnapshotManager& snap,
                                    std::span<const Query> queries,
                                    std::size_t threads,
                                    const BatchContext& ctx) const;

  /// As above, fanned out over an existing pool (reused across batches).
  std::vector<QueryReply> run_batch(const SnapshotManager& snap,
                                    std::span<const Query> queries,
                                    util::ThreadPool& pool,
                                    const BatchContext& ctx) const;

  const EngineConfig& config() const { return config_; }
  /// The wiring plan this engine compiles models against.
  const sdn::Topology& topology() const { return *topo_; }

 private:
  ReachComputation from_reach_result(const hsa::ReachabilityResult& r,
                                     std::optional<sdn::PortRef> exclude) const;

  /// reach() plus footprint accumulation (append-only; callers sort+unique).
  ReachCache::ResultPtr reach_tracked(const hsa::NetworkModel& model,
                                      const SnapshotManager& snap,
                                      sdn::PortRef ingress,
                                      const hsa::HeaderSpace& hs,
                                      std::vector<sdn::SwitchId>* fp) const;

  const sdn::Topology* topo_;
  EngineConfig config_;
  /// Heap-held so the engine stays movable (the caches own mutexes).
  mutable std::unique_ptr<CompiledModelCache> cache_ =
      std::make_unique<CompiledModelCache>();
  mutable std::unique_ptr<ReachCache> reach_cache_ =
      std::make_unique<ReachCache>();
};

}  // namespace rvaas::core
