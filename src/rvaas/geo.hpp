#pragma once
// Switch-location providers for geo-location queries (§IV.B.2). The paper
// lists three ways RVaaS can learn switch locations:
//   (1) disclosed by the infrastructure provider,
//   (2) crowd-sourced from client location reports,
//   (3) passively inferred (geo-IP style) from client traffic.
// All three are implemented; experiment E6 measures their accuracy.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "controlplane/routing.hpp"
#include "sdn/topology.hpp"

namespace rvaas::core {

class GeoProvider {
 public:
  virtual ~GeoProvider() = default;
  virtual std::optional<sdn::GeoLocation> locate(sdn::SwitchId sw) const = 0;
  virtual std::string name() const = 0;
};

/// (1) Ground truth disclosed by the infrastructure provider.
class DisclosedGeo : public GeoProvider {
 public:
  explicit DisclosedGeo(const sdn::Topology& topo) : topo_(&topo) {}
  std::optional<sdn::GeoLocation> locate(sdn::SwitchId sw) const override;
  std::string name() const override { return "disclosed"; }

 private:
  const sdn::Topology* topo_;
};

/// (2) Clients report their own locations; a switch is located at the
/// centroid of reports from its access ports, with the majority
/// jurisdiction. Switches without direct reports borrow from the nearest
/// reporting neighbor (BFS).
class CrowdSourcedGeo : public GeoProvider {
 public:
  explicit CrowdSourcedGeo(const sdn::Topology& topo) : topo_(&topo) {}

  void add_report(sdn::PortRef access_point, sdn::GeoLocation reported);

  std::optional<sdn::GeoLocation> locate(sdn::SwitchId sw) const override;
  std::string name() const override { return "crowd-sourced"; }

 private:
  std::optional<sdn::GeoLocation> direct(sdn::SwitchId sw) const;

  const sdn::Topology* topo_;
  std::map<sdn::SwitchId, std::vector<sdn::GeoLocation>> reports_;
};

/// A synthetic geo-IP database: /24 prefix -> jurisdiction.
class GeoIpDb {
 public:
  void add(std::uint32_t ip, std::string jurisdiction) {
    by_prefix_[ip >> 8] = std::move(jurisdiction);
  }
  std::optional<std::string> lookup(std::uint32_t ip) const {
    const auto it = by_prefix_.find(ip >> 8);
    if (it == by_prefix_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::uint32_t, std::string> by_prefix_;
};

/// (3) Passive inference: a switch's jurisdiction is the majority geo-IP
/// jurisdiction of hosts attached to it (coordinates unavailable); switches
/// without hosts borrow from the nearest switch with attached hosts.
class GeoIpGeo : public GeoProvider {
 public:
  GeoIpGeo(const sdn::Topology& topo, const control::HostAddressing& addressing,
           GeoIpDb db)
      : topo_(&topo), addressing_(&addressing), db_(std::move(db)) {}

  std::optional<sdn::GeoLocation> locate(sdn::SwitchId sw) const override;
  std::string name() const override { return "geo-ip"; }

 private:
  std::optional<std::string> direct(sdn::SwitchId sw) const;

  const sdn::Topology* topo_;
  const control::HostAddressing* addressing_;
  GeoIpDb db_;
};

/// The sorted set of jurisdictions touched by any of the given switch paths;
/// switches the provider cannot locate contribute "unknown".
std::vector<std::string> jurisdictions_of(
    const std::vector<std::vector<sdn::SwitchId>>& paths,
    const GeoProvider& geo);

}  // namespace rvaas::core
