#include "rvaas/query.hpp"

#include <algorithm>
#include <sstream>

#include "util/ensure.hpp"
#include "util/fnv.hpp"

namespace rvaas::core {

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::ReachableEndpoints:
      return "reachable-endpoints";
    case QueryKind::ReachingSources:
      return "reaching-sources";
    case QueryKind::Isolation:
      return "isolation";
    case QueryKind::Geo:
      return "geo";
    case QueryKind::PathLength:
      return "path-length";
    case QueryKind::Fairness:
      return "fairness";
    case QueryKind::TransferSummary:
      return "transfer-summary";
    case QueryKind::PolicyCompliance:
      return "policy-compliance";
  }
  return "unknown";
}

const char* to_string(PolicyVerdict verdict) {
  switch (verdict) {
    case PolicyVerdict::Ok:
      return "ok";
    case PolicyVerdict::UnauthorizedOrigin:
      return "unauthorized-origin";
    case PolicyVerdict::RouteLeak:
      return "route-leak";
    case PolicyVerdict::UnexpectedCrossing:
      return "unexpected-crossing";
  }
  return "unknown";
}

void PolicyReportItem::serialize(util::ByteWriter& w) const {
  w.put_u8(static_cast<std::uint8_t>(verdict));
  w.put_u32(from.value);
  w.put_u32(to.value);
  w.put_u32(border.sw.value);
  w.put_u32(border.port.value);
  w.put_u32(ingress.sw.value);
  w.put_u32(ingress.port.value);
  w.put_u64(space_fingerprint);
}

PolicyReportItem PolicyReportItem::deserialize(util::ByteReader& r) {
  PolicyReportItem item;
  const auto verdict = r.get_u8();
  if (verdict > static_cast<std::uint8_t>(PolicyVerdict::UnexpectedCrossing)) {
    throw util::DecodeError("bad policy verdict");
  }
  item.verdict = static_cast<PolicyVerdict>(verdict);
  item.from = ProviderId(r.get_u32());
  item.to = ProviderId(r.get_u32());
  item.border.sw = sdn::SwitchId(r.get_u32());
  item.border.port = sdn::PortNo(r.get_u32());
  item.ingress.sw = sdn::SwitchId(r.get_u32());
  item.ingress.port = sdn::PortNo(r.get_u32());
  item.space_fingerprint = r.get_u64();
  return item;
}

void Query::serialize(util::ByteWriter& w) const {
  w.put_u8(static_cast<std::uint8_t>(kind));
  constraint.serialize(w);
  w.put_bool(peer.has_value());
  if (peer) w.put_u32(peer->value);
}

Query Query::deserialize(util::ByteReader& r) {
  Query q;
  const auto kind = r.get_u8();
  if (kind > static_cast<std::uint8_t>(QueryKind::PolicyCompliance)) {
    throw util::DecodeError("bad query kind");
  }
  q.kind = static_cast<QueryKind>(kind);
  q.constraint = sdn::Match::deserialize(r);
  if (r.get_bool()) q.peer = sdn::HostId(r.get_u32());
  return q;
}

void QueryRequest::serialize(util::ByteWriter& w) const {
  w.put_u64(request_id);
  w.put_u32(client.value);
  query.serialize(w);
}

QueryRequest QueryRequest::deserialize(util::ByteReader& r) {
  QueryRequest req;
  req.request_id = r.get_u64();
  req.client = sdn::HostId(r.get_u32());
  req.query = Query::deserialize(r);
  return req;
}

void EndpointInfo::serialize(util::ByteWriter& w) const {
  w.put_u32(access_point.sw.value);
  w.put_u32(access_point.port.value);
  w.put_bool(dark);
  w.put_bool(authenticated);
  w.put_bool(authenticated_as.has_value());
  if (authenticated_as) w.put_u32(authenticated_as->value);
}

EndpointInfo EndpointInfo::deserialize(util::ByteReader& r) {
  EndpointInfo e;
  e.access_point.sw = sdn::SwitchId(r.get_u32());
  e.access_point.port = sdn::PortNo(r.get_u32());
  e.dark = r.get_bool();
  e.authenticated = r.get_bool();
  if (r.get_bool()) e.authenticated_as = sdn::HostId(r.get_u32());
  return e;
}

void FreshnessInfo::serialize(util::ByteWriter& w) const {
  w.put_u64(max_staleness);
  w.put_u32(static_cast<std::uint32_t>(unreachable.size()));
  for (const sdn::SwitchId sw : unreachable) w.put_u32(sw.value);
}

FreshnessInfo FreshnessInfo::deserialize(util::ByteReader& r) {
  FreshnessInfo f;
  f.max_staleness = r.get_u64();
  const auto n = r.get_u32();
  // No reserve: an oversized length claim must fail on the read, not
  // allocate proportionally to an attacker-chosen count.
  for (std::uint32_t i = 0; i < n; ++i) {
    f.unreachable.push_back(sdn::SwitchId(r.get_u32()));
  }
  return f;
}

void QueryReply::serialize(util::ByteWriter& w) const {
  w.put_u64(request_id);
  w.put_u8(static_cast<std::uint8_t>(kind));

  w.put_u32(static_cast<std::uint32_t>(endpoints.size()));
  for (const EndpointInfo& e : endpoints) e.serialize(w);
  w.put_u32(auth.issued);
  w.put_u32(auth.responded);

  w.put_u32(static_cast<std::uint32_t>(jurisdictions.size()));
  for (const std::string& j : jurisdictions) w.put_string(j);

  w.put_bool(path_found);
  w.put_u32(installed_path_length);
  w.put_u32(optimal_path_length);

  w.put_u32(static_cast<std::uint32_t>(fairness.size()));
  for (const FairnessMetric& m : fairness) {
    w.put_string(m.name);
    w.put_u64(m.value);
  }

  w.put_u32(static_cast<std::uint32_t>(transfer_summary.size()));
  for (const TransferSummaryEntry& t : transfer_summary) {
    w.put_u32(t.egress.sw.value);
    w.put_u32(t.egress.port.value);
    w.put_u32(t.cube_count);
  }

  w.put_u32(static_cast<std::uint32_t>(disclosed_paths.size()));
  for (const std::string& p : disclosed_paths) w.put_string(p);

  w.put_u32(static_cast<std::uint32_t>(policy_report.size()));
  for (const PolicyReportItem& item : policy_report) item.serialize(w);

  freshness.serialize(w);
}

QueryReply QueryReply::deserialize(util::ByteReader& r) {
  QueryReply reply;
  reply.request_id = r.get_u64();
  const auto kind = r.get_u8();
  if (kind > static_cast<std::uint8_t>(QueryKind::PolicyCompliance)) {
    throw util::DecodeError("bad reply kind");
  }
  reply.kind = static_cast<QueryKind>(kind);

  const auto ne = r.get_u32();
  for (std::uint32_t i = 0; i < ne; ++i) {
    reply.endpoints.push_back(EndpointInfo::deserialize(r));
  }
  reply.auth.issued = r.get_u32();
  reply.auth.responded = r.get_u32();

  const auto nj = r.get_u32();
  for (std::uint32_t i = 0; i < nj; ++i) {
    reply.jurisdictions.push_back(r.get_string());
  }

  reply.path_found = r.get_bool();
  reply.installed_path_length = r.get_u32();
  reply.optimal_path_length = r.get_u32();

  const auto nf = r.get_u32();
  for (std::uint32_t i = 0; i < nf; ++i) {
    FairnessMetric m;
    m.name = r.get_string();
    m.value = r.get_u64();
    reply.fairness.push_back(std::move(m));
  }

  const auto nt = r.get_u32();
  for (std::uint32_t i = 0; i < nt; ++i) {
    TransferSummaryEntry t;
    t.egress.sw = sdn::SwitchId(r.get_u32());
    t.egress.port = sdn::PortNo(r.get_u32());
    t.cube_count = r.get_u32();
    reply.transfer_summary.push_back(t);
  }

  const auto np = r.get_u32();
  for (std::uint32_t i = 0; i < np; ++i) {
    reply.disclosed_paths.push_back(r.get_string());
  }

  const auto npol = r.get_u32();
  for (std::uint32_t i = 0; i < npol; ++i) {
    reply.policy_report.push_back(PolicyReportItem::deserialize(r));
  }

  reply.freshness = FreshnessInfo::deserialize(r);
  return reply;
}

util::Bytes QueryReply::signing_payload() const {
  util::ByteWriter w;
  w.put_string("rvaas-reply-v1");
  serialize(w);
  return w.take();
}

void Expectation::serialize(util::ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(allowed_endpoints.size()));
  for (const sdn::HostId h : allowed_endpoints) w.put_u32(h.value);
  w.put_u32(static_cast<std::uint32_t>(allowed_jurisdictions.size()));
  for (const std::string& j : allowed_jurisdictions) w.put_string(j);
  w.put_bool(require_full_auth);
  w.put_bool(require_optimal_path);
  w.put_u64(max_staleness);
}

Expectation Expectation::deserialize(util::ByteReader& r) {
  Expectation e;
  const auto ne = r.get_u32();
  for (std::uint32_t i = 0; i < ne; ++i) {
    e.allowed_endpoints.push_back(sdn::HostId(r.get_u32()));
  }
  const auto nj = r.get_u32();
  for (std::uint32_t i = 0; i < nj; ++i) {
    e.allowed_jurisdictions.push_back(r.get_string());
  }
  e.require_full_auth = r.get_bool();
  e.require_optimal_path = r.get_bool();
  e.max_staleness = r.get_u64();
  return e;
}

void Property::serialize(util::ByteWriter& w) const {
  query().serialize(w);
  expect.serialize(w);
}

Property Property::deserialize(util::ByteReader& r) {
  const Query q = Query::deserialize(r);
  return from_query(q, Expectation::deserialize(r));
}

std::uint64_t Property::fingerprint() const {
  util::ByteWriter w;
  serialize(w);
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const std::uint8_t byte : w.data()) h = util::fnv1a_mix(h, byte);
  return h;
}

void SubscribeRequest::serialize(util::ByteWriter& w) const {
  w.put_u64(subscription_id);
  w.put_u32(client.value);
  w.put_bool(unsubscribe);
  w.put_u8(static_cast<std::uint8_t>(policy));
  property.serialize(w);
  w.put_u64(freshness);
}

SubscribeRequest SubscribeRequest::deserialize(util::ByteReader& r) {
  SubscribeRequest req;
  req.subscription_id = r.get_u64();
  req.client = sdn::HostId(r.get_u32());
  req.unsubscribe = r.get_bool();
  const auto policy = r.get_u8();
  if (policy > static_cast<std::uint8_t>(NotifyPolicy::EveryChange)) {
    throw util::DecodeError("bad notify policy");
  }
  req.policy = static_cast<NotifyPolicy>(policy);
  req.property = Property::deserialize(r);
  req.freshness = r.get_u64();
  return req;
}

util::Bytes SubscribeRequest::signing_payload() const {
  util::ByteWriter w;
  w.put_string("rvaas-subscribe-v1");
  serialize(w);
  return w.take();
}

const char* to_string(NotificationKind kind) {
  switch (kind) {
    case NotificationKind::ViolationAlert:
      return "violation-alert";
    case NotificationKind::AllClear:
      return "all-clear";
    case NotificationKind::VerificationDegraded:
      return "verification-degraded";
  }
  return "unknown";
}

void Notification::serialize(util::ByteWriter& w) const {
  w.put_u64(subscription_id);
  w.put_u64(sequence);
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_u64(epoch);
  w.put_u64(property_fingerprint);
  reply.serialize(w);
}

Notification Notification::deserialize(util::ByteReader& r) {
  Notification n;
  n.subscription_id = r.get_u64();
  n.sequence = r.get_u64();
  const auto kind = r.get_u8();
  if (kind > static_cast<std::uint8_t>(NotificationKind::VerificationDegraded)) {
    throw util::DecodeError("bad notification kind");
  }
  n.kind = static_cast<NotificationKind>(kind);
  n.epoch = r.get_u64();
  n.property_fingerprint = r.get_u64();
  n.reply = QueryReply::deserialize(r);
  return n;
}

util::Bytes Notification::signing_payload() const {
  util::ByteWriter w;
  w.put_string("rvaas-notify-v1");
  serialize(w);
  return w.take();
}

Verdict evaluate_reply(const QueryReply& reply, const Expectation& expect) {
  Verdict v;
  auto violation = [&v](std::string text) {
    v.ok = false;
    v.violations.push_back(std::move(text));
  };

  for (const EndpointInfo& e : reply.endpoints) {
    std::ostringstream at;
    at << e.access_point;
    if (e.dark) {
      violation("traffic can leave at unsupervised (dark) port " + at.str());
      continue;
    }
    if (!e.authenticated) {
      if (expect.require_full_auth) {
        violation("endpoint at " + at.str() + " failed authentication");
      }
      continue;
    }
    if (!expect.allowed_endpoints.empty()) {
      const bool allowed =
          e.authenticated_as &&
          std::find(expect.allowed_endpoints.begin(),
                    expect.allowed_endpoints.end(),
                    *e.authenticated_as) != expect.allowed_endpoints.end();
      if (!allowed) {
        violation("unexpected endpoint host " +
                  std::to_string(e.authenticated_as ? e.authenticated_as->value
                                                    : 0) +
                  " at " + at.str());
      }
    }
  }

  if (reply.auth.responded < reply.auth.issued && expect.require_full_auth) {
    violation("only " + std::to_string(reply.auth.responded) + " of " +
              std::to_string(reply.auth.issued) +
              " authentication requests were answered");
  }

  if (!expect.allowed_jurisdictions.empty()) {
    for (const std::string& j : reply.jurisdictions) {
      if (std::find(expect.allowed_jurisdictions.begin(),
                    expect.allowed_jurisdictions.end(),
                    j) == expect.allowed_jurisdictions.end()) {
        violation("traffic can cross forbidden jurisdiction " + j);
      }
    }
  }

  if (expect.max_staleness > 0) {
    for (const sdn::SwitchId sw : reply.freshness.unreachable) {
      violation("verification degraded: switch " + std::to_string(sw.value) +
                " is unreachable");
    }
    if (reply.freshness.max_staleness > expect.max_staleness) {
      violation("view staleness " +
                std::to_string(reply.freshness.max_staleness) +
                "ns exceeds the client bound " +
                std::to_string(expect.max_staleness) + "ns");
    }
  }

  for (const PolicyReportItem& item : reply.policy_report) {
    if (item.verdict == PolicyVerdict::Ok) continue;
    std::ostringstream at;
    at << item.border;
    violation(std::string("policy violation (") + to_string(item.verdict) +
              ") at domain " + std::to_string(item.from.value) + " -> " +
              std::to_string(item.to.value) + " via " + at.str());
  }

  if (expect.require_optimal_path && reply.kind == QueryKind::PathLength) {
    if (!reply.path_found) {
      violation("no installed path to the requested peer");
    } else if (reply.installed_path_length > reply.optimal_path_length) {
      violation("installed path length " +
                std::to_string(reply.installed_path_length) +
                " exceeds optimum " +
                std::to_string(reply.optimal_path_length));
    }
  }

  return v;
}

}  // namespace rvaas::core
