#include "rvaas/link_prober.hpp"

namespace rvaas::core {

util::Bytes ProbeInfo::signing_payload() const {
  util::ByteWriter w;
  w.put_string("rvaas-lldp-probe-v1");
  w.put_u32(origin.sw.value);
  w.put_u32(origin.port.value);
  w.put_u64(nonce);
  return w.take();
}

sdn::Packet make_probe(const ProbeInfo& info, const enclave::Enclave& enclave) {
  sdn::Packet p;
  p.hdr.eth_type = sdn::kEthTypeLldp;
  util::ByteWriter w;
  w.put_u32(info.origin.sw.value);
  w.put_u32(info.origin.port.value);
  w.put_u64(info.nonce);
  w.put_bytes(enclave.sign(info.signing_payload()).serialize());
  p.payload = w.take();
  return p;
}

bool is_probe(const sdn::Packet& packet) {
  return packet.hdr.eth_type == sdn::kEthTypeLldp;
}

std::optional<ProbeInfo> verify_probe(const sdn::Packet& packet,
                                      const crypto::VerifyKey& rvaas_key) {
  if (!is_probe(packet)) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    ProbeInfo info;
    info.origin.sw = sdn::SwitchId(r.get_u32());
    info.origin.port = sdn::PortNo(r.get_u32());
    info.nonce = r.get_u64();
    util::ByteReader sig_reader(r.get_bytes());
    const crypto::Signature sig = crypto::Signature::deserialize(sig_reader);
    if (!rvaas_key.verify(info.signing_payload(), sig)) return std::nullopt;
    return info;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

std::optional<WiringAlarm> check_probe(const sdn::Topology& topo,
                                       const ProbeInfo& info,
                                       sdn::PortRef arrived_at, sim::Time now) {
  const auto expected = topo.link_peer(info.origin);
  if (expected && *expected == arrived_at) return std::nullopt;
  WiringAlarm alarm;
  alarm.t = now;
  alarm.expected_at = expected.value_or(sdn::PortRef{});
  alarm.observed_at = arrived_at;
  return alarm;
}

}  // namespace rvaas::core
