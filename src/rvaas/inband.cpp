#include "rvaas/inband.hpp"

namespace rvaas::core::inband {

namespace {

sdn::Packet base_udp_packet(std::uint64_t src_eth, std::uint64_t src_ip,
                            std::uint64_t dst_port) {
  sdn::Packet p;
  p.hdr.eth_type = sdn::kEthTypeIpv4;
  p.hdr.ip_proto = sdn::kIpProtoUdp;
  p.hdr.eth_src = src_eth;
  p.hdr.ip_src = src_ip;
  p.hdr.l4_dst = dst_port;
  return p;
}

}  // namespace

std::optional<Tag> classify(const sdn::Packet& packet) {
  if (packet.hdr.eth_type != sdn::kEthTypeIpv4 ||
      packet.hdr.ip_proto != sdn::kIpProtoUdp) {
    return std::nullopt;
  }
  if (packet.payload.size() < 4) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    const auto tag = static_cast<Tag>(r.get_u32());
    switch (tag) {
      case Tag::Request:
      case Tag::AuthReply:
      case Tag::Subscribe:
        if (packet.hdr.l4_dst != sdn::kPortRvaasRequest) return std::nullopt;
        return tag;
      case Tag::AuthRequest:
        if (packet.hdr.l4_dst != sdn::kPortRvaasAuth) return std::nullopt;
        return tag;
      case Tag::Reply:
      case Tag::Notify:
        if (packet.hdr.l4_dst != sdn::kPortRvaasReply) return std::nullopt;
        return tag;
    }
  } catch (const util::DecodeError&) {
  }
  return std::nullopt;
}

sdn::Packet make_request_packet(const control::HostAddress& src,
                                const QueryRequest& request,
                                const crypto::BigUInt& rvaas_box_pub,
                                util::Rng& rng) {
  util::ByteWriter plain;
  request.serialize(plain);
  const crypto::SealedBox box =
      crypto::BoxSealer(rvaas_box_pub).seal(rng, plain.data());

  sdn::Packet p = base_udp_packet(src.eth, src.ip, sdn::kPortRvaasRequest);
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(Tag::Request));
  w.put_bytes(box.serialize());
  p.payload = w.take();
  return p;
}

std::optional<QueryRequest> open_request(const sdn::Packet& packet,
                                         const enclave::Enclave& enclave) {
  if (classify(packet) != Tag::Request) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    r.get_u32();  // tag
    util::ByteReader box_reader(r.get_bytes());
    const crypto::SealedBox box = crypto::SealedBox::deserialize(box_reader);
    const auto plain = enclave.open(box);
    if (!plain) return std::nullopt;
    util::ByteReader pr(*plain);
    QueryRequest req = QueryRequest::deserialize(pr);
    pr.expect_done();
    return req;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

util::Bytes AuthRequest::signing_payload() const {
  util::ByteWriter w;
  w.put_string("rvaas-auth-request-v1");
  w.put_u64(request_id);
  w.put_u64(nonce);
  w.put_u32(target.sw.value);
  w.put_u32(target.port.value);
  return w.take();
}

sdn::Packet make_auth_request(const AuthRequest& req,
                              const enclave::Enclave& enclave) {
  sdn::Packet p = base_udp_packet(0, 0, sdn::kPortRvaasAuth);
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(Tag::AuthRequest));
  w.put_u64(req.request_id);
  w.put_u64(req.nonce);
  w.put_u32(req.target.sw.value);
  w.put_u32(req.target.port.value);
  w.put_bytes(enclave.sign(req.signing_payload()).serialize());
  p.payload = w.take();
  return p;
}

std::optional<AuthRequest> verify_auth_request(
    const sdn::Packet& packet, const crypto::VerifyKey& rvaas_key) {
  if (classify(packet) != Tag::AuthRequest) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    r.get_u32();  // tag
    AuthRequest req;
    req.request_id = r.get_u64();
    req.nonce = r.get_u64();
    req.target.sw = sdn::SwitchId(r.get_u32());
    req.target.port = sdn::PortNo(r.get_u32());
    util::ByteReader sig_reader(r.get_bytes());
    const crypto::Signature sig = crypto::Signature::deserialize(sig_reader);
    if (!rvaas_key.verify(req.signing_payload(), sig)) return std::nullopt;
    return req;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

util::Bytes AuthReply::signing_payload() const {
  util::ByteWriter w;
  w.put_string("rvaas-auth-reply-v1");
  w.put_u64(request_id);
  w.put_u64(nonce);
  w.put_u32(client.value);
  return w.take();
}

sdn::Packet make_auth_reply(const control::HostAddress& src,
                            const AuthReply& reply,
                            const crypto::SigningKey& client_key) {
  sdn::Packet p = base_udp_packet(src.eth, src.ip, sdn::kPortRvaasRequest);
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(Tag::AuthReply));
  w.put_u64(reply.request_id);
  w.put_u64(reply.nonce);
  w.put_u32(reply.client.value);
  w.put_bytes(client_key.sign(reply.signing_payload()).serialize());
  p.payload = w.take();
  return p;
}

std::optional<std::pair<AuthReply, crypto::Signature>> parse_auth_reply(
    const sdn::Packet& packet) {
  if (classify(packet) != Tag::AuthReply) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    r.get_u32();  // tag
    AuthReply reply;
    reply.request_id = r.get_u64();
    reply.nonce = r.get_u64();
    reply.client = sdn::HostId(r.get_u32());
    util::ByteReader sig_reader(r.get_bytes());
    const crypto::Signature sig = crypto::Signature::deserialize(sig_reader);
    return std::make_pair(reply, sig);
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

sdn::Packet make_reply_packet(const QueryReply& reply,
                              const enclave::Enclave& enclave,
                              const crypto::BigUInt& client_box_pub,
                              util::Rng& rng) {
  // Sign, then seal (signature travels inside the box, hidden from the
  // provider along with the content).
  util::ByteWriter inner;
  reply.serialize(inner);
  inner.put_bytes(enclave.sign(reply.signing_payload()).serialize());
  const crypto::SealedBox box =
      crypto::BoxSealer(client_box_pub).seal(rng, inner.data());

  sdn::Packet p = base_udp_packet(0, 0, sdn::kPortRvaasReply);
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(Tag::Reply));
  w.put_bytes(box.serialize());
  p.payload = w.take();
  return p;
}

std::optional<OpenedReply> open_reply(const sdn::Packet& packet,
                                      const crypto::BoxOpener& client_box,
                                      const crypto::VerifyKey& rvaas_key) {
  if (classify(packet) != Tag::Reply) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    r.get_u32();  // tag
    util::ByteReader box_reader(r.get_bytes());
    const crypto::SealedBox box = crypto::SealedBox::deserialize(box_reader);
    const auto plain = client_box.open(box);
    if (!plain) return std::nullopt;

    util::ByteReader pr(*plain);
    OpenedReply out;
    out.reply = QueryReply::deserialize(pr);
    util::ByteReader sig_reader(pr.get_bytes());
    const crypto::Signature sig = crypto::Signature::deserialize(sig_reader);
    pr.expect_done();
    out.signature_ok = rvaas_key.verify(out.reply.signing_payload(), sig);
    return out;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

sdn::Packet make_subscribe_packet(const control::HostAddress& src,
                                  const SubscribeRequest& request,
                                  const crypto::SigningKey& client_key,
                                  const crypto::BigUInt& rvaas_box_pub,
                                  util::Rng& rng) {
  // Sign, then seal (the signature rides inside the box, hidden from the
  // provider along with the subscription itself).
  util::ByteWriter plain;
  request.serialize(plain);
  plain.put_bytes(client_key.sign(request.signing_payload()).serialize());
  const crypto::SealedBox box =
      crypto::BoxSealer(rvaas_box_pub).seal(rng, plain.data());

  sdn::Packet p = base_udp_packet(src.eth, src.ip, sdn::kPortRvaasRequest);
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(Tag::Subscribe));
  w.put_bytes(box.serialize());
  p.payload = w.take();
  return p;
}

std::optional<std::pair<SubscribeRequest, crypto::Signature>> open_subscribe(
    const sdn::Packet& packet, const enclave::Enclave& enclave) {
  if (classify(packet) != Tag::Subscribe) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    r.get_u32();  // tag
    util::ByteReader box_reader(r.get_bytes());
    const crypto::SealedBox box = crypto::SealedBox::deserialize(box_reader);
    const auto plain = enclave.open(box);
    if (!plain) return std::nullopt;
    util::ByteReader pr(*plain);
    SubscribeRequest req = SubscribeRequest::deserialize(pr);
    util::ByteReader sig_reader(pr.get_bytes());
    const crypto::Signature sig = crypto::Signature::deserialize(sig_reader);
    pr.expect_done();
    return std::make_pair(std::move(req), sig);
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

sdn::Packet make_notify_packet(const Notification& notification,
                               const enclave::Enclave& enclave,
                               const crypto::BigUInt& client_box_pub,
                               util::Rng& rng) {
  // Sign, then seal — same envelope as a query reply, so the provider can
  // neither read nor forge an alert (nor tell one from a reply).
  util::ByteWriter inner;
  notification.serialize(inner);
  inner.put_bytes(enclave.sign(notification.signing_payload()).serialize());
  const crypto::SealedBox box =
      crypto::BoxSealer(client_box_pub).seal(rng, inner.data());

  sdn::Packet p = base_udp_packet(0, 0, sdn::kPortRvaasReply);
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(Tag::Notify));
  w.put_bytes(box.serialize());
  p.payload = w.take();
  return p;
}

std::optional<OpenedNotification> open_notify(
    const sdn::Packet& packet, const crypto::BoxOpener& client_box,
    const crypto::VerifyKey& rvaas_key) {
  if (classify(packet) != Tag::Notify) return std::nullopt;
  try {
    util::ByteReader r(packet.payload);
    r.get_u32();  // tag
    util::ByteReader box_reader(r.get_bytes());
    const crypto::SealedBox box = crypto::SealedBox::deserialize(box_reader);
    const auto plain = client_box.open(box);
    if (!plain) return std::nullopt;

    util::ByteReader pr(*plain);
    OpenedNotification out;
    out.notification = Notification::deserialize(pr);
    util::ByteReader sig_reader(pr.get_bytes());
    const crypto::Signature sig = crypto::Signature::deserialize(sig_reader);
    pr.expect_done();
    out.signature_ok =
        rvaas_key.verify(out.notification.signing_payload(), sig);
    return out;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace rvaas::core::inband
