#include "controlplane/provider.hpp"

#include <deque>
#include <set>

#include "util/ensure.hpp"

namespace rvaas::control {

using sdn::Field;
using sdn::FlowMod;
using sdn::HostId;
using sdn::Match;
using sdn::PortRef;
using sdn::SwitchId;

namespace {

constexpr std::uint16_t kIngressPriority = 10;
constexpr std::uint16_t kCorePriority = 8;

/// Per-destination shortest-path tree: for each switch, the hop taking
/// traffic one step closer to the root.
std::map<SwitchId, PathHop> bfs_tree(const sdn::Topology& topo, SwitchId root) {
  std::map<SwitchId, PathHop> next_hop;
  std::deque<SwitchId> queue{root};
  std::set<SwitchId> seen{root};
  while (!queue.empty()) {
    const SwitchId cur = queue.front();
    queue.pop_front();
    for (const PortRef port : topo.internal_ports(cur)) {
      const auto peer = topo.link_peer(port);
      if (!peer || seen.contains(peer->sw)) continue;
      seen.insert(peer->sw);
      // From peer->sw, going out of peer->port reaches cur (toward root).
      next_hop[peer->sw] = PathHop{*peer, port};
      queue.push_back(peer->sw);
    }
  }
  return next_hop;
}

}  // namespace

ProviderController::ProviderController(sdn::ControllerId id,
                                       ProviderConfig config, util::Rng rng)
    : id_(id), config_(std::move(config)), rng_(std::move(rng)) {}

void ProviderController::connect(sdn::Network& net,
                                 const crypto::SigningKey& key) {
  net_ = &net;
  handle_ = &net.attach_controller(*this, key);
}

sdn::Network::ControllerHandle& ProviderController::handle() {
  util::ensure(handle_ != nullptr, "provider not connected");
  return *handle_;
}

std::optional<TenantSpec> ProviderController::tenant_of(HostId host) const {
  for (const TenantSpec& t : config_.tenants) {
    for (const HostId member : t.members) {
      if (member == host) return t;
    }
  }
  return std::nullopt;
}

void ProviderController::install_routing() {
  util::ensure(net_ != nullptr && handle_ != nullptr, "provider not connected");
  const sdn::Topology& topo = net_->topology();

  // Access-port guard rules: traffic entering at a host port that matches no
  // ingress rule is dropped (priority between ingress and core). Without
  // this, hosts could inject pre-tagged packets straight into other tenants'
  // VLANs (and RVaaS would rightly report the resulting reachability).
  for (const SwitchId sw : topo.switches()) {
    for (const PortRef ap : topo.access_ports(sw)) {
      FlowMod guard;
      guard.priority = 9;
      guard.cookie = 0x9a4d;
      guard.match = Match().in_port(ap.port);
      guard.actions = {sdn::drop()};
      handle_->flow_mod(sw, guard);
    }
  }

  for (const TenantSpec& tenant : config_.tenants) {
    // Per-tenant meters.
    const auto meter_it = config_.tenant_meters.find(tenant.id);
    const std::optional<sdn::MeterId> meter =
        meter_it != config_.tenant_meters.end()
            ? std::optional<sdn::MeterId>(sdn::MeterId(tenant.vlan))
            : std::nullopt;
    if (meter) {
      for (const SwitchId sw : topo.switches()) {
        sdn::MeterMod mm;
        mm.id = *meter;
        mm.config = meter_it->second;
        handle_->meter_mod(sw, mm);
      }
    }

    for (const HostId dst : tenant.members) {
      const auto dst_ports = topo.host_ports(dst);
      if (dst_ports.empty()) continue;
      const PortRef dst_ap = dst_ports.front();
      const std::uint32_t dst_ip = config_.addressing.of(dst).ip;
      const auto tree = bfs_tree(topo, dst_ap.sw);

      // Egress rule at the destination switch: strip the tenant tag and
      // hand the packet to the host port.
      {
        FlowMod mod;
        mod.priority = kCorePriority;
        mod.cookie = dst.value;
        mod.match = Match()
                        .exact(Field::Vlan, tenant.vlan)
                        .exact(Field::IpDst, dst_ip);
        mod.actions = {sdn::DecTtlAction{}, sdn::PopVlanAction{},
                       sdn::output(dst_ap.port)};
        mod.meter = meter;
        handle_->flow_mod(dst_ap.sw, mod);
      }

      // Core rules along the whole tree toward dst.
      for (const auto& [sw, hop] : tree) {
        FlowMod mod;
        mod.priority = kCorePriority;
        mod.cookie = dst.value;
        mod.match = Match()
                        .exact(Field::Vlan, tenant.vlan)
                        .exact(Field::IpDst, dst_ip);
        mod.actions = {sdn::DecTtlAction{}, sdn::output(hop.out.port)};
        mod.meter = meter;
        handle_->flow_mod(sw, mod);
      }

      // Ingress tagging rules at every other member's access point, plus a
      // route record for bookkeeping.
      for (const HostId src : tenant.members) {
        if (src == dst) continue;
        const auto src_ports = topo.host_ports(src);
        if (src_ports.empty()) continue;
        const PortRef src_ap = src_ports.front();

        FlowMod mod;
        mod.priority = kIngressPriority;
        mod.cookie = dst.value;
        mod.match =
            Match().in_port(src_ap.port).exact(Field::IpDst, dst_ip);
        mod.meter = meter;

        InstalledRoute route;
        route.src = src;
        route.dst = dst;
        route.path.ingress = src_ap;
        route.path.egress = dst_ap;

        if (src_ap.sw == dst_ap.sw) {
          mod.actions = {sdn::DecTtlAction{}, sdn::output(dst_ap.port)};
        } else {
          const auto hop_it = tree.find(src_ap.sw);
          util::ensure(hop_it != tree.end(), "tenant spans disconnected switches");
          mod.actions = {sdn::PushVlanAction{tenant.vlan}, sdn::DecTtlAction{},
                         sdn::output(hop_it->second.out.port)};
          // Record the tree walk as the route path.
          SwitchId walk = src_ap.sw;
          while (walk != dst_ap.sw) {
            const PathHop& hop = tree.at(walk);
            route.path.hops.push_back(hop);
            walk = hop.in.sw;
          }
        }
        const SwitchId ingress_sw = src_ap.sw;
        auto* routes = &routes_;
        InstalledRoute record = route;
        handle_->flow_mod(ingress_sw, mod,
                          [routes, record](SwitchId sw,
                                           const sdn::FlowModResult& result) mutable {
                            if (result.ok()) {
                              record.entries.emplace_back(sw, *result.id);
                              routes->push_back(std::move(record));
                            }
                          });
      }
    }
  }
}

std::optional<std::vector<SwitchId>> ProviderController::route_switches(
    HostId src, HostId dst) const {
  for (const InstalledRoute& r : routes_) {
    if (r.src == src && r.dst == dst) return r.path.switches();
  }
  return std::nullopt;
}

void ProviderController::enable_traceroute_responder(bool spoof_expected_path) {
  traceroute_responder_ = true;
  traceroute_spoof_ = spoof_expected_path;
}

std::vector<SwitchId> expected_traceroute_path(const sdn::Topology& topo,
                                               PortRef from_ap, PortRef to_ap) {
  const auto path = shortest_switch_path(topo, from_ap.sw, to_ap.sw);
  return path.value_or(std::vector<SwitchId>{});
}

void ProviderController::on_packet_in(const sdn::PacketIn& msg) {
  if (!traceroute_responder_ ||
      msg.reason != sdn::PacketInReason::TtlExpired) {
    return;
  }
  // Identify the probing host by source IP; reply at its access point.
  const auto src_host = config_.addressing.host_by_ip(
      static_cast<std::uint32_t>(msg.packet.hdr.ip_src));
  if (!src_host) return;
  const auto src_ports = net_->topology().host_ports(*src_host);
  if (src_ports.empty()) return;

  // The probe encodes its original TTL in l4_src (hop correlation).
  const auto hop = static_cast<std::uint32_t>(msg.packet.hdr.l4_src);

  SwitchId reported = msg.sw;
  if (traceroute_spoof_) {
    // Report the switch an *honest* shortest path would traverse at this
    // hop, hiding any diversion. Probes whose TTL exceeds the cover story's
    // path length get NO reply — on the pretended path they would have
    // reached the destination without expiring.
    const auto dst_host = config_.addressing.host_by_ip(
        static_cast<std::uint32_t>(msg.packet.hdr.ip_dst));
    if (dst_host) {
      const auto dst_ports = net_->topology().host_ports(*dst_host);
      if (!dst_ports.empty()) {
        const auto expected = expected_traceroute_path(
            net_->topology(), src_ports.front(), dst_ports.front());
        if (hop >= 1 && hop <= expected.size()) {
          reported = expected[hop - 1];
        } else {
          return;
        }
      }
    }
  }

  sdn::PacketOut reply;
  reply.sw = src_ports.front().sw;
  reply.actions = {sdn::output(src_ports.front().port)};
  reply.packet.hdr.eth_type = sdn::kEthTypeIpv4;
  reply.packet.hdr.ip_proto = sdn::kIpProtoUdp;
  reply.packet.hdr.ip_dst = msg.packet.hdr.ip_src;
  reply.packet.hdr.l4_dst = 33435;  // traceroute reply port
  util::ByteWriter w;
  w.put_string("TRRT");
  w.put_u32(reported.value);
  w.put_u32(hop);
  reply.packet.payload = w.take();
  handle_->packet_out(reply);
}

}  // namespace rvaas::control
