#pragma once
// Routing primitives shared by the provider controller, attack injectors and
// baselines: host addressing, switch-graph shortest paths, and port-level
// route computation (optionally via a waypoint).

#include <map>
#include <optional>
#include <vector>

#include "sdn/topology.hpp"

namespace rvaas::control {

/// L2/L3 addresses assigned to a host NIC.
struct HostAddress {
  std::uint64_t eth = 0;  ///< 48-bit MAC
  std::uint32_t ip = 0;   ///< IPv4
};

/// Deterministic address plan: host h gets MAC 02:00:00:00:hh:hh and IP
/// 10.x.y.z derived from its id.
class HostAddressing {
 public:
  void assign(sdn::HostId host);
  const HostAddress& of(sdn::HostId host) const;
  std::optional<sdn::HostId> host_by_ip(std::uint32_t ip) const;
  const std::map<sdn::HostId, HostAddress>& all() const { return table_; }

  static HostAddress derive(sdn::HostId host);

 private:
  std::map<sdn::HostId, HostAddress> table_;
};

/// One inter-switch hop: leave through `out`, arrive at `in`.
struct PathHop {
  sdn::PortRef out;
  sdn::PortRef in;
};

/// A port-level route between two access points.
struct RoutePath {
  sdn::PortRef ingress;  ///< source access point
  sdn::PortRef egress;   ///< destination access point
  std::vector<PathHop> hops;

  /// Switches traversed, in order (ingress switch first).
  std::vector<sdn::SwitchId> switches() const;
  std::size_t length() const { return hops.size(); }
};

/// BFS shortest path over the switch graph. nullopt if disconnected.
std::optional<std::vector<sdn::SwitchId>> shortest_switch_path(
    const sdn::Topology& topo, sdn::SwitchId from, sdn::SwitchId to);

/// Port-level shortest route between access points.
std::optional<RoutePath> compute_route(const sdn::Topology& topo,
                                       sdn::PortRef from_ap,
                                       sdn::PortRef to_ap);

/// Route forced through a waypoint switch (used by the geo-diversion
/// attack): shortest(from, via) + shortest(via, to).
std::optional<RoutePath> compute_route_via(const sdn::Topology& topo,
                                           sdn::PortRef from_ap,
                                           sdn::PortRef to_ap,
                                           sdn::SwitchId waypoint);

}  // namespace rvaas::control
