#include "controlplane/routing.hpp"

#include <deque>
#include <set>

#include "util/ensure.hpp"

namespace rvaas::control {

using sdn::PortRef;
using sdn::SwitchId;

void HostAddressing::assign(sdn::HostId host) { table_[host] = derive(host); }

HostAddress HostAddressing::derive(sdn::HostId host) {
  HostAddress a;
  a.eth = 0x020000000000ULL | host.value;
  // 10.x.y.1 with a distinct /24 per host (so prefix-granular geo-IP
  // databases can distinguish hosts); unique for host ids < 2^16.
  a.ip = 0x0a000000u | ((host.value & 0xffffu) << 8) | 1u;
  return a;
}

const HostAddress& HostAddressing::of(sdn::HostId host) const {
  const auto it = table_.find(host);
  util::ensure(it != table_.end(), "host has no address assigned");
  return it->second;
}

std::optional<sdn::HostId> HostAddressing::host_by_ip(std::uint32_t ip) const {
  for (const auto& [host, addr] : table_) {
    if (addr.ip == ip) return host;
  }
  return std::nullopt;
}

std::vector<SwitchId> RoutePath::switches() const {
  std::vector<SwitchId> out;
  out.push_back(ingress.sw);
  for (const PathHop& hop : hops) out.push_back(hop.in.sw);
  return out;
}

std::optional<std::vector<SwitchId>> shortest_switch_path(
    const sdn::Topology& topo, SwitchId from, SwitchId to) {
  util::ensure(topo.has_switch(from) && topo.has_switch(to),
               "unknown switch in path query");
  if (from == to) return std::vector<SwitchId>{from};

  std::map<SwitchId, SwitchId> parent;
  std::deque<SwitchId> queue{from};
  std::set<SwitchId> seen{from};
  while (!queue.empty()) {
    const SwitchId cur = queue.front();
    queue.pop_front();
    for (const PortRef port : topo.internal_ports(cur)) {
      const auto peer = topo.link_peer(port);
      if (!peer || seen.contains(peer->sw)) continue;
      seen.insert(peer->sw);
      parent[peer->sw] = cur;
      if (peer->sw == to) {
        std::vector<SwitchId> path{to};
        SwitchId walk = to;
        while (walk != from) {
          walk = parent.at(walk);
          path.push_back(walk);
        }
        return std::vector<SwitchId>(path.rbegin(), path.rend());
      }
      queue.push_back(peer->sw);
    }
  }
  return std::nullopt;
}

namespace {

/// Finds a link (out-port on `from`, in-port on `to`) between two switches.
std::optional<PathHop> link_between(const sdn::Topology& topo, SwitchId from,
                                    SwitchId to) {
  for (const PortRef port : topo.internal_ports(from)) {
    const auto peer = topo.link_peer(port);
    if (peer && peer->sw == to) return PathHop{port, *peer};
  }
  return std::nullopt;
}

std::optional<RoutePath> route_along(const sdn::Topology& topo,
                                     PortRef from_ap, PortRef to_ap,
                                     const std::vector<SwitchId>& switches) {
  RoutePath route;
  route.ingress = from_ap;
  route.egress = to_ap;
  for (std::size_t i = 0; i + 1 < switches.size(); ++i) {
    const auto hop = link_between(topo, switches[i], switches[i + 1]);
    if (!hop) return std::nullopt;
    route.hops.push_back(*hop);
  }
  return route;
}

}  // namespace

std::optional<RoutePath> compute_route(const sdn::Topology& topo,
                                       PortRef from_ap, PortRef to_ap) {
  const auto switches = shortest_switch_path(topo, from_ap.sw, to_ap.sw);
  if (!switches) return std::nullopt;
  return route_along(topo, from_ap, to_ap, *switches);
}

std::optional<RoutePath> compute_route_via(const sdn::Topology& topo,
                                           PortRef from_ap, PortRef to_ap,
                                           SwitchId waypoint) {
  const auto first = shortest_switch_path(topo, from_ap.sw, waypoint);
  const auto second = shortest_switch_path(topo, waypoint, to_ap.sw);
  if (!first || !second) return std::nullopt;
  std::vector<SwitchId> combined = *first;
  combined.insert(combined.end(), second->begin() + 1, second->end());
  // Via-routes may revisit switches (e.g. a dead-end detour that doubles
  // back); each visit enters through a different port, so in-port-scoped
  // rules can still express the route.
  return route_along(topo, from_ap, to_ap, combined);
}

}  // namespace rvaas::control
