#pragma once
// The provider's network controller: installs tenant routing (VLAN-isolated
// shortest paths), QoS meters, and answers TTL-expiry punts (traceroute
// support). This is the component the paper's threat model assumes to be
// COMPROMISED — attack injectors (attacks/attacks.hpp) drive it to install
// malicious state through its legitimate, authenticated channels.

#include <map>
#include <vector>

#include "controlplane/routing.hpp"
#include "sdn/network.hpp"

namespace rvaas::control {

/// A tenant: an isolation domain with a VLAN id and member hosts.
struct TenantSpec {
  sdn::TenantId id{};
  std::uint16_t vlan = 0;
  std::vector<sdn::HostId> members;
};

struct ProviderConfig {
  std::vector<TenantSpec> tenants;
  HostAddressing addressing;
  /// Meter rate per tenant (0 = unmetered), for the QoS/fairness scenarios.
  std::map<sdn::TenantId, sdn::MeterConfig> tenant_meters;
};

/// Record of an installed route (used by attacks to find cloneable rules and
/// by experiments as ground truth).
struct InstalledRoute {
  sdn::HostId src;
  sdn::HostId dst;
  RoutePath path;
  std::vector<std::pair<sdn::SwitchId, sdn::FlowEntryId>> entries;
};

class ProviderController : public sdn::Controller {
 public:
  ProviderController(sdn::ControllerId id, ProviderConfig config,
                     util::Rng rng);

  sdn::ControllerId id() const override { return id_; }

  /// Authenticates to all switches. Must be called before install_routing.
  void connect(sdn::Network& net, const crypto::SigningKey& key);

  /// Installs VLAN-isolated pairwise shortest-path routes between all tenant
  /// members, plus per-tenant meters where configured.
  void install_routing();

  /// Answers TTL-expired punts with traceroute replies (see
  /// baselines/traceroute.hpp). In spoofing mode the compromised controller
  /// reports the switch the prober *expects* instead of the true one.
  void enable_traceroute_responder(bool spoof_expected_path);

  void on_packet_in(const sdn::PacketIn& msg) override;

  const ProviderConfig& config() const { return config_; }
  const std::vector<InstalledRoute>& routes() const { return routes_; }
  sdn::Network::ControllerHandle& handle();
  const HostAddressing& addressing() const { return config_.addressing; }

  /// Tenant a host belongs to (first match).
  std::optional<TenantSpec> tenant_of(sdn::HostId host) const;

  /// The switches on the installed route between two hosts, if routed.
  std::optional<std::vector<sdn::SwitchId>> route_switches(
      sdn::HostId src, sdn::HostId dst) const;

 private:
  void install_route(const TenantSpec& tenant, sdn::HostId src,
                     sdn::HostId dst);

  sdn::ControllerId id_;
  ProviderConfig config_;
  util::Rng rng_;
  sdn::Network* net_ = nullptr;
  sdn::Network::ControllerHandle* handle_ = nullptr;
  std::vector<InstalledRoute> routes_;
  bool traceroute_responder_ = false;
  bool traceroute_spoof_ = false;
};

/// Value used for "expected path" spoofing: the provider pretends the packet
/// followed the shortest path even when the real rules divert it.
std::vector<sdn::SwitchId> expected_traceroute_path(
    const sdn::Topology& topo, sdn::PortRef from_ap, sdn::PortRef to_ap);

}  // namespace rvaas::control
