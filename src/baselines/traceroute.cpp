#include "baselines/traceroute.hpp"

#include "util/ensure.hpp"

namespace rvaas::baselines {

using sdn::HostId;
using sdn::SwitchId;

TracerouteVerifier::TracerouteVerifier(
    sdn::Network& net, const control::HostAddressing& addressing)
    : net_(&net), addressing_(&addressing) {}

TracerouteResult TracerouteVerifier::run(HostId src, HostId dst,
                                         std::uint32_t max_ttl,
                                         sim::Time wait) {
  const auto src_ports = net_->topology().host_ports(src);
  util::ensure(!src_ports.empty(), "source host has no access point");
  const sdn::PortRef src_ap = src_ports.front();

  replies_.clear();
  reply_count_ = 0;
  net_->register_host_receiver(src, [this](sdn::PortRef, const sdn::Packet& p) {
    if (p.hdr.l4_dst != sdn::kPortTracerouteReply) return;
    try {
      util::ByteReader r(p.payload);
      if (r.get_string() != "TRRT") return;
      const SwitchId sw(r.get_u32());
      const std::uint32_t hop = r.get_u32();
      if (hop >= 1 && !replies_.contains(hop)) {
        replies_[hop] = sw;
        ++reply_count_;
      }
    } catch (const util::DecodeError&) {
    }
  });

  TracerouteResult result;
  const control::HostAddress& src_addr = addressing_->of(src);
  const control::HostAddress& dst_addr = addressing_->of(dst);
  for (std::uint32_t ttl = 1; ttl <= max_ttl; ++ttl) {
    sdn::Packet probe;
    probe.hdr.eth_type = sdn::kEthTypeIpv4;
    probe.hdr.ip_proto = sdn::kIpProtoUdp;
    probe.hdr.eth_src = src_addr.eth;
    probe.hdr.ip_src = src_addr.ip;
    probe.hdr.ip_dst = dst_addr.ip;
    probe.hdr.l4_dst = sdn::kPortTraceroute;
    probe.hdr.l4_src = ttl;  // hop correlation
    probe.ttl = static_cast<std::uint8_t>(ttl);
    net_->host_send(src, src_ap, probe);
    ++result.probes_sent;
  }

  net_->loop().run_until(net_->loop().now() + wait);

  std::uint32_t last = 0;
  for (const auto& [hop, _] : replies_) last = std::max(last, hop);
  result.discovered.assign(last, SwitchId(0));
  for (const auto& [hop, sw] : replies_) result.discovered[hop - 1] = sw;
  result.replies = reply_count_;
  return result;
}

bool TracerouteVerifier::deviates(const TracerouteResult& result,
                                  const std::vector<SwitchId>& expected) {
  for (std::size_t i = 0; i < result.discovered.size(); ++i) {
    if (i >= expected.size()) return true;  // longer than expected
    if (result.discovered[i] != SwitchId(0) &&
        result.discovered[i] != expected[i]) {
      return true;
    }
  }
  return false;
}

}  // namespace rvaas::baselines
