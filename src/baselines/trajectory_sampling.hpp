#pragma once
// Trajectory-sampling baseline (Duffield & Grossglauser style): switches
// sample packets of a flow and report their labels to a collector, from
// which the flow's trajectory is reconstructed.
//
// Crucial trust property (and why the paper dismisses it in adversarial
// settings): the COLLECTOR belongs to the provider. A compromised provider
// censors reports from switches that are not on the path the client expects,
// so the reconstructed trajectory always looks clean. We model the sampling
// plane faithfully at switch granularity (reports derive from the true data
// plane walk) and expose both an honest and an adversarial collector.

#include "controlplane/provider.hpp"
#include "sdn/network.hpp"

namespace rvaas::baselines {

struct SamplingResult {
  /// Switches that (claim to have) observed the flow.
  std::vector<sdn::SwitchId> reported;
  /// Ground truth (what honest sampling would have reported).
  std::vector<sdn::SwitchId> actual;
};

class TrajectorySampling {
 public:
  TrajectorySampling(sdn::Network& net,
                     const control::HostAddressing& addressing)
      : net_(&net), addressing_(&addressing) {}

  /// Samples the flow src->dst. With `adversarial_collector`, reports are
  /// censored down to the switches on `expected` (the provider's cover
  /// story); otherwise the true traversal is reported.
  SamplingResult sample_flow(sdn::HostId src, sdn::HostId dst,
                             const std::vector<sdn::SwitchId>& expected,
                             bool adversarial_collector);

  /// Deviation verdict for the verifier: a reported switch off the expected
  /// path, or an expected switch missing from the reports.
  static bool deviates(const SamplingResult& result,
                       const std::vector<sdn::SwitchId>& expected);

 private:
  sdn::Network* net_;
  const control::HostAddressing* addressing_;
};

}  // namespace rvaas::baselines
