#include "baselines/path_tagging.hpp"

#include "util/ensure.hpp"

namespace rvaas::baselines {

using sdn::HostId;
using sdn::SwitchId;

std::uint64_t path_tag(const std::vector<SwitchId>& path) {
  // FNV-1a over the switch id sequence: order-sensitive, cheap to model as
  // a per-hop header update.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const SwitchId sw : path) {
    h ^= sw.value;
    h *= 0x100000001b3ULL;
  }
  return h;
}

TaggingResult PathTagging::send_tagged(HostId src, HostId dst,
                                       const std::vector<SwitchId>& expected,
                                       bool adversarial_rewrite) {
  const auto src_ports = net_->topology().host_ports(src);
  util::ensure(!src_ports.empty(), "source host has no access point");

  sdn::Packet packet;
  packet.hdr.eth_type = sdn::kEthTypeIpv4;
  packet.hdr.ip_proto = sdn::kIpProtoUdp;
  packet.hdr.ip_src = addressing_->of(src).ip;
  packet.hdr.ip_dst = addressing_->of(dst).ip;

  const sdn::Trajectory trajectory = net_->trace(src_ports.front(), packet);

  TaggingResult result;
  const auto dst_ports = net_->topology().host_ports(dst);
  for (const auto& delivery : trajectory.deliveries) {
    if (delivery.host != dst) continue;
    result.delivered = true;
    std::vector<SwitchId> walked;
    for (const auto& hop : delivery.path) walked.push_back(hop.in.sw);
    result.actual_tag = path_tag(walked);
    result.observed_tag =
        adversarial_rewrite ? path_tag(expected) : result.actual_tag;
    break;
  }
  (void)dst_ports;
  return result;
}

bool PathTagging::deviates(const TaggingResult& result,
                           const std::vector<SwitchId>& expected) {
  if (!result.delivered) return true;  // flow blackholed
  return result.observed_tag != path_tag(expected);
}

}  // namespace rvaas::baselines
