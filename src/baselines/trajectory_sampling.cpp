#include "baselines/trajectory_sampling.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace rvaas::baselines {

using sdn::HostId;
using sdn::SwitchId;

SamplingResult TrajectorySampling::sample_flow(
    HostId src, HostId dst, const std::vector<SwitchId>& expected,
    bool adversarial_collector) {
  const auto src_ports = net_->topology().host_ports(src);
  util::ensure(!src_ports.empty(), "source host has no access point");

  sdn::Packet packet;
  packet.hdr.eth_type = sdn::kEthTypeIpv4;
  packet.hdr.ip_proto = sdn::kIpProtoUdp;
  packet.hdr.eth_src = addressing_->of(src).eth;
  packet.hdr.ip_src = addressing_->of(src).ip;
  packet.hdr.ip_dst = addressing_->of(dst).ip;
  packet.hdr.l4_dst = 4739;  // IPFIX-ish

  // Honest sampling reports every switch the packet actually traverses.
  const sdn::Trajectory trajectory =
      net_->trace(src_ports.front(), packet);

  SamplingResult result;
  result.actual = trajectory.traversed_switches();
  if (!adversarial_collector) {
    result.reported = result.actual;
  } else {
    // Censoring collector: only switches on the expected path survive.
    for (const SwitchId sw : result.actual) {
      if (std::find(expected.begin(), expected.end(), sw) != expected.end()) {
        result.reported.push_back(sw);
      }
    }
  }
  return result;
}

bool TrajectorySampling::deviates(const SamplingResult& result,
                                  const std::vector<SwitchId>& expected) {
  for (const SwitchId sw : result.reported) {
    if (std::find(expected.begin(), expected.end(), sw) == expected.end()) {
      return true;  // observed off-path
    }
  }
  for (const SwitchId sw : expected) {
    if (std::find(result.reported.begin(), result.reported.end(), sw) ==
        result.reported.end()) {
      return true;  // expected hop silent
    }
  }
  return false;
}

}  // namespace rvaas::baselines
