#pragma once
// Traceroute baseline: TTL-expiry path discovery, fully in-band and
// event-driven. The paper argues (§I) such tools are "insufficient in
// non-cooperative and adversarial environments: an unreliable network
// operator may simply not reply with the correct information" — the
// provider's spoofing mode (ProviderController::enable_traceroute_responder)
// realizes exactly that counter-strategy, and experiment E2 scores it.

#include "controlplane/provider.hpp"
#include "sdn/network.hpp"

namespace rvaas::baselines {

struct TracerouteResult {
  /// Discovered switch per hop (index 0 = first hop); 0 = no reply.
  std::vector<sdn::SwitchId> discovered;
  std::uint32_t probes_sent = 0;
  std::uint32_t replies = 0;
};

class TracerouteVerifier {
 public:
  TracerouteVerifier(sdn::Network& net,
                     const control::HostAddressing& addressing);

  /// Probes the route src -> dst with TTLs 1..max_ttl, then waits for the
  /// replies (drives the event loop).
  TracerouteResult run(sdn::HostId src, sdn::HostId dst,
                       std::uint32_t max_ttl = 16,
                       sim::Time wait = 20 * sim::kMillisecond);

  /// Verification verdict: does the discovered path differ from the
  /// client-expected (shortest) path? Missing replies beyond the expected
  /// length are not counted as deviations (probes that reached the
  /// destination get no expiry reply).
  static bool deviates(const TracerouteResult& result,
                       const std::vector<sdn::SwitchId>& expected);

 private:
  sdn::Network* net_;
  const control::HostAddressing* addressing_;
  std::map<std::uint32_t, sdn::SwitchId> replies_;  // hop -> switch
  std::uint32_t reply_count_ = 0;
};

}  // namespace rvaas::baselines
