#pragma once
// Path-tagging baseline (packet-labeling / path-query style, cf. Narayana et
// al.): every switch folds its identity into a tag carried by the packet;
// the receiver compares the accumulated tag against the expected path's tag.
//
// Adversarial counter-strategy (why the paper rules such schemes out, §I):
// the compromised control plane installs an egress rule that REWRITES the
// tag to the expected value, erasing any trace of a diversion. We model the
// tag accumulation from the true data-plane walk and expose both modes.

#include "controlplane/provider.hpp"
#include "sdn/network.hpp"

namespace rvaas::baselines {

/// Order-sensitive fold of a switch path into a 64-bit tag.
std::uint64_t path_tag(const std::vector<sdn::SwitchId>& path);

struct TaggingResult {
  std::uint64_t observed_tag = 0;  ///< what the receiver saw
  std::uint64_t actual_tag = 0;    ///< tag of the true path
  bool delivered = false;
};

class PathTagging {
 public:
  PathTagging(sdn::Network& net, const control::HostAddressing& addressing)
      : net_(&net), addressing_(&addressing) {}

  /// Sends a tagged flow src->dst. With `adversarial_rewrite`, the egress
  /// normalizes the tag to `path_tag(expected)`.
  TaggingResult send_tagged(sdn::HostId src, sdn::HostId dst,
                            const std::vector<sdn::SwitchId>& expected,
                            bool adversarial_rewrite);

  static bool deviates(const TaggingResult& result,
                       const std::vector<sdn::SwitchId>& expected);

 private:
  sdn::Network* net_;
  const control::HostAddressing* addressing_;
};

}  // namespace rvaas::baselines
