#include "testing/schedule.hpp"

#include <cctype>
#include <iterator>
#include <sstream>

#include "util/rng.hpp"

namespace rvaas::fuzz {

const char* to_string(StepKind kind) {
  switch (kind) {
    case StepKind::Settle:
      return "settle";
    case StepKind::FlowChurn:
      return "flow-churn";
    case StepKind::RemoveChurn:
      return "remove-churn";
    case StepKind::MeterChurn:
      return "meter-churn";
    case StepKind::Query:
      return "query";
    case StepKind::Subscribe:
      return "subscribe";
    case StepKind::Unsubscribe:
      return "unsubscribe";
    case StepKind::LaunchAttack:
      return "launch-attack";
    case StepKind::RevertAttack:
      return "revert-attack";
    case StepKind::SnapshotReset:
      return "snapshot-reset";
    case StepKind::MassSubscribe:
      return "mass-subscribe";
    case StepKind::InjectDrop:
      return "inject-drop";
    case StepKind::InjectDelay:
      return "inject-delay";
    case StepKind::InjectPartition:
      return "inject-partition";
    case StepKind::InjectCrash:
      return "inject-crash";
    case StepKind::HealFaults:
      return "heal-faults";
  }
  return "unknown";
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Linear:
      return "linear";
    case TopologyKind::Ring:
      return "ring";
    case TopologyKind::Grid:
      return "grid";
  }
  return "unknown";
}

std::string Schedule::repro() const {
  std::ostringstream os;
  os << "rvaas-fuzz-v1 cfg=" << static_cast<unsigned>(config.topology) << ','
     << config.topo_size << ',' << config.tenant_count << ','
     << static_cast<unsigned>(config.polling) << ','
     << (config.federation ? 1 : 0) << ',' << config.seed << " steps=";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) os << ';';
    os << static_cast<unsigned>(steps[i].kind) << ':' << steps[i].a << ':'
       << steps[i].b << ':' << steps[i].c;
  }
  return os.str();
}

std::optional<Schedule> parse_repro(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  is >> magic;
  if (magic != "rvaas-fuzz-v1") return std::nullopt;

  const auto expect_prefix = [&is](std::string_view prefix) {
    std::string token;
    // Read up to and including the '=' of the named field.
    char ch = 0;
    while (is.get(ch)) {
      if (ch == '=') break;
      if (!std::isspace(static_cast<unsigned char>(ch))) token.push_back(ch);
    }
    return token == prefix;
  };

  Schedule out;
  if (!expect_prefix("cfg")) return std::nullopt;
  unsigned topology = 0;
  unsigned polling = 0;
  unsigned federation = 0;
  char sep = 0;
  if (!(is >> topology >> sep && sep == ',')) return std::nullopt;
  if (!(is >> out.config.topo_size >> sep && sep == ',')) return std::nullopt;
  if (!(is >> out.config.tenant_count >> sep && sep == ',')) {
    return std::nullopt;
  }
  if (!(is >> polling >> sep && sep == ',')) return std::nullopt;
  if (!(is >> federation >> sep && sep == ',')) return std::nullopt;
  if (!(is >> out.config.seed)) return std::nullopt;
  if (topology >= kTopologyKindCount || polling > 2 || federation > 1) {
    return std::nullopt;
  }
  // Range-check the numeric fields too: a hand-edited repro must be
  // rejected here, not abort deep inside topology/scenario construction.
  switch (static_cast<TopologyKind>(topology)) {
    case TopologyKind::Linear:
    case TopologyKind::Ring:
      if (out.config.topo_size < 3 || out.config.topo_size > 16) {
        return std::nullopt;
      }
      break;
    case TopologyKind::Grid:
      // Harness map code, not a switch count (see kMaxGridSizeCode).
      if (out.config.topo_size > kMaxGridSizeCode) return std::nullopt;
      break;
  }
  if (out.config.tenant_count < 1 || out.config.tenant_count > 8) {
    return std::nullopt;
  }
  // Federation requires the known wiring of workload::linear; a repro
  // claiming it on another shape would silently replay without oracle (c).
  if (federation != 0 &&
      static_cast<TopologyKind>(topology) != TopologyKind::Linear) {
    return std::nullopt;
  }
  out.config.topology = static_cast<TopologyKind>(topology);
  out.config.polling = static_cast<std::uint8_t>(polling);
  out.config.federation = federation != 0;

  if (!expect_prefix("steps")) return std::nullopt;
  // Consume everything that remains and strip whitespace: repro lines get
  // wrapped when pasted into docs or commit messages, and a wrap must not
  // silently truncate the schedule to its first fragment.
  std::string steps_text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  std::erase_if(steps_text, [](unsigned char ch) { return std::isspace(ch); });
  if (steps_text.empty()) return out;  // zero-step schedule is valid
  std::istringstream ss(steps_text);
  std::string step_token;
  while (std::getline(ss, step_token, ';')) {
    std::istringstream st(step_token);
    unsigned kind = 0;
    Step step;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(st >> kind >> c1 >> step.a >> c2 >> step.b >> c3 >> step.c) ||
        c1 != ':' || c2 != ':' || c3 != ':' || kind >= kStepKindCount) {
      return std::nullopt;
    }
    step.kind = static_cast<StepKind>(kind);
    out.steps.push_back(step);
  }
  return out;
}

Schedule generate_schedule(std::uint64_t seed, std::uint32_t max_grid_code,
                           bool include_faults) {
  util::Rng rng(seed ^ 0xf055'5eed'0000'0001ull);
  Schedule out;
  out.config.seed = seed;

  // Topology: mostly small lines (cheap, dark ports everywhere), some rings
  // and grids for wider shapes. Federation only on lines (the flat-reference
  // oracle needs the known wiring of workload::linear).
  const std::uint64_t shape = rng.below(8);
  if (shape < 5) {
    out.config.topology = TopologyKind::Linear;
    out.config.topo_size = 3 + static_cast<std::uint32_t>(rng.below(4));
    out.config.federation = rng.below(2) == 0;
  } else if (shape < 7) {
    out.config.topology = TopologyKind::Ring;
    out.config.topo_size = 4 + static_cast<std::uint32_t>(rng.below(3));
  } else {
    out.config.topology = TopologyKind::Grid;
    // Full grid range up to 4x4 (harness size codes 0..4): the canonical
    // header-space form with bounded lazy diffs keeps adversarial
    // exact-match rule mixes on large grids tractable, so they are sweep
    // material again.
    out.config.topo_size =
        static_cast<std::uint32_t>(rng.below(max_grid_code + 1));
  }
  out.config.tenant_count = rng.below(2) == 0 ? 2 : 1;
  out.config.polling = static_cast<std::uint8_t>(rng.below(3));

  const std::size_t step_count = 6 + rng.below(7);  // 6..12
  out.steps.reserve(step_count);
  for (std::size_t i = 0; i < step_count; ++i) {
    Step step;
    // Weighted kind draw: churn and attacks dominate; bookkeeping steps
    // (unsubscribe, resets) stay rare. The fault-free table is frozen —
    // pinned corpora replay against it — so faults get their own table
    // instead of new thresholds spliced into the old one.
    const std::uint64_t w = rng.below(100);
    if (!include_faults) {
      if (w < 24) {
        step.kind = StepKind::FlowChurn;
      } else if (w < 38) {
        step.kind = StepKind::LaunchAttack;
      } else if (w < 50) {
        step.kind = StepKind::Settle;
      } else if (w < 62) {
        step.kind = StepKind::Subscribe;
      } else if (w < 72) {
        step.kind = StepKind::Query;
      } else if (w < 80) {
        step.kind = StepKind::RevertAttack;
      } else if (w < 85) {
        step.kind = StepKind::RemoveChurn;
      } else if (w < 90) {
        step.kind = StepKind::MeterChurn;
      } else if (w < 94) {
        step.kind = StepKind::MassSubscribe;
      } else if (w < 97) {
        step.kind = StepKind::Unsubscribe;
      } else {
        step.kind = StepKind::SnapshotReset;
      }
    } else {
      if (w < 18) {
        step.kind = StepKind::FlowChurn;
      } else if (w < 28) {
        step.kind = StepKind::LaunchAttack;
      } else if (w < 38) {
        step.kind = StepKind::Settle;
      } else if (w < 47) {
        step.kind = StepKind::Subscribe;
      } else if (w < 55) {
        step.kind = StepKind::Query;
      } else if (w < 61) {
        step.kind = StepKind::RevertAttack;
      } else if (w < 65) {
        step.kind = StepKind::RemoveChurn;
      } else if (w < 69) {
        step.kind = StepKind::MeterChurn;
      } else if (w < 72) {
        step.kind = StepKind::MassSubscribe;
      } else if (w < 74) {
        step.kind = StepKind::Unsubscribe;
      } else if (w < 76) {
        step.kind = StepKind::SnapshotReset;
      } else if (w < 83) {
        step.kind = StepKind::InjectDrop;
      } else if (w < 89) {
        step.kind = StepKind::InjectDelay;
      } else if (w < 94) {
        step.kind = StepKind::InjectPartition;
      } else if (w < 97) {
        step.kind = StepKind::InjectCrash;
      } else {
        step.kind = StepKind::HealFaults;
      }
    }
    step.a = static_cast<std::uint32_t>(rng.below(1u << 16));
    step.b = static_cast<std::uint32_t>(rng.below(1u << 16));
    step.c = static_cast<std::uint32_t>(rng.below(1u << 16));
    out.steps.push_back(step);
  }
  if (include_faults) {
    // Every fault run ends with a heal: the post-heal convergence clause of
    // the fault-equivalence oracle must get its shot on every schedule.
    Step heal;
    heal.kind = StepKind::HealFaults;
    out.steps.push_back(heal);
  }
  return out;
}

}  // namespace rvaas::fuzz
