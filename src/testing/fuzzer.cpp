#include "testing/fuzzer.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "attacks/attacks.hpp"
#include "rvaas/multiprovider.hpp"
#include "sdn/fault_plane.hpp"
#include "testing/oracles.hpp"
#include "util/ensure.hpp"
#include "workload/scenario.hpp"
#include "workload/topo_gen.hpp"

namespace rvaas::fuzz {

namespace {

using core::ClientAgent;
using core::Expectation;
using core::NotifyPolicy;
using core::Property;
using core::ProviderId;
using core::Query;
using core::QueryKind;
using sdn::Field;
using sdn::FlowMod;
using sdn::HostId;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

/// Loop time given to every step before the oracles run: covers the control
/// round trips, the coalesced monitor sweep and its auth round (5 ms
/// timeout) plus the notification push.
constexpr sim::Time kStepSettle = 8 * sim::kMillisecond;
/// Legitimate replies land within ~7 ms simulated (auth_timeout 5 ms plus
/// transport); double that still detects suppression by timeout while
/// keeping suppressed waits (and the monitor churn they span) short.
constexpr sim::Time kQueryTimeout = 15 * sim::kMillisecond;
/// Flapping attacks cycle for a bounded burst: long enough for several
/// install/remove windows, short enough that the monitor's per-cycle sweep
/// and re-auth load stays proportionate in a tier-1 sweep.
constexpr sim::Time kFlappingRun = 40 * sim::kMillisecond;
/// Traversal depth for every engine the harness runs (the runtime's, the
/// peer domain's, and the flat reference). The fuzz topologies have at
/// most 16 switches (4x4 grid), so no legitimate path — attack detours
/// included — comes near this bound; it exists to cap the winding-path
/// walks adversarial churn can induce on loopy (ring/grid) shapes. All
/// engines share one value: a depth asymmetry between the federated walk
/// (budget resets per domain) and the flat reference would itself be a
/// divergence.
constexpr std::size_t kReachDepth = 32;
constexpr std::uint64_t kChurnCookieBase = 0xc4000000ull;
constexpr std::uint64_t kFlappingCookie = 0xf1a9;
constexpr std::size_t kMaxTrackedSubs = 3;

/// Honesty bound for oracle (f): a switch hard-faulted (100% drop or
/// partitioned) continuously for this long must not read Healthy. With
/// fixed 20 ms polling, a 2 ms deadline and degraded_after = 1, the first
/// missed deadline lands within ~22 ms of the fault in the worst case
/// (fault right after a poll round); 30 ms leaves margin for retry jitter.
constexpr sim::Time kHonestyBound = 30 * sim::kMillisecond;
/// Post-heal reconvergence: settle-and-recheck rounds and their length.
/// 8 x 25 ms covers several fixed poll periods, the Unreachable circuit
/// probe cadence, and the tail of a bounded flapping burst (kFlappingRun).
constexpr int kConvergeRounds = 8;
constexpr sim::Time kConvergeSettle = 25 * sim::kMillisecond;

// Peer-domain id spaces (federation schedules), disjoint from every
// workload generator (switches start at 1, hosts at 1000).
constexpr std::uint32_t kPeerSwitchBase = 900;
constexpr std::uint32_t kPeerHostBase = 5000;
constexpr std::uint32_t kPeerSize = 3;

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

class Runner {
 public:
  explicit Runner(Schedule schedule) : sched_(std::move(schedule)) { build(); }

  FuzzReport run() {
    for (std::size_t i = 0; i < sched_.steps.size() && !failure_; ++i) {
      step_index_ = i;
      apply_step(sched_.steps[i]);
      runtime_->settle(kStepSettle);
      if (peer_) peer_->settle(kStepSettle);
      if (!failure_) run_oracles();
      report_.steps_run = i + 1;
    }
    report_.failure = failure_;
    return report_;
  }

 private:
  struct SubState {
    std::optional<core::QueryReply> last_reply;
    bool bad_signature = false;
    std::uint64_t events = 0;
  };
  struct TrackedSub {
    HostId client{};
    std::uint64_t id = 0;
    Property property;
    std::shared_ptr<SubState> state;
  };
  struct ChurnRule {
    bool peer_domain = false;
    SwitchId sw{};
    std::shared_ptr<std::optional<sdn::FlowEntryId>> id;
  };
  struct ActiveAttack {
    int cls = 0;  ///< 0 exfil, 1 join, 2 geo, 3 breach, 4 flapping, 5 suppr.
    std::unique_ptr<attacks::Attack> attack;
    attacks::AttackRecord record;
    HostId detect_client{};
    Query detect_query;
    Expectation expect;
    std::vector<HostId> involved;  ///< hosts later attacks must stay off
    sim::Time flap_dwell = 0;
    SwitchId suppressed_switch{};
  };

  // --- construction ---

  void build() {
    workload::ScenarioConfig cfg;
    switch (sched_.config.topology) {
      case TopologyKind::Linear:
        cfg.generated = workload::linear(sched_.config.topo_size);
        break;
      case TopologyKind::Ring:
        cfg.generated = workload::ring(sched_.config.topo_size);
        break;
      case TopologyKind::Grid: {
        // Size-code → dimensions map (kMaxGridSizeCode caps the code).
        static constexpr std::pair<std::size_t, std::size_t> kGridDims[] = {
            {2, 2}, {3, 2}, {3, 3}, {4, 3}, {4, 4}};
        const auto [cols, rows] =
            kGridDims[std::min<std::uint32_t>(sched_.config.topo_size,
                                              kMaxGridSizeCode)];
        cfg.generated = workload::grid(cols, rows);
        break;
      }
    }
    cfg.tenant_count = sched_.config.tenant_count;
    cfg.seed = sched_.config.seed;
    switch (sched_.config.polling) {
      case 0:
        cfg.rvaas.polling = core::PollingMode::Randomized;
        break;
      case 1:
        cfg.rvaas.polling = core::PollingMode::Fixed;
        break;
      default:
        cfg.rvaas.polling = core::PollingMode::Disabled;
        break;
    }
    cfg.rvaas.poll_period = 20 * sim::kMillisecond;
    cfg.rvaas.max_reach_depth = kReachDepth;
    has_faults_ = std::any_of(
        sched_.steps.begin(), sched_.steps.end(),
        [](const Step& s) { return s.kind >= StepKind::InjectDrop; });
    if (has_faults_) {
      // Degraded-health timing (poll deadlines, backoff, recovery) must be
      // deterministic relative to the schedule; randomized polling would
      // jitter it and disabled polling could never detect or recover from
      // a fault at all.
      cfg.rvaas.polling = core::PollingMode::Fixed;
    }
    runtime_ = std::make_unique<workload::ScenarioRuntime>(std::move(cfg));
    geo_ = std::make_unique<core::DisclosedGeo>(runtime_->network().topology());
    if (has_faults_) {
      fault_plane_ = std::make_unique<sdn::FaultPlane>(sched_.config.seed ^
                                                       0xfa017a4e0000000dull);
      // Scope to the RVaaS verifier (ControllerId(2) in scenario.cpp): the
      // provider channel and the in-band client path stay fault-free, so
      // data-plane ground truth is identical to a fault-free run.
      fault_plane_->set_scope(sdn::ControllerId(2));
      runtime_->network().set_fault_plane(fault_plane_.get());
    }

    // The flat-reference oracle needs the known wiring of workload::linear.
    if (sched_.config.federation &&
        sched_.config.topology == TopologyKind::Linear) {
      build_federation();
    }
  }

  void build_federation() {
    workload::GeneratedTopology peer_gen;
    workload::append_linear_segment(peer_gen.topo, kPeerSwitchBase, kPeerSize,
                                    kPeerHostBase, &peer_gen.hosts);
    workload::ScenarioConfig pc;
    pc.generated = std::move(peer_gen);
    pc.seed = sched_.config.seed ^ 0x9e3779b9ull;
    pc.rvaas.max_reach_depth = kReachDepth;
    peer_ = std::make_unique<workload::ScenarioRuntime>(std::move(pc));

    border_a_ = PortRef{SwitchId(sched_.config.topo_size), PortNo(3)};
    ingress_b_ = PortRef{SwitchId(kPeerSwitchBase), PortNo(0)};

    workload::append_linear_segment(flat_topo_, 1, sched_.config.topo_size,
                                    1000, nullptr);
    workload::append_linear_segment(flat_topo_, kPeerSwitchBase, kPeerSize,
                                    kPeerHostBase, nullptr);
    flat_topo_.add_link(border_a_, ingress_b_);

    fed_.add_domain(ProviderId(1), runtime_->rvaas());
    fed_.add_domain(ProviderId(2), peer_->rvaas());
    fed_.add_peering(ProviderId(1), border_a_, ProviderId(2), ingress_b_);
  }

  // --- resolution helpers ---

  const std::vector<HostId>& hosts() const { return runtime_->hosts(); }
  HostId pick_host(std::uint32_t x) const {
    return hosts()[x % hosts().size()];
  }
  PortRef access_point(HostId host) const {
    return runtime_->network().topology().host_ports(host).front();
  }
  bool suppressed_client(HostId host) const {
    return suppressed_.count(access_point(host).sw) > 0;
  }
  bool routing_attack_active() const {
    return std::any_of(attacks_.begin(), attacks_.end(),
                       [](const ActiveAttack& a) { return a.cls <= 3; });
  }
  bool flapping_tracked() const {
    return std::any_of(attacks_.begin(), attacks_.end(),
                       [](const ActiveAttack& a) { return a.cls == 4; });
  }
  /// true while a flapping attack is still cycling — the window where the
  /// configuration changes between a push and a comparison query by design.
  bool flapping_cycling() const {
    return std::any_of(attacks_.begin(), attacks_.end(), [](const ActiveAttack&
                                                                a) {
      return a.cls == 4 && static_cast<const attacks::ReconfigFlappingAttack*>(
                               a.attack.get())
                               ->cycling();
    });
  }
  bool host_involved(HostId host) const {
    for (const ActiveAttack& a : attacks_) {
      if (std::find(a.involved.begin(), a.involved.end(), host) !=
          a.involved.end()) {
        return true;
      }
    }
    return false;
  }
  std::vector<HostId> tenant_members(HostId host) const {
    const auto tenant = runtime_->provider().tenant_of(host);
    return tenant ? tenant->members : std::vector<HostId>{};
  }

  void fail(std::string oracle, std::string detail) {
    if (failure_) return;  // first failure wins
    failure_ = FuzzFailure{step_index_, std::move(oracle), std::move(detail)};
  }

  Query make_query(std::uint32_t kind_sel, std::uint32_t shape) const {
    Query q;
    q.kind = static_cast<QueryKind>(kind_sel % 7);
    if (q.kind == QueryKind::PathLength) q.peer = pick_host(shape);
    switch (shape % 3) {
      case 0:
        break;  // all of the client's traffic
      case 1:
        q.constraint = Match().exact(
            Field::IpDst,
            runtime_->addressing().of(pick_host(shape / 3)).ip);
        break;
      default:
        q.constraint = Match().exact(Field::IpProto, sdn::kIpProtoUdp);
        break;
    }
    return q;
  }

  // --- step execution ---

  void apply_step(const Step& step) {
    switch (step.kind) {
      case StepKind::Settle:
        runtime_->settle((1 + step.a % 8) * sim::kMillisecond);
        if (peer_) peer_->settle((1 + step.a % 8) * sim::kMillisecond);
        return;
      case StepKind::FlowChurn:
        return do_flow_churn(step);
      case StepKind::RemoveChurn:
        return do_remove_churn(step);
      case StepKind::MeterChurn:
        return do_meter_churn(step);
      case StepKind::Query:
        return do_query(step);
      case StepKind::Subscribe:
        return do_subscribe(step);
      case StepKind::Unsubscribe:
        return do_unsubscribe(step);
      case StepKind::LaunchAttack:
        return do_launch_attack(step);
      case StepKind::RevertAttack:
        return do_revert_attack(step);
      case StepKind::SnapshotReset:
        runtime_->reset_rvaas_snapshot_identity();
        ++report_.snapshot_resets;
        return;
      case StepKind::MassSubscribe:
        return do_mass_subscribe(step);
      case StepKind::InjectDrop:
        return do_inject_drop(step);
      case StepKind::InjectDelay:
        return do_inject_delay(step);
      case StepKind::InjectPartition:
        return do_inject_partition(step);
      case StepKind::InjectCrash:
        return do_inject_crash(step);
      case StepKind::HealFaults:
        return do_heal_faults();
    }
  }

  // --- control-channel faults ---

  SwitchId fault_switch(std::uint32_t x) const {
    const auto switches = runtime_->network().topology().switches();
    return switches[x % switches.size()];
  }

  void do_inject_drop(const Step& step) {
    if (!fault_plane_) return;
    const SwitchId sw = fault_switch(step.a);
    sdn::FaultSpec spec;
    spec.drop_probability = 0.25 * (1 + step.b % 4);
    if (step.c % 4 == 0) spec.duplicate_probability = 0.25;
    fault_plane_->set_fault(sw, sdn::FaultDirection::ToSwitch, spec);
    fault_plane_->set_fault(sw, sdn::FaultDirection::FromSwitch, spec);
    fault_shadow_.insert(sw);
    if (spec.drop_probability >= 1.0) {
      // Total outage: the honesty clause starts its clock (keep the
      // earliest start if the switch was already dark).
      drop_hard_since_.emplace(sw, runtime_->loop().now());
    } else {
      // set_fault overwrote both directions; a previous total outage ended.
      drop_hard_since_.erase(sw);
    }
    ++report_.faults_injected;
  }

  void do_inject_delay(const Step& step) {
    if (!fault_plane_) return;
    const SwitchId sw = fault_switch(step.a);
    sdn::FaultSpec spec;
    spec.extra_delay_max = (1 + step.b % 5) * sim::kMillisecond;
    fault_plane_->set_fault(sw, sdn::FaultDirection::ToSwitch, spec);
    fault_plane_->set_fault(sw, sdn::FaultDirection::FromSwitch, spec);
    fault_shadow_.insert(sw);
    drop_hard_since_.erase(sw);  // spec overwrite ends any total drop
    ++report_.faults_injected;
  }

  void do_inject_partition(const Step& step) {
    if (!fault_plane_) return;
    const auto switches = runtime_->network().topology().switches();
    const std::size_t count = 1 + step.c % 3;
    const sim::Time now = runtime_->loop().now();
    const sim::Time until = now + (5 + step.b % 6) * sim::kMillisecond;
    for (std::size_t k = 0; k < count; ++k) {
      const SwitchId sw = switches[(step.a + k) % switches.size()];
      fault_plane_->partition(sw, until);
      fault_shadow_.insert(sw);
      const auto [it, inserted] =
          partitions_.try_emplace(sw, PartitionWindow{now, until});
      if (!inserted) {
        if (it->second.until >= now) {
          // Contiguous extension: the honesty clock keeps the old start.
          it->second.until = std::max(it->second.until, until);
        } else {
          it->second = PartitionWindow{now, until};
        }
      }
    }
    ++report_.faults_injected;
  }

  void do_inject_crash(const Step& step) {
    if (!fault_plane_) return;
    const SwitchId sw = fault_switch(step.a);
    fault_plane_->crash_agent(sw);
    // Voided in-flight replies can leave the view briefly behind ground
    // truth (the next poll repairs it), so the switch joins the shadow.
    fault_shadow_.insert(sw);
    ++report_.faults_injected;
  }

  void do_heal_faults() {
    ++report_.fault_heals;
    if (!fault_plane_) return;
    fault_plane_->heal_all();
    drop_hard_since_.clear();
    partitions_.clear();
    // Oracle (f) clause 3 — fail-stale must END: within a bounded number
    // of poll periods every channel snaps back to Healthy, staleness reads
    // zero and the view is byte-identical to ground truth.
    std::optional<std::string> last;
    for (int round = 0; round < kConvergeRounds; ++round) {
      runtime_->settle(kConvergeSettle);
      if (peer_) peer_->settle(kConvergeSettle);
      if (flapping_cycling()) continue;  // bounded burst; let it finish
      FaultOracleInput in;
      in.runtime = runtime_.get();
      in.client = pick_host(static_cast<std::uint32_t>(step_index_));
      in.path_peer = pick_host(static_cast<std::uint32_t>(step_index_) + 1);
      in.skip_fairness = meters_dirty_;
      in.strict = true;
      in.checks = &report_.fault_checks;
      last = check_fault_equivalence(in);
      if (!last) break;
    }
    if (last) {
      fail("fault-convergence", *last);
      return;
    }
    fault_shadow_.clear();
  }

  void do_flow_churn(const Step& step) {
    const bool to_peer = peer_ != nullptr && step.a % 4 == 0;
    workload::ScenarioRuntime& rt = to_peer ? *peer_ : *runtime_;
    const auto switches = rt.network().topology().switches();
    const SwitchId sw = switches[step.b % switches.size()];
    const std::uint32_t num_ports = rt.network().switch_sim(sw).num_ports();

    FlowMod mod;
    // Strictly below the attack injectors' priority (30): churn may shadow
    // provider routing but never an installed attack, so ground-truth
    // detection stays decidable under arbitrary interleavings.
    mod.priority = static_cast<std::uint16_t>(1 + step.a % 29);
    mod.cookie = kChurnCookieBase | churn_seq_++;
    switch (step.c % 3) {
      case 0:
        mod.match = Match().exact(Field::L4Dst, 7000 + (step.c / 3) % 8);
        break;
      case 1: {
        const HostId h = rt.hosts()[(step.c / 3) % rt.hosts().size()];
        mod.match = Match().exact(Field::IpDst, rt.addressing().of(h).ip);
        break;
      }
      default:
        mod.match = Match()
                        .in_port(PortNo((step.c / 3) % num_ports))
                        .exact(Field::IpProto, sdn::kIpProtoTcp);
        break;
    }
    std::uint32_t out_port = (step.c / 24) % num_ports;
    if (to_peer && sw == SwitchId(kPeerSwitchBase) && out_port == 0) {
      // Soundness of the flat-reference oracle: the peer domain must never
      // route back across the border (the federated walk's provider-level
      // loop guard and a flat traversal disagree on such loops by design).
      out_port = 1;
    }
    if (step.c % 5 == 4) {
      mod.actions = {sdn::drop()};
    } else {
      mod.actions = {sdn::output(PortNo(out_port))};
    }

    auto id = std::make_shared<std::optional<sdn::FlowEntryId>>();
    rt.provider_flow_mod(sw, mod,
                         [id](SwitchId, const sdn::FlowModResult& result) {
                           if (result.ok()) *id = result.id;
                         });
    churn_.push_back(ChurnRule{to_peer, sw, std::move(id)});
    ++report_.churn_applied;
  }

  void do_remove_churn(const Step& step) {
    if (churn_.empty()) return;
    const std::size_t idx = step.a % churn_.size();
    const ChurnRule rule = churn_[idx];
    if (!rule.id->has_value()) return;  // install result not landed yet
    FlowMod del;
    del.command = sdn::FlowModCommand::Delete;
    del.target = **rule.id;
    (rule.peer_domain ? *peer_ : *runtime_).provider_flow_mod(rule.sw, del);
    churn_.erase(churn_.begin() + static_cast<std::ptrdiff_t>(idx));
  }

  void do_meter_churn(const Step& step) {
    const auto switches = runtime_->network().topology().switches();
    sdn::MeterMod mod;
    mod.id = sdn::MeterId(1 + step.b % 3);
    mod.config.rate_bps = (1ull + step.b % 16) * 1'000'000ull;
    mod.config.burst_bytes = 1500ull * (1 + step.c % 8);
    runtime_->provider_meter_mod(switches[step.a % switches.size()], mod);
    // Meters live outside the snapshot change clock; Fairness notifications
    // may lag meter churn until a table epoch advances, so oracle (b) skips
    // Fairness comparisons from here on.
    meters_dirty_ = true;
    ++report_.meter_mods;
  }

  void do_query(const Step& step) {
    const HostId client = pick_host(step.a);
    const Query query = make_query(step.b, step.c);
    const auto outcome = runtime_->query_and_wait(client, query, kQueryTimeout);
    ++report_.queries_checked;
    if (outcome.timed_out) {
      if (!suppressed_client(client)) {
        fail("liveness", "one-shot query timed out without an active "
                         "query-suppression attack at the client's switch");
      }
      return;
    }
    if (!outcome.reply || !outcome.signature_ok) {
      fail("liveness", "one-shot reply missing or failed the enclave "
                       "signature check");
      return;
    }
    if (suppressed_client(client)) {
      fail("detection", "query from a suppressed client was answered (the "
                        "suppression rule did not take effect)");
    }
  }

  void do_subscribe(const Step& step) {
    if (subs_.size() >= kMaxTrackedSubs) return;
    const HostId client = pick_host(step.a);
    const Property property =
        Property::from_query(make_query(step.b, step.c));
    auto state = std::make_shared<SubState>();
    const std::uint64_t id = runtime_->client(client).subscribe(
        property,
        [state](const ClientAgent::MonitorEvent& event) {
          if (!event.signature_ok) {
            state->bad_signature = true;
            return;
          }
          state->last_reply = event.reply;
          ++state->events;
        },
        NotifyPolicy::EveryChange);
    subs_.push_back(TrackedSub{client, id, property, std::move(state)});
  }

  void do_unsubscribe(const Step& step) {
    if (subs_.empty()) return;
    const std::size_t idx = step.a % subs_.size();
    runtime_->client(subs_[idx].client).unsubscribe(subs_[idx].id);
    subs_.erase(subs_.begin() + static_cast<std::ptrdiff_t>(idx));
  }

  /// Bulk-registers untracked subscriptions across clients so the monitor
  /// registry (and with it the inverted footprint index) grows past the
  /// kMaxTrackedSubs handful oracle (b) follows. Notifications are
  /// discarded; these subscriptions exist purely to populate index shards
  /// with multi-entry buckets for oracle (e). Per-client caps may reject
  /// some registrations — harmless, the index just grows less.
  void do_mass_subscribe(const Step& step) {
    const std::size_t count = 4 + step.b % 5;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t x = static_cast<std::uint32_t>(i);
      const HostId client = pick_host(step.a + x);
      const Property property =
          Property::from_query(make_query(step.c + x, step.a + 3 * x));
      runtime_->client(client).subscribe(
          property, [](const ClientAgent::MonitorEvent&) {},
          NotifyPolicy::VerdictEdges);
      ++report_.mass_subscribed;
    }
  }

  // --- attacks ---

  void do_launch_attack(const Step& step) {
    switch (step.a % 6) {
      case 0:
        return launch_exfiltration(step.b, step.c);
      case 1:
        return launch_join(step.b, step.c);
      case 2:
        return launch_geo_diversion(step.b, step.c);
      case 3:
        return launch_breach(step.b, step.c);
      case 4:
        return launch_flapping(step.b, step.c);
      default:
        return launch_suppression(step.b);
    }
  }

  void track_attack(ActiveAttack aa) {
    attacks_.push_back(std::move(aa));
    ++report_.attacks_launched;
  }

  void launch_exfiltration(std::uint32_t b, std::uint32_t c) {
    if (routing_attack_active()) return;
    const HostId victim = pick_host(b);
    if (host_involved(victim)) return;
    const auto members = tenant_members(victim);
    if (members.size() < 2) return;
    HostId peer = members[c % members.size()];
    if (peer == victim) peer = members[(c + 1) % members.size()];
    if (peer == victim || host_involved(peer)) return;

    auto attack = std::make_unique<attacks::ExfiltrationAttack>(victim, peer);
    const auto record =
        attack->launch(runtime_->provider(), runtime_->network());
    if (!record) return;

    ActiveAttack aa;
    aa.cls = 0;
    aa.attack = std::move(attack);
    aa.record = *record;
    aa.detect_client = victim;
    aa.detect_query.kind = QueryKind::ReachableEndpoints;
    aa.expect.allowed_endpoints = members;
    aa.involved = {victim, peer};
    track_attack(std::move(aa));
  }

  void launch_join(std::uint32_t b, std::uint32_t c) {
    if (routing_attack_active()) return;
    const HostId victim = pick_host(b);
    if (host_involved(victim)) return;
    std::vector<PortRef> dark;
    for (const SwitchId sw : runtime_->network().topology().switches()) {
      const auto ports = runtime_->network().topology().dark_ports(sw);
      dark.insert(dark.end(), ports.begin(), ports.end());
    }
    if (dark.empty()) return;
    const PortRef attacker_port = dark[c % dark.size()];

    auto attack =
        std::make_unique<attacks::JoinAttack>(victim, attacker_port);
    const auto record =
        attack->launch(runtime_->provider(), runtime_->network());
    if (!record) return;

    ActiveAttack aa;
    aa.cls = 1;
    aa.attack = std::move(attack);
    aa.record = *record;
    aa.detect_client = victim;
    aa.detect_query.kind = QueryKind::Isolation;
    aa.expect.allowed_endpoints = tenant_members(victim);
    aa.involved = {victim};
    track_attack(std::move(aa));
  }

  void launch_geo_diversion(std::uint32_t b, std::uint32_t c) {
    if (routing_attack_active()) return;
    const HostId src = pick_host(b);
    if (host_involved(src)) return;
    const auto members = tenant_members(src);
    if (members.size() < 2) return;
    HostId dst = members[c % members.size()];
    if (dst == src) dst = members[(c + 1) % members.size()];
    if (dst == src || host_involved(dst)) return;

    // Ground truth: the jurisdictions the flow may cross right now. The
    // waypoint must add a new one, or the attack is undetectable by design.
    Property pre;
    pre.kind = QueryKind::Geo;
    pre.constraint =
        Match().exact(Field::IpDst, runtime_->addressing().of(dst).ip);
    core::QueryEngine::EvalContext ctx;
    ctx.from = access_point(src);
    ctx.geo = geo_.get();
    ctx.addressing = &runtime_->addressing();
    const auto eval = runtime_->rvaas().engine().evaluate(
        runtime_->rvaas().snapshot(), pre, ctx);
    const std::vector<std::string> allowed = eval.reply.jurisdictions;
    if (allowed.empty()) return;

    const auto switches = runtime_->network().topology().switches();
    for (std::size_t i = 0; i < switches.size(); ++i) {
      const SwitchId waypoint = switches[(c + i) % switches.size()];
      const auto loc = geo_->locate(waypoint);
      if (!loc || contains(allowed, loc->jurisdiction)) continue;
      auto attack =
          std::make_unique<attacks::GeoDiversionAttack>(src, dst, waypoint);
      const auto record =
          attack->launch(runtime_->provider(), runtime_->network());
      if (!record) continue;  // no route via this waypoint; try the next

      ActiveAttack aa;
      aa.cls = 2;
      aa.attack = std::move(attack);
      aa.record = *record;
      aa.detect_client = src;
      aa.detect_query.kind = QueryKind::Geo;
      aa.detect_query.constraint = pre.constraint;
      aa.expect.allowed_jurisdictions = allowed;
      aa.involved = {src, dst};
      track_attack(std::move(aa));
      return;
    }
  }

  void launch_breach(std::uint32_t b, std::uint32_t c) {
    if (routing_attack_active()) return;
    const HostId from = pick_host(b);
    if (host_involved(from)) return;
    const auto from_tenant = runtime_->provider().tenant_of(from);
    if (!from_tenant) return;
    for (std::size_t i = 0; i < hosts().size(); ++i) {
      const HostId to = pick_host(c + static_cast<std::uint32_t>(i));
      const auto to_tenant = runtime_->provider().tenant_of(to);
      if (!to_tenant || to_tenant->id == from_tenant->id) continue;
      if (host_involved(to)) continue;

      auto attack = std::make_unique<attacks::IsolationBreachAttack>(from, to);
      const auto record =
          attack->launch(runtime_->provider(), runtime_->network());
      if (!record) continue;  // no route toward this target; try the next

      ActiveAttack aa;
      aa.cls = 3;
      aa.attack = std::move(attack);
      aa.record = *record;
      aa.detect_client = to;
      aa.detect_query.kind = QueryKind::ReachingSources;
      aa.expect.allowed_endpoints = to_tenant->members;
      aa.involved = {from, to};
      track_attack(std::move(aa));
      return;
    }
  }

  void launch_flapping(std::uint32_t b, std::uint32_t c) {
    if (flapping_tracked()) return;
    const HostId victim = pick_host(b);
    if (host_involved(victim)) return;
    const sim::Time dwell = (2 + c % 2) * sim::kMillisecond;
    auto attack = std::make_unique<attacks::ReconfigFlappingAttack>(
        victim, 10 * sim::kMillisecond, dwell);
    const auto record =
        attack->launch(runtime_->provider(), runtime_->network(),
                       runtime_->loop().now() + kFlappingRun);
    if (!record) return;

    ActiveAttack aa;
    aa.cls = 4;
    aa.attack = std::move(attack);
    aa.record = *record;
    aa.detect_client = victim;
    aa.flap_dwell = dwell;
    aa.involved = {victim};
    track_attack(std::move(aa));
  }

  void launch_suppression(std::uint32_t b) {
    const HostId victim = pick_host(b);
    const SwitchId at = access_point(victim).sw;
    if (suppressed_.count(at) > 0) return;
    auto attack = std::make_unique<attacks::QuerySuppressionAttack>(at);
    const auto record =
        attack->launch(runtime_->provider(), runtime_->network());
    if (!record) return;

    suppressed_.insert(at);
    ActiveAttack aa;
    aa.cls = 5;
    aa.attack = std::move(attack);
    aa.record = *record;
    aa.detect_client = victim;
    aa.suppressed_switch = at;
    track_attack(std::move(aa));
  }

  /// Ground truth for the isolation breach, via the simulator's functional
  /// walk: unlike the other routing attacks (which install their complete
  /// path at attack priority), the breach contributes a single ingress
  /// tagging rule and rides the victim tenant's provider tree for the rest
  /// — lower-priority random churn can legitimately neutralize it mid-path.
  /// Detection is only owed while the breach actually delivers.
  /// (Found by this fuzzer: seed 20260898 churned the tree out from under
  /// the breach and correctly produced a clean verdict.)
  bool breach_delivers(const ActiveAttack& aa) const {
    sdn::Packet probe;
    probe.hdr.ip_src = runtime_->addressing().of(aa.involved[0]).ip;
    probe.hdr.ip_dst = runtime_->addressing().of(aa.record.victim).ip;
    const auto trajectory =
        runtime_->network().trace_from_host(aa.involved[0], probe);
    const auto reached = trajectory.reached_hosts();
    return std::find(reached.begin(), reached.end(), aa.record.victim) !=
           reached.end();
  }

  void do_revert_attack(const Step& step) {
    if (attacks_.empty()) return;
    const std::size_t idx = step.a % attacks_.size();
    ActiveAttack aa = std::move(attacks_[idx]);
    attacks_.erase(attacks_.begin() + static_cast<std::ptrdiff_t>(idx));

    aa.attack->revert(runtime_->provider(), runtime_->network());
    if (aa.cls == 5) suppressed_.erase(aa.suppressed_switch);
    ++report_.attacks_reverted;

    if (aa.cls == 4) check_flapping_ground_truth(aa);
  }

  /// Flapping is checked at revert time (its effect is the historical
  /// trace, not steady state): all windows must be closed, and if at least
  /// one cycle ran, the snapshot's short-lived-rule detector must have the
  /// transient rule on record.
  void check_flapping_ground_truth(const ActiveAttack& aa) {
    const auto* flap =
        static_cast<const attacks::ReconfigFlappingAttack*>(aa.attack.get());
    const sim::Time now = runtime_->loop().now();
    for (const auto& [start, end] : flap->windows()) {
      if (end > now) {
        fail("detection",
             "flapping window still open after revert() — the transient "
             "rule outlived the attack");
        return;
      }
    }
    if (flap->cycles_run() == 0) return;
    const auto short_lived = runtime_->rvaas().snapshot().short_lived(
        aa.flap_dwell + 2 * sim::kMillisecond);
    const bool seen = std::any_of(
        short_lived.begin(), short_lived.end(),
        [](const core::HistoryRecord& rec) {
          return rec.entry.cookie == kFlappingCookie;
        });
    if (!seen) {
      fail("detection",
           "reconfiguration flapping ran cycles but left no short-lived "
           "trace in the snapshot history");
    }
  }

  // --- oracles ---

  void run_oracles() {
    const std::uint32_t i = static_cast<std::uint32_t>(step_index_);

    // (e) inverted footprint index vs the retired linear footprint scan:
    // both must select the exact same wakeup Key list at any point between
    // sweeps (the index invariant makes dirty_since(last sweep) a complete
    // filter). Cheap (no evaluation runs), so it is checked first and after
    // every step — any index-maintenance bug surfaces as the earliest
    // divergence, before it can corrupt oracle (b).
    {
      const core::PropertyMonitor& monitor = runtime_->rvaas().monitor();
      const core::SnapshotManager& snap = runtime_->rvaas().snapshot();
      const auto indexed = monitor.indexed_wakeups(snap);
      const auto linear = monitor.linear_wakeups(snap);
      ++report_.index_checks;
      if (indexed != linear) {
        std::ostringstream os;
        os << "index selected " << indexed.size() << " wakeups, linear scan "
           << linear.size() << " (active=" << monitor.active()
           << ", index entries=" << monitor.index_entries() << ")";
        fail("index-vs-linear", os.str());
        return;
      }
    }

    // (a) warm engine vs fresh cold engine, all 7 kinds. The probe space
    // rotates: a full wildcard probe every third step (the expensive,
    // cube-explosion-prone shape), narrow exact-match probes in between.
    const HostId probe = pick_host(i);
    const HostId path_peer = pick_host(i + 1);
    Match probe_constraint;
    if (i % 3 == 1) {
      probe_constraint = Match().exact(
          Field::IpDst, runtime_->addressing().of(pick_host(i + 2)).ip);
    } else if (i % 3 == 2) {
      probe_constraint = Match().exact(Field::IpProto, sdn::kIpProtoTcp);
    }
    if (const auto err = check_cached_vs_cold(*runtime_, probe, path_peer,
                                              probe_constraint)) {
      fail("cached-vs-cold", *err);
      return;
    }

    // (f) fault equivalence. Clause 2 first — honesty: any switch under a
    // sustained hard fault (total drop / partition) must not read Healthy;
    // this is what catches a frozen or miswired health machine, because the
    // shadow skip below exempts exactly those switches from clause 1.
    if (fault_plane_) {
      const sim::Time now = runtime_->loop().now();
      const auto check_hard = [&](SwitchId sw, sim::Time since) {
        if (now - since < kHonestyBound) return;
        ++report_.fault_checks;
        if (runtime_->rvaas().switch_health(sw) ==
            core::RvaasController::SwitchHealth::Healthy) {
          std::ostringstream os;
          os << "switch " << sw.value << " hard-faulted for "
             << (now - since) / sim::kMillisecond
             << "ms still reads Healthy (fail-stale marking is broken)";
          fail("fault-honesty", os.str());
        }
      };
      for (const auto& [sw, since] : drop_hard_since_) check_hard(sw, since);
      for (const auto& [sw, win] : partitions_) {
        if (win.until > now) check_hard(sw, win.start);
      }
      if (failure_) return;

      // Clause 1 — no fail-wrong: every verdict that is neither
      // degraded-marked nor footprint-shadowed must be byte-identical to a
      // cold engine over ground-truth switch tables. Skipped while a
      // flapping attack cycles: its transient rule's install/remove updates
      // are legitimately in flight at oracle time, so the view lags ground
      // truth by delivery latency with no fault involved (found by this
      // oracle at seed 20260855 before the gate existed).
      if (!flapping_cycling()) {
        FaultOracleInput in;
        in.runtime = runtime_.get();
        in.client = probe;
        in.path_peer = path_peer;
        in.constraint = probe_constraint;
        in.shadow.assign(fault_shadow_.begin(), fault_shadow_.end());
        in.skip_fairness = meters_dirty_;
        in.checks = &report_.fault_checks;
        if (const auto err = check_fault_equivalence(in)) {
          fail("fault-equivalence", *err);
          return;
        }
      }
    }

    // (b) monitor pushes vs cold one-shot queries. Skipped while a flapping
    // attack cycles (the configuration changes between the push and the
    // comparison query by design) and while any switch sits in the fault
    // shadow (a delayed or retried poll can legitimately reconcile — and
    // re-push — between the recorded push and the comparison query).
    if (!flapping_cycling() && fault_shadow_.empty()) {
      for (std::size_t s = 0; s < subs_.size(); ++s) {
        const TrackedSub& sub = subs_[s];
        if (sub.state->bad_signature) {
          fail("monitor-vs-query",
               "notification failed the enclave signature check");
          return;
        }
        if (!sub.state->last_reply) continue;  // subscribe never landed
        if (suppressed_client(sub.client)) continue;
        if (meters_dirty_ && sub.property.kind == QueryKind::Fairness) {
          continue;  // meters drift outside the change clock
        }
        // In-band round trips cost real crypto; alternate subscriptions
        // across steps (every sub is still compared every other step).
        if ((step_index_ + s) % 2 != 0) continue;
        const auto outcome = runtime_->query_and_wait(
            sub.client, sub.property.query(), kQueryTimeout);
        if (outcome.timed_out) {
          fail("liveness", "comparison query timed out without suppression");
          return;
        }
        if (!outcome.reply || !outcome.signature_ok) {
          fail("liveness", "comparison reply missing or badly signed");
          return;
        }
        if (normalized_reply_bytes(*sub.state->last_reply) !=
            normalized_reply_bytes(*outcome.reply)) {
          std::ostringstream os;
          os << "push notification diverges from a cold one-shot query for "
             << to_string(sub.property.kind) << " (client "
             << sub.client.value << ", sub " << sub.id << ")";
          fail("monitor-vs-query", os.str());
          return;
        }
        ++report_.notifications_compared;
      }
    }

    // (c) federation vs flat merged engine.
    if (peer_) {
      FederationOracleInput in;
      in.federation = &fed_;
      in.start = ProviderId(1);
      in.ingress = access_point(pick_host(i));
      in.flat_topo = &flat_topo_;
      in.snap_a = &runtime_->rvaas().snapshot();
      in.snap_b = &peer_->rvaas().snapshot();
      in.max_depth = kReachDepth;
      switch (i % 3) {
        case 0:
          break;  // every header
        case 1:
          in.constraint = Match().exact(Field::IpProto, sdn::kIpProtoUdp);
          break;
        default:
          in.constraint = Match().exact(
              Field::IpDst, peer_->addressing().of(peer_->hosts()[0]).ip);
          break;
      }
      if (const auto err = check_federation_vs_flat(in)) {
        fail("federation-vs-flat", *err);
        return;
      }
      ++report_.federation_checks;
    }

    // (d) detector verdicts vs attack ground truth. Detection queries are
    // full in-band round trips (real crypto); each attack is checked on
    // every other step, deterministically. Under an active fault shadow the
    // verifier's view may legitimately lag the attack's installation
    // (dropped flow updates) — detection is owed again after heal, not
    // during the outage (fail-stale, never fail-wrong).
    if (!fault_shadow_.empty()) return;
    for (std::size_t a = 0; a < attacks_.size(); ++a) {
      const ActiveAttack& aa = attacks_[a];
      if (aa.cls == 4) continue;  // flapping: checked at revert
      if ((step_index_ + a) % 2 != 0) continue;
      if (aa.cls == 3 && !breach_delivers(aa)) continue;  // churned away
      if (failure_) return;
      ++report_.detection_checks;
      if (aa.cls == 5) {
        Query q;
        q.kind = QueryKind::ReachableEndpoints;
        const auto outcome =
            runtime_->query_and_wait(aa.detect_client, q, kQueryTimeout);
        if (!outcome.timed_out) {
          fail("detection",
               "query-suppression missed: the suppressed client's query "
               "was answered instead of timing out");
        }
        continue;
      }
      const auto outcome = runtime_->query_and_wait(
          aa.detect_client, aa.detect_query, kQueryTimeout);
      if (outcome.timed_out) {
        if (!suppressed_client(aa.detect_client)) {
          fail("liveness", "detection query timed out without suppression");
        }
        continue;  // timeout IS detection when the channel is suppressed
      }
      if (!outcome.reply || !outcome.signature_ok) {
        fail("liveness", "detection reply missing or badly signed");
        continue;
      }
      const core::Verdict verdict =
          core::evaluate_reply(*outcome.reply, aa.expect);
      if (verdict.ok) {
        std::ostringstream os;
        os << "missed detection: " << aa.record.name << " against client "
           << aa.detect_client.value << " produced a clean "
           << to_string(aa.detect_query.kind) << " verdict";
        fail("detection", os.str());
      }
    }
  }

  Schedule sched_;
  FuzzReport report_;
  std::optional<FuzzFailure> failure_;
  std::size_t step_index_ = 0;

  // Declared before runtime_ so the network (which holds a raw pointer to
  // the plane) is destroyed first.
  std::unique_ptr<sdn::FaultPlane> fault_plane_;
  std::unique_ptr<workload::ScenarioRuntime> runtime_;
  std::unique_ptr<core::DisclosedGeo> geo_;

  // Federation (oracle (c)) state.
  std::unique_ptr<workload::ScenarioRuntime> peer_;
  sdn::Topology flat_topo_;
  core::Federation fed_;
  PortRef border_a_;
  PortRef ingress_b_;

  std::vector<ChurnRule> churn_;
  std::uint64_t churn_seq_ = 0;
  std::vector<TrackedSub> subs_;
  std::vector<ActiveAttack> attacks_;
  std::set<SwitchId> suppressed_;
  bool meters_dirty_ = false;

  // Fault bookkeeping for oracle (f).
  bool has_faults_ = false;
  /// Switches faulted at any point since the last completed heal.
  std::set<SwitchId> fault_shadow_;
  /// Active 100%-drop faults and their start time (honesty clock).
  std::map<SwitchId, sim::Time> drop_hard_since_;
  struct PartitionWindow {
    sim::Time start = 0;
    sim::Time until = 0;
  };
  std::map<SwitchId, PartitionWindow> partitions_;
};

}  // namespace

FuzzReport run_schedule(const Schedule& schedule) {
  Runner runner(schedule);
  return runner.run();
}

FuzzReport replay(const std::string& repro) {
  const auto parsed = parse_repro(repro);
  util::ensure(parsed.has_value(), "malformed fuzz repro string");
  return run_schedule(*parsed);
}

}  // namespace rvaas::fuzz
