#include "testing/oracles.hpp"

#include <algorithm>
#include <sstream>

namespace rvaas::fuzz {

using core::Property;
using core::QueryEngine;
using core::QueryKind;
using sdn::PortRef;
using sdn::SwitchId;

util::Bytes normalized_reply_bytes(core::QueryReply reply) {
  reply.request_id = 0;
  util::ByteWriter w;
  reply.serialize(w);
  return w.take();
}

std::optional<std::string> check_cached_vs_cold(
    workload::ScenarioRuntime& runtime, sdn::HostId client,
    sdn::HostId path_peer, const sdn::Match& constraint) {
  const sdn::Topology& topo = runtime.network().topology();
  const auto client_ports = topo.host_ports(client);
  if (client_ports.empty()) return std::nullopt;

  const core::RvaasController& rvaas = runtime.rvaas();
  const core::SnapshotManager& snap = rvaas.snapshot();
  const QueryEngine& warm = rvaas.engine();

  // The cold reference: a fresh engine over the same wiring plan and
  // config. Its caches start empty, so every result is a from-scratch
  // compilation + traversal of the snapshot as it is right now.
  const QueryEngine cold(topo, warm.config());
  const core::DisclosedGeo geo(topo);

  QueryEngine::EvalContext ctx;
  ctx.from = client_ports.front();
  ctx.geo = &geo;
  ctx.addressing = &runtime.addressing();

  for (const QueryKind kind :
       {QueryKind::ReachableEndpoints, QueryKind::ReachingSources,
        QueryKind::Isolation, QueryKind::Geo, QueryKind::PathLength,
        QueryKind::Fairness, QueryKind::TransferSummary}) {
    Property property;
    property.kind = kind;
    property.constraint = constraint;
    if (kind == QueryKind::PathLength) property.peer = path_peer;

    const QueryEngine::Evaluation warm_eval = warm.evaluate(snap, property, ctx);
    const QueryEngine::Evaluation cold_eval = cold.evaluate(snap, property, ctx);

    if (normalized_reply_bytes(warm_eval.reply) !=
        normalized_reply_bytes(cold_eval.reply)) {
      std::ostringstream os;
      os << "cached-vs-cold: reply diverges for kind " << to_string(kind)
         << " from client " << client.value << " (warm engine serves stale "
         << "state the cold compilation does not)";
      return os.str();
    }
    if (warm_eval.to_authenticate != cold_eval.to_authenticate) {
      std::ostringstream os;
      os << "cached-vs-cold: auth target list diverges for kind "
         << to_string(kind) << " from client " << client.value;
      return os.str();
    }
    if (warm_eval.footprint != cold_eval.footprint) {
      std::ostringstream os;
      os << "cached-vs-cold: dependency footprint diverges for kind "
         << to_string(kind) << " from client " << client.value;
      return os.str();
    }
  }
  return std::nullopt;
}

namespace {

struct FlatEndpoint {
  PortRef access_point;
  bool dark = false;

  bool operator==(const FlatEndpoint&) const = default;
  bool operator<(const FlatEndpoint& o) const {
    if (access_point.sw != o.access_point.sw) {
      return access_point.sw < o.access_point.sw;
    }
    if (access_point.port != o.access_point.port) {
      return access_point.port < o.access_point.port;
    }
    return dark < o.dark;
  }
};

std::string render(const std::vector<FlatEndpoint>& endpoints) {
  std::ostringstream os;
  for (const FlatEndpoint& e : endpoints) {
    os << ' ' << e.access_point.sw.value << ':' << e.access_point.port.value
       << (e.dark ? "(dark)" : "");
  }
  return os.str();
}

}  // namespace

core::SnapshotManager ground_truth_snapshot(
    workload::ScenarioRuntime& runtime) {
  core::SnapshotManager snap;
  const sim::Time now = runtime.loop().now();
  for (const SwitchId sw : runtime.network().topology().switches()) {
    snap.reconcile(runtime.network().switch_sim(sw).stats(), now);
  }
  return snap;
}

namespace {

/// Sorted-vector intersection test (footprints and shadows are sorted).
bool touches(const std::vector<SwitchId>& a, const std::vector<SwitchId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<std::string> check_fault_equivalence(const FaultOracleInput& in) {
  workload::ScenarioRuntime& runtime = *in.runtime;
  const sdn::Topology& topo = runtime.network().topology();
  const auto client_ports = topo.host_ports(in.client);
  if (client_ports.empty()) return std::nullopt;

  const core::RvaasController& rvaas = runtime.rvaas();
  const core::SnapshotManager& live = rvaas.snapshot();
  const QueryEngine& warm = rvaas.engine();

  if (in.strict) {
    // Post-heal: no channel may still be degraded, and the whole view must
    // read as fresh (this is the "fail-stale ends" half of the contract).
    const core::FreshnessInfo fresh = rvaas.freshness_for(topo.switches());
    if (fresh.degraded()) {
      std::ostringstream os;
      os << "fault-convergence: view still degraded after heal ("
         << fresh.unreachable.size() << " unreachable, max staleness "
         << fresh.max_staleness << "ns)";
      return os.str();
    }
  }

  const core::SnapshotManager reference = ground_truth_snapshot(runtime);
  const QueryEngine cold(topo, warm.config());
  const core::DisclosedGeo geo(topo);

  QueryEngine::EvalContext ctx;
  ctx.from = client_ports.front();
  ctx.geo = &geo;
  ctx.addressing = &runtime.addressing();

  for (const QueryKind kind :
       {QueryKind::ReachableEndpoints, QueryKind::ReachingSources,
        QueryKind::Isolation, QueryKind::Geo, QueryKind::PathLength,
        QueryKind::Fairness, QueryKind::TransferSummary}) {
    if (in.skip_fairness && kind == QueryKind::Fairness) continue;
    Property property;
    property.kind = kind;
    property.constraint = in.constraint;
    if (kind == QueryKind::PathLength) property.peer = in.path_peer;

    const QueryEngine::Evaluation live_eval =
        warm.evaluate(live, property, ctx);
    const core::FreshnessInfo fresh = rvaas.freshness_for(live_eval.footprint);
    if (!in.strict) {
      // Degraded-marked verdicts are the honesty clause's business, and a
      // shadowed footprint may be legitimately stale below the health
      // thresholds (see FaultOracleInput::shadow).
      if (fresh.degraded()) continue;
      if (touches(live_eval.footprint, in.shadow)) continue;
    } else if (fresh.degraded()) {
      std::ostringstream os;
      os << "fault-convergence: footprint still degraded after heal for kind "
         << to_string(kind);
      return os.str();
    }

    const QueryEngine::Evaluation ref_eval =
        cold.evaluate(reference, property, ctx);
    if (in.checks != nullptr) ++*in.checks;

    if (normalized_reply_bytes(live_eval.reply) !=
        normalized_reply_bytes(ref_eval.reply)) {
      std::ostringstream os;
      os << (in.strict ? "fault-convergence" : "fault-equivalence")
         << ": non-degraded reply diverges from fault-free reference for "
         << "kind " << to_string(kind) << " from client " << in.client.value
         << " (the verifier answered fresh-and-wrong)";
      return os.str();
    }
    if (live_eval.footprint != ref_eval.footprint) {
      std::ostringstream os;
      os << (in.strict ? "fault-convergence" : "fault-equivalence")
         << ": dependency footprint diverges from fault-free reference for "
         << "kind " << to_string(kind) << " from client " << in.client.value;
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_federation_vs_flat(
    const FederationOracleInput& in) {
  // Federated answer: walk the two domains through signed subqueries.
  const core::FederatedResult fed = in.federation->reachable(
      in.start, in.ingress, in.constraint, /*max_domains=*/4);

  // Flat reference: one snapshot holding both domains' live tables (switch
  // id spaces are disjoint by construction), one engine over the merged
  // wiring plan where the peering is a physical link.
  core::SnapshotManager flat_snap;
  for (const core::SnapshotManager* snap : {in.snap_a, in.snap_b}) {
    for (const SwitchId sw : snap->switch_ids()) {
      for (const sdn::FlowEntry& entry : snap->table(sw)) {
        flat_snap.apply_update({sw, sdn::FlowUpdateKind::Added, entry}, 0);
      }
    }
  }
  const core::QueryEngine flat_engine(
      *in.flat_topo,
      core::EngineConfig{core::ConfidentialityPolicy::EndpointsOnly,
                         in.max_depth});
  Property property;
  property.kind = QueryKind::ReachableEndpoints;
  property.constraint = in.constraint;
  QueryEngine::EvalContext ctx;
  ctx.from = in.ingress;
  // A border ingress is not a requester: the federated walk keeps hairpins,
  // so the flat reference must too.
  ctx.exclude_requester = false;
  const QueryEngine::Evaluation flat_eval =
      flat_engine.evaluate(flat_snap, property, ctx);

  std::vector<FlatEndpoint> federated;
  federated.reserve(fed.endpoints.size());
  for (const core::FederatedEndpoint& e : fed.endpoints) {
    federated.push_back({e.info.access_point, e.info.dark});
  }
  std::vector<FlatEndpoint> flat;
  flat.reserve(flat_eval.reply.endpoints.size());
  for (const core::EndpointInfo& e : flat_eval.reply.endpoints) {
    flat.push_back({e.access_point, e.dark});
  }
  std::sort(federated.begin(), federated.end());
  federated.erase(std::unique(federated.begin(), federated.end()),
                  federated.end());
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());

  if (federated != flat) {
    std::ostringstream os;
    os << "federation-vs-flat: endpoint sets diverge; federated{"
       << render(federated) << " } flat{" << render(flat) << " }";
    return os.str();
  }
  return std::nullopt;
}

}  // namespace rvaas::fuzz
